package leishen_test

import (
	"math/big"
	"sync"
	"testing"

	"leishen"
	"leishen/internal/attacks"
	"leishen/internal/baselines"
	"leishen/internal/core"
	"leishen/internal/eval"
	"leishen/internal/simplify"
	"leishen/internal/tagging"
	"leishen/internal/trace"
	"leishen/internal/trades"
	"leishen/internal/uint256"
	"leishen/internal/world"
)

// ---------------------------------------------------------------------
// Shared fixtures. Corpus generation and scenario execution are expensive
// setup, built once and reused across benchmark iterations; the timed
// regions cover exactly the work each table/figure requires.
// ---------------------------------------------------------------------

var (
	corpusOnce sync.Once
	benchC     *world.Corpus

	harvestOnce sync.Once
	harvestRes  *attacks.Result
)

func benchCorpus(b *testing.B) *world.Corpus {
	b.Helper()
	corpusOnce.Do(func() {
		c, err := world.Generate(world.Config{Seed: 7, ScalePct: 1})
		if err != nil {
			b.Fatalf("corpus: %v", err)
		}
		benchC = c
	})
	if benchC == nil {
		b.Skip("corpus generation failed earlier")
	}
	return benchC
}

func benchHarvest(b *testing.B) *attacks.Result {
	b.Helper()
	harvestOnce.Do(func() {
		sc, _ := attacks.ByName("Harvest Finance")
		res, err := sc.Run()
		if err != nil {
			b.Fatalf("harvest: %v", err)
		}
		harvestRes = res
	})
	if harvestRes == nil {
		b.Skip("scenario failed earlier")
	}
	return harvestRes
}

func corpusDetector(c *world.Corpus, heuristic bool) *core.Detector {
	opts := core.Options{Simplify: simplify.Options{WETH: c.Env.WETH}}
	if heuristic {
		opts.YieldAggregatorHeuristic = true
		opts.YieldAggregatorApps = world.AggregatorApps
	}
	return core.NewDetector(c.Env.Chain, c.Env.Registry, opts)
}

// ---------------------------------------------------------------------
// Table and figure regeneration benches (§VI).
// ---------------------------------------------------------------------

// BenchmarkTable1KnownAttackVolatility regenerates Table I: run all 22
// known attack reproductions and measure their price volatility.
func BenchmarkTable1KnownAttackVolatility(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 22 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Table I  #%-2d %-18s %-8s paper=%.4g%% measured=%.4g%%",
					r.ID, r.Name, r.Patterns, r.PaperVolatilityPct, r.MeasuredPct)
			}
		}
	}
}

// BenchmarkTable4KnownAttacks regenerates Table IV: the three detectors
// over the 22 known attacks.
func BenchmarkTable4KnownAttacks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		var dfr, exp, ls int
		for _, r := range rows {
			if r.DeFiRanger != r.WantDFR || r.Explorer != r.WantExp || r.LeiShen != r.WantLS {
				b.Fatalf("%s: detection drifted from paper profile", r.Name)
			}
			if r.DeFiRanger {
				dfr++
			}
			if r.Explorer {
				exp++
			}
			if r.LeiShen {
				ls++
			}
		}
		if i == 0 {
			b.Logf("Table IV  DeFiRanger=%d (paper 9) Explorer+LeiShen=%d (paper 4) LeiShen=%d (paper 15)", dfr, exp, ls)
		}
	}
}

// BenchmarkTable5WildDetection regenerates Table V: LeiShen over the full
// wild corpus (timed region = the scan itself).
func BenchmarkTable5WildDetection(b *testing.B) {
	c := benchCorpus(b)
	det := corpusDetector(c, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detected := 0
		for _, r := range c.Receipts {
			if det.Inspect(r).IsAttack {
				detected++
			}
		}
		if detected != 180 {
			b.Fatalf("detected = %d, want 180", detected)
		}
	}
	b.StopTimer()
	res := eval.EvalCorpus(c)
	b.Logf("Table V\n%s", res.TableV)
	b.Logf("Table V heuristic row: %s", res.TableVHeuristic)
}

// BenchmarkTable6TopApps and BenchmarkTable7Profit regenerate the
// unknown-attack analyses from the corpus evaluation.
func BenchmarkTable6TopApps(b *testing.B) {
	c := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res eval.CorpusEval
	for i := 0; i < b.N; i++ {
		res = eval.EvalCorpus(c)
	}
	b.StopTimer()
	for i, row := range res.TableVI {
		if i >= 3 {
			break
		}
		b.Logf("Table VI  %s", row)
	}
}

func BenchmarkTable7Profit(b *testing.B) {
	c := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res eval.CorpusEval
	for i := 0; i < b.N; i++ {
		res = eval.EvalCorpus(c)
	}
	b.StopTimer()
	s := res.TableVII
	b.Logf("Table VII  mean=$%.0f min=$%.0f max=$%.0f total=$%.0f (paper: min $23, max $6.1M, total >$21M)",
		s.Mean, s.Min, s.Max, s.Total)
}

// BenchmarkFig1WeeklyFlashLoans regenerates Fig. 1: corpus generation and
// weekly bucketing per provider. The timed region is generation — the
// expensive part a user reproducing the figure pays.
func BenchmarkFig1WeeklyFlashLoans(b *testing.B) {
	b.ReportAllocs()
	var c *world.Corpus
	for i := 0; i < b.N; i++ {
		var err error
		c, err = world.Generate(world.Config{Seed: 7, ScalePct: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	res := eval.EvalCorpus(c)
	b.Logf("Fig. 1 providers over %d weeks: %v txs by provider", len(res.Fig1.Keys), res.PerProvider)
}

// BenchmarkFig8MonthlyAttacks regenerates Fig. 8's monthly series.
func BenchmarkFig8MonthlyAttacks(b *testing.B) {
	c := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res eval.CorpusEval
	for i := 0; i < b.N; i++ {
		res = eval.EvalCorpus(c)
	}
	b.StopTimer()
	total := 0
	for _, k := range res.Fig8.Keys {
		total += res.Fig8.Counts[k]
	}
	b.Logf("Fig. 8  %d unknown attacks over %d months (paper: 109)", total, len(res.Fig8.Keys))
}

// BenchmarkDetectionLatency measures per-transaction pipeline latency —
// the paper reports a 10 ms mean and 16 ms p75 on 2021 hardware.
func BenchmarkDetectionLatency(b *testing.B) {
	c := benchCorpus(b)
	det := corpusDetector(c, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Receipts[i%len(c.Receipts)]
		det.Inspect(r)
	}
}

// BenchmarkDetectionLatencyAttackTx measures latency on attack-heavy
// transactions specifically (worst case: long trade lists).
func BenchmarkDetectionLatencyAttackTx(b *testing.B) {
	res := benchHarvest(b)
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !det.Inspect(res.Receipt).IsAttack {
			b.Fatal("detection regressed")
		}
	}
}

// ---------------------------------------------------------------------
// Pipeline stage benches: where the per-transaction budget goes.
// ---------------------------------------------------------------------

func BenchmarkStageExtract(b *testing.B) {
	res := benchHarvest(b)
	ex := trace.NewExtractor(res.Env.Registry)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(ex.Extract(res.Receipt)) == 0 {
			b.Fatal("no transfers")
		}
	}
}

func BenchmarkStageTagAndSimplify(b *testing.B) {
	res := benchHarvest(b)
	ex := trace.NewExtractor(res.Env.Registry)
	tg := tagging.New(res.Env.Chain)
	transfers := ex.Extract(res.Receipt)
	opts := simplify.Options{WETH: res.Env.WETH}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tagged := tg.TagTransfers(transfers)
		if len(simplify.Simplify(tagged, opts)) == 0 {
			b.Fatal("no app transfers")
		}
	}
}

func BenchmarkStageTradesAndMatch(b *testing.B) {
	res := benchHarvest(b)
	ex := trace.NewExtractor(res.Env.Registry)
	tg := tagging.New(res.Env.Chain)
	appTransfers := simplify.Simplify(tg.TagTransfers(ex.Extract(res.Receipt)), simplify.Options{WETH: res.Env.WETH})
	borrower := tg.Tag(res.AttackContract)
	th := core.DefaultThresholds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list := trades.Identify(appTransfers)
		if len(core.MatchPatterns(list, borrower, th)) == 0 {
			b.Fatal("no match")
		}
	}
}

func BenchmarkTaggerConstruction(b *testing.B) {
	c := benchCorpus(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tagging.New(c.Env.Chain)
	}
}

// ---------------------------------------------------------------------
// Ablation benches for DESIGN.md's design decisions.
// ---------------------------------------------------------------------

// BenchmarkAblationAmountRepr compares the native uint256 rate comparison
// against a big.Int implementation — the value-semantics amount
// representation is a core substrate choice.
func BenchmarkAblationAmountRepr(b *testing.B) {
	x := uint256.MustFromDecimal("123456789012345678901234567890")
	y := uint256.MustFromDecimal("987654321098765432109876543210")
	u := uint256.MustFromDecimal("111111111111111111111111111111")
	v := uint256.MustFromDecimal("222222222222222222222222222222")
	b.Run("uint256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if uint256.CmpProducts(x, y, u, v) == 0 {
				b.Fatal("unexpected equality")
			}
		}
	})
	b.Run("bigint", func(b *testing.B) {
		bx, _ := new(big.Int).SetString(x.String(), 10)
		by, _ := new(big.Int).SetString(y.String(), 10)
		bu, _ := new(big.Int).SetString(u.String(), 10)
		bv, _ := new(big.Int).SetString(v.String(), 10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l := new(big.Int).Mul(bx, by)
			r := new(big.Int).Mul(bu, bv)
			if l.Cmp(r) == 0 {
				b.Fatal("unexpected equality")
			}
		}
	})
}

// BenchmarkAblationThresholds sweeps the pattern thresholds over the
// corpus, quantifying the precision/recall trade-off §VII discusses
// (e.g. KRP with 3 buys instead of 5 admits more detections).
func BenchmarkAblationThresholds(b *testing.B) {
	c := benchCorpus(b)
	sweeps := []struct {
		name string
		th   core.Thresholds
	}{
		{"paper", core.DefaultThresholds()},
		{"krp3", core.Thresholds{KRPMinBuys: 3, SBSMinVolatilityBps: 2800, SBSAmountToleranceBps: 10, MBSMinRounds: 3}},
		{"sbs10pct", core.Thresholds{KRPMinBuys: 5, SBSMinVolatilityBps: 1000, SBSAmountToleranceBps: 10, MBSMinRounds: 3}},
		{"mbs2", core.Thresholds{KRPMinBuys: 5, SBSMinVolatilityBps: 2800, SBSAmountToleranceBps: 10, MBSMinRounds: 2}},
	}
	for _, sw := range sweeps {
		sw := sw
		b.Run(sw.name, func(b *testing.B) {
			det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
				Thresholds: sw.th,
				Simplify:   simplify.Options{WETH: c.Env.WETH},
			})
			b.ReportAllocs()
			var detected, trueDet int
			for i := 0; i < b.N; i++ {
				detected, trueDet = 0, 0
				for _, r := range c.Receipts {
					rep := det.Inspect(r)
					if rep.IsAttack {
						detected++
						// Manual inspection confirms full-threshold attacks
						// and the profitable sub-threshold (gray) ones.
						switch c.Truth[r.TxHash].Kind {
						case world.KindAttack, world.KindGrayAttack:
							trueDet++
						}
					}
				}
			}
			prec := 0.0
			if detected > 0 {
				prec = float64(trueDet) / float64(detected) * 100
			}
			b.Logf("thresholds=%s detected=%d true=%d precision=%.1f%%", sw.name, detected, trueDet, prec)
		})
	}
}

// BenchmarkAblationSimplifyRules disables each §V-B2 simplification rule
// and counts how many of the 22 known attacks survive detection — the
// rules are load-bearing, not cosmetic.
func BenchmarkAblationSimplifyRules(b *testing.B) {
	scenarios := attacks.All()
	results := make([]*attacks.Result, 0, len(scenarios))
	for _, sc := range scenarios {
		res, err := sc.Run()
		if err != nil {
			b.Fatalf("%s: %v", sc.Name, err)
		}
		results = append(results, res)
	}
	variants := []struct {
		name string
		mod  func(*simplify.Options)
	}{
		{"all-rules", func(*simplify.Options) {}},
		{"no-intra-app", func(o *simplify.Options) { o.DisableIntraAppRule = true }},
		{"no-weth", func(o *simplify.Options) { o.DisableWETHRule = true }},
		{"no-merge", func(o *simplify.Options) { o.DisableMergeRule = true }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var detected int
			for i := 0; i < b.N; i++ {
				detected = 0
				for j, res := range results {
					opts := simplify.Options{WETH: res.Env.WETH}
					v.mod(&opts)
					det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{Simplify: opts})
					rep := det.Inspect(res.Receipt)
					if rep.IsAttack && scenarios[j].LeiShen {
						detected++
					}
				}
			}
			b.Logf("simplify=%s known attacks detected: %d/15", v.name, detected)
		})
	}
}

// BenchmarkBaselineDeFiRanger measures the account-level baseline.
func BenchmarkBaselineDeFiRanger(b *testing.B) {
	res := benchHarvest(b)
	dfr := baselines.NewDeFiRanger(res.Env.Registry, res.Env.WETH)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !dfr.Detect(res.Receipt) {
			b.Fatal("DeFiRanger should detect Harvest")
		}
	}
}

// BenchmarkPublicAPI exercises the facade the way a downstream user would.
func BenchmarkPublicAPI(b *testing.B) {
	res := benchHarvest(b)
	det := leishen.NewDetector(res.Env.Chain, res.Env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: res.Env.WETH},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := det.Inspect(res.Receipt)
		if !rep.HasPattern(leishen.PatternMBS) {
			b.Fatal("regression")
		}
	}
}
