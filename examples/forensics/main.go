// Command forensics is a post-incident investigation walkthrough: scan a
// generated corpus, pick the most profitable detected attack, and print
// its full money flow the way the paper's Fig. 6 renders the bZx-1 attack
// — account-level transfers, application-level transfers after the three
// simplification rules, the identified trades, and the matched pattern.
package main

import (
	"fmt"
	"log"

	"leishen"
	"leishen/internal/pricing"
	"leishen/internal/tagging"
	"leishen/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating corpus (seed 7, scale 1%)...")
	c, err := world.Generate(world.Config{Seed: 7, ScalePct: 1})
	if err != nil {
		return err
	}
	det := leishen.NewDetector(c.Env.Chain, c.Env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: c.Env.WETH},
	})

	// The paper's §V-B1 tagging statistics for this snapshot.
	stats := tagging.New(c.Env.Chain).Stats()
	fmt.Printf("account tagging: %d accounts, %d app-tagged, %d root-tagged, %d conflicted (%.2f%%)\n\n",
		stats.Accounts, stats.AppTagged, stats.RootTagged, stats.Conflicted, stats.ConflictPct())

	// Scan and keep the most profitable detection.
	prices := pricing.NewDefaultTable()
	var best *leishen.Report
	bestUSD := 0.0
	detected := 0
	for _, r := range c.Receipts {
		rep := det.Inspect(r)
		if !rep.IsAttack {
			continue
		}
		detected++
		truth := c.Truth[r.TxHash]
		usd := prices.ValueUSD(truth.ProfitToken, truth.Profit, truth.Time)
		if usd > bestUSD {
			bestUSD = usd
			best = rep
		}
	}
	if best == nil {
		return fmt.Errorf("no attacks detected")
	}
	fmt.Printf("scanned %d flash loan transactions, %d flagged\n", len(c.Receipts), detected)
	fmt.Printf("most profitable: %s (~$%.0f swept)\n\n", best.TxHash.Short(), bestUSD)

	truth := c.Truth[best.TxHash]
	fmt.Printf("victim application: %s (asset %s)\n", truth.App, truth.Asset)
	fmt.Printf("attacker EOA:       %s\n", truth.Attacker)
	fmt.Printf("attack contract:    %s\n", truth.Contract)
	fmt.Printf("flash loan:         %s of %s from %s\n\n",
		truth.BorrowToken.Format(truth.Borrowed), truth.BorrowToken.Symbol, truth.Provider)

	fmt.Println("== money flow (paper Fig. 6 style) ==")
	fmt.Printf("account-level transfers (%d):\n", len(best.Transfers))
	for _, tr := range best.Transfers {
		fmt.Printf("  %s\n", tr)
	}
	fmt.Printf("\napplication-level transfers after simplification (%d):\n", len(best.AppTransfers))
	for _, at := range best.AppTransfers {
		fmt.Printf("  %s\n", at)
	}
	fmt.Printf("\nidentified trades (%d):\n", len(best.Trades))
	for _, tr := range best.Trades {
		fmt.Printf("  %s\n", tr)
	}
	fmt.Printf("\nmatched patterns:\n")
	for _, m := range best.Matches {
		fmt.Printf("  %s\n", m)
	}
	return nil
}
