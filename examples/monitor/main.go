// Command monitor shows LeiShen as a streaming block monitor: blocks
// arrive from a live chain, a follower screens every transaction for
// flash loans, pipes the flash loan transactions through the detection
// pipeline, and archives each verdict durably — the deployment mode the
// paper's conclusion envisions ("improving the ability to combat
// flpAttacks in Ethereum").
//
// The demo chain mixes benign traffic (plain swaps, an honest flash-loan
// arbitrage) with one Harvest-style vault attack; the monitor flags only
// the attack, and the alert is read back from the crash-safe archive
// rather than from process memory, so a restart would not lose it.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"leishen"
	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/flashloan"
	"leishen/internal/token"
	"leishen/internal/uint256"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a small live world: pools, a vault site, traders.
	env, err := attacks.NewEnv(attacks.ScenarioGenesis())
	if err != nil {
		return err
	}
	site, err := attacks.NewVaultSite(env, "Harvest", "fUSDC", "20000000", 10)
	if err != nil {
		return err
	}

	// Block 1: benign swap traffic.
	trader := env.Chain.NewEOA("")
	if err := env.Fund(trader, env.WETH, "10"); err != nil {
		return err
	}
	if r := env.Chain.Send(trader, env.WETH.Address, "approve", env.FundingPair, uint256.Max()); !r.Success {
		return fmt.Errorf("approve: %s", r.Err)
	}
	if r := env.Chain.Send(trader, env.WETH.Address, "transfer", env.FundingPair, env.WETH.Units("5")); !r.Success {
		return fmt.Errorf("transfer: %s", r.Err)
	}
	if r := env.Chain.Send(trader, env.FundingPair, "sync"); !r.Success {
		return fmt.Errorf("sync: %s", r.Err)
	}
	env.Chain.MineBlock()

	// Block 2: a true attack — multi-round vault manipulation.
	attackContract := &attacks.AttackContract{
		Loan: attacks.LoanSpec{
			Provider: flashloan.ProviderAave,
			Lender:   env.AavePool,
			Token:    env.USDC,
			Amount:   env.USDC.Units("40000000"),
			FeeBps:   9,
		},
		Steps:        site.MBSSteps(3, "20000000", "14000000"),
		ProfitTokens: []leishen.Token{env.USDC},
	}
	attacker, contractAddr, err := env.NewAttacker(attackContract)
	if err != nil {
		return err
	}
	if r := env.Chain.Send(attacker, contractAddr, "attack"); !r.Success {
		return fmt.Errorf("attack: %s", r.Err)
	}
	env.Chain.MineBlock()

	// Block 3: more benign traffic.
	if r := env.Chain.Send(trader, env.FundingPair, "sync"); !r.Success {
		return fmt.Errorf("sync: %s", r.Err)
	}
	env.Chain.MineBlock()

	// The monitor: a follower tails the chain head, screens each block,
	// and appends every verdict to a durable archive, checkpointing as
	// it goes. In production the directory outlives the process; here a
	// temp dir keeps the example self-cleaning.
	det := leishen.NewDetector(env.Chain, env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: env.WETH},
	})
	dir, err := os.MkdirTemp("", "leishen-monitor-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	arc, err := leishen.OpenArchive(dir, leishen.ArchiveOptions{})
	if err != nil {
		return err
	}
	defer arc.Close()
	fol, err := leishen.NewFollower(leishen.ChainSource(env.Chain), det, arc, leishen.FollowerOptions{})
	if err != nil {
		return err
	}
	defer fol.Close()
	if err := fol.CatchUp(); err != nil {
		return err
	}

	for _, block := range env.Chain.Blocks() {
		fmt.Printf("block %d (%s): %d transactions\n",
			block.Number, block.Time.Format("2006-01-02"), len(block.Receipts))
	}
	st := fol.Stats()
	fmt.Printf("follower checkpoint: block %d (%d flash loan transactions screened, %d archived)\n",
		st.Checkpoint, st.Summary.Inspected, arc.Count())

	// Read the alerts back from disk — the restart-safe view.
	attackRecs, _, err := arc.Select(leishen.ArchiveQuery{Flags: leishen.FlagAttack})
	if err != nil {
		return err
	}
	for _, rec := range attackRecs {
		var rep core.ReportJSON
		if err := json.Unmarshal(rec.Report, &rep); err != nil {
			return err
		}
		fmt.Printf("  *** flpAttack ***  block %d tx %s: %s via %s (%d µs)\n",
			rec.Block, rep.TxHash, rep.Matches[0].Pattern, rep.Loans[0].Provider, rep.ElapsedMicros)
	}
	if len(attackRecs) != 1 {
		return fmt.Errorf("expected exactly 1 archived alert, got %d", len(attackRecs))
	}
	profit := token.MustBalanceOf(env.Chain, env.USDC, attacker)
	fmt.Printf("\nthe flagged attacker swept %s — caught by the %s pattern\n",
		env.USDC.Format(profit), leishen.PatternMBS)
	return nil
}
