// Command monitor shows LeiShen as a streaming block monitor: blocks
// arrive from a live chain, every transaction is screened for flash
// loans, and flash loan transactions are piped through the detection
// pipeline — the deployment mode the paper's conclusion envisions
// ("improving the ability to combat flpAttacks in Ethereum").
//
// The demo chain mixes benign traffic (plain swaps, an honest flash-loan
// arbitrage) with one Harvest-style vault attack; the monitor flags only
// the attack.
package main

import (
	"fmt"
	"log"

	"leishen"
	"leishen/internal/attacks"
	"leishen/internal/flashloan"
	"leishen/internal/token"
	"leishen/internal/uint256"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a small live world: pools, a vault site, traders.
	env, err := attacks.NewEnv(attacks.ScenarioGenesis())
	if err != nil {
		return err
	}
	site, err := attacks.NewVaultSite(env, "Harvest", "fUSDC", "20000000", 10)
	if err != nil {
		return err
	}

	// Block 1: benign swap traffic.
	trader := env.Chain.NewEOA("")
	if err := env.Fund(trader, env.WETH, "10"); err != nil {
		return err
	}
	if r := env.Chain.Send(trader, env.WETH.Address, "approve", env.FundingPair, uint256.Max()); !r.Success {
		return fmt.Errorf("approve: %s", r.Err)
	}
	if r := env.Chain.Send(trader, env.WETH.Address, "transfer", env.FundingPair, env.WETH.Units("5")); !r.Success {
		return fmt.Errorf("transfer: %s", r.Err)
	}
	if r := env.Chain.Send(trader, env.FundingPair, "sync"); !r.Success {
		return fmt.Errorf("sync: %s", r.Err)
	}
	env.Chain.MineBlock()

	// Block 2: a true attack — multi-round vault manipulation.
	attackContract := &attacks.AttackContract{
		Loan: attacks.LoanSpec{
			Provider: flashloan.ProviderAave,
			Lender:   env.AavePool,
			Token:    env.USDC,
			Amount:   env.USDC.Units("40000000"),
			FeeBps:   9,
		},
		Steps:        site.MBSSteps(3, "20000000", "14000000"),
		ProfitTokens: []leishen.Token{env.USDC},
	}
	attacker, contractAddr, err := env.NewAttacker(attackContract)
	if err != nil {
		return err
	}
	if r := env.Chain.Send(attacker, contractAddr, "attack"); !r.Success {
		return fmt.Errorf("attack: %s", r.Err)
	}
	env.Chain.MineBlock()

	// Block 3: more benign traffic.
	if r := env.Chain.Send(trader, env.FundingPair, "sync"); !r.Success {
		return fmt.Errorf("sync: %s", r.Err)
	}
	env.Chain.MineBlock()

	// The monitor: walk blocks as they arrive, screen, inspect, alert.
	det := leishen.NewDetector(env.Chain, env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: env.WETH},
	})
	alerts := 0
	for _, block := range env.Chain.Blocks() {
		fmt.Printf("block %d (%s): %d transactions\n",
			block.Number, block.Time.Format("2006-01-02"), len(block.Receipts))
		for _, r := range block.Receipts {
			if !r.Success || !flashloan.IsFlashLoanTx(r) {
				continue
			}
			rep := det.Inspect(r)
			tag := "flash loan, benign"
			if rep.IsAttack {
				tag = "*** flpAttack ***"
				alerts++
			}
			fmt.Printf("  %s  %s (%.0f µs)\n", tag, rep.Summary(), float64(rep.Elapsed.Microseconds()))
		}
	}
	if alerts != 1 {
		return fmt.Errorf("expected exactly 1 alert, got %d", alerts)
	}
	profit := token.MustBalanceOf(env.Chain, env.USDC, attacker)
	fmt.Printf("\nthe flagged attacker swept %s — caught by the %s pattern\n",
		env.USDC.Format(profit), leishen.PatternMBS)
	return nil
}
