// Command bzx walks through the paper's motivating example (Fig. 3): the
// bZx-1 attack of February 2020, reproduced step by step on the simulated
// substrate, then detected by LeiShen as a Symmetrical Buying and Selling
// (SBS) attack.
//
// Attack recipe (paper §IV-A):
//  1. borrow 10,000 ETH from dYdX;
//  2. collateralize 5,500 ETH to borrow 112 WBTC on a Compound-style
//     market at the fair oracle price (~49 ETH/WBTC);
//  3. open a 5x margin position with 1,300 ETH on a bZx-style desk — the
//     desk swaps its own 6,500 ETH for WBTC on Uniswap, pumping the price;
//  4. dump the 112 WBTC through a Kyber-style aggregator onto the pumped
//     Uniswap pool (~61 ETH/WBTC average);
//  5. repay dYdX and keep the difference (~70 ETH).
package main

import (
	"fmt"
	"log"

	"leishen"
	"leishen/internal/attacks"
)

func main() {
	scenario, ok := attacks.ByName("bZx-1")
	if !ok {
		log.Fatal("scenario not found")
	}
	fmt.Println("reproducing", scenario.Describe())
	result, err := scenario.Run()
	if err != nil {
		log.Fatalf("scenario: %v", err)
	}
	fmt.Printf("attacker EOA:      %s\n", result.AttackerEOA)
	fmt.Printf("attack contract:   %s\n", result.AttackContract)
	fmt.Printf("attacker profit:   %s\n", result.ProfitToken.Format(result.Profit))
	fmt.Println("(the real attacker netted ~71 ETH; bZx's internal books absorbed")
	fmt.Println(" most of the damage, while this clean AMM model pays the full")
	fmt.Println(" sandwich margin to the attacker — the trade structure is identical)")
	fmt.Println()

	det := leishen.NewDetector(result.Env.Chain, result.Env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: result.Env.WETH},
	})
	rep := det.Inspect(result.Receipt)

	fmt.Println("== LeiShen report ==")
	fmt.Println(rep.Detail())

	fmt.Println("== price volatility (paper Table I: ETH-WBTC 125%) ==")
	for _, pv := range leishen.SortedPairVolatilities(rep.Trades) {
		fmt.Printf("  %-12s %.1f%%\n", pv.Pair, pv.VolatilityPct)
	}
	if !rep.HasPattern(leishen.PatternSBS) {
		log.Fatal("expected an SBS detection")
	}
	fmt.Println("\nSBS pattern confirmed — the trade that pumped the price was")
	fmt.Println("executed by bZx itself, visible only after the account-level")
	fmt.Println("transfers are lifted to application level (paper Fig. 6).")
}
