// Command quickstart is the smallest end-to-end use of the public API:
// reproduce one real-world attack (bZx-1, the paper's motivating example)
// and run the LeiShen detector on its transaction.
package main

import (
	"fmt"
	"log"

	"leishen"
	"leishen/internal/attacks"
)

func main() {
	// Reproduce the bZx-1 attack on the simulated substrate.
	scenario, ok := attacks.ByName("bZx-1")
	if !ok {
		log.Fatal("scenario not found")
	}
	result, err := scenario.Run()
	if err != nil {
		log.Fatalf("run scenario: %v", err)
	}
	fmt.Printf("attack executed: profit %s\n\n", result.ProfitToken.Format(result.Profit))

	// Build a detector over the chain snapshot and inspect the receipt.
	detector := leishen.NewDetector(result.Env.Chain, result.Env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: result.Env.WETH},
	})
	report := detector.Inspect(result.Receipt)

	fmt.Println(report.Summary())
	fmt.Println()
	fmt.Println(report.Detail())
}
