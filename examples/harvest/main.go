// Command harvest reproduces the Harvest Finance attack of October 2020 —
// the canonical Multi-Round Buying and Selling (MBS) attack and the
// paper's showcase for why volatility-threshold detectors fail: the whole
// $24M exploit moved the fUSDC price by only ~0.5%.
//
// Per round, the attacker:
//  1. deposits USDC into the vault at the fair share price (buy fUSDC);
//  2. skews the vault's Curve-style pricing pool, inflating the vault's
//     USDT position valuation;
//  3. withdraws at the inflated share price (sell fUSDC at a profit);
//  4. unskews the pool and repeats.
package main

import (
	"fmt"
	"log"

	"leishen"
	"leishen/internal/attacks"
	"leishen/internal/baselines"
)

func main() {
	scenario, ok := attacks.ByName("Harvest Finance")
	if !ok {
		log.Fatal("scenario not found")
	}
	fmt.Println("reproducing", scenario.Describe())
	result, err := scenario.Run()
	if err != nil {
		log.Fatalf("scenario: %v", err)
	}
	fmt.Printf("attacker profit: %s\n\n", result.ProfitToken.Format(result.Profit))

	det := leishen.NewDetector(result.Env.Chain, result.Env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: result.Env.WETH},
	})
	rep := det.Inspect(result.Receipt)
	fmt.Println(rep.Summary())

	// The paper's point: volatility is tiny, so the 99%-threshold
	// baseline cannot see this attack while the MBS pattern can.
	fmt.Println("\npair volatilities within the attack transaction:")
	for _, pv := range leishen.SortedPairVolatilities(rep.Trades) {
		fmt.Printf("  %-16s %.3f%%\n", pv.Pair, pv.VolatilityPct)
	}
	var volDet baselines.VolatilityDetector
	fmt.Printf("\nvolatility-threshold detector (99%%): flagged=%v\n", volDet.Detect(rep.Trades))
	fmt.Printf("LeiShen MBS pattern:                 flagged=%v\n", rep.HasPattern(leishen.PatternMBS))
	if !rep.HasPattern(leishen.PatternMBS) || volDet.Detect(rep.Trades) {
		log.Fatal("unexpected detection outcome")
	}
}
