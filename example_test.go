package leishen_test

import (
	"fmt"
	"log"

	"leishen"
	"leishen/internal/attacks"
)

// ExampleNewDetector reproduces the bZx-1 attack (the paper's motivating
// example) on the simulated substrate and inspects it through the public
// API. Everything is deterministic, including the transaction hash.
func ExampleNewDetector() {
	scenario, ok := attacks.ByName("bZx-1")
	if !ok {
		log.Fatal("scenario not found")
	}
	result, err := scenario.Run()
	if err != nil {
		log.Fatal(err)
	}

	detector := leishen.NewDetector(result.Env.Chain, result.Env.Registry, leishen.Options{
		Simplify: leishen.SimplifyOptions{WETH: result.Env.WETH},
	})
	report := detector.Inspect(result.Receipt)

	fmt.Println(report.Summary())
	fmt.Println("SBS detected:", report.HasPattern(leishen.PatternSBS))
	// Output:
	// 0x7d7a3838: flpAttack [SBS on WBTC vs Compound (3 trades, volatility 132.65%)]
	// SBS detected: true
}
