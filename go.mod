module leishen

go 1.22
