// Package leishen is the public API of the LeiShen reproduction: a
// detector for flash-loan-based price manipulation attacks (flpAttacks)
// in Ethereum, from the ICDCS 2023 paper "Detecting Flash Loan Based
// Attacks in Ethereum".
//
// The detection pipeline takes a transaction receipt and answers whether
// it is a flash loan transaction, and if so, whether its trades match one
// of three attack patterns:
//
//	KRP — Keep Raising Price
//	SBS — Symmetrical Buying and Selling
//	MBS — Multi-Round Buying and Selling
//
// Quickstart:
//
//	det := leishen.NewDetector(chain, registry, leishen.Options{
//	    Simplify: leishen.SimplifyOptions{WETH: weth},
//	})
//	report := det.Inspect(receipt)
//	if report.IsAttack {
//	    fmt.Println(report.Summary())
//	}
//
// The repository also ships the full simulated-substrate evaluation of
// the paper: see internal/attacks for the 22 real-world attack
// reproductions, internal/world for the wild-corpus generator, and
// cmd/evalgen for the table/figure regeneration harness.
package leishen

import (
	"leishen/internal/archive"
	"leishen/internal/baselines"
	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/follower"
	"leishen/internal/metrics"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/tagging"
	"leishen/internal/trace"
	"leishen/internal/types"
)

// Core detection types, re-exported from the internal implementation.
type (
	// Detector is the LeiShen pipeline (paper Fig. 5).
	Detector = core.Detector
	// Options configures a Detector.
	Options = core.Options
	// Thresholds holds the pattern parameters (paper defaults: KRP >= 5
	// buys, SBS >= 28% pump, MBS >= 3 rounds).
	Thresholds = core.Thresholds
	// Report is the per-transaction verdict.
	Report = core.Report
	// Match is one detected pattern instance.
	Match = core.Match
	// PatternKind enumerates KRP / SBS / MBS.
	PatternKind = core.PatternKind
	// SimplifyOptions configures the §V-B2 transfer simplification rules.
	SimplifyOptions = simplify.Options

	// ChainView is the chain surface tagging reads (labels + creation
	// relationships); evm.Chain implements it.
	ChainView = tagging.ChainView
	// TokenResolver resolves token metadata for transfer extraction; the
	// token registry implements it.
	TokenResolver = trace.TokenResolver

	// Receipt is a transaction execution record.
	Receipt = evm.Receipt
	// Address is a 160-bit account address.
	Address = types.Address
	// Token identifies a crypto asset.
	Token = types.Token
	// Trade is the paper's trade tuple.
	Trade = types.Trade
)

// Attack patterns.
const (
	PatternKRP = core.PatternKRP
	PatternSBS = core.PatternSBS
	PatternMBS = core.PatternMBS
)

// NewDetector builds a detector over a chain snapshot. The account tagger
// is precomputed here; per-transaction inspection is then a pure function
// of the receipt.
func NewDetector(view ChainView, tokens TokenResolver, opts Options) *Detector {
	return core.NewDetector(view, tokens, opts)
}

// DefaultThresholds returns the paper's calibrated pattern parameters.
func DefaultThresholds() Thresholds { return core.DefaultThresholds() }

// PairVolatilities computes the paper's price-volatility formula per
// token pair over a trade list (Table I's measurement).
func PairVolatilities(trades []Trade) map[string]float64 {
	return baselines.PairVolatilities(trades)
}

// PairVolatility is one pair's measured volatility.
type PairVolatility = baselines.PairVolatility

// Batch scanning, re-exported from the internal/scan engine.
type (
	// ScanOptions sizes the scan worker pool and its work chunks.
	ScanOptions = scan.Options
	// ScanSummary aggregates one scan pass.
	ScanSummary = scan.Summary
)

// ScanReceipts inspects a batch of receipts on a worker pool and returns
// one report per receipt, in input order. Output is byte-identical to a
// sequential Inspect loop for any worker count.
func ScanReceipts(det *Detector, receipts []*Receipt, opts ScanOptions) ([]*Report, ScanSummary) {
	return scan.Scan(det, receipts, opts)
}

// ScanEach streams each report, in input order, to fn as soon as it and
// all its predecessors have resolved. A non-nil error from fn stops the
// scan and is returned.
func ScanEach(det *Detector, receipts []*Receipt, opts ScanOptions, fn func(i int, rep *Report) error) (ScanSummary, error) {
	return scan.Each(det, receipts, opts, fn)
}

// SortedPairVolatilities returns per-pair volatilities in descending
// volatility order — use this when printing or reporting, so output does
// not depend on map iteration order.
func SortedPairVolatilities(trades []Trade) []PairVolatility {
	return baselines.SortedPairVolatilities(trades)
}

// Durable verdict storage and continuous ingestion, re-exported from
// the internal/archive and internal/follower subsystems.
type (
	// Archive is the crash-safe append-only store of detection reports.
	Archive = archive.Archive
	// ArchiveOptions sizes the archive's log segments.
	ArchiveOptions = archive.Options
	// ArchiveRecord is one stored log entry.
	ArchiveRecord = archive.Record
	// ArchiveRawRecord is the zero-decode view of one stored report:
	// frame metadata plus the report JSON exactly as archived. Treat the
	// Report bytes as read-only — they may alias the archive's cache.
	ArchiveRawRecord = archive.RawRecord
	// ArchiveQuery selects stored reports by block range and verdict.
	ArchiveQuery = archive.Query
	// ArchiveCheckpoint marks the last fully-archived block.
	ArchiveCheckpoint = archive.Checkpoint
	// ArchiveStats snapshots the store's shape and the effectiveness of
	// its index layers (sidecar opens, segment pruning, record cache).
	ArchiveStats = archive.Stats
	// Follower tails a chain head, screening each block into an archive.
	Follower = follower.Follower
	// FollowerOptions configures the follower's scan pool and queue.
	FollowerOptions = follower.Options
	// BlockSource is the chain surface a follower tails; its methods
	// may fail, and transient failures are retried under RetryPolicy.
	BlockSource = follower.BlockSource
	// RetryPolicy bounds how the follower retries transient archive and
	// source failures (FollowerOptions.Retry).
	RetryPolicy = follower.RetryPolicy
)

// ChainSource adapts an in-process chain to the follower's fallible
// BlockSource interface.
func ChainSource(c *evm.Chain) BlockSource { return follower.ChainSource(c) }

// Verdict flags cached on every archived record, for ArchiveQuery.Flags.
const (
	FlagFlashLoan  = archive.FlagFlashLoan
	FlagAttack     = archive.FlagAttack
	FlagSuppressed = archive.FlagSuppressed
)

// OpenArchive opens (or creates) a durable report archive rooted at
// dir, recovering any torn tail a crash left behind.
func OpenArchive(dir string, opts ArchiveOptions) (*Archive, error) {
	return archive.Open(dir, opts)
}

// NewFollower starts a follower that screens src's blocks through det
// and appends the verdicts to arc, resuming from arc's checkpoint.
func NewFollower(src BlockSource, det *Detector, arc *Archive, opts FollowerOptions) (*Follower, error) {
	return follower.New(src, det, arc, opts)
}

// ArchiveQueryRaw selects stored reports without decoding them — the
// zero-decode read path serving layers should prefer when they only
// forward the stored JSON. Identical selection semantics (and
// byte-identical report documents) to arc.Select; equivalent to
// arc.SelectRaw(q).
func ArchiveQueryRaw(arc *Archive, q ArchiveQuery) ([]ArchiveRawRecord, bool, error) {
	return arc.SelectRaw(q)
}

// Runtime telemetry, re-exported from the internal/metrics subsystem.
type (
	// MetricsRegistry holds named series and renders them in Prometheus
	// text exposition format 0.0.4 (Registry.AppendText / Handler).
	MetricsRegistry = metrics.Registry
	// ScanMetrics instruments the batch engine; attach via
	// ScanOptions.Metrics.
	ScanMetrics = scan.Metrics
	// FollowerMetrics instruments the ingestion daemon; attach via
	// FollowerOptions.Metrics.
	FollowerMetrics = follower.Metrics
)

// Metrics returns the process-wide default registry — the one
// cmd/leishen exposes on /metrics. Libraries embedding the detector can
// register their own series on it, or build a private registry with
// metrics.NewRegistry and the New*Metrics constructors below.
func Metrics() *MetricsRegistry { return metrics.Default() }

// NewScanMetrics registers the scan engine's series on r and returns
// the bundle to attach to ScanOptions.Metrics.
func NewScanMetrics(r *MetricsRegistry) *ScanMetrics { return scan.NewMetrics(r) }

// NewFollowerMetrics registers the follower's series on r and returns
// the bundle to attach to FollowerOptions.Metrics.
func NewFollowerMetrics(r *MetricsRegistry) *FollowerMetrics { return follower.NewMetrics(r) }
