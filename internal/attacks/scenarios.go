package attacks

import (
	"fmt"

	"leishen/internal/core"
	"leishen/internal/dex"
	"leishen/internal/flashloan"
	"leishen/internal/lending"
)

// Scenario is one of the 22 real-world flpAttacks of paper Table I,
// reproduced on the simulated substrate, with the ground truth the
// evaluation needs.
type Scenario struct {
	// ID matches the row number in paper Table I.
	ID int
	// Name is the attacked application's name.
	Name string
	// Patterns are the attack patterns the attack conforms to (empty for
	// the five attacks with no clear pattern).
	Patterns []core.PatternKind
	// LeiShen / DeFiRanger / Explorer are the Table IV detection
	// expectations for each tool.
	LeiShen, DeFiRanger, Explorer bool
	// PaperVolatilityPct is the volatility Table I reports for the
	// primary pair (0 when the paper lists none).
	PaperVolatilityPct float64
	// Run executes the scenario from scratch.
	Run func() (*Result, error)
}

// All returns the 22 scenarios in Table I order.
func All() []Scenario {
	return []Scenario{
		{
			ID: 1, Name: "bZx-1",
			Patterns: []core.PatternKind{core.PatternSBS},
			LeiShen:  true, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 125,
			Run:                runBZx1,
		},
		{
			ID: 2, Name: "bZx-2",
			Patterns: []core.PatternKind{core.PatternKRP},
			LeiShen:  true, DeFiRanger: false, Explorer: true,
			PaperVolatilityPct: 136,
			Run: func() (*Result, error) {
				return runKRP(krpParams{
					targetSymbol: "sUSD", victimApp: "bZx", poolApp: "Uniswap",
					deskEvents: true, provider: flashloan.ProviderDydx,
					borrowWETH: "2000", buys: 18, trancheWETH: "20",
					poolWETH: "600", poolTGT: "160000",
				})
			},
		},
		{
			ID: 3, Name: "Balancer",
			Patterns: []core.PatternKind{core.PatternKRP},
			LeiShen:  true, DeFiRanger: false, Explorer: true,
			PaperVolatilityPct: 6.5e28,
			Run: func() (*Result, error) {
				return runKRP(krpParams{
					targetSymbol: "STA", victimApp: "Balancer", poolApp: "Balancer",
					weighted: true, deskEvents: true, provider: flashloan.ProviderDydx,
					borrowWETH: "6000", buys: 9, trancheWETH: "400",
					poolWETH: "800", poolTGT: "800000",
				})
			},
		},
		{
			ID: 4, Name: "Eminence",
			Patterns: []core.PatternKind{core.PatternMBS},
			LeiShen:  true, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 124,
			Run: func() (*Result, error) {
				return runDeskMBS(deskMBSParams{
					targetSymbol: "EMN", victimApp: "Eminence", poolApp: "Uniswap",
					aggSellHop: true, rounds: 3, provider: flashloan.ProviderAave,
					borrowWETH: "3000", deskBuyWETH: "300", pumpWETH: "100",
					poolWETH: "1000", poolTGT: "1000000",
				})
			},
		},
		{
			ID: 5, Name: "Harvest Finance",
			Patterns: []core.PatternKind{core.PatternMBS},
			LeiShen:  true, DeFiRanger: true, Explorer: true,
			PaperVolatilityPct: 0.5,
			Run: func() (*Result, error) {
				return runVaultMBS(vaultMBSParams{
					victimApp: "Harvest", shareSymbol: "fUSDC",
					rounds: 3, vaultEvents: true, provider: flashloan.ProviderUniswap,
					borrowUSDC: "50000000", depositUSDC: "25000000", skewUSDC: "17000000",
					poolDepth: "40000000", amp: 60,
				})
			},
		},
		{
			ID: 6, Name: "Cheese Bank",
			Patterns: []core.PatternKind{core.PatternSBS},
			LeiShen:  true, DeFiRanger: true, Explorer: false,
			PaperVolatilityPct: 1.5e4,
			Run: func() (*Result, error) {
				return runSBS(sbsParams{
					targetSymbol: "CHEESE", victimApp: "CheeseBank", poolApp: "Uniswap",
					provider:   flashloan.ProviderDydx,
					borrowWETH: "10000", buyWETH: "2000", marginWETH: "800", leverage: 5,
					poolWETH: "1000", poolTGT: "1000000",
				})
			},
		},
		{
			ID: 7, Name: "Value DeFi",
			Patterns: nil, // manipulation with no paper pattern (2 rounds)
			LeiShen:  false, DeFiRanger: true, Explorer: false,
			PaperVolatilityPct: 27.6,
			Run: func() (*Result, error) {
				return runVaultMBS(vaultMBSParams{
					victimApp: "ValueDeFi", shareSymbol: "mvUSD",
					rounds: 2, provider: flashloan.ProviderAave,
					borrowUSDC: "50000000", depositUSDC: "25000000", skewUSDC: "17000000",
					poolDepth: "40000000", amp: 10,
				})
			},
		},
		{
			ID: 8, Name: "Yearn Finance",
			Patterns: []core.PatternKind{core.PatternSBS},
			LeiShen:  true, DeFiRanger: true, Explorer: false,
			PaperVolatilityPct: 402.3,
			Run: func() (*Result, error) {
				return runSBS(sbsParams{
					targetSymbol: "3Crv", victimApp: "Yearn", poolApp: "Curve",
					provider:   flashloan.ProviderDydx,
					borrowWETH: "4000", buyWETH: "900", marginWETH: "240", leverage: 5,
					poolWETH: "1000", poolTGT: "2000000",
				})
			},
		},
		{
			ID: 9, Name: "Spartan Protocol",
			Patterns: []core.PatternKind{core.PatternKRP},
			LeiShen:  true, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 1.6e4,
			Run: func() (*Result, error) {
				return runKRP(krpParams{
					targetSymbol: "SPARTA", victimApp: "Spartan", poolApp: "PancakeSwap",
					provider:   flashloan.ProviderUniswap,
					borrowWETH: "10000", buys: 8, trancheWETH: "1000",
					poolWETH: "1500", poolTGT: "3000000",
				})
			},
		},
		{
			ID: 10, Name: "XToken-1",
			Patterns: nil, // 3 batch buys: below the KRP threshold
			LeiShen:  false, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 2.8e6,
			Run: func() (*Result, error) {
				return runKRP(krpParams{
					targetSymbol: "xSNXa", victimApp: "XToken", poolApp: "Uniswap",
					provider:   flashloan.ProviderAave,
					borrowWETH: "2000", buys: 3, trancheWETH: "300",
					poolWETH: "900", poolTGT: "400000",
				})
			},
		},
		{
			ID: 11, Name: "PancakeBunny",
			Patterns: nil, // 4 batch buys: below the KRP threshold
			LeiShen:  false, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 5.1e3,
			Run: func() (*Result, error) {
				return runKRP(krpParams{
					targetSymbol: "BUNNY", victimApp: "PancakeBunny", poolApp: "PancakeSwap",
					provider:   flashloan.ProviderUniswap,
					borrowWETH: "10000", buys: 4, trancheWETH: "2000",
					poolWETH: "1200", poolTGT: "2400000",
				})
			},
		},
		{
			ID: 12, Name: "JulSwap",
			Patterns: []core.PatternKind{core.PatternSBS},
			// Missed by LeiShen: the victim lives in a conflicting-label
			// creation tree and cannot be tagged (paper §VI-B).
			LeiShen: false, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 288.2,
			Run: func() (*Result, error) {
				return runSBS(sbsParams{
					targetSymbol: "JULb", victimApp: "JulSwap", poolApp: "PancakeSwap",
					aggSellHop: true, conflicted: true,
					provider:   flashloan.ProviderUniswap,
					borrowWETH: "4000", buyWETH: "800", marginWETH: "220", leverage: 5,
					poolWETH: "1000", poolTGT: "1500000",
				})
			},
		},
		{
			ID: 13, Name: "Belt Finance",
			Patterns: []core.PatternKind{core.PatternMBS},
			LeiShen:  true, DeFiRanger: true, Explorer: false,
			PaperVolatilityPct: 3.1,
			Run: func() (*Result, error) {
				return runVaultMBS(vaultMBSParams{
					victimApp: "Belt", shareSymbol: "beltBUSD",
					rounds: 4, provider: flashloan.ProviderAave,
					borrowUSDC: "60000000", depositUSDC: "25000000", skewUSDC: "20000000",
					poolDepth: "35000000", amp: 30,
				})
			},
		},
		{
			ID: 14, Name: "xWin Finance",
			Patterns: []core.PatternKind{core.PatternMBS},
			LeiShen:  true, DeFiRanger: true, Explorer: true,
			PaperVolatilityPct: 2.5e3,
			Run: func() (*Result, error) {
				return runVaultMBS(vaultMBSParams{
					victimApp: "xWin", shareSymbol: "xWUSD",
					rounds: 3, vaultEvents: true, provider: flashloan.ProviderUniswap,
					borrowUSDC: "40000000", depositUSDC: "18000000", skewUSDC: "15000000",
					poolDepth: "25000000", amp: 8,
				})
			},
		},
		{
			ID: 15, Name: "Wault Finance",
			Patterns: []core.PatternKind{core.PatternKRP},
			LeiShen:  true, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 0,
			Run: func() (*Result, error) {
				return runKRP(krpParams{
					targetSymbol: "WAULTx", victimApp: "Wault", poolApp: "PancakeSwap",
					provider:   flashloan.ProviderDydx,
					borrowWETH: "4000", buys: 6, trancheWETH: "350",
					poolWETH: "1100", poolTGT: "2000000",
				})
			},
		},
		{
			ID: 16, Name: "Twindex",
			Patterns: nil, // 2 desk rounds: below the MBS threshold
			LeiShen:  false, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 514.8,
			Run: func() (*Result, error) {
				return runDeskMBS(deskMBSParams{
					targetSymbol: "TWX", victimApp: "Twindex", poolApp: "PancakeSwap",
					aggSellHop: true, rounds: 2, provider: flashloan.ProviderAave,
					borrowWETH: "3000", deskBuyWETH: "250", pumpWETH: "110",
					poolWETH: "1000", poolTGT: "800000",
				})
			},
		},
		{
			ID: 17, Name: "AutoShark-2",
			Patterns: []core.PatternKind{core.PatternSBS},
			LeiShen:  true, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 7,
			Run: func() (*Result, error) {
				return runSBS(sbsParams{
					targetSymbol: "SHARK", victimApp: "AutoShark", poolApp: "PancakeSwap",
					aggSellHop: true, provider: flashloan.ProviderUniswap,
					borrowWETH: "4000", buyWETH: "700", marginWETH: "180", leverage: 5,
					poolWETH: "1000", poolTGT: "1200000",
				})
			},
		},
		{
			ID: 18, Name: "MY FARM PET",
			Patterns: nil, // asymmetric sell: below SBS symmetry
			LeiShen:  false, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 1.9e3,
			Run: func() (*Result, error) {
				return runSBS(sbsParams{
					targetSymbol: "MyFarmPET", victimApp: "MyFarmPet", poolApp: "PancakeSwap",
					aggSellHop: true, sellPct: 55,
					provider:   flashloan.ProviderUniswap,
					borrowWETH: "4000", buyWETH: "700", marginWETH: "260", leverage: 5,
					poolWETH: "1000", poolTGT: "900000",
				})
			},
		},
		{
			ID: 19, Name: "PancakeHunny",
			Patterns: []core.PatternKind{core.PatternMBS},
			// Missed by LeiShen: untaggable victim tree (paper §VI-B).
			LeiShen: false, DeFiRanger: false, Explorer: false,
			PaperVolatilityPct: 0,
			Run: func() (*Result, error) {
				return runDeskMBS(deskMBSParams{
					targetSymbol: "HUNNY", victimApp: "PancakeHunny", poolApp: "PancakeSwap",
					aggSellHop: true, conflicted: true, rounds: 3,
					provider:   flashloan.ProviderUniswap,
					borrowWETH: "3000", deskBuyWETH: "250", pumpWETH: "100",
					poolWETH: "1000", poolTGT: "1100000",
				})
			},
		},
		{
			ID: 20, Name: "AutoShark-3",
			Patterns: []core.PatternKind{core.PatternSBS},
			LeiShen:  true, DeFiRanger: true, Explorer: false,
			PaperVolatilityPct: 4.7e3,
			Run: func() (*Result, error) {
				return runSBS(sbsParams{
					targetSymbol: "JAWS", victimApp: "AutoShark", poolApp: "PancakeSwap",
					provider:   flashloan.ProviderUniswap,
					borrowWETH: "6000", buyWETH: "1200", marginWETH: "500", leverage: 5,
					poolWETH: "1000", poolTGT: "1800000",
					selfDestruct: true, // §VI-D2 trace hiding
				})
			},
		},
		{
			ID: 21, Name: "Ploutoz Finance",
			Patterns: []core.PatternKind{core.PatternSBS},
			LeiShen:  true, DeFiRanger: true, Explorer: false,
			PaperVolatilityPct: 3.8e3,
			Run: func() (*Result, error) {
				return runSBS(sbsParams{
					targetSymbol: "DOP", victimApp: "Ploutoz", poolApp: "PancakeSwap",
					provider:   flashloan.ProviderDydx,
					borrowWETH: "6000", buyWETH: "1100", marginWETH: "450", leverage: 5,
					poolWETH: "1000", poolTGT: "1500000",
				})
			},
		},
		{
			ID: 22, Name: "Saddle Finance",
			Patterns: []core.PatternKind{core.PatternSBS, core.PatternMBS},
			LeiShen:  true, DeFiRanger: true, Explorer: false,
			PaperVolatilityPct: 86.5,
			Run:                runSaddle,
		},
	}
}

// ByName returns the scenario with the given name.
func ByName(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// runBZx1 reproduces the paper's motivating example (Fig. 3 / Fig. 6):
// borrow 10,000 ETH from dYdX; collateralize 5,500 ETH to borrow 112 WBTC
// from a Compound-style market at the fair oracle price; post 1,300 ETH
// margin on a bZx-style desk whose 5x margin trade pumps the WBTC price on
// Uniswap; sell the 112 WBTC through a Kyber-style aggregator at the
// pumped price; repay and keep ~70 ETH.
func runBZx1() (*Result, error) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		return nil, err
	}
	wbtc := env.NewToken("WBTC", 8, "")
	// Uniswap WETH/WBTC pool at 49.1 ETH/WBTC: 4910 WETH / 100 WBTC.
	pool, err := env.NewPair(env.WETH, "4910", wbtc, "100", "Uniswap: WETH-WBTC Pool")
	if err != nil {
		return nil, err
	}
	// Compound-style market: WETH collateral, WBTC debt, spot oracle.
	compound, err := env.Chain.Deploy(env.Deployer, &lending.LendingPool{
		Collateral: env.WETH,
		Debt:       wbtc,
		PriceOracle: lending.Oracle{
			Kind: lending.OraclePairSpot, Pair: pool, Base: env.WETH, Quote: wbtc,
		},
		CollateralFactorBps: 10_000,
	}, "Compound: WBTC Market")
	if err != nil {
		return nil, err
	}
	if err := env.fund(compound, wbtc, "500"); err != nil {
		return nil, err
	}
	// bZx margin desk: posts WETH margin, levers 5x into WBTC on the pool.
	bzx, err := env.Chain.Deploy(env.Deployer, &lending.LendingPool{
		Collateral: wbtc,
		Debt:       env.WETH,
		PriceOracle: lending.Oracle{
			Kind: lending.OraclePairSpot, Pair: pool, Base: wbtc, Quote: env.WETH,
		},
		CollateralFactorBps: 10_000,
		MarginPair:          pool,
		MaxLeverage:         5,
	}, "bZx: Margin Desk")
	if err != nil {
		return nil, err
	}
	if err := env.fund(bzx, env.WETH, "8000"); err != nil {
		return nil, err
	}
	// Kyber aggregator for the WBTC dump.
	agg, err := env.Chain.Deploy(env.Deployer, &dex.Aggregator{FeeBps: 5}, "Kyber: Proxy")
	if err != nil {
		return nil, err
	}

	steps := []Step{
		// 5,500 ETH collateral -> borrow 112 WBTC at 49.1 (trade1).
		StepLendingDepositAndBorrow(compound, env.WETH, Fixed(env.WETH.Units("5500")), wbtc.Units("112")),
		// 1,300 ETH margin, 5x: bZx swaps 6,500 WETH for WBTC (trade2).
		StepMarginTrade(bzx, env.WETH, Fixed(env.WETH.Units("1300")), 5),
		// Dump the 112 WBTC via Kyber onto Uniswap (trade3).
		StepAggSwap(agg, pool, wbtc, env.WETH, AllBalance()),
	}
	return executeWETHAttack(env, flashloan.ProviderDydx, "10000", steps, false)
}

// runSaddle reproduces the Saddle Finance attack, the one known attack
// conforming to SBS and MBS simultaneously: three profitable vault rounds
// whose engineered share price path (1.0 -> 1.5 -> 1.8 -> back to ~1.0 ->
// 1.3) also forms a symmetric buy/pump/sell triple.
func runSaddle() (*Result, error) {
	w, err := buildVaultWorld("Saddle", "saddleUSD", "20000000", 1, false, 0)
	if err != nil {
		return nil, err
	}
	env := w.env
	dep := env.USDC.Units("1000000")

	skewUp := func(human string) Step {
		return StepStableExchange(w.pool, env.USDC, w.usdt, Fixed(env.USDC.Units(human)))
	}
	unskewAll := StepStableExchange(w.pool, w.usdt, env.USDC, AllBalance())

	steps := []Step{
		// Round 1: buy at ~1.0, inflate, sell at ~1.5.
		StepVaultDepositRecord(w.vaultAddr, env.USDC, w.share, Fixed(dep), "k1"),
		skewUp("14000000"),
		StepVaultWithdrawRecorded(w.vaultAddr, "k1"),
		// Round 2: buy at the inflated price, inflate more, sell higher.
		StepVaultDepositRecord(w.vaultAddr, env.USDC, w.share, Fixed(dep), "k2"),
		skewUp("3000000"),
		StepVaultWithdrawRecorded(w.vaultAddr, "k2"),
		// Reset to ~1.0 and run round 3: buy, inflate, sell at ~1.3.
		unskewAll,
		StepVaultDepositExactShares(w.vaultAddr, env.USDC, "k1"),
		skewUp("5500000"),
		StepVaultWithdrawRecorded(w.vaultAddr, "k1"),
		unskewAll,
	}
	return executeUSDCAttack(env, flashloan.ProviderAave, "30000000", steps)
}

// Describe renders a one-line scenario summary for reports.
func (s Scenario) Describe() string {
	pats := "none"
	if len(s.Patterns) > 0 {
		pats = ""
		for i, p := range s.Patterns {
			if i > 0 {
				pats += "+"
			}
			pats += p.String()
		}
	}
	return fmt.Sprintf("#%d %s (patterns: %s)", s.ID, s.Name, pats)
}
