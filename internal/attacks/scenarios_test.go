package attacks

import (
	"testing"

	"leishen/internal/core"
)

// TestScenarioTableConsistency pins the scenario metadata against the
// paper's empirical-study totals (§III-C): 22 attacks; 4 KRP, 8 SBS and
// 6 MBS conformers with Saddle in both SBS and MBS; 5 with no clear
// pattern; 17 conforming in total; LeiShen detects all conformers except
// JulSwap and PancakeHunny.
func TestScenarioTableConsistency(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("scenarios = %d, want 22", len(all))
	}
	counts := map[core.PatternKind]int{}
	var noPattern, conforming, leishen, dfr, explorer, both int
	seenIDs := map[int]bool{}
	for _, sc := range all {
		if seenIDs[sc.ID] {
			t.Errorf("duplicate scenario id %d", sc.ID)
		}
		seenIDs[sc.ID] = true
		if len(sc.Patterns) == 0 {
			noPattern++
		} else {
			conforming++
		}
		if len(sc.Patterns) == 2 {
			both++
		}
		for _, p := range sc.Patterns {
			counts[p]++
		}
		if sc.LeiShen {
			leishen++
		}
		if sc.DeFiRanger {
			dfr++
		}
		if sc.Explorer {
			explorer++
		}
		// Non-conforming attacks cannot be LeiShen-detectable.
		if len(sc.Patterns) == 0 && sc.LeiShen {
			t.Errorf("%s: no pattern but LeiShen-detectable", sc.Name)
		}
	}
	if counts[core.PatternKRP] != 4 || counts[core.PatternSBS] != 8 || counts[core.PatternMBS] != 6 {
		t.Errorf("pattern counts = %v, want KRP 4 / SBS 8 / MBS 6", counts)
	}
	if noPattern != 5 || conforming != 17 || both != 1 {
		t.Errorf("noPattern=%d conforming=%d dual=%d, want 5/17/1", noPattern, conforming, both)
	}
	if leishen != 15 || dfr != 9 || explorer != 4 {
		t.Errorf("detectable: LeiShen=%d DFR=%d Explorer=%d, want 15/9/4", leishen, dfr, explorer)
	}
	// The two LeiShen misses are exactly the paper's.
	for _, name := range []string{"JulSwap", "PancakeHunny"} {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if sc.LeiShen || len(sc.Patterns) == 0 {
			t.Errorf("%s should be a conforming attack LeiShen misses", name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("bZx-1"); !ok {
		t.Error("bZx-1 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("phantom scenario")
	}
	sc, _ := ByName("Saddle Finance")
	if got := sc.Describe(); got != "#22 Saddle Finance (patterns: SBS+MBS)" {
		t.Errorf("Describe = %q", got)
	}
	none, _ := ByName("Value DeFi")
	if got := none.Describe(); got != "#7 Value DeFi (patterns: none)" {
		t.Errorf("Describe = %q", got)
	}
}
