package attacks

import (
	"fmt"
	"time"

	"leishen/internal/lending"
	"leishen/internal/vault"

	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Result is the outcome of one executed scenario.
type Result struct {
	// Env is the ecosystem the attack ran in.
	Env *Env
	// Receipt is the flash loan attack transaction.
	Receipt *evm.Receipt
	// AttackerEOA and AttackContract identify the attacker.
	AttackerEOA    types.Address
	AttackContract types.Address
	// ProfitToken / Profit record the attacker's swept proceeds.
	ProfitToken types.Token
	Profit      uint256.Int
}

// scenarioGenesis is the deterministic genesis timestamp scenarios use.
var scenarioGenesis = time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

// sbsParams parameterizes the Symmetrical-Buying-and-Selling archetype
// (the bZx-1 shape): buy the target on the pool at a fair price, have the
// victim margin desk pump the pool with its own funds levered against a
// small attacker margin, then dump exactly the bought amount into the
// pumped pool. The dump's realized rate lands strictly between the fair
// buy rate and the pump trade's average — the paper's rate sandwich.
type sbsParams struct {
	targetSymbol string
	victimApp    string // margin desk label
	poolApp      string // pool label
	aggSellHop   bool   // route the dump through an aggregator
	conflicted   bool   // deploy the victim desk in a conflicting-label tree
	provider     flashloan.Provider
	borrowWETH   string // flash loan principal
	buyWETH      string // trade1 size
	marginWETH   string // attacker margin posted on the victim desk
	leverage     uint64 // victim pump = margin * leverage
	poolWETH     string // pool depth
	poolTGT      string
	sellPct      uint64 // 0 = symmetric (recorded); else percent of balance
	selfDestruct bool
}

func runSBS(p sbsParams) (*Result, error) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		return nil, err
	}
	tgt := env.NewToken(p.targetSymbol, 18, "")
	pool, err := env.NewPairEvents(env.WETH, p.poolWETH, tgt, p.poolTGT, p.poolApp+": Pool", false)
	if err != nil {
		return nil, err
	}
	// Victim margin desk: levers attacker margin 5x with its own WETH,
	// swapping through the pool (the bZx-1 mechanism).
	victim := &lending.LendingPool{
		Collateral: tgt,
		Debt:       env.WETH,
		PriceOracle: lending.Oracle{
			Kind: lending.OraclePairSpot, Pair: pool, Base: tgt, Quote: env.WETH,
		},
		CollateralFactorBps: 10_000,
		MarginPair:          pool,
		MaxLeverage:         p.leverage,
		WETH:                env.WETH,
	}
	var victimAddr types.Address
	if p.conflicted {
		victimAddr, err = env.NewConflictedVictim(victim, p.victimApp)
	} else {
		victimAddr, err = env.Chain.Deploy(env.Deployer, victim, p.victimApp+": Margin Desk")
	}
	if err != nil {
		return nil, err
	}
	// Fund the desk's WETH inventory (the funds the pump spends).
	if err := env.fund(victimAddr, env.WETH, "100000"); err != nil {
		return nil, err
	}
	var agg types.Address
	if p.aggSellHop || p.sellPct > 0 {
		if agg, err = env.Chain.Deploy(env.Deployer, &dex.Aggregator{FeeBps: 5}, "Kyber: Proxy"); err != nil {
			return nil, err
		}
	}

	const key = "sbs:X"
	steps := []Step{
		StepPairSwapRecord(pool, env.WETH, tgt, Fixed(env.WETH.Units(p.buyWETH)), key),
		StepMarginTrade(victimAddr, env.WETH, Fixed(env.WETH.Units(p.marginWETH)), p.leverage),
	}
	switch {
	case p.sellPct > 0:
		steps = append(steps, StepAggSwap(agg, pool, tgt, env.WETH, Pct(p.sellPct)))
	case p.aggSellHop:
		steps = append(steps, StepAggSwapRecorded(agg, pool, tgt, env.WETH, key))
	default:
		steps = append(steps, StepPairSwapRecorded(pool, tgt, env.WETH, key))
	}
	return executeWETHAttack(env, p.provider, p.borrowWETH, steps, p.selfDestruct)
}

// krpParams parameterizes the Keep-Raising-Price archetype: N tranche buys
// on a pool at rising prices, then one dump on the oracle desk.
type krpParams struct {
	targetSymbol string
	victimApp    string
	poolApp      string
	weighted     bool // Balancer-style weighted pool instead of a pair
	deskEvents   bool
	provider     flashloan.Provider
	borrowWETH   string
	buys         int
	trancheWETH  string
	poolWETH     string
	poolTGT      string
	selfDestruct bool
}

func runKRP(p krpParams) (*Result, error) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		return nil, err
	}
	tgt := env.NewToken(p.targetSymbol, 18, "")
	desk := &OracleDesk{Base: env.WETH, Target: tgt, SpreadBps: 10, EmitTradeEvents: p.deskEvents}

	var buyStep func(i int) Step
	if p.weighted {
		pool, err := env.Chain.Deploy(env.Deployer, &dex.WeightedPool{
			Tokens:          []types.Token{env.WETH, tgt},
			Weights:         []uint64{20, 80},
			SwapFeeBps:      30,
			EmitTradeEvents: true,
			BPTSymbol:       "BPT",
		}, p.poolApp+": Pool")
		if err != nil {
			return nil, err
		}
		if _, err := dex.RegisterLPTokenAs(env.Chain, env.Registry, pool, "bpt", "BPT"); err != nil {
			return nil, err
		}
		if err := env.fund(env.Deployer, env.WETH, p.poolWETH); err != nil {
			return nil, err
		}
		if err := env.fund(env.Deployer, tgt, p.poolTGT); err != nil {
			return nil, err
		}
		for _, tok := range []types.Token{env.WETH, tgt} {
			if r := env.Chain.Send(env.Deployer, tok.Address, "approve", pool, uint256.Max()); !r.Success {
				return nil, fmt.Errorf("approve: %s", r.Err)
			}
		}
		amounts := []uint256.Int{env.WETH.Units(p.poolWETH), tgt.Units(p.poolTGT)}
		if r := env.Chain.Send(env.Deployer, pool, "joinPool", amounts, env.Deployer); !r.Success {
			return nil, fmt.Errorf("join: %s", r.Err)
		}
		desk.RefWeighted = pool
		buyStep = func(int) Step {
			return StepWeightedSwap(pool, env.WETH, tgt, Fixed(env.WETH.Units(p.trancheWETH)))
		}
	} else {
		pool, err := env.NewPair(env.WETH, p.poolWETH, tgt, p.poolTGT, p.poolApp+": Pool")
		if err != nil {
			return nil, err
		}
		desk.RefPair = pool
		buyStep = func(int) Step {
			return StepPairSwap(pool, env.WETH, tgt, Fixed(env.WETH.Units(p.trancheWETH)))
		}
	}
	deskAddr, err := env.NewDesk(desk, p.victimApp+": Exchange", "100000", "")
	if err != nil {
		return nil, err
	}

	steps := []Step{
		StepRepeat(p.buys, buyStep),
		StepDeskSell(deskAddr, tgt, AllBalance()),
	}
	return executeWETHAttack(env, p.provider, p.borrowWETH, steps, p.selfDestruct)
}

// deskMBSParams parameterizes the desk-based Multi-Round archetype:
// per round, buy from the desk at spot, pump the pool (below the SBS
// volatility threshold), sell back at the pumped quote, unwind.
type deskMBSParams struct {
	targetSymbol string
	victimApp    string
	poolApp      string
	aggSellHop   bool
	conflicted   bool
	rounds       int
	provider     flashloan.Provider
	borrowWETH   string
	deskBuyWETH  string
	pumpWETH     string
	poolWETH     string
	poolTGT      string
}

func runDeskMBS(p deskMBSParams) (*Result, error) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		return nil, err
	}
	tgt := env.NewToken(p.targetSymbol, 18, "")
	pool, err := env.NewPair(env.WETH, p.poolWETH, tgt, p.poolTGT, p.poolApp+": Pool")
	if err != nil {
		return nil, err
	}
	desk := &OracleDesk{Base: env.WETH, Target: tgt, RefPair: pool, SpreadBps: 10}
	var deskAddr types.Address
	if p.conflicted {
		deskAddr, err = env.NewConflictedVictim(desk, p.victimApp)
		if err == nil {
			if err := env.fund(deskAddr, env.WETH, "50000"); err != nil {
				return nil, err
			}
			if err := env.fund(deskAddr, tgt, "2000000"); err != nil {
				return nil, err
			}
		}
	} else {
		deskAddr, err = env.NewDesk(desk, p.victimApp+": Exchange", "50000", "2000000")
	}
	if err != nil {
		return nil, err
	}
	var agg types.Address
	if p.aggSellHop {
		if agg, err = env.Chain.Deploy(env.Deployer, &dex.Aggregator{FeeBps: 5}, "Kyber: Proxy"); err != nil {
			return nil, err
		}
	}

	round := func(i int) Step {
		key := fmt.Sprintf("mbs:%d", i)
		sell := StepDeskSellRecorded(deskAddr, tgt, key)
		if p.aggSellHop {
			sell = StepAggDeskSellRecorded(agg, deskAddr, tgt, env.WETH, key)
		}
		inner := []Step{
			StepDeskBuyRecord(deskAddr, env.WETH, tgt, Fixed(env.WETH.Units(p.deskBuyWETH)), key),
			StepPairSwap(pool, env.WETH, tgt, Fixed(env.WETH.Units(p.pumpWETH))),
			sell,
			StepPairSwap(pool, tgt, env.WETH, AllBalance()), // unwind
		}
		return func(env *evm.Env) error {
			for _, s := range inner {
				if err := s(env); err != nil {
					return err
				}
			}
			return nil
		}
	}
	steps := []Step{StepRepeat(p.rounds, round)}
	return executeWETHAttack(env, p.provider, p.borrowWETH, steps, false)
}

// executeWETHAttack wires a WETH-denominated flash loan around the steps,
// deploys the attack contract, runs the attack, and measures the profit.
func executeWETHAttack(env *Env, provider flashloan.Provider, borrow string, steps []Step, selfDestruct bool) (*Result, error) {
	loan := LoanSpec{
		Provider: provider,
		Token:    env.WETH,
		Amount:   env.WETH.Units(borrow),
	}
	switch provider {
	case flashloan.ProviderUniswap:
		loan.Lender = env.FundingPair
		loan.PairOther = env.USDC
		loan.FeeBps = 35
	case flashloan.ProviderAave:
		loan.Lender = env.AavePool
		loan.FeeBps = 9
	case flashloan.ProviderDydx:
		loan.Lender = env.DydxSolo
	}
	contract := &AttackContract{
		Loan:              loan,
		Steps:             steps,
		ProfitTokens:      []types.Token{env.WETH},
		SelfDestructAfter: selfDestruct,
	}
	eoa, addr, err := env.NewAttacker(contract)
	if err != nil {
		return nil, err
	}
	receipt, err := env.ExecuteAttack(eoa, addr)
	if err != nil {
		return &Result{Env: env, Receipt: receipt, AttackerEOA: eoa, AttackContract: addr}, err
	}
	profit, err := balanceOf(env, env.WETH, eoa)
	if err != nil {
		return nil, err
	}
	return &Result{
		Env: env, Receipt: receipt,
		AttackerEOA: eoa, AttackContract: addr,
		ProfitToken: env.WETH, Profit: profit,
	}, nil
}

func balanceOf(env *Env, tok types.Token, holder types.Address) (uint256.Int, error) {
	ret, err := env.Chain.View(tok.Address, "balanceOf", holder)
	return evm.Ret[uint256.Int](ret, 0, err)
}

// vaultMBSParams parameterizes the vault-based Multi-Round archetype
// (Harvest Finance shape): per round, deposit underlying at the fair
// share price, skew the vault's pricing pool upward, withdraw at the
// inflated price, unskew.
type vaultMBSParams struct {
	victimApp   string
	shareSymbol string
	rounds      int
	vaultEvents bool
	defenseBps  uint64
	provider    flashloan.Provider
	borrowUSDC  string
	depositUSDC string
	skewUSDC    string
	poolDepth   string // per-side stable pool depth
	amp         uint64
}

// vaultWorld is the deployed vault ecosystem shared by vault archetypes.
type vaultWorld struct {
	env       *Env
	usdt      types.Token
	pool      types.Address
	vaultAddr types.Address
	share     types.Token
}

// buildVaultWorld deploys a Curve-style USDC/USDT pool, a yield vault
// priced off it, honest vault depositors (idle liquidity), and a USDT
// strategy position whose valuation is the manipulation surface.
func buildVaultWorld(victimApp, shareSymbol, poolDepth string, amp uint64, vaultEvents bool, defenseBps uint64) (*vaultWorld, error) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		return nil, err
	}
	usdt := env.NewToken("USDT", 6, "Tether: USDT")
	pool, err := env.Chain.Deploy(env.Deployer, &dex.StableSwapPool{
		Tokens:   []types.Token{env.USDC, usdt},
		Amp:      amp,
		FeeBps:   4,
		LPSymbol: "crvUSD",
	}, "Curve: USDC-USDT Pool")
	if err != nil {
		return nil, err
	}
	if _, err := dex.RegisterLPTokenAs(env.Chain, env.Registry, pool, "lpToken", "crvUSD"); err != nil {
		return nil, err
	}
	if err := env.fund(env.Deployer, env.USDC, poolDepth); err != nil {
		return nil, err
	}
	if err := env.fund(env.Deployer, usdt, poolDepth); err != nil {
		return nil, err
	}
	for _, tok := range []types.Token{env.USDC, usdt} {
		if r := env.Chain.Send(env.Deployer, tok.Address, "approve", pool, uint256.Max()); !r.Success {
			return nil, fmt.Errorf("approve: %s", r.Err)
		}
	}
	if r := env.Chain.Send(env.Deployer, pool, "addLiquidity",
		[]uint256.Int{env.USDC.Units(poolDepth), usdt.Units(poolDepth)}, env.Deployer); !r.Success {
		return nil, fmt.Errorf("seed pool: %s", r.Err)
	}

	vaultAddr, err := env.Chain.Deploy(env.Deployer, &vault.Vault{
		Underlying:      env.USDC,
		Reserve:         usdt,
		PricePool:       pool,
		ShareSymbol:     shareSymbol,
		DefenseBps:      defenseBps,
		EmitTradeEvents: vaultEvents,
	}, victimApp+": Vault")
	if err != nil {
		return nil, err
	}
	share, err := dex.RegisterLPTokenAs(env.Chain, env.Registry, vaultAddr, "shareToken", shareSymbol)
	if err != nil {
		return nil, err
	}

	// Honest depositors provide idle USDC; the strategy holds USDT.
	lp := env.Chain.NewEOA("")
	if err := env.fund(lp, env.USDC, "30000000"); err != nil {
		return nil, err
	}
	if r := env.Chain.Send(lp, env.USDC.Address, "approve", vaultAddr, uint256.Max()); !r.Success {
		return nil, fmt.Errorf("approve vault: %s", r.Err)
	}
	if r := env.Chain.Send(lp, vaultAddr, "deposit", env.USDC.Units("30000000")); !r.Success {
		return nil, fmt.Errorf("seed vault: %s", r.Err)
	}
	if err := env.fund(env.Deployer, usdt, "30000000"); err != nil {
		return nil, err
	}
	if r := env.Chain.Send(env.Deployer, usdt.Address, "approve", vaultAddr, uint256.Max()); !r.Success {
		return nil, fmt.Errorf("approve reserve: %s", r.Err)
	}
	if r := env.Chain.Send(env.Deployer, vaultAddr, "fundReserve", usdt.Units("30000000")); !r.Success {
		return nil, fmt.Errorf("fund reserve: %s", r.Err)
	}
	return &vaultWorld{env: env, usdt: usdt, pool: pool, vaultAddr: vaultAddr, share: share}, nil
}

func runVaultMBS(p vaultMBSParams) (*Result, error) {
	w, err := buildVaultWorld(p.victimApp, p.shareSymbol, p.poolDepth, p.amp, p.vaultEvents, p.defenseBps)
	if err != nil {
		return nil, err
	}
	env := w.env

	round := func(i int) Step {
		key := fmt.Sprintf("vmbs:%d", i)
		inner := []Step{
			// Buy shares at the fair price.
			StepVaultDepositRecord(w.vaultAddr, env.USDC, w.share, Fixed(env.USDC.Units(p.depositUSDC)), key),
			// Skew the pool upward: USDC in, USDT out; the vault USDT
			// position revalues upward.
			StepStableExchange(w.pool, env.USDC, w.usdt, Fixed(env.USDC.Units(p.skewUSDC))),
			// Sell the shares at the inflated price.
			StepVaultWithdrawRecorded(w.vaultAddr, key),
			// Unskew: sell the USDT back.
			StepStableExchange(w.pool, w.usdt, env.USDC, AllBalance()),
		}
		return func(env *evm.Env) error {
			for _, s := range inner {
				if err := s(env); err != nil {
					return err
				}
			}
			return nil
		}
	}
	steps := []Step{StepRepeat(p.rounds, round)}
	return executeUSDCAttack(env, p.provider, p.borrowUSDC, steps)
}

// executeUSDCAttack mirrors executeWETHAttack for USDC-denominated loans.
func executeUSDCAttack(env *Env, provider flashloan.Provider, borrow string, steps []Step) (*Result, error) {
	loan := LoanSpec{
		Provider: provider,
		Token:    env.USDC,
		Amount:   env.USDC.Units(borrow),
	}
	switch provider {
	case flashloan.ProviderUniswap:
		loan.Lender = env.FundingPair
		loan.PairOther = env.WETH
		loan.FeeBps = 35
	case flashloan.ProviderAave:
		loan.Lender = env.AavePool
		loan.FeeBps = 9
	case flashloan.ProviderDydx:
		loan.Lender = env.DydxSolo
	}
	contract := &AttackContract{
		Loan:         loan,
		Steps:        steps,
		ProfitTokens: []types.Token{env.USDC},
	}
	eoa, addr, err := env.NewAttacker(contract)
	if err != nil {
		return nil, err
	}
	receipt, err := env.ExecuteAttack(eoa, addr)
	if err != nil {
		return &Result{Env: env, Receipt: receipt, AttackerEOA: eoa, AttackContract: addr}, err
	}
	profit, err := balanceOf(env, env.USDC, eoa)
	if err != nil {
		return nil, err
	}
	return &Result{
		Env: env, Receipt: receipt,
		AttackerEOA: eoa, AttackContract: addr,
		ProfitToken: env.USDC, Profit: profit,
	}, nil
}
