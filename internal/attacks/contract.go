package attacks

import (
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Step is one action the attack contract performs inside the flash loan
// callback. Steps are immutable configuration (closures over scenario
// constants); all mutable state flows through the journaled EVM.
type Step func(env *evm.Env) error

// LoanSpec describes where the attack contract borrows its capital.
type LoanSpec struct {
	// Provider selects the Table II protocol to borrow through.
	Provider flashloan.Provider
	// Lender is the pair (Uniswap), pool (AAVE) or solo margin (dYdX).
	Lender types.Address
	// Token is the borrowed asset.
	Token types.Token
	// PairOther is the other token of a Uniswap lender pair (needed to
	// orient the flash swap).
	PairOther types.Token
	// Amount is the principal.
	Amount uint256.Int
	// FeeBps is the repayment margin over principal (covers the lender's
	// fee check; Uniswap needs >= ~30.1, AAVE 9, dYdX ~0).
	FeeBps uint64
}

// AttackContract is the programmable attack contract of the paper's
// attack model (Fig. 2): deployed by the attacker EOA, it takes a flash
// loan, runs the manipulation steps inside the callback, repays, and
// forwards the profit to the attacker.
type AttackContract struct {
	// Loan is the flash loan to take when "attack" is invoked.
	Loan LoanSpec
	// InnerLoans are additional flash loans taken inside the first one's
	// callback, innermost last — seven of the paper's 44 studied attacks
	// borrow from more than one provider at once (Beanstalk borrowed five
	// assets from three providers).
	InnerLoans []LoanSpec
	// Steps run inside the innermost flash loan callback, in order.
	Steps []Step
	// ProfitTokens are swept to the attacker EOA after repayment.
	ProfitTokens []types.Token
	// ProfitTo receives the profit (the attacker EOA).
	ProfitTo types.Address
	// SelfDestructAfter removes the contract code after the attack, the
	// trace-hiding behaviour of §VI-D2.
	SelfDestructAfter bool
}

var _ evm.Contract = (*AttackContract)(nil)

// Call dispatches the attack contract.
func (a *AttackContract) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "attack":
		return a.attack(env)
	case "uniswapV2Call", "executeOperation":
		// Uniswap flash swap / AAVE callback: descend into the next inner
		// loan (or run the steps at the innermost level), then repay this
		// level's loan by transfer.
		spec := a.currentSpec(env)
		if err := a.descendOrRun(env); err != nil {
			return nil, err
		}
		return nil, a.repayByTransfer(env, env.Caller(), spec)
	case "callFunction":
		// dYdX callback: repay by approving the solo margin's pull.
		spec := a.currentSpec(env)
		if err := a.descendOrRun(env); err != nil {
			return nil, err
		}
		repay := spec.Amount.MustAdd(uint256.FromUint64(100))
		_, err := env.Call(spec.Token.Address, "approve", uint256.Zero(), env.Caller(), repay)
		return nil, err
	case "":
		// Plain ETH receipt: fire the reentrancy hook when armed (the
		// Akropolis-style exploit); otherwise just accept.
		return nil, HandleReentrancyHook(env)
	default:
		return nil, evm.Revertf("attack contract: unknown method %q", method)
	}
}

// loanDepthKey tracks how many loans are open during the attack.
const loanDepthKey = "loan:depth"

// currentSpec resolves which loan the executing callback services.
func (a *AttackContract) currentSpec(env *evm.Env) LoanSpec {
	d := env.SGet(loanDepthKey).Uint64()
	if d == 0 {
		return a.Loan
	}
	return a.InnerLoans[d-1]
}

// descendOrRun either initiates the next inner loan or, at the innermost
// level, runs the manipulation steps.
func (a *AttackContract) descendOrRun(env *evm.Env) error {
	d := int(env.SGet(loanDepthKey).Uint64())
	if d < len(a.InnerLoans) {
		env.SSet(loanDepthKey, uint256.FromUint64(uint64(d+1)))
		if err := a.initiate(env, a.InnerLoans[d]); err != nil {
			return err
		}
		env.SSet(loanDepthKey, uint256.FromUint64(uint64(d)))
		return nil
	}
	return a.runSteps(env)
}

// initiate fires one flash loan per its provider protocol.
func (a *AttackContract) initiate(env *evm.Env, loan LoanSpec) error {
	switch loan.Provider {
	case flashloan.ProviderUniswap:
		t0, _ := dex.SortTokens(loan.Token, loan.PairOther)
		out0, out1 := loan.Amount, uint256.Zero()
		if loan.Token.Address != t0.Address {
			out0, out1 = uint256.Zero(), loan.Amount
		}
		_, err := env.Call(loan.Lender, "swap", uint256.Zero(), out0, out1, env.Self(), "flash")
		return err
	case flashloan.ProviderAave:
		_, err := env.Call(loan.Lender, "flashLoan", uint256.Zero(), env.Self(), loan.Token.Address, loan.Amount, "attack")
		return err
	case flashloan.ProviderDydx:
		_, err := env.Call(loan.Lender, "operate", uint256.Zero(), env.Self(), loan.Token.Address, loan.Amount, "attack")
		return err
	default:
		return evm.Revertf("attack contract: unknown provider %d", loan.Provider)
	}
}

func (a *AttackContract) runSteps(env *evm.Env) error {
	for i, s := range a.Steps {
		if err := s(env); err != nil {
			return evm.Revertf("step %d: %v", i, err)
		}
	}
	return nil
}

func (a *AttackContract) repayByTransfer(env *evm.Env, to types.Address, spec LoanSpec) error {
	fee := spec.Amount.MustMulDiv(uint256.FromUint64(spec.FeeBps), uint256.FromUint64(10_000))
	repay := spec.Amount.MustAdd(fee)
	_, err := env.Call(spec.Token.Address, "transfer", uint256.Zero(), to, repay)
	return err
}

// attack triggers the flash loan, sweeps profit, and optionally hides.
func (a *AttackContract) attack(env *evm.Env) ([]any, error) {
	env.SSet(loanDepthKey, uint256.Zero())
	if err := a.initiate(env, a.Loan); err != nil {
		return nil, err
	}

	// Sweep profit to the attacker (attack model step 3).
	for _, tok := range a.ProfitTokens {
		bal, err := evm.Ret0[uint256.Int](env.Call(tok.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return nil, err
		}
		if bal.IsZero() {
			continue
		}
		if _, err := env.Call(tok.Address, "transfer", uint256.Zero(), a.ProfitTo, bal); err != nil {
			return nil, err
		}
	}
	if a.SelfDestructAfter {
		if err := env.SelfDestruct(a.ProfitTo); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// --- Step constructors -------------------------------------------------

// amountOf resolves either a fixed amount or the contract's full balance.
type amountOf struct {
	fixed uint256.Int
	all   bool
	pct   uint64 // percent of balance when all is false and pct > 0
}

// Fixed uses an exact amount.
func Fixed(v uint256.Int) amountOf { return amountOf{fixed: v} }

// AllBalance uses the contract's entire balance of the step's input token.
func AllBalance() amountOf { return amountOf{all: true} }

// Pct uses a percentage of the balance.
func Pct(p uint64) amountOf { return amountOf{pct: p} }

func (ao amountOf) resolve(env *evm.Env, tok types.Token) (uint256.Int, error) {
	if !ao.all && ao.pct == 0 {
		return ao.fixed, nil
	}
	bal, err := evm.Ret0[uint256.Int](env.Call(tok.Address, "balanceOf", uint256.Zero(), env.Self()))
	if err != nil {
		return uint256.Int{}, err
	}
	if ao.all {
		return bal, nil
	}
	return bal.MustMulDiv(uint256.FromUint64(ao.pct), uint256.FromUint64(100)), nil
}

// StepPairSwap swaps on a constant-product pair using the contract's own
// balance: transfer in, swap out.
func StepPairSwap(pair types.Address, tokenIn, tokenOut types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, tokenIn)
		if err != nil {
			return err
		}
		ret, err := env.Call(pair, "getReserves", uint256.Zero())
		if err != nil {
			return err
		}
		r0, r1 := ret[0].(uint256.Int), ret[1].(uint256.Int)
		t0, _ := dex.SortTokens(tokenIn, tokenOut)
		reserveIn, reserveOut := r0, r1
		if tokenIn.Address != t0.Address {
			reserveIn, reserveOut = r1, r0
		}
		out, err := dex.GetAmountOut(amt, reserveIn, reserveOut, dex.FeeBps)
		if err != nil {
			return err
		}
		if _, err := env.Call(tokenIn.Address, "transfer", uint256.Zero(), pair, amt); err != nil {
			return err
		}
		out0, out1 := out, uint256.Zero()
		if tokenIn.Address == t0.Address {
			out0, out1 = uint256.Zero(), out
		}
		_, err = env.Call(pair, "swap", uint256.Zero(), out0, out1, env.Self(), "")
		return err
	}
}

// StepDeskBuy buys the desk's target token with base.
func StepDeskBuy(desk types.Address, base types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, base)
		if err != nil {
			return err
		}
		if _, err := env.Call(base.Address, "approve", uint256.Zero(), desk, amt); err != nil {
			return err
		}
		_, err = env.Call(desk, "buyTarget", uint256.Zero(), amt)
		return err
	}
}

// StepDeskSell sells the desk's target token for base.
func StepDeskSell(desk types.Address, target types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, target)
		if err != nil {
			return err
		}
		if _, err := env.Call(target.Address, "approve", uint256.Zero(), desk, amt); err != nil {
			return err
		}
		_, err = env.Call(desk, "sellTarget", uint256.Zero(), amt)
		return err
	}
}

// StepWeightedSwap swaps on a Balancer-style weighted pool.
func StepWeightedSwap(pool types.Address, tokenIn, tokenOut types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, tokenIn)
		if err != nil {
			return err
		}
		if _, err := env.Call(tokenIn.Address, "approve", uint256.Zero(), pool, amt); err != nil {
			return err
		}
		_, err = env.Call(pool, "swapExactAmountIn", uint256.Zero(), tokenIn.Address, amt, tokenOut.Address, uint256.Zero(), env.Self())
		return err
	}
}

// StepStableExchange swaps on a Curve-style stableswap pool.
func StepStableExchange(pool types.Address, tokenIn, tokenOut types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, tokenIn)
		if err != nil {
			return err
		}
		if _, err := env.Call(tokenIn.Address, "approve", uint256.Zero(), pool, amt); err != nil {
			return err
		}
		_, err = env.Call(pool, "exchange", uint256.Zero(), tokenIn.Address, tokenOut.Address, amt, uint256.Zero(), env.Self())
		return err
	}
}

// StepVaultDeposit deposits underlying into a yield vault.
func StepVaultDeposit(vaultAddr types.Address, underlying types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, underlying)
		if err != nil {
			return err
		}
		if _, err := env.Call(underlying.Address, "approve", uint256.Zero(), vaultAddr, amt); err != nil {
			return err
		}
		_, err = env.Call(vaultAddr, "deposit", uint256.Zero(), amt)
		return err
	}
}

// StepVaultWithdraw redeems vault shares.
func StepVaultWithdraw(vaultAddr types.Address, shareToken types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, shareToken)
		if err != nil {
			return err
		}
		_, err = env.Call(vaultAddr, "withdraw", uint256.Zero(), amt)
		return err
	}
}

// StepLendingDepositAndBorrow posts collateral and borrows at the oracle
// limit — the bZx-1 Compound leg, which surfaces as a swap trade.
func StepLendingDepositAndBorrow(pool types.Address, collateral types.Token, collateralAmt amountOf, borrowAmt uint256.Int) Step {
	return func(env *evm.Env) error {
		amt, err := collateralAmt.resolve(env, collateral)
		if err != nil {
			return err
		}
		if _, err := env.Call(collateral.Address, "approve", uint256.Zero(), pool, amt); err != nil {
			return err
		}
		if _, err := env.Call(pool, "depositCollateral", uint256.Zero(), amt); err != nil {
			return err
		}
		_, err = env.Call(pool, "borrow", uint256.Zero(), borrowAmt)
		return err
	}
}

// StepMarginTrade opens a leveraged margin position on a bZx-style desk,
// moving the margin pair's price with the platform's own funds.
func StepMarginTrade(pool types.Address, marginToken types.Token, amount amountOf, leverage uint64) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, marginToken)
		if err != nil {
			return err
		}
		if _, err := env.Call(marginToken.Address, "approve", uint256.Zero(), pool, amt); err != nil {
			return err
		}
		_, err = env.Call(pool, "marginTrade", uint256.Zero(), amt, leverage)
		return err
	}
}

// StepAggSwap routes a swap through a fee-taking aggregator (the Kyber
// hop of bZx-1's WBTC dump) — account-level counterparties diverge from
// app-level ones, which is what defeats DeFiRanger.
func StepAggSwap(agg, pair types.Address, tokenIn, tokenOut types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, tokenIn)
		if err != nil {
			return err
		}
		if _, err := env.Call(tokenIn.Address, "approve", uint256.Zero(), agg, amt); err != nil {
			return err
		}
		_, err = env.Call(agg, "swapViaPair", uint256.Zero(), pair, tokenIn, tokenOut, amt, uint256.Zero())
		return err
	}
}

// StepTransfer sends tokens to an arbitrary account (fee payments, margin
// postings).
func StepTransfer(to types.Address, tok types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, tok)
		if err != nil {
			return err
		}
		_, err = env.Call(tok.Address, "transfer", uint256.Zero(), to, amt)
		return err
	}
}

// StepRepeat runs a sub-step n times.
func StepRepeat(n int, mk func(i int) Step) Step {
	return func(env *evm.Env) error {
		for i := 0; i < n; i++ {
			if err := mk(i)(env); err != nil {
				return err
			}
		}
		return nil
	}
}

// StepDeskBuyRecord buys the desk's target and records the amount
// received in contract storage under the given key, so a later
// StepDeskSellRecorded can sell exactly that amount (SBS symmetry).
func StepDeskBuyRecord(desk types.Address, base, target types.Token, amount amountOf, key string) Step {
	return func(env *evm.Env) error {
		before, err := evm.Ret0[uint256.Int](env.Call(target.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		if err := StepDeskBuy(desk, base, amount)(env); err != nil {
			return err
		}
		after, err := evm.Ret0[uint256.Int](env.Call(target.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		env.SSet(key, after.MustSub(before))
		return nil
	}
}

// StepDeskSellRecorded sells exactly the amount recorded by a previous
// StepDeskBuyRecord.
func StepDeskSellRecorded(desk types.Address, target types.Token, key string) Step {
	return func(env *evm.Env) error {
		amt := env.SGet(key)
		if amt.IsZero() {
			return evm.Revertf("no recorded amount under %q", key)
		}
		return StepDeskSell(desk, target, Fixed(amt))(env)
	}
}

// StepAggDeskSell sells the desk's target token through an aggregator hop
// (defeats account-level counterparty matching).
func StepAggDeskSell(agg, desk types.Address, target, base types.Token, amount amountOf) Step {
	return func(env *evm.Env) error {
		amt, err := amount.resolve(env, target)
		if err != nil {
			return err
		}
		if _, err := env.Call(target.Address, "approve", uint256.Zero(), agg, amt); err != nil {
			return err
		}
		_, err = env.Call(agg, "sellTargetViaDesk", uint256.Zero(), desk, target, base, amt)
		return err
	}
}

// StepAggDeskSellRecorded is StepAggDeskSell for a recorded amount.
func StepAggDeskSellRecorded(agg, desk types.Address, target, base types.Token, key string) Step {
	return func(env *evm.Env) error {
		amt := env.SGet(key)
		if amt.IsZero() {
			return evm.Revertf("no recorded amount under %q", key)
		}
		return StepAggDeskSell(agg, desk, target, base, Fixed(amt))(env)
	}
}

// StepRecordBalance snapshots the contract's balance of a token.
func StepRecordBalance(tok types.Token, key string) Step {
	return func(env *evm.Env) error {
		bal, err := evm.Ret0[uint256.Int](env.Call(tok.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		env.SSet(key, bal)
		return nil
	}
}

// StepVaultDepositRecord deposits and records the shares received.
func StepVaultDepositRecord(vaultAddr types.Address, underlying, shareToken types.Token, amount amountOf, key string) Step {
	return func(env *evm.Env) error {
		before, err := evm.Ret0[uint256.Int](env.Call(shareToken.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		if err := StepVaultDeposit(vaultAddr, underlying, amount)(env); err != nil {
			return err
		}
		after, err := evm.Ret0[uint256.Int](env.Call(shareToken.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		env.SSet(key, after.MustSub(before))
		return nil
	}
}

// StepVaultWithdrawRecorded redeems exactly the recorded share amount.
func StepVaultWithdrawRecorded(vaultAddr types.Address, key string) Step {
	return func(env *evm.Env) error {
		amt := env.SGet(key)
		if amt.IsZero() {
			return evm.Revertf("no recorded shares under %q", key)
		}
		_, err := env.Call(vaultAddr, "withdraw", uint256.Zero(), amt)
		return err
	}
}

// StepPairSwapRecord swaps on a pair and records the output amount under
// key for a later symmetric sell.
func StepPairSwapRecord(pair types.Address, tokenIn, tokenOut types.Token, amount amountOf, key string) Step {
	return func(env *evm.Env) error {
		before, err := evm.Ret0[uint256.Int](env.Call(tokenOut.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		if err := StepPairSwap(pair, tokenIn, tokenOut, amount)(env); err != nil {
			return err
		}
		after, err := evm.Ret0[uint256.Int](env.Call(tokenOut.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		env.SSet(key, after.MustSub(before))
		return nil
	}
}

// StepPairSwapRecorded swaps exactly the recorded amount on a pair.
func StepPairSwapRecorded(pair types.Address, tokenIn, tokenOut types.Token, key string) Step {
	return func(env *evm.Env) error {
		amt := env.SGet(key)
		if amt.IsZero() {
			return evm.Revertf("no recorded amount under %q", key)
		}
		return StepPairSwap(pair, tokenIn, tokenOut, Fixed(amt))(env)
	}
}

// StepAggSwapRecorded routes the recorded amount through an aggregator
// onto a pair.
func StepAggSwapRecorded(agg, pair types.Address, tokenIn, tokenOut types.Token, key string) Step {
	return func(env *evm.Env) error {
		amt := env.SGet(key)
		if amt.IsZero() {
			return evm.Revertf("no recorded amount under %q", key)
		}
		return StepAggSwap(agg, pair, tokenIn, tokenOut, Fixed(amt))(env)
	}
}

// StepVaultDepositExactShares deposits just enough underlying to mint the
// share amount recorded under key (used by the Saddle scenario to make
// round-3 shares equal round-1 shares despite pool drift).
func StepVaultDepositExactShares(vaultAddr types.Address, underlying types.Token, key string) Step {
	return func(env *evm.Env) error {
		want := env.SGet(key)
		if want.IsZero() {
			return evm.Revertf("no recorded shares under %q", key)
		}
		price, err := evm.Ret0[uint256.Int](env.Call(vaultAddr, "sharePrice", uint256.Zero()))
		if err != nil {
			return err
		}
		fp := uint256.MustExp10(18)
		amount := want.MustMulDiv(price, fp).MustAdd(uint256.One())
		if _, err := env.Call(underlying.Address, "approve", uint256.Zero(), vaultAddr, amount); err != nil {
			return err
		}
		_, err = env.Call(vaultAddr, "deposit", uint256.Zero(), amount)
		return err
	}
}
