package attacks

import (
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// This file reproduces the paper's *non-price-manipulation* flash loan
// attacks (§III-C): half of the 44 studied attacks exploit ordinary
// contract vulnerabilities with flash-loaned capital instead of moving
// prices. LeiShen deliberately does not flag them — they are the negative
// controls that separate "flash loan attack" from "flpAttack".
//
// Two archetypes are implemented:
//
//   - reentrancy (the Akropolis attack): a vault credits deposits after
//     notifying the depositor, so a reentrant deposit is counted twice;
//   - governance (the Beanstalk attack): voting power is read from the
//     current token balance, so flash-loaned tokens pass a malicious
//     proposal within one transaction.

// ReentrantVault is an ETH savings vault with the classic DAO-shaped
// bug: withdrawAll sends the Ether *before* zeroing the depositor's
// credit, and the ETH send hands control to the recipient — a reentrant
// withdrawAll drains someone else's deposits.
type ReentrantVault struct{}

var _ evm.Contract = (*ReentrantVault)(nil)

func rvCreditKey(a types.Address) string { return "credit:" + a.String() }

// Call dispatches the vulnerable vault.
func (v *ReentrantVault) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "deposit":
		if env.Value().IsZero() {
			return nil, evm.Revertf("deposit: zero value")
		}
		env.SSet(rvCreditKey(env.Caller()), env.SGet(rvCreditKey(env.Caller())).MustAdd(env.Value()))
		return nil, nil
	case "withdrawAll":
		credit := env.SGet(rvCreditKey(env.Caller()))
		if credit.IsZero() {
			return nil, evm.Revertf("no credit")
		}
		// BUG: interaction before effect. The ETH transfer invokes the
		// recipient, which can re-enter while the credit is still set.
		if err := env.TransferETH(env.Caller(), credit); err != nil {
			return nil, err
		}
		env.SSet(rvCreditKey(env.Caller()), uint256.Zero())
		return []any{credit}, nil
	case "creditOf":
		who, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		return []any{env.SGet(rvCreditKey(who))}, nil
	case "":
		return nil, nil // accept honest deposits' change
	default:
		return nil, evm.Revertf("reentrant vault: unknown method %q", method)
	}
}

// Governance is a balance-weighted on-chain governor with the Beanstalk
// flaw: voting power is the *current* token balance, with no snapshot or
// timelock, so flash-loaned tokens carry a proposal instantly.
type Governance struct {
	// GovToken is the voting token.
	GovToken types.Token
	// Treasury is the asset a malicious proposal can drain.
	Treasury types.Token
	// QuorumPct of the gov token supply must vote for.
	QuorumPct uint64
}

var _ evm.Contract = (*Governance)(nil)

// Call dispatches the governor.
func (g *Governance) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "proposeDrain":
		// proposeDrain(to): proposal #N pays the whole treasury to `to`.
		to, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		id := env.SGet("proposals").MustAdd(uint256.One())
		env.SSet("proposals", id)
		env.SSetAddr("target:"+id.String(), to)
		return []any{id}, nil
	case "vote":
		id, err := evm.AmountArg(args, 0)
		if err != nil {
			return nil, err
		}
		// BUG: weight = live balance, no snapshot.
		weight, err := evm.Ret0[uint256.Int](env.Call(g.GovToken.Address, "balanceOf", uint256.Zero(), env.Caller()))
		if err != nil {
			return nil, err
		}
		key := "votes:" + id.String()
		env.SSet(key, env.SGet(key).MustAdd(weight))
		return nil, nil
	case "execute":
		id, err := evm.AmountArg(args, 0)
		if err != nil {
			return nil, err
		}
		votes := env.SGet("votes:" + id.String())
		supply, err := evm.Ret0[uint256.Int](env.Call(g.GovToken.Address, "totalSupply", uint256.Zero()))
		if err != nil {
			return nil, err
		}
		quorum := supply.MustMulDiv(uint256.FromUint64(g.QuorumPct), uint256.FromUint64(100))
		if votes.Lt(quorum) {
			return nil, evm.Revertf("execute: %s votes below quorum %s", votes, quorum)
		}
		target := env.SGetAddr("target:" + id.String())
		if target.IsZero() {
			return nil, evm.Revertf("execute: unknown proposal")
		}
		bal, err := evm.Ret0[uint256.Int](env.Call(g.Treasury.Address, "balanceOf", uint256.Zero(), env.Self()))
		if err != nil {
			return nil, err
		}
		env.SSet("votes:"+id.String(), uint256.Zero())
		if _, err := env.Call(g.Treasury.Address, "transfer", uint256.Zero(), target, bal); err != nil {
			return nil, err
		}
		return []any{bal}, nil
	default:
		return nil, evm.Revertf("governance: unknown method %q", method)
	}
}

// StepReentrantDrain unwraps the flash-borrowed WETH, deposits the ETH
// into the vulnerable vault, and withdraws with one reentrant hop —
// collecting the credit twice — before wrapping everything back.
func StepReentrantDrain(vaultAddr types.Address, weth types.Token, amount uint256.Int) Step {
	return func(env *evm.Env) error {
		// Unwrap the borrowed WETH into ETH.
		if _, err := env.Call(weth.Address, "withdraw", uint256.Zero(), amount); err != nil {
			return err
		}
		if _, err := env.Call(vaultAddr, "deposit", amount); err != nil {
			return err
		}
		// Arm exactly one reentrant withdrawal, then trigger.
		env.SSetAddr("reent:vault", vaultAddr)
		env.SSet("reent:armed", uint256.One())
		if _, err := env.Call(vaultAddr, "withdrawAll", uint256.Zero()); err != nil {
			return err
		}
		env.SSet("reent:armed", uint256.Zero())
		// Wrap all ETH back into WETH for repayment and sweep.
		bal := env.BalanceOf(env.Self())
		_, err := env.Call(weth.Address, "deposit", bal)
		return err
	}
}

// HandleReentrancyHook runs when the attack contract receives plain ETH:
// if armed, re-enter the vault's withdrawAll once.
func HandleReentrancyHook(env *evm.Env) error {
	if env.SGet("reent:armed").IsZero() {
		return nil
	}
	env.SSet("reent:armed", uint256.Zero())
	vaultAddr := env.SGetAddr("reent:vault")
	_, err := env.Call(vaultAddr, "withdrawAll", uint256.Zero())
	return err
}

// StepGovernanceDrain runs the Beanstalk composition: propose, vote with
// the flash-loaned balance, execute the treasury drain.
func StepGovernanceDrain(gov types.Address) Step {
	return func(env *evm.Env) error {
		id, err := evm.Ret0[uint256.Int](env.Call(gov, "proposeDrain", uint256.Zero(), env.Self()))
		if err != nil {
			return err
		}
		if _, err := env.Call(gov, "vote", uint256.Zero(), id); err != nil {
			return err
		}
		_, err = env.Call(gov, "execute", uint256.Zero(), id)
		return err
	}
}

// RunReentrancyAttack builds and executes the Akropolis-style scenario,
// returning the result for negative-control tests.
func RunReentrancyAttack() (*Result, error) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		return nil, err
	}
	vaultAddr, err := env.Chain.Deploy(env.Deployer, &ReentrantVault{}, "Akropolis: Savings")
	if err != nil {
		return nil, err
	}
	// Honest ETH deposits the exploit drains.
	env.Chain.FundETH(vaultAddr, env.WETH.Units("5000"))
	contract := &AttackContract{
		Loan: LoanSpec{
			Provider: flashloan.ProviderDydx,
			Lender:   env.DydxSolo,
			Token:    env.WETH,
			Amount:   env.WETH.Units("2000"),
		},
		Steps:        []Step{StepReentrantDrain(vaultAddr, env.WETH, env.WETH.Units("2000"))},
		ProfitTokens: []types.Token{env.WETH},
	}
	eoa, addr, err := env.NewAttacker(contract)
	if err != nil {
		return nil, err
	}
	receipt, err := env.ExecuteAttack(eoa, addr)
	if err != nil {
		return nil, err
	}
	profit, err := balanceOf(env, env.WETH, eoa)
	if err != nil {
		return nil, err
	}
	return &Result{Env: env, Receipt: receipt, AttackerEOA: eoa, AttackContract: addr, ProfitToken: env.WETH, Profit: profit}, nil
}

// RunGovernanceAttack builds and executes the Beanstalk-style scenario.
func RunGovernanceAttack() (*Result, error) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		return nil, err
	}
	gov := env.NewToken("STALK", 18, "Beanstalk: Stalk Token")
	govAddr, err := env.Chain.Deploy(env.Deployer, &Governance{
		GovToken:  gov,
		Treasury:  env.USDC,
		QuorumPct: 50,
	}, "Beanstalk: Governor")
	if err != nil {
		return nil, err
	}
	if err := env.fund(govAddr, env.USDC, "10000000"); err != nil {
		return nil, err
	}
	// Circulating gov supply held by a market-making pair the attacker
	// can flash-borrow from.
	govPair, err := env.NewPair(env.WETH, "1000", gov, "1000000", "Uniswap: STALK Pool")
	if err != nil {
		return nil, err
	}
	contract := &AttackContract{
		Loan: LoanSpec{
			Provider:  flashloan.ProviderUniswap,
			Lender:    govPair,
			Token:     gov,
			PairOther: env.WETH,
			Amount:    gov.Units("800000"), // 80% of supply: clears quorum
			FeeBps:    35,
		},
		Steps:        []Step{StepGovernanceDrain(govAddr)},
		ProfitTokens: []types.Token{env.USDC},
	}
	eoa, addr, err := env.NewAttacker(contract)
	if err != nil {
		return nil, err
	}
	// The flash fee is paid in gov tokens.
	if err := env.fund(addr, gov, "3000"); err != nil {
		return nil, err
	}
	receipt, err := env.ExecuteAttack(eoa, addr)
	if err != nil {
		return nil, err
	}
	profit, err := balanceOf(env, env.USDC, eoa)
	if err != nil {
		return nil, err
	}
	return &Result{Env: env, Receipt: receipt, AttackerEOA: eoa, AttackContract: addr, ProfitToken: env.USDC, Profit: profit}, nil
}
