// Package attacks reproduces the 22 real-world flash-loan-based price
// manipulation attacks of paper Table I as programmatic scenarios on the
// simulated DeFi substrate, plus the benign and non-price-manipulation
// flash loan transactions the evaluation corpus needs.
//
// Each scenario builds its own ecosystem (tokens, pools, victims, flash
// loan providers), deploys an attack contract, executes the attack in one
// flash loan transaction, and reports the receipt together with ground
// truth (expected patterns, attacker profit, detectability by each
// baseline in paper Table IV).
package attacks

import (
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// OracleDesk is a synthetic-asset trading desk that quotes a target token
// against a base token at the SPOT price of a reference constant-product
// pair, with a small bid/ask spread. This models the oracle-dependent
// victims of the real attacks (bZx margin desks, Cheese Bank, synthetic
// protocols): whoever can move the reference pair's spot price trades
// against the desk at the manipulated quote, and the desk's inventory
// takes the loss.
type OracleDesk struct {
	// Base is the unit-of-account token (e.g. WETH); Target the quoted
	// asset.
	Base, Target types.Token
	// RefPair is the constant-product pair whose spot prices quotes.
	RefPair types.Address
	// RefWeighted, when non-zero, prices off a Balancer-style weighted
	// pool's getSpotPrice instead of RefPair.
	RefWeighted types.Address
	// SpreadBps is the bid/ask half-spread in basis points.
	SpreadBps uint64
	// EmitTradeEvents controls normalized TradeAction emission.
	EmitTradeEvents bool
}

var _ evm.Contract = (*OracleDesk)(nil)

const bpsDenom = 10_000

// Call dispatches desk methods.
func (d *OracleDesk) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "buyTarget":
		// buyTarget(baseAmount): pay base, receive target at ask.
		return d.trade(env, args, true)
	case "sellTarget":
		// sellTarget(targetAmount): pay target, receive base at bid.
		return d.trade(env, args, false)
	case "quote":
		p, err := d.spot(env)
		if err != nil {
			return nil, err
		}
		return []any{p}, nil
	default:
		return nil, evm.Revertf("desk: unknown method %q", method)
	}
}

// spot reads base-per-target price from the reference venue, in 18-decimal
// fixed point per base unit of target.
func (d *OracleDesk) spot(env *evm.Env) (uint256.Int, error) {
	if !d.RefWeighted.IsZero() {
		// Weighted-pool spot: price of Target in Base units.
		return evm.Ret0[uint256.Int](env.Call(d.RefWeighted, "getSpotPrice", uint256.Zero(), d.Base.Address, d.Target.Address))
	}
	ret, err := env.Call(d.RefPair, "getReserves", uint256.Zero())
	if err != nil {
		return uint256.Int{}, err
	}
	r0, r1 := ret[0].(uint256.Int), ret[1].(uint256.Int)
	t0, _ := dex.SortTokens(d.Base, d.Target)
	baseR, targetR := r0, r1
	if d.Base.Address != t0.Address {
		baseR, targetR = r1, r0
	}
	if targetR.IsZero() {
		return uint256.Int{}, evm.Revertf("desk: empty target reserve")
	}
	return baseR.MulDiv(uint256.MustExp10(18), targetR)
}

func (d *OracleDesk) trade(env *evm.Env, args []any, buying bool) ([]any, error) {
	amountIn, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	if amountIn.IsZero() {
		return nil, evm.Revertf("desk: zero amount")
	}
	price, err := d.spot(env)
	if err != nil {
		return nil, err
	}
	var tokIn, tokOut types.Token
	var amountOut uint256.Int
	if buying {
		// Pay base, receive target at ask = spot * (1 + spread).
		tokIn, tokOut = d.Base, d.Target
		ask := price.MustMulDiv(uint256.FromUint64(bpsDenom+d.SpreadBps), uint256.FromUint64(bpsDenom))
		if ask.IsZero() {
			return nil, evm.Revertf("desk: zero ask")
		}
		amountOut, err = amountIn.MulDiv(uint256.MustExp10(18), ask)
	} else {
		// Pay target, receive base at bid = spot * (1 - spread).
		tokIn, tokOut = d.Target, d.Base
		bid := price.MustMulDiv(uint256.FromUint64(bpsDenom-d.SpreadBps), uint256.FromUint64(bpsDenom))
		amountOut, err = amountIn.MulDiv(bid, uint256.MustExp10(18))
	}
	if err != nil {
		return nil, evm.Revertf("desk: %v", err)
	}
	if amountOut.IsZero() {
		return nil, evm.Revertf("desk: zero output")
	}
	if _, err := env.Call(tokIn.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amountIn); err != nil {
		return nil, err
	}
	if _, err := env.Call(tokOut.Address, "transfer", uint256.Zero(), env.Caller(), amountOut); err != nil {
		return nil, err
	}
	if d.EmitTradeEvents {
		dex.EmitTradeAction(env, env.Caller(), tokIn.Address, amountIn, tokOut.Address, amountOut)
	}
	return []any{amountOut}, nil
}
