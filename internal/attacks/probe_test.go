package attacks

import (
	"testing"

	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/uint256"
)

// TestProbeVaultSkew prints the share-price response of a vault site to
// increasing skews (development diagnostics; assertions are loose).
func TestProbeVaultSkew(t *testing.T) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewVaultSite(env, "Probe", "pUSD", "20000000", 10)
	if err != nil {
		t.Fatal(err)
	}
	price := func() float64 {
		ret, err := env.Chain.View(vs.Vault, "sharePrice")
		if err != nil {
			t.Fatal(err)
		}
		return ret[0].(uint256.Int).Rat(uint256.MustExp10(18))
	}
	whale := env.Chain.NewEOA("")
	if err := env.Fund(whale, env.USDC, "30000000"); err != nil {
		t.Fatal(err)
	}
	if r := env.Chain.Send(whale, env.USDC.Address, "approve", vs.Pool, uint256.Max()); !r.Success {
		t.Fatal(r.Err)
	}
	t.Logf("base price: %.4f", price())
	for _, skew := range []string{"4000000", "4000000", "6000000", "6000000"} {
		if r := env.Chain.Send(whale, vs.Pool, "exchange", env.USDC.Address, vs.USDT.Address, env.USDC.Units(skew), uint256.Zero(), whale); !r.Success {
			t.Fatal(r.Err)
		}
		bal := token.MustBalanceOf(env.Chain, env.USDC, whale)
		t.Logf("after +%s skew: price %.4f (whale USDC left %s)", skew, price(), bal.ToUnits(6))
	}
	_ = evm.Revertf
}
