package attacks

import (
	"fmt"

	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/lending"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
	"leishen/internal/vault"
)

// PoolSite is a reusable attack surface on a shared chain: a WETH/asset
// pool plus a margin desk (SBS) and an oracle desk (KRP), with exact
// state restoration so the same site can absorb many attacks — the paper
// observes single attackers hitting one application up to 25 times.
type PoolSite struct {
	Env   *Env
	App   string
	Asset types.Token
	Pool  types.Address
	// MarginDesk is the SBS victim; OracleDesk the KRP victim.
	MarginDesk types.Address
	OracleDesk types.Address

	poolWETH, poolTGT   string
	deskWETH, marginInv string
}

// NewPoolSite deploys a pool site for one asset under one application.
func NewPoolSite(env *Env, app, assetSymbol, poolWETH, poolTGT string) (*PoolSite, error) {
	s := &PoolSite{
		Env: env, App: app,
		poolWETH: poolWETH, poolTGT: poolTGT,
		deskWETH: "200000", marginInv: "100000",
	}
	s.Asset = env.NewToken(assetSymbol, 18, "")
	// The pool is a separate venue (a DEX) from the attacked application:
	// the victim desks price off it and pump through it, and the pump
	// trade must stay visible as an inter-app trade.
	var err error
	if s.Pool, err = env.NewPairEvents(env.WETH, poolWETH, s.Asset, poolTGT, app+"Swap: "+assetSymbol+" Pool", false); err != nil {
		return nil, err
	}
	s.MarginDesk, err = env.Chain.Deploy(env.Deployer, &lending.LendingPool{
		Collateral: s.Asset,
		Debt:       env.WETH,
		PriceOracle: lending.Oracle{
			Kind: lending.OraclePairSpot, Pair: s.Pool, Base: s.Asset, Quote: env.WETH,
		},
		CollateralFactorBps: 10_000,
		MarginPair:          s.Pool,
		MaxLeverage:         5,
		WETH:                env.WETH,
	}, app+": "+assetSymbol+" Margin Desk")
	if err != nil {
		return nil, err
	}
	if err := env.fund(s.MarginDesk, env.WETH, s.marginInv); err != nil {
		return nil, err
	}
	s.OracleDesk, err = env.NewDesk(&OracleDesk{
		Base: env.WETH, Target: s.Asset, RefPair: s.Pool, SpreadBps: 10,
	}, app+": "+assetSymbol+" Exchange", s.deskWETH, "")
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SBSSteps builds margin-financed SBS steps scaled by the given sizes.
func (s *PoolSite) SBSSteps(buyWETH, marginWETH string) []Step {
	key := "site:sbs"
	return []Step{
		StepPairSwapRecord(s.Pool, s.Env.WETH, s.Asset, Fixed(s.Env.WETH.Units(buyWETH)), key),
		StepMarginTrade(s.MarginDesk, s.Env.WETH, Fixed(s.Env.WETH.Units(marginWETH)), 5),
		StepPairSwapRecorded(s.Pool, s.Asset, s.Env.WETH, key),
	}
}

// KRPSteps builds tranche-buy KRP steps.
func (s *PoolSite) KRPSteps(buys int, trancheWETH string) []Step {
	return []Step{
		StepRepeat(buys, func(int) Step {
			return StepPairSwap(s.Pool, s.Env.WETH, s.Asset, Fixed(s.Env.WETH.Units(trancheWETH)))
		}),
		StepDeskSell(s.OracleDesk, s.Asset, AllBalance()),
	}
}

// Restore resets the pool reserves and desk inventories to their seeded
// targets, modeling post-attack market-maker rebalancing.
func (s *PoolSite) Restore() error {
	env := s.Env
	// Re-seed the pool exactly: burn the deployer's LP, then re-add.
	lpAddr, err := evm.Ret0[types.Address](env.Chain.View(s.Pool, "lpToken"))
	if err != nil {
		return err
	}
	lpTok := types.Token{Address: lpAddr, Symbol: "LP", Decimals: 18}
	lpBal, err := token.BalanceOf(env.Chain, lpTok, env.Deployer)
	if err != nil {
		return err
	}
	if !lpBal.IsZero() {
		if r := env.Chain.Send(env.Deployer, lpAddr, "transfer", s.Pool, lpBal); !r.Success {
			return fmt.Errorf("restore: move LP: %s", r.Err)
		}
		if r := env.Chain.Send(env.Deployer, s.Pool, "burn", env.Deployer); !r.Success {
			return fmt.Errorf("restore: burn: %s", r.Err)
		}
	}
	// Burn whatever pool tokens the deployer now holds so re-seed amounts
	// are exact, then mint fresh.
	if err := s.drainDeployer(s.Asset); err != nil {
		return err
	}
	if err := env.fund(env.Deployer, s.Asset, s.poolTGT); err != nil {
		return err
	}
	if err := s.topUpDeployerWETH(env.WETH.Units(s.poolWETH)); err != nil {
		return err
	}
	if err := dex.AddLiquidity(env.Chain, s.Pool, env.Deployer,
		env.WETH, env.WETH.Units(s.poolWETH), s.Asset, s.Asset.Units(s.poolTGT)); err != nil {
		return fmt.Errorf("restore: reseed: %w", err)
	}
	// Desk and margin inventories: top up WETH, burn excess asset.
	if err := s.restoreInventory(s.OracleDesk, s.deskWETH); err != nil {
		return err
	}
	return s.restoreInventory(s.MarginDesk, s.marginInv)
}

func (s *PoolSite) drainDeployer(tok types.Token) error {
	bal, err := token.BalanceOf(s.Env.Chain, tok, s.Env.Deployer)
	if err != nil {
		return err
	}
	if bal.IsZero() {
		return nil
	}
	if r := s.Env.Chain.Send(s.Env.Deployer, tok.Address, "burn", s.Env.Deployer, bal); !r.Success {
		return fmt.Errorf("restore: drain: %s", r.Err)
	}
	return nil
}

// topUpDeployerWETH ensures the deployer holds at least the target WETH.
func (s *PoolSite) topUpDeployerWETH(target uint256.Int) error {
	bal, err := token.BalanceOf(s.Env.Chain, s.Env.WETH, s.Env.Deployer)
	if err != nil {
		return err
	}
	if bal.Gte(target) {
		return nil
	}
	diff := target.MustSub(bal)
	return s.Env.fund(s.Env.Deployer, s.Env.WETH, diff.ToUnits(18))
}

func (s *PoolSite) restoreInventory(holder types.Address, targetWETH string) error {
	env := s.Env
	target := env.WETH.Units(targetWETH)
	bal, err := token.BalanceOf(env.Chain, env.WETH, holder)
	if err != nil {
		return err
	}
	if bal.Lt(target) {
		if err := env.fund(holder, env.WETH, target.MustSub(bal).ToUnits(18)); err != nil {
			return err
		}
	}
	// Burn any asset inventory the victim accumulated (liquidated off-chain).
	abal, err := token.BalanceOf(env.Chain, s.Asset, holder)
	if err != nil {
		return err
	}
	if !abal.IsZero() {
		if r := env.Chain.Send(env.Deployer, s.Asset.Address, "burn", holder, abal); !r.Success {
			return fmt.Errorf("restore: burn inventory: %s", r.Err)
		}
	}
	return nil
}

// VaultSite is a reusable vault attack surface: a stable pool, a yield
// vault priced off it, and exact restoration via donation.
type VaultSite struct {
	Env   *Env
	App   string
	USDT  types.Token
	Pool  types.Address
	Vault types.Address
	Share types.Token

	poolDepth string
	amp       uint64
	// basePrice is the share price right after seeding; Restore donates
	// the vault back to it.
	basePrice uint256.Int
}

// NewVaultSite deploys a vault site on the shared environment.
func NewVaultSite(env *Env, app, shareSymbol, poolDepth string, amp uint64) (*VaultSite, error) {
	return NewVaultSiteDefended(env, app, shareSymbol, poolDepth, amp, 0)
}

// NewVaultSiteDefended deploys a vault site whose vault enforces the
// post-2020 share-price deviation defense (paper §VI-D: "Harvest Finance
// and Uniswap set a threshold for the price difference between deposits
// and withdraws"). defenseBps = 300 models Harvest's 3% bound.
func NewVaultSiteDefended(env *Env, app, shareSymbol, poolDepth string, amp uint64, defenseBps uint64) (*VaultSite, error) {
	s := &VaultSite{Env: env, App: app, poolDepth: poolDepth, amp: amp}
	s.USDT = env.NewToken("u"+shareSymbol, 6, "")
	var err error
	s.Pool, err = env.Chain.Deploy(env.Deployer, &dex.StableSwapPool{
		Tokens:   []types.Token{env.USDC, s.USDT},
		Amp:      amp,
		FeeBps:   4,
		LPSymbol: "crv" + shareSymbol,
	}, "Curve: "+shareSymbol+" Pool")
	if err != nil {
		return nil, err
	}
	if _, err := dex.RegisterLPTokenAs(env.Chain, env.Registry, s.Pool, "lpToken", "crv"+shareSymbol); err != nil {
		return nil, err
	}
	if err := s.seedPool(); err != nil {
		return nil, err
	}
	s.Vault, err = env.Chain.Deploy(env.Deployer, &vault.Vault{
		Underlying:  env.USDC,
		Reserve:     s.USDT,
		PricePool:   s.Pool,
		ShareSymbol: shareSymbol,
		DefenseBps:  defenseBps,
	}, app+": "+shareSymbol+" Vault")
	if err != nil {
		return nil, err
	}
	if s.Share, err = dex.RegisterLPTokenAs(env.Chain, env.Registry, s.Vault, "shareToken", shareSymbol); err != nil {
		return nil, err
	}
	// Honest idle liquidity and the USDT strategy position.
	lp := env.Chain.NewEOA("")
	if err := env.fund(lp, env.USDC, "30000000"); err != nil {
		return nil, err
	}
	if r := env.Chain.Send(lp, env.USDC.Address, "approve", s.Vault, uint256.Max()); !r.Success {
		return nil, fmt.Errorf("approve: %s", r.Err)
	}
	if r := env.Chain.Send(lp, s.Vault, "deposit", env.USDC.Units("30000000")); !r.Success {
		return nil, fmt.Errorf("seed vault: %s", r.Err)
	}
	if err := env.fund(env.Deployer, s.USDT, "30000000"); err != nil {
		return nil, err
	}
	if r := env.Chain.Send(env.Deployer, s.USDT.Address, "approve", s.Vault, uint256.Max()); !r.Success {
		return nil, fmt.Errorf("approve reserve: %s", r.Err)
	}
	if r := env.Chain.Send(env.Deployer, s.Vault, "fundReserve", s.USDT.Units("30000000")); !r.Success {
		return nil, fmt.Errorf("fund reserve: %s", r.Err)
	}
	ret, err := env.Chain.View(s.Vault, "sharePrice")
	if err != nil {
		return nil, err
	}
	s.basePrice = ret[0].(uint256.Int)
	return s, nil
}

func (s *VaultSite) seedPool() error {
	env := s.Env
	if err := env.fund(env.Deployer, env.USDC, s.poolDepth); err != nil {
		return err
	}
	if err := env.fund(env.Deployer, s.USDT, s.poolDepth); err != nil {
		return err
	}
	for _, tok := range []types.Token{env.USDC, s.USDT} {
		if r := env.Chain.Send(env.Deployer, tok.Address, "approve", s.Pool, uint256.Max()); !r.Success {
			return fmt.Errorf("approve: %s", r.Err)
		}
	}
	if r := env.Chain.Send(env.Deployer, s.Pool, "addLiquidity",
		[]uint256.Int{env.USDC.Units(s.poolDepth), s.USDT.Units(s.poolDepth)}, env.Deployer); !r.Success {
		return fmt.Errorf("seed pool: %s", r.Err)
	}
	return nil
}

// MBSSteps builds multi-round vault manipulation steps.
func (s *VaultSite) MBSSteps(rounds int, depositUSDC, skewUSDC string) []Step {
	env := s.Env
	round := func(i int) Step {
		key := fmt.Sprintf("site:vmbs:%d", i)
		inner := []Step{
			StepVaultDepositRecord(s.Vault, env.USDC, s.Share, Fixed(env.USDC.Units(depositUSDC)), key),
			StepStableExchange(s.Pool, env.USDC, s.USDT, Fixed(env.USDC.Units(skewUSDC))),
			StepVaultWithdrawRecorded(s.Vault, key),
			StepStableExchange(s.Pool, s.USDT, env.USDC, AllBalance()),
		}
		return func(e *evm.Env) error {
			for _, st := range inner {
				if err := st(e); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return []Step{StepRepeat(rounds, round)}
}

// DualSteps builds a Saddle-style sequence matching SBS and MBS
// simultaneously. When materialRounds is false, the MBS rounds are dust
// trades — the pattern still fires, but inspectors adjudicate the MBS
// report as spurious (the SBS leg is the real attack), populating the
// paper's MBS false-positive column.
func (s *VaultSite) DualSteps(depositUSDC, bigSkew, midSkew string, materialRounds bool) []Step {
	env := s.Env
	dep := env.USDC.Units(depositUSDC)
	roundDeposit := dep
	roundSkew := env.USDC.Units(midSkew)
	if !materialRounds {
		roundDeposit = env.USDC.Units("2000") // dust
		roundSkew = env.USDC.Units("400000")
	}
	skewUp := func(amount uint256.Int) Step {
		return StepStableExchange(s.Pool, env.USDC, s.USDT, Fixed(amount))
	}
	unskewAll := StepStableExchange(s.Pool, s.USDT, env.USDC, AllBalance())

	steps := []Step{
		// SBS triple: buy shares at p0, inflate hard, buy dust at the top
		// (the pump trade), deflate halfway, sell the original shares.
		StepVaultDepositRecord(s.Vault, env.USDC, s.Share, Fixed(dep), "site:k1"),
		skewUp(env.USDC.Units(bigSkew)),
		StepVaultDepositRecord(s.Vault, env.USDC, s.Share, Fixed(env.USDC.Units("3000")), "site:k2"),
		// Partial unskew: sell back ~30% of the USDT. The stable curve is
		// convex, so even a modest sell-back lands the price strictly
		// between the entry and the peak.
		func(e *evm.Env) error {
			bal, err := evm.Ret0[uint256.Int](e.Call(s.USDT.Address, "balanceOf", uint256.Zero(), e.Self()))
			if err != nil {
				return err
			}
			part := bal.MustMulDiv(uint256.FromUint64(30), uint256.FromUint64(100))
			return StepStableExchange(s.Pool, s.USDT, env.USDC, Fixed(part))(e)
		},
		StepVaultWithdrawRecorded(s.Vault, "site:k1"),
		StepVaultWithdrawRecorded(s.Vault, "site:k2"),
		unskewAll,
	}
	// Three profitable rounds (material or dust).
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("site:dr:%d", i)
		steps = append(steps,
			StepVaultDepositRecord(s.Vault, env.USDC, s.Share, Fixed(roundDeposit), key),
			skewUp(roundSkew),
			StepVaultWithdrawRecorded(s.Vault, key),
			unskewAll,
		)
	}
	return steps
}

// Restore donates the vault's losses back and re-seeds the stable pool.
func (s *VaultSite) Restore() error {
	env := s.Env
	// Re-seed the stable pool exactly.
	lpAddr, err := evm.Ret0[types.Address](env.Chain.View(s.Pool, "lpToken"))
	if err != nil {
		return err
	}
	lpTok := types.Token{Address: lpAddr, Symbol: "LP", Decimals: 18}
	lpBal, err := token.BalanceOf(env.Chain, lpTok, env.Deployer)
	if err != nil {
		return err
	}
	if !lpBal.IsZero() {
		if r := env.Chain.Send(env.Deployer, s.Pool, "removeLiquidity", lpBal, env.Deployer); !r.Success {
			return fmt.Errorf("restore: remove: %s", r.Err)
		}
	}
	// Drain and re-seed.
	for _, tok := range []types.Token{env.USDC, s.USDT} {
		bal, err := token.BalanceOf(env.Chain, tok, env.Deployer)
		if err != nil {
			return err
		}
		if !bal.IsZero() {
			if r := env.Chain.Send(env.Deployer, tok.Address, "burn", env.Deployer, bal); !r.Success {
				return fmt.Errorf("restore: drain: %s", r.Err)
			}
		}
	}
	if err := s.seedPool(); err != nil {
		return err
	}
	// Donate the vault's value loss back: value = idle + pos; restore
	// idle so sharePrice returns to its pre-attack level.
	ret, err := env.Chain.View(s.Vault, "sharePrice")
	if err != nil {
		return err
	}
	price := ret[0].(uint256.Int)
	one := uint256.MustExp10(18)
	if price.Lt(s.basePrice) {
		// Short by (base - price) * supply / 1e18 in USDC base units.
		supply, err := token.TotalSupply(env.Chain, s.Share)
		if err != nil {
			return err
		}
		short := s.basePrice.MustSub(price).MustMulDiv(supply, one)
		if !short.IsZero() {
			if r := env.Chain.Send(env.Deployer, env.USDC.Address, "mint", s.Vault, short); !r.Success {
				return fmt.Errorf("restore: donate: %s", r.Err)
			}
		}
	}
	return nil
}
