package attacks

import (
	"fmt"
	"time"

	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/lending"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Env is a freshly deployed base ecosystem a scenario runs against: core
// tokens, the three flash loan providers of Table II, and a deep funding
// pair.
type Env struct {
	Chain    *evm.Chain
	Registry *token.Registry
	// Deployer owns the base tokens and funds scenario liquidity.
	Deployer types.Address
	// Core tokens.
	WETH, USDC types.Token
	// Flash loan providers.
	AavePool    types.Address
	DydxSolo    types.Address
	FundingPair types.Address // Uniswap WETH/USDC flash-swap source
}

// NewEnv deploys the base ecosystem at the given genesis time.
func NewEnv(genesis time.Time) (*Env, error) {
	ch := evm.NewChain(genesis)
	reg := token.NewRegistry()
	// The deployer EOA stays unlabeled: a label here would inject its
	// application name into every creation tree it roots, making all
	// unlabeled child contracts (LP tokens, fee sinks) conflict-untaggable.
	deployer := ch.NewEOA("")
	e := &Env{Chain: ch, Registry: reg, Deployer: deployer}

	var err error
	if e.WETH, err = token.DeployWETH(ch, reg, deployer); err != nil {
		return nil, err
	}
	if e.USDC, err = token.Deploy(ch, reg, deployer, "USDC", 6, "Circle: USDC"); err != nil {
		return nil, err
	}

	// Uniswap funding pair with deep liquidity: 200k WETH / 400M USDC.
	if e.FundingPair, err = dex.DeployPair(ch, reg, deployer, e.WETH, e.USDC, "Uniswap: WETH-USDC Pool"); err != nil {
		return nil, err
	}
	if err := e.MintWETH(deployer, "200000"); err != nil {
		return nil, err
	}
	token.MustMint(ch, e.USDC, deployer, deployer, e.USDC.Units("400000000"))
	if err := dex.AddLiquidity(ch, e.FundingPair, deployer, e.WETH, e.WETH.Units("200000"), e.USDC, e.USDC.Units("400000000")); err != nil {
		return nil, err
	}

	// AAVE pool with WETH and USDC reserves.
	e.AavePool, err = ch.Deploy(deployer, &lending.AavePool{
		Tokens:      []types.Token{e.WETH, e.USDC},
		FlashFeeBps: 9,
	}, "Aave: Lending Pool")
	if err != nil {
		return nil, err
	}
	if err := e.MintWETH(e.AavePool, "300000"); err != nil {
		return nil, err
	}
	token.MustMint(ch, e.USDC, deployer, e.AavePool, e.USDC.Units("200000000"))

	// dYdX solo margin with WETH and USDC markets.
	e.DydxSolo, err = ch.Deploy(deployer, &lending.DydxSoloMargin{
		Tokens: []types.Token{e.WETH, e.USDC},
	}, "dYdX: Solo Margin")
	if err != nil {
		return nil, err
	}
	if err := e.MintWETH(e.DydxSolo, "300000"); err != nil {
		return nil, err
	}
	token.MustMint(ch, e.USDC, deployer, e.DydxSolo, e.USDC.Units("200000000"))
	return e, nil
}

// MintWETH wraps fresh ETH into WETH held by the recipient. WETH is not an
// owner-mintable ERC20, so the faucet goes through deposit.
func (e *Env) MintWETH(to types.Address, human string) error {
	amount := e.WETH.Units(human)
	// Fund a throwaway EOA with ETH, wrap, forward.
	funder := e.Chain.NewEOA("")
	e.Chain.FundETH(funder, amount)
	if r := e.Chain.SendValue(funder, e.WETH.Address, "deposit", amount); !r.Success {
		return fmt.Errorf("wrap: %s", r.Err)
	}
	if r := e.Chain.Send(funder, e.WETH.Address, "transfer", to, amount); !r.Success {
		return fmt.Errorf("forward WETH: %s", r.Err)
	}
	return nil
}

// NewToken deploys and registers a scenario token.
func (e *Env) NewToken(symbol string, decimals uint8, label string) types.Token {
	return token.MustDeploy(e.Chain, e.Registry, e.Deployer, symbol, decimals, label)
}

// NewPair deploys a labeled constant-product pair seeded with liquidity
// owned by the deployer (amounts in human units). Trade events are on, the
// common case for modern venues.
func (e *Env) NewPair(a types.Token, amtA string, b types.Token, amtB string, label string) (types.Address, error) {
	return e.NewPairEvents(a, amtA, b, amtB, label, true)
}

// NewPairEvents is NewPair with explicit control over trade event
// emission: older fork venues emit no normalized trade events, which is
// what blinds the Explorer+LeiShen baseline to attacks running on them.
func (e *Env) NewPairEvents(a types.Token, amtA string, b types.Token, amtB string, label string, events bool) (types.Address, error) {
	t0, t1 := dex.SortTokens(a, b)
	pair, err := e.Chain.Deploy(e.Deployer, &dex.Pair{Token0: t0, Token1: t1, EmitTradeEvents: events}, label)
	if err != nil {
		return types.Address{}, err
	}
	if _, err := dex.RegisterLPTokenAs(e.Chain, e.Registry, pair, "lpToken", "LP-"+pair.Short()); err != nil {
		return types.Address{}, err
	}
	if err := e.fund(e.Deployer, a, amtA); err != nil {
		return types.Address{}, err
	}
	if err := e.fund(e.Deployer, b, amtB); err != nil {
		return types.Address{}, err
	}
	if err := dex.AddLiquidity(e.Chain, pair, e.Deployer, a, a.Units(amtA), b, b.Units(amtB)); err != nil {
		return types.Address{}, err
	}
	return pair, nil
}

// fund gives the holder `human` units of tok (via mint, or wrap for WETH).
func (e *Env) fund(holder types.Address, tok types.Token, human string) error {
	if tok.Address == e.WETH.Address {
		return e.MintWETH(holder, human)
	}
	return token.Mint(e.Chain, tok, e.Deployer, holder, tok.Units(human))
}

// Fund is the exported faucet for scenario setup.
func (e *Env) Fund(holder types.Address, tok types.Token, human string) error {
	return e.fund(holder, tok, human)
}

// NewDesk deploys an oracle-priced desk stocked with inventory.
func (e *Env) NewDesk(d *OracleDesk, label string, baseInv, targetInv string) (types.Address, error) {
	desk, err := e.Chain.Deploy(e.Deployer, d, label)
	if err != nil {
		return types.Address{}, err
	}
	if baseInv != "" {
		if err := e.fund(desk, d.Base, baseInv); err != nil {
			return types.Address{}, err
		}
	}
	if targetInv != "" {
		if err := e.fund(desk, d.Target, targetInv); err != nil {
			return types.Address{}, err
		}
	}
	return desk, nil
}

// NewAttacker creates an unlabeled attacker EOA and deploys the attack
// contract from it (the paper's attack model step 1). A fresh EOA per
// scenario keeps creation trees disjoint.
func (e *Env) NewAttacker(contract *AttackContract) (eoa, attackAddr types.Address, err error) {
	eoa = e.Chain.NewEOA("")
	contract.ProfitTo = eoa
	attackAddr, err = e.Chain.Deploy(eoa, contract, "")
	return eoa, attackAddr, err
}

// ExecuteAttack sends the attack transaction and mines the block.
func (e *Env) ExecuteAttack(eoa, attackAddr types.Address) (*evm.Receipt, error) {
	r := e.Chain.Send(eoa, attackAddr, "attack")
	e.Chain.MineBlock()
	if !r.Success {
		return r, fmt.Errorf("attack transaction reverted: %s", r.Err)
	}
	return r, nil
}

// BalanceUnits reads a holder's balance of tok as a float in human units
// (reporting only).
func (e *Env) BalanceUnits(tok types.Token, holder types.Address) float64 {
	bal := token.MustBalanceOf(e.Chain, tok, holder)
	return bal.Rat(uint256.MustExp10(uint(tok.Decimals)))
}

// childFactory deploys preconfigured child contracts on demand; used to
// build the conflicting-label creation trees behind the JulSwap and
// PancakeHunny detection misses.
type childFactory struct {
	Children []evm.Contract
	Labels   []string
}

var _ evm.Contract = (*childFactory)(nil)

func (f *childFactory) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "createAll":
		out := make([]any, 0, len(f.Children))
		for i, c := range f.Children {
			addr, err := env.Create(c, f.Labels[i])
			if err != nil {
				return nil, err
			}
			out = append(out, addr)
		}
		return out, nil
	default:
		return nil, evm.Revertf("childFactory: unknown method %q", method)
	}
}

// NewConflictedVictim deploys a victim contract inside a creation tree
// that carries two different application labels, making the victim
// untaggable (paper Fig. 7(c)) — the root cause of the JulSwap and
// PancakeHunny misses in Table IV. The victim contract stays unlabeled.
func (e *Env) NewConflictedVictim(c evm.Contract, victimApp string) (types.Address, error) {
	// The conflict must lie on the victim's ancestor path: a labeled EOA
	// deploys another application's labeled deployment helper, which then
	// creates the victim. The victim's tag set unions both ancestors'
	// applications and cannot be resolved (paper Fig. 7(c)).
	deployerEOA := e.Chain.NewEOA(victimApp + ": Deployer")
	helper, err := e.Chain.Deploy(deployerEOA, &childFactory{
		Children: []evm.Contract{c},
		Labels:   []string{""},
	}, "SharedInfra: Deployment Helper")
	if err != nil {
		return types.Address{}, err
	}
	r := e.Chain.Send(deployerEOA, helper, "createAll")
	if !r.Success {
		return types.Address{}, fmt.Errorf("createAll: %s", r.Err)
	}
	return r.Return[0].(types.Address), nil
}

// ScenarioGenesis returns the deterministic genesis timestamp scenarios
// and examples share.
func ScenarioGenesis() time.Time { return scenarioGenesis }
