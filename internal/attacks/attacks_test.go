package attacks

import (
	"strings"
	"testing"

	"leishen/internal/core"
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/simplify"
	"leishen/internal/types"
)

// detectorFor builds a LeiShen detector over a scenario's chain snapshot.
func detectorFor(res *Result) *core.Detector {
	return core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
	})
}

func TestScenarioGroundTruth(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := sc.Run()
			if err != nil {
				t.Fatalf("scenario failed: %v", err)
			}
			// Manual verification criterion 2: the attacker profits.
			if res.Profit.IsZero() {
				t.Errorf("attack made no profit")
			}
			rep := detectorFor(res).Inspect(res.Receipt)
			if len(rep.Loans) == 0 {
				t.Fatalf("no flash loan identified:\n%s", rep.Detail())
			}
			if rep.IsAttack != sc.LeiShen {
				t.Fatalf("LeiShen verdict = %v, want %v\nprofit: %s\n%s",
					rep.IsAttack, sc.LeiShen, res.ProfitToken.Format(res.Profit), rep.Detail())
			}
			if !sc.LeiShen {
				return
			}
			got := map[core.PatternKind]bool{}
			for _, m := range rep.Matches {
				got[m.Kind] = true
			}
			for _, want := range sc.Patterns {
				if !got[want] {
					t.Errorf("pattern %s not detected\n%s", want, rep.Detail())
				}
			}
			for kind := range got {
				found := false
				for _, want := range sc.Patterns {
					if want == kind {
						found = true
					}
				}
				if !found {
					t.Errorf("unexpected extra pattern %s\n%s", kind, rep.Detail())
				}
			}
		})
	}
}

// TestMultiProviderAttack reproduces the Beanstalk-style composition the
// paper's flash loan analysis highlights: one attack borrowing from
// several providers at once (seven of the 44 studied attacks did). The
// identifier must surface every loan and detection must still work.
func TestMultiProviderAttack(t *testing.T) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		t.Fatal(err)
	}
	site, err := NewPoolSite(env, "Beanstalk", "BEAN", "1000", "1000000")
	if err != nil {
		t.Fatal(err)
	}
	contract := &AttackContract{
		Loan: LoanSpec{
			Provider: flashloan.ProviderDydx,
			Lender:   env.DydxSolo,
			Token:    env.WETH,
			Amount:   env.WETH.Units("2000"),
		},
		InnerLoans: []LoanSpec{
			{
				Provider: flashloan.ProviderAave,
				Lender:   env.AavePool,
				Token:    env.USDC,
				Amount:   env.USDC.Units("1000000"),
				FeeBps:   9,
			},
			{
				Provider:  flashloan.ProviderUniswap,
				Lender:    env.FundingPair,
				Token:     env.WETH,
				PairOther: env.USDC,
				Amount:    env.WETH.Units("500"),
				FeeBps:    35,
			},
		},
		Steps:        site.SBSSteps("900", "250"),
		ProfitTokens: []types.Token{env.WETH, env.USDC},
	}
	eoa, addr, err := env.NewAttacker(contract)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer for the inner loans' fees.
	if err := env.Fund(addr, env.USDC, "2000"); err != nil {
		t.Fatal(err)
	}
	if err := env.Fund(addr, env.WETH, "10"); err != nil {
		t.Fatal(err)
	}
	r, err := env.ExecuteAttack(eoa, addr)
	if err != nil {
		t.Fatalf("attack: %v", err)
	}

	loans := flashloan.Identify(r)
	if len(loans) != 3 {
		t.Fatalf("identified %d loans, want 3: %v", len(loans), loans)
	}
	providers := map[flashloan.Provider]bool{}
	for _, l := range loans {
		providers[l.Provider] = true
		if l.Borrower != addr {
			t.Errorf("loan borrower = %s, want attack contract", l.Borrower.Short())
		}
	}
	if len(providers) != 3 {
		t.Errorf("providers = %v, want all three", providers)
	}

	det := detectorFor(&Result{Env: env})
	rep := det.Inspect(r)
	if !rep.IsAttack || len(rep.BorrowerTags) != 1 {
		t.Fatalf("detection on multi-provider attack:\n%s", rep.Detail())
	}
}

// TestFailedAttackLeavesNoTrace injects a failure: the attack steps work
// but the flash loan cannot be repaid. Atomicity must erase everything —
// no transfers, no profit, nothing for the detector to see.
func TestFailedAttackLeavesNoTrace(t *testing.T) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		t.Fatal(err)
	}
	site, err := NewPoolSite(env, "Doomed", "DOOM", "1000", "1000000")
	if err != nil {
		t.Fatal(err)
	}
	contract := &AttackContract{
		Loan: LoanSpec{
			Provider: flashloan.ProviderAave,
			Lender:   env.AavePool,
			Token:    env.WETH,
			Amount:   env.WETH.Units("2000"),
			FeeBps:   9,
		},
		Steps: append(site.SBSSteps("900", "250"),
			// Burn the proceeds so repayment must fail.
			StepTransfer(env.Chain.NewEOA(""), env.WETH, AllBalance())),
		ProfitTokens: []types.Token{env.WETH},
	}
	eoa, addr, err := env.NewAttacker(contract)
	if err != nil {
		t.Fatal(err)
	}
	r, err := env.ExecuteAttack(eoa, addr)
	if err == nil {
		t.Fatal("attack should have reverted")
	}
	if r.Success || len(r.Logs) != 0 || len(r.InternalTxs) != 0 {
		t.Fatalf("reverted attack left traces: %d logs, %d itxs", len(r.Logs), len(r.InternalTxs))
	}
	if len(flashloan.Identify(r)) != 0 {
		t.Error("loans identified in a reverted transaction")
	}
	// The pool is untouched.
	reserveIn, _, err := dex.Reserves(env.Chain, site.Pool, env.WETH, site.Asset)
	if err != nil {
		t.Fatal(err)
	}
	if reserveIn.ToUnits(18) != "1000" {
		t.Errorf("pool WETH reserve = %s after revert", reserveIn.ToUnits(18))
	}
}

// TestLaunderedProfitStillMerges covers §VI-D2: attackers forward profit
// through multi-level intermediary accounts; the merge rule's fixpoint
// still collapses the chain.
func TestLaunderedProfitStillMerges(t *testing.T) {
	sc, ok := ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Launder the swept profit through two fresh mule accounts.
	m1 := res.Env.Chain.NewEOA("")
	m2 := res.Env.Chain.NewEOA("")
	amount := res.Profit
	for _, hop := range []struct{ from, to types.Address }{
		{res.AttackerEOA, m1}, {m1, m2},
	} {
		if r := res.Env.Chain.Send(hop.from, res.ProfitToken.Address, "transfer", hop.to, amount); !r.Success {
			t.Fatalf("hop: %s", r.Err)
		}
	}
	// Detection of the original attack is unaffected.
	rep := detectorFor(res).Inspect(res.Receipt)
	if !rep.IsAttack {
		t.Fatalf("laundering broke detection:\n%s", rep.Detail())
	}
}

// TestDefenseEra reproduces the paper's Fig. 8 decline mechanism (§VI-D):
// after the 2020 attack wave, protocols deployed deposit/withdraw price
// deviation checks. A defended vault blocks the big-skew MBS attack — but
// attacks that keep the movement below the threshold still succeed (the
// paper counts 28 of 97 unknown attacks under 1% volatility against
// Harvest's 3% bound).
func TestDefenseEra(t *testing.T) {
	env, err := NewEnv(scenarioGenesis)
	if err != nil {
		t.Fatal(err)
	}
	// Harvest-style 3% defense.
	site, err := NewVaultSiteDefended(env, "Defended", "dUSD", "20000000", 10, 300)
	if err != nil {
		t.Fatal(err)
	}
	mkAttack := func(deposit, skew string) (*evm.Receipt, error) {
		contract := &AttackContract{
			Loan: LoanSpec{
				Provider: flashloan.ProviderAave,
				Lender:   env.AavePool,
				Token:    env.USDC,
				Amount:   env.USDC.Units("40000000"),
				FeeBps:   9,
			},
			Steps:        site.MBSSteps(3, deposit, skew),
			ProfitTokens: []types.Token{env.USDC},
		}
		eoa, addr, err := env.NewAttacker(contract)
		if err != nil {
			return nil, err
		}
		// Fee buffer: the sub-threshold attack's tiny profit may not
		// cover the flash fee; the defense experiment only cares whether
		// the vault admits the manipulation.
		if err := env.Fund(addr, env.USDC, "100000"); err != nil {
			return nil, err
		}
		return env.Chain.Send(eoa, addr, "attack"), nil
	}

	// Big skew: the share price moves far beyond 3% — blocked.
	r, err := mkAttack("20000000", "14000000")
	if err != nil {
		t.Fatal(err)
	}
	if r.Success {
		t.Fatal("defended vault admitted a >3% manipulation")
	}
	if !strings.Contains(r.Err, "defense threshold") {
		t.Errorf("revert reason = %s", r.Err)
	}

	// Small skew: movement stays under the threshold — the defense cannot
	// stop it (the paper's residual-attack observation).
	r, err = mkAttack("20000000", "1500000")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatalf("sub-threshold attack blocked: %s", r.Err)
	}
	if err := site.Restore(); err != nil {
		t.Fatal(err)
	}
}

// TestNonPriceManipulationAttacksNotFlagged is the negative control from
// the paper's §III-C: half the studied flash loan attacks exploit plain
// contract bugs, not prices. LeiShen must see the flash loan but report
// no pattern.
func TestNonPriceManipulationAttacksNotFlagged(t *testing.T) {
	cases := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"reentrancy (Akropolis-style)", RunReentrancyAttack},
		{"governance (Beanstalk-style)", RunGovernanceAttack},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.run()
			if err != nil {
				t.Fatalf("attack failed: %v", err)
			}
			if res.Profit.IsZero() {
				t.Fatal("exploit made no profit")
			}
			loans := flashloan.Identify(res.Receipt)
			if len(loans) == 0 {
				t.Fatal("flash loan not identified")
			}
			rep := detectorFor(res).Inspect(res.Receipt)
			if rep.IsAttack {
				t.Fatalf("non-price-manipulation exploit flagged as flpAttack:\n%s", rep.Detail())
			}
		})
	}
}

// TestReentrancyActuallyDoubles pins the exploit mechanics: the attacker
// withdraws twice the credit (paper: "withdraw twice the assets borrowed
// from flash loans" in Akropolis).
func TestReentrancyActuallyDoubles(t *testing.T) {
	res, err := RunReentrancyAttack()
	if err != nil {
		t.Fatal(err)
	}
	// Borrowed 2000, repaid 2000 (+2 wei dYdX fee): the profit is the
	// second, reentrant payout of ~2000 WETH.
	got := res.Profit.Rat(res.ProfitToken.Units("1"))
	if got < 1999 || got > 2001 {
		t.Errorf("profit = %.2f WETH, want ~2000", got)
	}
}

// TestGovernanceDrainsTreasury pins the Beanstalk mechanics.
func TestGovernanceDrainsTreasury(t *testing.T) {
	res, err := RunGovernanceAttack()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Profit.ToUnits(6); got != "10000000" {
		t.Errorf("drained = %s USDC, want the full 10M treasury", got)
	}
}
