package lending

import (
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// AavePool is the AAVE V1-style flash loan provider of paper Table II: a
// flashLoan call lends any amount of a pooled token to a receiver
// contract, invokes its executeOperation callback, and requires principal
// plus fee back before the transaction ends, emitting a FlashLoan event.
type AavePool struct {
	// Tokens are the reserves this pool can flash-lend.
	Tokens []types.Token
	// FlashFeeBps is the flash loan fee in basis points (AAVE V1: 9).
	FlashFeeBps uint64
}

var _ evm.Contract = (*AavePool)(nil)

func (a *AavePool) has(addr types.Address) bool {
	for _, t := range a.Tokens {
		if t.Address == addr {
			return true
		}
	}
	return false
}

// Call dispatches AAVE pool methods.
func (a *AavePool) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "flashLoan":
		return a.flashLoan(env, args)
	case "deposit":
		// Liquidity provision into the reserve; amounts are pulled from
		// the caller. No interest accounting — the reproduction only
		// needs lendable reserves.
		tok, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		if !a.has(tok) {
			return nil, evm.Revertf("aave: unsupported reserve")
		}
		if _, err := env.Call(tok, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amount); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, evm.Revertf("aave: unknown method %q", method)
	}
}

// flashLoan implements flashLoan(receiver, token, amount, params string).
func (a *AavePool) flashLoan(env *evm.Env, args []any) ([]any, error) {
	receiver, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	tok, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	amount, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	params := ""
	if len(args) > 3 {
		if params, err = evm.Arg[string](args, 3); err != nil {
			return nil, err
		}
	}
	if !a.has(tok) {
		return nil, evm.Revertf("aave: unsupported reserve")
	}
	balBefore, err := evm.Ret0[uint256.Int](env.Call(tok, "balanceOf", uint256.Zero(), env.Self()))
	if err != nil {
		return nil, err
	}
	if balBefore.Lt(amount) {
		return nil, evm.Revertf("aave: reserve %s below requested %s", balBefore, amount)
	}
	fee := amount.MustMul(uint256.FromUint64(a.FlashFeeBps)).MustDiv(uint256.FromUint64(bpsDenom))

	if _, err := env.Call(tok, "transfer", uint256.Zero(), receiver, amount); err != nil {
		return nil, err
	}
	if _, err := env.Call(receiver, "executeOperation", uint256.Zero(), tok, amount, fee, params); err != nil {
		return nil, err
	}
	balAfter, err := evm.Ret0[uint256.Int](env.Call(tok, "balanceOf", uint256.Zero(), env.Self()))
	if err != nil {
		return nil, err
	}
	if balAfter.Lt(balBefore.MustAdd(fee)) {
		return nil, evm.Revertf("aave: flash loan not repaid (have %s, need %s)", balAfter, balBefore.MustAdd(fee))
	}
	env.EmitLog("FlashLoan", []types.Address{receiver, tok}, []uint256.Int{amount, fee})
	return nil, nil
}
