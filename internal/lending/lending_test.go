package lending

import (
	"strings"
	"testing"
	"time"

	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

type fixture struct {
	ch       *evm.Chain
	reg      *token.Registry
	deployer types.Address
	weth     types.Token
	wbtc     types.Token
	pair     types.Address
}

// newFixture builds a WETH/WBTC pair at 50 ETH/BTC (1000 WETH / 20 WBTC).
func newFixture(t *testing.T) *fixture {
	t.Helper()
	ch := evm.NewChain(time.Date(2020, 2, 15, 0, 0, 0, 0, time.UTC))
	reg := token.NewRegistry()
	deployer := ch.NewEOA("deployer")
	f := &fixture{ch: ch, reg: reg, deployer: deployer}
	f.weth = token.MustDeploy(ch, reg, deployer, "WETH", 18, "")
	f.wbtc = token.MustDeploy(ch, reg, deployer, "WBTC", 8, "")
	var err error
	f.pair, err = dex.DeployPair(ch, reg, deployer, f.weth, f.wbtc, "Uniswap")
	if err != nil {
		t.Fatal(err)
	}
	token.MustMint(ch, f.weth, deployer, deployer, f.weth.Units("1000"))
	token.MustMint(ch, f.wbtc, deployer, deployer, f.wbtc.Units("20"))
	dex.MustAddLiquidity(ch, f.pair, deployer, f.weth, f.weth.Units("1000"), f.wbtc, f.wbtc.Units("20"))
	return f
}

func (f *fixture) lendingPool(t *testing.T) types.Address {
	t.Helper()
	pool := f.ch.MustDeploy(f.deployer, &LendingPool{
		Collateral: f.weth,
		Debt:       f.wbtc,
		PriceOracle: Oracle{
			Kind:  OraclePairSpot,
			Pair:  f.pair,
			Base:  f.weth,
			Quote: f.wbtc,
		},
		CollateralFactorBps: 7500,
		LiquidationBonusBps: 500,
		MarginPair:          f.pair,
		MaxLeverage:         5,
	}, "Compound: WBTC Market")
	// Fund the market with lendable WBTC.
	token.MustMint(f.ch, f.wbtc, f.deployer, pool, f.wbtc.Units("50"))
	return pool
}

func TestOracleSpotPrice(t *testing.T) {
	f := newFixture(t)
	pool := f.lendingPool(t)
	ret, err := f.ch.View(pool, "oraclePrice")
	if err != nil {
		t.Fatal(err)
	}
	// 20 WBTC (8 dec) / 1000 WETH (18 dec): price per WETH base unit =
	// 20e8/1000e18 * 1e18 fixed point = 2e6.
	price := ret[0].(uint256.Int)
	if price.Uint64() != 2_000_000 {
		t.Errorf("price = %s, want 2000000", price)
	}
}

func TestOracleFixed(t *testing.T) {
	o := Oracle{Kind: OracleFixed, FixedPrice: uint256.FromUint64(42)}
	p, err := o.Price(nil)
	if err != nil || p.Uint64() != 42 {
		t.Errorf("p = %s err=%v", p, err)
	}
}

func TestBorrowWithinLimit(t *testing.T) {
	f := newFixture(t)
	pool := f.lendingPool(t)
	alice := f.ch.NewEOA("")
	token.MustMint(f.ch, f.weth, f.deployer, alice, f.weth.Units("100"))
	if err := token.Approve(f.ch, f.weth, alice, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	if r := f.ch.Send(alice, pool, "depositCollateral", f.weth.Units("100")); !r.Success {
		t.Fatalf("deposit: %s", r.Err)
	}
	// 100 WETH at 0.02 WBTC/WETH = 2 WBTC value; 75% factor = 1.5 WBTC.
	if r := f.ch.Send(alice, pool, "borrow", f.wbtc.Units("1.5")); !r.Success {
		t.Fatalf("borrow at limit: %s", r.Err)
	}
	if got := token.MustBalanceOf(f.ch, f.wbtc, alice).ToUnits(8); got != "1.5" {
		t.Errorf("borrowed = %s", got)
	}
	// One satoshi past the limit fails.
	if r := f.ch.Send(alice, pool, "borrow", uint256.One()); r.Success {
		t.Error("borrow past limit succeeded")
	}
}

func TestRepayAndWithdraw(t *testing.T) {
	f := newFixture(t)
	pool := f.lendingPool(t)
	alice := f.ch.NewEOA("")
	token.MustMint(f.ch, f.weth, f.deployer, alice, f.weth.Units("100"))
	for _, tok := range []types.Token{f.weth, f.wbtc} {
		if err := token.Approve(f.ch, tok, alice, pool, uint256.Max()); err != nil {
			t.Fatal(err)
		}
	}
	f.ch.Send(alice, pool, "depositCollateral", f.weth.Units("100"))
	f.ch.Send(alice, pool, "borrow", f.wbtc.Units("1"))

	// Withdrawing everything while indebted fails.
	if r := f.ch.Send(alice, pool, "withdrawCollateral", f.weth.Units("100")); r.Success {
		t.Error("withdraw while undercollateralized succeeded")
	}
	// Repay then withdraw all.
	if r := f.ch.Send(alice, pool, "repay", f.wbtc.Units("1")); !r.Success {
		t.Fatalf("repay: %s", r.Err)
	}
	if r := f.ch.Send(alice, pool, "withdrawCollateral", f.weth.Units("100")); !r.Success {
		t.Fatalf("withdraw: %s", r.Err)
	}
	if got := token.MustBalanceOf(f.ch, f.weth, alice).ToUnits(18); got != "100" {
		t.Errorf("WETH back = %s", got)
	}
}

func TestLiquidationAfterPriceDrop(t *testing.T) {
	f := newFixture(t)
	pool := f.lendingPool(t)
	alice := f.ch.NewEOA("")
	token.MustMint(f.ch, f.weth, f.deployer, alice, f.weth.Units("100"))
	if err := token.Approve(f.ch, f.weth, alice, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	f.ch.Send(alice, pool, "depositCollateral", f.weth.Units("100"))
	if r := f.ch.Send(alice, pool, "borrow", f.wbtc.Units("1.5")); !r.Success {
		t.Fatal(r.Err)
	}

	// Solvent account cannot be liquidated.
	liquidator := f.ch.NewEOA("")
	token.MustMint(f.ch, f.wbtc, f.deployer, liquidator, f.wbtc.Units("2"))
	if err := token.Approve(f.ch, f.wbtc, liquidator, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	if r := f.ch.Send(liquidator, pool, "liquidate", alice, f.wbtc.Units("1")); r.Success {
		t.Error("liquidated a solvent account")
	}

	// Crash WETH: dump 200 WETH into the pair (enough to break solvency,
	// not enough to exhaust the collateral).
	whale := f.ch.NewEOA("")
	token.MustMint(f.ch, f.weth, f.deployer, whale, f.weth.Units("200"))
	if _, err := dex.SwapExactIn(f.ch, f.pair, whale, f.weth, f.wbtc, f.weth.Units("200")); err != nil {
		t.Fatal(err)
	}
	r := f.ch.Send(liquidator, pool, "liquidate", alice, f.wbtc.Units("1"))
	if !r.Success {
		t.Fatalf("liquidate: %s", r.Err)
	}
	seized := token.MustBalanceOf(f.ch, f.weth, liquidator)
	if seized.IsZero() {
		t.Fatal("no collateral seized")
	}
	// Seized value should exceed repay value (the 5% bonus).
	// Post-crash price ~ 20*1000/1500^2... read the oracle directly.
	ret, err := f.ch.View(pool, "oraclePrice")
	if err != nil {
		t.Fatal(err)
	}
	price := ret[0].(uint256.Int)
	seizedValue := seized.MustMulDiv(price, uint256.MustExp10(18))
	repaid := f.wbtc.Units("1")
	if seizedValue.Lte(repaid) {
		t.Errorf("seized value %s <= repaid %s (no liquidation bonus)", seizedValue, repaid)
	}
}

func TestMarginTradeMovesPrice(t *testing.T) {
	f := newFixture(t)
	pool := f.lendingPool(t)
	// The pool must hold WETH inventory to lever with... marginTrade swaps
	// the pool's own *debt token* (WBTC here? no: Debt=WBTC). Margin is in
	// debt-token terms: trader posts WBTC and the pool buys WETH 5x.
	token.MustMint(f.ch, f.wbtc, f.deployer, pool, f.wbtc.Units("10"))

	trader := f.ch.NewEOA("")
	token.MustMint(f.ch, f.wbtc, f.deployer, trader, f.wbtc.Units("1"))
	if err := token.Approve(f.ch, f.wbtc, trader, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}

	before, err := evm.Ret0[uint256.Int](f.ch.View(pool, "oraclePrice"))
	if err != nil {
		t.Fatal(err)
	}
	r := f.ch.Send(trader, pool, "marginTrade", f.wbtc.Units("1"), uint64(5))
	if !r.Success {
		t.Fatalf("marginTrade: %s", r.Err)
	}
	after, err := evm.Ret0[uint256.Int](f.ch.View(pool, "oraclePrice"))
	if err != nil {
		t.Fatal(err)
	}
	// The pool bought WETH with WBTC: WETH price (in WBTC) rises.
	if !after.Gt(before) {
		t.Errorf("price did not move: before %s, after %s", before, after)
	}
	// Excess leverage rejected.
	token.MustMint(f.ch, f.wbtc, f.deployer, trader, f.wbtc.Units("1"))
	if r := f.ch.Send(trader, pool, "marginTrade", f.wbtc.Units("1"), uint64(6)); r.Success {
		t.Error("6x leverage accepted with max 5")
	}
}

// aaveBorrower drives an AAVE flash loan and optionally repays.
type aaveBorrower struct {
	Pool  types.Address
	Repay bool
}

func (b *aaveBorrower) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "go":
		tok, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		_, err = env.Call(b.Pool, "flashLoan", uint256.Zero(), env.Self(), tok, amount, "")
		return nil, err
	case "executeOperation":
		if !b.Repay {
			return nil, nil
		}
		tok, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		fee, err := evm.AmountArg(args, 2)
		if err != nil {
			return nil, err
		}
		_, err = env.Call(tok, "transfer", uint256.Zero(), b.Pool, amount.MustAdd(fee))
		return nil, err
	default:
		return nil, evm.Revertf("aaveBorrower: unknown method %q", method)
	}
}

func TestAaveFlashLoan(t *testing.T) {
	f := newFixture(t)
	pool := f.ch.MustDeploy(f.deployer, &AavePool{Tokens: []types.Token{f.weth}, FlashFeeBps: 9}, "Aave: Lending Pool")
	token.MustMint(f.ch, f.weth, f.deployer, pool, f.weth.Units("10000"))

	user := f.ch.NewEOA("")
	borrower := f.ch.MustDeploy(user, &aaveBorrower{Pool: pool, Repay: true}, "")
	// Pre-fund fee: 0.09% of 1000 = 0.9 WETH.
	token.MustMint(f.ch, f.weth, f.deployer, borrower, f.weth.Units("1"))

	r := f.ch.Send(user, borrower, "go", f.weth.Address, f.weth.Units("1000"))
	if !r.Success {
		t.Fatalf("flash loan: %s", r.Err)
	}
	var sawEvent bool
	for _, lg := range r.Logs {
		if lg.Event == "FlashLoan" {
			sawEvent = true
			if lg.Amounts[0].ToUnits(18) != "1000" {
				t.Errorf("FlashLoan amount = %s", lg.Amounts[0].ToUnits(18))
			}
		}
	}
	if !sawEvent {
		t.Error("no FlashLoan event emitted")
	}
	// Pool earned the fee.
	if got := token.MustBalanceOf(f.ch, f.weth, pool).ToUnits(18); got != "10000.9" {
		t.Errorf("pool balance = %s", got)
	}
}

func TestAaveFlashLoanDefaultReverts(t *testing.T) {
	f := newFixture(t)
	pool := f.ch.MustDeploy(f.deployer, &AavePool{Tokens: []types.Token{f.weth}, FlashFeeBps: 9}, "Aave: Lending Pool")
	token.MustMint(f.ch, f.weth, f.deployer, pool, f.weth.Units("10000"))
	user := f.ch.NewEOA("")
	borrower := f.ch.MustDeploy(user, &aaveBorrower{Pool: pool, Repay: false}, "")

	r := f.ch.Send(user, borrower, "go", f.weth.Address, f.weth.Units("1000"))
	if r.Success {
		t.Fatal("unrepaid flash loan committed")
	}
	if !strings.Contains(r.Err, "not repaid") {
		t.Errorf("err = %s", r.Err)
	}
	if got := token.MustBalanceOf(f.ch, f.weth, pool).ToUnits(18); got != "10000" {
		t.Errorf("pool balance after revert = %s", got)
	}
	if got := token.MustBalanceOf(f.ch, f.weth, borrower); !got.IsZero() {
		t.Errorf("borrower kept %s", got.ToUnits(18))
	}
}

func TestAaveOversizeLoanRejected(t *testing.T) {
	f := newFixture(t)
	pool := f.ch.MustDeploy(f.deployer, &AavePool{Tokens: []types.Token{f.weth}, FlashFeeBps: 9}, "Aave")
	token.MustMint(f.ch, f.weth, f.deployer, pool, f.weth.Units("10"))
	user := f.ch.NewEOA("")
	borrower := f.ch.MustDeploy(user, &aaveBorrower{Pool: pool, Repay: true}, "")
	if r := f.ch.Send(user, borrower, "go", f.weth.Address, f.weth.Units("11")); r.Success {
		t.Error("loan above reserve accepted")
	}
}

// dydxBorrower drives a dYdX operate flash loan.
type dydxBorrower struct {
	Solo  types.Address
	Repay bool
}

func (b *dydxBorrower) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "go":
		tok, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		_, err = env.Call(b.Solo, "operate", uint256.Zero(), env.Self(), tok, amount, "")
		return nil, err
	case "callFunction":
		if !b.Repay {
			return nil, nil
		}
		tok, err := evm.AddrArg(args, 1)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 2)
		if err != nil {
			return nil, err
		}
		// Approve the solo margin to pull principal + 2 units.
		repay := amount.MustAdd(uint256.FromUint64(FlashFeeUnits))
		_, err = env.Call(tok, "approve", uint256.Zero(), b.Solo, repay)
		return nil, err
	default:
		return nil, evm.Revertf("dydxBorrower: unknown method %q", method)
	}
}

func TestDydxOperateFlashLoan(t *testing.T) {
	f := newFixture(t)
	solo := f.ch.MustDeploy(f.deployer, &DydxSoloMargin{Tokens: []types.Token{f.weth}}, "dYdX: Solo Margin")
	token.MustMint(f.ch, f.weth, f.deployer, solo, f.weth.Units("10000"))
	user := f.ch.NewEOA("")
	borrower := f.ch.MustDeploy(user, &dydxBorrower{Solo: solo, Repay: true}, "")
	// 2 base units of fee.
	token.MustMint(f.ch, f.weth, f.deployer, borrower, uint256.FromUint64(FlashFeeUnits))

	r := f.ch.Send(user, borrower, "go", f.weth.Address, f.weth.Units("5000"))
	if !r.Success {
		t.Fatalf("operate: %s", r.Err)
	}
	// All four dYdX logs in order.
	var order []string
	for _, lg := range r.Logs {
		switch lg.Event {
		case "LogOperation", "LogWithdraw", "LogCall", "LogDeposit":
			order = append(order, lg.Event)
		}
	}
	want := []string{"LogOperation", "LogWithdraw", "LogCall", "LogDeposit"}
	if len(order) != len(want) {
		t.Fatalf("dYdX logs = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dYdX logs = %v, want %v", order, want)
		}
	}
}

func TestDydxDefaultReverts(t *testing.T) {
	f := newFixture(t)
	solo := f.ch.MustDeploy(f.deployer, &DydxSoloMargin{Tokens: []types.Token{f.weth}}, "dYdX: Solo Margin")
	token.MustMint(f.ch, f.weth, f.deployer, solo, f.weth.Units("10000"))
	user := f.ch.NewEOA("")
	borrower := f.ch.MustDeploy(user, &dydxBorrower{Solo: solo, Repay: false}, "")
	r := f.ch.Send(user, borrower, "go", f.weth.Address, f.weth.Units("5000"))
	if r.Success {
		t.Fatal("unrepaid dYdX loan committed")
	}
	if got := token.MustBalanceOf(f.ch, f.weth, solo).ToUnits(18); got != "10000" {
		t.Errorf("solo balance = %s", got)
	}
}

// TestTWAPFeedAveragesOverTime drives the cumulative-price machinery:
// poking across blocks yields the time-weighted average, and in-block
// manipulation does not move it.
func TestTWAPFeedAveragesOverTime(t *testing.T) {
	f := newFixture(t)
	feed := f.ch.MustDeploy(f.deployer, &TWAPFeed{
		Pair: f.pair, Base: f.weth, Quote: f.wbtc,
	}, "Uniswap: WETH-WBTC TWAP")
	keeper := f.ch.NewEOA("")

	// First poke establishes the snapshot; no window yet.
	if r := f.ch.Send(keeper, feed, "poke"); !r.Success {
		t.Fatal(r.Err)
	}
	if _, err := f.ch.View(feed, "consult"); err == nil {
		t.Fatal("consult before a window should revert")
	}
	// Let time pass with the price stable at 0.02 WBTC/WETH, touching the
	// pair so the accumulator advances.
	f.ch.MineBlock()
	f.ch.AdvanceTime(10 * time.Minute)
	if r := f.ch.Send(keeper, f.pair, "sync"); !r.Success {
		t.Fatal(r.Err)
	}
	if r := f.ch.Send(keeper, feed, "poke"); !r.Success {
		t.Fatal(r.Err)
	}
	mean, err := evm.Ret0[uint256.Int](f.ch.View(feed, "consult"))
	if err != nil {
		t.Fatal(err)
	}
	// 20 WBTC(8dec)/1000 WETH(18dec) => 2e6 per base unit, 1e18 fixed.
	got := mean.Uint64()
	if got < 1_990_000 || got > 2_010_000 {
		t.Errorf("TWAP = %d, want ~2000000", got)
	}

	// Manipulate the spot hard within one block: the consulted TWAP is
	// unchanged because no time elapsed since the last accumulator update.
	whale := f.ch.NewEOA("")
	token.MustMint(f.ch, f.weth, f.deployer, whale, f.weth.Units("500"))
	if _, err := dex.SwapExactIn(f.ch, f.pair, whale, f.weth, f.wbtc, f.weth.Units("500")); err != nil {
		t.Fatal(err)
	}
	if r := f.ch.Send(keeper, feed, "poke"); !r.Success {
		t.Fatal(r.Err)
	}
	mean2, err := evm.Ret0[uint256.Int](f.ch.View(feed, "consult"))
	if err != nil {
		t.Fatal(err)
	}
	if !mean2.Eq(mean) {
		t.Errorf("TWAP moved within one block: %s -> %s", mean, mean2)
	}
}

// TestTWAPOracleDefeatsManipulatedBorrow is the defense experiment: the
// same price pump that lets an attacker over-borrow against a spot oracle
// is invisible to a TWAP oracle.
func TestTWAPOracleDefeatsManipulatedBorrow(t *testing.T) {
	f := newFixture(t)
	feed := f.ch.MustDeploy(f.deployer, &TWAPFeed{
		Pair: f.pair, Base: f.weth, Quote: f.wbtc,
	}, "Uniswap: WETH-WBTC TWAP")
	keeper := f.ch.NewEOA("")
	// Warm the feed: poke, wait, touch, poke.
	f.ch.Send(keeper, feed, "poke")
	f.ch.MineBlock()
	f.ch.AdvanceTime(10 * time.Minute)
	f.ch.Send(keeper, f.pair, "sync")
	f.ch.Send(keeper, feed, "poke")

	mkPool := func(kind OracleKind, label string) types.Address {
		pool := f.ch.MustDeploy(f.deployer, &LendingPool{
			Collateral: f.weth,
			Debt:       f.wbtc,
			PriceOracle: Oracle{
				Kind: kind, Pair: f.pair, TWAPFeed: feed,
				Base: f.weth, Quote: f.wbtc,
			},
			CollateralFactorBps: 10_000,
		}, label)
		token.MustMint(f.ch, f.wbtc, f.deployer, pool, f.wbtc.Units("100"))
		return pool
	}
	spotPool := mkPool(OraclePairSpot, "SpotLender")
	twapPool := mkPool(OracleTWAP, "TwapLender")

	// Pump WETH: buy WBTC with 500 WETH, WETH price in WBTC *drops*...
	// we want WETH price UP: buy WETH with WBTC.
	whale := f.ch.NewEOA("")
	token.MustMint(f.ch, f.wbtc, f.deployer, whale, f.wbtc.Units("40"))
	if _, err := dex.SwapExactIn(f.ch, f.pair, whale, f.wbtc, f.weth, f.wbtc.Units("40")); err != nil {
		t.Fatal(err)
	}

	// Attacker deposits 100 WETH at the pumped price into both pools.
	attacker := f.ch.NewEOA("")
	token.MustMint(f.ch, f.weth, f.deployer, attacker, f.weth.Units("200"))
	for _, pool := range []types.Address{spotPool, twapPool} {
		if err := token.Approve(f.ch, f.weth, attacker, pool, uint256.Max()); err != nil {
			t.Fatal(err)
		}
		if r := f.ch.Send(attacker, pool, "depositCollateral", f.weth.Units("100")); !r.Success {
			t.Fatal(r.Err)
		}
	}
	// Fair value of 100 WETH = 2 WBTC. The pump tripled the spot, so the
	// spot lender hands out ~6 WBTC; the TWAP lender refuses anything
	// much above the fair 2.
	overBorrow := f.wbtc.Units("4")
	if r := f.ch.Send(attacker, spotPool, "borrow", overBorrow); !r.Success {
		t.Fatalf("spot lender refused the manipulated borrow: %s", r.Err)
	}
	if r := f.ch.Send(attacker, twapPool, "borrow", overBorrow); r.Success {
		t.Fatal("TWAP lender accepted a borrow priced off the in-block pump")
	}
	// The TWAP lender still serves fair-value borrows.
	if r := f.ch.Send(attacker, twapPool, "borrow", f.wbtc.Units("1.9")); !r.Success {
		t.Fatalf("TWAP lender refused a fair borrow: %s", r.Err)
	}
}
