package lending

import (
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// TWAPFeed is a time-weighted average price consumer over a
// constant-product pair's cumulative price accumulators — the defense
// Uniswap V2 shipped against exactly the oracle manipulation this
// repository's attacks perform. Keepers poke it periodically; consumers
// read the average price over the window since the last poke.
//
// Because the accumulators only advance with wall time, a flash loan —
// which begins and ends at one timestamp — cannot move the feed at all.
type TWAPFeed struct {
	// Pair is the observed pool; Base is priced in Quote units.
	Pair        types.Address
	Base, Quote types.Token
}

var _ evm.Contract = (*TWAPFeed)(nil)

// Storage keys for the last snapshot and the last computed average.
const (
	twapKeyCum  = "twap:cum"
	twapKeyTs   = "twap:ts"
	twapKeyMean = "twap:mean"
)

// Call dispatches the feed.
func (f *TWAPFeed) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "poke":
		return f.poke(env)
	case "consult":
		mean := env.SGet(twapKeyMean)
		if mean.IsZero() {
			return nil, evm.Revertf("twap: no observation window yet")
		}
		return []any{mean}, nil
	default:
		return nil, evm.Revertf("twap: unknown method %q", method)
	}
}

// poke folds the accumulator delta since the previous poke into the mean.
func (f *TWAPFeed) poke(env *evm.Env) ([]any, error) {
	ret, err := env.Call(f.Pair, "observe", uint256.Zero())
	if err != nil {
		return nil, err
	}
	cum0, cum1 := ret[0].(uint256.Int), ret[1].(uint256.Int)
	ts := ret[2].(uint256.Int)

	// Pick the accumulator pricing Base in Quote.
	t0, _ := dex.SortTokens(f.Base, f.Quote)
	cum := cum0
	if f.Base.Address != t0.Address {
		cum = cum1
	}

	prevCum := env.SGet(twapKeyCum)
	prevTs := env.SGet(twapKeyTs)
	env.SSet(twapKeyCum, cum)
	env.SSet(twapKeyTs, ts)
	if prevTs.IsZero() || ts.Lte(prevTs) {
		return []any{uint256.Zero()}, nil // first poke or same block: no window yet
	}
	elapsed := ts.MustSub(prevTs)
	mean := cum.MustSub(prevCum).MustDiv(elapsed)
	env.SSet(twapKeyMean, mean)
	return []any{mean}, nil
}
