package lending

import (
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// DydxSoloMargin is the dYdX flash loan provider of paper Table II. dYdX
// has no explicit flash loan function: borrowers compose an Operate call
// out of a Withdraw action, a Call action (their own callback) and a
// Deposit action, and atomicity makes it a flash loan. The contract emits
// the four log types (LogOperation, LogWithdraw, LogCall, LogDeposit) the
// paper's identifier matches on. The flash fee is 2 base units, dYdX's
// famous "2 wei" pricing.
type DydxSoloMargin struct {
	// Tokens are the markets this solo margin instance supports.
	Tokens []types.Token
}

var _ evm.Contract = (*DydxSoloMargin)(nil)

// FlashFeeUnits is dYdX's flat flash fee in token base units.
const FlashFeeUnits = 2

func (d *DydxSoloMargin) has(addr types.Address) bool {
	for _, t := range d.Tokens {
		if t.Address == addr {
			return true
		}
	}
	return false
}

// Call dispatches solo margin methods.
func (d *DydxSoloMargin) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "operate":
		return d.operate(env, args)
	case "fund":
		tok, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		if !d.has(tok) {
			return nil, evm.Revertf("dydx: unsupported market")
		}
		if _, err := env.Call(tok, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amount); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, evm.Revertf("dydx: unknown method %q", method)
	}
}

// operate implements operate(receiver, token, amount, params): the
// canonical Withdraw -> Call -> Deposit flash loan composition.
func (d *DydxSoloMargin) operate(env *evm.Env, args []any) ([]any, error) {
	receiver, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	tok, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	amount, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	params := ""
	if len(args) > 3 {
		if params, err = evm.Arg[string](args, 3); err != nil {
			return nil, err
		}
	}
	if !d.has(tok) {
		return nil, evm.Revertf("dydx: unsupported market")
	}
	env.EmitLog("LogOperation", []types.Address{env.Caller()}, nil)

	balBefore, err := evm.Ret0[uint256.Int](env.Call(tok, "balanceOf", uint256.Zero(), env.Self()))
	if err != nil {
		return nil, err
	}
	if balBefore.Lt(amount) {
		return nil, evm.Revertf("dydx: market reserve %s below %s", balBefore, amount)
	}

	// Action 1: Withdraw to the receiver.
	if _, err := env.Call(tok, "transfer", uint256.Zero(), receiver, amount); err != nil {
		return nil, err
	}
	env.EmitLog("LogWithdraw", []types.Address{receiver, tok}, []uint256.Int{amount})

	// Action 2: Call the receiver's callback.
	if _, err := env.Call(receiver, "callFunction", uint256.Zero(), env.Caller(), tok, amount, params); err != nil {
		return nil, err
	}
	env.EmitLog("LogCall", []types.Address{receiver}, nil)

	// Action 3: Deposit back, principal + 2 units.
	repay := amount.MustAdd(uint256.FromUint64(FlashFeeUnits))
	if _, err := env.Call(tok, "transferFrom", uint256.Zero(), receiver, env.Self(), repay); err != nil {
		return nil, evm.Revertf("dydx: deposit failed: %v", err)
	}
	env.EmitLog("LogDeposit", []types.Address{receiver, tok}, []uint256.Int{repay})
	return nil, nil
}
