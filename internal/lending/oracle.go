// Package lending implements the lending-platform substrate: a
// collateralized lending pool whose price feed is an on-chain DEX oracle,
// bZx-style margin trading, and the AAVE and dYdX flash loan providers of
// paper Table II.
//
// The combination "lending platform prices collateral off a manipulable
// DEX spot price" is the root cause of most of the 22 real-world
// flpAttacks the paper studies.
package lending

import (
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// OracleKind selects how a lending pool reads its price feed.
type OracleKind int

// Oracle kinds.
const (
	// OraclePairSpot reads the spot reserve ratio of a constant-product
	// pair — the manipulable feed exploited by the attacks.
	OraclePairSpot OracleKind = iota + 1
	// OracleFixed uses a constant price, immune to manipulation (used to
	// model post-attack defenses and control experiments).
	OracleFixed
	// OracleTWAP reads a TWAPFeed contract — Uniswap V2's time-weighted
	// defense, unmovable within a single transaction.
	OracleTWAP
)

// Oracle prices one token (Base) in units of another (Quote) with
// 18-decimal fixed-point output per base-unit.
type Oracle struct {
	// Kind selects the feed.
	Kind OracleKind
	// Pair is the constant-product pair read by OraclePairSpot.
	Pair types.Address
	// Base is the token being priced; Quote the unit of account.
	Base, Quote types.Token
	// FixedPrice is the constant feed for OracleFixed, in quote base
	// units per base base-unit, 18-decimal fixed point.
	FixedPrice uint256.Int
	// TWAPFeed is the feed contract for OracleTWAP.
	TWAPFeed types.Address
}

// fpOne is the 18-decimal fixed-point unit.
var fpOne = uint256.MustExp10(18)

// Price returns the current price in quote base units per base base-unit,
// scaled by 1e18.
func (o *Oracle) Price(env *evm.Env) (uint256.Int, error) {
	switch o.Kind {
	case OracleFixed:
		return o.FixedPrice, nil
	case OraclePairSpot:
		ret, err := env.Call(o.Pair, "getReserves", uint256.Zero())
		if err != nil {
			return uint256.Int{}, err
		}
		r0 := ret[0].(uint256.Int)
		r1 := ret[1].(uint256.Int)
		t0, _ := dex.SortTokens(o.Base, o.Quote)
		baseR, quoteR := r0, r1
		if o.Base.Address != t0.Address {
			baseR, quoteR = r1, r0
		}
		if baseR.IsZero() {
			return uint256.Int{}, evm.Revertf("oracle: empty base reserve")
		}
		return quoteR.MulDiv(fpOne, baseR)
	case OracleTWAP:
		return evm.Ret0[uint256.Int](env.Call(o.TWAPFeed, "consult", uint256.Zero()))
	default:
		return uint256.Int{}, evm.Revertf("oracle: unknown kind %d", o.Kind)
	}
}

// Value converts an amount of the base token into quote base units at the
// current price.
func (o *Oracle) Value(env *evm.Env, amount uint256.Int) (uint256.Int, error) {
	p, err := o.Price(env)
	if err != nil {
		return uint256.Int{}, err
	}
	return amount.MulDiv(p, fpOne)
}
