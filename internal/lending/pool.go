package lending

import (
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Storage keys (per-account keys embed the address).
func collKey(a types.Address) string { return "coll:" + a.String() }
func debtKey(a types.Address) string { return "debt:" + a.String() }

// LendingPool is a Compound/bZx-style lending market for one collateral /
// debt token pair. Borrow limits are priced by an on-chain Oracle, and the
// pool can optionally offer bZx-style leveraged margin trades that swap
// the pool's own funds on a DEX pair at a user's request — the exact
// mechanism the bZx-1 attacker used to move the WBTC price.
type LendingPool struct {
	// Collateral and Debt are the market's tokens.
	Collateral, Debt types.Token
	// PriceOracle prices Collateral in Debt units.
	PriceOracle Oracle
	// CollateralFactorBps is the fraction of collateral value borrowable
	// (10000 = 100%).
	CollateralFactorBps uint64
	// LiquidationBonusBps is the liquidator's collateral discount.
	LiquidationBonusBps uint64
	// MarginPair, when non-zero, enables leveraged margin trades routed
	// through this constant-product pair.
	MarginPair types.Address
	// MaxLeverage caps margin trade leverage (e.g. 5).
	MaxLeverage uint64
	// WETH, when set and equal to the Debt token, makes the pool unwrap
	// its margin fee into native ETH before booking it — the wrap/unwrap
	// legs land inside the pump trade's transfer window and only the
	// paper's WETH simplification rule erases them.
	WETH types.Token
}

var _ evm.Contract = (*LendingPool)(nil)
var _ evm.Initializer = (*LendingPool)(nil)

const bpsDenom = 10_000

// marginFeeBps is the platform fee a margin trade books to the pool's
// internal fee collector, mid-trade. Real protocols constantly shuffle
// such intra-application bookkeeping transfers; the paper's first
// simplification rule exists to erase them (they land between the pump
// trade's two legs and would otherwise break the trade window).
const marginFeeBps = 100

// feeSink is the pool's internal fee collector: a child contract, so the
// tagging forest attributes it to the pool's application.
type feeSink struct{}

func (feeSink) Call(env *evm.Env, method string, args []any) ([]any, error) {
	return nil, nil // inert treasury
}

// Init creates the internal fee collector for margin-trading pools.
func (p *LendingPool) Init(env *evm.Env) error {
	if p.MarginPair.IsZero() {
		return nil
	}
	sink, err := env.Create(feeSink{}, "")
	if err != nil {
		return err
	}
	env.SSetAddr("feeCollector", sink)
	return nil
}

// Call dispatches lending pool methods.
func (p *LendingPool) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "depositCollateral":
		amount, err := evm.AmountArg(args, 0)
		if err != nil {
			return nil, err
		}
		if _, err := env.Call(p.Collateral.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amount); err != nil {
			return nil, err
		}
		env.SSet(collKey(env.Caller()), env.SGet(collKey(env.Caller())).MustAdd(amount))
		return nil, nil
	case "borrow":
		return p.borrow(env, args)
	case "repay":
		return p.repay(env, args)
	case "withdrawCollateral":
		return p.withdraw(env, args)
	case "liquidate":
		return p.liquidate(env, args)
	case "marginTrade":
		return p.marginTrade(env, args)
	case "accountCollateral":
		who, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		return []any{env.SGet(collKey(who))}, nil
	case "accountDebt":
		who, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		return []any{env.SGet(debtKey(who))}, nil
	case "oraclePrice":
		pr, err := p.PriceOracle.Price(env)
		if err != nil {
			return nil, err
		}
		return []any{pr}, nil
	case "":
		return nil, nil // accept ETH (WETH unwrap proceeds)
	default:
		return nil, evm.Revertf("lending: unknown method %q", method)
	}
}

// borrowLimit returns the maximum debt the account's collateral supports.
func (p *LendingPool) borrowLimit(env *evm.Env, who types.Address) (uint256.Int, error) {
	value, err := p.PriceOracle.Value(env, env.SGet(collKey(who)))
	if err != nil {
		return uint256.Int{}, err
	}
	return value.MulDiv(uint256.FromUint64(p.CollateralFactorBps), uint256.FromUint64(bpsDenom))
}

// borrow implements borrow(amount): lends the debt token against the
// caller's collateral, priced at the oracle.
func (p *LendingPool) borrow(env *evm.Env, args []any) ([]any, error) {
	amount, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	limit, err := p.borrowLimit(env, env.Caller())
	if err != nil {
		return nil, err
	}
	newDebt := env.SGet(debtKey(env.Caller())).MustAdd(amount)
	if newDebt.Gt(limit) {
		return nil, evm.Revertf("borrow: debt %s exceeds limit %s", newDebt, limit)
	}
	env.SSet(debtKey(env.Caller()), newDebt)
	if _, err := env.Call(p.Debt.Address, "transfer", uint256.Zero(), env.Caller(), amount); err != nil {
		return nil, err
	}
	return nil, nil
}

// repay implements repay(amount).
func (p *LendingPool) repay(env *evm.Env, args []any) ([]any, error) {
	amount, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	debt := env.SGet(debtKey(env.Caller()))
	if amount.Gt(debt) {
		amount = debt
	}
	if amount.IsZero() {
		return nil, evm.Revertf("repay: no debt")
	}
	if _, err := env.Call(p.Debt.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amount); err != nil {
		return nil, err
	}
	env.SSet(debtKey(env.Caller()), debt.MustSub(amount))
	return nil, nil
}

// withdraw implements withdrawCollateral(amount), keeping the account
// solvent at the oracle price.
func (p *LendingPool) withdraw(env *evm.Env, args []any) ([]any, error) {
	amount, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	coll := env.SGet(collKey(env.Caller()))
	if amount.Gt(coll) {
		return nil, evm.Revertf("withdraw: collateral %s < %s", coll, amount)
	}
	env.SSet(collKey(env.Caller()), coll.MustSub(amount))
	limit, err := p.borrowLimit(env, env.Caller())
	if err != nil {
		return nil, err
	}
	if env.SGet(debtKey(env.Caller())).Gt(limit) {
		return nil, evm.Revertf("withdraw: would become undercollateralized")
	}
	if _, err := env.Call(p.Collateral.Address, "transfer", uint256.Zero(), env.Caller(), amount); err != nil {
		return nil, err
	}
	return nil, nil
}

// liquidate implements liquidate(borrower, repayAmount): anyone may repay
// an undercollateralized account's debt and seize discounted collateral.
// Flash-loan-funded liquidations are one of the paper's benign uses.
func (p *LendingPool) liquidate(env *evm.Env, args []any) ([]any, error) {
	borrower, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	repayAmount, err := evm.AmountArg(args, 1)
	if err != nil {
		return nil, err
	}
	limit, err := p.borrowLimit(env, borrower)
	if err != nil {
		return nil, err
	}
	debt := env.SGet(debtKey(borrower))
	if debt.Lte(limit) {
		return nil, evm.Revertf("liquidate: account is solvent")
	}
	if repayAmount.Gt(debt) {
		repayAmount = debt
	}
	if _, err := env.Call(p.Debt.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), repayAmount); err != nil {
		return nil, err
	}
	env.SSet(debtKey(borrower), debt.MustSub(repayAmount))
	// Seize collateral worth repayAmount plus the bonus.
	price, err := p.PriceOracle.Price(env)
	if err != nil {
		return nil, err
	}
	if price.IsZero() {
		return nil, evm.Revertf("liquidate: zero oracle price")
	}
	seize, err := repayAmount.MulDiv(fpOne, price)
	if err != nil {
		return nil, err
	}
	seize, err = seize.MulDiv(uint256.FromUint64(bpsDenom+p.LiquidationBonusBps), uint256.FromUint64(bpsDenom))
	if err != nil {
		return nil, err
	}
	coll := env.SGet(collKey(borrower))
	if seize.Gt(coll) {
		seize = coll
	}
	env.SSet(collKey(borrower), coll.MustSub(seize))
	if _, err := env.Call(p.Collateral.Address, "transfer", uint256.Zero(), env.Caller(), seize); err != nil {
		return nil, err
	}
	return []any{seize}, nil
}

// marginTrade implements marginTrade(amountIn, leverage): the caller posts
// amountIn of the debt token as margin and the pool swaps
// amountIn*leverage of its own debt-token funds for collateral on the
// margin pair, holding the position. The pool — not the caller — carries
// the market risk, and the swap itself moves the pair's price: this is
// the bZx-1 mechanism.
func (p *LendingPool) marginTrade(env *evm.Env, args []any) ([]any, error) {
	if p.MarginPair.IsZero() {
		return nil, evm.Revertf("marginTrade: not offered")
	}
	amountIn, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	leverage, err := evm.Arg[uint64](args, 1)
	if err != nil {
		return nil, err
	}
	if leverage == 0 || leverage > p.MaxLeverage {
		return nil, evm.Revertf("marginTrade: leverage %d out of range", leverage)
	}
	if _, err := env.Call(p.Debt.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amountIn); err != nil {
		return nil, err
	}
	size, err := amountIn.MulUint64(leverage)
	if err != nil {
		return nil, err
	}
	// Swap the position size through the margin pair.
	ret, err := env.Call(p.MarginPair, "getReserves", uint256.Zero())
	if err != nil {
		return nil, err
	}
	r0, r1 := ret[0].(uint256.Int), ret[1].(uint256.Int)
	t0, _ := dex.SortTokens(p.Debt, p.Collateral)
	reserveIn, reserveOut := r0, r1
	if p.Debt.Address != t0.Address {
		reserveIn, reserveOut = r1, r0
	}
	out, err := dex.GetAmountOut(size, reserveIn, reserveOut, dex.FeeBps)
	if err != nil {
		return nil, evm.Revertf("marginTrade: %v", err)
	}
	if _, err := env.Call(p.Debt.Address, "transfer", uint256.Zero(), p.MarginPair, size); err != nil {
		return nil, err
	}
	// Book the platform fee to the internal collector. The transfers land
	// between the pump swap's two legs: at account level they break the
	// trade window, and only the simplification rules (intra-app removal
	// for the fee transfer, WETH removal for the unwrap legs) restore the
	// trade shape — the reason the paper's rules 1 and 2 are load-bearing.
	fee := amountIn.MustMulDiv(uint256.FromUint64(marginFeeBps), uint256.FromUint64(bpsDenom))
	collector := env.SGetAddr("feeCollector")
	if !fee.IsZero() && !collector.IsZero() {
		if p.WETH.Address == p.Debt.Address && !p.WETH.Address.IsZero() {
			// Unwrap the fee into native ETH, then book it.
			if _, err := env.Call(p.WETH.Address, "withdraw", uint256.Zero(), fee); err != nil {
				return nil, err
			}
			if err := env.TransferETH(collector, fee); err != nil {
				return nil, err
			}
		} else if _, err := env.Call(p.Debt.Address, "transfer", uint256.Zero(), collector, fee); err != nil {
			return nil, err
		}
	}
	out0, out1 := out, uint256.Zero()
	if p.Debt.Address == t0.Address {
		out0, out1 = uint256.Zero(), out
	}
	if _, err := env.Call(p.MarginPair, "swap", uint256.Zero(), out0, out1, env.Self(), ""); err != nil {
		return nil, err
	}
	return []any{out}, nil
}
