// Package vault implements the yield-vault and yield-aggregator substrate:
// Harvest/Yearn-style vaults whose share price is derived from a
// manipulable on-chain spot price, and aggregator strategies whose honest
// multi-round rebalancing is structurally indistinguishable from the MBS
// attack pattern — the paper's documented source of MBS false positives
// (§VI-C).
package vault

import (
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Storage keys.
const (
	keyShareToken = "shareToken"
	keyPosReserve = "posReserve"
)

func entryPriceKey(a types.Address) string { return "entryPrice:" + a.String() }

// Vault is a single-asset yield vault: users deposit the underlying token
// and receive freshly minted shares (fUSDC-style); withdrawals burn shares
// for the proportional slice of vault value.
//
// The vault's value includes a position in a reserve asset priced at the
// SPOT rate of a stableswap pool. Because that spot rate can be skewed
// within one transaction, share pricing is manipulable — the Harvest
// Finance attack surface, with its famously tiny (0.5%) price volatility.
//
// DefenseBps, when non-zero, reproduces the deposit/withdraw price
// deviation check protocols deployed after the 2020 attacks: a withdrawal
// whose share price deviates from the depositor's entry price by more than
// the threshold reverts. The paper notes the defense still admits attacks
// below the threshold (28 of 97 unknown attacks moved prices < 1% against
// Harvest's 3% bound).
type Vault struct {
	// Underlying is the deposit asset (e.g. USDC).
	Underlying types.Token
	// Reserve is the secondary asset the vault holds a position in.
	Reserve types.Token
	// PricePool is the stableswap pool used to price Reserve in
	// Underlying units (spot, via getDy of one whole Reserve token).
	PricePool types.Address
	// ShareSymbol names the share token (e.g. "fUSDC").
	ShareSymbol string
	// DefenseBps is the maximum tolerated share price deviation between
	// deposit and withdrawal, in basis points; 0 disables the defense.
	DefenseBps uint64
	// EmitTradeEvents controls normalized TradeAction emission (explorer
	// visibility; most vaults emit nothing).
	EmitTradeEvents bool
}

var _ evm.Contract = (*Vault)(nil)
var _ evm.Initializer = (*Vault)(nil)

const bpsDenom = 10_000

// fpOne is the 18-decimal fixed-point unit used for share prices.
var fpOne = uint256.MustExp10(18)

// Init deploys the share token as a child contract.
func (v *Vault) Init(env *evm.Env) error {
	sym := v.ShareSymbol
	if sym == "" {
		sym = "y" + v.Underlying.Symbol
	}
	share, err := env.Create(&token.ERC20{Meta: types.Token{Symbol: sym, Decimals: 18}}, "")
	if err != nil {
		return err
	}
	env.SSetAddr(keyShareToken, share)
	return nil
}

// Call dispatches vault methods.
func (v *Vault) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "shareToken":
		return []any{env.SGetAddr(keyShareToken)}, nil
	case "deposit":
		return v.deposit(env, args)
	case "withdraw":
		return v.withdraw(env, args)
	case "fundReserve":
		return v.fundReserve(env, args)
	case "totalValue":
		val, err := v.totalValue(env)
		if err != nil {
			return nil, err
		}
		return []any{val}, nil
	case "sharePrice":
		p, err := v.sharePrice(env)
		if err != nil {
			return nil, err
		}
		return []any{p}, nil
	default:
		return nil, evm.Revertf("vault: unknown method %q", method)
	}
}

// fundReserve implements fundReserve(amount): moves a reserve-asset
// position into the vault (strategy allocation; pulled from caller).
func (v *Vault) fundReserve(env *evm.Env, args []any) ([]any, error) {
	amount, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(v.Reserve.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amount); err != nil {
		return nil, err
	}
	env.SSet(keyPosReserve, env.SGet(keyPosReserve).MustAdd(amount))
	return nil, nil
}

// reservePrice reads the spot value of one whole Reserve token in
// Underlying base units from the price pool.
func (v *Vault) reservePrice(env *evm.Env) (uint256.Int, error) {
	probe := uint256.MustExp10(uint(v.Reserve.Decimals))
	return evm.Ret0[uint256.Int](env.Call(v.PricePool, "getDy", uint256.Zero(), v.Reserve.Address, v.Underlying.Address, probe))
}

// totalValue is the vault's net asset value in Underlying base units.
func (v *Vault) totalValue(env *evm.Env) (uint256.Int, error) {
	idle, err := evm.Ret0[uint256.Int](env.Call(v.Underlying.Address, "balanceOf", uint256.Zero(), env.Self()))
	if err != nil {
		return uint256.Int{}, err
	}
	pos := env.SGet(keyPosReserve)
	if pos.IsZero() {
		return idle, nil
	}
	price, err := v.reservePrice(env)
	if err != nil {
		return uint256.Int{}, err
	}
	posValue, err := pos.MulDiv(price, uint256.MustExp10(uint(v.Reserve.Decimals)))
	if err != nil {
		return uint256.Int{}, err
	}
	return idle.Add(posValue)
}

// sharePrice is totalValue/totalShares in 18-decimal fixed point; 1.0 for
// an empty vault.
func (v *Vault) sharePrice(env *evm.Env) (uint256.Int, error) {
	share := env.SGetAddr(keyShareToken)
	supply, err := evm.Ret0[uint256.Int](env.Call(share, "totalSupply", uint256.Zero()))
	if err != nil {
		return uint256.Int{}, err
	}
	if supply.IsZero() {
		return fpOne, nil
	}
	val, err := v.totalValue(env)
	if err != nil {
		return uint256.Int{}, err
	}
	return val.MulDiv(fpOne, supply)
}

// deposit implements deposit(amount): pulls the underlying and mints
// shares at the current share price. Minting transfers from the BlackHole,
// giving the trade identifier its mint-liquidity shape.
func (v *Vault) deposit(env *evm.Env, args []any) ([]any, error) {
	amount, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	if amount.IsZero() {
		return nil, evm.Revertf("deposit: zero amount")
	}
	price, err := v.sharePrice(env)
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(v.Underlying.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amount); err != nil {
		return nil, err
	}
	shares, err := amount.MulDiv(fpOne, price)
	if err != nil {
		return nil, err
	}
	if shares.IsZero() {
		return nil, evm.Revertf("deposit: zero shares")
	}
	share := env.SGetAddr(keyShareToken)
	if _, err := env.Call(share, "mint", uint256.Zero(), env.Caller(), shares); err != nil {
		return nil, err
	}
	if v.DefenseBps > 0 {
		env.SSet(entryPriceKey(env.Caller()), price)
	}
	if v.EmitTradeEvents {
		dex.EmitTradeAction(env, env.Caller(), v.Underlying.Address, amount, share, shares)
	}
	return []any{shares}, nil
}

// withdraw implements withdraw(shares): burns the caller's shares and pays
// out the proportional underlying at the current share price.
func (v *Vault) withdraw(env *evm.Env, args []any) ([]any, error) {
	shares, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	price, err := v.sharePrice(env)
	if err != nil {
		return nil, err
	}
	if v.DefenseBps > 0 {
		entry := env.SGet(entryPriceKey(env.Caller()))
		if !entry.IsZero() {
			dev := price.AbsDiff(entry).MustMul(uint256.FromUint64(bpsDenom)).MustDiv(entry)
			if dev.Gt(uint256.FromUint64(v.DefenseBps)) {
				return nil, evm.Revertf("withdraw: share price deviation %s bps exceeds defense threshold %d bps", dev, v.DefenseBps)
			}
		}
	}
	share := env.SGetAddr(keyShareToken)
	if _, err := env.Call(share, "burn", uint256.Zero(), env.Caller(), shares); err != nil {
		return nil, err
	}
	amount, err := shares.MulDiv(price, fpOne)
	if err != nil {
		return nil, err
	}
	idle, err := evm.Ret0[uint256.Int](env.Call(v.Underlying.Address, "balanceOf", uint256.Zero(), env.Self()))
	if err != nil {
		return nil, err
	}
	if amount.Gt(idle) {
		return nil, evm.Revertf("withdraw: insufficient idle liquidity (%s < %s)", idle, amount)
	}
	if _, err := env.Call(v.Underlying.Address, "transfer", uint256.Zero(), env.Caller(), amount); err != nil {
		return nil, err
	}
	if v.EmitTradeEvents {
		dex.EmitTradeAction(env, env.Caller(), share, shares, v.Underlying.Address, amount)
	}
	return []any{amount}, nil
}
