package vault

import (
	"strings"
	"testing"
	"time"

	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

type fixture struct {
	ch       *evm.Chain
	reg      *token.Registry
	deployer types.Address
	usdc     types.Token
	usdt     types.Token
	pool     types.Address // stableswap USDC/USDT
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ch := evm.NewChain(time.Date(2020, 10, 1, 0, 0, 0, 0, time.UTC))
	reg := token.NewRegistry()
	deployer := ch.NewEOA("deployer")
	f := &fixture{ch: ch, reg: reg, deployer: deployer}
	f.usdc = token.MustDeploy(ch, reg, deployer, "USDC", 6, "")
	f.usdt = token.MustDeploy(ch, reg, deployer, "USDT", 6, "")
	f.pool = ch.MustDeploy(deployer, &dex.StableSwapPool{
		Tokens: []types.Token{f.usdc, f.usdt},
		Amp:    100,
		FeeBps: 4,
	}, "Curve: USDC-USDT")
	if _, err := dex.RegisterLPTokenAs(ch, reg, f.pool, "lpToken", "crvUSDCUSDT"); err != nil {
		t.Fatal(err)
	}
	token.MustMint(ch, f.usdc, deployer, deployer, f.usdc.Units("10000000"))
	token.MustMint(ch, f.usdt, deployer, deployer, f.usdt.Units("10000000"))
	for _, tok := range []types.Token{f.usdc, f.usdt} {
		if err := token.Approve(ch, tok, deployer, f.pool, uint256.Max()); err != nil {
			t.Fatal(err)
		}
	}
	r := ch.Send(deployer, f.pool, "addLiquidity",
		[]uint256.Int{f.usdc.Units("10000000"), f.usdt.Units("10000000")}, deployer)
	if !r.Success {
		t.Fatal(r.Err)
	}
	return f
}

func (f *fixture) vault(t *testing.T, defenseBps uint64) (types.Address, types.Token) {
	t.Helper()
	v := f.ch.MustDeploy(f.deployer, &Vault{
		Underlying:  f.usdc,
		Reserve:     f.usdt,
		PricePool:   f.pool,
		ShareSymbol: "fUSDC",
		DefenseBps:  defenseBps,
	}, "Harvest: fUSDC Vault")
	share, err := dex.RegisterLPTokenAs(f.ch, f.reg, v, "shareToken", "fUSDC")
	if err != nil {
		t.Fatal(err)
	}
	// Seed the vault: idle USDC from an honest LP plus a USDT position.
	lp := f.ch.NewEOA("")
	token.MustMint(f.ch, f.usdc, f.deployer, lp, f.usdc.Units("1000000"))
	if err := token.Approve(f.ch, f.usdc, lp, v, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	if r := f.ch.Send(lp, v, "deposit", f.usdc.Units("1000000")); !r.Success {
		t.Fatal(r.Err)
	}
	token.MustMint(f.ch, f.usdt, f.deployer, f.deployer, f.usdt.Units("500000"))
	if err := token.Approve(f.ch, f.usdt, f.deployer, v, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	if r := f.ch.Send(f.deployer, v, "fundReserve", f.usdt.Units("500000")); !r.Success {
		t.Fatal(r.Err)
	}
	return v, share
}

func TestDepositWithdrawRoundTrip(t *testing.T) {
	f := newFixture(t)
	v, share := f.vault(t, 0)
	alice := f.ch.NewEOA("")
	token.MustMint(f.ch, f.usdc, f.deployer, alice, f.usdc.Units("1000"))
	if err := token.Approve(f.ch, f.usdc, alice, v, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	r := f.ch.Send(alice, v, "deposit", f.usdc.Units("1000"))
	if !r.Success {
		t.Fatalf("deposit: %s", r.Err)
	}
	shares := token.MustBalanceOf(f.ch, share, alice)
	if shares.IsZero() {
		t.Fatal("no shares minted")
	}
	// Mint log comes from the BlackHole.
	var sawMint bool
	for _, lg := range r.Logs {
		if lg.Event == "Transfer" && lg.Address == share.Address && lg.Addrs[0] == types.BlackHole {
			sawMint = true
		}
	}
	if !sawMint {
		t.Error("share mint did not transfer from BlackHole")
	}

	r = f.ch.Send(alice, v, "withdraw", shares)
	if !r.Success {
		t.Fatalf("withdraw: %s", r.Err)
	}
	got := token.MustBalanceOf(f.ch, f.usdc, alice).Rat(uint256.MustExp10(6))
	// No price movement between deposit and withdraw: near-exact round trip.
	if got < 999.99 || got > 1000.01 {
		t.Errorf("round trip = %.4f USDC", got)
	}
}

func TestSharePriceTracksReserveSpot(t *testing.T) {
	f := newFixture(t)
	v, _ := f.vault(t, 0)
	before, err := evm.Ret0[uint256.Int](f.ch.View(v, "sharePrice"))
	if err != nil {
		t.Fatal(err)
	}
	// Skew the stable pool: dump USDT, making the vault's USDT position
	// worth less USDC.
	whale := f.ch.NewEOA("")
	token.MustMint(f.ch, f.usdt, f.deployer, whale, f.usdt.Units("5000000"))
	if err := token.Approve(f.ch, f.usdt, whale, f.pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	if r := f.ch.Send(whale, f.pool, "exchange", f.usdt.Address, f.usdc.Address, f.usdt.Units("5000000"), uint256.Zero(), whale); !r.Success {
		t.Fatal(r.Err)
	}
	after, err := evm.Ret0[uint256.Int](f.ch.View(v, "sharePrice"))
	if err != nil {
		t.Fatal(err)
	}
	if !after.Lt(before) {
		t.Errorf("share price did not drop: %s -> %s", before, after)
	}
	// The move is small in relative terms (stable pool): < 5%.
	rel := before.AbsDiff(after).Rat(before)
	if rel <= 0 || rel > 0.05 {
		t.Errorf("share price moved %.4f%%, want small but nonzero", rel*100)
	}
}

// TestManipulationRoundIsProfitable verifies the Harvest-style round:
// skew pool -> deposit cheap -> unskew -> withdraw dear.
func TestManipulationRoundIsProfitable(t *testing.T) {
	f := newFixture(t)
	v, share := f.vault(t, 0)

	attacker := f.ch.NewEOA("")
	capitalUSDC := f.usdc.Units("2000000")
	capitalUSDT := f.usdt.Units("4000000")
	token.MustMint(f.ch, f.usdc, f.deployer, attacker, capitalUSDC)
	token.MustMint(f.ch, f.usdt, f.deployer, attacker, capitalUSDT)
	for _, approve := range []struct {
		tok types.Token
		to  types.Address
	}{{f.usdc, v}, {f.usdc, f.pool}, {f.usdt, f.pool}} {
		if err := token.Approve(f.ch, approve.tok, attacker, approve.to, uint256.Max()); err != nil {
			t.Fatal(err)
		}
	}

	// 1. Skew: dump USDT into the pool (vault's USDT position devalues).
	if r := f.ch.Send(attacker, f.pool, "exchange", f.usdt.Address, f.usdc.Address, capitalUSDT, uint256.Zero(), attacker); !r.Success {
		t.Fatal(r.Err)
	}
	// 2. Deposit USDC at the depressed share price.
	if r := f.ch.Send(attacker, v, "deposit", capitalUSDC); !r.Success {
		t.Fatal(r.Err)
	}
	// 3. Unskew: buy the USDT back.
	usdcLeft := token.MustBalanceOf(f.ch, f.usdc, attacker)
	if r := f.ch.Send(attacker, f.pool, "exchange", f.usdc.Address, f.usdt.Address, usdcLeft, uint256.Zero(), attacker); !r.Success {
		t.Fatal(r.Err)
	}
	// 4. Withdraw at the recovered share price.
	shares := token.MustBalanceOf(f.ch, share, attacker)
	if r := f.ch.Send(attacker, v, "withdraw", shares); !r.Success {
		t.Fatal(r.Err)
	}

	// The attacker's vault round trip must beat the USDC they put in:
	// deposit happened below fair share price.
	finalUSDC := token.MustBalanceOf(f.ch, f.usdc, attacker)
	// finalUSDC includes step-3 change; compare vault leg only: shares
	// were bought with capitalUSDC, so withdrawal > capitalUSDC shows the
	// mispricing (pool swap fees eat from a different pocket).
	if finalUSDC.IsZero() {
		t.Fatal("no USDC back")
	}
	withdrawn := finalUSDC // all USDC now held came from step 4 (step-3 spent all)
	if withdrawn.Lte(capitalUSDC) {
		t.Errorf("vault leg not profitable: in %s, out %s", capitalUSDC, withdrawn)
	}
}

func TestDefenseBlocksLargeDeviation(t *testing.T) {
	f := newFixture(t)
	v, share := f.vault(t, 100) // 1% defense threshold

	attacker := f.ch.NewEOA("")
	token.MustMint(f.ch, f.usdc, f.deployer, attacker, f.usdc.Units("1000000"))
	token.MustMint(f.ch, f.usdt, f.deployer, attacker, f.usdt.Units("8000000"))
	for _, approve := range []struct {
		tok types.Token
		to  types.Address
	}{{f.usdc, v}, {f.usdt, f.pool}} {
		if err := token.Approve(f.ch, approve.tok, attacker, approve.to, uint256.Max()); err != nil {
			t.Fatal(err)
		}
	}
	// Deposit at fair price, then crash the reserve price hard and try to
	// withdraw: the deviation check must trip.
	if r := f.ch.Send(attacker, v, "deposit", f.usdc.Units("1000000")); !r.Success {
		t.Fatal(r.Err)
	}
	if r := f.ch.Send(attacker, f.pool, "exchange", f.usdt.Address, f.usdc.Address, f.usdt.Units("8000000"), uint256.Zero(), attacker); !r.Success {
		t.Fatal(r.Err)
	}
	shares := token.MustBalanceOf(f.ch, share, attacker)
	r := f.ch.Send(attacker, v, "withdraw", shares)
	if r.Success {
		t.Fatal("defended vault allowed manipulated withdrawal")
	}
	if !strings.Contains(r.Err, "defense threshold") {
		t.Errorf("err = %s", r.Err)
	}
}

func TestAggregatorRebalanceProfitsFromCrossPoolSpread(t *testing.T) {
	f := newFixture(t)
	// Two constant-product USDC/USDT pools of the same app with a price
	// spread: pool A cheap USDT, pool B rich USDT.
	poolA, err := dex.DeployPair(f.ch, f.reg, f.deployer, f.usdc, f.usdt, "SushiSwap")
	if err != nil {
		t.Fatal(err)
	}
	poolB, err := dex.DeployPair(f.ch, f.reg, f.deployer, f.usdc, f.usdt, "SushiSwap")
	if err != nil {
		t.Fatal(err)
	}
	token.MustMint(f.ch, f.usdc, f.deployer, f.deployer, f.usdc.Units("4100000"))
	token.MustMint(f.ch, f.usdt, f.deployer, f.deployer, f.usdt.Units("4000000"))
	// A: 1 USDT = 1.00 USDC; B: 1 USDT = 1.05 USDC.
	dex.MustAddLiquidity(f.ch, poolA, f.deployer, f.usdc, f.usdc.Units("2000000"), f.usdt, f.usdt.Units("2000000"))
	dex.MustAddLiquidity(f.ch, poolB, f.deployer, f.usdc, f.usdc.Units("2100000"), f.usdt, f.usdt.Units("2000000"))

	operator := f.ch.NewEOA("Harvest: Operator")
	strat := f.ch.MustDeploy(operator, &YieldAggregator{WorkingToken: f.usdc}, "Harvest: Strategy")
	token.MustMint(f.ch, f.usdc, f.deployer, strat, f.usdc.Units("30000"))

	before := token.MustBalanceOf(f.ch, f.usdc, strat)
	r := f.ch.Send(operator, strat, "rebalanceAcrossPools", poolA, poolB, f.usdt, f.usdc.Units("10000"), uint64(3))
	if !r.Success {
		t.Fatalf("rebalance: %s", r.Err)
	}
	after := token.MustBalanceOf(f.ch, f.usdc, strat)
	if !after.Gt(before) {
		t.Errorf("rebalance not profitable: %s -> %s", before.ToUnits(6), after.ToUnits(6))
	}
}

func TestAggregatorFlashRebalance(t *testing.T) {
	f := newFixture(t)
	poolA, err := dex.DeployPair(f.ch, f.reg, f.deployer, f.usdc, f.usdt, "SushiSwap")
	if err != nil {
		t.Fatal(err)
	}
	poolB, err := dex.DeployPair(f.ch, f.reg, f.deployer, f.usdc, f.usdt, "SushiSwap")
	if err != nil {
		t.Fatal(err)
	}
	weth := token.MustDeploy(f.ch, f.reg, f.deployer, "WETH", 18, "")
	funding, err := dex.DeployPair(f.ch, f.reg, f.deployer, f.usdc, weth, "Uniswap")
	if err != nil {
		t.Fatal(err)
	}
	token.MustMint(f.ch, f.usdc, f.deployer, f.deployer, f.usdc.Units("14100000"))
	token.MustMint(f.ch, f.usdt, f.deployer, f.deployer, f.usdt.Units("4000000"))
	token.MustMint(f.ch, weth, f.deployer, f.deployer, weth.Units("5000"))
	dex.MustAddLiquidity(f.ch, poolA, f.deployer, f.usdc, f.usdc.Units("2000000"), f.usdt, f.usdt.Units("2000000"))
	dex.MustAddLiquidity(f.ch, poolB, f.deployer, f.usdc, f.usdc.Units("2100000"), f.usdt, f.usdt.Units("2000000"))
	dex.MustAddLiquidity(f.ch, funding, f.deployer, f.usdc, f.usdc.Units("10000000"), weth, weth.Units("5000"))

	operator := f.ch.NewEOA("Harvest: Operator")
	strat := f.ch.MustDeploy(operator, &YieldAggregator{WorkingToken: f.usdc}, "Harvest: Strategy")

	if r := f.ch.Send(operator, strat, "queueRebalance", poolA, poolB, f.usdt, f.usdc.Units("10000"), uint64(3)); !r.Success {
		t.Fatal(r.Err)
	}
	r := f.ch.Send(operator, strat, "flashRebalance", funding, weth, f.usdc.Units("30000"))
	if !r.Success {
		t.Fatalf("flashRebalance: %s", r.Err)
	}
	// The strategy repaid the flash loan and kept a spread profit.
	profit := token.MustBalanceOf(f.ch, f.usdc, strat)
	if profit.IsZero() {
		t.Error("no profit retained after flash rebalance")
	}
	// Trace carries the Uniswap flash loan signature.
	var sawSwap, sawCallback bool
	for _, it := range r.InternalTxs {
		if it.Method == "swap" && it.To == funding {
			sawSwap = true
		}
		if it.Method == "uniswapV2Call" {
			sawCallback = true
		}
	}
	if !sawSwap || !sawCallback {
		t.Error("flash loan signature missing from trace")
	}
}
