package vault

import (
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// YieldAggregator is an aggregator strategy contract whose honest
// operations are the confusers the paper's evaluation wrestles with:
//
//   - rebalanceAcrossPools splits a cross-pool arbitrage into several
//     tranches, each buying an asset from one pool of a DEX and selling it
//     to another pool of the *same* DEX at a slightly better rate. At the
//     application level both pools carry the same tag, so the trade list
//     is literally "buy from X, sell to X at a profit, repeated N times" —
//     the MBS pattern. This is why MBS precision is only 56.1% and why the
//     paper's "initiated by a yield aggregator" heuristic lifts it to 80%.
//   - batchedEntry buys an asset in tranches and later sells part of the
//     position — an SBS-shaped treasury operation.
//
// Strategies run on flash-loaned working capital (the realistic case:
// aggregators use flash loans so they don't hold float).
type YieldAggregator struct {
	// WorkingToken is the strategy's base asset.
	WorkingToken types.Token
}

var _ evm.Contract = (*YieldAggregator)(nil)

// Call dispatches aggregator strategy methods.
func (y *YieldAggregator) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "rebalanceAcrossPools":
		return y.rebalance(env, args)
	case "batchedEntry":
		return y.batchedEntry(env, args)
	case "queueRebalance":
		return y.queueRebalance(env, args)
	case "flashRebalance":
		return y.flashRebalance(env, args)
	case "uniswapV2Call":
		// Flash swap callback: run the queued strategy then repay.
		return y.flashCallback(env, args)
	default:
		return nil, evm.Revertf("yield aggregator: unknown method %q", method)
	}
}

// rebalance implements rebalanceAcrossPools(cheapPool, richPool, asset,
// trancheAmount, rounds): per round, buy `asset` on cheapPool with the
// working token and sell it on richPool.
func (y *YieldAggregator) rebalance(env *evm.Env, args []any) ([]any, error) {
	cheapPool, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	richPool, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	asset, err := evm.Arg[types.Token](args, 2)
	if err != nil {
		return nil, err
	}
	tranche, err := evm.AmountArg(args, 3)
	if err != nil {
		return nil, err
	}
	rounds, err := evm.Arg[uint64](args, 4)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < rounds; i++ {
		bought, err := y.pairSwap(env, cheapPool, y.WorkingToken, asset, tranche)
		if err != nil {
			return nil, err
		}
		if _, err := y.pairSwap(env, richPool, asset, y.WorkingToken, bought); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// batchedEntry implements batchedEntry(pool, asset, trancheAmount,
// tranches, sellBackBps): buys the asset in tranches, then sells back a
// fraction of the position in one trade.
func (y *YieldAggregator) batchedEntry(env *evm.Env, args []any) ([]any, error) {
	pool, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	asset, err := evm.Arg[types.Token](args, 1)
	if err != nil {
		return nil, err
	}
	tranche, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	tranches, err := evm.Arg[uint64](args, 3)
	if err != nil {
		return nil, err
	}
	sellBackBps, err := evm.Arg[uint64](args, 4)
	if err != nil {
		return nil, err
	}
	total := uint256.Zero()
	for i := uint64(0); i < tranches; i++ {
		bought, err := y.pairSwap(env, pool, y.WorkingToken, asset, tranche)
		if err != nil {
			return nil, err
		}
		total = total.MustAdd(bought)
	}
	if sellBackBps > 0 {
		sell := total.MustMul(uint256.FromUint64(sellBackBps)).MustDiv(uint256.FromUint64(10_000))
		if _, err := y.pairSwap(env, pool, asset, y.WorkingToken, sell); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// pairSwap executes a taker swap on a constant-product pair using the
// aggregator's own balance.
func (y *YieldAggregator) pairSwap(env *evm.Env, pool types.Address, tokenIn, tokenOut types.Token, amountIn uint256.Int) (uint256.Int, error) {
	ret, err := env.Call(pool, "getReserves", uint256.Zero())
	if err != nil {
		return uint256.Int{}, err
	}
	r0, r1 := ret[0].(uint256.Int), ret[1].(uint256.Int)
	t0, _ := dex.SortTokens(tokenIn, tokenOut)
	reserveIn, reserveOut := r0, r1
	if tokenIn.Address != t0.Address {
		reserveIn, reserveOut = r1, r0
	}
	out, err := dex.GetAmountOut(amountIn, reserveIn, reserveOut, dex.FeeBps)
	if err != nil {
		return uint256.Int{}, evm.Revertf("strategy swap: %v", err)
	}
	if _, err := env.Call(tokenIn.Address, "transfer", uint256.Zero(), pool, amountIn); err != nil {
		return uint256.Int{}, err
	}
	out0, out1 := out, uint256.Zero()
	if tokenIn.Address == t0.Address {
		out0, out1 = uint256.Zero(), out
	}
	if _, err := env.Call(pool, "swap", uint256.Zero(), out0, out1, env.Self(), ""); err != nil {
		return uint256.Int{}, err
	}
	return out, nil
}

// flashCallback handles a Uniswap flash swap: decode the strategy request
// from the data string, run it, and repay principal plus fee margin.
//
// Data format: "rebalance" — the strategy parameters are stored in the
// contract's storage beforehand by the launcher (storage is the only
// journaled channel available to pass structured state).
func (y *YieldAggregator) flashCallback(env *evm.Env, args []any) ([]any, error) {
	amount0, err := evm.AmountArg(args, 1)
	if err != nil {
		return nil, err
	}
	amount1, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	borrowed := amount0
	if borrowed.IsZero() {
		borrowed = amount1
	}
	cheap := env.SGetAddr("q:cheap")
	rich := env.SGetAddr("q:rich")
	assetAddr := env.SGetAddr("q:asset")
	tranche := env.SGet("q:tranche")
	rounds := env.SGet("q:rounds").Uint64()
	assetDec := env.SGet("q:assetDec").Uint64()
	asset := types.Token{Address: assetAddr, Symbol: "ASSET", Decimals: uint8(assetDec)}
	if _, err := y.rebalance(env, []any{cheap, rich, asset, tranche, rounds}); err != nil {
		return nil, err
	}
	// Repay principal + 0.4% to clear the lender's fee check.
	fee := borrowed.MustMul(uint256.FromUint64(40)).MustDiv(uint256.FromUint64(10_000))
	if _, err := env.Call(y.WorkingToken.Address, "transfer", uint256.Zero(), env.Caller(), borrowed.MustAdd(fee)); err != nil {
		return nil, err
	}
	return nil, nil
}

// queueRebalance stores flash-rebalance parameters for the next
// uniswapV2Call; see flashCallback.
func (y *YieldAggregator) queueRebalance(env *evm.Env, args []any) ([]any, error) {
	cheap, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	rich, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	asset, err := evm.Arg[types.Token](args, 2)
	if err != nil {
		return nil, err
	}
	tranche, err := evm.AmountArg(args, 3)
	if err != nil {
		return nil, err
	}
	rounds, err := evm.Arg[uint64](args, 4)
	if err != nil {
		return nil, err
	}
	env.SSetAddr("q:cheap", cheap)
	env.SSetAddr("q:rich", rich)
	env.SSetAddr("q:asset", asset.Address)
	env.SSet("q:tranche", tranche)
	env.SSet("q:rounds", uint256.FromUint64(rounds))
	env.SSet("q:assetDec", uint256.FromUint64(uint64(asset.Decimals)))
	return nil, nil
}

// flashRebalance implements flashRebalance(fundingPair, otherToken,
// borrowAmount): borrows working capital from a Uniswap-style pair via
// flash swap and runs the queued rebalance inside the callback.
func (y *YieldAggregator) flashRebalance(env *evm.Env, args []any) ([]any, error) {
	fundingPair, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	other, err := evm.Arg[types.Token](args, 1)
	if err != nil {
		return nil, err
	}
	amount, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	t0, _ := dex.SortTokens(y.WorkingToken, other)
	out0, out1 := amount, uint256.Zero()
	if y.WorkingToken.Address != t0.Address {
		out0, out1 = uint256.Zero(), amount
	}
	_, err = env.Call(fundingPair, "swap", uint256.Zero(), out0, out1, env.Self(), "rebalance")
	return nil, err
}
