package scan

import "testing"

// TestAdaptiveChunkSize pins the chunk-size policy: explicit override
// wins; otherwise about targetChunksPerWorker chunks per worker,
// clamped to [MinChunkSize, MaxChunkSize].
func TestAdaptiveChunkSize(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		n       int
		want    int
		workers int
	}{
		{"explicit override", Options{Workers: 4, ChunkSize: 7}, 10_000, 7, 4},
		{"tiny corpus floors", Options{Workers: 4}, 10, MinChunkSize, 1},
		{"small corpus floors", Options{Workers: 4}, 500, MinChunkSize, 4},
		{"mid corpus adapts", Options{Workers: 4}, 6400, 6400 / (4 * 8), 4},
		{"huge corpus caps", Options{Workers: 2}, 1_000_000, MaxChunkSize, 2},
		{"one worker adapts to n", Options{Workers: 1}, 2048, 2048 / 8, 1},
	}
	for _, tc := range cases {
		if got := tc.opts.chunkSize(tc.n); got != tc.want {
			t.Errorf("%s: chunkSize(%d) = %d, want %d", tc.name, tc.n, got, tc.want)
		}
		if got := tc.opts.ResolvedWorkers(tc.n); got != tc.workers {
			t.Errorf("%s: ResolvedWorkers(%d) = %d, want %d", tc.name, tc.n, got, tc.workers)
		}
	}
	// The adaptive size never produces fewer chunks than workers for
	// inputs that could occupy every worker.
	opts := Options{Workers: 8}
	for _, n := range []int{8 * MinChunkSize, 1000, 5963, 100_000} {
		cs := opts.chunkSize(n)
		numChunks := (n + cs - 1) / cs
		if numChunks < 8 {
			t.Errorf("n=%d: %d chunks starve an 8-worker pool (chunk size %d)", n, numChunks, cs)
		}
	}
}
