package scan_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"leishen/internal/core"
	"leishen/internal/metrics"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

// TestMetricsMatchSummary proves the live counters agree with the
// deterministic Summary for both the sequential and the pooled path,
// and that instrumentation does not change a single report byte.
func TestMetricsMatchSummary(t *testing.T) {
	c, err := world.Generate(world.Config{Seed: 11, ScalePct: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A fixed clock pins Elapsed, so report bytes are comparable across
	// runs (the one field wall time would otherwise vary).
	tick := time.Date(2020, 2, 3, 0, 0, 0, 0, time.UTC)
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
		Clock:    func() time.Time { return tick },
	})
	bare, bareSum := scan.Scan(det, c.Receipts, scan.Options{Workers: 1})

	for _, workers := range []int{1, 4} {
		reg := metrics.NewRegistry()
		m := scan.NewMetrics(reg)
		reports, sum := scan.Scan(det, c.Receipts, scan.Options{Workers: workers, Metrics: m})

		if sum != bareSum {
			t.Fatalf("workers=%d: instrumented summary %+v != bare %+v", workers, sum, bareSum)
		}
		if got, want := m.Txs.Value(), uint64(sum.Inspected); got != want {
			t.Errorf("workers=%d: Txs = %d, want %d", workers, got, want)
		}
		if got, want := m.FlashLoans.Value(), uint64(sum.FlashLoans); got != want {
			t.Errorf("workers=%d: FlashLoans = %d, want %d", workers, got, want)
		}
		if got, want := m.Attacks.Value(), uint64(sum.Attacks); got != want {
			t.Errorf("workers=%d: Attacks = %d, want %d", workers, got, want)
		}
		if got, want := m.Suppressed.Value(), uint64(sum.Suppressed); got != want {
			t.Errorf("workers=%d: Suppressed = %d, want %d", workers, got, want)
		}
		if got := m.DetectSeconds.Count(); got != uint64(sum.Inspected) {
			t.Errorf("workers=%d: DetectSeconds count = %d, want %d", workers, got, sum.Inspected)
		}
		if m.Scans.Value() != 1 {
			t.Errorf("workers=%d: Scans = %d, want 1", workers, m.Scans.Value())
		}
		if got := m.InFlight.Value(); got != 0 {
			t.Errorf("workers=%d: InFlight settled at %d, want 0", workers, got)
		}
		resolved := scan.Options{Workers: workers}.ResolvedWorkers(len(c.Receipts))
		if got := m.Workers.Value(); got != int64(resolved) {
			t.Errorf("workers=%d: Workers gauge = %d, want %d", workers, got, resolved)
		}
		if workers > 1 && m.Chunks.Value() == 0 {
			t.Errorf("workers=%d: pooled scan claimed no chunks", workers)
		}
		if workers > 1 && m.ChunkSeconds.Count() != m.Chunks.Value() {
			t.Errorf("workers=%d: ChunkSeconds count %d != Chunks %d",
				workers, m.ChunkSeconds.Count(), m.Chunks.Value())
		}

		// Byte-identity: instrumentation must not perturb detection.
		if len(reports) != len(bare) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(reports), len(bare))
		}
		for i := range reports {
			got, err1 := json.Marshal(reports[i])
			want, err2 := json.Marshal(bare[i])
			if err1 != nil || err2 != nil {
				t.Fatalf("marshal: %v %v", err1, err2)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("workers=%d: report %d differs with metrics on:\n%s\nvs\n%s", workers, i, got, want)
			}
		}

		// The exposition carries the scan family end to end.
		out := string(reg.AppendText(nil))
		for _, want := range []string{
			"leishen_scan_txs_total", "leishen_scan_detect_seconds_bucket",
			"leishen_scan_workers", "leishen_scan_passes_total",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("workers=%d: exposition missing %s", workers, want)
			}
		}
	}
}
