package scan_test

import (
	"strings"
	"testing"

	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/metrics"
	"leishen/internal/scan"
)

// TestScanPanicRecovery is the degraded-mode acceptance property: a
// receipt that panics the detection pipeline yields a deterministic
// per-transaction error verdict — identical bytes for any worker
// count — while every other receipt scans exactly as it would in a
// clean run. A nil receipt is the injector: the pipeline dereferences
// it on entry, which is the same shape as any latent nil/bounds bug a
// hostile transaction might trip.
func TestScanPanicRecovery(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	if len(c.Receipts) < 8 {
		t.Fatalf("corpus too small: %d receipts", len(c.Receipts))
	}

	// Clean reference run over the unpoisoned corpus.
	cleanReps, cleanSum := scan.Scan(det, c.Receipts, scan.Options{Workers: 1})
	if cleanSum.Errors != 0 {
		t.Fatalf("clean run reported errors: %+v", cleanSum)
	}

	poisoned := append([]*evm.Receipt(nil), c.Receipts...)
	poison := len(poisoned) / 2
	poisoned[poison] = nil

	reg := metrics.NewRegistry()
	m := scan.NewMetrics(reg)
	seqReps, seqSum := scan.Scan(det, poisoned, scan.Options{Workers: 1, Metrics: m})
	if got := m.Panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The poisoned receipt gets an error verdict; detection of every
	// other receipt is untouched.
	rep := seqReps[poison]
	if rep.Error == "" || rep.IsAttack || len(rep.Loans) != 0 {
		t.Fatalf("poisoned verdict = %+v", rep)
	}
	if !strings.Contains(rep.Error, "panic") {
		t.Fatalf("error verdict does not name the panic: %q", rep.Error)
	}
	if seqSum.Errors != 1 || seqSum.Inspected != cleanSum.Inspected {
		t.Fatalf("summary = %+v, want Errors=1 Inspected=%d", seqSum, cleanSum.Inspected)
	}
	for i := range seqReps {
		if i == poison {
			continue
		}
		if got, want := reportBytes(t, seqReps[i]), reportBytes(t, cleanReps[i]); got != want {
			t.Fatalf("receipt %d changed by an unrelated panic:\n got %s\nwant %s", i, got, want)
		}
	}

	// Determinism across worker counts, error verdict included.
	for _, workers := range []int{2, 4} {
		parReps, parSum := scan.Scan(det, poisoned, scan.Options{Workers: workers, ChunkSize: 4})
		if parSum != seqSum {
			t.Fatalf("workers=%d summary = %+v, want %+v", workers, parSum, seqSum)
		}
		for i := range parReps {
			if got, want := reportBytes(t, parReps[i]), reportBytes(t, seqReps[i]); got != want {
				t.Fatalf("workers=%d receipt %d differs:\n got %s\nwant %s", workers, i, got, want)
			}
		}
	}

	// The error verdict survives the archive codec round trip.
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := core.DecodeReportJSON(data)
	if err != nil {
		t.Fatalf("error verdict does not decode: %v", err)
	}
	if wire.Error != rep.Error {
		t.Fatalf("wire error = %q, want %q", wire.Error, rep.Error)
	}
}
