// Package scan is the parallel batch-detection engine: it shards a
// receipt corpus across a pool of workers, each owning a view of one
// shared *core.Detector plus its own reusable pipeline scratch, and
// re-sequences the results so that output order, report bytes, and
// aggregate statistics are identical to a sequential scan.
//
// Determinism is the design constraint. Detection is a pure function of
// the receipt (the tagger and thresholds are fixed at detector
// construction), so inspecting receipts concurrently and emitting the
// reports in input order reproduces the sequential run byte for byte —
// only the wall-clock Elapsed field varies, exactly as it does between
// two sequential runs. Workers=1 degenerates to a plain loop.
//
// The pool deliberately lives outside the pure pipeline packages
// (internal/core and below): goroutines, atomics and channels are
// scheduling state, not detection state, and the purity gate keeps them
// out of the per-transaction path.
package scan

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/metrics"
)

// Chunking bounds. Chunks amortize the claim (one atomic add) and
// completion (one channel send) over many receipts while staying small
// enough to keep the re-sequencer streaming and the pool load-balanced.
const (
	// MinChunkSize floors the adaptive chunk size: below it, per-chunk
	// bookkeeping dominates the work.
	MinChunkSize = 16
	// MaxChunkSize caps the adaptive chunk size: above it, the emitter's
	// frontier stalls too long behind a slow chunk.
	MaxChunkSize = 512
	// targetChunksPerWorker is the load-balancing slack the adaptive
	// size aims for: enough chunks per worker that an unlucky worker
	// holding a slow chunk doesn't idle the rest of the pool.
	targetChunksPerWorker = 8
)

// Arena is the per-worker pipeline arena (alias of core.Arena): every
// intermediate buffer plus the slabs backing report data. Scan and Each
// draw arenas from an internal pool, so repeated scans through one
// engine reuse warmed buffers across calls.
type Arena = core.Arena

// arenaPool recycles warmed arenas across scans. Pooling is safe
// because reports own their data (slab regions are never rewritten):
// an arena returned to the pool may still back live reports, and a
// later scan only appends to its slabs.
var arenaPool = sync.Pool{New: func() any { return core.NewArena() }}

// Options configures a scan.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the number of receipts per work unit; <= 0 sizes
	// chunks adaptively from the input length and worker count (about
	// targetChunksPerWorker chunks per worker, clamped to
	// [MinChunkSize, MaxChunkSize]).
	ChunkSize int
	// Metrics, when non-nil, receives per-transaction and per-chunk
	// telemetry. Instrumentation never changes reports, order, or the
	// summary — only the side channel — and stays allocation-free on
	// the per-transaction path.
	Metrics *Metrics
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// chunkSize resolves the work-unit size for an n-receipt scan. An
// explicit ChunkSize wins; otherwise the size adapts to give each
// worker about targetChunksPerWorker chunks, clamped to
// [MinChunkSize, MaxChunkSize] — small corpora keep chunks small enough
// to use every worker, huge corpora amortize claim overhead without
// stalling the in-order emitter.
func (o Options) chunkSize(n int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	cs := n / (o.workers() * targetChunksPerWorker)
	if cs < MinChunkSize {
		return MinChunkSize
	}
	if cs > MaxChunkSize {
		return MaxChunkSize
	}
	return cs
}

// ResolvedWorkers returns the pool size a scan over n receipts actually
// uses: Workers (GOMAXPROCS when unset) clamped to the number of work
// chunks — extra workers would never claim a chunk.
func (o Options) ResolvedWorkers(n int) int {
	cs := o.chunkSize(n)
	numChunks := (n + cs - 1) / cs
	w := o.workers()
	if w > numChunks {
		w = numChunks
	}
	return w
}

// Summary aggregates corpus-wide statistics. Every field is a commutative
// count, so the summary is identical for any worker count.
type Summary struct {
	// Inspected is the number of receipts scanned.
	Inspected int `json:"inspected"`
	// FlashLoans counts receipts with at least one identified flash loan.
	FlashLoans int `json:"flashLoans"`
	// Attacks counts flpAttack verdicts.
	Attacks int `json:"attacks"`
	// Suppressed counts verdicts discarded by the yield-aggregator
	// heuristic.
	Suppressed int `json:"suppressed"`
	// Errors counts receipts whose inspection failed — a detector panic
	// recovered into an error verdict instead of killing the scan.
	Errors int `json:"errors,omitempty"`
}

// Observe folds one report into the summary.
func (s *Summary) Observe(rep *core.Report) {
	s.Inspected++
	if rep.Error != "" {
		s.Errors++
		return
	}
	if len(rep.Loans) > 0 {
		s.FlashLoans++
	}
	if rep.IsAttack {
		s.Attacks++
	}
	if rep.SuppressedByHeuristic {
		s.Suppressed++
	}
}

// Add folds another summary into s — how the follower and the HTTP
// server accumulate per-batch summaries into lifetime totals.
func (s *Summary) Add(o Summary) {
	s.Inspected += o.Inspected
	s.FlashLoans += o.FlashLoans
	s.Attacks += o.Attacks
	s.Suppressed += o.Suppressed
	s.Errors += o.Errors
}

// inspectSafe runs one inspection, converting a detector panic into a
// deterministic per-transaction error verdict so one poisoned receipt
// cannot take down a whole scan (or the follower daemon above it). A
// panicking pipeline may leave the arena's intermediates inconsistent,
// so the poisoned arena is abandoned — *scratch is replaced with a
// fresh arena and the old one is never returned to the pool.
func inspectSafe(det *core.Detector, r *evm.Receipt, scratch **core.Arena, m *Metrics) (rep *core.Report) {
	defer func() {
		if p := recover(); p != nil {
			*scratch = core.NewArena()
			if m != nil {
				m.Panics.Inc()
			}
			rep = core.ErrorReport(r, fmt.Sprintf("detector panic: %v", p))
		}
	}()
	return det.InspectScratch(r, *scratch)
}

// Scan inspects every receipt and returns the reports in input order,
// along with the aggregate summary.
func Scan(det *core.Detector, receipts []*evm.Receipt, opts Options) ([]*core.Report, Summary) {
	out := make([]*core.Report, 0, len(receipts))
	//lint:allow errflow the collector callback never returns an error, so Each cannot fail
	sum, _ := Each(det, receipts, opts, func(_ int, rep *core.Report) error {
		out = append(out, rep)
		return nil
	})
	return out, sum
}

// Each inspects every receipt and streams the reports to fn in input
// order as they resolve — a parallel scan behind a sequential callback.
// fn runs on the calling goroutine; returning a non-nil error stops the
// scan (workers finish their in-flight chunk, no further reports are
// delivered) and Each returns that error with the summary of the reports
// delivered so far.
func Each(det *core.Detector, receipts []*evm.Receipt, opts Options, fn func(i int, rep *core.Report) error) (Summary, error) {
	var sum Summary
	n := len(receipts)
	if n == 0 {
		return sum, nil
	}
	cs := opts.chunkSize(n)
	numChunks := (n + cs - 1) / cs
	workers := opts.ResolvedWorkers(n)
	m := opts.Metrics
	if m != nil {
		m.Scans.Inc()
		m.Workers.Set(int64(workers))
	}

	// One worker: inspect inline, no goroutine pool, no cursor, no
	// re-sequencer. This is the sequential baseline the determinism
	// guarantee is stated against.
	if workers <= 1 {
		scratch := arenaPool.Get().(*core.Arena)
		// Closure, not a bound argument: inspectSafe swaps in a fresh
		// arena after a recovered panic, and only the live one may be
		// pooled.
		defer func() { arenaPool.Put(scratch) }()
		for i, r := range receipts {
			rep := inspectSafe(det, r, &scratch, m)
			sum.Observe(rep)
			if m != nil {
				m.observeTx(rep)
			}
			if err := fn(i, rep); err != nil {
				return sum, err
			}
		}
		return sum, nil
	}

	// Workers claim chunk indices from an atomic cursor, write reports
	// into disjoint regions of the shared results slice, and announce
	// each finished chunk. The emitter advances a frontier over the
	// completed chunks, delivering reports strictly in input order.
	results := make([]*core.Report, n)
	var (
		cursor atomic.Int64
		stop   atomic.Bool
		wg     sync.WaitGroup
	)
	doneCh := make(chan int, numChunks)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := arenaPool.Get().(*core.Arena)
			defer func() { arenaPool.Put(scratch) }()
			for {
				if stop.Load() {
					return
				}
				c := int(cursor.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo := c * cs
				hi := lo + cs
				if hi > n {
					hi = n
				}
				var t metrics.Timer
				if m != nil {
					m.InFlight.Add(int64(hi - lo))
					t = m.ChunkSeconds.Start()
				}
				for i := lo; i < hi; i++ {
					results[i] = inspectSafe(det, receipts[i], &scratch, m)
				}
				if m != nil {
					t.Stop()
					m.InFlight.Add(int64(lo - hi))
					m.Chunks.Inc()
				}
				doneCh <- c
			}
		}()
	}
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	completed := make([]bool, numChunks)
	frontier := 0
	var fnErr error
	for c := range doneCh {
		completed[c] = true
		for fnErr == nil && frontier < numChunks && completed[frontier] {
			lo := frontier * cs
			hi := lo + cs
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				rep := results[i]
				results[i] = nil // release as we stream
				sum.Observe(rep)
				if m != nil {
					m.observeTx(rep)
				}
				if err := fn(i, rep); err != nil {
					fnErr = err
					stop.Store(true)
					break
				}
			}
			frontier++
		}
	}
	return sum, fnErr
}
