package scan_test

import (
	"fmt"
	"runtime"
	"testing"

	"leishen/internal/core"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

func benchDetector(c *world.Corpus) *core.Detector {
	return core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
	})
}

// BenchmarkScanThroughput measures corpus scan rate by worker count. The
// tx/s metric is the headline: on multi-core hardware the pooled rows
// scale near-linearly over workers=1 until GOMAXPROCS is exhausted
// (compare rows only up to runtime.GOMAXPROCS(0); beyond that the pool
// just adds scheduling overhead).
func BenchmarkScanThroughput(b *testing.B) {
	c := testCorpus(b)
	det := benchDetector(c)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if workers > 1 && runtime.GOMAXPROCS(0) == 1 {
				b.Logf("GOMAXPROCS=1: pooled rows cannot beat sequential on this host")
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sum scan.Summary
			for i := 0; i < b.N; i++ {
				_, sum = scan.Scan(det, c.Receipts, scan.Options{Workers: workers})
			}
			b.StopTimer()
			if sum.Inspected != len(c.Receipts) {
				b.Fatalf("inspected %d of %d", sum.Inspected, len(c.Receipts))
			}
			txPerSec := float64(b.N) * float64(len(c.Receipts)) / b.Elapsed().Seconds()
			b.ReportMetric(txPerSec, "tx/s")
			b.ReportMetric(0, "ns/op") // tx/s is the meaningful rate here
		})
	}
}

// BenchmarkScanAllocs measures steady-state allocations per transaction
// with a reused scratch — the allocation-free-hot-path target. Only
// report-owned data (the report struct and its result slices) should
// allocate; the pipeline intermediates are scratch-backed.
func BenchmarkScanAllocs(b *testing.B) {
	c := testCorpus(b)
	det := benchDetector(c)
	scratch := core.NewScratch()
	// Warm the scratch to steady-state capacity.
	for _, r := range c.Receipts {
		det.InspectScratch(r, scratch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.InspectScratch(c.Receipts[i%len(c.Receipts)], scratch)
	}
}
