package scan

import (
	"leishen/internal/core"
	"leishen/internal/metrics"
)

// Metrics is the scan engine's telemetry bundle. Attach one via
// Options.Metrics to instrument a scan; a nil bundle costs a single
// predictable branch on the hot path.
//
// Per-transaction latency comes from the report's own Elapsed field —
// the detector already reads its injected clock around each
// inspection — so instrumenting the per-tx path adds no clock reads,
// no allocations, and a handful of uncontended atomic adds (the
// BENCH_metrics.json gate holds the total under 3% of scan
// throughput).
type Metrics struct {
	// Txs counts receipts scanned; FlashLoans/Attacks/Suppressed count
	// the verdict classes — the live-rate view of scan.Summary.
	Txs        *metrics.Counter
	FlashLoans *metrics.Counter
	Attacks    *metrics.Counter
	Suppressed *metrics.Counter
	// Scans counts scan passes (one Each/Scan call each).
	Scans *metrics.Counter
	// InFlight is the number of receipts claimed by pool workers and
	// not yet finished — populated by the pooled path (a one-worker
	// scan holds at most one receipt in flight).
	InFlight *metrics.Gauge
	// Workers is the resolved pool size of the most recent scan.
	Workers *metrics.Gauge
	// DetectSeconds is the per-transaction detection latency
	// distribution (the report's Elapsed).
	DetectSeconds *metrics.Histogram
	// ChunkSeconds is wall time per work chunk across all workers; its
	// rate-of-sum divided by Workers is per-worker utilization.
	ChunkSeconds *metrics.Histogram
	// Chunks counts work chunks claimed by pool workers.
	Chunks *metrics.Counter
	// Panics counts detector panics recovered into per-transaction
	// error verdicts — any nonzero value means degraded coverage and
	// deserves an alert.
	Panics *metrics.Counter
}

// NewMetrics registers the scan metric family on r and returns the
// bundle.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Txs:        r.Counter("leishen_scan_txs_total", "Receipts inspected by the scan engine."),
		FlashLoans: r.Counter("leishen_scan_flash_loan_txs_total", "Inspected receipts containing at least one identified flash loan."),
		Attacks:    r.Counter("leishen_scan_attack_verdicts_total", "Inspected receipts flagged as flpAttacks."),
		Suppressed: r.Counter("leishen_scan_suppressed_verdicts_total", "Verdicts discarded by the yield-aggregator heuristic."),
		Scans:      r.Counter("leishen_scan_passes_total", "Scan passes started (batch, /batch request, or followed block)."),
		InFlight:   r.Gauge("leishen_scan_inflight_txs", "Receipts claimed by pool workers and not yet inspected."),
		Workers:    r.Gauge("leishen_scan_workers", "Resolved worker-pool size of the most recent scan."),
		DetectSeconds: r.Histogram("leishen_scan_detect_seconds",
			"Per-transaction detection latency.", metrics.DefLatencyBuckets),
		ChunkSeconds: r.Histogram("leishen_scan_chunk_seconds",
			"Wall time per claimed work chunk; rate(sum)/leishen_scan_workers is per-worker utilization.",
			metrics.DefLatencyBuckets),
		Chunks: r.Counter("leishen_scan_chunks_total", "Work chunks claimed by pool workers."),
		Panics: r.Counter("leishen_scan_panics_total", "Detector panics recovered into per-transaction error verdicts."),
	}
}

// observeTx folds one resolved report into the per-transaction
// counters and the latency histogram. Called from the emitter (or the
// sequential loop), so the atomics are uncontended.
func (m *Metrics) observeTx(rep *core.Report) {
	m.Txs.Inc()
	if len(rep.Loans) > 0 {
		m.FlashLoans.Inc()
	}
	if rep.IsAttack {
		m.Attacks.Inc()
	}
	if rep.SuppressedByHeuristic {
		m.Suppressed.Inc()
	}
	m.DetectSeconds.ObserveDuration(rep.Elapsed)
}
