package scan_test

import (
	"testing"

	"leishen/internal/core"
	"leishen/internal/scan"
)

// TestScanArenaReuseAcrossRuns scans the same corpus twice through one
// engine for several worker counts. The second run draws warmed arenas
// from the pool; its reports must be byte-identical to the first run's,
// and the first run's reports must stay byte-stable after the second
// run (slab regions are never rewritten).
func TestScanArenaReuseAcrossRuns(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	for _, workers := range []int{1, 2, 4, 8} {
		opts := scan.Options{Workers: workers}
		firstReps, firstSum := scan.Scan(det, c.Receipts, opts)
		first := make([]string, len(firstReps))
		for i, rep := range firstReps {
			first[i] = reportBytes(t, rep)
		}
		secondReps, secondSum := scan.Scan(det, c.Receipts, opts)
		if secondSum != firstSum {
			t.Fatalf("workers=%d: summary drifted across runs: %+v vs %+v", workers, secondSum, firstSum)
		}
		for i, rep := range secondReps {
			if got := reportBytes(t, rep); got != first[i] {
				t.Fatalf("workers=%d: report %d differs on arena-reused run:\n got: %s\nwant: %s", workers, i, got, first[i])
			}
		}
		// The second run appended to the same pooled slabs; the first
		// run's reports must be untouched.
		for i, rep := range firstReps {
			if got := reportBytes(t, rep); got != first[i] {
				t.Fatalf("workers=%d: first-run report %d mutated by later scan", workers, i)
			}
		}
	}
}

// TestInspectAllocBudget pins the steady-state detection hot path to
// the allocation budget the bench gate enforces: at most 2 allocations
// per transaction, averaged over the corpus, with a warmed arena.
func TestInspectAllocBudget(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	arena := core.NewArena()
	warm := func() {
		for _, r := range c.Receipts {
			det.InspectScratch(r, arena)
		}
	}
	warm() // grow buffers and intern tables to their high-water marks
	perTx := testing.AllocsPerRun(3, warm) / float64(len(c.Receipts))
	if perTx > 2.0 {
		t.Errorf("steady-state allocations = %.3f per tx, budget is 2.0", perTx)
	}
}

// TestDetailIntoAllocFree pins the reused-buffer Detail rendering to
// zero steady-state allocations.
func TestDetailIntoAllocFree(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	arena := core.NewArena()
	reps := make([]*core.Report, 0, len(c.Receipts))
	for _, r := range c.Receipts {
		reps = append(reps, det.InspectScratch(r, arena))
	}
	render := func() {
		for _, rep := range reps {
			arena.DetailInto(rep)
		}
	}
	render() // size the buffer to the largest report
	if allocs := testing.AllocsPerRun(5, render); allocs > 0 {
		t.Errorf("DetailInto allocated %.1f times per corpus pass, want 0", allocs)
	}
}
