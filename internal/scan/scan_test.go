package scan_test

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/world"
)

var (
	corpusOnce sync.Once
	corpusC    *world.Corpus
	corpusErr  error
)

// testCorpus generates the seed corpus once per test binary.
func testCorpus(tb testing.TB) *world.Corpus {
	tb.Helper()
	corpusOnce.Do(func() {
		corpusC, corpusErr = world.Generate(world.Config{Seed: 7, ScalePct: 1})
	})
	if corpusErr != nil {
		tb.Fatalf("corpus: %v", corpusErr)
	}
	return corpusC
}

// frozenDetector builds a detector with an injected clock so Elapsed is
// zero and reports are byte-comparable.
func frozenDetector(c *world.Corpus) *core.Detector {
	tick := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	return core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
		Clock:    func() time.Time { return tick },
	})
}

// reportBytes renders a report's two user-visible forms: the JSON wire
// form and the Detail text.
func reportBytes(t *testing.T, rep *core.Report) string {
	t.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + rep.Detail()
}

// TestScanDeterminism is the engine's core guarantee: a parallel scan's
// output order, report bytes, and summary are identical to the
// sequential path's, for several worker/chunk shapes.
func TestScanDeterminism(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)

	// Sequential ground truth: a plain Inspect loop.
	want := make([]string, len(c.Receipts))
	var wantSum scan.Summary
	for i, r := range c.Receipts {
		rep := det.Inspect(r)
		want[i] = reportBytes(t, rep)
		wantSum.Inspected++
		if len(rep.Loans) > 0 {
			wantSum.FlashLoans++
		}
		if rep.IsAttack {
			wantSum.Attacks++
		}
		if rep.SuppressedByHeuristic {
			wantSum.Suppressed++
		}
	}
	if wantSum.Attacks == 0 {
		t.Fatal("corpus has no attacks; determinism test is vacuous")
	}

	shapes := []scan.Options{
		{Workers: 1},
		{Workers: 2, ChunkSize: 3},
		{Workers: 4, ChunkSize: 1},
		{Workers: 8},
		{Workers: 3, ChunkSize: len(c.Receipts) + 1}, // one giant chunk
	}
	for _, opts := range shapes {
		reports, sum := scan.Scan(det, c.Receipts, opts)
		if len(reports) != len(want) {
			t.Fatalf("workers=%d chunk=%d: %d reports, want %d", opts.Workers, opts.ChunkSize, len(reports), len(want))
		}
		for i, rep := range reports {
			if got := reportBytes(t, rep); got != want[i] {
				t.Fatalf("workers=%d chunk=%d: report %d diverges from sequential output:\n%s\n---\n%s",
					opts.Workers, opts.ChunkSize, i, got, want[i])
			}
		}
		if sum != wantSum {
			t.Errorf("workers=%d chunk=%d: summary = %+v, want %+v", opts.Workers, opts.ChunkSize, sum, wantSum)
		}
	}
}

func TestScanEmptyCorpus(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	for _, receipts := range [][]*evm.Receipt{nil, {}} {
		reports, sum := scan.Scan(det, receipts, scan.Options{Workers: 4})
		if len(reports) != 0 {
			t.Errorf("reports = %d, want 0", len(reports))
		}
		if sum != (scan.Summary{}) {
			t.Errorf("summary = %+v, want zero", sum)
		}
		calls := 0
		if _, err := scan.Each(det, receipts, scan.Options{}, func(int, *core.Report) error {
			calls++
			return nil
		}); err != nil || calls != 0 {
			t.Errorf("Each over empty corpus: calls=%d err=%v", calls, err)
		}
	}
}

// TestScanMoreWorkersThanReceipts covers pool sizes beyond the corpus:
// the pool must clamp, not spin or deadlock.
func TestScanMoreWorkersThanReceipts(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	few := c.Receipts[:5]
	want, wantSum := scan.Scan(det, few, scan.Options{Workers: 1})
	got, gotSum := scan.Scan(det, few, scan.Options{Workers: 64, ChunkSize: 1})
	if gotSum != wantSum {
		t.Errorf("summary = %+v, want %+v", gotSum, wantSum)
	}
	for i := range want {
		if reportBytes(t, got[i]) != reportBytes(t, want[i]) {
			t.Errorf("report %d diverges with 64 workers over 5 receipts", i)
		}
	}
}

// TestEachOrderedStreaming verifies the emitter delivers indices in
// strictly increasing order even when chunks complete out of order.
func TestEachOrderedStreaming(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	last := -1
	sum, err := scan.Each(det, c.Receipts, scan.Options{Workers: 4, ChunkSize: 2}, func(i int, rep *core.Report) error {
		if i != last+1 {
			t.Fatalf("out-of-order delivery: %d after %d", i, last)
		}
		if rep == nil || rep.TxHash != c.Receipts[i].TxHash {
			t.Fatalf("report %d does not match its receipt", i)
		}
		last = i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != len(c.Receipts)-1 || sum.Inspected != len(c.Receipts) {
		t.Fatalf("delivered %d of %d (summary %+v)", last+1, len(c.Receipts), sum)
	}
}

// TestEachStops verifies a callback error aborts the scan without
// further deliveries, for both the sequential and pooled paths.
func TestEachStops(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	boom := errors.New("boom")
	for _, opts := range []scan.Options{{Workers: 1}, {Workers: 4, ChunkSize: 2}} {
		calls := 0
		sum, err := scan.Each(det, c.Receipts, opts, func(i int, _ *core.Report) error {
			calls++
			if i == 10 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", opts.Workers, err)
		}
		if calls != 11 {
			t.Errorf("workers=%d: fn called %d times after error at index 10", opts.Workers, calls)
		}
		if sum.Inspected != 11 {
			t.Errorf("workers=%d: summary counted %d delivered reports, want 11", opts.Workers, sum.Inspected)
		}
	}
}
