package scan_test

import (
	"testing"

	"leishen/internal/scan"
)

// TestScanRace drives the pool with many small chunks so workers contend
// on the cursor and completion channel; under -race (the make race
// target includes this package) it proves the shared detector, the
// per-worker scratches, and the re-sequencer are data-race free. Two
// concurrent scans over one detector model independent batch jobs
// sharing a snapshot.
func TestScanRace(t *testing.T) {
	c := testCorpus(t)
	det := frozenDetector(c)
	done := make(chan scan.Summary, 2)
	for g := 0; g < 2; g++ {
		go func() {
			_, sum := scan.Scan(det, c.Receipts, scan.Options{Workers: 8, ChunkSize: 1})
			done <- sum
		}()
	}
	a, b := <-done, <-done
	if a != b {
		t.Errorf("concurrent scans disagree: %+v vs %+v", a, b)
	}
	if a.Inspected != len(c.Receipts) {
		t.Errorf("inspected %d of %d", a.Inspected, len(c.Receipts))
	}
}
