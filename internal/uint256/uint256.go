// Package uint256 implements fixed-width 256-bit unsigned integer
// arithmetic with value semantics.
//
// All crypto-asset amounts in this repository are uint256.Int values, the
// same width the EVM uses for ERC20 balances. Value semantics (a plain
// [4]uint64 array, little-endian limbs) rule out the aliasing bugs that
// shared *big.Int pointers invite, and keep hot-path trade matching free
// of heap allocations.
package uint256

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Int is an unsigned 256-bit integer stored as four 64-bit limbs in
// little-endian order: Int[0] is the least significant limb.
//
// The zero value is ready to use and represents 0.
type Int [4]uint64

// Common errors returned by parsing and checked arithmetic.
var (
	// ErrOverflow reports that a result does not fit in 256 bits.
	ErrOverflow = errors.New("uint256: overflow")
	// ErrUnderflow reports that a subtraction went below zero.
	ErrUnderflow = errors.New("uint256: underflow")
	// ErrDivideByZero reports division by zero.
	ErrDivideByZero = errors.New("uint256: division by zero")
	// ErrSyntax reports a malformed numeric literal.
	ErrSyntax = errors.New("uint256: invalid syntax")
)

// Zero returns the zero value. It exists for readability at call sites.
func Zero() Int { return Int{} }

// One returns 1.
func One() Int { return Int{1} }

// Max returns the largest representable value, 2^256 - 1.
func Max() Int {
	m := ^uint64(0)
	return Int{m, m, m, m}
}

// FromUint64 returns v as an Int.
func FromUint64(v uint64) Int { return Int{v} }

// FromLimbs builds an Int directly from little-endian limbs.
func FromLimbs(l0, l1, l2, l3 uint64) Int { return Int{l0, l1, l2, l3} }

// IsZero reports whether x == 0.
func (x Int) IsZero() bool { return x[0]|x[1]|x[2]|x[3] == 0 }

// IsUint64 reports whether x fits in a uint64.
func (x Int) IsUint64() bool { return x[1]|x[2]|x[3] == 0 }

// Uint64 returns the low 64 bits of x. The caller is expected to have
// checked IsUint64 when truncation matters.
func (x Int) Uint64() uint64 { return x[0] }

// BitLen returns the number of bits required to represent x; 0 for x == 0.
func (x Int) BitLen() int {
	switch {
	case x[3] != 0:
		return 192 + bits.Len64(x[3])
	case x[2] != 0:
		return 128 + bits.Len64(x[2])
	case x[1] != 0:
		return 64 + bits.Len64(x[1])
	default:
		return bits.Len64(x[0])
	}
}

// Cmp compares x and y and returns -1, 0 or +1. Single-limb pairs (the
// common case for observed transfer amounts) compare with one branch;
// Cmp is too cheap relative to the counter to participate in fast-path
// hit-rate counting.
func (x Int) Cmp(y Int) int {
	if isUint64Pair(x, y) {
		switch {
		case x[0] < y[0]:
			return -1
		case x[0] > y[0]:
			return 1
		}
		return 0
	}
	for i := 3; i >= 0; i-- {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// Lt reports x < y.
func (x Int) Lt(y Int) bool { return x.Cmp(y) < 0 }

// Gt reports x > y.
func (x Int) Gt(y Int) bool { return x.Cmp(y) > 0 }

// Lte reports x <= y.
func (x Int) Lte(y Int) bool { return x.Cmp(y) <= 0 }

// Gte reports x >= y.
func (x Int) Gte(y Int) bool { return x.Cmp(y) >= 0 }

// Eq reports x == y.
func (x Int) Eq(y Int) bool { return x == y }

// Add returns x + y mod 2^256 together with the carry out of the top limb.
func (x Int) addWithCarry(y Int) (Int, uint64) {
	var z Int
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], c = bits.Add64(x[3], y[3], c)
	return z, c
}

// Add returns x + y, or ErrOverflow if the sum does not fit in 256 bits.
func (x Int) Add(y Int) (Int, error) {
	z, c := x.addWithCarry(y)
	if c != 0 {
		return Int{}, fmt.Errorf("%w: %s + %s", ErrOverflow, x, y)
	}
	return z, nil
}

// MustAdd returns x + y and panics on overflow. It is intended for
// arithmetic that is overflow-safe by construction (e.g. summing token
// balances whose total supply is bounded).
func (x Int) MustAdd(y Int) Int {
	z, err := x.Add(y)
	if err != nil {
		panic(err)
	}
	return z
}

// WrappingAdd returns x + y mod 2^256.
func (x Int) WrappingAdd(y Int) Int {
	z, _ := x.addWithCarry(y)
	return z
}

// Sub returns x - y, or ErrUnderflow if y > x.
func (x Int) Sub(y Int) (Int, error) {
	var z Int
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		return Int{}, fmt.Errorf("%w: %s - %s", ErrUnderflow, x, y)
	}
	return z, nil
}

// MustSub returns x - y and panics on underflow.
func (x Int) MustSub(y Int) Int {
	z, err := x.Sub(y)
	if err != nil {
		panic(err)
	}
	return z
}

// SaturatingSub returns x - y, or 0 if y > x.
func (x Int) SaturatingSub(y Int) Int {
	z, err := x.Sub(y)
	if err != nil {
		return Int{}
	}
	return z
}

// AbsDiff returns |x - y|.
func (x Int) AbsDiff(y Int) Int {
	if isUint64Pair(x, y) {
		countHit()
		if x[0] >= y[0] {
			return Int{x[0] - y[0]}
		}
		return Int{y[0] - x[0]}
	}
	countFall()
	if x.Gte(y) {
		return x.MustSub(y)
	}
	return y.MustSub(x)
}

// mulFull returns the full 512-bit product of x and y as eight limbs.
func mulFull(x, y Int) [8]uint64 {
	var p [8]uint64
	for i := 0; i < 4; i++ {
		if y[i] == 0 {
			continue
		}
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(x[j], y[i])
			var c uint64
			p[i+j], c = bits.Add64(p[i+j], lo, 0)
			hi += c
			p[i+j], c = bits.Add64(p[i+j], carry, 0)
			carry = hi + c
		}
		p[i+4] = carry
	}
	return p
}

// Mul returns x * y, or ErrOverflow if the product does not fit. A
// single-limb pair multiplies with one hardware instruction: a 64×64
// product cannot overflow 256 bits.
func (x Int) Mul(y Int) (Int, error) {
	if isUint64Pair(x, y) {
		countHit()
		return mul64(x[0], y[0]), nil
	}
	countFall()
	p := mulFull(x, y)
	if p[4]|p[5]|p[6]|p[7] != 0 {
		return Int{}, fmt.Errorf("%w: %s * %s", ErrOverflow, x, y)
	}
	return Int{p[0], p[1], p[2], p[3]}, nil
}

// MustMul returns x * y and panics on overflow.
func (x Int) MustMul(y Int) Int {
	z, err := x.Mul(y)
	if err != nil {
		panic(err)
	}
	return z
}

// MulUint64 returns x * v, or ErrOverflow. The multiplier is already a
// single limb, so even wide x needs only a limb-by-scalar pass; a
// single-limb x needs one instruction.
func (x Int) MulUint64(v uint64) (Int, error) {
	if x.IsUint64() {
		countHit()
		return mul64(x[0], v), nil
	}
	countFall()
	p := mulBy64(x, v)
	if p[4] != 0 {
		return Int{}, fmt.Errorf("%w: %s * %s", ErrOverflow, x, FromUint64(v))
	}
	return Int{p[0], p[1], p[2], p[3]}, nil
}

// divmod performs binary long division of the 512-bit numerator u by the
// non-zero 256-bit divisor d, returning the 512-bit quotient and 256-bit
// remainder. The remainder register is 5 limbs because the pre-subtraction
// shifted value can transiently need 257 bits.
func divmod(u [8]uint64, d Int) (q [8]uint64, r Int) {
	// Fast path: single-limb divisor. Leading zero limbs of the numerator
	// are skipped, so a numerator that is really one limb costs a single
	// hardware division.
	if d[1]|d[2]|d[3] == 0 {
		countHit()
		top := -1
		for i := 7; i >= 0; i-- {
			if u[i] != 0 {
				top = i
				break
			}
		}
		var rem uint64
		for i := top; i >= 0; i-- {
			q[i], rem = bits.Div64(rem, u[i], d[0])
		}
		return q, Int{rem}
	}
	countFall()
	// General path: bit-at-a-time restoring division.
	top := 0
	for i := 7; i >= 0; i-- {
		if u[i] != 0 {
			top = i*64 + bits.Len64(u[i])
			break
		}
	}
	var rem [5]uint64 // 257-bit working remainder
	for bit := top - 1; bit >= 0; bit-- {
		// rem = rem<<1 | u.bit(bit)
		var c uint64
		inBit := (u[bit/64] >> (uint(bit) % 64)) & 1
		for i := 0; i < 5; i++ {
			nc := rem[i] >> 63
			rem[i] = rem[i]<<1 | c
			c = nc
		}
		rem[0] |= inBit
		// if rem >= d { rem -= d; q.setBit(bit) }
		ge := rem[4] != 0
		if !ge {
			cmp := Int{rem[0], rem[1], rem[2], rem[3]}.Cmp(d)
			ge = cmp >= 0
		}
		if ge {
			var b uint64
			rem[0], b = bits.Sub64(rem[0], d[0], 0)
			rem[1], b = bits.Sub64(rem[1], d[1], b)
			rem[2], b = bits.Sub64(rem[2], d[2], b)
			rem[3], b = bits.Sub64(rem[3], d[3], b)
			rem[4] -= b
			q[bit/64] |= 1 << (uint(bit) % 64)
		}
	}
	return q, Int{rem[0], rem[1], rem[2], rem[3]}
}

// Div returns x / y (truncated), or ErrDivideByZero. Single-limb pairs
// divide with one hardware instruction; a single-limb divisor under a
// wide numerator takes a limb-by-scalar pass.
func (x Int) Div(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, ErrDivideByZero
	}
	if x.Lt(y) {
		return Int{}, nil
	}
	if y.IsUint64() {
		countHit()
		if x.IsUint64() {
			return Int{x[0] / y[0]}, nil
		}
		q, _ := div5by1([5]uint64{x[0], x[1], x[2], x[3]}, y[0])
		return Int{q[0], q[1], q[2], q[3]}, nil
	}
	countFall()
	q, _ := divmod([8]uint64{x[0], x[1], x[2], x[3]}, y)
	return Int{q[0], q[1], q[2], q[3]}, nil
}

// MustDiv returns x / y and panics on division by zero.
func (x Int) MustDiv(y Int) Int {
	z, err := x.Div(y)
	if err != nil {
		panic(err)
	}
	return z
}

// Mod returns x mod y, or ErrDivideByZero.
func (x Int) Mod(y Int) (Int, error) {
	if y.IsZero() {
		return Int{}, ErrDivideByZero
	}
	if x.Lt(y) {
		return x, nil
	}
	if y.IsUint64() {
		countHit()
		_, rem := div5by1([5]uint64{x[0], x[1], x[2], x[3]}, y[0])
		return Int{rem}, nil
	}
	countFall()
	_, r := divmod([8]uint64{x[0], x[1], x[2], x[3]}, y)
	return r, nil
}

// DivUint64 returns x / v, or ErrDivideByZero.
func (x Int) DivUint64(v uint64) (Int, error) {
	return x.Div(FromUint64(v))
}

// MulDiv returns floor(x * y / den) computed with a 512-bit intermediate
// product, so x*y may exceed 256 bits as long as the final quotient fits.
// It returns ErrDivideByZero when den is zero and ErrOverflow when the
// quotient does not fit in 256 bits.
func (x Int) MulDiv(y, den Int) (Int, error) {
	if den.IsZero() {
		return Int{}, ErrDivideByZero
	}
	// Fast path: a single-limb divisor with at least one single-limb
	// factor — the tolerance/basis-point shape `amount * bps / 10_000`
	// the simplify and pattern layers lean on. The product fits five
	// limbs and divides limb-by-scalar.
	if den.IsUint64() && (x.IsUint64() || y.IsUint64()) {
		countHit()
		var p [5]uint64
		if y.IsUint64() {
			p = mulBy64(x, y[0])
		} else {
			p = mulBy64(y, x[0])
		}
		q, _ := div5by1(p, den[0])
		if q[4] != 0 {
			return Int{}, fmt.Errorf("%w: %s * %s / %s", ErrOverflow, x, y, den)
		}
		return Int{q[0], q[1], q[2], q[3]}, nil
	}
	countFall()
	p := mulFull(x, y)
	q, _ := divmod(p, den)
	if q[4]|q[5]|q[6]|q[7] != 0 {
		return Int{}, fmt.Errorf("%w: %s * %s / %s", ErrOverflow, x, y, den)
	}
	return Int{q[0], q[1], q[2], q[3]}, nil
}

// MustMulDiv returns floor(x*y/den) and panics on error.
func (x Int) MustMulDiv(y, den Int) Int {
	z, err := x.MulDiv(y, den)
	if err != nil {
		panic(err)
	}
	return z
}

// Sqrt returns the integer square root of x (the largest s with s*s <= x),
// using Newton iteration seeded from the bit length.
func (x Int) Sqrt() Int {
	if x.IsZero() {
		return Int{}
	}
	if x.IsUint64() {
		return FromUint64(sqrt64(x[0]))
	}
	// Initial guess: 2^ceil(bitlen/2) >= sqrt(x).
	z := One().Lsh(uint((x.BitLen() + 1) / 2))
	for {
		// y = (z + x/z) / 2
		y := z.MustAdd(x.MustDiv(z)).Rsh(1)
		if y.Gte(z) {
			return z
		}
		z = y
	}
}

func sqrt64(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	s := uint64(1) << uint((bits.Len64(v)+1)/2)
	for {
		t := (s + v/s) / 2
		if t >= s {
			return s
		}
		s = t
	}
}

// Lsh returns x << n.
func (x Int) Lsh(n uint) Int {
	if n >= 256 {
		return Int{}
	}
	limb, off := n/64, n%64
	var z Int
	for i := 3; i >= int(limb); i-- {
		z[i] = x[i-int(limb)] << off
		if off > 0 && i-int(limb)-1 >= 0 {
			z[i] |= x[i-int(limb)-1] >> (64 - off)
		}
	}
	return z
}

// Rsh returns x >> n.
func (x Int) Rsh(n uint) Int {
	if n >= 256 {
		return Int{}
	}
	limb, off := n/64, n%64
	var z Int
	for i := 0; i+int(limb) <= 3; i++ {
		z[i] = x[i+int(limb)] >> off
		if off > 0 && i+int(limb)+1 <= 3 {
			z[i] |= x[i+int(limb)+1] << (64 - off)
		}
	}
	return z
}

// maxDecimalDigits is the decimal width of 2^256-1 (78 digits), the
// stack-buffer size the append renderers use.
const maxDecimalDigits = 78

// AppendDecimal appends the decimal rendering of x to dst and returns
// the extended slice. It allocates only if dst needs to grow, which is
// what lets the report builder render amounts into a reused buffer.
func (x Int) AppendDecimal(dst []byte) []byte {
	if x.IsUint64() {
		return strconv.AppendUint(dst, x[0], 10)
	}
	var buf [maxDecimalDigits]byte
	return append(dst, x.decimalInto(&buf)...)
}

// decimalInto renders x (which must be non-zero) right-aligned into buf
// and returns the occupied tail. Digits are peeled 19 at a time (10^19
// is the largest power of ten that fits a uint64), so a 256-bit value
// costs at most four single-limb divisions per chunk.
func (x Int) decimalInto(buf *[maxDecimalDigits]byte) []byte {
	const chunk = uint64(1e19)
	pos := len(buf)
	v := [5]uint64{x[0], x[1], x[2], x[3]}
	for {
		q, r := div5by1(v, chunk)
		if q[0]|q[1]|q[2]|q[3]|q[4] == 0 {
			// Most significant chunk: no zero padding.
			for r > 0 {
				pos--
				buf[pos] = byte('0' + r%10)
				r /= 10
			}
			return buf[pos:]
		}
		for j := 0; j < 19; j++ {
			pos--
			buf[pos] = byte('0' + r%10)
			r /= 10
		}
		v = q
	}
}

// String renders x in decimal.
func (x Int) String() string {
	if x.IsUint64() {
		return strconv.FormatUint(x[0], 10)
	}
	var buf [maxDecimalDigits]byte
	return string(x.decimalInto(&buf))
}

// Format implements fmt.Formatter for %v, %s and %d.
func (x Int) Format(s fmt.State, verb rune) {
	switch verb {
	case 'v', 's', 'd':
		fmt.Fprint(s, x.String())
	case 'x':
		fmt.Fprintf(s, "%016x%016x%016x%016x", x[3], x[2], x[1], x[0])
	default:
		fmt.Fprintf(s, "%%!%c(uint256.Int=%s)", verb, x.String())
	}
}

// FromDecimal parses a base-10 unsigned integer literal. Underscores are
// permitted as digit separators ("1_000_000").
func FromDecimal(s string) (Int, error) {
	if s == "" {
		return Int{}, fmt.Errorf("%w: empty string", ErrSyntax)
	}
	var v Int
	seen := false
	for _, r := range s {
		if r == '_' {
			continue
		}
		if r < '0' || r > '9' {
			return Int{}, fmt.Errorf("%w: %q", ErrSyntax, s)
		}
		seen = true
		var err error
		v, err = v.MulUint64(10)
		if err != nil {
			return Int{}, fmt.Errorf("parsing %q: %w", s, ErrOverflow)
		}
		v, err = v.Add(FromUint64(uint64(r - '0')))
		if err != nil {
			return Int{}, fmt.Errorf("parsing %q: %w", s, ErrOverflow)
		}
	}
	if !seen {
		return Int{}, fmt.Errorf("%w: %q", ErrSyntax, s)
	}
	return v, nil
}

// MustFromDecimal parses a base-10 literal and panics on error. Intended
// for constants in tests and scenario definitions.
func MustFromDecimal(s string) Int {
	v, err := FromDecimal(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Exp10 returns 10^n, or ErrOverflow for n > 77.
func Exp10(n uint) (Int, error) {
	v := One()
	for i := uint(0); i < n; i++ {
		var err error
		v, err = v.MulUint64(10)
		if err != nil {
			return Int{}, fmt.Errorf("10^%d: %w", n, ErrOverflow)
		}
	}
	return v, nil
}

// MustExp10 returns 10^n and panics if it overflows.
func MustExp10(n uint) Int {
	v, err := Exp10(n)
	if err != nil {
		panic(err)
	}
	return v
}

// FromUnits parses a human-readable decimal quantity such as "1.5" into
// base units with the given number of decimals: FromUnits("1.5", 18)
// returns 1500000000000000000. Fractional digits beyond the token's
// decimals are rejected rather than silently truncated.
func FromUnits(s string, decimals uint) (Int, error) {
	whole, frac := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, frac = s[:i], s[i+1:]
	}
	if uint(len(frac)) > decimals {
		return Int{}, fmt.Errorf("%w: %q has more than %d fractional digits", ErrSyntax, s, decimals)
	}
	if whole == "" {
		whole = "0"
	}
	w, err := FromDecimal(whole)
	if err != nil {
		return Int{}, err
	}
	scale := MustExp10(decimals)
	v, err := w.Mul(scale)
	if err != nil {
		return Int{}, fmt.Errorf("parsing %q: %w", s, err)
	}
	if frac != "" {
		f, err := FromDecimal(frac)
		if err != nil {
			return Int{}, err
		}
		f = f.MustMul(MustExp10(decimals - uint(len(frac))))
		v, err = v.Add(f)
		if err != nil {
			return Int{}, fmt.Errorf("parsing %q: %w", s, err)
		}
	}
	return v, nil
}

// MustFromUnits is FromUnits, panicking on error.
func MustFromUnits(s string, decimals uint) Int {
	v, err := FromUnits(s, decimals)
	if err != nil {
		panic(err)
	}
	return v
}

// AppendUnits appends the human-unit rendering of x (see ToUnits) to
// dst and returns the extended slice, allocating only if dst grows.
func (x Int) AppendUnits(dst []byte, decimals uint) []byte {
	if decimals == 0 {
		return x.AppendDecimal(dst)
	}
	scale := MustExp10(decimals)
	whole := x.MustDiv(scale)
	//lint:allow errflow Mod only fails on a zero modulus and MustExp10 never returns zero
	frac, _ := x.Mod(scale)
	dst = whole.AppendDecimal(dst)
	if frac.IsZero() {
		return dst
	}
	dst = append(dst, '.')
	// Fractional part: render frac into a stack buffer, left-pad with
	// zeros to the token's decimals, trim trailing zeros. frac is
	// non-zero here so the trimmed tail is never empty.
	var buf [maxDecimalDigits]byte
	var fb []byte
	if frac.IsUint64() {
		fb = strconv.AppendUint(buf[:0], frac[0], 10)
	} else {
		fb = frac.decimalInto(&buf)
	}
	for pad := int(decimals) - len(fb); pad > 0; pad-- {
		dst = append(dst, '0')
	}
	end := len(fb)
	for fb[end-1] == '0' {
		end--
	}
	return append(dst, fb[:end]...)
}

// ToUnits renders x in human units with the given decimals, trimming
// trailing fractional zeros: 1500000000000000000 with 18 decimals renders
// as "1.5".
func (x Int) ToUnits(decimals uint) string {
	return string(x.AppendUnits(nil, decimals))
}

// Float64 returns a float64 approximation of x. It is used only for
// reporting (USD aggregation, volatility percentages), never for asset
// accounting.
func (x Int) Float64() float64 {
	f := 0.0
	for i := 3; i >= 0; i-- {
		f = f*18446744073709551616.0 + float64(x[i])
	}
	return f
}

// Rat returns the float64 ratio x/y for reporting. It returns 0 when y is
// zero.
func (x Int) Rat(y Int) float64 {
	if y.IsZero() {
		return 0
	}
	// Scale both down so the conversion stays in float range.
	xf, yf := x.Float64(), y.Float64()
	if yf == 0 {
		return 0
	}
	return xf / yf
}

// CmpProducts compares a*b against c*d using full 512-bit products,
// enabling exact exchange-rate comparisons (a/b vs c/d via cross
// multiplication) without overflow or float rounding.
func CmpProducts(a, b, c, d Int) int {
	// Fast path: four single-limb operands — both products fit 128 bits,
	// so two hardware multiplies and a hi/lo compare settle it.
	if isUint64Pair(a, b) && isUint64Pair(c, d) {
		countHit()
		ph, pl := bits.Mul64(a[0], b[0])
		qh, ql := bits.Mul64(c[0], d[0])
		switch {
		case ph < qh:
			return -1
		case ph > qh:
			return 1
		case pl < ql:
			return -1
		case pl > ql:
			return 1
		}
		return 0
	}
	countFall()
	p := mulFull(a, b)
	q := mulFull(c, d)
	for i := 7; i >= 0; i-- {
		switch {
		case p[i] < q[i]:
			return -1
		case p[i] > q[i]:
			return 1
		}
	}
	return 0
}

// MarshalJSON renders the value as a decimal JSON string (amounts exceed
// float64/JSON-number precision).
func (x Int) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, maxDecimalDigits+2)
	b = append(b, '"')
	b = x.AppendDecimal(b)
	return append(b, '"'), nil
}

// UnmarshalJSON parses a decimal JSON string or bare number.
func (x *Int) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := FromDecimal(s)
	if err != nil {
		return err
	}
	*x = v
	return nil
}
