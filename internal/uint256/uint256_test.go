package uint256

import (
	"errors"
	"fmt"
	"math/big"
	"testing"
	"testing/quick"
)

func toBig(x Int) *big.Int {
	b := new(big.Int)
	for i := 3; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(x[i]))
	}
	return b
}

func fromBig(t *testing.T, b *big.Int) Int {
	t.Helper()
	if b.Sign() < 0 || b.BitLen() > 256 {
		t.Fatalf("value %s out of range", b)
	}
	var x Int
	words := b.Bits()
	for i, w := range words {
		x[i] = uint64(w)
	}
	return x
}

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

func TestZeroValues(t *testing.T) {
	var x Int
	if !x.IsZero() {
		t.Error("zero value is not IsZero")
	}
	if got := x.String(); got != "0" {
		t.Errorf("String() = %q, want 0", got)
	}
	if x.BitLen() != 0 {
		t.Errorf("BitLen() = %d, want 0", x.BitLen())
	}
	if !Zero().Eq(x) {
		t.Error("Zero() != zero value")
	}
}

func TestBasicConstructors(t *testing.T) {
	if got := One().String(); got != "1" {
		t.Errorf("One() = %s", got)
	}
	if got := FromUint64(42).Uint64(); got != 42 {
		t.Errorf("FromUint64(42).Uint64() = %d", got)
	}
	wantMax := new(big.Int).Sub(two256, big.NewInt(1))
	if got := toBig(Max()); got.Cmp(wantMax) != 0 {
		t.Errorf("Max() = %s, want %s", got, wantMax)
	}
}

func TestAddSubKnown(t *testing.T) {
	a := MustFromDecimal("340282366920938463463374607431768211456") // 2^128
	b := MustFromDecimal("18446744073709551616")                    // 2^64
	sum := a.MustAdd(b)
	want := "340282366920938463481821351505477763072"
	if sum.String() != want {
		t.Errorf("sum = %s, want %s", sum, want)
	}
	if diff := sum.MustSub(b); !diff.Eq(a) {
		t.Errorf("round trip failed: %s", diff)
	}
}

func TestAddOverflow(t *testing.T) {
	_, err := Max().Add(One())
	if !errors.Is(err, ErrOverflow) {
		t.Errorf("Max+1 err = %v, want ErrOverflow", err)
	}
}

func TestSubUnderflow(t *testing.T) {
	_, err := One().Sub(FromUint64(2))
	if !errors.Is(err, ErrUnderflow) {
		t.Errorf("1-2 err = %v, want ErrUnderflow", err)
	}
	if got := One().SaturatingSub(FromUint64(2)); !got.IsZero() {
		t.Errorf("SaturatingSub = %s, want 0", got)
	}
}

func TestMulKnown(t *testing.T) {
	a := MustFromDecimal("18446744073709551616") // 2^64
	sq := a.MustMul(a)
	if sq.String() != "340282366920938463463374607431768211456" {
		t.Errorf("2^64 squared = %s", sq)
	}
	_, err := sq.Mul(sq) // 2^256 overflows
	if !errors.Is(err, ErrOverflow) {
		t.Errorf("2^128*2^128 err = %v, want ErrOverflow", err)
	}
}

func TestDivKnown(t *testing.T) {
	a := MustFromDecimal("340282366920938463463374607431768211457") // 2^128+1
	q := a.MustDiv(FromUint64(3))
	if q.String() != "113427455640312821154458202477256070485" {
		t.Errorf("q = %s", q)
	}
	r, err := a.Mod(FromUint64(3))
	if err != nil || r.Uint64() != 2 {
		t.Errorf("r = %s, err = %v", r, err)
	}
	if _, err := a.Div(Zero()); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("div by zero err = %v", err)
	}
	if _, err := a.Mod(Zero()); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("mod by zero err = %v", err)
	}
}

func TestMulDiv512Intermediate(t *testing.T) {
	// x*y overflows 256 bits but the quotient fits.
	x := Max()
	y := FromUint64(1_000_000)
	q, err := x.MulDiv(y, y)
	if err != nil {
		t.Fatalf("MulDiv: %v", err)
	}
	if !q.Eq(x) {
		t.Errorf("Max*1e6/1e6 = %s, want Max", q)
	}
	if _, err := x.MulDiv(y, One()); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflowing MulDiv err = %v", err)
	}
	if _, err := x.MulDiv(y, Zero()); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("MulDiv by zero err = %v", err)
	}
}

func TestSqrtKnown(t *testing.T) {
	cases := []struct{ in, want string }{
		{"0", "0"},
		{"1", "1"},
		{"3", "1"},
		{"4", "2"},
		{"999999", "999"},
		{"1000000", "1000"},
		{"340282366920938463463374607431768211456", "18446744073709551616"}, // sqrt(2^128)=2^64
	}
	for _, tc := range cases {
		got := MustFromDecimal(tc.in).Sqrt()
		if got.String() != tc.want {
			t.Errorf("Sqrt(%s) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestShifts(t *testing.T) {
	one := One()
	if got := one.Lsh(255).Rsh(255); !got.Eq(one) {
		t.Errorf("1<<255>>255 = %s", got)
	}
	if got := one.Lsh(256); !got.IsZero() {
		t.Errorf("1<<256 = %s, want 0", got)
	}
	if got := Max().Rsh(256); !got.IsZero() {
		t.Errorf("Max>>256 = %s, want 0", got)
	}
	if got := Max().Rsh(128).BitLen(); got != 128 {
		t.Errorf("Max>>128 bitlen = %d, want 128", got)
	}
}

func TestDecimalRoundTrip(t *testing.T) {
	cases := []string{
		"0", "1", "10", "12345678901234567890",
		"115792089237316195423570985008687907853269984665640564039457584007913129639935", // 2^256-1
	}
	for _, s := range cases {
		v, err := FromDecimal(s)
		if err != nil {
			t.Fatalf("FromDecimal(%s): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip %s -> %s", s, v)
		}
	}
}

func TestDecimalErrors(t *testing.T) {
	for _, s := range []string{"", "_", "12a", "-1", "1.5"} {
		if _, err := FromDecimal(s); !errors.Is(err, ErrSyntax) {
			t.Errorf("FromDecimal(%q) err = %v, want ErrSyntax", s, err)
		}
	}
	// One digit past 2^256-1.
	over := "115792089237316195423570985008687907853269984665640564039457584007913129639936"
	if _, err := FromDecimal(over); !errors.Is(err, ErrOverflow) {
		t.Errorf("FromDecimal(2^256) err = %v, want ErrOverflow", err)
	}
	if v := MustFromDecimal("1_000_000"); v.Uint64() != 1000000 {
		t.Errorf("underscores: %s", v)
	}
}

func TestUnits(t *testing.T) {
	v, err := FromUnits("1.5", 18)
	if err != nil {
		t.Fatalf("FromUnits: %v", err)
	}
	if v.String() != "1500000000000000000" {
		t.Errorf("1.5e18 = %s", v)
	}
	if got := v.ToUnits(18); got != "1.5" {
		t.Errorf("ToUnits = %s", got)
	}
	if got := FromUint64(5).ToUnits(0); got != "5" {
		t.Errorf("ToUnits(0 dec) = %s", got)
	}
	if got := MustFromUnits("0.000001", 6).Uint64(); got != 1 {
		t.Errorf("1 micro = %d", got)
	}
	if _, err := FromUnits("1.1234567", 6); !errors.Is(err, ErrSyntax) {
		t.Errorf("too many frac digits err = %v", err)
	}
}

func TestExp10(t *testing.T) {
	if got := MustExp10(0); !got.Eq(One()) {
		t.Errorf("10^0 = %s", got)
	}
	if got := MustExp10(18).String(); got != "1000000000000000000" {
		t.Errorf("10^18 = %s", got)
	}
	if _, err := Exp10(78); !errors.Is(err, ErrOverflow) {
		t.Errorf("10^78 err = %v", err)
	}
}

func TestFloat64(t *testing.T) {
	if got := FromUint64(1 << 20).Float64(); got != float64(1<<20) {
		t.Errorf("Float64 = %g", got)
	}
	r := MustFromUnits("3", 18).Rat(MustFromUnits("2", 18))
	if r != 1.5 {
		t.Errorf("Rat = %g, want 1.5", r)
	}
	if got := One().Rat(Zero()); got != 0 {
		t.Errorf("Rat(x, 0) = %g, want 0", got)
	}
}

func TestFormat(t *testing.T) {
	v := FromUint64(255)
	if got := fmt.Sprintf("%d", v); got != "255" {
		t.Errorf("%%d = %s", got)
	}
	if got := fmt.Sprintf("%x", v); got != "00000000000000000000000000000000000000000000000000000000000000ff" {
		t.Errorf("%%x = %s", got)
	}
}

// quadInt adapts quick.Value generation to well-distributed 256-bit values:
// raw uniform limbs almost never exercise carries and small values, so we
// mask limbs to varying widths.
type quadInt struct {
	Limbs [4]uint64
	Mask  [4]uint8
}

func (q quadInt) value() Int {
	var x Int
	for i := 0; i < 4; i++ {
		x[i] = q.Limbs[i] >> (uint(q.Mask[i]) % 65)
	}
	return x
}

func TestQuickAddSubAgainstBig(t *testing.T) {
	f := func(a, b quadInt) bool {
		x, y := a.value(), b.value()
		sum := new(big.Int).Add(toBig(x), toBig(y))
		z, err := x.Add(y)
		if sum.Cmp(two256) >= 0 {
			return errors.Is(err, ErrOverflow)
		}
		if err != nil {
			return false
		}
		if toBig(z).Cmp(sum) != 0 {
			return false
		}
		// Subtraction round-trips.
		back, err := z.Sub(y)
		return err == nil && back.Eq(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulAgainstBig(t *testing.T) {
	f := func(a, b quadInt) bool {
		x, y := a.value(), b.value()
		prod := new(big.Int).Mul(toBig(x), toBig(y))
		z, err := x.Mul(y)
		if prod.Cmp(two256) >= 0 {
			return errors.Is(err, ErrOverflow)
		}
		return err == nil && toBig(z).Cmp(prod) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickDivModAgainstBig(t *testing.T) {
	f := func(a, b quadInt) bool {
		x, y := a.value(), b.value()
		if y.IsZero() {
			y = One()
		}
		q, err := x.Div(y)
		if err != nil {
			return false
		}
		r, err := x.Mod(y)
		if err != nil {
			return false
		}
		wantQ, wantR := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		return toBig(q).Cmp(wantQ) == 0 && toBig(r).Cmp(wantR) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDivAgainstBig(t *testing.T) {
	f := func(a, b, c quadInt) bool {
		x, y, den := a.value(), b.value(), c.value()
		if den.IsZero() {
			den = One()
		}
		want := new(big.Int).Mul(toBig(x), toBig(y))
		want.Quo(want, toBig(den))
		z, err := x.MulDiv(y, den)
		if want.Cmp(two256) >= 0 {
			return errors.Is(err, ErrOverflow)
		}
		return err == nil && toBig(z).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSqrtInvariant(t *testing.T) {
	f := func(a quadInt) bool {
		x := a.value()
		s := x.Sqrt()
		// s^2 <= x and (s+1)^2 > x.
		sq, err := s.Mul(s)
		if err != nil || sq.Gt(x) {
			return false
		}
		s1 := s.MustAdd(One())
		sq1, err := s1.Mul(s1)
		if err != nil {
			return true // (s+1)^2 overflowed 256 bits, so certainly > x
		}
		return sq1.Gt(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftsAgainstBig(t *testing.T) {
	f := func(a quadInt, nRaw uint8) bool {
		x := a.value()
		n := uint(nRaw) % 300
		wantL := new(big.Int).Lsh(toBig(x), n)
		wantL.Mod(wantL, two256)
		wantR := new(big.Int).Rsh(toBig(x), n)
		return toBig(x.Lsh(n)).Cmp(wantL) == 0 && toBig(x.Rsh(n)).Cmp(wantR) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickStringAgainstBig(t *testing.T) {
	f := func(a quadInt) bool {
		x := a.value()
		return x.String() == toBig(x).String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpAgainstBig(t *testing.T) {
	f := func(a, b quadInt) bool {
		x, y := a.value(), b.value()
		want := toBig(x).Cmp(toBig(y))
		if x.Cmp(y) != want {
			return false
		}
		return x.Lt(y) == (want < 0) && x.Gt(y) == (want > 0) &&
			x.Lte(y) == (want <= 0) && x.Gte(y) == (want >= 0) && x.Eq(y) == (want == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickBitLen(t *testing.T) {
	f := func(a quadInt) bool {
		x := a.value()
		return x.BitLen() == toBig(x).BitLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("MustAdd", func() { Max().MustAdd(One()) })
	mustPanic("MustSub", func() { Zero().MustSub(One()) })
	mustPanic("MustMul", func() { Max().MustMul(Max()) })
	mustPanic("MustDiv", func() { One().MustDiv(Zero()) })
	mustPanic("MustMulDiv", func() { One().MustMulDiv(One(), Zero()) })
	mustPanic("MustFromDecimal", func() { MustFromDecimal("x") })
	mustPanic("MustFromUnits", func() { MustFromUnits("x", 18) })
	mustPanic("MustExp10", func() { MustExp10(100) })
}

func BenchmarkMulDiv(b *testing.B) {
	x := MustFromDecimal("123456789012345678901234567890123456789")
	y := MustFromDecimal("987654321098765432109876543210")
	den := MustFromDecimal("1000000000000000000")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := x.MulDiv(y, den); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	x := MustFromDecimal("123456789012345678901234567890123456789")
	y := MustFromDecimal("987654321098765432109876543210")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.WrappingAdd(y)
	}
}

func TestCmpProductsAgainstBig(t *testing.T) {
	f := func(a, b, c, d quadInt) bool {
		x, y, z, w := a.value(), b.value(), c.value(), d.value()
		want := new(big.Int).Mul(toBig(x), toBig(y)).Cmp(new(big.Int).Mul(toBig(z), toBig(w)))
		return CmpProducts(x, y, z, w) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	v := MustFromDecimal("115792089237316195423570985008687907853269984665640564039457584007913129639935")
	raw, err := v.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Int
	if err := back.UnmarshalJSON(raw); err != nil {
		t.Fatal(err)
	}
	if !back.Eq(v) {
		t.Errorf("round trip: %s", back)
	}
	// Bare-number form also parses.
	if err := back.UnmarshalJSON([]byte("12345")); err != nil || back.Uint64() != 12345 {
		t.Errorf("bare number: %s err=%v", back, err)
	}
	if err := back.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
