package uint256

import (
	"math/bits"
	"sync/atomic"
)

// Small-value fast paths.
//
// Crypto-asset amounts are 256 bits wide because the EVM says so, not
// because transactions need them: the overwhelming majority of observed
// transfer amounts fit one 64-bit limb (and almost all of the rest fit
// two). The arithmetic entry points therefore check the operands' live
// width first and dispatch single-limb inputs to one or two hardware
// mul/div instructions, falling through to the full 4-limb routines
// otherwise. Every fast path is differentially fuzzed against math/big
// (FuzzUint256FastPath), and the scan benchmark records the observed
// hit rate so the "mostly small" assumption stays a measured fact
// rather than folklore.
//
// Hit-rate counting is off by default: the counters sit behind one
// predictable read-mostly branch so the steady-state cost of the
// instrumentation is a loaded bool per operation. cmd/benchjson enables
// counting only around its allocation pass (a single-goroutine sweep)
// and reports hits/(hits+falls) as fast_path_hit_rate in
// BENCH_scan.json.

var (
	fpCounting atomic.Bool
	fpHits     atomic.Uint64
	fpFalls    atomic.Uint64
)

// SetFastPathCounting switches hit-rate counting on or off. Counting
// uses atomic adds and is safe under concurrent scans, but it is meant
// for measurement passes, not steady-state serving.
func SetFastPathCounting(on bool) { fpCounting.Store(on) }

// ResetFastPathCounts zeroes the hit/fall counters.
func ResetFastPathCounts() {
	fpHits.Store(0)
	fpFalls.Store(0)
}

// FastPathCounts returns how many counted operations took a small-value
// fast path (hits) and how many fell through to full-width arithmetic
// (falls) since the last reset.
func FastPathCounts() (hits, falls uint64) {
	return fpHits.Load(), fpFalls.Load()
}

func countHit() {
	if fpCounting.Load() {
		fpHits.Add(1)
	}
}

func countFall() {
	if fpCounting.Load() {
		fpFalls.Add(1)
	}
}

// isUint64Pair reports whether both operands fit one limb.
func isUint64Pair(x, y Int) bool {
	return x[1]|x[2]|x[3]|y[1]|y[2]|y[3] == 0
}

// mul64 returns x*y for single-limb operands as a (≤2)-limb Int; a
// 64×64 product can never overflow 256 bits.
func mul64(x, y uint64) Int {
	hi, lo := bits.Mul64(x, y)
	return Int{lo, hi}
}

// div5by1 divides the 5-limb little-endian numerator u by the non-zero
// single-limb divisor d, returning the 5-limb quotient and remainder.
// It skips leading zero limbs, so a numerator that is really one limb
// costs one hardware division.
func div5by1(u [5]uint64, d uint64) (q [5]uint64, rem uint64) {
	top := -1
	for i := 4; i >= 0; i-- {
		if u[i] != 0 {
			top = i
			break
		}
	}
	for i := top; i >= 0; i-- {
		q[i], rem = bits.Div64(rem, u[i], d)
	}
	return q, rem
}

// mulBy64 returns x*v as five limbs (the widest a 256×64 product gets).
func mulBy64(x Int, v uint64) [5]uint64 {
	var p [5]uint64
	var carry uint64
	for i := 0; i < 4; i++ {
		hi, lo := bits.Mul64(x[i], v)
		var c uint64
		p[i], c = bits.Add64(lo, carry, 0)
		carry = hi + c
	}
	p[4] = carry
	return p
}
