package uint256

import (
	"math/big"
	"testing"
)

// bigOf converts an Int to math/big for differential checks.
func bigOf(x Int) *big.Int {
	b := new(big.Int)
	for i := 3; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(x[i]))
	}
	return b
}

// checkAgainstBig runs every fast-pathed operation on (x, y) and compares
// against math/big reference results. It is shared by the table test
// (hand-picked boundary operands) and the fuzzer (mixed-limb operands).
func checkAgainstBig(t *testing.T, x, y Int) {
	t.Helper()
	bx, by := bigOf(x), bigOf(y)

	if got, want := x.Cmp(y), bx.Cmp(by); got != want {
		t.Errorf("Cmp(%s, %s) = %d, want %d", x, y, got, want)
	}

	wantAbs := new(big.Int).Sub(bx, by)
	wantAbs.Abs(wantAbs)
	if got := bigOf(x.AbsDiff(y)); got.Cmp(wantAbs) != 0 {
		t.Errorf("AbsDiff(%s, %s) = %s, want %s", x, y, got, wantAbs)
	}

	wantMul := new(big.Int).Mul(bx, by)
	gotMul, err := x.Mul(y)
	if wantMul.Cmp(two256) >= 0 {
		if err == nil {
			t.Errorf("Mul(%s, %s) = %s, want overflow", x, y, gotMul)
		}
	} else if err != nil {
		t.Errorf("Mul(%s, %s): unexpected error %v", x, y, err)
	} else if got := bigOf(gotMul); got.Cmp(wantMul) != 0 {
		t.Errorf("Mul(%s, %s) = %s, want %s", x, y, got, wantMul)
	}

	wantMul64 := new(big.Int).Mul(bx, new(big.Int).SetUint64(y[0]))
	gotMul64, err := x.MulUint64(y[0])
	if wantMul64.Cmp(two256) >= 0 {
		if err == nil {
			t.Errorf("MulUint64(%s, %d) = %s, want overflow", x, y[0], gotMul64)
		}
	} else if err != nil {
		t.Errorf("MulUint64(%s, %d): unexpected error %v", x, y[0], err)
	} else if got := bigOf(gotMul64); got.Cmp(wantMul64) != 0 {
		t.Errorf("MulUint64(%s, %d) = %s, want %s", x, y[0], got, wantMul64)
	}

	if !y.IsZero() {
		wantDiv := new(big.Int).Div(bx, by)
		gotDiv, err := x.Div(y)
		if err != nil {
			t.Errorf("Div(%s, %s): unexpected error %v", x, y, err)
		} else if got := bigOf(gotDiv); got.Cmp(wantDiv) != 0 {
			t.Errorf("Div(%s, %s) = %s, want %s", x, y, got, wantDiv)
		}

		wantMod := new(big.Int).Mod(bx, by)
		gotMod, err := x.Mod(y)
		if err != nil {
			t.Errorf("Mod(%s, %s): unexpected error %v", x, y, err)
		} else if got := bigOf(gotMod); got.Cmp(wantMod) != 0 {
			t.Errorf("Mod(%s, %s) = %s, want %s", x, y, got, wantMod)
		}

		// MulDiv with a basis-point shape denominator exercises the
		// single-limb-divisor product path.
		wantMD := new(big.Int).Mul(bx, by)
		wantMD.Div(wantMD, big.NewInt(10_000))
		gotMD, err := x.MulDiv(y, FromUint64(10_000))
		if wantMD.Cmp(two256) >= 0 {
			if err == nil {
				t.Errorf("MulDiv(%s, %s, 10000) = %s, want overflow", x, y, gotMD)
			}
		} else if err != nil {
			t.Errorf("MulDiv(%s, %s, 10000): unexpected error %v", x, y, err)
		} else if got := bigOf(gotMD); got.Cmp(wantMD) != 0 {
			t.Errorf("MulDiv(%s, %s, 10000) = %s, want %s", x, y, got, wantMD)
		}
	}

	// CmpProducts(x, y, y, x) is always 0; CmpProducts against shifted
	// operands exercises the mixed-width fall-through.
	if got := CmpProducts(x, y, y, x); got != 0 {
		t.Errorf("CmpProducts(%s, %s, %s, %s) = %d, want 0", x, y, y, x, got)
	}
	px := new(big.Int).Mul(bx, by)
	qx := new(big.Int).Mul(new(big.Int).Mul(bx, by), big.NewInt(2))
	wantCP := px.Cmp(qx)
	y2 := y.WrappingAdd(y)
	if carrySafe := y.BitLen() < 256; carrySafe {
		if got := CmpProducts(x, y, x, y2); got != wantCP {
			t.Errorf("CmpProducts(%s, %s, %s, %s) = %d, want %d", x, y, x, y2, got, wantCP)
		}
	}

	// Decimal rendering round-trips and matches math/big.
	if got, want := x.String(), bx.String(); got != want {
		t.Errorf("String(%v) = %q, want %q", [4]uint64(x), got, want)
	}
	if got := string(x.AppendDecimal(nil)); got != bx.String() {
		t.Errorf("AppendDecimal(%v) = %q, want %q", [4]uint64(x), got, bx.String())
	}
}

func TestFastPathBoundaries(t *testing.T) {
	vals := []Int{
		{},
		{1},
		{2},
		{10_000},
		{^uint64(0)},
		{^uint64(0), 1},
		{0, 1},
		{0, 0, 1},
		{0, 0, 0, 1},
		{1e19},
		{1e19 - 1},
		{5, ^uint64(0)},
		Max(),
		MustExp10(18),
		MustExp10(18).WrappingAdd(One()),
	}
	for _, x := range vals {
		for _, y := range vals {
			checkAgainstBig(t, x, y)
		}
	}
}

func TestFastPathCounting(t *testing.T) {
	SetFastPathCounting(true)
	defer SetFastPathCounting(false)
	ResetFastPathCounts()

	if _, err := FromUint64(3).Mul(FromUint64(5)); err != nil {
		t.Fatal(err)
	}
	hits, falls := FastPathCounts()
	if hits != 1 || falls != 0 {
		t.Fatalf("after single-limb Mul: hits=%d falls=%d, want 1/0", hits, falls)
	}

	wide := Int{0, 0, 1}
	if _, err := wide.Mul(wide); err == nil {
		t.Fatal("expected overflow")
	}
	hits, falls = FastPathCounts()
	if hits != 1 || falls != 1 {
		t.Fatalf("after wide Mul: hits=%d falls=%d, want 1/1", hits, falls)
	}

	ResetFastPathCounts()
	hits, falls = FastPathCounts()
	if hits != 0 || falls != 0 {
		t.Fatalf("after reset: hits=%d falls=%d, want 0/0", hits, falls)
	}
}

// TestFastPathCountingOff pins the steady-state contract: with counting
// disabled the counters never move.
func TestFastPathCountingOff(t *testing.T) {
	SetFastPathCounting(false)
	ResetFastPathCounts()
	if _, err := FromUint64(3).Mul(FromUint64(5)); err != nil {
		t.Fatal(err)
	}
	if hits, falls := FastPathCounts(); hits != 0 || falls != 0 {
		t.Fatalf("counters moved while disabled: hits=%d falls=%d", hits, falls)
	}
}

func TestAppendUnitsMatchesToUnits(t *testing.T) {
	cases := []struct {
		v        Int
		decimals uint
		want     string
	}{
		{Int{}, 18, "0"},
		{MustFromUnits("1.5", 18), 18, "1.5"},
		{MustFromUnits("0.000000000000000001", 18), 18, "0.000000000000000001"},
		{MustFromUnits("123456789.000000000000000001", 18), 18, "123456789.000000000000000001"},
		{FromUint64(1), 0, "1"},
		{FromUint64(1005), 2, "10.05"},
		{FromUint64(1000), 2, "10"},
		{Max(), 18, Max().ToUnits(18)},
	}
	for _, c := range cases {
		if got := c.v.ToUnits(c.decimals); got != c.want {
			t.Errorf("ToUnits(%s, %d) = %q, want %q", c.v, c.decimals, got, c.want)
		}
		if got := string(c.v.AppendUnits(nil, c.decimals)); got != c.want {
			t.Errorf("AppendUnits(%s, %d) = %q, want %q", c.v, c.decimals, got, c.want)
		}
		// Appending to a prefilled buffer must not disturb the prefix.
		pre := []byte("amount=")
		if got := string(c.v.AppendUnits(pre, c.decimals)); got != "amount="+c.want {
			t.Errorf("AppendUnits(prefix, %s, %d) = %q", c.v, c.decimals, got)
		}
	}
}

// FuzzUint256FastPath differentially fuzzes the small-value fast paths
// against math/big on mixed-limb operands. Every operand pair runs the
// whole fast-pathed surface (Cmp/AbsDiff/Mul/MulUint64/Div/Mod/MulDiv/
// CmpProducts/String), so a fast path that diverges from the 4-limb
// reference on any width combination is a crash, not a silent skew.
func FuzzUint256FastPath(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0), uint64(0), uint64(3), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0), uint64(0), uint64(0), ^uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1e19), uint64(1), uint64(0), uint64(0), uint64(1e19-1), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(7), uint64(7), uint64(7), uint64(7), uint64(10_000), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0), uint64(0), ^uint64(0), uint64(1), uint64(1), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, x0, x1, x2, x3, y0, y1, y2, y3 uint64) {
		checkAgainstBig(t, Int{x0, x1, x2, x3}, Int{y0, y1, y2, y3})
	})
}
