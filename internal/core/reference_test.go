package core_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/simplify"
	"leishen/internal/tagging"
	"leishen/internal/trace"
	"leishen/internal/trades"
	"leishen/internal/types"
	"leishen/internal/world"
)

// The interned arena pipeline (InspectScratch) must be a perfect
// stand-in for the historical string pipeline: same structs, same JSON
// bytes, same Detail bytes, for every transaction. This file keeps the
// string pipeline alive as an executable reference — built from the
// same exported stages the old InspectScratch composed — and pins the
// two against each other over a generated corpus.

var (
	refCorpusOnce sync.Once
	refCorpus     *world.Corpus
	refCorpusErr  error
)

func referenceCorpus(tb testing.TB) *world.Corpus {
	tb.Helper()
	refCorpusOnce.Do(func() {
		refCorpus, refCorpusErr = world.Generate(world.Config{Seed: 7, ScalePct: 1})
	})
	if refCorpusErr != nil {
		tb.Fatalf("corpus: %v", refCorpusErr)
	}
	return refCorpus
}

// referencePipeline is the pre-arena string pipeline, stage by stage:
// identify → extract → tag → simplify → identify trades → match. It
// intentionally allocates freely; it exists to define correct output.
type referencePipeline struct {
	extractor *trace.Extractor
	tagger    *tagging.Tagger
	simplify  simplify.Options
	clock     func() time.Time
}

func (p *referencePipeline) inspect(r *evm.Receipt) *core.Report {
	start := p.clock()
	rep := &core.Report{TxHash: r.TxHash, Time: r.Time, Block: r.Block}
	defer func() { rep.Elapsed = p.clock().Sub(start) }()

	rep.Loans = flashloan.Identify(r)
	if len(rep.Loans) == 0 {
		return rep
	}
	rep.Transfers = p.extractor.ExtractInto(nil, r)
	tagged := p.tagger.TagTransfersInto(nil, rep.Transfers)
	rep.AppTransfers = simplify.Simplify(tagged, p.simplify)
	rep.Trades = trades.IdentifyAppend(nil, rep.AppTransfers)
	for _, loan := range rep.Loans {
		tag := p.tagger.Tag(loan.Borrower)
		seen := false
		for _, t := range rep.BorrowerTags {
			if t == tag {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		rep.BorrowerTags = append(rep.BorrowerTags, tag)
		rep.Matches = append(rep.Matches, core.MatchPatterns(rep.Trades, tag, core.DefaultThresholds())...)
	}
	rep.IsAttack = len(rep.Matches) > 0
	return rep
}

// fmtDetail is the historical fmt-based Detail rendering, preserved
// verbatim as the reference for AppendDetail's bytes.
func fmtDetail(r *core.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "transaction %s (block %d)\n", r.TxHash, r.Block)
	fmt.Fprintf(&b, "flash loans: %d\n", len(r.Loans))
	for _, l := range r.Loans {
		fmt.Fprintf(&b, "  %s lends %s of token %s to %s\n", l.Provider, l.Amount, l.Token.Short(), l.Borrower.Short())
	}
	fmt.Fprintf(&b, "account-level transfers: %d\n", len(r.Transfers))
	fmt.Fprintf(&b, "app-level transfers: %d\n", len(r.AppTransfers))
	for _, at := range r.AppTransfers {
		fmt.Fprintf(&b, "  %s\n", at)
	}
	fmt.Fprintf(&b, "trades: %d\n", len(r.Trades))
	for _, t := range r.Trades {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	fmt.Fprintf(&b, "matches: %d\n", len(r.Matches))
	for _, m := range r.Matches {
		fmt.Fprintf(&b, "  %s\n", m)
	}
	fmt.Fprintf(&b, "verdict: attack=%v\n", r.IsAttack)
	return b.String()
}

func mustJSON(tb testing.TB, rep *core.Report) string {
	tb.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		tb.Fatal(err)
	}
	return string(out)
}

// TestInternedPipelineMatchesReference pins the arena pipeline's output
// — JSON wire bytes and Detail text — against the string reference for
// every corpus transaction, with one reused arena so slab reuse and
// buffer recycling are exercised the way a scanning worker would.
func TestInternedPipelineMatchesReference(t *testing.T) {
	c := referenceCorpus(t)
	tick := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return tick }
	sopts := simplify.Options{WETH: c.Env.WETH}

	det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{Simplify: sopts, Clock: clock})
	ref := &referencePipeline{
		extractor: trace.NewExtractor(c.Env.Registry),
		tagger:    det.Tagger(),
		simplify:  sopts,
		clock:     clock,
	}

	arena := core.NewArena()
	attacks, flashLoans := 0, 0
	for i, r := range c.Receipts {
		want := ref.inspect(r)
		got := det.InspectScratch(r, arena)
		wantDetail := fmtDetail(want)
		if gj, wj := mustJSON(t, got), mustJSON(t, want); gj != wj {
			t.Fatalf("receipt %d (%s): JSON diverges\n got: %s\nwant: %s", i, r.TxHash.Short(), gj, wj)
		}
		if gd := got.Detail(); gd != wantDetail {
			t.Fatalf("receipt %d (%s): Detail diverges\n got:\n%s\nwant:\n%s", i, r.TxHash.Short(), gd, wantDetail)
		}
		if ad := string(arena.DetailInto(got)); ad != wantDetail {
			t.Fatalf("receipt %d (%s): DetailInto diverges from fmt reference", i, r.TxHash.Short())
		}
		if got.IsAttack {
			attacks++
		}
		if len(got.Loans) > 0 {
			flashLoans++
		}
	}
	if attacks == 0 || flashLoans == 0 {
		t.Fatalf("vacuous corpus: attacks=%d flashLoans=%d", attacks, flashLoans)
	}
}

// TestArenaReportsSurviveReuse checks the slab ownership guarantee:
// reports carved from an arena stay byte-stable while the same arena
// inspects the whole corpus again.
func TestArenaReportsSurviveReuse(t *testing.T) {
	c := referenceCorpus(t)
	tick := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
		Clock:    func() time.Time { return tick },
	})

	arena := core.NewArena()
	reports := make([]*core.Report, len(c.Receipts))
	first := make([]string, len(c.Receipts))
	for i, r := range c.Receipts {
		reports[i] = det.InspectScratch(r, arena)
		first[i] = mustJSON(t, reports[i]) + reports[i].Detail()
	}
	// Second full pass through the same arena must not disturb the
	// reports returned by the first.
	for _, r := range c.Receipts {
		det.InspectScratch(r, arena)
	}
	for i, rep := range reports {
		if got := mustJSON(t, rep) + rep.Detail(); got != first[i] {
			t.Fatalf("report %d mutated by arena reuse:\n got: %s\nwant: %s", i, got, first[i])
		}
	}
}

// TestMatchAppendString pins Match.AppendString against the fmt form.
func TestMatchAppendString(t *testing.T) {
	m := core.Match{
		Kind:          core.PatternSBS,
		Target:        types.Token{Symbol: "USDC", Decimals: 6},
		Counterparty:  types.AppTag("SushiSwap"),
		Trades:        make([]types.Trade, 3),
		Rounds:        1,
		VolatilityPct: 31.41592,
	}
	want := m.String()
	if got := string(m.AppendString(nil)); got != want {
		t.Fatalf("AppendString = %q, want %q", got, want)
	}
}
