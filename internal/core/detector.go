package core

import (
	"fmt"
	"strings"
	"time"

	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/simplify"
	"leishen/internal/tagging"
	"leishen/internal/trace"
	"leishen/internal/trades"
	"leishen/internal/types"
)

// Options configures a Detector.
type Options struct {
	// Thresholds are the pattern parameters (zero value → paper defaults).
	Thresholds Thresholds
	// Simplify configures the §V-B2 rules (WETH token, tolerances).
	Simplify simplify.Options
	// YieldAggregatorHeuristic, when true, suppresses MBS matches for
	// transactions whose flash loan borrower belongs to a known yield
	// aggregator application — the §VI-C heuristic that lifts MBS
	// precision from 56.1% to 80%.
	YieldAggregatorHeuristic bool
	// YieldAggregatorApps is the set of application names treated as
	// yield aggregators by the heuristic.
	YieldAggregatorApps map[string]bool
	// ExcludedLabelAccounts lists accounts whose Etherscan labels are
	// ignored during tagging (attacker labels applied post-hoc).
	ExcludedLabelAccounts []types.Address
	// Clock supplies the wall-clock reads for the report's Elapsed
	// latency measurement. Detection itself is a pure function of the
	// receipt; the clock only times it. Nil means the real clock.
	Clock func() time.Time
}

func (o Options) thresholds() Thresholds {
	if o.Thresholds == (Thresholds{}) {
		return DefaultThresholds()
	}
	return o.Thresholds
}

// Report is the detector's verdict for one transaction.
type Report struct {
	// TxHash identifies the transaction.
	TxHash types.Hash
	// Time is the block timestamp (for monthly/weekly aggregation).
	Time time.Time
	// Block is the containing block number.
	Block uint64
	// Loans are the identified flash loans; empty means "not a flash loan
	// transaction" and no further analysis ran.
	Loans []flashloan.Loan
	// BorrowerTags are the distinct application tags of the loan
	// borrowers.
	BorrowerTags []types.Tag
	// Transfers is the account-level transfer history.
	Transfers []types.Transfer
	// AppTransfers is the simplified application-level history.
	AppTransfers []types.AppTransfer
	// Trades is the identified trade list.
	Trades []types.Trade
	// Matches are the detected attack pattern instances.
	Matches []Match
	// IsAttack reports the final verdict after heuristics.
	IsAttack bool
	// SuppressedByHeuristic marks transactions whose matches were
	// discarded by the yield-aggregator heuristic.
	SuppressedByHeuristic bool
	// Elapsed is the wall time the detection took (the paper reports a
	// 10 ms mean / 16 ms p75).
	Elapsed time.Duration
}

// HasPattern reports whether the report contains a match of the kind.
func (r *Report) HasPattern(k PatternKind) bool {
	for _, m := range r.Matches {
		if m.Kind == k {
			return true
		}
	}
	return false
}

// Summary renders a one-line verdict.
func (r *Report) Summary() string {
	if len(r.Loans) == 0 {
		return fmt.Sprintf("%s: not a flash loan transaction", r.TxHash.Short())
	}
	if !r.IsAttack {
		suffix := ""
		if r.SuppressedByHeuristic {
			suffix = " (suppressed: yield aggregator)"
		}
		return fmt.Sprintf("%s: flash loan, no attack pattern%s", r.TxHash.Short(), suffix)
	}
	var kinds []string
	for _, m := range r.Matches {
		kinds = append(kinds, m.String())
	}
	return fmt.Sprintf("%s: flpAttack [%s]", r.TxHash.Short(), strings.Join(kinds, "; "))
}

// Detail renders the full multi-section report the paper's pipeline
// returns ("a detailed report regarding attack patterns").
func (r *Report) Detail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transaction %s (block %d)\n", r.TxHash, r.Block)
	fmt.Fprintf(&b, "flash loans: %d\n", len(r.Loans))
	for _, l := range r.Loans {
		fmt.Fprintf(&b, "  %s lends %s of token %s to %s\n", l.Provider, l.Amount, l.Token.Short(), l.Borrower.Short())
	}
	fmt.Fprintf(&b, "account-level transfers: %d\n", len(r.Transfers))
	fmt.Fprintf(&b, "app-level transfers: %d\n", len(r.AppTransfers))
	for _, at := range r.AppTransfers {
		fmt.Fprintf(&b, "  %s\n", at)
	}
	fmt.Fprintf(&b, "trades: %d\n", len(r.Trades))
	for _, t := range r.Trades {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	fmt.Fprintf(&b, "matches: %d\n", len(r.Matches))
	for _, m := range r.Matches {
		fmt.Fprintf(&b, "  %s\n", m)
	}
	fmt.Fprintf(&b, "verdict: attack=%v\n", r.IsAttack)
	return b.String()
}

// Detector is the LeiShen pipeline: flash loan identification → transfer
// extraction → tagging → simplification → trade identification → pattern
// matching.
type Detector struct {
	extractor *trace.Extractor
	tagger    *tagging.Tagger
	opts      Options
	clock     func() time.Time
}

// NewDetector builds a detector over a chain snapshot. The tagger is
// precomputed here so per-transaction detection is a pure function of the
// receipt (the honest way to measure the paper's 10 ms budget).
func NewDetector(view tagging.ChainView, tokens trace.TokenResolver, opts Options) *Detector {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Detector{
		extractor: trace.NewExtractor(tokens),
		tagger:    tagging.New(view, opts.ExcludedLabelAccounts...),
		opts:      opts,
		clock:     clock,
	}
}

// Tagger exposes the precomputed tagger (baselines reuse it).
func (d *Detector) Tagger() *tagging.Tagger { return d.tagger }

// Inspect runs the full pipeline on one receipt.
func (d *Detector) Inspect(r *evm.Receipt) *Report {
	return d.InspectScratch(r, nil)
}

// InspectScratch is Inspect with caller-owned scratch buffers for the
// pipeline's intermediates, so a scanning loop that reuses one Scratch
// per goroutine stays allocation-light. A nil scratch allocates a fresh
// one (plain Inspect). The returned report owns all of its data and is
// valid after any number of further calls with the same scratch.
func (d *Detector) InspectScratch(r *evm.Receipt, s *Scratch) *Report {
	// A caller-owned scratch outlives this call, so report slices must be
	// copied out of it; a one-shot scratch dies with the call and its
	// buffers can back the report directly.
	reuse := s != nil
	if !reuse {
		s = NewScratch()
	}
	start := d.clock()
	rep := &Report{TxHash: r.TxHash, Time: r.Time, Block: r.Block}
	defer func() { rep.Elapsed = d.clock().Sub(start) }()

	// Step 0: flash loan identification (Table II). The identifier
	// early-exits without allocating for the non-flash-loan majority.
	rep.Loans = flashloan.Identify(r)
	if len(rep.Loans) == 0 {
		return rep
	}

	// Step 1: transfer history extraction (§V-A).
	s.transfers = d.extractor.ExtractInto(s.transfers[:0], r)
	rep.Transfers = retained(reuse, s.transfers)

	// Step 2: application-level construction (§V-B).
	s.tagged = d.tagger.TagTransfersInto(s.tagged[:0], s.transfers)
	app := simplify.SimplifyScratch(s.tagged, d.opts.Simplify, &s.simp)
	rep.AppTransfers = retained(reuse, app)

	// Step 3a: trade identification (Table III).
	s.trades = trades.IdentifyAppend(s.trades[:0], rep.AppTransfers)
	rep.Trades = retained(reuse, s.trades)

	// Step 3b: pattern matching per distinct borrower tag. Transactions
	// carry a handful of loans at most, so a linear scan over the
	// collected tags dedups without a per-call map.
	for _, loan := range rep.Loans {
		tag := d.tagger.Tag(loan.Borrower)
		if containsTag(rep.BorrowerTags, tag) {
			continue
		}
		rep.BorrowerTags = append(rep.BorrowerTags, tag)
		rep.Matches = append(rep.Matches, MatchPatterns(rep.Trades, tag, d.opts.thresholds())...)
	}

	rep.IsAttack = len(rep.Matches) > 0
	if rep.IsAttack && d.opts.YieldAggregatorHeuristic && d.borrowersAreAggregators(rep.BorrowerTags) {
		rep.IsAttack = false
		rep.SuppressedByHeuristic = true
	}
	return rep
}

// retained returns src itself when the backing buffer is free to escape
// (one-shot scratch), or an exact-size copy when the buffer will be
// recycled by the next InspectScratch call.
func retained[T any](reuse bool, src []T) []T {
	if !reuse {
		return src
	}
	if len(src) == 0 {
		return nil
	}
	out := make([]T, len(src))
	copy(out, src)
	return out
}

func containsTag(tags []types.Tag, tag types.Tag) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

func (d *Detector) borrowersAreAggregators(tags []types.Tag) bool {
	if len(tags) == 0 {
		return false
	}
	for _, t := range tags {
		if !t.IsApp() || !d.opts.YieldAggregatorApps[t.Name] {
			return false
		}
	}
	return true
}
