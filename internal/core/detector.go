package core

import (
	"fmt"
	"strings"
	"time"

	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/simplify"
	"leishen/internal/tagging"
	"leishen/internal/trace"
	"leishen/internal/trades"
	"leishen/internal/types"
)

// Options configures a Detector.
type Options struct {
	// Thresholds are the pattern parameters (zero value → paper defaults).
	Thresholds Thresholds
	// Simplify configures the §V-B2 rules (WETH token, tolerances).
	Simplify simplify.Options
	// YieldAggregatorHeuristic, when true, suppresses MBS matches for
	// transactions whose flash loan borrower belongs to a known yield
	// aggregator application — the §VI-C heuristic that lifts MBS
	// precision from 56.1% to 80%.
	YieldAggregatorHeuristic bool
	// YieldAggregatorApps is the set of application names treated as
	// yield aggregators by the heuristic.
	YieldAggregatorApps map[string]bool
	// ExcludedLabelAccounts lists accounts whose Etherscan labels are
	// ignored during tagging (attacker labels applied post-hoc).
	ExcludedLabelAccounts []types.Address
	// Clock supplies the wall-clock reads for the report's Elapsed
	// latency measurement. Detection itself is a pure function of the
	// receipt; the clock only times it. Nil means the real clock.
	Clock func() time.Time
}

func (o Options) thresholds() Thresholds {
	if o.Thresholds == (Thresholds{}) {
		return DefaultThresholds()
	}
	return o.Thresholds
}

// Report is the detector's verdict for one transaction.
type Report struct {
	// TxHash identifies the transaction.
	TxHash types.Hash
	// Time is the block timestamp (for monthly/weekly aggregation).
	Time time.Time
	// Block is the containing block number.
	Block uint64
	// Loans are the identified flash loans; empty means "not a flash loan
	// transaction" and no further analysis ran.
	Loans []flashloan.Loan
	// BorrowerTags are the distinct application tags of the loan
	// borrowers.
	BorrowerTags []types.Tag
	// Transfers is the account-level transfer history.
	Transfers []types.Transfer
	// AppTransfers is the simplified application-level history.
	AppTransfers []types.AppTransfer
	// Trades is the identified trade list.
	Trades []types.Trade
	// Matches are the detected attack pattern instances.
	Matches []Match
	// IsAttack reports the final verdict after heuristics.
	IsAttack bool
	// SuppressedByHeuristic marks transactions whose matches were
	// discarded by the yield-aggregator heuristic.
	SuppressedByHeuristic bool
	// Error is set when detection could not complete for this
	// transaction (a recovered panic in a scan worker); all verdict
	// fields are zero and the report carries only the receipt identity.
	Error string
	// Elapsed is the wall time the detection took (the paper reports a
	// 10 ms mean / 16 ms p75).
	Elapsed time.Duration
}

// ErrorReport builds the degraded verdict for a receipt whose
// inspection failed: identity fields from the receipt, Error set, every
// verdict field zero. It is deterministic — the same receipt and
// message produce the same bytes regardless of where the failure
// surfaced — so parallel and sequential scans stay byte-identical even
// through worker panics.
// Even a nil receipt — the degenerate poisoned input — yields a
// verdict rather than a second panic inside the recovery path.
func ErrorReport(r *evm.Receipt, msg string) *Report {
	rep := &Report{Error: msg}
	if r != nil {
		rep.TxHash, rep.Time, rep.Block = r.TxHash, r.Time, r.Block
	}
	return rep
}

// HasPattern reports whether the report contains a match of the kind.
func (r *Report) HasPattern(k PatternKind) bool {
	for _, m := range r.Matches {
		if m.Kind == k {
			return true
		}
	}
	return false
}

// Summary renders a one-line verdict.
func (r *Report) Summary() string {
	if r.Error != "" {
		return fmt.Sprintf("%s: detection failed: %s", r.TxHash.Short(), r.Error)
	}
	if len(r.Loans) == 0 {
		return fmt.Sprintf("%s: not a flash loan transaction", r.TxHash.Short())
	}
	if !r.IsAttack {
		suffix := ""
		if r.SuppressedByHeuristic {
			suffix = " (suppressed: yield aggregator)"
		}
		return fmt.Sprintf("%s: flash loan, no attack pattern%s", r.TxHash.Short(), suffix)
	}
	var kinds []string
	for _, m := range r.Matches {
		kinds = append(kinds, m.String())
	}
	return fmt.Sprintf("%s: flpAttack [%s]", r.TxHash.Short(), strings.Join(kinds, "; "))
}

// Detail renders the full multi-section report the paper's pipeline
// returns ("a detailed report regarding attack patterns"). It is the
// one-shot convenience form of AppendDetail; steady-state callers use
// Arena.DetailInto to reuse one rendering buffer across transactions.
func (r *Report) Detail() string {
	return string(r.AppendDetail(nil))
}

// Detector is the LeiShen pipeline: flash loan identification → transfer
// extraction → tagging → simplification → trade identification → pattern
// matching.
type Detector struct {
	extractor *trace.Extractor
	tagger    *tagging.Tagger
	interner  *trace.Interner
	irules    simplify.InternedRules
	opts      Options
	clock     func() time.Time
}

// NewDetector builds a detector over a chain snapshot. The tagger is
// precomputed here so per-transaction detection is a pure function of the
// receipt (the honest way to measure the paper's 10 ms budget); the
// simplification rules are resolved to interned ids at the same time, so
// the per-transfer rule checks compare integers instead of strings.
func NewDetector(view tagging.ChainView, tokens trace.TokenResolver, opts Options) *Detector {
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	tagger := tagging.New(view, opts.ExcludedLabelAccounts...)
	interner := trace.NewInterner(tokens)
	return &Detector{
		extractor: trace.NewExtractor(tokens),
		tagger:    tagger,
		interner:  interner,
		irules:    simplify.ResolveRules(opts.Simplify, tagger.IDOfTag, interner.IDOf),
		opts:      opts,
		clock:     clock,
	}
}

// Tagger exposes the precomputed tagger (baselines reuse it).
func (d *Detector) Tagger() *tagging.Tagger { return d.tagger }

// Inspect runs the full pipeline on one receipt.
func (d *Detector) Inspect(r *evm.Receipt) *Report {
	return d.InspectScratch(r, nil)
}

// InspectScratch is Inspect with a caller-owned Arena backing the
// pipeline's intermediates and the report's data, so a scanning loop
// that reuses one Arena per goroutine inspects transactions with near
// zero allocations. A nil arena allocates a fresh one (plain Inspect).
// The returned report owns all of its data — slab regions are carved
// once and never rewritten — and is valid after any number of further
// calls with the same arena.
//
// The pipeline runs on interned tuples throughout (tag and token
// identities as integer ids) and resolves ids back to the full structs
// only here, at report materialization; the interned matchers mirror
// the reference implementation decision for decision, so reports are
// byte-identical to the string pipeline's.
func (d *Detector) InspectScratch(r *evm.Receipt, s *Arena) *Report {
	if s == nil {
		s = NewArena()
	}
	start := d.clock()
	rep := s.reportSlab.saveOne(Report{TxHash: r.TxHash, Time: r.Time, Block: r.Block})
	defer func() { rep.Elapsed = d.clock().Sub(start) }()

	// Step 0: flash loan identification (Table II). The identifier
	// early-exits without allocating for the non-flash-loan majority.
	loans := flashloan.IdentifyScratch(r, &s.fl)
	if len(loans) == 0 {
		return rep
	}
	rep.Loans = s.loanSlab.save(loans)

	// Step 1: transfer history extraction (§V-A), interned.
	s.it = d.extractor.ExtractInterned(s.it[:0], d.interner, r)
	s.tmpTransfers = s.tmpTransfers[:0]
	for i := range s.it {
		t := &s.it[i]
		s.tmpTransfers = append(s.tmpTransfers, types.Transfer{
			Seq:      t.Seq,
			Sender:   t.Sender,
			Receiver: t.Receiver,
			Amount:   t.Amount,
			Token:    d.interner.Token(t.Token),
		})
	}
	rep.Transfers = s.transferSlab.save(s.tmpTransfers)

	// Step 2: application-level construction (§V-B): tag ids in place,
	// then simplify over the interned tuples.
	d.tagger.TagTransferIDs(s.it)
	app := simplify.SimplifyInterned(s.it, d.irules, &s.isimp)
	s.tmpApp = s.tmpApp[:0]
	for i := range app {
		t := &app[i]
		s.tmpApp = append(s.tmpApp, types.AppTransfer{
			Seq:           t.Seq,
			Sender:        d.tagger.ResolveTag(t.SenderTag),
			Receiver:      d.tagger.ResolveTag(t.ReceiverTag),
			FromBlackHole: t.FromBlackHole,
			ToBlackHole:   t.ToBlackHole,
			Amount:        t.Amount,
			Token:         d.interner.Token(t.Token),
		})
	}
	rep.AppTransfers = s.appSlab.save(s.tmpApp)

	// Step 3a: trade identification (Table III), interned.
	s.itrades = trades.IdentifyInterned(s.itrades[:0], app)
	s.tmpTrades = s.tmpTrades[:0]
	for i := range s.itrades {
		s.tmpTrades = append(s.tmpTrades, d.materializeTrade(s, &s.itrades[i]))
	}
	rep.Trades = s.tradeSlab.save(s.tmpTrades)

	// Step 3b: pattern matching per distinct borrower tag. Transactions
	// carry a handful of loans at most, so a linear scan over the
	// collected tag ids dedups without a per-call map.
	s.btags = s.btags[:0]
	s.imatches = s.imatches[:0]
	s.involvedBuf = s.involvedBuf[:0]
	th := d.opts.thresholds()
	for i := range loans {
		tid := d.tagger.TagIDOf(loans[i].Borrower)
		if containsTagID(s.btags, tid) {
			continue
		}
		s.btags = append(s.btags, tid)
		matchPatternsInterned(s, s.itrades, tid, th)
	}
	s.tmpTags = s.tmpTags[:0]
	for _, id := range s.btags {
		s.tmpTags = append(s.tmpTags, d.tagger.ResolveTag(id))
	}
	rep.BorrowerTags = s.tagSlab.save(s.tmpTags)

	s.tmpMatches = s.tmpMatches[:0]
	for i := range s.imatches {
		m := &s.imatches[i]
		involved := s.involvedBuf[m.lo:m.hi]
		s.tmpTrades = s.tmpTrades[:0] // rep.Trades is already slab-saved
		for j := range involved {
			s.tmpTrades = append(s.tmpTrades, d.materializeTrade(s, &involved[j]))
		}
		s.tmpMatches = append(s.tmpMatches, Match{
			Kind:          m.kind,
			Target:        d.interner.Token(m.target),
			Counterparty:  d.tagger.ResolveTag(m.counterparty),
			Trades:        s.tradeSlab.save(s.tmpTrades),
			Rounds:        m.rounds,
			VolatilityPct: m.volatility,
		})
	}
	rep.Matches = s.matchSlab.save(s.tmpMatches)

	rep.IsAttack = len(rep.Matches) > 0
	if rep.IsAttack && d.opts.YieldAggregatorHeuristic && d.borrowersAreAggregators(rep.BorrowerTags) {
		rep.IsAttack = false
		rep.SuppressedByHeuristic = true
	}
	return rep
}

// materializeTrade resolves an interned trade back to the full Trade
// tuple; secondary legs are carved from the arena's leg slab.
func (d *Detector) materializeTrade(s *Arena, t *types.ITrade) types.Trade {
	out := types.Trade{
		Kind:       t.Kind,
		Buyer:      d.tagger.ResolveTag(t.Buyer),
		Seller:     d.tagger.ResolveTag(t.Seller),
		AmountSell: t.AmountSell,
		TokenSell:  d.interner.Token(t.TokenSell),
		AmountBuy:  t.AmountBuy,
		TokenBuy:   d.interner.Token(t.TokenBuy),
		Seq:        t.Seq,
	}
	switch t.SecondaryKind {
	case types.SecondaryIsBuy:
		out.SecondaryBuy = s.legSlab.saveOne(types.TradeLeg{Amount: t.Secondary.Amount, Token: d.interner.Token(t.Secondary.Token)})
	case types.SecondaryIsSell:
		out.SecondarySell = s.legSlab.saveOne(types.TradeLeg{Amount: t.Secondary.Amount, Token: d.interner.Token(t.Secondary.Token)})
	}
	return out
}

func containsTag(tags []types.Tag, tag types.Tag) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

func (d *Detector) borrowersAreAggregators(tags []types.Tag) bool {
	if len(tags) == 0 {
		return false
	}
	for _, t := range tags {
		if !t.IsApp() || !d.opts.YieldAggregatorApps[t.Name] {
			return false
		}
	}
	return true
}
