// Package core implements LeiShen's primary contribution: the three
// flpAttack patterns of paper §IV-B (Keep Raising Price, Symmetrical
// Buying and Selling, Multi-Round Buying and Selling) and the detection
// pipeline of §V that matches them against a flash loan transaction's
// application-level trade list.
package core

import (
	"fmt"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// PatternKind enumerates the attack patterns.
type PatternKind int

// Patterns.
const (
	// PatternKRP is Keep Raising Price: >= N buys of the target token from
	// one seller at monotonically increasing prices, then a sell.
	PatternKRP PatternKind = iota + 1
	// PatternSBS is Symmetrical Buying and Selling: buy, pump, sell the
	// same amount at a higher price (pump volatility >= 28%).
	PatternSBS
	// PatternMBS is Multi-Round Buying and Selling: >= N profitable
	// buy/sell rounds against the same seller.
	PatternMBS
)

// String names the pattern with the paper's abbreviation.
func (k PatternKind) String() string {
	switch k {
	case PatternKRP:
		return "KRP"
	case PatternSBS:
		return "SBS"
	case PatternMBS:
		return "MBS"
	default:
		return fmt.Sprintf("PatternKind(%d)", int(k))
	}
}

// Thresholds holds the pattern parameters, defaulting to the paper's
// calibrated values (the minima observed across the 22 real attacks).
type Thresholds struct {
	// KRPMinBuys is the minimum run of rising buys (paper: 5).
	KRPMinBuys int
	// SBSMinVolatilityBps is the minimum price rise between the two buy
	// trades in basis points (paper: 28% = 2800).
	SBSMinVolatilityBps uint64
	// SBSAmountToleranceBps relaxes the trade1.amountBuy ==
	// trade3.amountSell equality to a small tolerance.
	SBSAmountToleranceBps uint64
	// MBSMinRounds is the minimum number of profitable rounds (paper: 3).
	MBSMinRounds int
}

// DefaultThresholds returns the paper's parameters.
func DefaultThresholds() Thresholds {
	return Thresholds{
		KRPMinBuys:            5,
		SBSMinVolatilityBps:   2800,
		SBSAmountToleranceBps: 10,
		MBSMinRounds:          3,
	}
}

// Match is one detected attack pattern instance.
type Match struct {
	// Kind is the pattern.
	Kind PatternKind
	// Target is the manipulated token.
	Target types.Token
	// Counterparty is the victim application (seller of the buy trades).
	Counterparty types.Tag
	// Trades are the involved trades in order.
	Trades []types.Trade
	// Rounds counts buy/sell rounds (MBS) or buy legs (KRP).
	Rounds int
	// VolatilityPct is the observed price volatility across the involved
	// trades, in percent ((max-min)/min * 100).
	VolatilityPct float64
}

// String renders the match for reports.
func (m Match) String() string {
	return fmt.Sprintf("%s on %s vs %s (%d trades, volatility %.2f%%)",
		m.Kind, m.Target.Symbol, m.Counterparty, len(m.Trades), m.VolatilityPct)
}

// rateLess reports rate(a) < rate(b) where rate = AmountSell/AmountBuy,
// compared exactly by cross multiplication.
func rateLess(a, b types.Trade) bool {
	// aS/aB < bS/bB  <=>  aS*bB < bS*aB
	return uint256.CmpProducts(a.AmountSell, b.AmountBuy, b.AmountSell, a.AmountBuy) < 0
}

// buyCheaperThanSellOf reports that the buy trade's price is below the
// sell trade's realized price: buy.AmountSell/buy.AmountBuy <
// sell.AmountBuy/sell.AmountSell.
func buyCheaperThanSellOf(buy, sell types.Trade) bool {
	return uint256.CmpProducts(buy.AmountSell, sell.AmountSell, sell.AmountBuy, buy.AmountBuy) < 0
}

// volatilityAtLeast reports (rate(hi) - rate(lo)) / rate(lo) >= bps/10000,
// i.e. rate(hi) * 10000 >= rate(lo) * (10000 + bps), exactly.
func volatilityAtLeast(lo, hi types.Trade, bps uint64) bool {
	// hiS/hiB >= loS/loB * (1 + bps/1e4)
	// <=> hiS * loB * 1e4 >= loS * hiB * (1e4 + bps)
	left, err := hi.AmountSell.Mul(uint256.FromUint64(10_000))
	if err != nil {
		// Astronomic amounts: fall back to float comparison.
		return hi.Rate() >= lo.Rate()*(1+float64(bps)/10_000)
	}
	right, err := lo.AmountSell.Mul(uint256.FromUint64(10_000 + bps))
	if err != nil {
		return hi.Rate() >= lo.Rate()*(1+float64(bps)/10_000)
	}
	return uint256.CmpProducts(left, lo.AmountBuy, right, hi.AmountBuy) >= 0
}

// isBuyOf reports whether the borrower acquires the token in this trade.
func isBuyOf(t types.Trade, borrower types.Tag, target types.Token) bool {
	return t.Buyer == borrower && t.TokenBuy.Address == target.Address && t.TokenBuy.IsETH() == target.IsETH()
}

// isSellOf reports whether the borrower disposes of the token.
func isSellOf(t types.Trade, borrower types.Tag, target types.Token) bool {
	return t.Buyer == borrower && t.TokenSell.Address == target.Address && t.TokenSell.IsETH() == target.IsETH()
}

// candidateTargets lists every token the borrower bought at least once.
func candidateTargets(trades []types.Trade, borrower types.Tag) []types.Token {
	seen := make(map[string]bool)
	var out []types.Token
	for _, t := range trades {
		if t.Buyer != borrower {
			continue
		}
		key := t.TokenBuy.Address.String()
		if t.TokenBuy.IsETH() {
			key = "ETH"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, t.TokenBuy)
		}
	}
	return out
}

// MatchPatterns runs all three matchers over a trade list for one flash
// loan borrower tag.
func MatchPatterns(trades []types.Trade, borrower types.Tag, th Thresholds) []Match {
	if borrower.IsNone() {
		return nil
	}
	var out []Match
	for _, target := range candidateTargets(trades, borrower) {
		if m, ok := matchKRP(trades, borrower, target, th); ok {
			out = append(out, m)
		}
		if m, ok := matchSBS(trades, borrower, target, th); ok {
			out = append(out, m)
		}
		if m, ok := matchMBS(trades, borrower, target, th); ok {
			out = append(out, m)
		}
	}
	return out
}

// matchKRP finds a run of >= KRPMinBuys borrower buys of target from the
// same seller at monotonically increasing prices, followed by a sell.
func matchKRP(trades []types.Trade, borrower types.Tag, target types.Token, th Thresholds) (Match, bool) {
	var run []types.Trade
	var seller types.Tag
	for i, t := range trades {
		switch {
		case isBuyOf(t, borrower, target):
			if len(run) == 0 {
				run = []types.Trade{t}
				seller = t.Seller
				continue
			}
			if t.Seller == seller && rateLess(run[len(run)-1], t) {
				run = append(run, t)
				continue
			}
			// Run broken: restart from this buy.
			run = []types.Trade{t}
			seller = t.Seller
		case isSellOf(t, borrower, target):
			if len(run) >= th.KRPMinBuys {
				involved := append(append([]types.Trade{}, run...), t)
				return Match{
					Kind:          PatternKRP,
					Target:        target,
					Counterparty:  seller,
					Trades:        involved,
					Rounds:        len(run),
					VolatilityPct: tradeVolatilityPct(involved, target),
				}, true
			}
			_ = i
		}
	}
	return Match{}, false
}

// matchSBS finds buy trade1, pump trade2 (any buyer), and sell trade3 with
// trade1.amountBuy == trade3.amountSell, the rate sandwich, and a pump of
// at least SBSMinVolatilityBps between trade1 and trade2.
func matchSBS(trades []types.Trade, borrower types.Tag, target types.Token, th Thresholds) (Match, bool) {
	for i, t1 := range trades {
		if !isBuyOf(t1, borrower, target) {
			continue
		}
		for j := i + 1; j < len(trades); j++ {
			t2 := trades[j]
			// The pump buy may be executed by anyone — in bZx-1 it is the
			// victim platform itself, financed by the attacker's margin.
			if !(t2.TokenBuy.Address == target.Address && t2.TokenBuy.IsETH() == target.IsETH()) {
				continue
			}
			if t2.Buyer == t1.Seller && t2.Seller == t1.Buyer {
				continue // the mirror of t1, not a pump
			}
			if !volatilityAtLeast(t1, t2, th.SBSMinVolatilityBps) {
				continue
			}
			for k := j + 1; k < len(trades); k++ {
				t3 := trades[k]
				if !isSellOf(t3, borrower, target) {
					continue
				}
				// a) symmetric amounts.
				if !withinBps(t1.AmountBuy, t3.AmountSell, th.SBSAmountToleranceBps) {
					continue
				}
				// b) rate(t1) < sellRate(t3) < rate(t2).
				if !buyCheaperThanSellOf(t1, t3) {
					continue
				}
				// sellRate(t3) < rate(t2): t3.amountBuy/t3.amountSell < t2.amountSell/t2.amountBuy
				if uint256.CmpProducts(t3.AmountBuy, t2.AmountBuy, t2.AmountSell, t3.AmountSell) >= 0 {
					continue
				}
				involved := []types.Trade{t1, t2, t3}
				return Match{
					Kind:          PatternSBS,
					Target:        target,
					Counterparty:  t1.Seller,
					Trades:        involved,
					Rounds:        1,
					VolatilityPct: tradeVolatilityPct(involved, target),
				}, true
			}
		}
	}
	return Match{}, false
}

// matchMBS counts profitable buy/sell rounds against a single seller.
func matchMBS(trades []types.Trade, borrower types.Tag, target types.Token, th Thresholds) (Match, bool) {
	type state struct {
		pending  *types.Trade
		rounds   int
		involved []types.Trade
	}
	states := make(map[types.Tag]*state)
	var sellerOrder []types.Tag
	for i := range trades {
		t := trades[i]
		switch {
		case isBuyOf(t, borrower, target):
			s := states[t.Seller]
			if s == nil {
				s = &state{}
				states[t.Seller] = s
				sellerOrder = append(sellerOrder, t.Seller)
			}
			tt := t
			s.pending = &tt
		case isSellOf(t, borrower, target):
			s := states[t.Seller]
			if s == nil || s.pending == nil {
				continue
			}
			// Condition b: the round is profitable.
			if buyCheaperThanSellOf(*s.pending, t) {
				s.rounds++
				s.involved = append(s.involved, *s.pending, t)
			}
			s.pending = nil
		}
	}
	for _, seller := range sellerOrder {
		s := states[seller]
		if s.rounds >= th.MBSMinRounds {
			return Match{
				Kind:          PatternMBS,
				Target:        target,
				Counterparty:  seller,
				Trades:        s.involved,
				Rounds:        s.rounds,
				VolatilityPct: tradeVolatilityPct(s.involved, target),
			}, true
		}
	}
	return Match{}, false
}

// withinBps reports |x-y| <= max(x,y)*bps/1e4.
func withinBps(x, y uint256.Int, bps uint64) bool {
	hi := x
	if y.Gt(x) {
		hi = y
	}
	bound := hi.MustMulDiv(uint256.FromUint64(bps), uint256.FromUint64(10_000))
	return x.AbsDiff(y).Lte(bound)
}

// tradeVolatilityPct computes the paper's price volatility formula
// ((rate_max - rate_min)/rate_min * 100%) over the target token's price in
// each involved trade.
func tradeVolatilityPct(trades []types.Trade, target types.Token) float64 {
	minR, maxR := 0.0, 0.0
	first := true
	for _, t := range trades {
		var r float64
		switch {
		case t.TokenBuy.Address == target.Address && t.TokenBuy.IsETH() == target.IsETH():
			r = t.Rate() // paid per unit of target
		case t.TokenSell.Address == target.Address && t.TokenSell.IsETH() == target.IsETH():
			r = t.InverseRate() // received per unit of target
		default:
			continue
		}
		if r == 0 {
			continue
		}
		if first {
			minR, maxR = r, r
			first = false
			continue
		}
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if first || minR == 0 {
		return 0
	}
	return (maxR - minR) / minR * 100
}
