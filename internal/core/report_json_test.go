package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"leishen/internal/flashloan"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// syntheticReport builds a report exercising every wire field.
func syntheticReport() *Report {
	usdc := types.Token{Address: types.Address{0xA0, 0xB8}, Symbol: "USDC", Decimals: 6}
	weth := types.Token{Address: types.Address{0xC0, 0x2A}, Symbol: "WETH", Decimals: 18}
	attacker := types.AppTag("Attacker Contract")
	pool := types.AppTag("Uniswap")
	return &Report{
		TxHash: types.HashFromData([]byte("synthetic-report")),
		Time:   time.Date(2020, 10, 26, 2, 1, 35, 0, time.UTC),
		Block:  11129473,
		Loans: []flashloan.Loan{{
			Provider: flashloan.ProviderUniswap,
			Lender:   types.Address{1},
			Borrower: types.Address{2},
			Token:    usdc.Address,
			Amount:   uint256.FromUint64(50_000_000_000),
		}},
		BorrowerTags: []types.Tag{attacker},
		Trades: []types.Trade{{
			Kind:       types.TradeSwap,
			Buyer:      attacker,
			Seller:     pool,
			AmountSell: uint256.FromUint64(50_000_000_000),
			TokenSell:  usdc,
			AmountBuy:  uint256.FromUint64(17 * 1e18),
			TokenBuy:   weth,
		}},
		Matches: []Match{{
			Kind:          PatternMBS,
			Target:        weth,
			Counterparty:  pool,
			Rounds:        4,
			Trades:        make([]types.Trade, 8),
			VolatilityPct: 31.4,
		}},
		IsAttack:              true,
		SuppressedByHeuristic: false,
		Elapsed:               1500 * time.Microsecond,
	}
}

// TestReportJSONRoundTripBytes checks that Report.MarshalJSON output
// decodes back into ReportJSON and re-encodes to the identical bytes —
// i.e. the wire form is self-consistent and loses nothing a client could
// need. (TestReportJSONRoundTrip in properties_test.go covers decoding
// of generated trades; this one exercises every wire field.)
func TestReportJSONRoundTripBytes(t *testing.T) {
	rep := syntheticReport()
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ReportJSON
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatalf("unmarshal wire form: %v", err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("round trip changed bytes:\n first: %s\nsecond: %s", first, second)
	}

	if decoded.TxHash != rep.TxHash.String() {
		t.Errorf("txHash = %q, want %q", decoded.TxHash, rep.TxHash.String())
	}
	if !decoded.IsFlashLoanTx || !decoded.IsAttack {
		t.Errorf("flags = %+v", decoded)
	}
	if len(decoded.Loans) != 1 || decoded.Loans[0].Provider != "Uniswap" {
		t.Errorf("loans = %+v", decoded.Loans)
	}
	if got := decoded.Loans[0].Amount.String(); got != "50000000000" {
		t.Errorf("loan amount = %s", got)
	}
	if len(decoded.Matches) != 1 || decoded.Matches[0].Pattern != "MBS" ||
		decoded.Matches[0].Trades != 8 {
		t.Errorf("matches = %+v", decoded.Matches)
	}
	if decoded.ElapsedMicros != 1500 {
		t.Errorf("elapsedMicros = %d", decoded.ElapsedMicros)
	}
}

// TestReportJSONEmpty checks the wire form of a non-flash-loan report:
// all optional sections must be omitted, not emitted as null/empty.
func TestReportJSONEmpty(t *testing.T) {
	rep := &Report{TxHash: types.HashFromData([]byte("benign")), Block: 1}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"loans", "borrowerTags", "trades", "matches", "suppressedByHeuristic"} {
		if bytes.Contains(raw, []byte(`"`+field+`"`)) {
			t.Errorf("empty report emits %q: %s", field, raw)
		}
	}
	var decoded ReportJSON
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.IsFlashLoanTx || decoded.IsAttack {
		t.Errorf("flags = %+v", decoded)
	}
}
