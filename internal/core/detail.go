package core

import (
	"strconv"
)

// Append-form report rendering. AppendDetail produces exactly the bytes
// of the historical fmt-based Detail, but into a caller-owned buffer so
// steady-state scanning and serving render reports without per-fragment
// allocations (Arena.DetailInto reuses one buffer across transactions).
// TestDetailMatchesReference pins byte equality against an fmt
// re-rendering over a full corpus.

// AppendString appends the match's report line (String).
func (m Match) AppendString(dst []byte) []byte {
	dst = append(dst, m.Kind.String()...)
	dst = append(dst, " on "...)
	dst = append(dst, m.Target.Symbol...)
	dst = append(dst, " vs "...)
	dst = m.Counterparty.AppendString(dst)
	dst = append(dst, " ("...)
	dst = strconv.AppendInt(dst, int64(len(m.Trades)), 10)
	dst = append(dst, " trades, volatility "...)
	dst = strconv.AppendFloat(dst, m.VolatilityPct, 'f', 2, 64)
	return append(dst, '%', ')')
}

// AppendDetail appends the full multi-section report text (Detail).
func (r *Report) AppendDetail(dst []byte) []byte {
	dst = append(dst, "transaction "...)
	dst = r.TxHash.AppendHex(dst)
	dst = append(dst, " (block "...)
	dst = strconv.AppendUint(dst, r.Block, 10)
	dst = append(dst, ")\n"...)

	dst = append(dst, "flash loans: "...)
	dst = strconv.AppendInt(dst, int64(len(r.Loans)), 10)
	dst = append(dst, '\n')
	for i := range r.Loans {
		l := &r.Loans[i]
		dst = append(dst, ' ', ' ')
		dst = append(dst, l.Provider.String()...)
		dst = append(dst, " lends "...)
		dst = l.Amount.AppendDecimal(dst)
		dst = append(dst, " of token "...)
		dst = l.Token.AppendShort(dst)
		dst = append(dst, " to "...)
		dst = l.Borrower.AppendShort(dst)
		dst = append(dst, '\n')
	}

	dst = append(dst, "account-level transfers: "...)
	dst = strconv.AppendInt(dst, int64(len(r.Transfers)), 10)
	dst = append(dst, '\n')

	dst = append(dst, "app-level transfers: "...)
	dst = strconv.AppendInt(dst, int64(len(r.AppTransfers)), 10)
	dst = append(dst, '\n')
	for i := range r.AppTransfers {
		dst = append(dst, ' ', ' ')
		dst = r.AppTransfers[i].AppendString(dst)
		dst = append(dst, '\n')
	}

	dst = append(dst, "trades: "...)
	dst = strconv.AppendInt(dst, int64(len(r.Trades)), 10)
	dst = append(dst, '\n')
	for i := range r.Trades {
		dst = append(dst, ' ', ' ')
		dst = r.Trades[i].AppendString(dst)
		dst = append(dst, '\n')
	}

	dst = append(dst, "matches: "...)
	dst = strconv.AppendInt(dst, int64(len(r.Matches)), 10)
	dst = append(dst, '\n')
	for i := range r.Matches {
		dst = append(dst, ' ', ' ')
		dst = r.Matches[i].AppendString(dst)
		dst = append(dst, '\n')
	}

	dst = append(dst, "verdict: attack="...)
	dst = strconv.AppendBool(dst, r.IsAttack)
	return append(dst, '\n')
}
