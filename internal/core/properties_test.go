package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// krpTrades is a canonical KRP-positive trade list (from the unit tests).
func krpTrades() []types.Trade {
	return []types.Trade{
		buy(victim, 20, 5200), buy(victim, 20, 4600), buy(victim, 20, 4000),
		buy(victim, 20, 3400), buy(victim, 20, 2800), buy(victim, 20, 2300),
		sell(victim2, 20000, 124),
	}
}

// mbsTrades is a canonical MBS-positive trade list.
func mbsTrades() []types.Trade {
	return []types.Trade{
		buy(victim, 1000, 1030), sell(victim, 1030, 1010),
		buy(victim, 1000, 1030), sell(victim, 1030, 1010),
		buy(victim, 1000, 1030), sell(victim, 1030, 1010),
	}
}

// noiseTrade builds a trade on an unrelated token pair by an unrelated
// party — the benign traffic surrounding an attack inside a transaction.
func noiseTrade(rng *rand.Rand) types.Trade {
	other := types.AppTag("Noise")
	tokA := types.Token{Address: types.Address{0xA0, byte(rng.Intn(200))}, Symbol: "NA", Decimals: 18}
	tokB := types.Token{Address: types.Address{0xA1, byte(rng.Intn(200) + 1)}, Symbol: "NB", Decimals: 18}
	return types.Trade{
		Kind:       types.TradeSwap,
		Buyer:      types.RootTag(types.Address{byte(rng.Intn(200) + 2)}),
		Seller:     other,
		AmountSell: uint256.FromUint64(rng.Uint64()%10000 + 1),
		TokenSell:  tokA,
		AmountBuy:  uint256.FromUint64(rng.Uint64()%10000 + 1),
		TokenBuy:   tokB,
	}
}

// TestPropertyNoiseInvariance: inserting unrelated trades anywhere in the
// list never destroys an existing match (detection must survive busy
// transactions — real attacks interleave with routing and fee transfers).
func TestPropertyNoiseInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[PatternKind][]types.Trade{
		PatternKRP: krpTrades(),
		PatternMBS: mbsTrades(),
	}
	for kind, base := range cases {
		for trial := 0; trial < 100; trial++ {
			noisy := make([]types.Trade, 0, len(base)+4)
			for _, tr := range base {
				for rng.Intn(3) == 0 {
					noisy = append(noisy, noiseTrade(rng))
				}
				noisy = append(noisy, tr)
			}
			ms := MatchPatterns(noisy, borrower, DefaultThresholds())
			if !kinds(ms)[kind] {
				t.Fatalf("%s lost under noise (trial %d): %v", kind, trial, noisy)
			}
		}
	}
}

// TestPropertyScaleInvariance: multiplying all amounts by a constant
// preserves every match — the matchers are pure rate conditions.
func TestPropertyScaleInvariance(t *testing.T) {
	scale := func(list []types.Trade, k uint64) []types.Trade {
		out := make([]types.Trade, len(list))
		for i, tr := range list {
			tr.AmountSell = tr.AmountSell.MustMul(uint256.FromUint64(k))
			tr.AmountBuy = tr.AmountBuy.MustMul(uint256.FromUint64(k))
			out[i] = tr
		}
		return out
	}
	for _, k := range []uint64{2, 1000, 1_000_000_000_000} {
		for name, base := range map[PatternKind][]types.Trade{
			PatternKRP: krpTrades(),
			PatternMBS: mbsTrades(),
		} {
			ms := MatchPatterns(scale(base, k), borrower, DefaultThresholds())
			if !kinds(ms)[name] {
				t.Errorf("%s lost at scale %d", name, k)
			}
		}
	}
}

// TestPropertyPrefixSafety: a prefix of an attack (the attack cut short
// before its sell leg) never matches — matchers require the completed
// shape.
func TestPropertyPrefixSafety(t *testing.T) {
	krp := krpTrades()
	for cut := 0; cut < len(krp); cut++ {
		ms := MatchPatterns(krp[:cut], borrower, DefaultThresholds())
		if len(ms) != 0 {
			t.Errorf("KRP prefix of %d trades matched: %v", cut, ms)
		}
	}
	mbs := mbsTrades()
	for cut := 0; cut < 5; cut++ { // below 3 complete rounds
		ms := MatchPatterns(mbs[:cut], borrower, DefaultThresholds())
		if len(ms) != 0 {
			t.Errorf("MBS prefix of %d trades matched: %v", cut, ms)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		TxHash:   types.HashFromData([]byte("x")),
		Block:    7,
		IsAttack: true,
		Trades:   krpTrades(),
		Matches: []Match{{
			Kind: PatternKRP, Target: susdT, Counterparty: victim,
			Rounds: 6, VolatilityPct: 120,
			Trades: krpTrades(),
		}},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ReportJSON
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.IsAttack || decoded.Block != 7 {
		t.Errorf("decoded = %+v", decoded)
	}
	if len(decoded.Matches) != 1 || decoded.Matches[0].Pattern != "KRP" || decoded.Matches[0].Trades != 7 {
		t.Errorf("matches = %+v", decoded.Matches)
	}
	if len(decoded.Trades) != 7 || decoded.Trades[0].AmountSell.Uint64() != 20 {
		t.Errorf("trades = %+v", decoded.Trades)
	}
}
