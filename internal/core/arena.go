package core

import (
	"leishen/internal/flashloan"
	"leishen/internal/simplify"
	"leishen/internal/types"
)

// slabBlockLen is the number of values a slab block holds. Larger
// blocks amortize better but pin more memory per in-flight report
// batch; 256 puts the steady-state slab cost around 1/256th of an
// allocation per saved slice.
const slabBlockLen = 256

// slab is an append-only allocator for report-owned data. save copies a
// scratch slice into the current block and returns the region; when a
// block fills up it is abandoned to the reports that reference it — the
// GC reclaims it once those reports are released — and a fresh block is
// started. Two invariants make the escaping regions safe:
//
//   - a block is NEVER grown by reallocation: save starts a new block
//     instead, so previously returned regions never move;
//   - regions are returned with capacity clamped to their length
//     (three-index slices), so appending to a region can never bleed
//     into a neighbour.
type slab[T any] struct {
	block []T
}

// save copies src into the slab and returns the stable region; nil for
// an empty src (matching the "empty report field is nil" convention).
func (s *slab[T]) save(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	if cap(s.block)-len(s.block) < len(src) {
		n := slabBlockLen
		if n < len(src) {
			n = len(src)
		}
		s.block = make([]T, 0, n)
	}
	lo := len(s.block)
	s.block = append(s.block, src...)
	return s.block[lo:len(s.block):len(s.block)]
}

// saveOne stores one value and returns a stable pointer to it.
func (s *slab[T]) saveOne(v T) *T {
	if cap(s.block)-len(s.block) < 1 {
		s.block = make([]T, 0, slabBlockLen)
	}
	s.block = append(s.block, v)
	return &s.block[len(s.block)-1]
}

// Arena owns every intermediate buffer of the detection pipeline —
// extract → tag → simplify → trades → match — plus the slabs that back
// the escaping report data. A scanning loop keeps one Arena per worker:
// intermediates are reset (never reallocated) between transactions, and
// report-owned slices are carved from slab blocks, so the steady-state
// hot path allocates only when a slab block fills (~1/256th of an
// allocation per report field) or an intermediate grows past its
// high-water mark.
//
// The zero value is ready to use. An Arena is not safe for concurrent
// use; give each worker its own. Reports returned by InspectScratch own
// their data (slab regions are never rewritten), so they remain valid
// after any number of further calls with the same arena.
type Arena struct {
	// Interned pipeline intermediates.
	fl      flashloan.Scratch
	it      []types.ITransfer
	isimp   simplify.IScratch
	itrades []types.ITrade

	// Pattern-matching scratch.
	targets     []types.TokenID
	run         []int
	mbs         []mbsState
	involvedBuf []types.ITrade
	imatches    []iMatch
	btags       []types.TagID

	// Materialization staging: resolved values are assembled here and
	// then copied into the slabs in one save.
	tmpTransfers []types.Transfer
	tmpApp       []types.AppTransfer
	tmpTrades    []types.Trade
	tmpTags      []types.Tag
	tmpMatches   []Match

	// Slabs backing report-owned data.
	reportSlab   slab[Report]
	loanSlab     slab[flashloan.Loan]
	transferSlab slab[types.Transfer]
	appSlab      slab[types.AppTransfer]
	tradeSlab    slab[types.Trade]
	legSlab      slab[types.TradeLeg]
	tagSlab      slab[types.Tag]
	matchSlab    slab[Match]

	// detail is the reused report-rendering buffer for DetailInto.
	detail []byte
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset discards intermediate buffer contents, keeping capacity. Slabs
// are not reset — their contents belong to already-returned reports.
// InspectScratch resets each intermediate at its point of use, so
// calling Reset between transactions is not required; it exists for
// callers that want to drop per-transaction state eagerly.
func (a *Arena) Reset() {
	a.it = a.it[:0]
	a.isimp.Reset()
	a.itrades = a.itrades[:0]
	a.targets = a.targets[:0]
	a.run = a.run[:0]
	a.mbs = a.mbs[:0]
	a.involvedBuf = a.involvedBuf[:0]
	a.imatches = a.imatches[:0]
	a.btags = a.btags[:0]
}

// Scratch is the historical name of the per-worker pipeline buffer; the
// consolidated Arena replaced it and keeps the old name working.
type Scratch = Arena

// NewScratch returns an empty scratch (alias of NewArena).
func NewScratch() *Arena { return NewArena() }

// DetailInto renders a report's Detail text into the arena's reused
// buffer and returns the bytes, valid until the next DetailInto call
// with the same arena — the zero-allocation form of Report.Detail for
// steady-state serving and benchmarking.
func (a *Arena) DetailInto(r *Report) []byte {
	a.detail = r.AppendDetail(a.detail[:0])
	return a.detail
}
