package core

import (
	"testing"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

var (
	borrower = types.RootTag(types.Address{0xA7})
	victim   = types.AppTag("Uniswap")
	victim2  = types.AppTag("bZx")
	ethT     = types.ETH
	susdT    = types.Token{Address: types.Address{0x5D}, Symbol: "sUSD", Decimals: 18}
)

// buy makes a swap where the borrower pays `sell` ETH for `get` sUSD.
func buy(seller types.Tag, sell, get uint64) types.Trade {
	return types.Trade{
		Kind: types.TradeSwap, Buyer: borrower, Seller: seller,
		AmountSell: uint256.FromUint64(sell), TokenSell: ethT,
		AmountBuy: uint256.FromUint64(get), TokenBuy: susdT,
	}
}

// sell makes a swap where the borrower sells `sell` sUSD for `get` ETH.
func sell(seller types.Tag, sellAmt, get uint64) types.Trade {
	return types.Trade{
		Kind: types.TradeSwap, Buyer: borrower, Seller: seller,
		AmountSell: uint256.FromUint64(sellAmt), TokenSell: susdT,
		AmountBuy: uint256.FromUint64(get), TokenBuy: ethT,
	}
}

func kinds(ms []Match) map[PatternKind]bool {
	out := make(map[PatternKind]bool)
	for _, m := range ms {
		out[m.Kind] = true
	}
	return out
}

func TestKRPDetected(t *testing.T) {
	// bZx-2 shape: repeated 20 ETH buys at rising prices, then one sell.
	trades := []types.Trade{
		buy(victim, 20, 5200), // 0.00385 ETH each
		buy(victim, 20, 4600),
		buy(victim, 20, 4000),
		buy(victim, 20, 3400),
		buy(victim, 20, 2800),
		buy(victim, 20, 2300), // price keeps rising (less sUSD per ETH)
		sell(victim2, 20000, 124),
	}
	ms := MatchPatterns(trades, borrower, DefaultThresholds())
	if !kinds(ms)[PatternKRP] {
		t.Fatalf("KRP not detected: %v", ms)
	}
	var m Match
	for _, c := range ms {
		if c.Kind == PatternKRP {
			m = c
		}
	}
	if m.Rounds < 5 || m.Target.Symbol != "sUSD" || m.Counterparty != victim {
		t.Errorf("match = %+v", m)
	}
	if m.VolatilityPct <= 0 {
		t.Errorf("volatility = %f", m.VolatilityPct)
	}
}

func TestKRPRequiresFiveBuys(t *testing.T) {
	trades := []types.Trade{
		buy(victim, 20, 5200),
		buy(victim, 20, 4600),
		buy(victim, 20, 4000),
		buy(victim, 20, 3400),
		sell(victim2, 17200, 90),
	}
	ms := MatchPatterns(trades, borrower, DefaultThresholds())
	if kinds(ms)[PatternKRP] {
		t.Errorf("KRP detected with only 4 buys: %v", ms)
	}
	// Lowering the threshold to 3 (the paper's §VII relaxation) detects it.
	th := DefaultThresholds()
	th.KRPMinBuys = 3
	ms = MatchPatterns(trades, borrower, th)
	if !kinds(ms)[PatternKRP] {
		t.Errorf("relaxed KRP missed: %v", ms)
	}
}

func TestKRPRequiresSameSeller(t *testing.T) {
	other := types.AppTag("Sushi")
	trades := []types.Trade{
		buy(victim, 20, 5200),
		buy(victim, 20, 4600),
		buy(other, 20, 4000), // breaks the run
		buy(victim, 20, 3400),
		buy(victim, 20, 2800),
		buy(victim, 20, 2300),
		sell(victim2, 20300, 124),
	}
	ms := MatchPatterns(trades, borrower, DefaultThresholds())
	if kinds(ms)[PatternKRP] {
		t.Errorf("KRP detected across different sellers: %v", ms)
	}
}

func TestKRPRequiresRisingPrice(t *testing.T) {
	trades := []types.Trade{
		buy(victim, 20, 5200),
		buy(victim, 20, 5200), // flat, not rising
		buy(victim, 20, 5200),
		buy(victim, 20, 5200),
		buy(victim, 20, 5200),
		buy(victim, 20, 5200),
		sell(victim2, 31200, 120),
	}
	ms := MatchPatterns(trades, borrower, DefaultThresholds())
	if kinds(ms)[PatternKRP] {
		t.Errorf("KRP detected with flat prices: %v", ms)
	}
}

func TestSBSDetected(t *testing.T) {
	// bZx-1 shape: borrower buys 112 WBTC for 5500 ETH, victim pumps
	// (buys at a much higher rate), borrower sells the same 112 WBTC.
	wbtc := types.Token{Address: types.Address{0xBB}, Symbol: "WBTC", Decimals: 8}
	t1 := types.Trade{Kind: types.TradeSwap, Buyer: borrower, Seller: victim2,
		AmountSell: uint256.FromUint64(5500), TokenSell: ethT,
		AmountBuy: uint256.FromUint64(112), TokenBuy: wbtc}
	t2 := types.Trade{Kind: types.TradeSwap, Buyer: victim2, Seller: victim,
		AmountSell: uint256.FromUint64(5637), TokenSell: ethT,
		AmountBuy: uint256.FromUint64(51), TokenBuy: wbtc} // 110.5 ETH/WBTC
	t3 := types.Trade{Kind: types.TradeSwap, Buyer: borrower, Seller: victim,
		AmountSell: uint256.FromUint64(112), TokenSell: wbtc,
		AmountBuy: uint256.FromUint64(6871), TokenBuy: ethT} // 61.3 ETH/WBTC
	ms := MatchPatterns([]types.Trade{t1, t2, t3}, borrower, DefaultThresholds())
	if !kinds(ms)[PatternSBS] {
		t.Fatalf("SBS not detected: %v", ms)
	}
}

func TestSBSRejectsAsymmetricAmounts(t *testing.T) {
	wbtc := types.Token{Address: types.Address{0xBB}, Symbol: "WBTC", Decimals: 8}
	t1 := types.Trade{Kind: types.TradeSwap, Buyer: borrower, Seller: victim2,
		AmountSell: uint256.FromUint64(5500), TokenSell: ethT,
		AmountBuy: uint256.FromUint64(112), TokenBuy: wbtc}
	t2 := types.Trade{Kind: types.TradeSwap, Buyer: victim2, Seller: victim,
		AmountSell: uint256.FromUint64(5637), TokenSell: ethT,
		AmountBuy: uint256.FromUint64(51), TokenBuy: wbtc}
	// Sells far less than bought: not symmetric.
	t3 := types.Trade{Kind: types.TradeSwap, Buyer: borrower, Seller: victim,
		AmountSell: uint256.FromUint64(50), TokenSell: wbtc,
		AmountBuy: uint256.FromUint64(3067), TokenBuy: ethT}
	ms := MatchPatterns([]types.Trade{t1, t2, t3}, borrower, DefaultThresholds())
	if kinds(ms)[PatternSBS] {
		t.Errorf("SBS detected without symmetric amounts: %v", ms)
	}
}

func TestSBSVolatilityThreshold(t *testing.T) {
	wbtc := types.Token{Address: types.Address{0xBB}, Symbol: "WBTC", Decimals: 8}
	mk := func(pumpSell uint64) []types.Trade {
		return []types.Trade{
			{Kind: types.TradeSwap, Buyer: borrower, Seller: victim2,
				AmountSell: uint256.FromUint64(49100), TokenSell: ethT,
				AmountBuy: uint256.FromUint64(1000), TokenBuy: wbtc}, // 49.1
			{Kind: types.TradeSwap, Buyer: victim2, Seller: victim,
				AmountSell: uint256.FromUint64(pumpSell), TokenSell: ethT,
				AmountBuy: uint256.FromUint64(1000), TokenBuy: wbtc},
			{Kind: types.TradeSwap, Buyer: borrower, Seller: victim,
				AmountSell: uint256.FromUint64(1000), TokenSell: wbtc,
				AmountBuy: uint256.FromUint64(55000), TokenBuy: ethT}, // 55.0
		}
	}
	// Pump to 49.1 * 1.28 = 62.85: at threshold.
	ms := MatchPatterns(mk(62848), borrower, DefaultThresholds())
	if !kinds(ms)[PatternSBS] {
		t.Errorf("SBS at 28%% volatility not detected")
	}
	// Pump of only 10%: below threshold. (Sell rate must stay between.)
	ms = MatchPatterns(mk(56000), borrower, DefaultThresholds())
	if kinds(ms)[PatternSBS] {
		t.Errorf("SBS below volatility threshold detected")
	}
}

func TestMBSDetected(t *testing.T) {
	// Harvest shape: three profitable buy/sell rounds against one seller.
	trades := []types.Trade{
		buy(victim, 49977468, 51456280),
		sell(victim, 51456280, 50298684),
		buy(victim, 49977468, 51456280),
		sell(victim, 51456280, 50298684),
		buy(victim, 49977468, 51456280),
		sell(victim, 51456280, 50298684),
	}
	ms := MatchPatterns(trades, borrower, DefaultThresholds())
	if !kinds(ms)[PatternMBS] {
		t.Fatalf("MBS not detected: %v", ms)
	}
	for _, m := range ms {
		if m.Kind == PatternMBS {
			if m.Rounds != 3 || m.Counterparty != victim {
				t.Errorf("match = %+v", m)
			}
			// Harvest's famous tiny volatility: < 5%.
			if m.VolatilityPct <= 0 || m.VolatilityPct > 5 {
				t.Errorf("volatility = %f%%, want small", m.VolatilityPct)
			}
		}
	}
}

func TestMBSRequiresThreeProfitableRounds(t *testing.T) {
	trades := []types.Trade{
		buy(victim, 1000, 1030),
		sell(victim, 1030, 1010),
		buy(victim, 1000, 1030),
		sell(victim, 1030, 1010),
	}
	ms := MatchPatterns(trades, borrower, DefaultThresholds())
	if kinds(ms)[PatternMBS] {
		t.Errorf("MBS with 2 rounds detected: %v", ms)
	}
	// Unprofitable rounds never count, no matter how many.
	lossy := []types.Trade{
		buy(victim, 1000, 1000), sell(victim, 1000, 990),
		buy(victim, 1000, 1000), sell(victim, 1000, 990),
		buy(victim, 1000, 1000), sell(victim, 1000, 990),
		buy(victim, 1000, 1000), sell(victim, 1000, 990),
	}
	ms = MatchPatterns(lossy, borrower, DefaultThresholds())
	if kinds(ms)[PatternMBS] {
		t.Errorf("MBS with lossy rounds detected: %v", ms)
	}
}

func TestMBSRequiresSameSeller(t *testing.T) {
	other := types.AppTag("Sushi")
	trades := []types.Trade{
		buy(victim, 1000, 1030), sell(other, 1030, 1010),
		buy(victim, 1000, 1030), sell(other, 1030, 1010),
		buy(victim, 1000, 1030), sell(other, 1030, 1010),
	}
	ms := MatchPatterns(trades, borrower, DefaultThresholds())
	if kinds(ms)[PatternMBS] {
		t.Errorf("MBS across different sellers detected: %v", ms)
	}
}

func TestNoTagBorrowerMatchesNothing(t *testing.T) {
	trades := []types.Trade{
		buy(victim, 1000, 1030), sell(victim, 1030, 1010),
	}
	if ms := MatchPatterns(trades, types.NoTag(), DefaultThresholds()); len(ms) != 0 {
		t.Errorf("matches for untaggable borrower: %v", ms)
	}
}

func TestBenignTradesNoMatch(t *testing.T) {
	// A simple arbitrage: buy once, sell once, profit — none of the
	// patterns (no pump, one round, no batch).
	trades := []types.Trade{
		buy(victim, 1000, 1030),
		sell(victim2, 1030, 1020),
	}
	if ms := MatchPatterns(trades, borrower, DefaultThresholds()); len(ms) != 0 {
		t.Errorf("benign arb matched: %v", ms)
	}
}

func TestVolatilityFormula(t *testing.T) {
	// Two trades at rates 0.0038 and 0.009 ETH/sUSD: volatility ~136%.
	trades := []types.Trade{
		buy(victim, 38, 10000),
		buy(victim, 90, 10000),
	}
	got := tradeVolatilityPct(trades, susdT)
	if got < 130 || got > 142 {
		t.Errorf("volatility = %f, want ~136", got)
	}
	if v := tradeVolatilityPct(nil, susdT); v != 0 {
		t.Errorf("empty volatility = %f", v)
	}
}

func TestPatternKindString(t *testing.T) {
	if PatternKRP.String() != "KRP" || PatternSBS.String() != "SBS" || PatternMBS.String() != "MBS" {
		t.Error("pattern names wrong")
	}
	if PatternKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
