package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// ReportJSON is the wire form of a detection report, for the CLI's -json
// output and the HTTP monitor. Amounts are decimal strings (they exceed
// JSON-number precision).
type ReportJSON struct {
	TxHash                string      `json:"txHash"`
	Block                 uint64      `json:"block"`
	Time                  time.Time   `json:"time"`
	IsFlashLoanTx         bool        `json:"isFlashLoanTx"`
	IsAttack              bool        `json:"isAttack"`
	SuppressedByHeuristic bool        `json:"suppressedByHeuristic,omitempty"`
	Loans                 []LoanJSON  `json:"loans,omitempty"`
	BorrowerTags          []string    `json:"borrowerTags,omitempty"`
	Trades                []TradeJSON `json:"trades,omitempty"`
	Matches               []MatchJSON `json:"matches,omitempty"`
	Error                 string      `json:"error,omitempty"`
	ElapsedMicros         int64       `json:"elapsedMicros"`
}

// LoanJSON is one identified flash loan.
type LoanJSON struct {
	Provider string        `json:"provider"`
	Lender   types.Address `json:"lender"`
	Borrower types.Address `json:"borrower"`
	Token    types.Address `json:"token"`
	Amount   uint256.Int   `json:"amount"`
}

// TradeJSON is one identified trade.
type TradeJSON struct {
	Kind       string      `json:"kind"`
	Buyer      string      `json:"buyer"`
	Seller     string      `json:"seller"`
	AmountSell uint256.Int `json:"amountSell"`
	TokenSell  string      `json:"tokenSell"`
	AmountBuy  uint256.Int `json:"amountBuy"`
	TokenBuy   string      `json:"tokenBuy"`
}

// MatchJSON is one detected pattern instance.
type MatchJSON struct {
	Pattern       string  `json:"pattern"`
	Target        string  `json:"target"`
	Counterparty  string  `json:"counterparty"`
	Rounds        int     `json:"rounds"`
	Trades        int     `json:"trades"`
	VolatilityPct float64 `json:"volatilityPct"`
}

// JSON converts the report to its wire form.
func (r *Report) JSON() ReportJSON {
	out := ReportJSON{
		TxHash:                r.TxHash.String(),
		Block:                 r.Block,
		Time:                  r.Time,
		IsFlashLoanTx:         len(r.Loans) > 0,
		IsAttack:              r.IsAttack,
		SuppressedByHeuristic: r.SuppressedByHeuristic,
		Error:                 r.Error,
		ElapsedMicros:         r.Elapsed.Microseconds(),
	}
	for _, l := range r.Loans {
		out.Loans = append(out.Loans, LoanJSON{
			Provider: l.Provider.String(),
			Lender:   l.Lender,
			Borrower: l.Borrower,
			Token:    l.Token,
			Amount:   l.Amount,
		})
	}
	for _, tag := range r.BorrowerTags {
		out.BorrowerTags = append(out.BorrowerTags, tag.String())
	}
	for _, t := range r.Trades {
		out.Trades = append(out.Trades, TradeJSON{
			Kind:       t.Kind.String(),
			Buyer:      t.Buyer.String(),
			Seller:     t.Seller.String(),
			AmountSell: t.AmountSell,
			TokenSell:  t.TokenSell.Symbol,
			AmountBuy:  t.AmountBuy,
			TokenBuy:   t.TokenBuy.Symbol,
		})
	}
	for _, m := range r.Matches {
		out.Matches = append(out.Matches, MatchJSON{
			Pattern:       m.Kind.String(),
			Target:        m.Target.Symbol,
			Counterparty:  m.Counterparty.String(),
			Rounds:        m.Rounds,
			Trades:        len(m.Trades),
			VolatilityPct: m.VolatilityPct,
		})
	}
	return out
}

// MarshalJSON marshals the report via its wire form.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.JSON())
}

// DecodeReportJSON parses a report's wire form back into ReportJSON —
// the codec the archive uses to resurface stored verdicts. Decoding is
// strict: unknown fields mean the bytes are not a report this version
// wrote, and the caller should treat them as corruption, not data.
func DecodeReportJSON(data []byte) (*ReportJSON, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var out ReportJSON
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("report json: %w", err)
	}
	return &out, nil
}
