package core

import (
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Interned pattern matching.
//
// These are the hot-path twins of the matchers in patterns.go,
// operating on interned trades (integer tag/token ids) with
// arena-backed scratch instead of per-call maps and slices. They mirror
// the string matchers decision for decision — including matchKRP's
// run-persists-after-short-sell quirk and matchMBS's
// first-seller-in-first-buy-order winner rule — so materialized matches
// are byte-identical to the reference implementation
// (TestInternedPipelineMatchesReference pins this over a full corpus).
// Tag/token id equality is exactly the string forms' struct equality:
// the intern tables issue one id per distinct value.

// iMatch is a matched pattern before resolution: ids plus a region
// [lo:hi) of the arena's involvedBuf holding the involved trades.
type iMatch struct {
	kind         PatternKind
	target       types.TokenID
	counterparty types.TagID
	lo, hi       int
	rounds       int
	volatility   float64
}

// mbsState is matchMBSi's per-seller round counter, kept in a linear
// arena slice in first-buy order (the map + sellerOrder pair of the
// reference collapsed into one structure).
type mbsState struct {
	seller  types.TagID
	pending int // index of the pending buy trade, -1 when none
	rounds  int
}

func isBuyOfI(t *types.ITrade, borrower types.TagID, target types.TokenID) bool {
	return t.Buyer == borrower && t.TokenBuy == target
}

func isSellOfI(t *types.ITrade, borrower types.TagID, target types.TokenID) bool {
	return t.Buyer == borrower && t.TokenSell == target
}

// rateLessI mirrors rateLess: rate(a) < rate(b) by cross multiplication.
func rateLessI(a, b *types.ITrade) bool {
	return uint256.CmpProducts(a.AmountSell, b.AmountBuy, b.AmountSell, a.AmountBuy) < 0
}

// buyCheaperThanSellOfI mirrors buyCheaperThanSellOf.
func buyCheaperThanSellOfI(buy, sell *types.ITrade) bool {
	return uint256.CmpProducts(buy.AmountSell, sell.AmountSell, sell.AmountBuy, buy.AmountBuy) < 0
}

// volatilityAtLeastI mirrors volatilityAtLeast, including the float
// fallback for astronomic amounts.
func volatilityAtLeastI(lo, hi *types.ITrade, bps uint64) bool {
	left, err := hi.AmountSell.Mul(uint256.FromUint64(10_000))
	if err != nil {
		return hi.Rate() >= lo.Rate()*(1+float64(bps)/10_000)
	}
	right, err := lo.AmountSell.Mul(uint256.FromUint64(10_000 + bps))
	if err != nil {
		return hi.Rate() >= lo.Rate()*(1+float64(bps)/10_000)
	}
	return uint256.CmpProducts(left, lo.AmountBuy, right, hi.AmountBuy) >= 0
}

// tradeVolatilityPctI mirrors tradeVolatilityPct over interned trades;
// ITrade.Rate computes the same float64s, so the report numbers match
// bit for bit.
func tradeVolatilityPctI(trades []types.ITrade, target types.TokenID) float64 {
	minR, maxR := 0.0, 0.0
	first := true
	for i := range trades {
		t := &trades[i]
		var r float64
		switch {
		case t.TokenBuy == target:
			r = t.Rate()
		case t.TokenSell == target:
			r = t.InverseRate()
		default:
			continue
		}
		if r == 0 {
			continue
		}
		if first {
			minR, maxR = r, r
			first = false
			continue
		}
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if first || minR == 0 {
		return 0
	}
	return (maxR - minR) / minR * 100
}

// matchPatternsInterned runs all three matchers for one borrower,
// appending matches to a.imatches (involved trades go to
// a.involvedBuf). It mirrors MatchPatterns: candidate targets are the
// tokens the borrower bought, deduped in first-occurrence order.
func matchPatternsInterned(a *Arena, trades []types.ITrade, borrower types.TagID, th Thresholds) {
	if borrower.IsNone() {
		return
	}
	a.targets = a.targets[:0]
	for i := range trades {
		if trades[i].Buyer != borrower {
			continue
		}
		tok := trades[i].TokenBuy
		if !containsTokenID(a.targets, tok) {
			a.targets = append(a.targets, tok)
		}
	}
	for _, target := range a.targets {
		if m, ok := matchKRPi(a, trades, borrower, target, th); ok {
			a.imatches = append(a.imatches, m)
		}
		if m, ok := matchSBSi(a, trades, borrower, target, th); ok {
			a.imatches = append(a.imatches, m)
		}
		if m, ok := matchMBSi(a, trades, borrower, target, th); ok {
			a.imatches = append(a.imatches, m)
		}
	}
}

func containsTokenID(ids []types.TokenID, id types.TokenID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func containsTagID(ids []types.TagID, id types.TagID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// matchKRPi mirrors matchKRP with the run kept as trade indices in the
// arena. As in the reference, a sell that arrives before the run
// reaches KRPMinBuys leaves the run intact.
func matchKRPi(a *Arena, trades []types.ITrade, borrower types.TagID, target types.TokenID, th Thresholds) (iMatch, bool) {
	a.run = a.run[:0]
	var seller types.TagID
	for i := range trades {
		t := &trades[i]
		switch {
		case isBuyOfI(t, borrower, target):
			if len(a.run) == 0 {
				a.run = append(a.run, i)
				seller = t.Seller
				continue
			}
			if t.Seller == seller && rateLessI(&trades[a.run[len(a.run)-1]], t) {
				a.run = append(a.run, i)
				continue
			}
			// Run broken: restart from this buy.
			a.run = append(a.run[:0], i)
			seller = t.Seller
		case isSellOfI(t, borrower, target):
			if len(a.run) >= th.KRPMinBuys {
				lo := len(a.involvedBuf)
				for _, j := range a.run {
					a.involvedBuf = append(a.involvedBuf, trades[j])
				}
				a.involvedBuf = append(a.involvedBuf, *t)
				hi := len(a.involvedBuf)
				return iMatch{
					kind:         PatternKRP,
					target:       target,
					counterparty: seller,
					lo:           lo,
					hi:           hi,
					rounds:       len(a.run),
					volatility:   tradeVolatilityPctI(a.involvedBuf[lo:hi], target),
				}, true
			}
		}
	}
	return iMatch{}, false
}

// matchSBSi mirrors matchSBS.
func matchSBSi(a *Arena, trades []types.ITrade, borrower types.TagID, target types.TokenID, th Thresholds) (iMatch, bool) {
	for i := range trades {
		t1 := &trades[i]
		if !isBuyOfI(t1, borrower, target) {
			continue
		}
		for j := i + 1; j < len(trades); j++ {
			t2 := &trades[j]
			// The pump buy may be executed by anyone.
			if t2.TokenBuy != target {
				continue
			}
			if t2.Buyer == t1.Seller && t2.Seller == t1.Buyer {
				continue // the mirror of t1, not a pump
			}
			if !volatilityAtLeastI(t1, t2, th.SBSMinVolatilityBps) {
				continue
			}
			for k := j + 1; k < len(trades); k++ {
				t3 := &trades[k]
				if !isSellOfI(t3, borrower, target) {
					continue
				}
				// a) symmetric amounts.
				if !withinBps(t1.AmountBuy, t3.AmountSell, th.SBSAmountToleranceBps) {
					continue
				}
				// b) rate(t1) < sellRate(t3) < rate(t2).
				if !buyCheaperThanSellOfI(t1, t3) {
					continue
				}
				if uint256.CmpProducts(t3.AmountBuy, t2.AmountBuy, t2.AmountSell, t3.AmountSell) >= 0 {
					continue
				}
				lo := len(a.involvedBuf)
				a.involvedBuf = append(a.involvedBuf, *t1, *t2, *t3)
				hi := len(a.involvedBuf)
				return iMatch{
					kind:         PatternSBS,
					target:       target,
					counterparty: t1.Seller,
					lo:           lo,
					hi:           hi,
					rounds:       1,
					volatility:   tradeVolatilityPctI(a.involvedBuf[lo:hi], target),
				}, true
			}
		}
	}
	return iMatch{}, false
}

// matchMBSi mirrors matchMBS as two passes: the first counts profitable
// rounds per seller (sellers tracked in first-buy order, replacing the
// reference's map + order slice), the second replays only the winning
// seller to collect its involved trades. The winner is the first seller
// in first-buy order whose rounds reach the threshold — exactly the
// reference's selection rule.
func matchMBSi(a *Arena, trades []types.ITrade, borrower types.TagID, target types.TokenID, th Thresholds) (iMatch, bool) {
	a.mbs = a.mbs[:0]
	find := func(seller types.TagID) *mbsState {
		for i := range a.mbs {
			if a.mbs[i].seller == seller {
				return &a.mbs[i]
			}
		}
		return nil
	}
	for i := range trades {
		t := &trades[i]
		switch {
		case isBuyOfI(t, borrower, target):
			s := find(t.Seller)
			if s == nil {
				a.mbs = append(a.mbs, mbsState{seller: t.Seller, pending: -1})
				s = &a.mbs[len(a.mbs)-1]
			}
			s.pending = i
		case isSellOfI(t, borrower, target):
			s := find(t.Seller)
			if s == nil || s.pending < 0 {
				continue
			}
			// Condition b: the round is profitable.
			if buyCheaperThanSellOfI(&trades[s.pending], t) {
				s.rounds++
			}
			s.pending = -1
		}
	}
	for si := range a.mbs {
		if a.mbs[si].rounds < th.MBSMinRounds {
			continue
		}
		winner := a.mbs[si].seller
		rounds := a.mbs[si].rounds
		lo := len(a.involvedBuf)
		pending := -1
		for i := range trades {
			t := &trades[i]
			switch {
			case isBuyOfI(t, borrower, target) && t.Seller == winner:
				pending = i
			case isSellOfI(t, borrower, target) && t.Seller == winner:
				if pending < 0 {
					continue
				}
				if buyCheaperThanSellOfI(&trades[pending], t) {
					a.involvedBuf = append(a.involvedBuf, trades[pending], *t)
				}
				pending = -1
			}
		}
		hi := len(a.involvedBuf)
		return iMatch{
			kind:         PatternMBS,
			target:       target,
			counterparty: winner,
			lo:           lo,
			hi:           hi,
			rounds:       rounds,
			volatility:   tradeVolatilityPctI(a.involvedBuf[lo:hi], target),
		}, true
	}
	return iMatch{}, false
}
