package core

import (
	"leishen/internal/simplify"
	"leishen/internal/types"
)

// Scratch holds the reusable intermediate buffers of one detection
// pipeline run. Reports returned by InspectScratch own their data — the
// scratch only backs the stage-to-stage intermediates — so a long-running
// scanner that keeps one Scratch per goroutine inspects transactions
// without reallocating the pipeline's working state each time.
//
// The zero value is ready to use. A Scratch is not safe for concurrent
// use; give each worker its own.
type Scratch struct {
	transfers []types.Transfer
	tagged    []types.TaggedTransfer
	simp      simplify.Scratch
	trades    []types.Trade
}

// NewScratch returns an empty scratch.
func NewScratch() *Scratch { return &Scratch{} }

// Reset discards buffer contents, keeping capacity.
func (s *Scratch) Reset() {
	s.transfers = s.transfers[:0]
	s.tagged = s.tagged[:0]
	s.simp.Reset()
	s.trades = s.trades[:0]
}
