package core

import (
	"strings"
	"testing"
	"time"

	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/simplify"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
	"leishen/internal/vault"
)

// detectorFixture builds a minimal world where a labeled yield aggregator
// runs a flash-funded cross-pool rebalance that matches MBS.
type detectorFixture struct {
	ch       *evm.Chain
	reg      *token.Registry
	weth     types.Token
	usdc     types.Token
	usdt     types.Token
	operator types.Address
	strategy types.Address
	funding  types.Address
	poolA    types.Address
	poolB    types.Address
}

func newDetectorFixture(t *testing.T) *detectorFixture {
	t.Helper()
	ch := evm.NewChain(time.Date(2020, 10, 1, 0, 0, 0, 0, time.UTC))
	reg := token.NewRegistry()
	deployer := ch.NewEOA("deployer")
	f := &detectorFixture{ch: ch, reg: reg}
	var err error
	if f.weth, err = token.DeployWETH(ch, reg, deployer); err != nil {
		t.Fatal(err)
	}
	f.usdc = token.MustDeploy(ch, reg, deployer, "USDC", 6, "Circle: USDC")
	f.usdt = token.MustDeploy(ch, reg, deployer, "USDT", 6, "Tether: USDT")

	mkPair := func(a types.Token, amtA string, b types.Token, amtB string, label string) types.Address {
		p, err := dex.DeployPair(ch, reg, deployer, a, b, label)
		if err != nil {
			t.Fatal(err)
		}
		token.MustMint(ch, a, deployer, deployer, a.Units(amtA))
		token.MustMint(ch, b, deployer, deployer, b.Units(amtB))
		dex.MustAddLiquidity(ch, p, deployer, a, a.Units(amtA), b, b.Units(amtB))
		return p
	}
	f.funding = mkPair(f.usdc, "10000000", f.usdt, "10000000", "Uniswap: USDC-USDT Pool")
	f.poolA = mkPair(f.usdc, "2000000", f.usdt, "2000000", "SushiSwap: Pool A")
	f.poolB = mkPair(f.usdc, "2100000", f.usdt, "2000000", "SushiSwap: Pool B")

	f.operator = ch.NewEOA("Harvest: Deployer")
	strat, err := ch.Deploy(f.operator, &vault.YieldAggregator{WorkingToken: f.usdc}, "Harvest: Strategy")
	if err != nil {
		t.Fatal(err)
	}
	f.strategy = strat
	return f
}

// fireRebalance runs the flash-funded MBS-shaped rebalance.
func (f *detectorFixture) fireRebalance(t *testing.T) *evm.Receipt {
	t.Helper()
	if r := f.ch.Send(f.operator, f.strategy, "queueRebalance",
		f.poolA, f.poolB, f.usdt, f.usdc.Units("6000"), uint64(3)); !r.Success {
		t.Fatal(r.Err)
	}
	r := f.ch.Send(f.operator, f.strategy, "flashRebalance", f.funding, f.usdt, f.usdc.Units("30000"))
	if !r.Success {
		t.Fatalf("flashRebalance: %s", r.Err)
	}
	return r
}

func (f *detectorFixture) detector(opts Options) *Detector {
	if opts.Simplify == (simplify.Options{}) {
		opts.Simplify = simplify.Options{WETH: f.weth}
	}
	return NewDetector(f.ch, f.reg, opts)
}

func TestDetectorEndToEndMBS(t *testing.T) {
	f := newDetectorFixture(t)
	r := f.fireRebalance(t)
	det := f.detector(Options{})
	rep := det.Inspect(r)

	if len(rep.Loans) != 1 {
		t.Fatalf("loans = %v", rep.Loans)
	}
	if !rep.IsAttack || !rep.HasPattern(PatternMBS) {
		t.Fatalf("MBS not detected:\n%s", rep.Detail())
	}
	if rep.HasPattern(PatternKRP) || rep.HasPattern(PatternSBS) {
		t.Errorf("extra patterns:\n%s", rep.Detail())
	}
	if len(rep.BorrowerTags) != 1 || rep.BorrowerTags[0] != types.AppTag("Harvest") {
		t.Errorf("borrower tags = %v", rep.BorrowerTags)
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	if !strings.Contains(rep.Summary(), "flpAttack") {
		t.Errorf("summary = %s", rep.Summary())
	}
	if !strings.Contains(rep.Detail(), "trades:") {
		t.Error("detail lacks trades section")
	}
}

func TestDetectorHeuristicSuppressesAggregator(t *testing.T) {
	f := newDetectorFixture(t)
	r := f.fireRebalance(t)
	det := f.detector(Options{
		YieldAggregatorHeuristic: true,
		YieldAggregatorApps:      map[string]bool{"Harvest": true},
	})
	rep := det.Inspect(r)
	if rep.IsAttack {
		t.Fatalf("heuristic did not suppress:\n%s", rep.Detail())
	}
	if !rep.SuppressedByHeuristic {
		t.Error("suppression not flagged")
	}
	if !strings.Contains(rep.Summary(), "suppressed") {
		t.Errorf("summary = %s", rep.Summary())
	}
	// Heuristic with an unrelated app set does not suppress.
	det = f.detector(Options{
		YieldAggregatorHeuristic: true,
		YieldAggregatorApps:      map[string]bool{"Yearn": true},
	})
	if rep := det.Inspect(r); !rep.IsAttack {
		t.Error("suppressed a non-listed app")
	}
}

func TestDetectorNonFlashLoanTx(t *testing.T) {
	f := newDetectorFixture(t)
	// A plain token transfer transaction.
	holder := f.ch.NewEOA("")
	sender := f.ch.NewEOA("")
	r := f.ch.Send(sender, f.usdc.Address, "transfer", holder, uint256.Zero())
	det := f.detector(Options{})
	rep := det.Inspect(r)
	if len(rep.Loans) != 0 || rep.IsAttack {
		t.Errorf("rep = %+v", rep)
	}
	if len(rep.Transfers) != 0 {
		t.Error("pipeline ran on a non-flash-loan tx")
	}
	if !strings.Contains(rep.Summary(), "not a flash loan") {
		t.Errorf("summary = %s", rep.Summary())
	}
}

func TestDetectorExcludedLabels(t *testing.T) {
	f := newDetectorFixture(t)
	r := f.fireRebalance(t)
	// Excluding the operator's label demotes the borrower tag to a root
	// tag; detection still works (the trades carry the same root tag).
	det := f.detector(Options{ExcludedLabelAccounts: []types.Address{f.operator, f.strategy}})
	rep := det.Inspect(r)
	if len(rep.BorrowerTags) != 1 {
		t.Fatalf("tags = %v", rep.BorrowerTags)
	}
	if rep.BorrowerTags[0].IsApp() {
		t.Errorf("label exclusion ignored: %v", rep.BorrowerTags[0])
	}
	if !rep.IsAttack {
		t.Errorf("detection should not depend on the attacker's label:\n%s", rep.Detail())
	}
}

func TestDetectorThresholdOverrides(t *testing.T) {
	f := newDetectorFixture(t)
	r := f.fireRebalance(t)
	// Raising the MBS round requirement above 3 hides the attack.
	det := f.detector(Options{Thresholds: Thresholds{
		KRPMinBuys:            5,
		SBSMinVolatilityBps:   2800,
		SBSAmountToleranceBps: 10,
		MBSMinRounds:          4,
	}})
	if rep := det.Inspect(r); rep.IsAttack {
		t.Errorf("4-round MBS threshold should miss a 3-round attack:\n%s", rep.Detail())
	}
}
