// Package simplify converts tagged account-level asset transfers into
// application-level transfers by applying the paper's three rules
// (§V-B2):
//
//  1. remove intra-app transfers (tag_sender == tag_receiver);
//  2. remove WETH-related transfers (either party tagged "Wrapped Ether")
//     and unify the WETH token with ETH;
//  3. merge inter-app transfers: two consecutive transfers moving ~the
//     same amount of the same token through an intermediary collapse into
//     one transfer that names the true counterparties (aggregators charge
//     <0.1%, the paper's tolerance).
package simplify

import (
	"slices"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// WETHAppName is the application tag of the Wrapped Ether contract.
const WETHAppName = "Wrapped Ether"

// DefaultMergeToleranceBps is the paper's 0.1% amount tolerance for the
// inter-app merge rule, in basis points.
const DefaultMergeToleranceBps = 10

// Options configures simplification.
type Options struct {
	// WETH identifies the Wrapped Ether token to unify with ETH; the zero
	// token disables rule 2's token unification (tag-based removal still
	// applies).
	WETH types.Token
	// MergeToleranceBps overrides the 0.1% merge tolerance; 0 means the
	// default.
	MergeToleranceBps uint64
	// DisableIntraAppRule, DisableWETHRule and DisableMergeRule switch
	// individual rules off for ablation experiments.
	DisableIntraAppRule bool
	DisableWETHRule     bool
	DisableMergeRule    bool
}

func (o Options) tolerance() uint64 {
	if o.MergeToleranceBps == 0 {
		return DefaultMergeToleranceBps
	}
	return o.MergeToleranceBps
}

// Scratch holds the working buffers of one simplification run so
// steady-state scanning reuses them instead of reallocating per
// transaction. The zero value is ready to use. A Scratch is not safe for
// concurrent use; give each goroutine its own.
type Scratch struct {
	a, b []types.AppTransfer
}

// Reset discards the buffer contents, keeping capacity.
func (s *Scratch) Reset() {
	s.a, s.b = s.a[:0], s.b[:0]
}

// Simplify applies the three rules in order and returns application-level
// transfers in a freshly allocated slice.
func Simplify(transfers []types.TaggedTransfer, opts Options) []types.AppTransfer {
	var s Scratch
	res := SimplifyScratch(transfers, opts, &s)
	out := make([]types.AppTransfer, len(res))
	copy(out, res)
	return out
}

// SimplifyScratch is Simplify over caller-owned working buffers. The
// returned slice aliases the scratch and is only valid until the next
// call with the same Scratch; copy it out if it must be retained.
func SimplifyScratch(transfers []types.TaggedTransfer, opts Options, s *Scratch) []types.AppTransfer {
	s.Reset()
	out := slices.Grow(s.a, len(transfers))
	for _, tt := range transfers {
		// Rule 2a: drop transfers touching the Wrapped Ether contract.
		if !opts.DisableWETHRule && (isWETHTag(tt.SenderTag) || isWETHTag(tt.ReceiverTag)) {
			continue
		}
		tok := tt.Token
		// Rule 2b: unify WETH with ETH.
		if !opts.DisableWETHRule && !opts.WETH.Address.IsZero() && tok.Address == opts.WETH.Address {
			tok = types.ETH
		}
		at := types.AppTransfer{
			Seq:           tt.Seq,
			Sender:        tt.SenderTag,
			Receiver:      tt.ReceiverTag,
			FromBlackHole: tt.Sender.IsZero(),
			ToBlackHole:   tt.Receiver.IsZero(),
			Amount:        tt.Amount,
			Token:         tok,
		}
		// Rule 1: drop intra-app transfers. Mints and burns are kept even
		// when tags coincide — the BlackHole is not an application.
		if !opts.DisableIntraAppRule &&
			!at.FromBlackHole && !at.ToBlackHole &&
			sameParty(at.Sender, at.Receiver) {
			continue
		}
		out = append(out, at)
	}
	s.a = out
	if opts.DisableMergeRule {
		return out
	}
	// Rule 3: merge inter-app transfers to fixpoint (profits are laundered
	// through multi-level intermediaries, §VI-D2). The passes ping-pong
	// between the two scratch buffers instead of allocating per pass.
	spare := s.b
	for {
		merged, changed := mergeInto(spare[:0], out, opts.tolerance())
		out, spare = merged, out
		s.a, s.b = out, spare
		if !changed {
			return out
		}
	}
}

func isWETHTag(tag types.Tag) bool {
	return tag.Kind == types.TagApp && tag.Name == WETHAppName
}

// sameParty reports whether two tags denote the same application or the
// same unlabeled creation tree. Untaggable accounts never match anything:
// with conflicting labels there is no evidence the parties coincide.
func sameParty(a, b types.Tag) bool {
	if a.IsNone() || b.IsNone() {
		return false
	}
	return a == b
}

// mergeInto performs one left-to-right pass of the merge rule, appending
// the result to out (pass a recycled buffer's [:0] to avoid allocating).
func mergeInto(out, ts []types.AppTransfer, tolBps uint64) ([]types.AppTransfer, bool) {
	if len(ts) < 2 {
		return append(out, ts...), false
	}
	changed := false
	for i := 0; i < len(ts); i++ {
		if i+1 < len(ts) && mergeable(ts[i], ts[i+1], tolBps) {
			a, b := ts[i], ts[i+1]
			out = append(out, types.AppTransfer{
				Seq:           a.Seq,
				Sender:        a.Sender,
				Receiver:      b.Receiver,
				FromBlackHole: a.FromBlackHole,
				ToBlackHole:   b.ToBlackHole,
				// The receiving side's amount is what actually arrived at
				// the true counterparty.
				Amount: b.Amount,
				Token:  a.Token,
			})
			i++ // consume both
			changed = true
			continue
		}
		out = append(out, ts[i])
	}
	return out, changed
}

// mergeable implements the paper's condition: same token, ~same amount,
// and the first receiver is the second sender (the intermediary). Merging
// a transfer back to its own origin (A→B→A) is a round trip, not a
// forwarding, and is excluded; so are mint/burn legs.
func mergeable(a, b types.AppTransfer, tolBps uint64) bool {
	if a.Token.Address != b.Token.Address || a.Token.IsETH() != b.Token.IsETH() {
		return false
	}
	if a.ToBlackHole || b.FromBlackHole {
		return false
	}
	if !sameParty(a.Receiver, b.Sender) {
		return false
	}
	if sameParty(a.Sender, b.Receiver) {
		return false // round trip, not an intermediary hop
	}
	return withinTolerance(a.Amount, b.Amount, tolBps)
}

// withinTolerance reports |x-y| <= max(x,y) * tol.
func withinTolerance(x, y uint256.Int, tolBps uint64) bool {
	diff := x.AbsDiff(y)
	hi := x
	if y.Gt(x) {
		hi = y
	}
	bound := hi.MustMulDiv(uint256.FromUint64(tolBps), uint256.FromUint64(10_000))
	return diff.Lte(bound)
}
