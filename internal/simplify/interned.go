package simplify

import (
	"slices"

	"leishen/internal/types"
)

// InternedRules is the id-resolved form of Options: the detector
// resolves the directed tag and token once per configuration, so the
// per-transfer rule checks compare ids instead of strings.
type InternedRules struct {
	// WETHTag is the id of the Wrapped Ether application tag;
	// InvalidTagID when the WETH rule is disabled or no account carries
	// the tag (then rule 2a matches nothing, exactly as the string form
	// would).
	WETHTag types.TagID
	// WETHToken is the id of the Wrapped Ether token to unify with ETH;
	// InvalidTokenID disables rule 2b's unification.
	WETHToken types.TokenID
	// ToleranceBps is the resolved merge tolerance.
	ToleranceBps uint64
	// DisableIntraAppRule / DisableMergeRule mirror Options.
	DisableIntraAppRule bool
	DisableMergeRule    bool
}

// IScratch holds the ping-pong buffers of interned simplification.
// The zero value is ready to use; not safe for concurrent use.
type IScratch struct {
	A, B []types.ITransfer
}

// Reset discards buffer contents, keeping capacity.
func (s *IScratch) Reset() {
	s.A, s.B = s.A[:0], s.B[:0]
}

// SimplifyInterned applies the three §V-B2 rules over interned tuples,
// mirroring SimplifyScratch exactly: the returned slice aliases the
// scratch and is only valid until the next call with the same scratch.
func SimplifyInterned(transfers []types.ITransfer, r InternedRules, s *IScratch) []types.ITransfer {
	s.Reset()
	out := slices.Grow(s.A, len(transfers))
	for _, tt := range transfers {
		// Rule 2a: drop transfers touching the Wrapped Ether contract.
		if tt.SenderTag == r.WETHTag || tt.ReceiverTag == r.WETHTag {
			continue
		}
		at := tt
		// Rule 2b: unify WETH with ETH.
		if at.Token == r.WETHToken {
			at.Token = types.ETHTokenID
		}
		at.FromBlackHole = tt.Sender.IsZero()
		at.ToBlackHole = tt.Receiver.IsZero()
		// Rule 1: drop intra-app transfers. Mints and burns are kept even
		// when tags coincide — the BlackHole is not an application.
		if !r.DisableIntraAppRule &&
			!at.FromBlackHole && !at.ToBlackHole &&
			samePartyID(at.SenderTag, at.ReceiverTag) {
			continue
		}
		out = append(out, at)
	}
	s.A = out
	if r.DisableMergeRule {
		return out
	}
	// Rule 3: merge inter-app transfers to fixpoint, ping-ponging
	// between the two scratch buffers.
	spare := s.B
	for {
		merged, changed := mergeIntoInterned(spare[:0], out, r.ToleranceBps)
		out, spare = merged, out
		s.A, s.B = out, spare
		if !changed {
			return out
		}
	}
}

// samePartyID mirrors sameParty: untaggable accounts (NoTagID) never
// match anything.
func samePartyID(a, b types.TagID) bool {
	return a != types.NoTagID && a == b
}

// mergeIntoInterned performs one left-to-right pass of the merge rule.
func mergeIntoInterned(out, ts []types.ITransfer, tolBps uint64) ([]types.ITransfer, bool) {
	if len(ts) < 2 {
		return append(out, ts...), false
	}
	changed := false
	for i := 0; i < len(ts); i++ {
		if i+1 < len(ts) && mergeableInterned(&ts[i], &ts[i+1], tolBps) {
			a, b := &ts[i], &ts[i+1]
			m := *a
			m.ReceiverTag = b.ReceiverTag
			m.Receiver = b.Receiver
			m.ToBlackHole = b.ToBlackHole
			// The receiving side's amount is what actually arrived at
			// the true counterparty.
			m.Amount = b.Amount
			out = append(out, m)
			i++ // consume both
			changed = true
			continue
		}
		out = append(out, ts[i])
	}
	return out, changed
}

// mergeableInterned mirrors mergeable: same token, ~same amount, first
// receiver is the second sender, no round trips, no mint/burn legs.
// Token id equality is exactly the string form's address+IsETH check.
func mergeableInterned(a, b *types.ITransfer, tolBps uint64) bool {
	if a.Token != b.Token {
		return false
	}
	if a.ToBlackHole || b.FromBlackHole {
		return false
	}
	if !samePartyID(a.ReceiverTag, b.SenderTag) {
		return false
	}
	if samePartyID(a.SenderTag, b.ReceiverTag) {
		return false // round trip, not an intermediary hop
	}
	return withinTolerance(a.Amount, b.Amount, tolBps)
}

// ResolveRules builds the interned rule set from Options given the two
// id lookups (the detector passes the tagger's and interner's). Lookup
// misses disable the corresponding rule just as the string comparisons
// would never have matched.
func ResolveRules(opts Options, tagID func(types.Tag) (types.TagID, bool), tokenID func(types.Address) types.TokenID) InternedRules {
	r := InternedRules{
		WETHTag:             types.InvalidTagID,
		WETHToken:           types.InvalidTokenID,
		ToleranceBps:        opts.tolerance(),
		DisableIntraAppRule: opts.DisableIntraAppRule,
		DisableMergeRule:    opts.DisableMergeRule,
	}
	if !opts.DisableWETHRule {
		if id, ok := tagID(types.AppTag(WETHAppName)); ok {
			r.WETHTag = id
		}
		if !opts.WETH.Address.IsZero() {
			r.WETHToken = tokenID(opts.WETH.Address)
		}
	}
	return r
}
