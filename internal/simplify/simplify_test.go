package simplify

import (
	"testing"
	"testing/quick"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

var (
	wethTok = types.Token{Address: types.Address{0xEE}, Symbol: "WETH", Decimals: 18}
	wbtcTok = types.Token{Address: types.Address{0xBB}, Symbol: "WBTC", Decimals: 8}
)

func tt(seq uint64, sender, receiver types.Address, sTag, rTag types.Tag, amount uint64, tok types.Token) types.TaggedTransfer {
	return types.TaggedTransfer{
		Seq: seq, Sender: sender, Receiver: receiver,
		SenderTag: sTag, ReceiverTag: rTag,
		Amount: uint256.FromUint64(amount), Token: tok,
	}
}

var (
	addrA = types.Address{1}
	addrB = types.Address{2}
	addrC = types.Address{3}
	tagA  = types.AppTag("Alpha")
	tagB  = types.AppTag("Beta")
	tagC  = types.AppTag("Gamma")
)

func TestIntraAppRemoved(t *testing.T) {
	in := []types.TaggedTransfer{
		tt(0, addrA, addrB, tagA, tagA, 100, wbtcTok), // intra-app: removed
		tt(1, addrA, addrB, tagA, tagB, 100, wbtcTok), // kept
	}
	out := Simplify(in, Options{})
	if len(out) != 1 || out[0].Seq != 1 {
		t.Errorf("out = %v", out)
	}
	// Rule disabled keeps both.
	out = Simplify(in, Options{DisableIntraAppRule: true, DisableMergeRule: true})
	if len(out) != 2 {
		t.Errorf("disabled rule: out = %v", out)
	}
}

func TestIntraAppKeepsMintsAndUnknowns(t *testing.T) {
	in := []types.TaggedTransfer{
		// Mint: BlackHole sender; tags both RootTag(zero): must survive.
		tt(0, types.ZeroAddress, addrA, types.RootTag(types.ZeroAddress), types.RootTag(types.ZeroAddress), 5, wbtcTok),
		// Untaggable pair: kept (no evidence they are the same app).
		tt(1, addrA, addrB, types.NoTag(), types.NoTag(), 5, wbtcTok),
	}
	out := Simplify(in, Options{})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if !out[0].FromBlackHole {
		t.Error("mint flag lost")
	}
}

func TestWETHRule(t *testing.T) {
	wethTag := types.AppTag(WETHAppName)
	in := []types.TaggedTransfer{
		tt(0, addrA, addrB, tagA, wethTag, 100, types.ETH), // wrap leg: removed
		tt(1, addrB, addrA, wethTag, tagA, 100, wethTok),   // mint leg: removed
		tt(2, addrA, addrC, tagA, tagB, 100, wethTok),      // WETH payment: kept, unified to ETH
		tt(3, addrC, addrA, tagB, tagA, 50, wbtcTok),       // untouched
	}
	out := Simplify(in, Options{WETH: wethTok, DisableMergeRule: true})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if !out[0].Token.IsETH() {
		t.Errorf("WETH not unified: %v", out[0].Token)
	}
	if out[1].Token.Address != wbtcTok.Address {
		t.Errorf("unexpected second transfer: %v", out[1])
	}
	// Disabled: all four survive, WETH stays WETH.
	out = Simplify(in, Options{WETH: wethTok, DisableWETHRule: true, DisableMergeRule: true})
	if len(out) != 4 || out[2].Token.Address != wethTok.Address {
		t.Errorf("disabled rule: %v", out)
	}
}

func TestMergeInterApp(t *testing.T) {
	// A -> B (intermediary) -> C with a 0.05% fee: merge into A -> C.
	in := []types.TaggedTransfer{
		tt(0, addrA, addrB, tagA, tagB, 100000, wbtcTok),
		tt(1, addrB, addrC, tagB, tagC, 99950, wbtcTok),
	}
	out := Simplify(in, Options{})
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	m := out[0]
	if m.Sender != tagA || m.Receiver != tagC {
		t.Errorf("merged parties = %s -> %s", m.Sender, m.Receiver)
	}
	// The received amount is what arrived at the true counterparty.
	if m.Amount.Uint64() != 99950 {
		t.Errorf("merged amount = %s", m.Amount)
	}
}

func TestMergeToleranceBoundary(t *testing.T) {
	mk := func(second uint64) []types.TaggedTransfer {
		return []types.TaggedTransfer{
			tt(0, addrA, addrB, tagA, tagB, 100000, wbtcTok),
			tt(1, addrB, addrC, tagB, tagC, second, wbtcTok),
		}
	}
	// Exactly 0.1% difference merges.
	if out := Simplify(mk(99900), Options{}); len(out) != 1 {
		t.Errorf("0.1%% diff did not merge: %v", out)
	}
	// Beyond 0.1% does not.
	if out := Simplify(mk(99899), Options{}); len(out) != 2 {
		t.Errorf("0.11%% diff merged: %v", out)
	}
	// Custom tolerance.
	if out := Simplify(mk(99000), Options{MergeToleranceBps: 100}); len(out) != 1 {
		t.Errorf("1%% tolerance did not merge: %v", out)
	}
}

func TestMergeMultiLevelIntermediaries(t *testing.T) {
	// Money laundering through two intermediaries: A -> B -> C -> D.
	tagD := types.AppTag("Delta")
	in := []types.TaggedTransfer{
		tt(0, addrA, addrB, tagA, tagB, 1000, wbtcTok),
		tt(1, addrB, addrC, tagB, tagC, 1000, wbtcTok),
		tt(2, addrC, addrA, tagC, tagD, 1000, wbtcTok),
	}
	out := Simplify(in, Options{})
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Sender != tagA || out[0].Receiver != tagD {
		t.Errorf("fixpoint merge = %s -> %s", out[0].Sender, out[0].Receiver)
	}
}

func TestMergeRejectsRoundTripAndMismatches(t *testing.T) {
	cases := map[string][]types.TaggedTransfer{
		"different token": {
			tt(0, addrA, addrB, tagA, tagB, 1000, wbtcTok),
			tt(1, addrB, addrC, tagB, tagC, 1000, wethTok),
		},
		"different amounts": {
			tt(0, addrA, addrB, tagA, tagB, 1000, wbtcTok),
			tt(1, addrB, addrC, tagB, tagC, 500, wbtcTok),
		},
		"no shared intermediary": {
			tt(0, addrA, addrB, tagA, tagB, 1000, wbtcTok),
			tt(1, addrC, addrA, tagC, tagA, 1000, wbtcTok),
		},
		"round trip A->B->A": {
			tt(0, addrA, addrB, tagA, tagB, 1000, wbtcTok),
			tt(1, addrB, addrA, tagB, tagA, 1000, wbtcTok),
		},
	}
	for name, in := range cases {
		if out := Simplify(in, Options{}); len(out) != 2 {
			t.Errorf("%s: merged unexpectedly: %v", name, out)
		}
	}
}

func TestMergeDisabled(t *testing.T) {
	in := []types.TaggedTransfer{
		tt(0, addrA, addrB, tagA, tagB, 1000, wbtcTok),
		tt(1, addrB, addrC, tagB, tagC, 1000, wbtcTok),
	}
	if out := Simplify(in, Options{DisableMergeRule: true}); len(out) != 2 {
		t.Errorf("merge ran while disabled: %v", out)
	}
}

func TestWithinTolerance(t *testing.T) {
	if !withinTolerance(uint256.FromUint64(0), uint256.FromUint64(0), 10) {
		t.Error("0 vs 0 should be within tolerance")
	}
	if withinTolerance(uint256.FromUint64(0), uint256.FromUint64(1), 10) {
		t.Error("0 vs 1 within 0.1%")
	}
	// No overflow near Max.
	if !withinTolerance(uint256.Max(), uint256.Max(), 10) {
		t.Error("Max vs Max")
	}
}

// Property: simplification never increases transfer count and preserves
// happened-before ordering.
func TestQuickSimplifyOrderAndSize(t *testing.T) {
	tags := []types.Tag{tagA, tagB, tagC, types.NoTag()}
	toks := []types.Token{wbtcTok, wethTok}
	f := func(raw []uint16) bool {
		var in []types.TaggedTransfer
		for i, r := range raw {
			if i >= 24 {
				break
			}
			in = append(in, tt(uint64(i),
				types.Address{byte(r % 5)}, types.Address{byte((r >> 3) % 5)},
				tags[int(r)%len(tags)], tags[int(r>>2)%len(tags)],
				uint64(r%1000)+1, toks[int(r>>5)%len(toks)]))
		}
		out := Simplify(in, Options{WETH: wethTok})
		if len(out) > len(in) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].Seq > out[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
