package eval

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/simplify"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDetailGolden pins the exact text of Report.Detail() for the
// Harvest Finance reproduction. The detail report is user-facing CLI
// output and feeds incident write-ups; any change to its wording or to
// the pipeline's intermediate counts must show up as a reviewed golden
// diff, not silently. Regenerate with:
//
//	go test ./internal/eval/ -run TestDetailGolden -update
func TestDetailGolden(t *testing.T) {
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	frozen := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: res.Env.WETH},
		Clock:    func() time.Time { return frozen },
	})
	got := det.Inspect(res.Receipt).Detail()

	golden := filepath.Join("testdata", "harvest_detail.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("Detail() diverged from %s (run with -update and review the diff):\n got:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
