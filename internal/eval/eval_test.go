package eval

import (
	"testing"

	"leishen/internal/world"
)

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Name == "" || r.Patterns == "" {
			t.Errorf("incomplete row: %+v", r)
		}
		if r.MeasuredPct < 0 {
			t.Errorf("%s: negative volatility", r.Name)
		}
	}
	// The Harvest row reproduces the paper's tiny-volatility point.
	for _, r := range rows {
		if r.Name == "Harvest Finance" {
			if r.MeasuredPct <= 0 || r.MeasuredPct > 2 {
				t.Errorf("Harvest volatility = %.3f%%, want <2%% (paper 0.5%%)", r.MeasuredPct)
			}
		}
	}
}

func TestRunTable4MatchesPaperProfile(t *testing.T) {
	rows, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	var dfr, exp, ls int
	for _, r := range rows {
		if r.DeFiRanger != r.WantDFR {
			t.Errorf("%s: DeFiRanger = %v, want %v", r.Name, r.DeFiRanger, r.WantDFR)
		}
		if r.Explorer != r.WantExp {
			t.Errorf("%s: Explorer = %v, want %v", r.Name, r.Explorer, r.WantExp)
		}
		if r.LeiShen != r.WantLS {
			t.Errorf("%s: LeiShen = %v, want %v", r.Name, r.LeiShen, r.WantLS)
		}
		if r.DeFiRanger {
			dfr++
		}
		if r.Explorer {
			exp++
		}
		if r.LeiShen {
			ls++
		}
	}
	if dfr != 9 || exp != 4 || ls != 15 {
		t.Errorf("totals DFR=%d EXP=%d LS=%d, want 9/4/15", dfr, exp, ls)
	}
}

func TestEvalCorpusTables(t *testing.T) {
	c, err := world.Generate(world.Config{Seed: 11, ScalePct: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := EvalCorpus(c)

	// Table V exact regardless of seed and scale.
	want := map[string][3]int{ // pattern -> {N, TP, FP}
		"KRP": {21, 21, 0},
		"SBS": {79, 68, 11},
		"MBS": {107, 60, 47},
	}
	for _, row := range res.TableV.Rows {
		w := want[row.Pattern]
		if row.N != w[0] || row.TP != w[1] || row.FP != w[2] {
			t.Errorf("%s = %+v, want %v", row.Pattern, row, w)
		}
	}
	if res.TableV.Overall.N != 180 || res.TableV.Overall.TP != 142 {
		t.Errorf("overall = %+v", res.TableV.Overall)
	}
	if res.TableVHeuristic.N >= 107 {
		t.Errorf("heuristic row did not suppress anything: %+v", res.TableVHeuristic)
	}

	// Table VI top three rows are the paper's.
	if len(res.TableVI) < 3 {
		t.Fatalf("TableVI rows = %d", len(res.TableVI))
	}
	top := res.TableVI[0]
	if top.App != "Balancer" || top.Attacks != 31 || top.Attackers != 5 || top.Contracts != 14 || top.Assets != 13 {
		t.Errorf("Balancer row = %+v", top)
	}

	// Table VII: heavy tail over at least three orders of magnitude.
	if res.TableVII.Min <= 0 || res.TableVII.Max/res.TableVII.Min < 1000 {
		t.Errorf("profit spread = [%f, %f]", res.TableVII.Min, res.TableVII.Max)
	}

	// Fig. 8 sums to 109 unknown attacks, none before June 2020.
	total := 0
	for _, k := range res.Fig8.Keys {
		total += res.Fig8.Counts[k]
		if k < "2020-06" {
			t.Errorf("unknown attack before Jun 2020: %s", k)
		}
	}
	if total != 109 {
		t.Errorf("Fig8 total = %d, want 109", total)
	}

	// Fig. 1: Uniswap dominates the corpus (paper: 208k of 273k).
	if res.PerProvider["Uniswap"] <= res.PerProvider["AAVE"]+res.PerProvider["dYdX"] {
		t.Errorf("provider split = %v; Uniswap should dominate", res.PerProvider)
	}
	if res.Perf.Count != len(c.Receipts) || res.Perf.MeanMicros <= 0 {
		t.Errorf("perf = %+v", res.Perf)
	}
}

// TestVolatilityBands pins the paper's central discriminating claim: the
// vault-based MBS attacks move prices by a few percent at most while the
// KRP/SBS pump attacks move them far beyond the 28% SBS bar — which is
// why a volatility threshold cannot replace pattern matching.
func TestVolatilityBands(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	lowBand := []string{"Harvest Finance", "Belt Finance", "PancakeHunny"}
	for _, name := range lowBand {
		if v := byName[name].MeasuredPct; v <= 0 || v >= 10 {
			t.Errorf("%s volatility = %.2f%%, want < 10%%", name, v)
		}
	}
	highBand := []string{"bZx-1", "bZx-2", "Cheese Bank", "Spartan Protocol", "AutoShark-3", "Ploutoz Finance"}
	for _, name := range highBand {
		if v := byName[name].MeasuredPct; v < 28 {
			t.Errorf("%s volatility = %.2f%%, want >= 28%%", name, v)
		}
	}
}
