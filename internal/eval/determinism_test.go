package eval

import (
	"encoding/json"
	"testing"
	"time"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/simplify"
)

// TestReportDeterminism runs the same attack transaction through two
// independently built detectors and demands byte-identical reports — the
// property the detorder gate protects. The injected clock removes the
// one legitimately nondeterministic field (Elapsed).
func TestReportDeterminism(t *testing.T) {
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	tick := time.Date(2020, 10, 26, 0, 0, 0, 0, time.UTC)
	inspect := func() []byte {
		det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
			Simplify: simplify.Options{WETH: res.Env.WETH},
			Clock:    func() time.Time { return tick },
		})
		rep := det.Inspect(res.Receipt)
		out, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Elapsed != 0 {
			t.Fatalf("frozen clock still measured %v", rep.Elapsed)
		}
		return append(out, []byte(rep.Detail())...)
	}
	a, b := inspect(), inspect()
	if string(a) != string(b) {
		t.Errorf("reports differ across runs:\n%s\n---\n%s", a, b)
	}
}
