// Package eval runs the paper's evaluation experiments end to end and
// returns the tables and series of §VI. It is shared by cmd/evalgen (the
// human-readable regeneration harness) and the benchmark suite.
package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"leishen/internal/attacks"
	"leishen/internal/baselines"
	"leishen/internal/core"
	"leishen/internal/pricing"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/stats"
	"leishen/internal/world"
)

// Table1Row is one known attack's row of paper Table I: measured price
// volatility and the patterns it conforms to.
type Table1Row struct {
	ID                 int
	Name               string
	Patterns           string
	PaperVolatilityPct float64
	MeasuredPct        float64
	PrimaryPair        string
	ProfitHuman        string
}

// RunTable1 executes all 22 scenarios and measures their volatility.
func RunTable1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, sc := range attacks.All() {
		res, err := sc.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
			Simplify: simplify.Options{WETH: res.Env.WETH},
		})
		rep := det.Inspect(res.Receipt)
		pair, vol := dominantVolatility(rep)
		var pats []string
		for _, p := range sc.Patterns {
			pats = append(pats, p.String())
		}
		label := strings.Join(pats, "+")
		if label == "" {
			label = "-"
		}
		rows = append(rows, Table1Row{
			ID: sc.ID, Name: sc.Name, Patterns: label,
			PaperVolatilityPct: sc.PaperVolatilityPct,
			MeasuredPct:        vol, PrimaryPair: pair,
			ProfitHuman: res.ProfitToken.Format(res.Profit),
		})
	}
	return rows, nil
}

// dominantVolatility returns the pair with the largest measured price
// volatility in the transaction's trades.
func dominantVolatility(rep *core.Report) (string, float64) {
	vols := baselines.SortedPairVolatilities(rep.Trades)
	if len(vols) == 0 || vols[0].VolatilityPct <= 0 {
		return "-", 0
	}
	return vols[0].Pair, vols[0].VolatilityPct
}

// Table4Row is one known attack's row of paper Table IV.
type Table4Row struct {
	ID                            int
	Name                          string
	DeFiRanger, Explorer, LeiShen bool
	WantDFR, WantExp, WantLS      bool
}

// RunTable4 runs the three detectors over all 22 known attacks.
func RunTable4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, sc := range attacks.All() {
		res, err := sc.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		ls := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{
			Simplify: simplify.Options{WETH: res.Env.WETH},
		})
		dfr := baselines.NewDeFiRanger(res.Env.Registry, res.Env.WETH)
		exp := baselines.NewExplorer(res.Env.Chain, res.Env.Registry, core.Thresholds{})
		rows = append(rows, Table4Row{
			ID: sc.ID, Name: sc.Name,
			DeFiRanger: dfr.Detect(res.Receipt),
			Explorer:   len(exp.Detect(res.Receipt)) > 0,
			LeiShen:    ls.Inspect(res.Receipt).IsAttack,
			WantDFR:    sc.DeFiRanger, WantExp: sc.Explorer, WantLS: sc.LeiShen,
		})
	}
	return rows, nil
}

// CorpusEval bundles every corpus-derived experiment result.
type CorpusEval struct {
	// TableV is the per-pattern precision table (paper Table V).
	TableV stats.PrecisionTable
	// TableVHeuristic is the MBS row with the §VI-C heuristic enabled.
	TableVHeuristic stats.PrecisionRow
	// TableVI is the top attacked applications (paper Table VI).
	TableVI []stats.AppRow
	// TableVII is the profit summary over analyzed unknown attacks.
	TableVII stats.ProfitSummary
	// Fig1 is the weekly flash loan counts per provider.
	Fig1 stats.MultiSeries
	// Fig8 is the monthly count of detected unknown attacks.
	Fig8 stats.Series
	// Perf is the detection latency distribution.
	Perf PerfStats
	// FlashLoanTxs is the corpus size; PerProvider its split.
	FlashLoanTxs int
	PerProvider  map[string]int
}

// PerfStats summarizes per-transaction detection latency (§VI-A reports a
// 10 ms mean and 16 ms p75 on the authors' hardware).
type PerfStats struct {
	MeanMicros float64
	P50Micros  float64
	P75Micros  float64
	P99Micros  float64
	Count      int
}

// EvalCorpus runs LeiShen over a generated corpus and assembles every
// table and figure, scanning on a GOMAXPROCS-sized worker pool.
func EvalCorpus(c *world.Corpus) CorpusEval {
	return EvalCorpusWorkers(c, 0)
}

// EvalCorpusWorkers is EvalCorpus with an explicit scan pool size
// (workers <= 0 means GOMAXPROCS). The detection passes run on the
// parallel engine; the engine's ordered output makes every table and
// figure identical for any worker count.
func EvalCorpusWorkers(c *world.Corpus, workers int) CorpusEval {
	det := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify: simplify.Options{WETH: c.Env.WETH},
	})
	detH := core.NewDetector(c.Env.Chain, c.Env.Registry, core.Options{
		Simplify:                 simplify.Options{WETH: c.Env.WETH},
		YieldAggregatorHeuristic: true,
		YieldAggregatorApps:      world.AggregatorApps,
	})
	scanOpts := scan.Options{Workers: workers}
	reports, _ := scan.Scan(det, c.Receipts, scanOpts)
	reportsH, _ := scan.Scan(detH, c.Receipts, scanOpts)

	type counts struct{ n, tp int }
	perPattern := map[core.PatternKind]*counts{
		core.PatternKRP: {}, core.PatternSBS: {}, core.PatternMBS: {},
	}
	heurMBS := &counts{}
	detected, trueDetected := 0, 0
	var latencies []time.Duration
	var fig1 []stats.TimedName
	var fig8Times []time.Time
	var metas []stats.AttackMeta
	type profitRec struct {
		usd   float64
		yield float64
		when  time.Time
	}
	var profits []profitRec
	prices := pricing.NewDefaultTable()
	perProvider := make(map[string]int)

	for i, r := range c.Receipts {
		truth := c.Truth[r.TxHash]
		fig1 = append(fig1, stats.TimedName{Time: truth.Time, Name: truth.Provider.String()})
		perProvider[truth.Provider.String()]++

		rep := reports[i]
		latencies = append(latencies, rep.Elapsed)
		if rep.IsAttack {
			detected++
			got := map[core.PatternKind]bool{}
			for _, m := range rep.Matches {
				got[m.Kind] = true
			}
			truePat := map[core.PatternKind]bool{}
			for _, p := range truth.TruePatterns {
				truePat[p] = true
			}
			if truth.Kind == world.KindAttack {
				trueDetected++
			}
			for kind := range got {
				pc := perPattern[kind]
				pc.n++
				if truth.Kind == world.KindAttack && truePat[kind] {
					pc.tp++
				}
			}
			// Unknown-attack analyses (Fig. 8, Tables VI and VII).
			if truth.Kind == world.KindAttack && !truth.Known && !truth.Repeat {
				fig8Times = append(fig8Times, truth.Time)
				metas = append(metas, stats.AttackMeta{
					App:      truth.App,
					Attacker: truth.Attacker.String(),
					Contract: truth.Contract.String(),
					Asset:    truth.Asset,
				})
				profitUSD := prices.ValueUSD(truth.ProfitToken, truth.Profit, truth.Time)
				borrowedUSD := prices.ValueUSD(truth.BorrowToken, truth.Borrowed, truth.Time)
				profits = append(profits, profitRec{
					usd:   profitUSD,
					yield: pricing.YieldRatePct(profitUSD, borrowedUSD),
					when:  truth.Time,
				})
			}
		}
		// Heuristic pass for the Table V extension row.
		repH := reportsH[i]
		if repH.IsAttack && repH.HasPattern(core.PatternMBS) {
			heurMBS.n++
			if truth.Kind == world.KindAttack {
				for _, p := range truth.TruePatterns {
					if p == core.PatternMBS {
						heurMBS.tp++
					}
				}
			}
		}
	}

	out := CorpusEval{
		FlashLoanTxs: len(c.Receipts),
		PerProvider:  perProvider,
	}
	mk := func(name string, k core.PatternKind) stats.PrecisionRow {
		pc := perPattern[k]
		return stats.PrecisionRow{Pattern: name, N: pc.n, TP: pc.tp, FP: pc.n - pc.tp}
	}
	out.TableV = stats.PrecisionTable{
		Rows: []stats.PrecisionRow{
			mk("KRP", core.PatternKRP),
			mk("SBS", core.PatternSBS),
			mk("MBS", core.PatternMBS),
		},
		Overall: stats.PrecisionRow{Pattern: "overall", N: detected, TP: trueDetected, FP: detected - trueDetected},
	}
	out.TableVHeuristic = stats.PrecisionRow{
		Pattern: "MBS+heur", N: heurMBS.n, TP: heurMBS.tp, FP: heurMBS.n - heurMBS.tp,
	}
	out.TableVI = stats.TopApps(metas)
	out.Fig1 = stats.BucketBy(fig1, stats.WeekKey)
	out.Fig8 = stats.Bucket(fig8Times, stats.MonthKey)

	// Table VII analyzes 97 of the unknown attacks (the paper sets 12
	// aside); we exclude the 12 most recent for the same effect.
	sort.Slice(profits, func(i, j int) bool { return profits[i].when.Before(profits[j].when) })
	analyzed := profits
	if len(analyzed) > 97 {
		analyzed = analyzed[:97]
	}
	usd := make([]float64, len(analyzed))
	yields := make([]float64, len(analyzed))
	for i, p := range analyzed {
		usd[i] = p.usd
		yields[i] = p.yield
	}
	out.TableVII = stats.Summarize(usd, yields)
	out.Perf = perfStats(latencies)
	return out
}

func perfStats(ls []time.Duration) PerfStats {
	if len(ls) == 0 {
		return PerfStats{}
	}
	sorted := append([]time.Duration(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	at := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx].Microseconds())
	}
	return PerfStats{
		MeanMicros: float64(total.Microseconds()) / float64(len(sorted)),
		P50Micros:  at(0.50),
		P75Micros:  at(0.75),
		P99Micros:  at(0.99),
		Count:      len(sorted),
	}
}
