package vfs

import (
	"bytes"
	"errors"
	"io"
	gofs "io/fs"
	"os"
	"syscall"
	"testing"
)

// TestMemFSDurability pins the crash model: bytes written but not
// synced live only in the volatile view, a Sync pins them durably, and
// a directory entry survives a crash only after SyncDir on its parent.
func TestMemFSDurability(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	f, err := m.OpenFile("d/a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}

	s := m.Snapshot()
	if got := s.Volatile["d/a"]; !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("volatile = %q, want hello", got)
	}
	if _, ok := s.Durable["d/a"]; ok {
		t.Fatalf("unsynced entry must not be durable")
	}

	// File content synced, but the directory entry still volatile: the
	// name itself is lost at a crash.
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s = m.Snapshot()
	if _, ok := s.Durable["d/a"]; ok {
		t.Fatalf("entry durable before SyncDir")
	}

	if err := m.SyncDir("d"); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	s = m.Snapshot()
	if got := s.Durable["d/a"]; !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("durable = %q, want hello", got)
	}

	// Bytes appended after the sync stay volatile until the next Sync.
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s = m.Snapshot()
	if got := s.Durable["d/a"]; !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("durable after unsynced append = %q, want hello", got)
	}
	if got := s.Volatile["d/a"]; !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("volatile = %q, want hello world", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := m.Snapshot().Durable["d/a"]; !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("durable after sync = %q", got)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); !errors.Is(err, gofs.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestMemFSRename pins the rename model: the new name is volatile until
// SyncDir, and the durable content tracks the file, not the name.
func TestMemFSRename(t *testing.T) {
	m := NewMemFSFromFiles([]string{"d"}, map[string][]byte{"d/tmp": []byte("x")})
	if err := m.Rename("d/tmp", "d/final"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	s := m.Snapshot()
	if _, ok := s.Volatile["d/tmp"]; ok {
		t.Fatalf("old name survived rename")
	}
	if _, ok := s.Durable["d/final"]; ok {
		t.Fatalf("renamed-in entry durable before SyncDir")
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if got := m.Snapshot().Durable["d/final"]; !bytes.Equal(got, []byte("x")) {
		t.Fatalf("durable = %q, want x", got)
	}
}

// TestMemFSWriteFileKeepsOldDurable: an unsynced whole-file rewrite
// must not clobber the previous durable image.
func TestMemFSWriteFileKeepsOldDurable(t *testing.T) {
	m := NewMemFSFromFiles([]string{"d"}, map[string][]byte{"d/a": []byte("old")})
	if err := m.WriteFile("d/a", []byte("new"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	s := m.Snapshot()
	if got := s.Durable["d/a"]; !bytes.Equal(got, []byte("old")) {
		t.Fatalf("durable = %q, want old", got)
	}
	if got := s.Volatile["d/a"]; !bytes.Equal(got, []byte("new")) {
		t.Fatalf("volatile = %q, want new", got)
	}
}

// TestMemFSFileSemantics pins the handle contract the archive relies
// on: positional writes, ReadAt with io.EOF short reads, Seek whence
// forms, and Truncate in both directions.
func TestMemFSFileSemantics(t *testing.T) {
	m := NewMemFS()
	f, err := m.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("abcdef")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if pos, err := f.Seek(2, io.SeekStart); err != nil || pos != 2 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	if _, err := f.Write([]byte("XY")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	buf := make([]byte, 6)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 6 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, []byte("abXYef")) {
		t.Fatalf("content = %q", buf)
	}
	if n, err := f.ReadAt(buf, 4); n != 2 || err != io.EOF {
		t.Fatalf("short ReadAt = %d, %v; want 2, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("past-end ReadAt err = %v, want EOF", err)
	}
	if pos, err := f.Seek(-2, io.SeekEnd); err != nil || pos != 4 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if sz, err := m.Size("a"); err != nil || sz != 3 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatalf("grow Truncate: %v", err)
	}
	got, err := m.ReadFile("a")
	if err != nil || !bytes.Equal(got, []byte("abX\x00\x00")) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
}

// TestMemFSReopenFromSnapshot: NewMemFSFromFiles(durable view) is the
// crash-then-reboot disk; everything on it is fully durable.
func TestMemFSReopenFromSnapshot(t *testing.T) {
	m := NewMemFSFromFiles([]string{"d"}, map[string][]byte{"d/a": []byte("keep")})
	f, err := m.OpenFile("d/b", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("lost")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s := m.Snapshot()
	re := NewMemFSFromFiles(s.Dirs, s.Durable)
	if _, err := re.ReadFile("d/b"); !errors.Is(err, gofs.ErrNotExist) {
		t.Fatalf("unsynced file survived crash: %v", err)
	}
	got, err := re.ReadFile("d/a")
	if err != nil || !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("durable file = %q, %v", got, err)
	}
	names, err := re.ReadDir("d")
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
}

// TestFaultFSInjection exercises each scheduled fault kind and checks
// classification plus stats accounting.
func TestFaultFSInjection(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{WriteErrEvery: 2, SyncErrEvery: 2})
	if err := ffs.MkdirAll("d", 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	f, err := ffs.OpenFile("d/a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("full"))
	if err == nil {
		t.Fatalf("write 2 should fail")
	}
	if !IsTransient(err) {
		t.Fatalf("injected write error not transient: %v", err)
	}
	if !errors.Is(err, syscall.EINTR) {
		t.Fatalf("injected write error not EINTR: %v", err)
	}
	if n != 2 {
		t.Fatalf("torn write applied %d bytes, want 2", n)
	}
	// The torn half really landed.
	got, _ := mem.ReadFile("d/a")
	if !bytes.Equal(got, []byte("okfu")) {
		t.Fatalf("file after torn write = %q", got)
	}

	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	err = f.Sync()
	if err == nil || !IsTransient(err) {
		t.Fatalf("sync 2 = %v, want transient", err)
	}
	// The failed fsync must NOT have pinned anything new: the durable
	// image still holds only what sync 1 saw.
	if got := mem.Snapshot().Durable; got != nil {
		if img, ok := got["d/a"]; ok && !bytes.Equal(img, []byte("okfu")) {
			t.Fatalf("failed fsync leaked bytes: durable = %q", img)
		}
	}
	if err := f.Sync(); err != nil { // 3rd sync: schedule skips it
		t.Fatalf("sync 3: %v", err)
	}
	st := ffs.Stats()
	if st.InjectedWriteErrs != 1 || st.InjectedSyncErrs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if open, names := ffs.OpenHandles(); open != 0 {
		t.Fatalf("leaked handles: %v", names)
	}
}

// TestFaultFSBudget drains the ENOSPC byte budget and refills it.
func TestFaultFSBudget(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), FaultPlan{WriteBudget: 4})
	f, err := ffs.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("1234")); err != nil {
		t.Fatalf("in-budget write: %v", err)
	}
	n, err := f.Write([]byte("56"))
	if err == nil || !errors.Is(err, syscall.ENOSPC) || !IsTransient(err) {
		t.Fatalf("over-budget write = %d, %v", n, err)
	}
	ffs.AddWriteBudget(64)
	if _, err := f.Write([]byte("56")); err != nil {
		t.Fatalf("post-refill write: %v", err)
	}
	if got := ffs.Stats().InjectedENOSPC; got != 1 {
		t.Fatalf("InjectedENOSPC = %d", got)
	}
}

// TestFaultFSShortWrite: the short-write schedule reports n < len(p)
// with io.ErrShortWrite, which IsTransient accepts.
func TestFaultFSShortWrite(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), FaultPlan{ShortWriteEvery: 1})
	f, err := ffs.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	n, err := f.Write([]byte("abcd"))
	if n != 2 || !errors.Is(err, io.ErrShortWrite) || !IsTransient(err) {
		t.Fatalf("short write = %d, %v", n, err)
	}
}

// TestFaultFSDisarm: after Disarm, the same schedule injects nothing.
func TestFaultFSDisarm(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), FaultPlan{WriteErrEvery: 1, SyncErrEvery: 1})
	ffs.Disarm()
	f, err := ffs.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("disarmed sync: %v", err)
	}
}

// TestFaultFSDoubleClose: a second Close is reported and counted, and
// only the first reaches the inner handle.
func TestFaultFSDoubleClose(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), FaultPlan{})
	f, err := ffs.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close 1: %v", err)
	}
	if err := f.Close(); !errors.Is(err, gofs.ErrClosed) {
		t.Fatalf("Close 2 = %v, want ErrClosed", err)
	}
	st := ffs.Stats()
	if st.Closes != 1 || st.DoubleCloses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFaultFSOnOp: the crash hook fires once per applied mutating op.
func TestFaultFSOnOp(t *testing.T) {
	ffs := NewFaultFS(NewMemFS(), FaultPlan{})
	var ops []string
	ffs.OnOp(func(op string) { ops = append(ops, op) })
	f, err := ffs.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := []string{"open a", "write a", "sync a"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops[%d] = %q, want %q", i, ops[i], want[i])
		}
	}
}

// TestIsTransient pins the classification table.
func TestIsTransient(t *testing.T) {
	for _, err := range []error{
		ErrTransient,
		io.ErrShortWrite,
		syscall.ENOSPC,
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.ETIMEDOUT,
	} {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false", err)
		}
	}
	for _, err := range []error{
		nil,
		errors.New("corrupt frame"),
		gofs.ErrClosed,
		syscall.EIO,
	} {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true", err)
		}
	}
}

// TestOSFSPassthrough smoke-tests the real-filesystem implementation
// against a temp dir: the archive's default path.
func TestOSFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	if err := OS.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	f, err := OS.OpenFile(dir+"/sub/a.log", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := OS.SyncDir(dir + "/sub"); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	got, err := OS.ReadFile(dir + "/sub/a.log")
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if sz, err := OS.Size(dir + "/sub/a.log"); err != nil || sz != 4 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	names, err := OS.ReadDir(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "a.log" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := OS.Rename(dir+"/sub/a.log", dir+"/sub/b.log"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := OS.Remove(dir + "/sub/b.log"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := OS.Size(dir + "/sub/b.log"); !errors.Is(err, gofs.ErrNotExist) {
		t.Fatalf("Size after remove = %v", err)
	}
}
