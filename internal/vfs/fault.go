package vfs

import (
	"fmt"
	"io"
	gofs "io/fs"
	"math/rand"
	"sort"
	"sync"
	"syscall"
)

// FaultPlan schedules deterministic faults. The zero plan injects
// nothing — a zero-plan FaultFS is a pure pass-through that still
// counts operations and tracks open handles, which is what the
// handle-balance tests and the crash-point enumerator use.
//
// Counted schedules (every Nth operation) and seeded probabilities
// compose; an operation fails if any armed rule selects it. All
// injected errors classify as transient under IsTransient — the
// archive's write buffer makes retrying them sound — so fatal-path
// tests should fail the underlying FS instead.
type FaultPlan struct {
	// WriteErrEvery fails every Nth Write after applying only half the
	// bytes (a torn write followed by EINTR). 0 disables.
	WriteErrEvery int
	// ShortWriteEvery makes every Nth Write apply half the bytes and
	// return io.ErrShortWrite-style (n < len(p), err == ErrShortWrite).
	// 0 disables.
	ShortWriteEvery int
	// SyncErrEvery fails every Nth Sync WITHOUT syncing — the data stays
	// volatile, exactly the fsync-failure contract retry depends on.
	// 0 disables.
	SyncErrEvery int
	// WriteBudget, when > 0, is the total byte budget across all writes;
	// a write that would exceed it applies the remaining bytes and
	// returns ENOSPC. Refill with AddWriteBudget to model freed space.
	WriteBudget int64
	// Seed drives the probabilistic rules; the same seed replays the
	// same fault schedule.
	Seed int64
	// WriteErrProb / SyncErrProb fail writes/syncs with this seeded
	// probability (0 disables).
	WriteErrProb float64
	SyncErrProb  float64
}

// FaultStats counts what a FaultFS saw and did.
type FaultStats struct {
	// Ops counts mutating operations observed (writes, syncs,
	// truncates, creates, renames, removes, dir syncs, file writes).
	Ops uint64
	// InjectedWriteErrs / InjectedShortWrites / InjectedSyncErrs /
	// InjectedENOSPC count faults by kind.
	InjectedWriteErrs   uint64
	InjectedShortWrites uint64
	InjectedSyncErrs    uint64
	InjectedENOSPC      uint64
	// Opens / Closes count File handles; DoubleCloses counts Close
	// calls on an already-closed handle.
	Opens        uint64
	Closes       uint64
	DoubleCloses uint64
}

// FaultFS wraps an FS with deterministic fault injection, mutating-op
// callbacks (the crash-point enumerator's hook) and open-handle
// accounting. Safe for concurrent use.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	plan    FaultPlan
	rng     *rand.Rand
	writes  uint64 // Write calls seen, for the Every counters
	syncs   uint64
	budget  int64 // remaining write bytes; -1 = unlimited
	stats   FaultStats
	live    map[*faultFile]string
	onOp    func(op string)
	stopped bool // faults disarmed (recovery phases)
}

// Inner returns the wrapped filesystem, e.g. to snapshot the MemFS
// underneath.
func (f *FaultFS) Inner() FS { return f.inner }

// NewFaultFS wraps inner with plan.
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	budget := int64(-1)
	if plan.WriteBudget > 0 {
		budget = plan.WriteBudget
	}
	return &FaultFS{
		inner:  inner,
		plan:   plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		budget: budget,
		live:   make(map[*faultFile]string),
	}
}

// OnOp registers fn to run (while no fault fired) after every mutating
// operation has been applied to the inner FS — each call marks one
// crash point. fn runs with the FaultFS unlocked.
func (f *FaultFS) OnOp(fn func(op string)) {
	f.mu.Lock()
	f.onOp = fn
	f.mu.Unlock()
}

// Disarm stops fault injection (counters and callbacks keep running) —
// recovery phases run on a healthy disk.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	f.stopped = true
	f.mu.Unlock()
}

// SetPlan replaces the fault schedule and re-arms injection, without
// resetting the operation counters or handle accounting. Tests use it
// to open an archive fault-free and then arm the schedule for the
// workload under test.
func (f *FaultFS) SetPlan(plan FaultPlan) {
	f.mu.Lock()
	f.plan = plan
	f.rng = rand.New(rand.NewSource(plan.Seed))
	if plan.WriteBudget > 0 {
		f.budget = plan.WriteBudget
	} else {
		f.budget = -1
	}
	f.stopped = false
	f.mu.Unlock()
}

// AddWriteBudget refills the ENOSPC byte budget, modeling freed space.
func (f *FaultFS) AddWriteBudget(n int64) {
	f.mu.Lock()
	if f.budget >= 0 {
		f.budget += n
	}
	f.mu.Unlock()
}

// Stats snapshots the fault counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// OpenHandles returns how many opened Files have not been closed, and
// their names (sorted) for the failure message.
func (f *FaultFS) OpenHandles() (int, []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.live))
	for _, name := range f.live {
		names = append(names, name)
	}
	sort.Strings(names)
	return len(names), names
}

// noteOp records one applied mutating operation and fires the crash
// hook.
func (f *FaultFS) noteOp(op string) {
	f.mu.Lock()
	f.stats.Ops++
	fn := f.onOp
	f.mu.Unlock()
	if fn != nil {
		fn(op)
	}
}

// errInjected builds one transient injected error.
func errInjected(op string, errno syscall.Errno) error {
	return fmt.Errorf("faultfs: injected %s fault: %w (%w)", op, errno, ErrTransient)
}

// writeVerdict decides one Write call's fate: how many of n bytes to
// apply and which error to return. Called with f.mu held.
func (f *FaultFS) writeVerdict(n int) (allow int, err error, kind *uint64) {
	f.writes++
	if f.stopped {
		return n, nil, nil
	}
	p := &f.plan
	if p.WriteErrEvery > 0 && f.writes%uint64(p.WriteErrEvery) == 0 {
		return n / 2, errInjected("write", syscall.EINTR), &f.stats.InjectedWriteErrs
	}
	if p.ShortWriteEvery > 0 && f.writes%uint64(p.ShortWriteEvery) == 0 {
		return n / 2, fmt.Errorf("faultfs: injected short write: %w", io.ErrShortWrite), &f.stats.InjectedShortWrites
	}
	if p.WriteErrProb > 0 && f.rng.Float64() < p.WriteErrProb {
		return n / 2, errInjected("write", syscall.EINTR), &f.stats.InjectedWriteErrs
	}
	if f.budget >= 0 && int64(n) > f.budget {
		allow = int(f.budget)
		f.budget = 0
		return allow, errInjected("write", syscall.ENOSPC), &f.stats.InjectedENOSPC
	}
	if f.budget >= 0 {
		f.budget -= int64(n)
	}
	return n, nil, nil
}

// syncVerdict decides one Sync call's fate. Called with f.mu held.
func (f *FaultFS) syncVerdict() (err error, kind *uint64) {
	f.syncs++
	if f.stopped {
		return nil, nil
	}
	p := &f.plan
	if p.SyncErrEvery > 0 && f.syncs%uint64(p.SyncErrEvery) == 0 {
		return errInjected("sync", syscall.ENOSPC), &f.stats.InjectedSyncErrs
	}
	if p.SyncErrProb > 0 && f.rng.Float64() < p.SyncErrProb {
		return errInjected("sync", syscall.ENOSPC), &f.stats.InjectedSyncErrs
	}
	return nil, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm gofs.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, name: name, inner: inner}
	f.mu.Lock()
	f.stats.Opens++
	f.live[ff] = name
	f.mu.Unlock()
	f.noteOp("open " + name)
	return ff, nil
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }
func (f *FaultFS) Size(name string) (int64, error)      { return f.inner.Size(name) }
func (f *FaultFS) MkdirAll(dir string, perm gofs.FileMode) error {
	return f.inner.MkdirAll(dir, perm)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm gofs.FileMode) error {
	f.mu.Lock()
	allow, err, kind := f.writeVerdict(len(data))
	if kind != nil {
		*kind++
	}
	f.mu.Unlock()
	if werr := f.inner.WriteFile(name, data[:allow], perm); werr != nil {
		return werr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", name, err)
	}
	f.noteOp("writefile " + name)
	return nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.noteOp("rename " + newpath)
	return nil
}

func (f *FaultFS) Remove(name string) error {
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.noteOp("remove " + name)
	return nil
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	err, kind := f.syncVerdict()
	if kind != nil {
		*kind++
	}
	f.mu.Unlock()
	if err != nil {
		return fmt.Errorf("syncdir %s: %w", dir, err)
	}
	if err := f.inner.SyncDir(dir); err != nil {
		return err
	}
	f.noteOp("syncdir " + dir)
	return nil
}

// faultFile wraps one inner handle, applying the plan's write/sync
// verdicts and double-close detection.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File

	mu     sync.Mutex
	closed bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	allow, ierr, kind := ff.fs.writeVerdict(len(p))
	if kind != nil {
		*kind++
	}
	ff.fs.mu.Unlock()
	n, err := ff.inner.Write(p[:allow])
	if err != nil {
		return n, err
	}
	if ierr != nil {
		return n, fmt.Errorf("write %s: %w", ff.name, ierr)
	}
	ff.fs.noteOp("write " + ff.name)
	return n, nil
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) { return ff.inner.ReadAt(p, off) }

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.inner.Seek(offset, whence)
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.inner.Truncate(size); err != nil {
		return err
	}
	ff.fs.noteOp("truncate " + ff.name)
	return nil
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	ierr, kind := ff.fs.syncVerdict()
	if kind != nil {
		*kind++
	}
	ff.fs.mu.Unlock()
	if ierr != nil {
		return fmt.Errorf("sync %s: %w", ff.name, ierr)
	}
	if err := ff.inner.Sync(); err != nil {
		return err
	}
	ff.fs.noteOp("sync " + ff.name)
	return nil
}

func (ff *faultFile) Close() error {
	ff.mu.Lock()
	already := ff.closed
	ff.closed = true
	ff.mu.Unlock()
	ff.fs.mu.Lock()
	if already {
		ff.fs.stats.DoubleCloses++
	} else {
		ff.fs.stats.Closes++
		delete(ff.fs.live, ff)
	}
	ff.fs.mu.Unlock()
	if already {
		return fmt.Errorf("faultfs: double close of %s: %w", ff.name, gofs.ErrClosed)
	}
	return ff.inner.Close()
}
