// Package vfs is the minimal filesystem seam underneath the storage
// layer. The archive talks to an FS instead of the os package directly,
// which buys two things:
//
//   - fault injection: FaultFS wraps any FS and injects deterministic,
//     seed-scheduled faults — ENOSPC after a byte budget, short writes,
//     failed fsyncs — so the crash-consistency torture harness can
//     enumerate failure schedules instead of waiting for a flaky disk;
//   - crash simulation: MemFS tracks, per file, the bytes that have
//     actually been fsynced (and whether the directory entry itself was
//     made durable with SyncDir), so a test can "crash" the filesystem
//     at any operation boundary and reopen exactly the state a power
//     loss would have left behind.
//
// The interface is deliberately tiny — exactly the operations the
// archive performs — and OS (the passthrough implementation) adds no
// indirection worth measuring: *os.File satisfies File directly.
package vfs

import (
	"errors"
	"io"
	gofs "io/fs"
	"syscall"
)

// File is an open handle. *os.File satisfies it directly.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Seek repositions the write cursor (io.Seeker semantics).
	Seek(offset int64, whence int) (int64, error)
	// Truncate cuts the file to size.
	Truncate(size int64) error
	// Sync flushes the file's bytes to stable storage. Until a Sync (or
	// a clean Close on a real filesystem that happens to flush) returns
	// nil, a crash may lose or tear every write since the previous one.
	Sync() error
}

// FS is the filesystem surface the storage layer runs on.
type FS interface {
	// OpenFile opens name with os.OpenFile flag semantics (O_RDONLY,
	// O_RDWR, O_WRONLY, O_CREATE, O_EXCL are honored).
	OpenFile(name string, flag int, perm gofs.FileMode) (File, error)
	// ReadDir lists the file names (not paths, not directories) in dir,
	// sorted ascending.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the whole content of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile replaces name with data. Like os.WriteFile it syncs
	// nothing: the bytes are volatile until the file is fsynced.
	WriteFile(name string, data []byte, perm gofs.FileMode) error
	// Size returns the current size of name.
	Size(name string) (int64, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name; a missing file is gofs.ErrNotExist.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm gofs.FileMode) error
	// SyncDir fsyncs a directory, pinning creates/renames/removes of its
	// entries — without it the names themselves may not survive a crash.
	SyncDir(dir string) error
}

// ErrTransient marks injected or environmental hiccups that a caller
// may retry. Wrap it (fmt.Errorf("...: %w", vfs.ErrTransient)) to make
// any error classify as transient.
var ErrTransient = errors.New("transient fault")

// IsTransient classifies an error as a retryable storage/source hiccup
// — the condition clears on its own (EINTR, EAGAIN), or clears when the
// environment changes (ENOSPC after space is freed), or the operation
// simply did less than asked (a short write) and can be reissued. A
// failed fsync is retryable under this model only because the storage
// layer's write buffer still holds everything unsynced: a later
// successful sync covers the same bytes. Everything else — corruption,
// closed handles, ordering violations — is fatal.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrTransient) ||
		errors.Is(err, io.ErrShortWrite) ||
		errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.ETIMEDOUT)
}
