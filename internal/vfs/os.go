package vfs

import (
	gofs "io/fs"
	"os"
)

// OS is the passthrough filesystem: every call maps 1:1 onto the os
// package, and OpenFile hands back the *os.File itself (it satisfies
// File), so the archive running on OS executes the same syscalls it did
// before the vfs seam existed.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm gofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil // os.ReadDir sorts by name
}

func (osFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(name)
}

func (osFS) WriteFile(name string, data []byte, perm gofs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

func (osFS) Remove(name string) error {
	return os.Remove(name)
}

func (osFS) MkdirAll(dir string, perm gofs.FileMode) error {
	return os.MkdirAll(dir, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
