package vfs

import (
	"io"
	gofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// MemFS is an in-memory filesystem that models crash durability. Every
// file carries two byte images:
//
//   - data: the volatile view — what the process reads back, including
//     every write since the last fsync;
//   - durable: the stable view — the content as of the last successful
//     Sync on a handle (or the file's initial image).
//
// Directory entries are modeled the same way: a created or renamed-in
// name is volatile until SyncDir on its parent pins it. Snapshot()
// returns both views, so a torture harness can materialize "the disk
// after a power cut here" (the durable view), "the lucky crash where
// the page cache made it out" (the volatile view), and torn mixtures in
// between, and reopen each as a fresh filesystem via NewMemFSFromFiles.
//
// The crash model is deliberately conservative in one direction and
// simple in the other: unsynced bytes and unsynced directory entries
// are LOST at a crash, while removals and renames-away take effect
// immediately (a removed file never resurrects). Real filesystems can
// additionally resurrect removed entries whose directory was not
// fsynced; the archive orders its removals before a SyncDir anyway, so
// the simplification only ever under-reports surviving state — the
// safe direction for prefix-recovery checking.
//
// All methods are safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data        []byte
	durable     []byte
	hasDurable  bool // durable image exists (at least one Sync, or preloaded)
	linkDurable bool // the directory entry itself survives a crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// NewMemFSFromFiles builds a filesystem from an on-disk image — the
// shape Snapshot produces. Every entry is fully durable: the image
// represents state already survived to stable storage.
func NewMemFSFromFiles(dirs []string, files map[string][]byte) *MemFS {
	m := NewMemFS()
	for _, d := range dirs {
		m.dirs[d] = true
	}
	for name, data := range files {
		c := append([]byte(nil), data...)
		m.files[name] = &memFile{data: c, durable: append([]byte(nil), c...), hasDurable: true, linkDurable: true}
		m.dirs[filepath.Dir(name)] = true
	}
	return m
}

// Snapshot is a point-in-time capture of both durability views.
type Snapshot struct {
	// Dirs lists every directory.
	Dirs []string
	// Durable maps name -> content that survives a crash at this
	// instant: only durably-linked entries, each with its last-synced
	// bytes.
	Durable map[string][]byte
	// Volatile maps name -> current content for every entry, synced or
	// not — the upper bound of what a crash might preserve.
	Volatile map[string][]byte
}

// Snapshot captures both views. The returned maps own their bytes.
func (m *MemFS) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Durable:  make(map[string][]byte),
		Volatile: make(map[string][]byte, len(m.files)),
	}
	dirs := make([]string, 0, len(m.dirs))
	for d := range m.dirs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	s.Dirs = dirs
	for name, f := range m.files {
		s.Volatile[name] = append([]byte(nil), f.data...)
		if f.linkDurable {
			var img []byte
			if f.hasDurable {
				img = append([]byte(nil), f.durable...)
			}
			if img == nil {
				img = []byte{}
			}
			s.Durable[name] = img
		}
	}
	return s
}

func (m *MemFS) OpenFile(name string, flag int, perm gofs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, exists := m.files[name]
	switch {
	case exists && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &gofs.PathError{Op: "open", Path: name, Err: gofs.ErrExist}
	case !exists && flag&os.O_CREATE == 0:
		return nil, &gofs.PathError{Op: "open", Path: name, Err: gofs.ErrNotExist}
	case !exists:
		f = &memFile{}
		m.files[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	return &memHandle{fs: m, name: name, f: f, writable: writable}, nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return nil, &gofs.PathError{Op: "readdir", Path: dir, Err: gofs.ErrNotExist}
	}
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &gofs.PathError{Op: "read", Path: name, Err: gofs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) WriteFile(name string, data []byte, perm gofs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	// Volatile replacement: the durable image (if any) keeps the old
	// content until someone fsyncs, exactly like an O_TRUNC rewrite.
	f.data = append([]byte(nil), data...)
	return nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0, &gofs.PathError{Op: "stat", Path: name, Err: gofs.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &gofs.PathError{Op: "rename", Path: oldpath, Err: gofs.ErrNotExist}
	}
	delete(m.files, oldpath)
	// The entry under its new name is volatile until the parent
	// directory is synced — a crash loses the rename (and, per the
	// model's simplification, the old name too).
	f.linkDurable = false
	m.files[newpath] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &gofs.PathError{Op: "remove", Path: name, Err: gofs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(dir string, perm gofs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := dir; ; d = filepath.Dir(d) {
		m.dirs[d] = true
		if parent := filepath.Dir(d); parent == d {
			break
		}
	}
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		return &gofs.PathError{Op: "syncdir", Path: dir, Err: gofs.ErrNotExist}
	}
	for name, f := range m.files {
		if filepath.Dir(name) == dir {
			f.linkDurable = true
		}
	}
	return nil
}

// memHandle is one open MemFS file. The write cursor follows *os.File
// semantics: writes land at pos and extend the file as needed, Seek
// repositions, ReadAt ignores the cursor.
type memHandle struct {
	fs       *MemFS
	name     string
	f        *memFile
	pos      int64
	writable bool
	closed   bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, gofs.ErrClosed
	}
	if !h.writable {
		return 0, &gofs.PathError{Op: "write", Path: h.name, Err: gofs.ErrPermission}
	}
	end := h.pos + int64(len(p))
	if int64(len(h.f.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[h.pos:end], p)
	h.pos = end
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, gofs.ErrClosed
	}
	if off < 0 {
		return 0, gofs.ErrInvalid
	}
	if off > int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF // ReadAt contract: a short read reports EOF
	}
	return n, nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, gofs.ErrClosed
	}
	switch whence {
	case 0:
		h.pos = offset
	case 1:
		h.pos += offset
	case 2:
		h.pos = int64(len(h.f.data)) + offset
	default:
		return 0, gofs.ErrInvalid
	}
	if h.pos < 0 {
		h.pos = 0
		return 0, gofs.ErrInvalid
	}
	return h.pos, nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return gofs.ErrClosed
	}
	switch {
	case size < 0:
		return gofs.ErrInvalid
	case size <= int64(len(h.f.data)):
		h.f.data = h.f.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	return nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return gofs.ErrClosed
	}
	h.f.durable = append(h.f.durable[:0], h.f.data...)
	h.f.hasDurable = true
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return gofs.ErrClosed
	}
	h.closed = true
	return nil
}
