package evm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// counter is a minimal contract: a journaled counter with helpers that
// exercise calls, logs, reverts, child creation and selfdestruct.
type counter struct{}

func (counter) Call(env *Env, method string, args []any) ([]any, error) {
	switch method {
	case "inc":
		v := env.SGet("n").MustAdd(uint256.One())
		env.SSet("n", v)
		env.EmitLog("Inc", nil, []uint256.Int{v})
		return []any{v}, nil
	case "get":
		return []any{env.SGet("n")}, nil
	case "incThenFail":
		env.SSet("n", env.SGet("n").MustAdd(uint256.One()))
		return nil, Revertf("deliberate failure")
	case "incViaChildThenFail":
		// Mutate a peer contract, then fail: the peer's change must revert.
		peer, err := AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		if _, err := env.Call(peer, "inc", uint256.Zero()); err != nil {
			return nil, err
		}
		return nil, Revertf("after child mutation")
	case "incCatchChildFailure":
		peer, err := AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		// Child frame fails; we swallow the error. Our own later write
		// must survive, the child's must not.
		_, _ = env.Call(peer, "incThenFail", uint256.Zero())
		env.SSet("n", env.SGet("n").MustAdd(uint256.FromUint64(100)))
		return nil, nil
	case "spawn":
		child, err := env.Create(counter{}, "")
		if err != nil {
			return nil, err
		}
		return []any{child}, nil
	case "payout":
		to, err := AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amt, err := AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		if err := env.TransferETH(to, amt); err != nil {
			return nil, err
		}
		return nil, nil
	case "boom":
		return nil, env.SelfDestruct(env.Caller())
	case "recurse":
		return env.Call(env.Self(), "recurse", uint256.Zero())
	case "":
		return nil, nil // accept plain ETH
	default:
		return nil, Revertf("unknown method %q", method)
	}
}

// viewN reads the counter value of a deployed counter contract.
func viewN(t *testing.T, c *Chain, addr types.Address) uint256.Int {
	t.Helper()
	ret, err := c.View(addr, "get")
	if err != nil {
		t.Fatalf("view get: %v", err)
	}
	return MustRet[uint256.Int](ret, 0, nil)
}

func newTestChain() *Chain {
	return NewChain(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
}

func TestStorageAndCalls(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Counter")

	for i := 1; i <= 3; i++ {
		r := c.Send(user, addr, "inc")
		if !r.Success {
			t.Fatalf("inc %d failed: %s", i, r.Err)
		}
	}
	got, err := c.View(addr, "get")
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	if n := got[0].(uint256.Int); n.Uint64() != 3 {
		t.Errorf("counter = %s, want 3", n)
	}
}

func TestRevertUndoesStorage(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Counter")

	r := c.Send(user, addr, "incThenFail")
	if r.Success {
		t.Fatal("incThenFail should have reverted")
	}
	if !strings.Contains(r.Err, "deliberate failure") {
		t.Errorf("unexpected error: %s", r.Err)
	}
	if len(r.Logs) != 0 || len(r.InternalTxs) != 0 {
		t.Errorf("reverted tx kept %d logs / %d itxs", len(r.Logs), len(r.InternalTxs))
	}
	n := viewN(t, c, addr)
	if !n.IsZero() {
		t.Errorf("counter = %s after revert, want 0", n)
	}
}

func TestRevertUndoesNestedFrames(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	a := c.MustDeploy(user, counter{}, "A")
	b := c.MustDeploy(user, counter{}, "B")

	r := c.Send(user, a, "incViaChildThenFail", b)
	if r.Success {
		t.Fatal("should revert")
	}
	n := viewN(t, c, b)
	if !n.IsZero() {
		t.Errorf("peer counter = %s after parent revert, want 0", n)
	}
}

func TestCaughtChildFailureRevertsOnlyChild(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	a := c.MustDeploy(user, counter{}, "A")
	b := c.MustDeploy(user, counter{}, "B")

	r := c.Send(user, a, "incCatchChildFailure", b)
	if !r.Success {
		t.Fatalf("tx failed: %s", r.Err)
	}
	if n := viewN(t, c, b); !n.IsZero() {
		t.Errorf("child state survived its revert: %s", n)
	}
	if n := viewN(t, c, a); n.Uint64() != 100 {
		t.Errorf("parent state lost: %s, want 100", n)
	}
	// The failed child's internal tx must not appear in the trace.
	for _, it := range r.InternalTxs {
		if it.Method == "incThenFail" {
			t.Errorf("failed child frame leaked into trace: %v", it)
		}
	}
}

func TestETHTransferAndInternalTx(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	sink := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Bank")
	c.FundETH(user, uint256.MustFromUnits("10", 18))

	// Fund contract via value call, then pay out.
	r := c.SendValue(user, addr, "", uint256.MustFromUnits("2", 18))
	if !r.Success {
		t.Fatalf("fund failed: %s", r.Err)
	}
	r = c.Send(user, addr, "payout", sink, uint256.MustFromUnits("1.5", 18))
	if !r.Success {
		t.Fatalf("payout failed: %s", r.Err)
	}
	if got := c.BalanceOf(sink); got.ToUnits(18) != "1.5" {
		t.Errorf("sink balance = %s", got.ToUnits(18))
	}
	if got := c.BalanceOf(addr); got.ToUnits(18) != "0.5" {
		t.Errorf("contract balance = %s", got.ToUnits(18))
	}
	// The payout receipt carries a value-bearing internal tx from the
	// contract to the sink.
	var found bool
	for _, it := range r.InternalTxs {
		if it.From == addr && it.To == sink && it.Value.ToUnits(18) == "1.5" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing internal ETH transfer in %v", r.InternalTxs)
	}
}

func TestInsufficientBalanceReverts(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Bank")
	r := c.SendValue(user, addr, "", uint256.MustFromUnits("1", 18))
	if r.Success {
		t.Fatal("value transfer with empty balance should fail")
	}
	if !strings.Contains(r.Err, "insufficient ETH balance") {
		t.Errorf("err = %s", r.Err)
	}
}

func TestHappenedBeforeSequencing(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Counter")
	r := c.Send(user, addr, "inc")
	if !r.Success {
		t.Fatal(r.Err)
	}
	// The top-level call frame must precede the Inc log in seq order.
	if len(r.InternalTxs) != 1 || len(r.Logs) != 1 {
		t.Fatalf("want 1 itx + 1 log, got %d + %d", len(r.InternalTxs), len(r.Logs))
	}
	if r.InternalTxs[0].Seq >= r.Logs[0].Seq {
		t.Errorf("call seq %d not before log seq %d", r.InternalTxs[0].Seq, r.Logs[0].Seq)
	}
}

func TestCreationRelationshipRecorded(t *testing.T) {
	c := newTestChain()
	deployer := c.NewEOA("Acme: Deployer")
	factory := c.MustDeploy(deployer, counter{}, "Acme: Factory")
	r := c.Send(deployer, factory, "spawn")
	if !r.Success {
		t.Fatal(r.Err)
	}
	child := r.Return[0].(types.Address)

	ci, ok := c.CreationOf(child)
	if !ok || ci.Creator != factory || !ci.IsContract {
		t.Errorf("child creation = %+v ok=%v, want creator %s", ci, ok, factory.Short())
	}
	ci, ok = c.CreationOf(factory)
	if !ok || ci.Creator != deployer {
		t.Errorf("factory creation = %+v ok=%v", ci, ok)
	}
	ci, ok = c.CreationOf(deployer)
	if !ok || ci.IsContract {
		t.Errorf("deployer should be a registered EOA: %+v ok=%v", ci, ok)
	}
}

func TestSelfDestruct(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Doomed")
	c.FundETH(addr, uint256.MustFromUnits("1", 18))

	r := c.Send(user, addr, "boom")
	if !r.Success {
		t.Fatalf("boom failed: %s", r.Err)
	}
	if c.IsContract(addr) {
		t.Error("contract still alive after selfdestruct")
	}
	if got := c.BalanceOf(user); got.ToUnits(18) != "1" {
		t.Errorf("beneficiary got %s ETH", got.ToUnits(18))
	}
	// Calls to a destroyed contract behave like calls to an EOA.
	r = c.Send(user, addr, "inc")
	if r.Success {
		t.Error("method call on destroyed contract should fail")
	}
}

func TestCallDepthLimit(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Recurser")
	r := c.Send(user, addr, "recurse")
	if r.Success {
		t.Fatal("unbounded recursion should abort")
	}
	if !strings.Contains(r.Err, "max call depth") {
		t.Errorf("err = %s", r.Err)
	}
	// And the whole transaction reverted cleanly.
	if n := viewN(t, c, addr); !n.IsZero() {
		t.Errorf("state leaked: %s", n)
	}
}

func TestBlocksAndTime(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Counter")
	c.Send(user, addr, "inc")
	b1 := c.MineBlock()
	c.Send(user, addr, "inc")
	b2 := c.MineBlock()

	if b1.Number+1 != b2.Number {
		t.Errorf("block numbers %d, %d", b1.Number, b2.Number)
	}
	if got := b2.Time.Sub(b1.Time); got != DefaultBlockInterval {
		t.Errorf("block interval = %s", got)
	}
	// Deploy + inc in block 1; inc in block 2.
	if len(b1.Receipts) != 2 || len(b2.Receipts) != 1 {
		t.Errorf("receipts per block: %d, %d", len(b1.Receipts), len(b2.Receipts))
	}
	h := b2.Receipts[0].TxHash
	if r, ok := c.Receipt(h); !ok || r.Block != b2.Number {
		t.Errorf("receipt lookup failed for %s", h.Short())
	}
}

func TestViewHasNoSideEffects(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Counter")
	if _, err := c.View(addr, "inc"); err != nil {
		t.Fatalf("view inc: %v", err)
	}
	if n := viewN(t, c, addr); !n.IsZero() {
		t.Errorf("view mutated state: %s", n)
	}
}

func TestLabels(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("Uniswap: Deployer 1")
	if l, ok := c.Label(user); !ok || l != "Uniswap: Deployer 1" {
		t.Errorf("label = %q ok=%v", l, ok)
	}
	c.RemoveLabel(user)
	if _, ok := c.Label(user); ok {
		t.Error("label survived removal")
	}
	c.SetLabel(user, "X")
	if all := c.Labels(); all[user] != "X" {
		t.Errorf("Labels() = %v", all)
	}
}

func TestArgHelpers(t *testing.T) {
	args := []any{types.Address{1}, uint256.FromUint64(7), "s"}
	if a, err := AddrArg(args, 0); err != nil || a != (types.Address{1}) {
		t.Errorf("AddrArg = %v, %v", a, err)
	}
	if v, err := AmountArg(args, 1); err != nil || v.Uint64() != 7 {
		t.Errorf("AmountArg = %v, %v", v, err)
	}
	if s, err := Arg[string](args, 2); err != nil || s != "s" {
		t.Errorf("StrArg = %v, %v", s, err)
	}
	if _, err := AddrArg(args, 1); err == nil {
		t.Error("type mismatch not reported")
	}
	if _, err := AddrArg(args, 5); err == nil {
		t.Error("missing arg not reported")
	}
	if _, err := Ret[string](nil, 0, errors.New("x")); err == nil {
		t.Error("Ret should propagate error")
	}
	if _, err := Ret[string]([]any{1}, 0, nil); err == nil {
		t.Error("Ret should reject wrong type")
	}
	if _, err := Ret[string]([]any{}, 0, nil); err == nil {
		t.Error("Ret should reject missing value")
	}
}

func TestAddressWordRoundTrip(t *testing.T) {
	f := func(raw [20]byte) bool {
		a := types.Address(raw)
		return WordToAddress(AddressToWord(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeriveAddressDistinct(t *testing.T) {
	seen := make(map[types.Address]bool)
	base := types.Address{1, 2, 3}
	for n := uint64(0); n < 1000; n++ {
		a := types.DeriveAddress(base, n)
		if seen[a] {
			t.Fatalf("collision at nonce %d", n)
		}
		seen[a] = true
	}
}

func TestGasAccounting(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	addr := c.MustDeploy(user, counter{}, "Counter")
	r := c.Send(user, addr, "inc")
	if r.GasUsed <= 21000 {
		t.Errorf("gas = %d, want > base cost", r.GasUsed)
	}
}

func TestFilterLogs(t *testing.T) {
	c := newTestChain()
	user := c.NewEOA("")
	a := c.MustDeploy(user, counter{}, "A")
	b := c.MustDeploy(user, counter{}, "B")
	c.Send(user, a, "inc")
	c.MineBlock() // block 1
	c.Send(user, a, "inc")
	c.Send(user, b, "inc")
	c.Send(user, a, "incThenFail") // reverted: its log must not appear
	c.MineBlock()                  // block 2

	if got := len(c.FilterLogs(LogFilter{})); got != 3 {
		t.Errorf("all logs = %d, want 3", got)
	}
	if got := len(c.FilterLogs(LogFilter{Address: a})); got != 2 {
		t.Errorf("logs of A = %d, want 2", got)
	}
	if got := len(c.FilterLogs(LogFilter{FromBlock: 2})); got != 2 {
		t.Errorf("logs from block 2 = %d, want 2", got)
	}
	if got := len(c.FilterLogs(LogFilter{ToBlock: 1})); got != 1 {
		t.Errorf("logs to block 1 = %d, want 1", got)
	}
	if got := len(c.FilterLogs(LogFilter{Event: "Inc"})); got != 3 {
		t.Errorf("Inc logs = %d, want 3", got)
	}
	if got := len(c.FilterLogs(LogFilter{Event: "Nope"})); got != 0 {
		t.Errorf("Nope logs = %d, want 0", got)
	}
}
