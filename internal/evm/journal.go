package evm

import (
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// journal records reversible state mutations. A snapshot is just a journal
// length; reverting replays entries backwards. This mirrors go-ethereum's
// state journal and is what gives flash loan atomicity real teeth.
type journal struct {
	entries []journalEntry
}

func newJournal() *journal { return &journal{} }

type journalEntry interface {
	revert(s *state)
}

func (j *journal) append(e journalEntry) { j.entries = append(j.entries, e) }

// snapshot returns a token for the current journal position.
func (j *journal) snapshot() int { return len(j.entries) }

// revertTo undoes every entry recorded after the snapshot.
func (j *journal) revertTo(s *state, snap int) {
	for i := len(j.entries) - 1; i >= snap; i-- {
		j.entries[i].revert(s)
	}
	j.entries = j.entries[:snap]
}

// reset discards the whole journal (called between transactions, once the
// transaction outcome is final).
func (j *journal) reset() { j.entries = j.entries[:0] }

type balanceChange struct {
	addr    types.Address
	prev    uint256.Int
	existed bool
}

func (c balanceChange) revert(s *state) {
	if c.existed {
		s.balances[c.addr] = c.prev
	} else {
		delete(s.balances, c.addr)
	}
}

type nonceChange struct {
	addr types.Address
	prev uint64
}

func (c nonceChange) revert(s *state) { s.nonces[c.addr] = c.prev }

type storageChange struct {
	addr    types.Address
	key     string
	prev    uint256.Int
	existed bool
}

func (c storageChange) revert(s *state) {
	if c.existed {
		s.storage[c.addr][c.key] = c.prev
	} else {
		delete(s.storage[c.addr], c.key)
	}
}

type contractCreation struct {
	addr types.Address
}

func (c contractCreation) revert(s *state) {
	delete(s.contracts, c.addr)
	delete(s.created, c.addr)
}

type selfDestruct struct {
	addr types.Address
}

func (c selfDestruct) revert(s *state) { delete(s.destroyed, c.addr) }
