package evm

import (
	"math/rand"
	"testing"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// TestJournalModelBased drives the journaled state with random operation
// sequences interleaved with snapshots and reverts, mirroring every
// committed mutation in a plain-map reference model. After each revert or
// commit the two must agree — the property that makes flash loan
// atomicity trustworthy.
func TestJournalModelBased(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	addrs := make([]types.Address, 6)
	for i := range addrs {
		addrs[i] = types.Address{byte(i + 1)}
	}
	keys := []string{"a", "b", "c"}

	for trial := 0; trial < 200; trial++ {
		st := newState()
		type model struct {
			bal  map[types.Address]uint256.Int
			stor map[types.Address]map[string]uint256.Int
		}
		clone := func(m model) model {
			nb := make(map[types.Address]uint256.Int, len(m.bal))
			for k, v := range m.bal {
				nb[k] = v
			}
			ns := make(map[types.Address]map[string]uint256.Int, len(m.stor))
			for a, slots := range m.stor {
				cp := make(map[string]uint256.Int, len(slots))
				for k, v := range slots {
					cp[k] = v
				}
				ns[a] = cp
			}
			return model{bal: nb, stor: ns}
		}
		cur := model{bal: map[types.Address]uint256.Int{}, stor: map[types.Address]map[string]uint256.Int{}}

		type frame struct {
			snap  int
			saved model
		}
		var stack []frame

		check := func() {
			t.Helper()
			for _, a := range addrs {
				if got, want := st.Balance(a), cur.bal[a]; !got.Eq(want) {
					t.Fatalf("trial %d: balance(%s) = %s, model %s", trial, a.Short(), got, want)
				}
				for _, k := range keys {
					got := st.StorageGet(a, k)
					want := cur.stor[a][k]
					if !got.Eq(want) {
						t.Fatalf("trial %d: storage(%s,%s) = %s, model %s", trial, a.Short(), k, got, want)
					}
				}
			}
		}

		for op := 0; op < 60; op++ {
			switch rng.Intn(5) {
			case 0: // set balance
				a := addrs[rng.Intn(len(addrs))]
				v := uint256.FromUint64(rng.Uint64() % 1000)
				st.setBalance(a, v)
				cur.bal[a] = v
			case 1: // set storage
				a := addrs[rng.Intn(len(addrs))]
				k := keys[rng.Intn(len(keys))]
				v := uint256.FromUint64(rng.Uint64() % 1000)
				st.storageSet(a, k, v)
				if cur.stor[a] == nil {
					cur.stor[a] = map[string]uint256.Int{}
				}
				cur.stor[a][k] = v
			case 2: // open a frame
				stack = append(stack, frame{snap: st.journal.snapshot(), saved: clone(cur)})
			case 3: // revert the innermost frame
				if len(stack) > 0 {
					f := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					st.journal.revertTo(st, f.snap)
					cur = f.saved
					check()
				}
			case 4: // commit the innermost frame (discard its snapshot)
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			}
		}
		// Unwind whatever frames remain by reverting outside-in.
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			st.journal.revertTo(st, f.snap)
			cur = f.saved
		}
		check()
	}
}

// TestJournalNonceAndCreationRevert covers the remaining entry kinds:
// nonce bumps, contract creation and selfdestruct all roll back.
func TestJournalNonceAndCreationRevert(t *testing.T) {
	st := newState()
	creator := types.Address{1}
	addr := types.Address{2}

	snap := st.journal.snapshot()
	st.bumpNonce(creator)
	st.createContract(addr, counter{}, creator)
	if st.Contract(addr) == nil {
		t.Fatal("contract missing")
	}
	st.destroyContract(addr)
	if st.Contract(addr) != nil {
		t.Fatal("destroyed contract still live")
	}
	st.journal.revertTo(st, snap)

	if st.Nonce(creator) != 0 {
		t.Errorf("nonce = %d after revert", st.Nonce(creator))
	}
	if st.Contract(addr) != nil {
		t.Error("creation survived revert")
	}
	if _, ok := st.CreationOf(addr); ok {
		t.Error("creation record survived revert")
	}
}
