package evm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// DefaultBlockInterval is the simulated inter-block time, matching
// pre-merge Ethereum's ~13 s cadence.
const DefaultBlockInterval = 13 * time.Second

// Chain is a deterministic in-process blockchain: it executes
// transactions, produces blocks, and retains every receipt so the
// detection pipeline can "replay" any transaction by reading its recorded
// transfer history. Chain methods are safe for concurrent use.
type Chain struct {
	mu sync.Mutex

	vm            *vm
	blocks        []*Block
	receipts      map[types.Hash]*Receipt
	pending       []*Receipt
	blockNum      uint64
	now           time.Time
	blockInterval time.Duration
	eoaCounter    uint64
}

// NewChain creates a chain whose genesis block carries the given
// timestamp. All subsequent time flows deterministically from it.
func NewChain(genesis time.Time) *Chain {
	return &Chain{
		vm:            newVM(),
		receipts:      make(map[types.Hash]*Receipt),
		blockNum:      1,
		now:           genesis,
		blockInterval: DefaultBlockInterval,
	}
}

// SetBlockInterval overrides the simulated inter-block time.
func (c *Chain) SetBlockInterval(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blockInterval = d
}

// NewEOA mints a fresh externally-owned account, optionally labeling it
// Etherscan-style ("Uniswap: Deployer").
func (c *Chain) NewEOA(label string) types.Address {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eoaCounter++
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], c.eoaCounter)
	h := types.HashFromData([]byte("eoa"), seed[:])
	var addr types.Address
	copy(addr[:], h[:20])
	c.vm.st.registerEOA(addr)
	if label != "" {
		c.vm.labels[addr] = label
	}
	return addr
}

// FundETH credits an account with ETH out of thin air (genesis faucet).
func (c *Chain) FundETH(addr types.Address, amount uint256.Int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vm.st.setBalance(addr, c.vm.st.Balance(addr).MustAdd(amount))
	c.vm.st.journal.reset()
}

// BalanceOf returns an account's ETH balance.
func (c *Chain) BalanceOf(addr types.Address) uint256.Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vm.st.Balance(addr)
}

// Label returns the Etherscan-style label of an account, if any.
func (c *Chain) Label(addr types.Address) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.vm.labels[addr]
	return l, ok
}

// SetLabel attaches or overwrites an account label.
func (c *Chain) SetLabel(addr types.Address, label string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vm.labels[addr] = label
}

// RemoveLabel deletes an account label. The paper removes attacker labels
// before detection since those were assigned only after the attacks.
func (c *Chain) RemoveLabel(addr types.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.vm.labels, addr)
}

// CreationOf exposes creation metadata for the tagging layer.
func (c *Chain) CreationOf(addr types.Address) (CreationInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vm.st.CreationOf(addr)
}

// Deploy executes a deployment transaction from an EOA and returns the new
// contract's address.
func (c *Chain) Deploy(from types.Address, contract Contract, label string) (types.Address, error) {
	r := c.Apply(&Transaction{From: from, Deploy: contract, DeployLabel: label})
	if !r.Success {
		return types.Address{}, fmt.Errorf("deploy %s: %s", label, r.Err)
	}
	return r.ContractAddress, nil
}

// MustDeploy deploys or panics. For scenario setup code.
func (c *Chain) MustDeploy(from types.Address, contract Contract, label string) types.Address {
	addr, err := c.Deploy(from, contract, label)
	if err != nil {
		panic(err)
	}
	return addr
}

// Send executes a method-call transaction with no attached ETH.
func (c *Chain) Send(from, to types.Address, method string, args ...any) *Receipt {
	return c.Apply(&Transaction{From: from, To: to, Method: method, Args: args})
}

// SendValue executes a method-call transaction with attached ETH.
func (c *Chain) SendValue(from, to types.Address, method string, value uint256.Int, args ...any) *Receipt {
	return c.Apply(&Transaction{From: from, To: to, Method: method, Args: args, Value: value})
}

// Apply executes a transaction against current state and queues its
// receipt into the pending block.
func (c *Chain) Apply(tx *Transaction) *Receipt {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.vm.st.registerEOA(tx.From)
	nonce := c.vm.st.bumpNonce(tx.From)
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	tx.Hash = types.HashFromData(tx.From[:], nb[:])

	c.vm.block = BlockCtx{Number: c.blockNum, Time: c.now}
	c.vm.beginTx(tx.From)
	txSnap := c.vm.st.journal.snapshot()

	r := &Receipt{TxHash: tx.Hash, Tx: tx, Block: c.blockNum, Time: c.now}
	var (
		ret []any
		err error
	)
	if tx.Deploy != nil {
		addr := types.DeriveAddress(tx.From, nonce)
		err = c.vm.deployAt(addr, tx.From, tx.Deploy, tx.DeployLabel)
		r.ContractAddress = addr
	} else {
		ret, err = c.vm.call(tx.From, tx.To, tx.Method, tx.Value, tx.Args)
	}
	if err != nil {
		// Transaction-level failure: nothing survives except the nonce.
		c.vm.st.journal.revertTo(c.vm.st, txSnap)
		r.Success = false
		r.Err = err.Error()
		r.ContractAddress = types.Address{}
	} else {
		r.Success = true
		r.Return = ret
		r.Logs = append([]Log(nil), c.vm.logs...)
		r.InternalTxs = append([]InternalTx(nil), c.vm.itxs...)
	}
	r.GasUsed = c.vm.gas
	c.vm.st.journal.reset()

	c.pending = append(c.pending, r)
	c.receipts[tx.Hash] = r
	return r
}

// View executes a read-only call and reverts every side effect. It is the
// eth_call equivalent used by tests and examples to inspect contract state.
func (c *Chain) View(to types.Address, method string, args ...any) ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vm.block = BlockCtx{Number: c.blockNum, Time: c.now}
	c.vm.beginTx(types.Address{})
	snap := c.vm.st.journal.snapshot()
	ret, err := c.vm.call(types.Address{}, to, method, uint256.Zero(), args)
	c.vm.st.journal.revertTo(c.vm.st, snap)
	c.vm.st.journal.reset()
	return ret, err
}

// MineBlock seals pending receipts into a block and advances time.
func (c *Chain) MineBlock() *Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := &Block{Number: c.blockNum, Time: c.now, Receipts: c.pending}
	c.blocks = append(c.blocks, b)
	c.pending = nil
	c.blockNum++
	c.now = c.now.Add(c.blockInterval)
	return b
}

// AdvanceTime jumps the chain clock forward (between scenario episodes).
func (c *Chain) AdvanceTime(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Now returns the current simulated time.
func (c *Chain) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// BlockNumber returns the next block height.
func (c *Chain) BlockNumber() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blockNum
}

// HeadBlock returns the number of the highest sealed block, 0 when none
// are sealed yet — the follower's poll target.
func (c *Chain) HeadBlock() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.blocks) == 0 {
		return 0
	}
	return c.blocks[len(c.blocks)-1].Number
}

// BlockByNumber returns the sealed block at height n. Blocks are sealed
// with consecutive numbers starting at 1, so the lookup is an index.
func (c *Chain) BlockByNumber(n uint64) (*Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 || n > uint64(len(c.blocks)) {
		return nil, false
	}
	b := c.blocks[n-1]
	if b.Number != n {
		return nil, false
	}
	return b, true
}

// Blocks returns all sealed blocks.
func (c *Chain) Blocks() []*Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Block(nil), c.blocks...)
}

// Receipt returns the receipt of a transaction by hash.
func (c *Chain) Receipt(h types.Hash) (*Receipt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.receipts[h]
	return r, ok
}

// IsContract reports whether an account currently carries code.
func (c *Chain) IsContract(addr types.Address) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vm.st.Contract(addr) != nil
}

// Labels returns a snapshot of all account labels, the stand-in for the
// paper's Etherscan label dump.
func (c *Chain) Labels() map[types.Address]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[types.Address]string, len(c.vm.labels))
	for a, l := range c.vm.labels {
		out[a] = l
	}
	return out
}

// Accounts returns every account the chain knows a creation record for,
// in address order so callers see a stable listing.
func (c *Chain) Accounts() []types.Address {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]types.Address, 0, len(c.vm.st.created))
	for a := range c.vm.st.created {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// LogFilter selects logs for FilterLogs; zero-valued fields match
// everything (the eth_getLogs contract).
type LogFilter struct {
	// FromBlock / ToBlock bound the block range inclusively; ToBlock 0
	// means "latest".
	FromBlock, ToBlock uint64
	// Address, when non-zero, selects one emitting contract.
	Address types.Address
	// Event, when non-empty, selects one event name.
	Event string
}

// FilterLogs scans sealed blocks for logs matching the filter, the
// primitive monitoring tools poll.
func (c *Chain) FilterLogs(f LogFilter) []Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Log
	for _, b := range c.blocks {
		if b.Number < f.FromBlock {
			continue
		}
		if f.ToBlock != 0 && b.Number > f.ToBlock {
			break
		}
		for _, r := range b.Receipts {
			if !r.Success {
				continue
			}
			for _, lg := range r.Logs {
				if !f.Address.IsZero() && lg.Address != f.Address {
					continue
				}
				if f.Event != "" && lg.Event != f.Event {
					continue
				}
				out = append(out, lg)
			}
		}
	}
	return out
}
