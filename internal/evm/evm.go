package evm

import (
	"errors"
	"fmt"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Execution errors.
var (
	// ErrCallDepth reports call stack exhaustion (a reentrancy runaway).
	ErrCallDepth = errors.New("evm: max call depth exceeded")
	// ErrInsufficientBalance reports an ETH transfer exceeding the
	// sender's balance.
	ErrInsufficientBalance = errors.New("evm: insufficient ETH balance")
	// ErrNotContract reports a method call against an account with no code.
	ErrNotContract = errors.New("evm: callee is not a contract")
)

// maxCallDepth bounds the call stack, mirroring Ethereum's 1024 limit.
const maxCallDepth = 1024

// Approximate gas costs per operation, for the latency/cost accounting the
// evaluation reports. The absolute values are not meant to match mainnet.
const (
	gasCall    = 700
	gasSStore  = 5000
	gasSLoad   = 200
	gasLog     = 375
	gasForward = 9000 // value-carrying call stipend
)

// vm is the execution engine for a single chain. It is not safe for
// concurrent use; Chain serializes access.
type vm struct {
	st    *state
	block BlockCtx

	// Per-transaction execution context.
	seq    uint64
	logs   []Log
	itxs   []InternalTx
	gas    uint64
	depth  int
	origin types.Address

	// labels holds Etherscan-style account labels, keyed by address.
	labels map[types.Address]string
}

func newVM() *vm {
	return &vm{
		st:     newState(),
		labels: make(map[types.Address]string),
	}
}

func (m *vm) nextSeq() uint64 {
	s := m.seq
	m.seq++
	return s
}

// beginTx resets the per-transaction context.
func (m *vm) beginTx(origin types.Address) {
	m.seq = 0
	m.logs = m.logs[:0]
	m.itxs = m.itxs[:0]
	m.gas = 21000 // base transaction cost
	m.depth = 0
	m.origin = origin
}

// transferETH moves value from one account to another with journaling.
func (m *vm) transferETH(from, to types.Address, value uint256.Int) error {
	if value.IsZero() {
		return nil
	}
	fb := m.st.Balance(from)
	if fb.Lt(value) {
		return fmt.Errorf("%w: %s has %s, needs %s", ErrInsufficientBalance, from.Short(), fb, value)
	}
	m.st.setBalance(from, fb.MustSub(value))
	m.st.setBalance(to, m.st.Balance(to).MustAdd(value))
	return nil
}

// call runs one frame: records the internal transaction, moves attached
// ETH, dispatches to the contract, and reverts the frame on error.
func (m *vm) call(from, to types.Address, method string, value uint256.Int, args []any) ([]any, error) {
	if m.depth >= maxCallDepth {
		return nil, ErrCallDepth
	}
	snap := m.st.journal.snapshot()
	logMark, itxMark := len(m.logs), len(m.itxs)

	m.gas += gasCall
	if !value.IsZero() {
		m.gas += gasForward
	}
	m.itxs = append(m.itxs, InternalTx{
		Seq:    m.nextSeq(),
		From:   from,
		To:     to,
		Value:  value,
		Method: method,
		Depth:  m.depth,
	})

	revert := func(err error) ([]any, error) {
		m.st.journal.revertTo(m.st, snap)
		m.logs = m.logs[:logMark]
		m.itxs = m.itxs[:itxMark]
		return nil, err
	}

	if err := m.transferETH(from, to, value); err != nil {
		return revert(err)
	}
	c := m.st.Contract(to)
	if c == nil {
		if method == "" {
			return nil, nil // plain ETH send to an EOA or empty account
		}
		return revert(fmt.Errorf("%w: %s.%s", ErrNotContract, to.Short(), method))
	}

	m.depth++
	env := &Env{vm: m, caller: from, self: to, value: value}
	ret, err := c.Call(env, method, args)
	m.depth--
	if err != nil {
		return revert(fmt.Errorf("%s.%s: %w", m.displayName(to), method, err))
	}
	return ret, nil
}

// displayName renders an address with its label if known, for error text.
func (m *vm) displayName(addr types.Address) string {
	if l, ok := m.labels[addr]; ok {
		return l
	}
	return addr.Short()
}

// Env is the per-frame execution environment handed to contracts, playing
// the role of Solidity's msg/tx/block globals plus the state interface.
type Env struct {
	vm     *vm
	caller types.Address
	self   types.Address
	value  uint256.Int
}

// Caller returns msg.sender.
func (e *Env) Caller() types.Address { return e.caller }

// Self returns the executing contract's address.
func (e *Env) Self() types.Address { return e.self }

// Value returns msg.value.
func (e *Env) Value() uint256.Int { return e.value }

// Origin returns tx.origin, the transaction's signing EOA.
func (e *Env) Origin() types.Address { return e.vm.origin }

// Block returns the current block context.
func (e *Env) Block() BlockCtx { return e.vm.block }

// Call invokes a method on another contract, attaching value wei.
func (e *Env) Call(to types.Address, method string, value uint256.Int, args ...any) ([]any, error) {
	return e.vm.call(e.self, to, method, value, args)
}

// TransferETH sends plain ETH from the executing contract.
func (e *Env) TransferETH(to types.Address, amount uint256.Int) error {
	_, err := e.vm.call(e.self, to, "", amount, nil)
	return err
}

// BalanceOf returns the ETH balance of any account.
func (e *Env) BalanceOf(addr types.Address) uint256.Int { return e.vm.st.Balance(addr) }

// EmitLog records an event log attributed to the executing contract.
func (e *Env) EmitLog(event string, addrs []types.Address, amounts []uint256.Int) {
	e.vm.gas += gasLog
	e.vm.logs = append(e.vm.logs, Log{
		Seq:     e.vm.nextSeq(),
		Address: e.self,
		Event:   event,
		Addrs:   addrs,
		Amounts: amounts,
	})
}

// SGet reads a storage slot of the executing contract; missing slots are
// zero.
func (e *Env) SGet(key string) uint256.Int {
	e.vm.gas += gasSLoad
	return e.vm.st.StorageGet(e.self, key)
}

// SSet writes a storage slot of the executing contract.
func (e *Env) SSet(key string, v uint256.Int) {
	e.vm.gas += gasSStore
	e.vm.st.storageSet(e.self, key, v)
}

// SGetAddr reads an address-valued slot.
func (e *Env) SGetAddr(key string) types.Address {
	return WordToAddress(e.SGet(key))
}

// SSetAddr writes an address-valued slot.
func (e *Env) SSetAddr(key string, a types.Address) {
	e.SSet(key, AddressToWord(a))
}

// Create deploys a child contract from the executing contract, recording
// the creation relationship the tagging layer consumes. label may be empty
// (most pool contracts are unlabeled on Etherscan; the tagging algorithm
// exists precisely to cover them).
func (e *Env) Create(c Contract, label string) (types.Address, error) {
	nonce := e.vm.st.bumpNonce(e.self)
	addr := types.DeriveAddress(e.self, nonce)
	return addr, e.vm.deployAt(addr, e.self, c, label)
}

// SelfDestruct removes the executing contract's code and sends its ETH
// balance to the beneficiary (attacker trace-hiding behaviour, §VI-D2).
func (e *Env) SelfDestruct(beneficiary types.Address) error {
	bal := e.vm.st.Balance(e.self)
	if !bal.IsZero() {
		if err := e.vm.transferETH(e.self, beneficiary, bal); err != nil {
			return err
		}
	}
	e.vm.st.destroyContract(e.self)
	return nil
}

// deployAt installs a contract at addr and runs its optional initializer
// inside the current frame (so failed construction reverts cleanly).
func (m *vm) deployAt(addr, creator types.Address, c Contract, label string) error {
	if m.st.Contract(addr) != nil {
		return fmt.Errorf("evm: address %s already has code", addr.Short())
	}
	m.st.createContract(addr, c, creator)
	if label != "" {
		m.labels[addr] = label
	}
	if ini, ok := c.(Initializer); ok {
		env := &Env{vm: m, caller: creator, self: addr}
		if err := ini.Init(env); err != nil {
			return fmt.Errorf("init %s: %w", label, err)
		}
	}
	return nil
}

// Initializer is implemented by contracts that need to set up storage at
// deployment (constructor semantics).
type Initializer interface {
	Init(env *Env) error
}

// AddressToWord packs an address into a storage word.
func AddressToWord(a types.Address) uint256.Int {
	var w uint256.Int
	// Bytes 0..7 -> limb 2 (high), 8..15 -> limb 1, 16..19 -> limb 0.
	for i := 0; i < 8; i++ {
		w[2] = w[2]<<8 | uint64(a[i])
	}
	for i := 8; i < 16; i++ {
		w[1] = w[1]<<8 | uint64(a[i])
	}
	for i := 16; i < 20; i++ {
		w[0] = w[0]<<8 | uint64(a[i])
	}
	return w
}

// WordToAddress unpacks an address stored by AddressToWord.
func WordToAddress(w uint256.Int) types.Address {
	var a types.Address
	for i := 7; i >= 0; i-- {
		a[i] = byte(w[2] >> (8 * (7 - i)))
	}
	for i := 15; i >= 8; i-- {
		a[i] = byte(w[1] >> (8 * (15 - i)))
	}
	for i := 19; i >= 16; i-- {
		a[i] = byte(w[0] >> (8 * (19 - i)))
	}
	return a
}
