// Package evm implements the Ethereum execution substrate the detector
// runs against: a deterministic in-process chain with journaled state,
// contract calls, event logs, internal transactions, and — crucially for
// the paper — a single global sequence counter that totally orders ETH
// transfers (internal transactions) and ERC20 transfers (event logs).
//
// The paper's authors modified Geth v1.10.14 to record exactly this
// happened-before relationship (§V-A); here the substrate records it
// natively. Flash loan atomicity is real: a contract call that returns an
// error reverts every state change, log and internal transfer of its
// frame, so a failed attack genuinely leaves no transfer history.
package evm

import (
	"fmt"
	"time"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Log is a simplified Ethereum event log. Instead of ABI-encoded topics it
// carries the event name plus ordered address and numeric parameters,
// which is all the downstream pipeline consumes.
type Log struct {
	// Seq is the global happened-before position of the log emission.
	Seq uint64
	// Address is the contract that emitted the log.
	Address types.Address
	// Event is the event name, e.g. "Transfer" or "FlashLoan".
	Event string
	// Addrs are the address-typed parameters in declaration order. For an
	// ERC20 Transfer: [from, to].
	Addrs []types.Address
	// Amounts are the numeric parameters in declaration order. For an
	// ERC20 Transfer: [value].
	Amounts []uint256.Int
}

// String renders the log for debugging.
func (l Log) String() string {
	return fmt.Sprintf("log#%d %s.%s addrs=%v amounts=%v", l.Seq, l.Address.Short(), l.Event, l.Addrs, l.Amounts)
}

// InternalTx records one call frame of a transaction: contract-to-contract
// calls (with or without ETH value) and plain ETH sends. Frames with a
// non-zero Value are Ethereum's "internal transactions" carrying Ether.
type InternalTx struct {
	// Seq is the global happened-before position of the call.
	Seq uint64
	// From is the calling account, To the callee.
	From, To types.Address
	// Value is the ETH attached to the call, in wei.
	Value uint256.Int
	// Method is the invoked function name; empty for a plain ETH send.
	Method string
	// Depth is the call-stack depth (0 for the top-level call).
	Depth int
}

// String renders the frame for debugging.
func (it InternalTx) String() string {
	return fmt.Sprintf("call#%d d%d %s -> %s.%s value=%s", it.Seq, it.Depth, it.From.Short(), it.To.Short(), it.Method, it.Value)
}

// Transaction is a top-level transaction submitted by a user account.
type Transaction struct {
	// Hash uniquely identifies the transaction.
	Hash types.Hash
	// From is the externally-owned account that signed the transaction.
	From types.Address
	// To is the callee contract; the zero address with a non-nil Deploy
	// indicates contract creation.
	To types.Address
	// Method and Args describe the invoked function.
	Method string
	Args   []any
	// Value is the attached ETH in wei.
	Value uint256.Int
	// Deploy, when non-nil, is a contract to deploy instead of a call.
	Deploy Contract
	// DeployLabel is an optional Etherscan-style label for the deployed
	// contract (e.g. "Uniswap: Factory").
	DeployLabel string
}

// Receipt is the execution result of a transaction, carrying everything
// the trace extractor needs.
type Receipt struct {
	// TxHash identifies the transaction.
	TxHash types.Hash
	// Tx is the executed transaction.
	Tx *Transaction
	// Block is the number of the containing block; Time its timestamp.
	Block uint64
	Time  time.Time
	// Success reports whether the transaction committed.
	Success bool
	// Err holds the failure reason for reverted transactions.
	Err string
	// ContractAddress is the address of the deployed contract, if any.
	ContractAddress types.Address
	// Logs are the event logs of the committed execution, in emission
	// order (Seq ascending).
	Logs []Log
	// InternalTxs are all call frames of the committed execution, in call
	// order (Seq ascending).
	InternalTxs []InternalTx
	// Return is the top-level call's return values.
	Return []any
	// GasUsed approximates execution cost as the count of state operations.
	GasUsed uint64
}

// Block groups transactions under a number and timestamp.
type Block struct {
	// Number is the block height.
	Number uint64
	// Time is the block timestamp.
	Time time.Time
	// Receipts are the executed transactions, in order.
	Receipts []*Receipt
}

// BlockCtx is the block context visible to executing contracts.
type BlockCtx struct {
	// Number is the current block height.
	Number uint64
	// Time is the current block timestamp.
	Time time.Time
}

// CreationInfo records who created an account, feeding the tagging
// package's creation forest (the paper obtains this from XBlock-ETH).
type CreationInfo struct {
	// Creator is the account that created this one; the zero address for
	// genesis accounts and externally-owned accounts.
	Creator types.Address
	// IsContract distinguishes contract accounts from user accounts.
	IsContract bool
}

// Contract is the interface simulated smart contracts implement. A
// contract object holds only immutable configuration (token metadata,
// pool parameters); all mutable state lives in the EVM's journaled
// storage, which is what makes revert sound.
type Contract interface {
	// Call dispatches a method invocation. Returning a non-nil error
	// reverts every state change made inside this frame.
	Call(env *Env, method string, args []any) ([]any, error)
}

// revertError marks errors that intentionally abort a frame.
type revertError struct {
	msg string
}

func (e *revertError) Error() string { return "execution reverted: " + e.msg }

// Revertf builds a revert error, the conventional way for a contract to
// abort its frame (require(...) in Solidity).
func Revertf(format string, args ...any) error {
	return &revertError{msg: fmt.Sprintf(format, args...)}
}
