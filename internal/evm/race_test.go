package evm

import (
	"sync"
	"testing"
	"time"

	"leishen/internal/uint256"
)

// TestChainConcurrentAccess runs writers (EOA creation, funding, label
// churn, mining) against readers (balances, labels, accounts, filters)
// to exercise the chain mutex under -race — the serve package shares one
// chain across request goroutines.
func TestChainConcurrentAccess(t *testing.T) {
	c := NewChain(time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC))
	seed := c.NewEOA("seed")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				a := c.NewEOA("worker")
				c.FundETH(a, uint256.FromUint64(1))
				c.SetLabel(a, "relabeled")
				c.MineBlock()
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				c.BalanceOf(seed)
				c.Labels()
				c.Accounts()
				c.BlockNumber()
				c.IsContract(seed)
				c.FilterLogs(LogFilter{})
			}
		}()
	}
	wg.Wait()

	accounts := c.Accounts()
	if len(accounts) != 1+4*25 {
		t.Errorf("accounts = %d, want %d", len(accounts), 1+4*25)
	}
	for i := 1; i < len(accounts); i++ {
		if accounts[i-1].String() >= accounts[i].String() {
			t.Fatalf("Accounts() not in address order")
		}
	}
}
