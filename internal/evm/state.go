package evm

import (
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// state is the world state: ETH balances, nonces, contract objects,
// per-contract key/value storage, and creation metadata. All mutation goes
// through journaled setters so snapshots can be reverted.
type state struct {
	balances  map[types.Address]uint256.Int
	nonces    map[types.Address]uint64
	contracts map[types.Address]Contract
	storage   map[types.Address]map[string]uint256.Int
	created   map[types.Address]CreationInfo
	destroyed map[types.Address]bool
	journal   *journal
}

func newState() *state {
	return &state{
		balances:  make(map[types.Address]uint256.Int),
		nonces:    make(map[types.Address]uint64),
		contracts: make(map[types.Address]Contract),
		storage:   make(map[types.Address]map[string]uint256.Int),
		created:   make(map[types.Address]CreationInfo),
		destroyed: make(map[types.Address]bool),
		journal:   newJournal(),
	}
}

// Balance returns the ETH balance of addr.
func (s *state) Balance(addr types.Address) uint256.Int {
	return s.balances[addr]
}

func (s *state) setBalance(addr types.Address, v uint256.Int) {
	old, existed := s.balances[addr]
	s.journal.append(balanceChange{addr: addr, prev: old, existed: existed})
	s.balances[addr] = v
}

// Nonce returns the transaction/creation nonce of addr.
func (s *state) Nonce(addr types.Address) uint64 {
	return s.nonces[addr]
}

func (s *state) bumpNonce(addr types.Address) uint64 {
	old := s.nonces[addr]
	s.journal.append(nonceChange{addr: addr, prev: old})
	s.nonces[addr] = old + 1
	return old
}

// Contract returns the contract object at addr, or nil for EOAs, empty
// accounts and selfdestructed contracts.
func (s *state) Contract(addr types.Address) Contract {
	if s.destroyed[addr] {
		return nil
	}
	return s.contracts[addr]
}

func (s *state) createContract(addr types.Address, c Contract, creator types.Address) {
	s.journal.append(contractCreation{addr: addr})
	s.contracts[addr] = c
	s.created[addr] = CreationInfo{Creator: creator, IsContract: true}
}

func (s *state) destroyContract(addr types.Address) {
	if s.destroyed[addr] {
		return
	}
	s.journal.append(selfDestruct{addr: addr})
	s.destroyed[addr] = true
}

// StorageGet reads one storage slot of a contract. Missing slots read as
// zero, matching EVM semantics.
func (s *state) StorageGet(addr types.Address, key string) uint256.Int {
	return s.storage[addr][key]
}

func (s *state) storageSet(addr types.Address, key string, v uint256.Int) {
	slots := s.storage[addr]
	if slots == nil {
		slots = make(map[string]uint256.Int)
		s.storage[addr] = slots
	}
	old, existed := slots[key]
	s.journal.append(storageChange{addr: addr, key: key, prev: old, existed: existed})
	slots[key] = v
}

// CreationOf returns creation metadata for addr.
func (s *state) CreationOf(addr types.Address) (CreationInfo, bool) {
	ci, ok := s.created[addr]
	return ci, ok
}

// registerEOA records a user account so the tagging layer can classify it.
func (s *state) registerEOA(addr types.Address) {
	if _, ok := s.created[addr]; !ok {
		s.created[addr] = CreationInfo{IsContract: false}
	}
}
