package evm

import (
	"fmt"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Arg extracts the i-th call argument as type T, returning a revert error
// on arity or type mismatch so that contract dispatch code can stay flat.
func Arg[T any](args []any, i int) (T, error) {
	var zero T
	if i >= len(args) {
		return zero, Revertf("missing argument %d (have %d)", i, len(args))
	}
	v, ok := args[i].(T)
	if !ok {
		return zero, Revertf("argument %d: got %T, want %T", i, args[i], zero)
	}
	return v, nil
}

// AddrArg extracts an address argument.
func AddrArg(args []any, i int) (types.Address, error) {
	return Arg[types.Address](args, i)
}

// AmountArg extracts a uint256 amount argument.
func AmountArg(args []any, i int) (uint256.Int, error) {
	return Arg[uint256.Int](args, i)
}

// Ret extracts the i-th return value as type T; used by calling contracts
// and tests to decode Env.Call results.
func Ret[T any](ret []any, i int, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	if i >= len(ret) {
		return zero, fmt.Errorf("evm: missing return value %d (have %d)", i, len(ret))
	}
	v, ok := ret[i].(T)
	if !ok {
		return zero, fmt.Errorf("evm: return value %d: got %T, want %T", i, ret[i], zero)
	}
	return v, nil
}

// MustRet extracts a return value and panics on error; for tests.
func MustRet[T any](ret []any, i int, err error) T {
	v, err := Ret[T](ret, i, err)
	if err != nil {
		panic(err)
	}
	return v
}

// Ret0 extracts the first return value of a call as type T. It accepts
// the (ret, err) pair of Env.Call / Chain.View directly:
//
//	v, err := evm.Ret0[uint256.Int](env.Call(tok, "balanceOf", zero, who))
func Ret0[T any](ret []any, err error) (T, error) {
	return Ret[T](ret, 0, err)
}
