// Package trades identifies the three key trade actions of paper
// Table III — swap, mint liquidity, remove liquidity — from windows of two
// or three consecutive application-level asset transfers.
//
// Scanning is greedy left-to-right, preferring the three-transfer forms
// (the paper's extension over DeFiRanger's conditions) before the
// two-transfer forms; transfers consumed by a trade are not reused.
package trades

import (
	"leishen/internal/types"
)

// Identify extracts the trade list from application-level transfers.
func Identify(ts []types.AppTransfer) []types.Trade {
	return IdentifyAppend(nil, ts)
}

// IdentifyAppend appends the identified trades to dst and returns the
// grown slice — the reuse-a-scratch-buffer form of Identify (pass dst[:0]
// to recycle a buffer).
func IdentifyAppend(dst []types.Trade, ts []types.AppTransfer) []types.Trade {
	out := dst
	for i := 0; i < len(ts); {
		if t, n := match3(ts, i); n > 0 {
			out = append(out, t)
			i += n
			continue
		}
		if t, n := match2(ts, i); n > 0 {
			out = append(out, t)
			i += n
			continue
		}
		i++
	}
	return out
}

// partiesUsable reports whether a transfer's endpoints can anchor a trade:
// untaggable accounts cannot (the paper's JulSwap / PancakeHunny misses
// stem exactly from this).
func partyOK(tag types.Tag) bool { return !tag.IsNone() }

func sameToken(a, b types.Token) bool { return a.Address == b.Address && a.IsETH() == b.IsETH() }

// match3 tries the three-transfer forms of Table III at position i,
// returning the trade and the number of transfers consumed.
func match3(ts []types.AppTransfer, i int) (types.Trade, int) {
	if i+2 >= len(ts) {
		return types.Trade{}, 0
	}
	t1, t2, t3 := ts[i], ts[i+1], ts[i+2]
	distinct := !sameToken(t1.Token, t2.Token) && !sameToken(t2.Token, t3.Token) && !sameToken(t1.Token, t3.Token)
	if !distinct {
		return types.Trade{}, 0
	}

	// Swap, 3 transfers: A->B t1; B->A t2; B->A t3.
	if !t1.FromBlackHole && !t1.ToBlackHole && !t2.FromBlackHole && !t3.FromBlackHole &&
		partyOK(t1.Sender) && partyOK(t1.Receiver) &&
		t1.Sender == t2.Receiver && t1.Sender == t3.Receiver &&
		t1.Receiver == t2.Sender && t1.Receiver == t3.Sender {
		return types.Trade{
			Kind:         types.TradeSwap,
			Buyer:        t1.Sender,
			Seller:       t1.Receiver,
			AmountSell:   t1.Amount,
			TokenSell:    t1.Token,
			AmountBuy:    t2.Amount,
			TokenBuy:     t2.Token,
			SecondaryBuy: &types.TradeLeg{Amount: t3.Amount, Token: t3.Token},
			Seq:          t1.Seq,
		}, 3
	}

	// Mint, 3 transfers: A->B t1; A->B t2; BlackHole->A t3.
	if !t1.FromBlackHole && !t2.FromBlackHole && t3.FromBlackHole &&
		partyOK(t1.Sender) && partyOK(t1.Receiver) &&
		t1.Sender == t2.Sender && t1.Receiver == t2.Receiver &&
		t3.Receiver == t1.Sender {
		return types.Trade{
			Kind:          types.TradeMint,
			Buyer:         t1.Sender,
			Seller:        t1.Receiver,
			AmountSell:    t1.Amount,
			TokenSell:     t1.Token,
			AmountBuy:     t3.Amount,
			TokenBuy:      t3.Token,
			SecondarySell: &types.TradeLeg{Amount: t2.Amount, Token: t2.Token},
			Seq:           t1.Seq,
		}, 3
	}

	// Remove, 3 transfers: A->BlackHole t1; B->A t2; B->A t3.
	if t1.ToBlackHole && !t2.FromBlackHole && !t3.FromBlackHole &&
		partyOK(t1.Sender) && partyOK(t2.Sender) &&
		t2.Receiver == t1.Sender && t3.Receiver == t1.Sender &&
		t2.Sender == t3.Sender {
		return types.Trade{
			Kind:         types.TradeRemove,
			Buyer:        t1.Sender,
			Seller:       t2.Sender,
			AmountSell:   t1.Amount,
			TokenSell:    t1.Token,
			AmountBuy:    t2.Amount,
			TokenBuy:     t2.Token,
			SecondaryBuy: &types.TradeLeg{Amount: t3.Amount, Token: t3.Token},
			Seq:          t1.Seq,
		}, 3
	}
	return types.Trade{}, 0
}

// match2 tries the two-transfer forms of Table III at position i.
func match2(ts []types.AppTransfer, i int) (types.Trade, int) {
	if i+1 >= len(ts) {
		return types.Trade{}, 0
	}
	t1, t2 := ts[i], ts[i+1]
	if sameToken(t1.Token, t2.Token) {
		return types.Trade{}, 0
	}

	// Swap: A->B t1; B->A t2.
	if !t1.FromBlackHole && !t1.ToBlackHole && !t2.FromBlackHole && !t2.ToBlackHole &&
		partyOK(t1.Sender) && partyOK(t1.Receiver) &&
		t1.Sender == t2.Receiver && t1.Receiver == t2.Sender {
		return types.Trade{
			Kind:       types.TradeSwap,
			Buyer:      t1.Sender,
			Seller:     t1.Receiver,
			AmountSell: t1.Amount,
			TokenSell:  t1.Token,
			AmountBuy:  t2.Amount,
			TokenBuy:   t2.Token,
			Seq:        t1.Seq,
		}, 2
	}

	// Mint: A->B t1; BlackHole->A t2 (order reversible).
	if !t1.FromBlackHole && !t1.ToBlackHole && t2.FromBlackHole &&
		partyOK(t1.Sender) && partyOK(t1.Receiver) &&
		t2.Receiver == t1.Sender {
		return types.Trade{
			Kind:       types.TradeMint,
			Buyer:      t1.Sender,
			Seller:     t1.Receiver,
			AmountSell: t1.Amount,
			TokenSell:  t1.Token,
			AmountBuy:  t2.Amount,
			TokenBuy:   t2.Token,
			Seq:        t1.Seq,
		}, 2
	}
	// Mint, reversed: BlackHole->A t1; A->B t2.
	if t1.FromBlackHole && !t2.FromBlackHole && !t2.ToBlackHole &&
		partyOK(t2.Sender) && partyOK(t2.Receiver) &&
		t1.Receiver == t2.Sender {
		return types.Trade{
			Kind:       types.TradeMint,
			Buyer:      t2.Sender,
			Seller:     t2.Receiver,
			AmountSell: t2.Amount,
			TokenSell:  t2.Token,
			AmountBuy:  t1.Amount,
			TokenBuy:   t1.Token,
			Seq:        t1.Seq,
		}, 2
	}

	// Remove: A->BlackHole t1; B->A t2 (order reversible).
	if t1.ToBlackHole && !t2.FromBlackHole && !t2.ToBlackHole &&
		partyOK(t1.Sender) && partyOK(t2.Sender) &&
		t2.Receiver == t1.Sender {
		return types.Trade{
			Kind:       types.TradeRemove,
			Buyer:      t1.Sender,
			Seller:     t2.Sender,
			AmountSell: t1.Amount,
			TokenSell:  t1.Token,
			AmountBuy:  t2.Amount,
			TokenBuy:   t2.Token,
			Seq:        t1.Seq,
		}, 2
	}
	// Remove, reversed: B->A t1; A->BlackHole t2.
	if t2.ToBlackHole && !t1.FromBlackHole && !t1.ToBlackHole &&
		partyOK(t2.Sender) && partyOK(t1.Sender) &&
		t1.Receiver == t2.Sender {
		return types.Trade{
			Kind:       types.TradeRemove,
			Buyer:      t2.Sender,
			Seller:     t1.Sender,
			AmountSell: t2.Amount,
			TokenSell:  t2.Token,
			AmountBuy:  t1.Amount,
			TokenBuy:   t1.Token,
			Seq:        t1.Seq,
		}, 2
	}
	return types.Trade{}, 0
}
