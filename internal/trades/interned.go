package trades

import (
	"leishen/internal/types"
)

// IdentifyInterned appends the identified trades to dst as interned
// tuples and returns the grown slice — the hot-path counterpart of
// IdentifyAppend, mirroring it form for form. Token id equality is
// exactly sameToken (identity is the contract address), and the
// partyOK guard translates to "not NoTagID": all untaggable accounts
// share the one NoTag value, hence the one id.
func IdentifyInterned(dst []types.ITrade, ts []types.ITransfer) []types.ITrade {
	out := dst
	for i := 0; i < len(ts); {
		if t, n := match3i(ts, i); n > 0 {
			out = append(out, t)
			i += n
			continue
		}
		if t, n := match2i(ts, i); n > 0 {
			out = append(out, t)
			i += n
			continue
		}
		i++
	}
	return out
}

func partyOKID(tag types.TagID) bool { return tag != types.NoTagID }

// match3i tries the three-transfer forms of Table III at position i.
func match3i(ts []types.ITransfer, i int) (types.ITrade, int) {
	if i+2 >= len(ts) {
		return types.ITrade{}, 0
	}
	t1, t2, t3 := &ts[i], &ts[i+1], &ts[i+2]
	distinct := t1.Token != t2.Token && t2.Token != t3.Token && t1.Token != t3.Token
	if !distinct {
		return types.ITrade{}, 0
	}

	// Swap, 3 transfers: A->B t1; B->A t2; B->A t3.
	if !t1.FromBlackHole && !t1.ToBlackHole && !t2.FromBlackHole && !t3.FromBlackHole &&
		partyOKID(t1.SenderTag) && partyOKID(t1.ReceiverTag) &&
		t1.SenderTag == t2.ReceiverTag && t1.SenderTag == t3.ReceiverTag &&
		t1.ReceiverTag == t2.SenderTag && t1.ReceiverTag == t3.SenderTag {
		return types.ITrade{
			Kind:          types.TradeSwap,
			Buyer:         t1.SenderTag,
			Seller:        t1.ReceiverTag,
			AmountSell:    t1.Amount,
			TokenSell:     t1.Token,
			AmountBuy:     t2.Amount,
			TokenBuy:      t2.Token,
			Secondary:     types.ILeg{Amount: t3.Amount, Token: t3.Token},
			SecondaryKind: types.SecondaryIsBuy,
			Seq:           t1.Seq,
		}, 3
	}

	// Mint, 3 transfers: A->B t1; A->B t2; BlackHole->A t3.
	if !t1.FromBlackHole && !t2.FromBlackHole && t3.FromBlackHole &&
		partyOKID(t1.SenderTag) && partyOKID(t1.ReceiverTag) &&
		t1.SenderTag == t2.SenderTag && t1.ReceiverTag == t2.ReceiverTag &&
		t3.ReceiverTag == t1.SenderTag {
		return types.ITrade{
			Kind:          types.TradeMint,
			Buyer:         t1.SenderTag,
			Seller:        t1.ReceiverTag,
			AmountSell:    t1.Amount,
			TokenSell:     t1.Token,
			AmountBuy:     t3.Amount,
			TokenBuy:      t3.Token,
			Secondary:     types.ILeg{Amount: t2.Amount, Token: t2.Token},
			SecondaryKind: types.SecondaryIsSell,
			Seq:           t1.Seq,
		}, 3
	}

	// Remove, 3 transfers: A->BlackHole t1; B->A t2; B->A t3.
	if t1.ToBlackHole && !t2.FromBlackHole && !t3.FromBlackHole &&
		partyOKID(t1.SenderTag) && partyOKID(t2.SenderTag) &&
		t2.ReceiverTag == t1.SenderTag && t3.ReceiverTag == t1.SenderTag &&
		t2.SenderTag == t3.SenderTag {
		return types.ITrade{
			Kind:          types.TradeRemove,
			Buyer:         t1.SenderTag,
			Seller:        t2.SenderTag,
			AmountSell:    t1.Amount,
			TokenSell:     t1.Token,
			AmountBuy:     t2.Amount,
			TokenBuy:      t2.Token,
			Secondary:     types.ILeg{Amount: t3.Amount, Token: t3.Token},
			SecondaryKind: types.SecondaryIsBuy,
			Seq:           t1.Seq,
		}, 3
	}
	return types.ITrade{}, 0
}

// match2i tries the two-transfer forms of Table III at position i.
func match2i(ts []types.ITransfer, i int) (types.ITrade, int) {
	if i+1 >= len(ts) {
		return types.ITrade{}, 0
	}
	t1, t2 := &ts[i], &ts[i+1]
	if t1.Token == t2.Token {
		return types.ITrade{}, 0
	}

	// Swap: A->B t1; B->A t2.
	if !t1.FromBlackHole && !t1.ToBlackHole && !t2.FromBlackHole && !t2.ToBlackHole &&
		partyOKID(t1.SenderTag) && partyOKID(t1.ReceiverTag) &&
		t1.SenderTag == t2.ReceiverTag && t1.ReceiverTag == t2.SenderTag {
		return types.ITrade{
			Kind:       types.TradeSwap,
			Buyer:      t1.SenderTag,
			Seller:     t1.ReceiverTag,
			AmountSell: t1.Amount,
			TokenSell:  t1.Token,
			AmountBuy:  t2.Amount,
			TokenBuy:   t2.Token,
			Seq:        t1.Seq,
		}, 2
	}

	// Mint: A->B t1; BlackHole->A t2 (order reversible).
	if !t1.FromBlackHole && !t1.ToBlackHole && t2.FromBlackHole &&
		partyOKID(t1.SenderTag) && partyOKID(t1.ReceiverTag) &&
		t2.ReceiverTag == t1.SenderTag {
		return types.ITrade{
			Kind:       types.TradeMint,
			Buyer:      t1.SenderTag,
			Seller:     t1.ReceiverTag,
			AmountSell: t1.Amount,
			TokenSell:  t1.Token,
			AmountBuy:  t2.Amount,
			TokenBuy:   t2.Token,
			Seq:        t1.Seq,
		}, 2
	}
	// Mint, reversed: BlackHole->A t1; A->B t2.
	if t1.FromBlackHole && !t2.FromBlackHole && !t2.ToBlackHole &&
		partyOKID(t2.SenderTag) && partyOKID(t2.ReceiverTag) &&
		t1.ReceiverTag == t2.SenderTag {
		return types.ITrade{
			Kind:       types.TradeMint,
			Buyer:      t2.SenderTag,
			Seller:     t2.ReceiverTag,
			AmountSell: t2.Amount,
			TokenSell:  t2.Token,
			AmountBuy:  t1.Amount,
			TokenBuy:   t1.Token,
			Seq:        t1.Seq,
		}, 2
	}

	// Remove: A->BlackHole t1; B->A t2 (order reversible).
	if t1.ToBlackHole && !t2.FromBlackHole && !t2.ToBlackHole &&
		partyOKID(t1.SenderTag) && partyOKID(t2.SenderTag) &&
		t2.ReceiverTag == t1.SenderTag {
		return types.ITrade{
			Kind:       types.TradeRemove,
			Buyer:      t1.SenderTag,
			Seller:     t2.SenderTag,
			AmountSell: t1.Amount,
			TokenSell:  t1.Token,
			AmountBuy:  t2.Amount,
			TokenBuy:   t2.Token,
			Seq:        t1.Seq,
		}, 2
	}
	// Remove, reversed: B->A t1; A->BlackHole t2.
	if t2.ToBlackHole && !t1.FromBlackHole && !t1.ToBlackHole &&
		partyOKID(t2.SenderTag) && partyOKID(t1.SenderTag) &&
		t1.ReceiverTag == t2.SenderTag {
		return types.ITrade{
			Kind:       types.TradeRemove,
			Buyer:      t2.SenderTag,
			Seller:     t1.SenderTag,
			AmountSell: t2.Amount,
			TokenSell:  t2.Token,
			AmountBuy:  t1.Amount,
			TokenBuy:   t1.Token,
			Seq:        t1.Seq,
		}, 2
	}
	return types.ITrade{}, 0
}
