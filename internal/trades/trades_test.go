package trades

import (
	"testing"
	"testing/quick"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

var (
	tagA = types.AppTag("Attacker")
	tagB = types.AppTag("Uniswap")
	ethT = types.ETH
	btcT = types.Token{Address: types.Address{0xBB}, Symbol: "WBTC", Decimals: 8}
	lpT  = types.Token{Address: types.Address{0x77}, Symbol: "LP", Decimals: 18}
	sndT = types.Token{Address: types.Address{0x55}, Symbol: "SND", Decimals: 18}
)

func at(seq uint64, from, to types.Tag, amount uint64, tok types.Token) types.AppTransfer {
	return types.AppTransfer{Seq: seq, Sender: from, Receiver: to, Amount: uint256.FromUint64(amount), Token: tok}
}

func mint(seq uint64, to types.Tag, amount uint64, tok types.Token) types.AppTransfer {
	return types.AppTransfer{Seq: seq, Receiver: to, FromBlackHole: true, Amount: uint256.FromUint64(amount), Token: tok}
}

func burn(seq uint64, from types.Tag, amount uint64, tok types.Token) types.AppTransfer {
	return types.AppTransfer{Seq: seq, Sender: from, ToBlackHole: true, Amount: uint256.FromUint64(amount), Token: tok}
}

func TestSwapTwoTransfers(t *testing.T) {
	in := []types.AppTransfer{
		at(0, tagA, tagB, 100, ethT),
		at(1, tagB, tagA, 2, btcT),
	}
	got := Identify(in)
	if len(got) != 1 {
		t.Fatalf("trades = %v", got)
	}
	tr := got[0]
	if tr.Kind != types.TradeSwap || tr.Buyer != tagA || tr.Seller != tagB {
		t.Errorf("trade = %+v", tr)
	}
	if tr.AmountSell.Uint64() != 100 || tr.AmountBuy.Uint64() != 2 {
		t.Errorf("amounts = %s / %s", tr.AmountSell, tr.AmountBuy)
	}
	if tr.TokenSell.Symbol != "ETH" || tr.TokenBuy.Symbol != "WBTC" {
		t.Errorf("tokens = %s / %s", tr.TokenSell.Symbol, tr.TokenBuy.Symbol)
	}
}

func TestSwapThreeTransfers(t *testing.T) {
	in := []types.AppTransfer{
		at(0, tagA, tagB, 100, ethT),
		at(1, tagB, tagA, 2, btcT),
		at(2, tagB, tagA, 7, sndT),
	}
	got := Identify(in)
	if len(got) != 1 {
		t.Fatalf("trades = %v", got)
	}
	tr := got[0]
	if tr.Kind != types.TradeSwap || tr.SecondaryBuy == nil {
		t.Fatalf("trade = %+v", tr)
	}
	if tr.SecondaryBuy.Amount.Uint64() != 7 || tr.SecondaryBuy.Token.Symbol != "SND" {
		t.Errorf("secondary = %+v", tr.SecondaryBuy)
	}
}

func TestMintTwoAndReversed(t *testing.T) {
	in := []types.AppTransfer{
		at(0, tagA, tagB, 100, ethT),
		mint(1, tagA, 50, lpT),
	}
	got := Identify(in)
	if len(got) != 1 || got[0].Kind != types.TradeMint {
		t.Fatalf("trades = %v", got)
	}
	if got[0].TokenBuy.Symbol != "LP" || got[0].AmountBuy.Uint64() != 50 {
		t.Errorf("mint = %+v", got[0])
	}
	// Reversed order condition from Table III.
	in = []types.AppTransfer{
		mint(0, tagA, 50, lpT),
		at(1, tagA, tagB, 100, ethT),
	}
	got = Identify(in)
	if len(got) != 1 || got[0].Kind != types.TradeMint {
		t.Fatalf("reversed mint = %v", got)
	}
}

func TestMintThreeTransfers(t *testing.T) {
	in := []types.AppTransfer{
		at(0, tagA, tagB, 100, ethT),
		at(1, tagA, tagB, 2, btcT),
		mint(2, tagA, 50, lpT),
	}
	got := Identify(in)
	if len(got) != 1 {
		t.Fatalf("trades = %v", got)
	}
	tr := got[0]
	if tr.Kind != types.TradeMint || tr.SecondarySell == nil {
		t.Fatalf("trade = %+v", tr)
	}
	if tr.SecondarySell.Token.Symbol != "WBTC" {
		t.Errorf("secondary sell = %+v", tr.SecondarySell)
	}
	if tr.TokenBuy.Symbol != "LP" {
		t.Errorf("buy = %s", tr.TokenBuy.Symbol)
	}
}

func TestRemoveTwoAndReversed(t *testing.T) {
	in := []types.AppTransfer{
		burn(0, tagA, 50, lpT),
		at(1, tagB, tagA, 100, ethT),
	}
	got := Identify(in)
	if len(got) != 1 || got[0].Kind != types.TradeRemove {
		t.Fatalf("trades = %v", got)
	}
	if got[0].Seller != tagB || got[0].TokenSell.Symbol != "LP" {
		t.Errorf("remove = %+v", got[0])
	}
	// Reversed.
	in = []types.AppTransfer{
		at(0, tagB, tagA, 100, ethT),
		burn(1, tagA, 50, lpT),
	}
	got = Identify(in)
	if len(got) != 1 || got[0].Kind != types.TradeRemove {
		t.Fatalf("reversed remove = %v", got)
	}
}

func TestRemoveThreeTransfers(t *testing.T) {
	in := []types.AppTransfer{
		burn(0, tagA, 50, lpT),
		at(1, tagB, tagA, 100, ethT),
		at(2, tagB, tagA, 2, btcT),
	}
	got := Identify(in)
	if len(got) != 1 {
		t.Fatalf("trades = %v", got)
	}
	tr := got[0]
	if tr.Kind != types.TradeRemove || tr.SecondaryBuy == nil {
		t.Fatalf("trade = %+v", tr)
	}
	if tr.SecondaryBuy.Token.Symbol != "WBTC" {
		t.Errorf("secondary = %+v", tr.SecondaryBuy)
	}
}

func TestGreedyConsumption(t *testing.T) {
	// Two back-to-back swaps: each consumes its own transfers.
	in := []types.AppTransfer{
		at(0, tagA, tagB, 100, ethT),
		at(1, tagB, tagA, 2, btcT),
		at(2, tagA, tagB, 200, ethT),
		at(3, tagB, tagA, 3, btcT),
	}
	got := Identify(in)
	if len(got) != 2 {
		t.Fatalf("trades = %v", got)
	}
	if got[0].AmountSell.Uint64() != 100 || got[1].AmountSell.Uint64() != 200 {
		t.Errorf("order wrong: %v", got)
	}
}

func TestSameTokenNoTrade(t *testing.T) {
	in := []types.AppTransfer{
		at(0, tagA, tagB, 100, ethT),
		at(1, tagB, tagA, 90, ethT), // same token both ways: no swap
	}
	if got := Identify(in); len(got) != 0 {
		t.Errorf("trades = %v", got)
	}
}

func TestUntaggablepartiesBlockTrades(t *testing.T) {
	// The JulSwap / PancakeHunny failure mode: untaggable endpoints.
	in := []types.AppTransfer{
		at(0, types.NoTag(), tagB, 100, ethT),
		at(1, tagB, types.NoTag(), 2, btcT),
	}
	if got := Identify(in); len(got) != 0 {
		t.Errorf("trades with untaggable parties = %v", got)
	}
}

func TestUnmatchedTransfersSkipped(t *testing.T) {
	tagC := types.AppTag("Other")
	in := []types.AppTransfer{
		at(0, tagA, tagB, 100, ethT), // no reply: plain payment
		at(1, tagC, tagA, 5, btcT),   // unrelated
		at(2, tagA, tagB, 100, ethT), // swap starts here
		at(3, tagB, tagA, 2, btcT),
	}
	got := Identify(in)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("trades = %v", got)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Identify(nil); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
	if got := Identify([]types.AppTransfer{at(0, tagA, tagB, 1, ethT)}); len(got) != 0 {
		t.Errorf("single transfer: %v", got)
	}
}

// TestQuickIdentifyProperties fuzzes random transfer lists: identification
// never panics, never produces more trades than transfers/2, and every
// trade's seq comes from an input transfer.
func TestQuickIdentifyProperties(t *testing.T) {
	tags := []types.Tag{tagA, tagB, types.AppTag("C"), types.NoTag()}
	toks := []types.Token{ethT, btcT, lpT, sndT}
	f := func(raw []uint16) bool {
		var in []types.AppTransfer
		for i, r := range raw {
			if i >= 30 {
				break
			}
			at := types.AppTransfer{
				Seq:      uint64(i),
				Sender:   tags[int(r)%len(tags)],
				Receiver: tags[int(r>>2)%len(tags)],
				Amount:   uint256.FromUint64(uint64(r)%500 + 1),
				Token:    toks[int(r>>4)%len(toks)],
			}
			switch r % 11 {
			case 0:
				at.FromBlackHole = true
			case 1:
				at.ToBlackHole = true
			}
			in = append(in, at)
		}
		out := Identify(in)
		if len(out) > len(in)/2 {
			return false
		}
		seqs := map[uint64]bool{}
		for _, tr := range in {
			seqs[tr.Seq] = true
		}
		for _, tr := range out {
			if !seqs[tr.Seq] {
				return false
			}
			if tr.AmountSell.IsZero() && tr.AmountBuy.IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
