package pricing

import (
	"math"
	"testing"
	"time"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

var day = time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)

func TestPriceDeterministicAndBounded(t *testing.T) {
	tab := NewDefaultTable()
	p1 := tab.Price("ETH", day)
	p2 := tab.Price("ETH", day)
	if p1 != p2 {
		t.Error("price not deterministic")
	}
	// Drift bounded by 3%.
	if p1 < 2000*0.97 || p1 > 2000*1.03 {
		t.Errorf("ETH price %f outside drift band", p1)
	}
	// Different days drift differently (almost surely).
	p3 := tab.Price("ETH", day.AddDate(0, 0, 1))
	if p1 == p3 {
		t.Log("same price two days running (possible but unlikely)")
	}
	// Unknown symbols get the default.
	if p := tab.Price("OBSCURE", day); p < 0.5*0.97 || p > 0.5*1.03 {
		t.Errorf("default price = %f", p)
	}
}

func TestPriceNoDrift(t *testing.T) {
	tab := NewDefaultTable()
	tab.DriftPct = 0
	if p := tab.Price("USDC", day); p != 1 {
		t.Errorf("USDC = %f", p)
	}
}

func TestValueUSD(t *testing.T) {
	tab := NewDefaultTable()
	tab.DriftPct = 0
	usdc := types.Token{Symbol: "USDC", Decimals: 6}
	v := tab.ValueUSD(usdc, uint256.MustFromUnits("1500000", 6), day)
	if math.Abs(v-1_500_000) > 1 {
		t.Errorf("value = %f", v)
	}
	weth := types.Token{Symbol: "WETH", Decimals: 18}
	v = tab.ValueUSD(weth, uint256.MustFromUnits("2.5", 18), day)
	if math.Abs(v-5000) > 1 {
		t.Errorf("value = %f", v)
	}
}

func TestYieldRate(t *testing.T) {
	if got := YieldRatePct(300, 100_000); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("yield = %f", got)
	}
	if YieldRatePct(1, 0) != 0 {
		t.Error("division by zero")
	}
	if YieldRatePct(math.NaN(), 5) != 0 {
		t.Error("NaN profit")
	}
}
