// Package pricing provides the synthetic USD price table the evaluation
// uses to aggregate attack profits (paper Table VII) and the profit /
// yield-rate analytics.
//
// The paper prices assets with their historical USD prices on the attack
// day; offline we substitute a deterministic table: fixed base prices per
// symbol with a mild deterministic daily drift. Only USD aggregation uses
// it — all on-chain accounting is exact integer arithmetic.
package pricing

import (
	"hash/fnv"
	"math"
	"time"

	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Table maps token symbols to base USD prices per whole token.
type Table struct {
	base map[string]float64
	// DefaultPrice prices unknown symbols (long-tail DeFi tokens).
	DefaultPrice float64
	// DriftPct is the max deterministic daily deviation in percent.
	DriftPct float64
}

// NewDefaultTable returns prices roughly matching early-2021 markets.
func NewDefaultTable() *Table {
	return &Table{
		base: map[string]float64{
			"ETH":  2000,
			"WETH": 2000,
			"WBTC": 35000,
			"WBNB": 400,
			"USDC": 1, "USDT": 1, "DAI": 1, "BUSD": 1, "sUSD": 1,
			"fUSDC": 1, "mvUSD": 1, "beltBUSD": 1, "xWUSD": 1,
			"saddleUSD": 1, "3Crv": 1, "crvUSD": 1, "2Crv": 1,
			"LINK": 25, "SNX": 12, "SPARTA": 1.2, "STA": 0.4,
			"CHEESE": 2.5, "EMN": 1.4, "DOP": 0.8, "JAWS": 0.5,
			"SHARK": 0.9, "BUNNY": 9, "JULb": 0.3, "HUNNY": 0.6,
			"TWX": 1.1, "WAULTx": 0.7, "xSNXa": 10, "MyFarmPET": 0.2,
		},
		DefaultPrice: 0.5,
		DriftPct:     3,
	}
}

// Price returns the USD price of one whole token on the given day.
func (t *Table) Price(symbol string, day time.Time) float64 {
	p, ok := t.base[symbol]
	if !ok {
		p = t.DefaultPrice
	}
	if t.DriftPct == 0 {
		return p
	}
	// Deterministic daily drift in [-DriftPct, +DriftPct] percent.
	h := fnv.New64a()
	h.Write([]byte(symbol))
	h.Write([]byte(day.UTC().Format("2006-01-02")))
	u := float64(h.Sum64()%10_000)/10_000*2 - 1
	return p * (1 + u*t.DriftPct/100)
}

// ValueUSD converts a base-unit amount to USD on the given day.
func (t *Table) ValueUSD(tok types.Token, amount uint256.Int, day time.Time) float64 {
	whole := amount.Rat(uint256.MustExp10(uint(tok.Decimals)))
	return whole * t.Price(tok.Symbol, day)
}

// YieldRatePct is profit value divided by borrowed value, in percent
// (paper Table VII).
func YieldRatePct(profitUSD, borrowedUSD float64) float64 {
	if borrowedUSD <= 0 || math.IsNaN(profitUSD) {
		return 0
	}
	return profitUSD / borrowedUSD * 100
}
