// Fault-injection tests for the follower's degraded-mode behavior:
// transient archive faults are retried with backoff and the drained
// archive stays byte-identical to an unfaulted run; exhausted or fatal
// faults go sticky; ENOSPC crashes resume cleanly from durable state;
// flaky block sources are retried.
package follower

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"leishen/internal/archive"
	"leishen/internal/evm"
	"leishen/internal/vfs"
)

// fastRetry keeps backoff real but test-sized.
var fastRetry = RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

// archiveLogs extracts the archive's segment logs and sidecars from a
// volatile snapshot view.
func archiveLogs(view map[string][]byte) map[string][]byte {
	out := make(map[string][]byte)
	for name, data := range view {
		if strings.HasSuffix(name, ".log") || strings.HasSuffix(name, ".idx") {
			out[name] = data
		}
	}
	return out
}

func requireSameLogs(t *testing.T, want, got map[string][]byte, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: file sets differ: want %d, got %d", ctx, len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: missing %s", ctx, name)
		}
		if string(w) != string(g) {
			t.Fatalf("%s: %s differs (%d vs %d bytes)", ctx, name, len(w), len(g))
		}
	}
}

// TestFollowerRetriesTransientWriteFaults: with torn writes, short
// writes and failed fsyncs injected throughout the drain, the follower
// must ride them out on backoff — no sticky error, not degraded once
// drained — and the archive must be byte-identical to an unfaulted
// run's.
func TestFollowerRetriesTransientWriteFaults(t *testing.T) {
	env, det, _ := testWorld(t)
	src := ChainSource(env.Chain)

	// Reference: unfaulted run on a plain MemFS.
	refMem := vfs.NewMemFS()
	refArc, err := archive.OpenFS(refMem, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	follow(t, src, det, refArc, Options{})
	if err := refArc.Close(); err != nil {
		t.Fatal(err)
	}
	want := archiveLogs(refMem.Snapshot().Volatile)

	// Faulted run: arm the schedule after open (opening is not the
	// behavior under test), disarm before close.
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, vfs.FaultPlan{})
	a, err := archive.OpenFS(ffs, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(src, det, a, Options{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetPlan(vfs.FaultPlan{WriteErrEvery: 2, ShortWriteEvery: 3, SyncErrEvery: 2})
	if err := f.CatchUp(); err != nil {
		t.Fatalf("CatchUp under transient faults: %v", err)
	}
	ffs.Disarm()
	if f.Degraded() {
		t.Fatal("still degraded after a successful drain")
	}
	if err := f.WriterErr(); err != nil {
		t.Fatalf("sticky error after transient-only faults: %v", err)
	}
	st := f.Stats()
	if st.WriteRetries == 0 {
		t.Fatalf("no write retries recorded: %+v", st)
	}
	if st.Degraded || st.WriterFailed {
		t.Fatalf("stats still degraded: %+v", st)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if n, names := ffs.OpenHandles(); n != 0 {
		t.Fatalf("leaked handles: %v", names)
	}
	requireSameLogs(t, want, archiveLogs(mem.Snapshot().Volatile), "transient drain")
}

// TestFollowerExhaustedRetriesGoSticky: a fault that never clears must
// exhaust the attempt budget, stop the writer for good, and mark the
// follower degraded; later operations refuse with the same error.
func TestFollowerExhaustedRetriesGoSticky(t *testing.T) {
	env, det, _ := testWorld(t)
	src := ChainSource(env.Chain)

	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, vfs.FaultPlan{})
	a, err := archive.OpenFS(ffs, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	f, err := New(src, det, a, Options{Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetPlan(vfs.FaultPlan{WriteErrEvery: 1}) // every write fails, forever
	err = f.CatchUp()
	if err == nil {
		t.Fatal("CatchUp succeeded with a permanently failing disk")
	}
	if !f.Degraded() {
		t.Fatal("not degraded after writer failure")
	}
	if f.WriterErr() == nil {
		t.Fatal("no sticky writer error")
	}
	if st := f.Stats(); !st.WriterFailed || !st.Degraded {
		t.Fatalf("stats = %+v, want WriterFailed and Degraded", st)
	}
	// The failure is sticky: further steps refuse immediately.
	if _, err := f.Step(); err == nil {
		t.Fatal("Step succeeded on a failed writer")
	}
	ffs.Disarm()
	if cerr := f.Close(); cerr == nil {
		t.Fatal("Close reported no error after sticky failure")
	}
}

// TestFollowerENOSPCCrashResume: the disk fills mid-drain and the
// process dies. The promoted checkpoint must never run ahead of
// durable data, and a fresh follower on the surviving (durable) disk
// must converge to the unfaulted run's exact bytes.
func TestFollowerENOSPCCrashResume(t *testing.T) {
	env, det, _ := testWorld(t)
	src := ChainSource(env.Chain)

	refMem := vfs.NewMemFS()
	refArc, err := archive.OpenFS(refMem, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	follow(t, src, det, refArc, Options{})
	if err := refArc.Close(); err != nil {
		t.Fatal(err)
	}
	want := archiveLogs(refMem.Snapshot().Volatile)

	// Phase 1: run against a disk with a small byte budget until the
	// writer dies of ENOSPC.
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, vfs.FaultPlan{})
	a, err := archive.OpenFS(ffs, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(src, det, a, Options{Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ffs.SetPlan(vfs.FaultPlan{WriteBudget: 512})
	if err := f.CatchUp(); err == nil {
		t.Fatal("CatchUp succeeded on a full disk")
	}
	if cerr := f.Close(); cerr == nil {
		t.Fatal("Close reported no error after ENOSPC failure")
	}
	if st := ffs.Stats(); st.InjectedENOSPC == 0 {
		t.Fatalf("ENOSPC never fired: %+v", st)
	}

	// Invariant: whatever checkpoint the live archive promoted must be
	// recoverable from the durable image — promotion never outruns
	// stable storage.
	liveCP, liveOK := a.Checkpoint()
	crash := mem.Snapshot()
	disk := vfs.NewMemFSFromFiles(crash.Dirs, crash.Durable)
	recovered, err := archive.OpenFS(disk, "arc", archive.Options{})
	if err != nil {
		t.Fatalf("reopen durable image: %v", err)
	}
	recCP, recOK := recovered.Checkpoint()
	if liveOK && (!recOK || recCP.Block < liveCP.Block) {
		t.Fatalf("promoted checkpoint %d not durable (recovered %d)", liveCP.Block, recCP.Block)
	}

	// Phase 2: resume on the recovered disk — space is back — and
	// require byte-identical convergence.
	f2, err := New(src, det, recovered, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.CatchUp(); err != nil {
		t.Fatalf("resume CatchUp: %v", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
	requireSameLogs(t, want, archiveLogs(disk.Snapshot().Volatile), "enospc resume")
}

// flakySource fails every Nth call with a transient error.
type flakySource struct {
	inner BlockSource
	every int
	fatal error // returned instead (once per Nth call) when set

	mu    sync.Mutex
	calls int
}

func (s *flakySource) tick() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.calls%s.every == 0 {
		if s.fatal != nil {
			return s.fatal
		}
		return fmt.Errorf("rpc timeout: %w", vfs.ErrTransient)
	}
	return nil
}

func (s *flakySource) HeadBlock() (uint64, error) {
	if err := s.tick(); err != nil {
		return 0, err
	}
	return s.inner.HeadBlock()
}

func (s *flakySource) BlockByNumber(n uint64) (*evm.Block, bool, error) {
	if err := s.tick(); err != nil {
		return nil, false, err
	}
	return s.inner.BlockByNumber(n)
}

// TestFollowerRetriesFlakySource: transient source failures are
// retried and the drain completes; a fatal source failure aborts the
// step with the source's error.
func TestFollowerRetriesFlakySource(t *testing.T) {
	env, det, attackTx := testWorld(t)

	mem := vfs.NewMemFS()
	a, err := archive.OpenFS(mem, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	src := &flakySource{inner: ChainSource(env.Chain), every: 3}
	f, err := New(src, det, a, Options{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CatchUp(); err != nil {
		t.Fatalf("CatchUp against flaky source: %v", err)
	}
	if st := f.Stats(); st.SourceRetries == 0 {
		t.Fatalf("no source retries recorded: %+v", st)
	}
	if _, ok, err := a.Get(attackTx); err != nil || !ok {
		t.Fatalf("attack report missing after flaky drain: %v %v", ok, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerFatalSourceErrorAborts: a non-transient source failure
// is not retried — the step returns it untouched for the operator.
func TestFollowerFatalSourceErrorAborts(t *testing.T) {
	env, det, _ := testWorld(t)

	mem := vfs.NewMemFS()
	a, err := archive.OpenFS(mem, "arc", archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	boom := errors.New("source corrupted")
	src := &flakySource{inner: ChainSource(env.Chain), every: 2, fatal: boom}
	f, err := New(src, det, a, Options{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = f.CatchUp()
	if !errors.Is(err, boom) {
		t.Fatalf("CatchUp = %v, want the fatal source error", err)
	}
	if st := f.Stats(); st.SourceRetries != 0 {
		t.Fatalf("fatal source error was retried: %+v", st)
	}
}
