package follower

import (
	"sync"
	"testing"

	"leishen/internal/archive"
)

// TestRaceFollowAndQuery hammers the read surface (stats, counts,
// selects) while the follower is catching up — the exact overlap a
// live /healthz + /reports deployment produces. Run under -race via
// `make race`.
func TestRaceFollowAndQuery(t *testing.T) {
	env, det, _ := testWorld(t)
	a := openArchive(t, t.TempDir())
	defer a.Close()
	f, err := New(ChainSource(env.Chain), det, a, Options{QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.Stats()
				a.Count()
				a.Checkpoint()
				if _, _, err := a.Select(archive.Query{Limit: 4}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
