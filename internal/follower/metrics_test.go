package follower

import (
	"strings"
	"testing"
	"time"

	"leishen/internal/evm"
	"leishen/internal/metrics"
)

// TestFollowerMetrics drives a catch-up with telemetry attached and
// checks the series agree with the follower's own Stats: every block
// counted, the queue drained, lag zero, writer counters mirrored.
func TestFollowerMetrics(t *testing.T) {
	env, det, _ := testWorld(t)
	dir := t.TempDir()
	arc := openArchive(t, dir)
	defer arc.Close()

	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	f, err := New(ChainSource(env.Chain), det, arc, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if got, want := m.Blocks.Value(), st.Checkpoint; got != want {
		t.Errorf("Blocks = %d, want %d (checkpointed head)", got, want)
	}
	if got := m.QueueDepth.Value(); got != 0 {
		t.Errorf("QueueDepth settled at %d, want 0", got)
	}
	if got := m.CheckpointLag.Value(); got != 0 {
		t.Errorf("CheckpointLag = %d, want 0 after CatchUp", got)
	}
	if m.Reorgs.Value() != 0 {
		t.Errorf("Reorgs = %d, want 0 on a linear chain", m.Reorgs.Value())
	}
	if got, want := m.Batches.Value(), st.WriterBatches; got != want {
		t.Errorf("Batches = %d, want %d", got, want)
	}
	if got, want := m.Ops.Value(), st.WriterOps; got != want {
		t.Errorf("Ops = %d, want %d", got, want)
	}
	if got, want := m.Syncs.Value(), st.WriterSyncs; got != want {
		t.Errorf("Syncs = %d, want %d", got, want)
	}
	if got, want := m.BatchOps.Count(), st.WriterBatches; got != want {
		t.Errorf("BatchOps observations = %d, want %d batches", got, want)
	}
	if got, want := m.FsyncSeconds.Count(), st.WriterSyncs; got != want {
		t.Errorf("FsyncSeconds observations = %d, want %d syncs", got, want)
	}

	out := string(reg.AppendText(nil))
	for _, want := range []string{
		"leishen_follower_blocks_total", "leishen_follower_queue_depth",
		"leishen_follower_write_batch_ops_bucket", "leishen_follower_fsync_seconds_count",
		"leishen_follower_checkpoint_lag_blocks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestFollowerMetricsReorg checks the rollback counter fires when the
// source's history is rewritten beneath the follower.
func TestFollowerMetricsReorg(t *testing.T) {
	env, det, _ := testWorld(t)
	canonical := env.Chain.Blocks()
	src := &fakeSource{blocks: canonical}
	arc := openArchive(t, t.TempDir())
	defer arc.Close()

	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	f, err := New(FromInfallible(src), det, arc, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// Rewrite blocks 2 and 3 on a re-timed branch, as TestReorgRollback
	// does, and re-follow.
	b2 := &evm.Block{Number: 2, Time: canonical[1].Time.Add(time.Second)}
	b3 := &evm.Block{Number: 3, Time: canonical[2].Time.Add(time.Second), Receipts: canonical[2].Receipts}
	src.mu.Lock()
	src.blocks = []*evm.Block{canonical[0], b2, b3}
	src.mu.Unlock()
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}

	if got := m.Reorgs.Value(); got != 1 {
		t.Errorf("Reorgs = %d, want 1 after a tip rewrite", got)
	}
	if got := m.CheckpointLag.Value(); got != 0 {
		t.Errorf("CheckpointLag = %d, want 0 after re-following", got)
	}
	if got, want := m.Blocks.Value(), uint64(3+2); got != want {
		t.Errorf("Blocks = %d, want %d (3 canonical + 2 re-followed)", got, want)
	}
}
