package follower

import "leishen/internal/metrics"

// Metrics is the follower's telemetry bundle. Attach via
// Options.Metrics; nil disables instrumentation (the daemons wire it,
// unit tests mostly run bare). The write-path metrics live in the
// writer goroutine's group-commit loop, so one block costs a few
// atomic adds and — only when a batch syncs — one timer read pair.
type Metrics struct {
	// Blocks counts blocks processed (screened, scanned, enqueued).
	Blocks *metrics.Counter
	// Reorgs counts realignments that actually rolled the archive back.
	Reorgs *metrics.Counter
	// QueueDepth is the write queue's current occupancy.
	QueueDepth *metrics.Gauge
	// CheckpointLag is source head minus the last durable checkpoint —
	// the follower's distance behind the chain.
	CheckpointLag *metrics.Gauge
	// BatchOps is the group-commit batch size distribution (appends +
	// checkpoints per writer wakeup); its mean is the fsync
	// amortization factor.
	BatchOps *metrics.Histogram
	// FsyncSeconds is the distribution of batch fsync wall times.
	FsyncSeconds *metrics.Histogram
	// Batches / Ops / Syncs mirror Stats' writer counters as live
	// series.
	Batches *metrics.Counter
	Ops     *metrics.Counter
	Syncs   *metrics.Counter
	// WriteRetries / SourceRetries count transient-failure retries on
	// the archive write path and the block source.
	WriteRetries  *metrics.Counter
	SourceRetries *metrics.Counter
	// Degraded is 1 while the writer is in retry/backoff, 0 otherwise —
	// the live form of the health endpoint's degraded flag.
	Degraded *metrics.Gauge
}

// NewMetrics registers the follower metric family on r and returns the
// bundle.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Blocks:        r.Counter("leishen_follower_blocks_total", "Blocks screened and scanned by the follower."),
		Reorgs:        r.Counter("leishen_follower_reorg_rollbacks_total", "Realignments that rolled the archive back to a fork point."),
		QueueDepth:    r.Gauge("leishen_follower_queue_depth", "Archive write queue occupancy (records and checkpoints waiting for the writer)."),
		CheckpointLag: r.Gauge("leishen_follower_checkpoint_lag_blocks", "Source head height minus the last durable checkpoint."),
		BatchOps: r.Histogram("leishen_follower_write_batch_ops",
			"Appends plus checkpoints applied per group-commit batch.", metrics.DefCountBuckets),
		FsyncSeconds: r.Histogram("leishen_follower_fsync_seconds",
			"Wall time of each group-commit fsync.", metrics.DefLatencyBuckets),
		Batches:       r.Counter("leishen_follower_writer_batches_total", "Group-commit batches committed by the writer."),
		Ops:           r.Counter("leishen_follower_writer_ops_total", "Records and checkpoints applied by the writer."),
		Syncs:         r.Counter("leishen_follower_writer_syncs_total", "Fsyncs issued by the writer."),
		WriteRetries:  r.Counter("leishen_follower_write_retries_total", "Transient archive-write failures retried with backoff."),
		SourceRetries: r.Counter("leishen_follower_source_retries_total", "Transient block-source failures retried with backoff."),
		Degraded:      r.Gauge("leishen_follower_degraded", "1 while the archive writer is in retry/backoff, 0 when healthy."),
	}
}
