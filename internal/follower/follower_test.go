package follower

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"leishen/internal/archive"
	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/scan"
	"leishen/internal/simplify"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// testWorld builds a small deterministic chain — benign swap traffic in
// blocks 1 and 3, one Harvest-style vault attack in block 2 — plus a
// detector with an injected constant clock, so report bytes (including
// ElapsedMicros) are identical across runs and the resume test can
// demand byte-identical archives.
func testWorld(t *testing.T) (*attacks.Env, *core.Detector, types.Hash) {
	t.Helper()
	env, err := attacks.NewEnv(attacks.ScenarioGenesis())
	if err != nil {
		t.Fatal(err)
	}
	site, err := attacks.NewVaultSite(env, "Harvest", "fUSDC", "20000000", 10)
	if err != nil {
		t.Fatal(err)
	}

	trader := env.Chain.NewEOA("")
	if err := env.Fund(trader, env.WETH, "10"); err != nil {
		t.Fatal(err)
	}
	mustSend := func(from, to types.Address, method string, args ...any) {
		t.Helper()
		if r := env.Chain.Send(from, to, method, args...); !r.Success {
			t.Fatalf("%s: %s", method, r.Err)
		}
	}
	mustSend(trader, env.WETH.Address, "approve", env.FundingPair, uint256.Max())
	mustSend(trader, env.WETH.Address, "transfer", env.FundingPair, env.WETH.Units("5"))
	mustSend(trader, env.FundingPair, "sync")
	env.Chain.MineBlock() // block 1

	contract := &attacks.AttackContract{
		Loan: attacks.LoanSpec{
			Provider: flashloan.ProviderAave,
			Lender:   env.AavePool,
			Token:    env.USDC,
			Amount:   env.USDC.Units("40000000"),
			FeeBps:   9,
		},
		Steps:        site.MBSSteps(3, "20000000", "14000000"),
		ProfitTokens: []types.Token{env.USDC},
	}
	attacker, contractAddr, err := env.NewAttacker(contract)
	if err != nil {
		t.Fatal(err)
	}
	r := env.Chain.Send(attacker, contractAddr, "attack")
	if !r.Success {
		t.Fatalf("attack: %s", r.Err)
	}
	env.Chain.MineBlock() // block 2

	mustSend(trader, env.FundingPair, "sync")
	env.Chain.MineBlock() // block 3

	det := core.NewDetector(env.Chain, env.Registry, core.Options{
		Simplify: simplify.Options{WETH: env.WETH},
		Clock:    func() time.Time { return attacks.ScenarioGenesis() },
	})
	return env, det, r.TxHash
}

func openArchive(t *testing.T, dir string) *archive.Archive {
	t.Helper()
	a, err := archive.Open(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func follow(t *testing.T, src BlockSource, det *core.Detector, a *archive.Archive, opts Options) {
	t.Helper()
	f, err := New(src, det, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFollowArchivesAttack(t *testing.T) {
	env, det, attackTx := testWorld(t)
	a := openArchive(t, t.TempDir())
	defer a.Close()

	f, err := New(ChainSource(env.Chain), det, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Head != 3 || st.Checkpoint != 3 || st.Lag != 0 {
		t.Fatalf("stats after catch-up = %+v", st)
	}
	if st.Summary.Attacks != 1 {
		t.Fatalf("summary = %+v, want exactly 1 attack", st.Summary)
	}
	if st.WriterOps == 0 || st.WriterBatches == 0 || st.WriterSyncs == 0 {
		t.Fatalf("writer counters unset: %+v", st)
	}
	if st.WriterSyncs > st.WriterBatches || st.WriterBatches > st.WriterOps {
		t.Fatalf("writer counters inconsistent (want syncs <= batches <= ops): %+v", st)
	}
	rec, ok, err := a.Get(attackTx)
	if err != nil || !ok {
		t.Fatalf("attack report missing: ok=%v err=%v", ok, err)
	}
	if rec.Flags&archive.FlagAttack == 0 {
		t.Fatalf("attack record flags = %08b", rec.Flags)
	}
	rep, err := core.DecodeReportJSON(rec.Report)
	if err != nil {
		t.Fatalf("stored report does not decode: %v", err)
	}
	if !rep.IsAttack || rep.Block != 2 {
		t.Fatalf("stored report = %+v", rep)
	}

	// Caught up: another catch-up is a no-op.
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != st.Summary.Inspected {
		t.Fatalf("idle catch-up changed the archive: %d records, summary %+v", got, st.Summary)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeFromTornArchive is the acceptance property: kill the
// process at ANY byte of the archive (simulated by truncating the
// active segment), restart the follower against the same chain, and the
// repaired-plus-resumed archive must be byte-identical to one written
// by an uninterrupted run.
func TestResumeFromTornArchive(t *testing.T) {
	env, det, _ := testWorld(t)

	refDir := t.TempDir()
	refArc := openArchive(t, refDir)
	follow(t, ChainSource(env.Chain), det, refArc, Options{})
	if err := refArc.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(refDir, "seg-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("reference archive segments: %v (err=%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	// The log is append-only, so its prefix at cut c is exactly the disk
	// state of a run killed mid-write at that moment.
	stride := 1
	if testing.Short() {
		stride = 17
	}
	for cut := 0; cut <= len(data); cut += stride {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		a := openArchive(t, dir)
		follow(t, ChainSource(env.Chain), det, a, Options{})
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		resumed, err := os.ReadFile(filepath.Join(dir, segName))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resumed, data) {
			t.Fatalf("cut %d: resumed archive differs from the uninterrupted run (%d vs %d bytes)",
				cut, len(resumed), len(data))
		}
	}
}

// fakeSource is a reorg-able BlockSource: a mutable slice of blocks.
type fakeSource struct {
	mu     sync.Mutex
	blocks []*evm.Block
}

func (s *fakeSource) HeadBlock() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.blocks))
}

func (s *fakeSource) BlockByNumber(n uint64) (*evm.Block, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 || n > uint64(len(s.blocks)) {
		return nil, false
	}
	return s.blocks[n-1], true
}

// TestReorgRollback: the chain reorgs beneath the follower — blocks 2
// and 3 are replaced — and the follower must roll the archive back to
// the fork point and re-follow the new canonical branch, dropping the
// orphaned attack report.
func TestReorgRollback(t *testing.T) {
	env, det, attackTx := testWorld(t)
	canonical := env.Chain.Blocks()
	src := &fakeSource{blocks: canonical}

	a := openArchive(t, t.TempDir())
	defer a.Close()
	f, err := New(FromInfallible(src), det, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get(attackTx); !ok {
		t.Fatal("attack not archived before the reorg")
	}

	// Reorg: same block 1, empty block 2', and block 3' carrying block 3's
	// benign traffic a second later (a reorged branch re-times its blocks).
	b2 := &evm.Block{Number: 2, Time: canonical[1].Time.Add(time.Second)}
	b3 := &evm.Block{Number: 3, Time: canonical[2].Time.Add(time.Second), Receipts: canonical[2].Receipts}
	src.mu.Lock()
	src.blocks = []*evm.Block{canonical[0], b2, b3}
	src.mu.Unlock()

	if err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := a.Get(attackTx); err != nil || ok {
		t.Fatalf("orphaned attack report survived the reorg (ok=%v err=%v)", ok, err)
	}
	cp, ok := a.Checkpoint()
	if !ok || cp.Block != 3 || cp.Digest != BlockDigest(b3) {
		t.Fatalf("checkpoint after reorg = %+v ok=%v, want block 3 on the new branch", cp, ok)
	}
	cps := a.Checkpoints()
	if len(cps) < 2 || cps[1].Digest != BlockDigest(b2) {
		t.Fatalf("checkpoint trail after reorg = %+v", cps)
	}
}

// TestBackpressureQueue: a one-slot write queue forces the processing
// side to block on the writer and still archives everything.
func TestBackpressureQueue(t *testing.T) {
	env, det, attackTx := testWorld(t)
	a := openArchive(t, t.TempDir())
	defer a.Close()
	follow(t, ChainSource(env.Chain), det, a, Options{QueueSize: 1, Scan: scan.Options{Workers: 2, ChunkSize: 1}})
	if _, ok, err := a.Get(attackTx); err != nil || !ok {
		t.Fatalf("attack lost under backpressure: ok=%v err=%v", ok, err)
	}
	if cp, ok := a.Checkpoint(); !ok || cp.Block != 3 {
		t.Fatalf("checkpoint = %+v ok=%v", cp, ok)
	}
}

// TestGroupCommitBatch drives the writer's commit directly with one
// multi-block batch and pins the group-commit contract: every append
// lands, exactly ONE fsync covers the whole batch, and the latest
// checkpoint only becomes observable once that sync has happened.
func TestGroupCommitBatch(t *testing.T) {
	env, det, _ := testWorld(t)
	a := openArchive(t, t.TempDir())
	defer a.Close()
	f, err := New(ChainSource(env.Chain), det, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var batch []writeOp
	for b := uint64(1); b <= 3; b++ {
		for i := 0; i < 4; i++ {
			batch = append(batch, writeOp{rec: &archive.Record{
				Kind:   archive.KindReport,
				TxHash: types.HashFromData([]byte{byte(b), byte(i)}),
				Block:  b,
				Flags:  archive.FlagFlashLoan,
				Report: []byte(`{}`),
			}})
		}
		blk, _ := env.Chain.BlockByNumber(b)
		batch = append(batch, writeOp{cp: &archive.Checkpoint{Block: b, Digest: BlockDigest(blk)}})
	}
	f.commit(batch)

	st := f.Stats()
	if st.WriterBatches != 1 || st.WriterOps != 15 || st.WriterSyncs != 1 {
		t.Fatalf("one 15-op batch should cost one sync, got %+v", st)
	}
	cp, ok := a.Checkpoint()
	if !ok || cp.Block != 3 {
		t.Fatalf("checkpoint after commit = %+v ok=%v, want block 3", cp, ok)
	}
	if got := a.Count(); got != 12 {
		t.Fatalf("archived %d records, want 12", got)
	}
}
