// Package follower turns the batch detection pipeline into a standing
// service: a daemon that follows a chain head, screens every new block's
// receipts for flash loans, runs the screened transactions through the
// scan engine, and records every verdict in a durable archive — the
// deployment the paper's conclusion envisions, a monitor "improving the
// ability to combat flpAttacks in Ethereum" continuously rather than
// per corpus.
//
// Progress lives in the archive itself: after each block the follower
// appends a checkpoint record (block number + block digest) and syncs,
// so a process killed at any byte and restarted resumes from the last
// durable checkpoint and reproduces the archive an uninterrupted run
// would have written. The digest trail doubles as reorg detection — on
// startup and whenever the source's history stops matching, the
// follower walks the checkpoint trail backwards to the fork point and
// rolls the archive back before re-following the new canonical chain.
//
// Writes flow through a bounded queue drained by a single writer
// goroutine; when the archive cannot keep up the queue fills and block
// processing blocks on the enqueue — backpressure instead of unbounded
// buffering.
package follower

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"leishen/internal/archive"
	"leishen/internal/core"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/metrics"
	"leishen/internal/scan"
	"leishen/internal/types"
	"leishen/internal/vfs"
)

// BlockSource is the chain the follower tails. Both methods may fail —
// a production deployment backs them with an execution-client RPC, and
// RPCs time out. Errors that classify as transient (vfs.IsTransient)
// are retried under Options.Retry; anything else aborts the step. An
// in-process *evm.Chain cannot fail: wrap it with ChainSource (or any
// error-free source with FromInfallible).
type BlockSource interface {
	// HeadBlock returns the number of the highest sealed block, 0 when
	// none are sealed yet.
	HeadBlock() (uint64, error)
	// BlockByNumber returns the sealed block at height n.
	BlockByNumber(n uint64) (*evm.Block, bool, error)
}

// DefaultQueueSize bounds the write queue: roughly a segment's worth of
// in-flight records before block processing blocks on the archive.
const DefaultQueueSize = 256

// DefaultPoll is the idle head-polling cadence, ~1/3 of the pre-merge
// inter-block time.
const DefaultPoll = 4 * time.Second

// Options configures a follower.
type Options struct {
	// Scan configures the worker pool each block's screened receipts run
	// on; the zero value means GOMAXPROCS workers.
	Scan scan.Options
	// QueueSize bounds the archive write queue; <= 0 means
	// DefaultQueueSize.
	QueueSize int
	// Poll is how long Run sleeps when caught up with the head; <= 0
	// means DefaultPoll.
	Poll time.Duration
	// Metrics, when non-nil, receives follower telemetry (blocks,
	// queue depth, batch sizes, fsync latency, reorg rollbacks,
	// retries, degradation). Instrumentation never changes what is
	// archived.
	Metrics *Metrics
	// Retry bounds how transient archive-write and source failures are
	// retried; the zero value means the defaults (see RetryPolicy).
	Retry RetryPolicy
}

func (o Options) queueSize() int {
	if o.QueueSize > 0 {
		return o.QueueSize
	}
	return DefaultQueueSize
}

func (o Options) poll() time.Duration {
	if o.Poll > 0 {
		return o.Poll
	}
	return DefaultPoll
}

// Stats is a point-in-time progress snapshot.
type Stats struct {
	// Head is the source's current head block.
	Head uint64 `json:"head"`
	// Checkpoint is the highest durably archived block.
	Checkpoint uint64 `json:"checkpoint"`
	// Lag is Head - Checkpoint, the follower's distance behind the chain.
	Lag uint64 `json:"lag"`
	// Summary aggregates the verdicts of every block processed by this
	// process (not recovered history).
	Summary scan.Summary `json:"summary"`
	// WriterBatches / WriterOps / WriterSyncs describe the group-commit
	// writer: batches committed, records+checkpoints applied, and fsyncs
	// issued. Ops per sync is the group-commit amortization factor.
	WriterBatches uint64 `json:"writerBatches"`
	WriterOps     uint64 `json:"writerOps"`
	WriterSyncs   uint64 `json:"writerSyncs"`
	// Degraded reports the writer is mid retry/backoff or has failed
	// for good; WriterFailed distinguishes the latter.
	Degraded     bool `json:"degraded"`
	WriterFailed bool `json:"writerFailed"`
	// WriteRetries / SourceRetries count transient-failure retries of
	// archive writes and source calls.
	WriteRetries  uint64 `json:"writeRetries"`
	SourceRetries uint64 `json:"sourceRetries"`
}

// writeOp is one unit of work for the writer goroutine: a report
// append, a checkpoint (which syncs), or a flush barrier.
type writeOp struct {
	rec   *archive.Record
	cp    *archive.Checkpoint
	flush chan error
}

// Follower tails a BlockSource into an Archive.
type Follower struct {
	src  BlockSource
	det  *core.Detector
	arc  *archive.Archive
	opts Options

	queue chan writeOp
	done  chan struct{}
	sleep func(time.Duration) // backoff sleeper; tests shorten it
	wrng  *rand.Rand          // jitter: writer goroutine only
	srng  *rand.Rand          // jitter: the stepping goroutine only

	mu            sync.Mutex
	next          uint64 // next block height to process
	summary       scan.Summary
	writeErr      error // sticky fatal writer failure
	degraded      bool  // writer currently in retry/backoff
	closed        bool
	lastHead      uint64 // newest head the source reported
	writerBatches uint64
	writerOps     uint64
	writerSyncs   uint64
	writeRetries  uint64
	sourceRetries uint64
}

// New builds a follower and repairs/aligns the archive against the
// source: records beyond the last durable checkpoint (a crash mid
// block) are rolled back, then the checkpoint trail is walked backwards
// past any reorged blocks to the fork point. The returned follower is
// ready to Step, CatchUp or Run.
func New(src BlockSource, det *core.Detector, arc *archive.Archive, opts Options) (*Follower, error) {
	f := &Follower{
		src:   src,
		det:   det,
		arc:   arc,
		opts:  opts,
		queue: make(chan writeOp, opts.queueSize()),
		done:  make(chan struct{}),
		sleep: time.Sleep,
		wrng:  rand.New(rand.NewSource(opts.Retry.Seed)),
		srng:  rand.New(rand.NewSource(opts.Retry.Seed + 1)),
	}
	fork, err := f.forkPoint()
	if err != nil {
		return nil, err
	}
	if _, err := arc.RollbackAbove(fork); err != nil {
		return nil, err
	}
	f.next = fork + 1
	go f.writer()
	return f, nil
}

// forkPoint walks the archived checkpoint trail from the newest
// backwards and returns the highest block the source still agrees with
// (0 when history diverged entirely or nothing is archived).
func (f *Follower) forkPoint() (uint64, error) {
	cps := f.arc.Checkpoints()
	for i := len(cps) - 1; i >= 0; i-- {
		b, ok, err := f.blockByNumber(cps[i].Block)
		if err != nil {
			return 0, err
		}
		if ok && BlockDigest(b) == cps[i].Digest {
			return cps[i].Block, nil
		}
	}
	return 0, nil
}

// headBlock polls the source head, retrying transient failures.
func (f *Follower) headBlock() (uint64, error) {
	var head uint64
	err := f.retrySource(func() (err error) {
		head, err = f.src.HeadBlock()
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("follower: source head: %w", err)
	}
	f.mu.Lock()
	f.lastHead = head
	f.mu.Unlock()
	return head, nil
}

// blockByNumber fetches one block, retrying transient failures.
func (f *Follower) blockByNumber(n uint64) (*evm.Block, bool, error) {
	var (
		blk *evm.Block
		ok  bool
	)
	err := f.retrySource(func() (err error) {
		blk, ok, err = f.src.BlockByNumber(n)
		return err
	})
	if err != nil {
		return nil, false, fmt.Errorf("follower: source block %d: %w", n, err)
	}
	return blk, ok, nil
}

// retrySource runs one source call under the retry policy on the
// stepping goroutine's jitter stream. Source trouble alone does not
// mark the follower degraded — checkpoint lag already measures it.
func (f *Follower) retrySource(op func() error) error {
	pol := f.opts.Retry
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || !vfs.IsTransient(err) || attempt >= pol.maxAttempts() {
			return err
		}
		f.mu.Lock()
		f.sourceRetries++
		f.mu.Unlock()
		if m := f.opts.Metrics; m != nil {
			m.SourceRetries.Inc()
		}
		f.sleep(pol.backoff(f.srng, attempt))
	}
}

// retryWrite runs one archive operation under the retry policy on the
// writer's jitter stream. While backing off the follower reports
// itself degraded; the flag clears when the operation lands. A
// non-transient error — or a transient one that outlives the attempt
// budget — is returned for the caller to make sticky.
func (f *Follower) retryWrite(op func() error) error {
	pol := f.opts.Retry
	m := f.opts.Metrics
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || !vfs.IsTransient(err) || attempt >= pol.maxAttempts() {
			break
		}
		f.mu.Lock()
		f.degraded = true
		f.writeRetries++
		f.mu.Unlock()
		if m != nil {
			m.WriteRetries.Inc()
			m.Degraded.Set(1)
		}
		f.sleep(pol.backoff(f.wrng, attempt))
	}
	if err == nil {
		f.mu.Lock()
		wasDegraded := f.degraded
		f.degraded = false
		f.mu.Unlock()
		if m != nil && wasDegraded {
			m.Degraded.Set(0)
		}
	}
	return err
}

// BlockDigest fingerprints a block for checkpointing: its height,
// timestamp and ordered transaction hashes. Two blocks at the same
// height with different contents — a reorg — digest differently.
func BlockDigest(b *evm.Block) types.Hash {
	parts := make([][]byte, 0, 2+len(b.Receipts))
	var nb, tb [8]byte
	binary.BigEndian.PutUint64(nb[:], b.Number)
	binary.BigEndian.PutUint64(tb[:], uint64(b.Time.UnixNano()))
	parts = append(parts, nb[:], tb[:])
	for _, r := range b.Receipts {
		parts = append(parts, r.TxHash[:])
	}
	return types.HashFromData(parts...)
}

// writer is the single goroutine that owns archive appends. It group
// commits: each wakeup drains whatever the queue holds (up to its
// capacity), applies every append, then issues ONE Sync if the batch
// carried a checkpoint — so a burst of blocks costs one fsync instead
// of one per block, while an idle follower still syncs every block.
// The first failure is sticky: subsequent ops are refused so the
// archive never holds records past a failed write, and flush barriers
// surface the error to the processing side.
func (f *Follower) writer() {
	defer close(f.done)
	batch := make([]writeOp, 0, cap(f.queue))
	for op := range f.queue {
		batch = append(batch[:0], op)
	drain:
		for len(batch) < cap(batch) {
			select {
			case more, ok := <-f.queue:
				if !ok {
					f.commit(batch)
					return
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		f.commit(batch)
	}
}

// commit applies one drained batch. Ordering is the durability
// argument: appends land first (checkpoints deferred, so not yet
// observable), then one Sync promotes the batch's checkpoints, and only
// then are flush barriers answered — a Flush caller can never observe a
// checkpoint whose records are still volatile, and realign's fork-point
// walk after Flush sees only durable checkpoints.
//
// Every archive operation runs under the transient-retry policy; each
// is individually idempotent (a failed append buffers nothing, a
// failed sync promotes nothing), so a retry can never double-apply.
// Only a fatal error — or a transient one that exhausts the attempt
// budget — goes sticky and stops the writer.
func (f *Follower) commit(batch []writeOp) {
	err := f.stickyErr()
	appends, cps := 0, 0
	for _, op := range batch {
		if op.flush != nil || err != nil {
			continue
		}
		switch {
		case op.rec != nil:
			rec := op.rec
			if err = f.retryWrite(func() error { return f.arc.AppendReport(rec) }); err == nil {
				appends++
			}
		case op.cp != nil:
			cp := *op.cp
			if err = f.retryWrite(func() error { return f.arc.AppendCheckpointDeferred(cp) }); err == nil {
				cps++
			}
		}
	}
	m := f.opts.Metrics
	synced := false
	if err == nil && cps > 0 {
		var t metrics.Timer
		if m != nil {
			t = m.FsyncSeconds.Start()
		}
		err = f.retryWrite(func() error { return f.arc.Sync() })
		t.Stop()
		synced = err == nil
	}
	f.mu.Lock()
	if err != nil && f.writeErr == nil {
		f.writeErr = err
	}
	if appends+cps > 0 {
		f.writerBatches++
		f.writerOps += uint64(appends + cps)
	}
	if synced {
		f.writerSyncs++
	}
	sticky := f.writeErr
	f.mu.Unlock()
	if m != nil {
		if appends+cps > 0 {
			m.Batches.Inc()
			m.Ops.Add(uint64(appends + cps))
			m.BatchOps.Observe(float64(appends + cps))
		}
		if synced {
			m.Syncs.Inc()
		}
		m.QueueDepth.Set(int64(len(f.queue)))
	}
	for _, op := range batch {
		if op.flush != nil {
			op.flush <- sticky
		}
	}
}

func (f *Follower) stickyErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeErr
}

// Flush waits until every enqueued write has reached the archive and
// returns the first write error, if any.
func (f *Follower) Flush() error {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return ErrClosed
	}
	ch := make(chan error, 1)
	f.queue <- writeOp{flush: ch}
	return <-ch
}

// Step processes at most one pending block: reorg check, screen, scan,
// enqueue records, enqueue checkpoint. It returns whether a block was
// processed (false when caught up with the head).
func (f *Follower) Step() (bool, error) {
	if err := f.stickyErr(); err != nil {
		return false, err
	}
	f.mu.Lock()
	next, closed := f.next, f.closed
	f.mu.Unlock()
	if closed {
		return false, ErrClosed
	}

	head, err := f.headBlock()
	if err != nil {
		return false, err
	}
	if next > head {
		// Caught up — but the chain may have reorged beneath us, shrinking
		// or rewriting history we already archived.
		if reorged, err := f.realign(); err != nil || !reorged {
			if m := f.opts.Metrics; m != nil && err == nil {
				f.observeLag(m, head)
			}
			return false, err
		}
		return true, nil
	}
	blk, ok, err := f.blockByNumber(next)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("follower: source has head %d but no block %d", head, next)
	}

	// Shallow-reorg check: the block we are about to extend must still be
	// the one we checkpointed.
	if cp, ok := f.arc.Checkpoint(); ok && cp.Block == next-1 {
		prev, ok, err := f.blockByNumber(next - 1)
		if err != nil {
			return false, err
		}
		if !ok || BlockDigest(prev) != cp.Digest {
			if _, err := f.realign(); err != nil {
				return false, err
			}
			return true, nil
		}
	}

	// Screen the block: only successful flash loan transactions enter the
	// pipeline, the same gate the HTTP monitor applies.
	screened := make([]*evm.Receipt, 0, len(blk.Receipts))
	for _, r := range blk.Receipts {
		if r.Success && flashloan.IsFlashLoanTx(r) {
			screened = append(screened, r)
		}
	}
	sum, err := scan.Each(f.det, screened, f.opts.Scan, func(_ int, rep *core.Report) error {
		raw, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		f.queue <- writeOp{rec: &archive.Record{
			Kind:   archive.KindReport,
			TxHash: rep.TxHash,
			Block:  rep.Block,
			Flags:  recordFlags(rep),
			Report: raw,
		}}
		return nil
	})
	if err != nil {
		return false, err
	}
	f.queue <- writeOp{cp: &archive.Checkpoint{Block: blk.Number, Digest: BlockDigest(blk)}}

	f.mu.Lock()
	f.next = next + 1
	f.summary.Add(sum)
	f.mu.Unlock()
	if m := f.opts.Metrics; m != nil {
		m.Blocks.Inc()
		m.QueueDepth.Set(int64(len(f.queue)))
		f.observeLag(m, head)
	}
	return true, nil
}

// observeLag records source head minus the last durable checkpoint.
func (f *Follower) observeLag(m *Metrics, head uint64) {
	var cpBlock uint64
	if cp, ok := f.arc.Checkpoint(); ok {
		cpBlock = cp.Block
	}
	var lag uint64
	if head > cpBlock {
		lag = head - cpBlock
	}
	m.CheckpointLag.Set(int64(lag))
}

// recordFlags derives the index flags stored beside the report bytes.
func recordFlags(rep *core.Report) uint8 {
	var flags uint8
	if len(rep.Loans) > 0 {
		flags |= archive.FlagFlashLoan
	}
	if rep.IsAttack {
		flags |= archive.FlagAttack
	}
	if rep.SuppressedByHeuristic {
		flags |= archive.FlagSuppressed
	}
	return flags
}

// realign flushes pending writes, re-walks the checkpoint trail against
// the source, and rolls the archive back to the fork point. It reports
// whether anything had to move.
func (f *Follower) realign() (bool, error) {
	if err := f.Flush(); err != nil {
		return false, err
	}
	fork, err := f.forkPoint()
	if err != nil {
		return false, err
	}
	f.mu.Lock()
	aligned := f.next == fork+1
	f.mu.Unlock()
	if aligned {
		return false, nil
	}
	if _, err := f.arc.RollbackAbove(fork); err != nil {
		return false, err
	}
	f.mu.Lock()
	f.next = fork + 1
	f.mu.Unlock()
	if m := f.opts.Metrics; m != nil {
		m.Reorgs.Inc()
	}
	return true, nil
}

// CatchUp steps until the follower is level with the source head, then
// flushes, so on return every processed block is durably archived and
// checkpointed.
func (f *Follower) CatchUp() error {
	for {
		processed, err := f.Step()
		if err != nil {
			return err
		}
		if !processed {
			break
		}
	}
	return f.Flush()
}

// Run follows the chain until the context is cancelled: catch up, sleep
// one poll interval, repeat.
func (f *Follower) Run(ctx context.Context) error {
	ticker := time.NewTicker(f.opts.poll())
	defer ticker.Stop()
	for {
		if err := f.CatchUp(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close drains the write queue and stops the writer. The archive itself
// stays open — it belongs to the caller.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		<-f.done
		return f.stickyErr()
	}
	f.closed = true
	f.mu.Unlock()
	close(f.queue)
	<-f.done
	return f.stickyErr()
}

// Stats snapshots progress for health endpoints. Head is the newest
// height the source has reported to Step — a cached value, so Stats
// never blocks on (or fails with) the source.
func (f *Follower) Stats() Stats {
	var cpBlock uint64
	if cp, ok := f.arc.Checkpoint(); ok {
		cpBlock = cp.Block
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	head := f.lastHead
	var lag uint64
	if head > cpBlock {
		lag = head - cpBlock
	}
	return Stats{
		Head: head, Checkpoint: cpBlock, Lag: lag, Summary: f.summary,
		WriterBatches: f.writerBatches, WriterOps: f.writerOps, WriterSyncs: f.writerSyncs,
		Degraded:     f.degraded || f.writeErr != nil,
		WriterFailed: f.writeErr != nil,
		WriteRetries: f.writeRetries, SourceRetries: f.sourceRetries,
	}
}

// Degraded reports whether the archive writer is mid retry/backoff or
// has failed for good — the health endpoint's 503 signal.
func (f *Follower) Degraded() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.degraded || f.writeErr != nil
}

// WriterErr returns the sticky fatal writer error, nil while the
// writer is healthy (including while it is retrying a transient
// fault).
func (f *Follower) WriterErr() error {
	return f.stickyErr()
}

// ErrClosed is returned by operations on a closed follower.
var ErrClosed = errors.New("follower: closed")
