// Transient-fault handling: error classification, the retry policy,
// and the source adapters that let fallible (RPC-backed) and
// infallible (in-process chain) block sources share one interface.
//
// The fault model splits failures in two. Transient failures —
// interrupted or short writes, out-of-space, timeouts, anything
// vfs.IsTransient accepts — are survivable: the archive's write path
// is designed so a failed operation leaves nothing half-applied, which
// makes retrying it sound. The follower answers them with bounded
// jittered exponential backoff and reports itself degraded while it
// waits. Everything else — corruption, closed handles, logic errors —
// is fatal: retrying cannot help and might make things worse, so the
// first fatal error is sticky and stops the writer for good.
package follower

import (
	"math/rand"
	"time"

	"leishen/internal/evm"
)

// InfallibleSource is the error-free block source surface *evm.Chain
// provides: an in-process chain that cannot fail to answer.
type InfallibleSource interface {
	// HeadBlock returns the number of the highest sealed block, 0 when
	// none are sealed yet.
	HeadBlock() uint64
	// BlockByNumber returns the sealed block at height n.
	BlockByNumber(n uint64) (*evm.Block, bool)
}

// FromInfallible adapts an InfallibleSource to the fallible
// BlockSource interface the follower tails.
func FromInfallible(s InfallibleSource) BlockSource { return infallibleSource{s} }

// ChainSource is the common case: follow an in-process *evm.Chain.
func ChainSource(c *evm.Chain) BlockSource { return FromInfallible(c) }

type infallibleSource struct{ s InfallibleSource }

func (a infallibleSource) HeadBlock() (uint64, error) { return a.s.HeadBlock(), nil }

func (a infallibleSource) BlockByNumber(n uint64) (*evm.Block, bool, error) {
	b, ok := a.s.BlockByNumber(n)
	return b, ok, nil
}

// RetryPolicy bounds how the follower retries transient failures:
// jittered exponential backoff from BaseDelay, capped at MaxDelay, for
// at most MaxAttempts total attempts. The zero value means the
// defaults.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per operation (first try
	// included); <= 0 means DefaultRetryAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; <= 0 means
	// DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; <= 0 means
	// DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Seed drives the jitter; a given seed replays a given backoff
	// sequence.
	Seed int64
}

// Default retry bounds: six attempts spanning roughly three seconds of
// backoff — long enough to ride out an fsync hiccup or a filled disk
// being cleaned, short enough that a dead disk turns into a fatal
// error promptly.
const (
	DefaultRetryAttempts  = 6
	DefaultRetryBaseDelay = 10 * time.Millisecond
	DefaultRetryMaxDelay  = 2 * time.Second
)

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultRetryAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return DefaultRetryBaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return DefaultRetryMaxDelay
}

// backoff returns the sleep before the attempt'th retry (1-based):
// equal jitter over an exponentially growing, capped window — half the
// window deterministic so retries always spread out, half random so
// concurrent retriers decorrelate.
func (p RetryPolicy) backoff(rng *rand.Rand, attempt int) time.Duration {
	d := p.baseDelay()
	max := p.maxDelay()
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
