// Package flashloan identifies flash loan transactions from the three
// providers of paper Table II:
//
//	Uniswap:  swap call followed by a uniswapV2Call callback
//	AAVE:     flashLoan call emitting a FlashLoan event
//	dYdX:     Operate composing Withdraw/Call/Deposit, emitting
//	          LogOperation, LogWithdraw, LogCall, LogDeposit
//
// Identification is the entry gate of the pipeline: only transactions with
// at least one identified flash loan proceed to transfer extraction.
package flashloan

import (
	"fmt"

	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Provider enumerates flash loan sources.
type Provider int

// Providers.
const (
	// ProviderUniswap is a Uniswap V2-style flash swap.
	ProviderUniswap Provider = iota + 1
	// ProviderAave is an AAVE-style flashLoan call.
	ProviderAave
	// ProviderDydx is a dYdX solo-margin operate composition.
	ProviderDydx
)

// String names the provider.
func (p Provider) String() string {
	switch p {
	case ProviderUniswap:
		return "Uniswap"
	case ProviderAave:
		return "AAVE"
	case ProviderDydx:
		return "dYdX"
	default:
		return fmt.Sprintf("Provider(%d)", int(p))
	}
}

// Loan describes one identified flash loan inside a transaction.
type Loan struct {
	// Provider is the lending venue.
	Provider Provider
	// Lender is the providing contract (pair / pool / solo margin).
	Lender types.Address
	// Borrower is the receiving contract (the flash loan borrower whose
	// trades the attack patterns are matched against).
	Borrower types.Address
	// Token is the borrowed asset's contract address.
	Token types.Address
	// Amount is the borrowed quantity in base units.
	Amount uint256.Int
	// Seq is the happened-before position of the lending transfer.
	Seq uint64
}

// Identify scans a receipt for flash loans from all three providers. A
// transaction may contain several (seven of the 44 studied attacks
// borrowed from more than one provider at once).
//
// The marker pre-scan makes the non-flash-loan majority allocation-free:
// a receipt with no provider marker returns nil without building any
// intermediate state, which is what keeps corpus scanning cheap.
func Identify(r *evm.Receipt) []Loan {
	if r == nil || !r.Success {
		return nil
	}
	uniswap, aave, dydx := markers(r)
	if !uniswap && !aave && !dydx {
		return nil
	}
	var loans []Loan
	if uniswap {
		loans = identifyUniswapInto(loans, r)
	}
	if aave {
		loans = identifyAaveInto(loans, r)
	}
	if dydx {
		loans = append(loans, identifyDydx(r)...)
	}
	return loans
}

// markers reports, without allocating, which providers' entry markers
// appear in the receipt: a uniswapV2Call callback frame, a FlashLoan
// event, or a LogOperation event.
func markers(r *evm.Receipt) (uniswap, aave, dydx bool) {
	for i := range r.InternalTxs {
		if r.InternalTxs[i].Method == "uniswapV2Call" {
			uniswap = true
			break
		}
	}
	for i := range r.Logs {
		switch r.Logs[i].Event {
		case "FlashLoan":
			aave = true
		case "LogOperation":
			dydx = true
		}
		if aave && dydx {
			break
		}
	}
	return uniswap, aave, dydx
}

// IsFlashLoanTx reports whether the transaction contains any flash loan.
func IsFlashLoanTx(r *evm.Receipt) bool { return len(Identify(r)) > 0 }

// identifyUniswapInto finds swap frames whose recipient is called back
// via uniswapV2Call within the same pair call, and recovers the
// borrowed amount from the Transfer logs emitted between the two
// frames, appending the loans to dst.
func identifyUniswapInto(loans []Loan, r *evm.Receipt) []Loan {
	for _, it := range r.InternalTxs {
		if it.Method != "uniswapV2Call" {
			continue
		}
		// The caller of uniswapV2Call is the pair; the callee is the
		// borrower. Find the swap frame on the same pair that precedes
		// this callback.
		pair, borrower := it.From, it.To
		var swapSeq uint64
		var found bool
		for _, s := range r.InternalTxs {
			if s.Method == "swap" && s.To == pair && s.Seq < it.Seq {
				swapSeq, found = s.Seq, true
			}
		}
		if !found {
			continue
		}
		// Borrowed assets: Transfer logs from the pair to the borrower
		// between the swap call and the callback.
		for _, lg := range r.Logs {
			if lg.Event != "Transfer" || lg.Seq <= swapSeq || lg.Seq >= it.Seq {
				continue
			}
			if len(lg.Addrs) == 2 && lg.Addrs[0] == pair && lg.Addrs[1] == borrower && len(lg.Amounts) == 1 {
				loans = append(loans, Loan{
					Provider: ProviderUniswap,
					Lender:   pair,
					Borrower: borrower,
					Token:    lg.Address,
					Amount:   lg.Amounts[0],
					Seq:      lg.Seq,
				})
			}
		}
	}
	return loans
}

// identifyAaveInto matches FlashLoan events, appending to dst.
func identifyAaveInto(loans []Loan, r *evm.Receipt) []Loan {
	for _, lg := range r.Logs {
		if lg.Event != "FlashLoan" || len(lg.Addrs) < 2 || len(lg.Amounts) < 1 {
			continue
		}
		loans = append(loans, Loan{
			Provider: ProviderAave,
			Lender:   lg.Address,
			Borrower: lg.Addrs[0],
			Token:    lg.Addrs[1],
			Amount:   lg.Amounts[0],
			Seq:      lg.Seq,
		})
	}
	return loans
}

// identifyDydx matches the LogOperation / LogWithdraw / LogCall /
// LogDeposit sequence emitted by the same solo-margin contract.
func identifyDydx(r *evm.Receipt) []Loan {
	// Group the four log kinds by emitting contract, in order.
	type pending struct {
		withdraw *evm.Log
		sawCall  bool
	}
	state := make(map[types.Address]*pending)
	var loans []Loan
	for i := range r.Logs {
		lg := &r.Logs[i]
		switch lg.Event {
		case "LogOperation":
			state[lg.Address] = &pending{}
		case "LogWithdraw":
			if p, ok := state[lg.Address]; ok {
				p.withdraw = lg
				p.sawCall = false
			}
		case "LogCall":
			if p, ok := state[lg.Address]; ok && p.withdraw != nil {
				p.sawCall = true
			}
		case "LogDeposit":
			p, ok := state[lg.Address]
			if !ok || p.withdraw == nil || !p.sawCall {
				continue
			}
			w := p.withdraw
			if len(w.Addrs) >= 2 && len(w.Amounts) >= 1 {
				loans = append(loans, Loan{
					Provider: ProviderDydx,
					Lender:   lg.Address,
					Borrower: w.Addrs[0],
					Token:    w.Addrs[1],
					Amount:   w.Amounts[0],
					Seq:      w.Seq,
				})
			}
			p.withdraw = nil
			p.sawCall = false
		}
	}
	return loans
}
