package flashloan

import (
	"testing"

	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

var (
	pair     = types.Address{0x9A, 1}
	borrower = types.Address{0xB0, 2}
	tokenA   = types.Address{0x70, 3}
	aavePool = types.Address{0xAA, 4}
	solo     = types.Address{0xD0, 5}
	user     = types.Address{0xE0, 6}
)

func receipt(itxs []evm.InternalTx, logs []evm.Log) *evm.Receipt {
	return &evm.Receipt{Success: true, InternalTxs: itxs, Logs: logs}
}

func TestUniswapFlashSwapIdentified(t *testing.T) {
	r := receipt(
		[]evm.InternalTx{
			{Seq: 0, From: user, To: borrower, Method: "attack"},
			{Seq: 1, From: borrower, To: pair, Method: "swap"},
			{Seq: 3, From: pair, To: borrower, Method: "uniswapV2Call"},
		},
		[]evm.Log{
			{Seq: 2, Address: tokenA, Event: "Transfer",
				Addrs: []types.Address{pair, borrower}, Amounts: []uint256.Int{uint256.FromUint64(500)}},
		},
	)
	loans := Identify(r)
	if len(loans) != 1 {
		t.Fatalf("loans = %v", loans)
	}
	l := loans[0]
	if l.Provider != ProviderUniswap || l.Lender != pair || l.Borrower != borrower {
		t.Errorf("loan = %+v", l)
	}
	if l.Token != tokenA || l.Amount.Uint64() != 500 {
		t.Errorf("loan asset = %+v", l)
	}
	if !IsFlashLoanTx(r) {
		t.Error("IsFlashLoanTx = false")
	}
}

func TestOrdinarySwapNotFlashLoan(t *testing.T) {
	// A swap with no callback is a plain trade.
	r := receipt(
		[]evm.InternalTx{
			{Seq: 0, From: user, To: pair, Method: "swap"},
		},
		[]evm.Log{
			{Seq: 1, Address: tokenA, Event: "Transfer",
				Addrs: []types.Address{pair, user}, Amounts: []uint256.Int{uint256.FromUint64(10)}},
		},
	)
	if loans := Identify(r); len(loans) != 0 {
		t.Errorf("loans = %v", loans)
	}
}

func TestAaveFlashLoanIdentified(t *testing.T) {
	r := receipt(nil, []evm.Log{
		{Seq: 5, Address: aavePool, Event: "FlashLoan",
			Addrs:   []types.Address{borrower, tokenA},
			Amounts: []uint256.Int{uint256.FromUint64(1000), uint256.FromUint64(9)}},
	})
	loans := Identify(r)
	if len(loans) != 1 || loans[0].Provider != ProviderAave {
		t.Fatalf("loans = %v", loans)
	}
	if loans[0].Amount.Uint64() != 1000 || loans[0].Lender != aavePool {
		t.Errorf("loan = %+v", loans[0])
	}
}

func TestDydxSequenceIdentified(t *testing.T) {
	logs := []evm.Log{
		{Seq: 0, Address: solo, Event: "LogOperation", Addrs: []types.Address{user}},
		{Seq: 1, Address: solo, Event: "LogWithdraw",
			Addrs: []types.Address{borrower, tokenA}, Amounts: []uint256.Int{uint256.FromUint64(77)}},
		{Seq: 2, Address: solo, Event: "LogCall", Addrs: []types.Address{borrower}},
		{Seq: 3, Address: solo, Event: "LogDeposit",
			Addrs: []types.Address{borrower, tokenA}, Amounts: []uint256.Int{uint256.FromUint64(79)}},
	}
	loans := Identify(receipt(nil, logs))
	if len(loans) != 1 || loans[0].Provider != ProviderDydx {
		t.Fatalf("loans = %v", loans)
	}
	if loans[0].Amount.Uint64() != 77 || loans[0].Borrower != borrower {
		t.Errorf("loan = %+v", loans[0])
	}
}

func TestDydxIncompleteSequenceIgnored(t *testing.T) {
	// Withdraw + Deposit without the Call action is a plain rebalance.
	logs := []evm.Log{
		{Seq: 0, Address: solo, Event: "LogOperation", Addrs: []types.Address{user}},
		{Seq: 1, Address: solo, Event: "LogWithdraw",
			Addrs: []types.Address{borrower, tokenA}, Amounts: []uint256.Int{uint256.FromUint64(77)}},
		{Seq: 2, Address: solo, Event: "LogDeposit",
			Addrs: []types.Address{borrower, tokenA}, Amounts: []uint256.Int{uint256.FromUint64(77)}},
	}
	if loans := Identify(receipt(nil, logs)); len(loans) != 0 {
		t.Errorf("loans = %v", loans)
	}
}

func TestMultiProviderLoans(t *testing.T) {
	// Beanstalk-style: multiple providers in one transaction.
	r := receipt(
		[]evm.InternalTx{
			{Seq: 0, From: borrower, To: pair, Method: "swap"},
			{Seq: 2, From: pair, To: borrower, Method: "uniswapV2Call"},
		},
		[]evm.Log{
			{Seq: 1, Address: tokenA, Event: "Transfer",
				Addrs: []types.Address{pair, borrower}, Amounts: []uint256.Int{uint256.FromUint64(500)}},
			{Seq: 3, Address: aavePool, Event: "FlashLoan",
				Addrs:   []types.Address{borrower, tokenA},
				Amounts: []uint256.Int{uint256.FromUint64(1000), uint256.FromUint64(9)}},
		},
	)
	loans := Identify(r)
	if len(loans) != 2 {
		t.Fatalf("loans = %v", loans)
	}
}

func TestFailedTxHasNoLoans(t *testing.T) {
	r := receipt(nil, []evm.Log{
		{Seq: 0, Address: aavePool, Event: "FlashLoan",
			Addrs:   []types.Address{borrower, tokenA},
			Amounts: []uint256.Int{uint256.FromUint64(1)}},
	})
	r.Success = false
	if loans := Identify(r); len(loans) != 0 {
		t.Errorf("loans from failed tx = %v", loans)
	}
	if Identify(nil) != nil {
		t.Error("nil receipt")
	}
}

func TestProviderString(t *testing.T) {
	if ProviderUniswap.String() != "Uniswap" || ProviderAave.String() != "AAVE" || ProviderDydx.String() != "dYdX" {
		t.Error("provider names")
	}
	if Provider(9).String() == "" {
		t.Error("unknown provider renders empty")
	}
}
