package flashloan

import (
	"leishen/internal/evm"
	"leishen/internal/types"
)

// Scratch holds the reusable working state of flash loan identification
// so steady-state scanning reuses buffers instead of reallocating per
// transaction. The zero value is ready to use; not safe for concurrent
// use. The slice returned by IdentifyScratch aliases the scratch and is
// only valid until the next call with the same scratch.
type Scratch struct {
	loans  []Loan
	states []dydxState
}

// dydxState is the linear-scan replacement for identifyDydx's
// per-contract map: transactions touch at most a handful of solo-margin
// contracts, so a slice searched linearly beats a map that must be
// allocated per call. withdraw is an index into r.Logs (-1 when unset)
// rather than a pointer so a reused scratch never retains receipt
// memory across transactions.
type dydxState struct {
	addr     types.Address
	withdraw int
	sawCall  bool
}

// IdentifyScratch is Identify with caller-owned working buffers. The
// marker pre-scan keeps the non-flash-loan majority allocation-free,
// exactly like Identify.
func IdentifyScratch(r *evm.Receipt, s *Scratch) []Loan {
	if r == nil || !r.Success {
		return nil
	}
	uniswap, aave, dydx := markers(r)
	if !uniswap && !aave && !dydx {
		return nil
	}
	s.loans = s.loans[:0]
	if uniswap {
		s.loans = identifyUniswapInto(s.loans, r)
	}
	if aave {
		s.loans = identifyAaveInto(s.loans, r)
	}
	if dydx {
		s.loans = identifyDydxScratch(s.loans, r, s)
	}
	return s.loans
}

// identifyDydxScratch mirrors identifyDydx over the scratch's linear
// state table. Loans are emitted in log order — the same order the map
// version produces, since emission is driven by LogDeposit positions.
func identifyDydxScratch(loans []Loan, r *evm.Receipt, s *Scratch) []Loan {
	s.states = s.states[:0]
	find := func(addr types.Address) *dydxState {
		for i := range s.states {
			if s.states[i].addr == addr {
				return &s.states[i]
			}
		}
		return nil
	}
	for i := range r.Logs {
		lg := &r.Logs[i]
		switch lg.Event {
		case "LogOperation":
			if p := find(lg.Address); p != nil {
				p.withdraw = -1
				p.sawCall = false
			} else {
				s.states = append(s.states, dydxState{addr: lg.Address, withdraw: -1})
			}
		case "LogWithdraw":
			if p := find(lg.Address); p != nil {
				p.withdraw = i
				p.sawCall = false
			}
		case "LogCall":
			if p := find(lg.Address); p != nil && p.withdraw >= 0 {
				p.sawCall = true
			}
		case "LogDeposit":
			p := find(lg.Address)
			if p == nil || p.withdraw < 0 || !p.sawCall {
				continue
			}
			w := &r.Logs[p.withdraw]
			if len(w.Addrs) >= 2 && len(w.Amounts) >= 1 {
				loans = append(loans, Loan{
					Provider: ProviderDydx,
					Lender:   lg.Address,
					Borrower: w.Addrs[0],
					Token:    w.Addrs[1],
					Amount:   w.Amounts[0],
					Seq:      w.Seq,
				})
			}
			p.withdraw = -1
			p.sawCall = false
		}
	}
	return loans
}
