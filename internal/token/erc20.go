// Package token implements the ERC20 fungible-token standard and the
// Wrapped Ether contract on top of the EVM substrate.
//
// ERC20 Transfer event logs are the raw material of the paper's transfer
// history extraction: mints appear as transfers from the zero (BlackHole)
// address and burns as transfers to it, which is exactly what the trade
// identification of Table III keys on.
package token

import (
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Storage keys. Balance and allowance keys embed hex addresses.
const (
	keySupply = "supply"
	keyOwner  = "owner"
)

func balKey(a types.Address) string { return "bal:" + a.String() }

func allowKey(owner, spender types.Address) string {
	return "allow:" + owner.String() + ":" + spender.String()
}

func minterKey(a types.Address) string { return "minter:" + a.String() }

// ERC20 is a standard fungible token contract. The deployer becomes the
// owner and may mint, burn and authorize further minters; everything else
// follows EIP-20.
type ERC20 struct {
	// Meta describes the token. The Address field is filled in by the
	// registry at deployment.
	Meta types.Token
}

var _ evm.Contract = (*ERC20)(nil)
var _ evm.Initializer = (*ERC20)(nil)

// Init records the deployer as owner.
func (t *ERC20) Init(env *evm.Env) error {
	env.SSetAddr(keyOwner, env.Caller())
	return nil
}

// Call dispatches ERC20 methods.
func (t *ERC20) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "transfer":
		to, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		return nil, t.move(env, env.Caller(), to, amount)
	case "transferFrom":
		from, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		to, err := evm.AddrArg(args, 1)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 2)
		if err != nil {
			return nil, err
		}
		if err := t.spendAllowance(env, from, env.Caller(), amount); err != nil {
			return nil, err
		}
		return nil, t.move(env, from, to, amount)
	case "approve":
		spender, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		env.SSet(allowKey(env.Caller(), spender), amount)
		env.EmitLog("Approval", []types.Address{env.Caller(), spender}, []uint256.Int{amount})
		return nil, nil
	case "balanceOf":
		owner, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		return []any{env.SGet(balKey(owner))}, nil
	case "allowance":
		owner, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		spender, err := evm.AddrArg(args, 1)
		if err != nil {
			return nil, err
		}
		return []any{env.SGet(allowKey(owner, spender))}, nil
	case "totalSupply":
		return []any{env.SGet(keySupply)}, nil
	case "mint":
		to, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		return nil, t.mint(env, to, amount)
	case "burn":
		from, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		return nil, t.burn(env, from, amount)
	case "addMinter":
		m, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		if env.Caller() != env.SGetAddr(keyOwner) {
			return nil, evm.Revertf("addMinter: caller is not owner")
		}
		env.SSet(minterKey(m), uint256.One())
		return nil, nil
	default:
		return nil, evm.Revertf("ERC20 %s: unknown method %q", t.Meta.Symbol, method)
	}
}

// move transfers balance and emits the Transfer log.
func (t *ERC20) move(env *evm.Env, from, to types.Address, amount uint256.Int) error {
	fromBal := env.SGet(balKey(from))
	if fromBal.Lt(amount) {
		return evm.Revertf("%s transfer: balance %s < %s", t.Meta.Symbol, fromBal, amount)
	}
	env.SSet(balKey(from), fromBal.MustSub(amount))
	env.SSet(balKey(to), env.SGet(balKey(to)).MustAdd(amount))
	env.EmitLog("Transfer", []types.Address{from, to}, []uint256.Int{amount})
	return nil
}

func (t *ERC20) spendAllowance(env *evm.Env, owner, spender types.Address, amount uint256.Int) error {
	if owner == spender {
		return nil
	}
	cur := env.SGet(allowKey(owner, spender))
	if cur.Lt(amount) {
		return evm.Revertf("%s transferFrom: allowance %s < %s", t.Meta.Symbol, cur, amount)
	}
	// Infinite approval (max uint256) is never decremented, matching the
	// convention most tokens adopted.
	if !cur.Eq(uint256.Max()) {
		env.SSet(allowKey(owner, spender), cur.MustSub(amount))
	}
	return nil
}

func (t *ERC20) authorized(env *evm.Env) bool {
	caller := env.Caller()
	return caller == env.SGetAddr(keyOwner) || !env.SGet(minterKey(caller)).IsZero()
}

// mint creates amount tokens for to: a Transfer from the BlackHole.
func (t *ERC20) mint(env *evm.Env, to types.Address, amount uint256.Int) error {
	if !t.authorized(env) {
		return evm.Revertf("%s mint: caller %s is not a minter", t.Meta.Symbol, env.Caller().Short())
	}
	supply, err := env.SGet(keySupply).Add(amount)
	if err != nil {
		return evm.Revertf("%s mint: supply overflow", t.Meta.Symbol)
	}
	env.SSet(keySupply, supply)
	env.SSet(balKey(to), env.SGet(balKey(to)).MustAdd(amount))
	env.EmitLog("Transfer", []types.Address{types.BlackHole, to}, []uint256.Int{amount})
	return nil
}

// burn destroys amount tokens held by from: a Transfer to the BlackHole.
func (t *ERC20) burn(env *evm.Env, from types.Address, amount uint256.Int) error {
	if !t.authorized(env) && env.Caller() != from {
		return evm.Revertf("%s burn: caller %s may not burn from %s", t.Meta.Symbol, env.Caller().Short(), from.Short())
	}
	bal := env.SGet(balKey(from))
	if bal.Lt(amount) {
		return evm.Revertf("%s burn: balance %s < %s", t.Meta.Symbol, bal, amount)
	}
	env.SSet(balKey(from), bal.MustSub(amount))
	env.SSet(keySupply, env.SGet(keySupply).MustSub(amount))
	env.EmitLog("Transfer", []types.Address{from, types.BlackHole}, []uint256.Int{amount})
	return nil
}
