package token

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

func setup(t *testing.T) (*evm.Chain, *Registry, types.Address) {
	t.Helper()
	ch := evm.NewChain(time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC))
	return ch, NewRegistry(), ch.NewEOA("deployer")
}

func TestMintTransferBurn(t *testing.T) {
	ch, reg, deployer := setup(t)
	usdc := MustDeploy(ch, reg, deployer, "USDC", 6, "Circle: USDC")
	alice := ch.NewEOA("")
	bob := ch.NewEOA("")

	MustMint(ch, usdc, deployer, alice, usdc.Units("1000"))
	if got := MustBalanceOf(ch, usdc, alice); got.ToUnits(6) != "1000" {
		t.Fatalf("alice = %s", usdc.Format(got))
	}
	sup, err := TotalSupply(ch, usdc)
	if err != nil || sup.ToUnits(6) != "1000" {
		t.Fatalf("supply = %s err=%v", sup, err)
	}

	r := ch.Send(alice, usdc.Address, "transfer", bob, usdc.Units("250.5"))
	if !r.Success {
		t.Fatalf("transfer: %s", r.Err)
	}
	if got := MustBalanceOf(ch, usdc, bob); got.ToUnits(6) != "250.5" {
		t.Errorf("bob = %s", usdc.Format(got))
	}
	if got := MustBalanceOf(ch, usdc, alice); got.ToUnits(6) != "749.5" {
		t.Errorf("alice = %s", usdc.Format(got))
	}

	// Transfer log carries [from, to] and [amount].
	if len(r.Logs) != 1 || r.Logs[0].Event != "Transfer" {
		t.Fatalf("logs = %v", r.Logs)
	}
	lg := r.Logs[0]
	if lg.Addrs[0] != alice || lg.Addrs[1] != bob || lg.Amounts[0].ToUnits(6) != "250.5" {
		t.Errorf("log = %v", lg)
	}

	// Burn by owner.
	r = ch.Send(deployer, usdc.Address, "burn", bob, usdc.Units("0.5"))
	if !r.Success {
		t.Fatalf("burn: %s", r.Err)
	}
	if lg := r.Logs[0]; lg.Addrs[1] != types.BlackHole {
		t.Errorf("burn log to %s, want BlackHole", lg.Addrs[1])
	}
	sup, _ = TotalSupply(ch, usdc)
	if sup.ToUnits(6) != "999.5" {
		t.Errorf("supply after burn = %s", sup.ToUnits(6))
	}
}

func TestMintEmitsFromBlackHole(t *testing.T) {
	ch, reg, deployer := setup(t)
	tok := MustDeploy(ch, reg, deployer, "TKN", 18, "")
	alice := ch.NewEOA("")
	r := ch.Send(deployer, tok.Address, "mint", alice, tok.Units("5"))
	if !r.Success {
		t.Fatal(r.Err)
	}
	if lg := r.Logs[0]; lg.Addrs[0] != types.BlackHole || lg.Addrs[1] != alice {
		t.Errorf("mint log = %v", lg)
	}
}

func TestTransferInsufficientBalance(t *testing.T) {
	ch, reg, deployer := setup(t)
	tok := MustDeploy(ch, reg, deployer, "TKN", 18, "")
	alice := ch.NewEOA("")
	bob := ch.NewEOA("")
	r := ch.Send(alice, tok.Address, "transfer", bob, tok.Units("1"))
	if r.Success {
		t.Fatal("transfer with zero balance should revert")
	}
	if !strings.Contains(r.Err, "balance") {
		t.Errorf("err = %s", r.Err)
	}
}

func TestApproveTransferFrom(t *testing.T) {
	ch, reg, deployer := setup(t)
	tok := MustDeploy(ch, reg, deployer, "TKN", 18, "")
	alice := ch.NewEOA("")
	spender := ch.NewEOA("")
	sink := ch.NewEOA("")
	MustMint(ch, tok, deployer, alice, tok.Units("10"))

	// Without allowance the pull must fail.
	r := ch.Send(spender, tok.Address, "transferFrom", alice, sink, tok.Units("1"))
	if r.Success {
		t.Fatal("transferFrom without allowance should revert")
	}

	if err := Approve(ch, tok, alice, spender, tok.Units("3")); err != nil {
		t.Fatal(err)
	}
	r = ch.Send(spender, tok.Address, "transferFrom", alice, sink, tok.Units("2"))
	if !r.Success {
		t.Fatalf("transferFrom: %s", r.Err)
	}
	ret, err := ch.View(tok.Address, "allowance", alice, spender)
	if err != nil {
		t.Fatal(err)
	}
	if rem := ret[0].(uint256.Int); rem.ToUnits(18) != "1" {
		t.Errorf("allowance remaining = %s", rem.ToUnits(18))
	}
	// Exceeding the remaining allowance fails.
	r = ch.Send(spender, tok.Address, "transferFrom", alice, sink, tok.Units("2"))
	if r.Success {
		t.Fatal("over-allowance transferFrom should revert")
	}
}

func TestInfiniteAllowanceNotDecremented(t *testing.T) {
	ch, reg, deployer := setup(t)
	tok := MustDeploy(ch, reg, deployer, "TKN", 18, "")
	alice := ch.NewEOA("")
	spender := ch.NewEOA("")
	MustMint(ch, tok, deployer, alice, tok.Units("10"))
	if err := Approve(ch, tok, alice, spender, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	ch.Send(spender, tok.Address, "transferFrom", alice, spender, tok.Units("4"))
	ret, _ := ch.View(tok.Address, "allowance", alice, spender)
	if rem := ret[0].(uint256.Int); !rem.Eq(uint256.Max()) {
		t.Errorf("infinite allowance decremented to %s", rem)
	}
}

func TestMintAuthority(t *testing.T) {
	ch, reg, deployer := setup(t)
	tok := MustDeploy(ch, reg, deployer, "TKN", 18, "")
	mallory := ch.NewEOA("")
	if r := ch.Send(mallory, tok.Address, "mint", mallory, tok.Units("1")); r.Success {
		t.Fatal("unauthorized mint should revert")
	}
	// Owner can delegate minting.
	minter := ch.NewEOA("")
	if r := ch.Send(mallory, tok.Address, "addMinter", mallory); r.Success {
		t.Fatal("non-owner addMinter should revert")
	}
	if r := ch.Send(deployer, tok.Address, "addMinter", minter); !r.Success {
		t.Fatal(r.Err)
	}
	if r := ch.Send(minter, tok.Address, "mint", mallory, tok.Units("1")); !r.Success {
		t.Fatalf("delegated mint: %s", r.Err)
	}
	// Holders may burn their own tokens.
	if r := ch.Send(mallory, tok.Address, "burn", mallory, tok.Units("1")); !r.Success {
		t.Fatalf("self burn: %s", r.Err)
	}
	if r := ch.Send(mallory, tok.Address, "burn", deployer, tok.Units("1")); r.Success {
		t.Fatal("burning someone else's tokens should revert")
	}
}

func TestWETHWrapUnwrap(t *testing.T) {
	ch, reg, deployer := setup(t)
	weth, err := DeployWETH(ch, reg, deployer)
	if err != nil {
		t.Fatal(err)
	}
	alice := ch.NewEOA("")
	ch.FundETH(alice, uint256.MustFromUnits("5", 18))

	r := ch.SendValue(alice, weth.Address, "deposit", weth.Units("2"))
	if !r.Success {
		t.Fatalf("deposit: %s", r.Err)
	}
	if got := MustBalanceOf(ch, weth, alice); got.ToUnits(18) != "2" {
		t.Errorf("WETH balance = %s", got.ToUnits(18))
	}
	// Deposit Transfer log has the WETH contract as sender.
	if lg := r.Logs[0]; lg.Addrs[0] != weth.Address || lg.Addrs[1] != alice {
		t.Errorf("deposit log = %v", lg)
	}
	// ETH moved into the contract.
	if got := ch.BalanceOf(weth.Address); got.ToUnits(18) != "2" {
		t.Errorf("contract ETH = %s", got.ToUnits(18))
	}

	r = ch.Send(alice, weth.Address, "withdraw", weth.Units("1.5"))
	if !r.Success {
		t.Fatalf("withdraw: %s", r.Err)
	}
	if got := MustBalanceOf(ch, weth, alice); got.ToUnits(18) != "0.5" {
		t.Errorf("WETH after withdraw = %s", got.ToUnits(18))
	}
	if got := ch.BalanceOf(alice); got.ToUnits(18) != "4.5" {
		t.Errorf("ETH after withdraw = %s", got.ToUnits(18))
	}
	// Withdraw log has the WETH contract as receiver, and the receipt
	// carries the internal ETH transfer back to alice.
	if lg := r.Logs[0]; lg.Addrs[1] != weth.Address {
		t.Errorf("withdraw log = %v", lg)
	}
	var foundETHOut bool
	for _, it := range r.InternalTxs {
		if it.From == weth.Address && it.To == alice && !it.Value.IsZero() {
			foundETHOut = true
		}
	}
	if !foundETHOut {
		t.Error("missing internal ETH transfer on withdraw")
	}

	// Over-withdraw reverts.
	if r := ch.Send(alice, weth.Address, "withdraw", weth.Units("10")); r.Success {
		t.Error("over-withdraw should revert")
	}
	// Plain send wraps implicitly.
	r = ch.SendValue(alice, weth.Address, "", uint256.MustFromUnits("1", 18))
	if !r.Success {
		t.Fatalf("implicit wrap: %s", r.Err)
	}
	if got := MustBalanceOf(ch, weth, alice); got.ToUnits(18) != "1.5" {
		t.Errorf("WETH after implicit wrap = %s", got.ToUnits(18))
	}
}

func TestWETHERC20Subset(t *testing.T) {
	ch, reg, deployer := setup(t)
	weth, err := DeployWETH(ch, reg, deployer)
	if err != nil {
		t.Fatal(err)
	}
	alice := ch.NewEOA("")
	bob := ch.NewEOA("")
	ch.FundETH(alice, uint256.MustFromUnits("3", 18))
	ch.SendValue(alice, weth.Address, "deposit", weth.Units("3"))

	r := ch.Send(alice, weth.Address, "transfer", bob, weth.Units("1"))
	if !r.Success {
		t.Fatalf("weth transfer: %s", r.Err)
	}
	if got := MustBalanceOf(ch, weth, bob); got.ToUnits(18) != "1" {
		t.Errorf("bob WETH = %s", got.ToUnits(18))
	}
}

func TestRegistryResolve(t *testing.T) {
	ch, reg, deployer := setup(t)
	tok := MustDeploy(ch, reg, deployer, "TKN", 18, "")
	got, ok := reg.Resolve(tok.Address)
	if !ok || got.Symbol != "TKN" {
		t.Errorf("Resolve = %v ok=%v", got, ok)
	}
	if _, ok := reg.Resolve(types.Address{9}); ok {
		t.Error("unexpected resolve hit")
	}
	if n := len(reg.All()); n != 1 {
		t.Errorf("All() len = %d", n)
	}
}

// Property: a sequence of random valid transfers conserves total supply
// and never produces a negative balance (sum of balances == supply).
func TestQuickTransferConservation(t *testing.T) {
	ch, reg, deployer := setup(t)
	tok := MustDeploy(ch, reg, deployer, "TKN", 18, "")
	holders := make([]types.Address, 4)
	for i := range holders {
		holders[i] = ch.NewEOA("")
	}
	MustMint(ch, tok, deployer, holders[0], tok.Units("1000000"))
	supply, _ := TotalSupply(ch, tok)

	f := func(fromIdx, toIdx uint8, rawAmt uint32) bool {
		from := holders[int(fromIdx)%len(holders)]
		to := holders[int(toIdx)%len(holders)]
		amt := uint256.FromUint64(uint64(rawAmt))
		ch.Send(from, tok.Address, "transfer", to, amt) // may revert; fine
		total := uint256.Zero()
		for _, h := range holders {
			total = total.MustAdd(MustBalanceOf(ch, tok, h))
		}
		return total.Eq(supply)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
