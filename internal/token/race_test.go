package token

import (
	"sync"
	"testing"

	"leishen/internal/types"
)

// TestRegistryConcurrent exercises the registry's RWMutex under -race:
// writers registering fresh tokens while readers resolve and list.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var addr types.Address
				addr[0], addr[1] = byte(i), byte(j)
				reg.Register(types.Token{Address: addr, Symbol: "TOK", Decimals: 18})
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var addr types.Address
				addr[0], addr[1] = byte(i), byte(j)
				reg.Resolve(addr)
				reg.All()
			}
		}(i)
	}
	wg.Wait()
	if got := len(reg.All()); got != 8*50 {
		t.Errorf("registered %d tokens, want %d", got, 8*50)
	}
}

// TestRegistryAllSorted pins the deterministic listing order the
// detorder gate relies on.
func TestRegistryAllSorted(t *testing.T) {
	reg := NewRegistry()
	for _, b := range []byte{9, 3, 7, 1} {
		var addr types.Address
		addr[0] = b
		reg.Register(types.Token{Address: addr, Symbol: "TOK", Decimals: 18})
	}
	all := reg.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Address.String() >= all[i].Address.String() {
			t.Fatalf("All() not in address order: %v", all)
		}
	}
}
