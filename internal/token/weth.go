package token

import (
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// WETH is the Wrapped Ether contract: it wraps native ETH into an ERC20
// token at a fixed 1:1 rate. Deposits and withdrawals emit Transfer logs
// with the WETH contract itself as counterparty (matching how explorers
// render WETH9's Deposit/Withdrawal events), which is precisely the shape
// the paper's "remove WETH related transfers" simplification rule targets.
type WETH struct {
	// Meta describes the WETH token; Address is set at deployment.
	Meta types.Token
}

var _ evm.Contract = (*WETH)(nil)

// Call dispatches WETH methods. The ERC20 subset shares storage layout
// with the ERC20 contract.
func (w *WETH) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "deposit":
		// msg.value ETH has already been credited to the contract by the
		// call; issue the same amount of WETH.
		amount := env.Value()
		if amount.IsZero() {
			return nil, evm.Revertf("deposit: zero value")
		}
		env.SSet(keySupply, env.SGet(keySupply).MustAdd(amount))
		env.SSet(balKey(env.Caller()), env.SGet(balKey(env.Caller())).MustAdd(amount))
		env.EmitLog("Transfer", []types.Address{env.Self(), env.Caller()}, []uint256.Int{amount})
		return nil, nil
	case "withdraw":
		amount, err := evm.AmountArg(args, 0)
		if err != nil {
			return nil, err
		}
		bal := env.SGet(balKey(env.Caller()))
		if bal.Lt(amount) {
			return nil, evm.Revertf("withdraw: balance %s < %s", bal, amount)
		}
		env.SSet(balKey(env.Caller()), bal.MustSub(amount))
		env.SSet(keySupply, env.SGet(keySupply).MustSub(amount))
		env.EmitLog("Transfer", []types.Address{env.Caller(), env.Self()}, []uint256.Int{amount})
		if err := env.TransferETH(env.Caller(), amount); err != nil {
			return nil, err
		}
		return nil, nil
	case "transfer", "transferFrom", "approve", "balanceOf", "allowance", "totalSupply":
		erc := &ERC20{Meta: w.Meta}
		return erc.Call(env, method, args)
	case "":
		// Plain ETH sends wrap implicitly, as WETH9 does.
		if env.Value().IsZero() {
			return nil, nil
		}
		return w.Call(env, "deposit", nil)
	default:
		return nil, evm.Revertf("WETH: unknown method %q", method)
	}
}
