package token

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Registry maps token contract addresses to token metadata. It stands in
// for the token lists explorers maintain; the trace extractor resolves log
// addresses through it. Registry is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	tokens map[types.Address]types.Token
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tokens: make(map[types.Address]types.Token)}
}

// Register records a deployed token.
func (r *Registry) Register(t types.Token) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tokens[t.Address] = t
}

// Resolve returns the token deployed at addr.
func (r *Registry) Resolve(addr types.Address) (types.Token, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tokens[addr]
	return t, ok
}

// All returns every registered token, in address order so callers see a
// stable listing.
func (r *Registry) All() []types.Token {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]types.Token, 0, len(r.tokens))
	for _, t := range r.tokens {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].Address[:], out[j].Address[:]) < 0
	})
	return out
}

// Deploy deploys a fresh ERC20, registers it, and returns its metadata.
// label is the Etherscan-style account label for the token contract
// ("Tether: USDT Stablecoin"); pass "" for unlabeled tokens.
func Deploy(ch *evm.Chain, reg *Registry, deployer types.Address, symbol string, decimals uint8, label string) (types.Token, error) {
	meta := types.Token{Symbol: symbol, Decimals: decimals}
	addr, err := ch.Deploy(deployer, &ERC20{Meta: meta}, label)
	if err != nil {
		return types.Token{}, fmt.Errorf("deploy %s: %w", symbol, err)
	}
	meta.Address = addr
	reg.Register(meta)
	return meta, nil
}

// MustDeploy is Deploy, panicking on error. For scenario setup.
func MustDeploy(ch *evm.Chain, reg *Registry, deployer types.Address, symbol string, decimals uint8, label string) types.Token {
	t, err := Deploy(ch, reg, deployer, symbol, decimals, label)
	if err != nil {
		panic(err)
	}
	return t
}

// DeployWETH deploys the Wrapped Ether contract and registers its token.
func DeployWETH(ch *evm.Chain, reg *Registry, deployer types.Address) (types.Token, error) {
	meta := types.Token{Symbol: "WETH", Decimals: 18}
	addr, err := ch.Deploy(deployer, &WETH{Meta: meta}, "Wrapped Ether")
	if err != nil {
		return types.Token{}, fmt.Errorf("deploy WETH: %w", err)
	}
	meta.Address = addr
	reg.Register(meta)
	return meta, nil
}

// BalanceOf reads an ERC20 balance via a view call.
func BalanceOf(ch *evm.Chain, tok types.Token, owner types.Address) (uint256.Int, error) {
	ret, err := ch.View(tok.Address, "balanceOf", owner)
	return evm.Ret[uint256.Int](ret, 0, err)
}

// MustBalanceOf reads an ERC20 balance, panicking on error.
func MustBalanceOf(ch *evm.Chain, tok types.Token, owner types.Address) uint256.Int {
	v, err := BalanceOf(ch, tok, owner)
	if err != nil {
		panic(err)
	}
	return v
}

// TotalSupply reads a token's total supply via a view call.
func TotalSupply(ch *evm.Chain, tok types.Token) (uint256.Int, error) {
	ret, err := ch.View(tok.Address, "totalSupply")
	return evm.Ret[uint256.Int](ret, 0, err)
}

// Mint mints tokens from the owner account (test/scenario faucet).
func Mint(ch *evm.Chain, tok types.Token, owner, to types.Address, amount uint256.Int) error {
	r := ch.Send(owner, tok.Address, "mint", to, amount)
	if !r.Success {
		return fmt.Errorf("mint %s: %s", tok.Symbol, r.Err)
	}
	return nil
}

// MustMint is Mint, panicking on failure.
func MustMint(ch *evm.Chain, tok types.Token, owner, to types.Address, amount uint256.Int) {
	if err := Mint(ch, tok, owner, to, amount); err != nil {
		panic(err)
	}
}

// Approve sets an allowance from owner to spender.
func Approve(ch *evm.Chain, tok types.Token, owner, spender types.Address, amount uint256.Int) error {
	r := ch.Send(owner, tok.Address, "approve", spender, amount)
	if !r.Success {
		return fmt.Errorf("approve %s: %s", tok.Symbol, r.Err)
	}
	return nil
}
