package baselines

import (
	"sort"

	"leishen/internal/types"
)

// DefaultVolatilityThresholdPct is the 99% price-movement threshold the
// Xue et al. front-running monitor uses.
const DefaultVolatilityThresholdPct = 99.0

// PairVolatilities computes the paper's volatility formula
// ((rate_max - rate_min)/rate_min * 100%) per unordered token pair across
// a trade list. Rates are normalized as the price of the pair's
// lexicographically larger symbol in units of the smaller one.
func PairVolatilities(tradeList []types.Trade) map[string]float64 {
	type band struct{ min, max float64 }
	bands := make(map[string]*band)
	observe := func(a, b types.Token, rate float64) {
		// rate is price of b in units of a; normalize direction.
		if rate == 0 {
			return
		}
		key := types.PairKey(a, b)
		if a.Symbol > b.Symbol {
			rate = 1 / rate
		}
		w, ok := bands[key]
		if !ok {
			bands[key] = &band{min: rate, max: rate}
			return
		}
		if rate < w.min {
			w.min = rate
		}
		if rate > w.max {
			w.max = rate
		}
	}
	for _, t := range tradeList {
		observe(t.TokenSell, t.TokenBuy, t.Rate())
	}
	out := make(map[string]float64, len(bands))
	for k, w := range bands {
		if w.min <= 0 {
			continue
		}
		out[k] = (w.max - w.min) / w.min * 100
	}
	return out
}

// PairVolatility is one pair's measured volatility.
type PairVolatility struct {
	Pair          string
	VolatilityPct float64
}

// SortedPairVolatilities returns the per-pair volatilities in descending
// volatility order, ties broken by pair key. Use this whenever the
// volatilities end up in output: iterating the PairVolatilities map
// directly would print in random order.
func SortedPairVolatilities(tradeList []types.Trade) []PairVolatility {
	m := PairVolatilities(tradeList)
	out := make([]PairVolatility, 0, len(m))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, PairVolatility{Pair: k, VolatilityPct: m[k]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].VolatilityPct > out[j].VolatilityPct
	})
	return out
}

// VolatilityDetector flags transactions whose trade list moves any pair's
// price beyond ThresholdPct.
type VolatilityDetector struct {
	// ThresholdPct is the flagging threshold; 0 means the 99% default.
	ThresholdPct float64
}

// Detect reports whether any pair's volatility exceeds the threshold.
func (v VolatilityDetector) Detect(tradeList []types.Trade) bool {
	th := v.ThresholdPct
	if th == 0 {
		th = DefaultVolatilityThresholdPct
	}
	for _, vol := range PairVolatilities(tradeList) {
		if vol >= th {
			return true
		}
	}
	return false
}
