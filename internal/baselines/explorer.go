package baselines

import (
	"leishen/internal/core"
	"leishen/internal/dex"
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/tagging"
	"leishen/internal/trace"
	"leishen/internal/types"
)

// Explorer is the Explorer+LeiShen baseline: LeiShen's pattern matchers
// fed only with the normalized trade actions venues emit as events —
// modeling Etherscan/BscScan "transaction action" rows. Venues without
// trade events contribute nothing, which caps its recall at 4 of the 22
// known attacks in the paper.
type Explorer struct {
	tagger *tagging.Tagger
	tokens trace.TokenResolver
	th     core.Thresholds
}

// NewExplorer builds the baseline over a chain snapshot.
func NewExplorer(view tagging.ChainView, tokens trace.TokenResolver, th core.Thresholds) *Explorer {
	if th == (core.Thresholds{}) {
		th = core.DefaultThresholds()
	}
	return &Explorer{tagger: tagging.New(view), tokens: tokens, th: th}
}

// Trades extracts the explorer-visible trade list of a transaction.
func (e *Explorer) Trades(r *evm.Receipt) []types.Trade {
	if r == nil || !r.Success {
		return nil
	}
	var out []types.Trade
	for _, lg := range r.Logs {
		if lg.Event != dex.TradeActionEvent || len(lg.Addrs) != 3 || len(lg.Amounts) != 2 {
			continue
		}
		out = append(out, types.Trade{
			Kind:       types.TradeSwap,
			Buyer:      e.tagger.Tag(lg.Addrs[0]),
			Seller:     e.tagger.Tag(lg.Address),
			AmountSell: lg.Amounts[0],
			TokenSell:  e.resolve(lg.Addrs[1]),
			AmountBuy:  lg.Amounts[1],
			TokenBuy:   e.resolve(lg.Addrs[2]),
			Seq:        lg.Seq,
		})
	}
	return out
}

func (e *Explorer) resolve(addr types.Address) types.Token {
	if addr.IsZero() {
		return types.ETH
	}
	if t, ok := e.tokens.Resolve(addr); ok {
		return t
	}
	return types.Token{Address: addr, Symbol: "UNK", Decimals: 18}
}

// Detect runs the LeiShen patterns over the explorer trade list.
func (e *Explorer) Detect(r *evm.Receipt) []core.Match {
	loans := flashloan.Identify(r)
	if len(loans) == 0 {
		return nil
	}
	list := e.Trades(r)
	var matches []core.Match
	seen := make(map[types.Tag]bool)
	for _, loan := range loans {
		tag := e.tagger.Tag(loan.Borrower)
		if seen[tag] {
			continue
		}
		seen[tag] = true
		matches = append(matches, core.MatchPatterns(list, tag, e.th)...)
	}
	return matches
}
