package baselines

import (
	"testing"

	"leishen/internal/attacks"
	"leishen/internal/core"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// TestTableIVKnownAttacks reproduces paper Table IV: for each of the 22
// known attacks, DeFiRanger and Explorer+LeiShen must detect exactly the
// attacks the paper reports them detecting.
func TestTableIVKnownAttacks(t *testing.T) {
	for _, sc := range attacks.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := sc.Run()
			if err != nil {
				t.Fatalf("scenario: %v", err)
			}
			dfr := NewDeFiRanger(res.Env.Registry, res.Env.WETH)
			if got := dfr.Detect(res.Receipt); got != sc.DeFiRanger {
				t.Errorf("DeFiRanger = %v, want %v", got, sc.DeFiRanger)
			}
			exp := NewExplorer(res.Env.Chain, res.Env.Registry, core.Thresholds{})
			if got := len(exp.Detect(res.Receipt)) > 0; got != sc.Explorer {
				t.Errorf("Explorer+LeiShen = %v, want %v (trades: %v)", got, sc.Explorer, exp.Trades(res.Receipt))
			}
		})
	}
}

func mkTrade(buyer, seller types.Tag, sellAmt uint64, sellTok types.Token, buyAmt uint64, buyTok types.Token) types.Trade {
	return types.Trade{
		Kind: types.TradeSwap, Buyer: buyer, Seller: seller,
		AmountSell: uint256.FromUint64(sellAmt), TokenSell: sellTok,
		AmountBuy: uint256.FromUint64(buyAmt), TokenBuy: buyTok,
	}
}

func TestPairVolatilities(t *testing.T) {
	a := types.Token{Address: types.Address{1}, Symbol: "AAA", Decimals: 18}
	b := types.Token{Address: types.Address{2}, Symbol: "BBB", Decimals: 18}
	buyer := types.RootTag(types.Address{9})
	seller := types.AppTag("DEX")
	list := []types.Trade{
		mkTrade(buyer, seller, 100, a, 100, b), // BBB price 1.0 AAA
		mkTrade(buyer, seller, 200, a, 100, b), // BBB price 2.0 AAA
	}
	vols := PairVolatilities(list)
	if got := vols["AAA-BBB"]; got < 99.9 || got > 100.1 {
		t.Errorf("volatility = %f, want 100", got)
	}
	// Direction normalization: selling BBB for AAA contributes the same pair.
	list = append(list, mkTrade(buyer, seller, 100, b, 300, a)) // price 3.0
	vols = PairVolatilities(list)
	if got := vols["AAA-BBB"]; got < 199.9 || got > 200.1 {
		t.Errorf("volatility with reverse trade = %f, want 200", got)
	}
}

func TestVolatilityDetector(t *testing.T) {
	a := types.Token{Address: types.Address{1}, Symbol: "AAA", Decimals: 18}
	b := types.Token{Address: types.Address{2}, Symbol: "BBB", Decimals: 18}
	buyer := types.RootTag(types.Address{9})
	seller := types.AppTag("DEX")
	small := []types.Trade{
		mkTrade(buyer, seller, 1000, a, 1000, b),
		mkTrade(buyer, seller, 1004, a, 1000, b), // 0.4% move: Harvest-like
	}
	big := []types.Trade{
		mkTrade(buyer, seller, 1000, a, 1000, b),
		mkTrade(buyer, seller, 2500, a, 1000, b), // 150% move
	}
	var det VolatilityDetector
	if det.Detect(small) {
		t.Error("0.4% move flagged at 99% threshold")
	}
	if !det.Detect(big) {
		t.Error("150% move not flagged")
	}
	// A tight threshold catches the slight movement (and would flood with
	// false positives in the wild, which is the paper's point).
	if !(VolatilityDetector{ThresholdPct: 0.1}).Detect(small) {
		t.Error("0.4% move not flagged at 0.1% threshold")
	}
}

// TestVolatilityBaselineMissesHarvest shows the paper's §I critique: the
// volatility-threshold detector cannot see the Harvest attack (0.5% price
// movement) that LeiShen's MBS pattern catches.
func TestVolatilityBaselineMissesHarvest(t *testing.T) {
	sc, ok := attacks.ByName("Harvest Finance")
	if !ok {
		t.Fatal("scenario missing")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(res.Env.Chain, res.Env.Registry, core.Options{})
	rep := det.Inspect(res.Receipt)
	if !rep.IsAttack {
		t.Fatal("LeiShen should catch Harvest")
	}
	var vol VolatilityDetector
	if vol.Detect(rep.Trades) {
		t.Error("99% volatility threshold flagged the Harvest attack; its movement should be far below")
	}
}
