// Package baselines reimplements the detectors paper Table IV compares
// LeiShen against:
//
//   - DeFiRanger (Wu et al.): price manipulation detection on
//     account-level asset transfers — no application tagging, no
//     inter-app merging — so trades routed through intermediaries or
//     executed by victim platforms on the attacker's behalf are invisible
//     to it.
//   - Explorer+LeiShen: LeiShen's pattern matching over the normalized
//     trade actions explorers derive from event logs; venues that emit no
//     trade events are invisible to it.
//   - Volatility threshold (Xue et al.): flag any transaction moving a
//     pair's price beyond a fixed threshold; attacks with slight price
//     movements (Harvest's 0.5%) escape it.
package baselines

import (
	"leishen/internal/evm"
	"leishen/internal/flashloan"
	"leishen/internal/trace"
	"leishen/internal/trades"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// DeFiRanger detects price manipulation on account-level transfers.
type DeFiRanger struct {
	extractor *trace.Extractor
	weth      types.Token
}

// NewDeFiRanger builds the baseline over a token resolver.
func NewDeFiRanger(tokens trace.TokenResolver, weth types.Token) *DeFiRanger {
	return &DeFiRanger{extractor: trace.NewExtractor(tokens), weth: weth}
}

// Detect reports whether the transaction contains a profitable
// buy-then-sell round of one token by the flash loan borrower against a
// single counterparty account.
func (d *DeFiRanger) Detect(r *evm.Receipt) bool {
	loans := flashloan.Identify(r)
	if len(loans) == 0 {
		return false
	}
	transfers := d.extractor.Extract(r)

	// Account-level lifting: identity tags, WETH unified with ETH and
	// wrap/unwrap legs against the WETH contract dropped (DeFiRanger
	// understands WETH), but no application tagging and no merging.
	var lifted []types.AppTransfer
	for _, t := range transfers {
		if t.Sender == d.weth.Address || t.Receiver == d.weth.Address {
			continue
		}
		tok := t.Token
		if tok.Address == d.weth.Address {
			tok = types.ETH
		}
		lifted = append(lifted, types.AppTransfer{
			Seq:           t.Seq,
			Sender:        types.RootTag(t.Sender),
			Receiver:      types.RootTag(t.Receiver),
			FromBlackHole: t.Sender.IsZero(),
			ToBlackHole:   t.Receiver.IsZero(),
			Amount:        t.Amount,
			Token:         tok,
		})
	}
	tradeList := trades.Identify(lifted)

	for _, loan := range loans {
		borrower := types.RootTag(loan.Borrower)
		if d.profitableRound(tradeList, borrower) {
			return true
		}
	}
	return false
}

// profitableRound looks for buy trade b and later sell trade s of the
// same token, by the borrower, against the same counterparty account,
// with sell rate above buy rate.
func (d *DeFiRanger) profitableRound(list []types.Trade, borrower types.Tag) bool {
	for i, b := range list {
		if b.Buyer != borrower {
			continue
		}
		for _, s := range list[i+1:] {
			if s.Buyer != borrower || s.Seller != b.Seller {
				continue
			}
			if !sameToken(s.TokenSell, b.TokenBuy) {
				continue
			}
			// buyRate = b.AmountSell/b.AmountBuy < sellRate = s.AmountBuy/s.AmountSell
			if uint256.CmpProducts(b.AmountSell, s.AmountSell, s.AmountBuy, b.AmountBuy) < 0 {
				return true
			}
		}
	}
	return false
}

func sameToken(a, b types.Token) bool {
	return a.Address == b.Address && a.IsETH() == b.IsETH()
}
