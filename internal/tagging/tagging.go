// Package tagging assigns DeFi application tags to Ethereum accounts
// using the contract-creation relationship (paper §V-B1).
//
// The paper's observation over 52,500 Etherscan-labeled accounts: 52,482
// follow the rule "accounts connected by creation share an application".
// The algorithm therefore builds a forest of creation edges and assigns
// every account the union of application labels found among its ancestors
// and descendants:
//
//   - exactly one label in the set → tag with that application;
//   - empty set → tag with the tree root's address (distinct per tree);
//   - conflicting labels → untaggable (the rare open-deployment case,
//     <0.1% of labeled accounts).
package tagging

import (
	"slices"
	"sort"
	"strings"
	"sync"

	"leishen/internal/evm"
	"leishen/internal/types"
)

// ChainView is the chain surface the tagger reads: the Etherscan-style
// label dump and the creation relationships (the paper's XBlock-ETH data).
// evm.Chain satisfies it.
type ChainView interface {
	Labels() map[types.Address]string
	CreationOf(addr types.Address) (evm.CreationInfo, bool)
	Accounts() []types.Address
}

// Tagger precomputes tags for every account known to a chain snapshot.
// A Tagger is safe for concurrent use: the precomputed maps are read-only
// after New, and the out-of-snapshot memo is a sync.Map.
type Tagger struct {
	tags  map[types.Address]types.Tag
	roots map[types.Address]types.Address
	// extra memoizes root tags for addresses outside the snapshot (bare
	// EOAs that only ever received assets). Deriving a root tag
	// hex-encodes the address into a fresh string; memoizing keeps the
	// steady-state Tag lookup allocation-free.
	extra sync.Map // types.Address -> types.Tag
	// intern is the tag id table (see intern.go).
	intern intern
}

// zeroRootTag is the tag of the zero (BlackHole) address, precomputed so
// Tag never re-derives it.
var zeroRootTag = types.RootTag(types.ZeroAddress)

// AppOfLabel extracts the application name from an Etherscan-style label:
// "Uniswap: Factory Contract" → "Uniswap". Labels without a role suffix
// are application names themselves.
func AppOfLabel(label string) string {
	if i := strings.IndexByte(label, ':'); i >= 0 {
		return strings.TrimSpace(label[:i])
	}
	return strings.TrimSpace(label)
}

// New builds a tagger from the chain's current label and creation data.
// excluded lists accounts whose labels must be ignored (the paper removes
// attacker labels that were applied only after the attacks happened).
func New(view ChainView, excluded ...types.Address) *Tagger {
	skip := make(map[types.Address]bool, len(excluded))
	for _, a := range excluded {
		skip[a] = true
	}
	labels := make(map[types.Address]string)
	for a, l := range view.Labels() {
		if !skip[a] {
			labels[a] = l
		}
	}

	accounts := view.Accounts()
	parent := make(map[types.Address]types.Address, len(accounts))
	children := make(map[types.Address][]types.Address, len(accounts))
	known := make(map[types.Address]bool, len(accounts))
	for _, a := range accounts {
		known[a] = true
	}
	for _, a := range accounts {
		ci, ok := view.CreationOf(a)
		if !ok || !ci.IsContract || ci.Creator.IsZero() {
			continue // roots: EOAs and genesis accounts
		}
		parent[a] = ci.Creator
		children[ci.Creator] = append(children[ci.Creator], a)
	}

	t := &Tagger{
		tags:  make(map[types.Address]types.Tag, len(accounts)),
		roots: make(map[types.Address]types.Address, len(accounts)),
	}

	// Resolve the root of every account by walking creation edges up.
	rootOf := func(a types.Address) types.Address {
		seen := 0
		cur := a
		for {
			p, ok := parent[cur]
			if !ok {
				return cur
			}
			cur = p
			if seen++; seen > 1_000_000 {
				return cur // defensive: creation edges cannot cycle
			}
		}
	}

	// labelsDown[a] = set of app names in a's subtree (including a).
	labelsDown := make(map[types.Address]map[string]bool, len(accounts))
	var down func(a types.Address) map[string]bool
	down = func(a types.Address) map[string]bool {
		if s, ok := labelsDown[a]; ok {
			return s
		}
		s := make(map[string]bool)
		if l, ok := labels[a]; ok {
			s[AppOfLabel(l)] = true
		}
		for _, c := range children[a] {
			for app := range down(c) {
				s[app] = true
			}
		}
		labelsDown[a] = s
		return s
	}

	for _, a := range accounts {
		root := rootOf(a)
		t.roots[a] = root

		// Tag set = own label ∪ ancestor labels ∪ descendant labels.
		set := make(map[string]bool)
		for app := range down(a) {
			set[app] = true
		}
		for cur := a; ; {
			p, ok := parent[cur]
			if !ok {
				break
			}
			if l, ok := labels[p]; ok {
				set[AppOfLabel(l)] = true
			}
			cur = p
		}

		// Directly labeled accounts keep their own label even inside a
		// conflicted tree (paper Fig. 7(c): labeled nodes retain tags).
		if l, ok := labels[a]; ok {
			t.tags[a] = types.AppTag(AppOfLabel(l))
			continue
		}
		switch len(set) {
		case 0:
			t.tags[a] = types.RootTag(root)
		case 1:
			t.tags[a] = types.AppTag(sortedApps(set)[0])
		default:
			t.tags[a] = types.NoTag()
		}
	}
	t.buildIntern(accounts)
	return t
}

// sortedApps returns the set's members in sorted order.
func sortedApps(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for app := range set {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Tag returns the tag of an account. Accounts outside the snapshot (bare
// EOAs that only ever received assets) are their own roots; their derived
// root tags are memoized so repeated lookups do not re-encode the address.
func (t *Tagger) Tag(addr types.Address) types.Tag {
	if addr.IsZero() {
		return zeroRootTag
	}
	if tag, ok := t.tags[addr]; ok {
		return tag
	}
	if tag, ok := t.extra.Load(addr); ok {
		return tag.(types.Tag)
	}
	tag := types.RootTag(addr)
	t.extra.Store(addr, tag)
	return tag
}

// Root returns the creation-tree root of an account.
func (t *Tagger) Root(addr types.Address) types.Address {
	if r, ok := t.roots[addr]; ok {
		return r
	}
	return addr
}

// TagTransfers annotates account-level transfers with tags, producing the
// tagT tuples of §V-B1.
func (t *Tagger) TagTransfers(transfers []types.Transfer) []types.TaggedTransfer {
	return t.TagTransfersInto(make([]types.TaggedTransfer, 0, len(transfers)), transfers)
}

// TagTransfersInto appends the tagged transfers to dst and returns the
// grown slice — the reuse-a-scratch-buffer form of TagTransfers for
// allocation-light scanning (pass dst[:0] to recycle a buffer).
func (t *Tagger) TagTransfersInto(dst []types.TaggedTransfer, transfers []types.Transfer) []types.TaggedTransfer {
	dst = slices.Grow(dst, len(transfers))
	for _, tr := range transfers {
		dst = append(dst, types.TaggedTransfer{
			Seq:         tr.Seq,
			Sender:      tr.Sender,
			Receiver:    tr.Receiver,
			SenderTag:   t.Tag(tr.Sender),
			ReceiverTag: t.Tag(tr.Receiver),
			Amount:      tr.Amount,
			Token:       tr.Token,
		})
	}
	return dst
}

// Stats summarizes a tagger's forest, mirroring the paper's study of
// 52,500 Etherscan-labeled accounts (52,482 followed the creation rule;
// conflicts were under 0.1%).
type Stats struct {
	// Accounts is the number of accounts in the snapshot.
	Accounts int
	// AppTagged is the number resolved to an application tag.
	AppTagged int
	// RootTagged is the number that fell back to a root-address tag.
	RootTagged int
	// Conflicted is the number left untaggable by conflicting labels.
	Conflicted int
}

// ConflictPct returns the fraction of conflicted accounts in percent.
func (s Stats) ConflictPct() float64 {
	if s.Accounts == 0 {
		return 0
	}
	return float64(s.Conflicted) / float64(s.Accounts) * 100
}

// Stats computes tagging statistics over the snapshot.
func (t *Tagger) Stats() Stats {
	var s Stats
	for _, tag := range t.tags {
		s.Accounts++
		switch tag.Kind {
		case types.TagApp:
			s.AppTagged++
		case types.TagRoot:
			s.RootTagged++
		default:
			s.Conflicted++
		}
	}
	return s
}
