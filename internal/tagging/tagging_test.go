package tagging

import (
	"testing"
	"time"

	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// spawnChild makes a factory-style contract create one child per call.
type spawner struct{}

func (spawner) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "spawn":
		child, err := env.Create(spawner{}, "")
		if err != nil {
			return nil, err
		}
		return []any{child}, nil
	case "spawnLabeled":
		label, err := evm.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		child, err := env.Create(spawner{}, label)
		if err != nil {
			return nil, err
		}
		return []any{child}, nil
	default:
		return nil, evm.Revertf("unknown %q", method)
	}
}

func spawn(t *testing.T, ch *evm.Chain, from, factory types.Address) types.Address {
	t.Helper()
	r := ch.Send(from, factory, "spawn")
	if !r.Success {
		t.Fatal(r.Err)
	}
	return r.Return[0].(types.Address)
}

func TestAppOfLabel(t *testing.T) {
	cases := map[string]string{
		"Uniswap: Factory Contract": "Uniswap",
		"Uniswap":                   "Uniswap",
		" Aave : Pool ":             "Aave",
	}
	for in, want := range cases {
		if got := AppOfLabel(in); got != want {
			t.Errorf("AppOfLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// Paper Fig. 7(a): a tree with a single labeled node tags every node.
func TestSingleTagPropagatesWholeTree(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	deployer := ch.NewEOA("") // unlabeled EOA root
	factory := ch.MustDeploy(deployer, spawner{}, "Uniswap: Factory Contract")
	pool1 := spawn(t, ch, deployer, factory)
	pool2 := spawn(t, ch, deployer, factory)
	grandchild := spawn(t, ch, deployer, pool1)

	tg := New(ch)
	for _, a := range []types.Address{factory, pool1, pool2, grandchild} {
		if got := tg.Tag(a); got != types.AppTag("Uniswap") {
			t.Errorf("Tag(%s) = %s, want Uniswap", a.Short(), got)
		}
	}
	// The unlabeled EOA root inherits the descendant label too.
	if got := tg.Tag(deployer); got != types.AppTag("Uniswap") {
		t.Errorf("Tag(deployer) = %s", got)
	}
}

// Paper Fig. 7(b): a label-free tree tags every node with the root address.
func TestUnlabeledTreeTagsWithRoot(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	attacker := ch.NewEOA("")
	contract := ch.MustDeploy(attacker, spawner{}, "")
	child := spawn(t, ch, attacker, contract)

	tg := New(ch)
	want := types.RootTag(attacker)
	for _, a := range []types.Address{attacker, contract, child} {
		if got := tg.Tag(a); got != want {
			t.Errorf("Tag(%s) = %s, want %s", a.Short(), got, want)
		}
	}
	// A different tree has a different root tag.
	other := ch.NewEOA("")
	otherContract := ch.MustDeploy(other, spawner{}, "")
	tg = New(ch)
	if tg.Tag(otherContract) == want {
		t.Error("distinct trees share a root tag")
	}
}

// Paper Fig. 7(c): conflicting labels leave sandwiched nodes untaggable,
// while directly labeled nodes keep their own label.
func TestConflictingTagsLeaveNodesUntagged(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	deployer := ch.NewEOA("Yearn: Deployer")
	mid := ch.MustDeploy(deployer, spawner{}, "")
	// mid creates a Uniswap-labeled pool: the open-deployment case.
	r := ch.Send(deployer, mid, "spawnLabeled", "Uniswap: Pool")
	if !r.Success {
		t.Fatal(r.Err)
	}
	pool := r.Return[0].(types.Address)

	tg := New(ch)
	if got := tg.Tag(mid); !got.IsNone() {
		t.Errorf("Tag(mid) = %s, want untagged", got)
	}
	// Directly labeled nodes retain their labels.
	if got := tg.Tag(deployer); got != types.AppTag("Yearn") {
		t.Errorf("Tag(deployer) = %s", got)
	}
	if got := tg.Tag(pool); got != types.AppTag("Uniswap") {
		t.Errorf("Tag(pool) = %s", got)
	}
}

func TestExcludedLabelsIgnored(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	attacker := ch.NewEOA("")
	contract := ch.MustDeploy(attacker, spawner{}, "Fake Phishing: Exploiter")

	tg := New(ch)
	if got := tg.Tag(contract); got != types.AppTag("Fake Phishing") {
		t.Fatalf("precondition: label should apply, got %s", got)
	}
	// The paper removes attacker labels before detection: the tree then
	// falls back to root tagging.
	tg = New(ch, contract)
	if got := tg.Tag(contract); got != types.RootTag(attacker) {
		t.Errorf("Tag with exclusion = %s, want root tag", got)
	}
}

func TestUnknownAddressIsOwnRoot(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	tg := New(ch)
	stranger := types.Address{0xAB, 0xCD}
	if got := tg.Tag(stranger); got != types.RootTag(stranger) {
		t.Errorf("Tag(stranger) = %s", got)
	}
	if got := tg.Tag(types.ZeroAddress); got != types.RootTag(types.ZeroAddress) {
		t.Errorf("Tag(zero) = %s", got)
	}
	if got := tg.Root(stranger); got != stranger {
		t.Errorf("Root(stranger) = %s", got)
	}
}

func TestTagTransfers(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	deployer := ch.NewEOA("")
	uni := ch.MustDeploy(deployer, spawner{}, "Uniswap: Factory")
	user := ch.NewEOA("")
	tg := New(ch)

	tok := types.Token{Address: types.Address{9}, Symbol: "TKN", Decimals: 18}
	in := []types.Transfer{
		{Seq: 3, Sender: user, Receiver: uni, Amount: uint256.FromUint64(7), Token: tok},
	}
	out := tg.TagTransfers(in)
	if len(out) != 1 {
		t.Fatalf("len = %d", len(out))
	}
	tt := out[0]
	if tt.SenderTag != types.RootTag(user) || tt.ReceiverTag != types.AppTag("Uniswap") {
		t.Errorf("tags = %s, %s", tt.SenderTag, tt.ReceiverTag)
	}
	if tt.Seq != 3 || tt.Amount.Uint64() != 7 {
		t.Errorf("payload lost: %+v", tt)
	}
}

// Sibling subtrees under a labeled root both inherit the root's label even
// when one subtree is otherwise bare — the "ancestors" half of the rule.
func TestAncestorLabelReachesLeaves(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	deployer := ch.NewEOA("Balancer: Deployer")
	factory := ch.MustDeploy(deployer, spawner{}, "")
	leaf := spawn(t, ch, deployer, factory)
	tg := New(ch)
	if got := tg.Tag(leaf); got != types.AppTag("Balancer") {
		t.Errorf("Tag(leaf) = %s", got)
	}
}

func TestStats(t *testing.T) {
	ch := evm.NewChain(time.Unix(0, 0))
	// A labeled tree (3 accounts tagged "Uniswap"), an unlabeled tree
	// (2 accounts root-tagged), and a conflicted pair.
	d1 := ch.NewEOA("")
	uni := ch.MustDeploy(d1, spawner{}, "Uniswap: Factory")
	spawn(t, ch, d1, uni)
	d2 := ch.NewEOA("")
	ch.MustDeploy(d2, spawner{}, "")
	d3 := ch.NewEOA("Yearn: Deployer")
	mid := ch.MustDeploy(d3, spawner{}, "")
	r := ch.Send(d3, mid, "spawnLabeled", "Uniswap: Pool")
	if !r.Success {
		t.Fatal(r.Err)
	}

	s := New(ch).Stats()
	if s.Accounts != 8 {
		t.Errorf("accounts = %d", s.Accounts)
	}
	if s.Conflicted != 1 { // mid sits between Yearn and Uniswap labels
		t.Errorf("conflicted = %d", s.Conflicted)
	}
	if s.AppTagged < 5 {
		t.Errorf("appTagged = %d", s.AppTagged)
	}
	if s.ConflictPct() <= 0 || s.ConflictPct() >= 100 {
		t.Errorf("conflictPct = %f", s.ConflictPct())
	}
	if (Stats{}).ConflictPct() != 0 {
		t.Error("empty stats")
	}
}
