package tagging

import (
	"sync"

	"leishen/internal/types"
)

// Tag interning.
//
// The tagger is the single authority for account → tag resolution, so
// it also owns the tag intern table: one small integer id per distinct
// Tag value, issued deterministically from the snapshot's account order
// at construction and extended lazily (under a mutex, memoized in
// sync.Maps) for out-of-snapshot addresses discovered while scanning.
// Id equality is Tag equality — the table never issues two ids for one
// value — which is what lets the simplify/trades/match layers compare
// interned ids instead of hashing tag strings. ResolveTag returns the
// exact Tag value the string pipeline would have carried, so reports
// materialized from ids are byte-identical.

// intern is the Tagger's id table.
type intern struct {
	// ids maps snapshot accounts to their tag's id; read-only after New.
	ids map[types.Address]types.TagID
	// byID maps snapshot-issued ids back to tags; read-only after New.
	// byID[NoTagID] is the untaggable marker.
	byID []types.Tag
	// tagIDs maps distinct snapshot tag values to ids (rule configuration
	// looks up e.g. the Wrapped Ether tag here); read-only after New.
	tagIDs map[types.Tag]types.TagID
	// zeroRootID is the id of the BlackHole address's root tag.
	zeroRootID types.TagID

	// Out-of-snapshot extension: extraIDs maps addresses to lazily
	// issued ids, extraTags maps those ids back to tags. mu serializes
	// issuance; lookups are lock-free loads.
	mu        sync.Mutex
	nextID    types.TagID
	extraIDs  sync.Map // types.Address -> types.TagID
	extraTags sync.Map // types.TagID -> types.Tag
}

// buildIntern assigns ids for every snapshot tag. Iterating the
// accounts slice (not the tags map) keeps id assignment deterministic;
// determinism is not needed for output identity — ids never leave the
// process — but it keeps runs comparable under profiling and satisfies
// the map-order lint.
func (t *Tagger) buildIntern(accounts []types.Address) {
	t.intern.byID = append(t.intern.byID, types.NoTag())
	t.intern.tagIDs = map[types.Tag]types.TagID{types.NoTag(): types.NoTagID}
	t.intern.ids = make(map[types.Address]types.TagID, len(accounts))
	assign := func(tag types.Tag) types.TagID {
		if id, ok := t.intern.tagIDs[tag]; ok {
			return id
		}
		id := types.TagID(len(t.intern.byID))
		t.intern.byID = append(t.intern.byID, tag)
		t.intern.tagIDs[tag] = id
		return id
	}
	for _, a := range accounts {
		t.intern.ids[a] = assign(t.tags[a])
	}
	t.intern.zeroRootID = assign(zeroRootTag)
	t.intern.nextID = types.TagID(len(t.intern.byID))
}

// TagIDOf returns the interned id of an account's tag, mirroring Tag:
// snapshot accounts resolve from the precomputed table, the BlackHole
// address resolves to its root tag's id, and unknown addresses are
// issued a root-tag id on first sight.
func (t *Tagger) TagIDOf(addr types.Address) types.TagID {
	if addr.IsZero() {
		return t.intern.zeroRootID
	}
	if id, ok := t.intern.ids[addr]; ok {
		return id
	}
	if id, ok := t.intern.extraIDs.Load(addr); ok {
		return id.(types.TagID)
	}
	return t.internExtra(addr)
}

// internExtra issues an id for an out-of-snapshot address. Out-of-
// snapshot accounts are their own roots (see Tag), and distinct
// addresses yield distinct root tags, so deduping by address preserves
// the one-id-per-value invariant.
func (t *Tagger) internExtra(addr types.Address) types.TagID {
	t.intern.mu.Lock()
	defer t.intern.mu.Unlock()
	if id, ok := t.intern.extraIDs.Load(addr); ok {
		return id.(types.TagID)
	}
	tag := types.RootTag(addr)
	id := t.intern.nextID
	t.intern.nextID++
	t.intern.extraTags.Store(id, tag)
	t.intern.extraIDs.Store(addr, id)
	return id
}

// ResolveTag returns the Tag value behind an issued id. Resolving an id
// the tagger never issued returns the untaggable marker.
func (t *Tagger) ResolveTag(id types.TagID) types.Tag {
	if int(id) < len(t.intern.byID) {
		return t.intern.byID[id]
	}
	if tag, ok := t.intern.extraTags.Load(id); ok {
		return tag.(types.Tag)
	}
	return types.NoTag()
}

// IDOfTag returns the id of a snapshot tag value, or false when no
// snapshot account carries it. Rule configuration uses this to resolve
// directed tags (the Wrapped Ether application) once per detector
// instead of comparing strings per transfer.
func (t *Tagger) IDOfTag(tag types.Tag) (types.TagID, bool) {
	id, ok := t.intern.tagIDs[tag]
	return id, ok
}

// TagTransferIDs fills the interned tag fields of transfers in place —
// the interned counterpart of TagTransfersInto, operating on the
// extraction buffer directly instead of copying into a second slice.
func (t *Tagger) TagTransferIDs(transfers []types.ITransfer) {
	for i := range transfers {
		transfers[i].SenderTag = t.TagIDOf(transfers[i].Sender)
		transfers[i].ReceiverTag = t.TagIDOf(transfers[i].Receiver)
	}
}
