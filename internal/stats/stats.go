// Package stats aggregates detection results into the tables and series
// the paper's evaluation reports: per-pattern precision (Table V), top
// attacked applications (Table VI), profit summaries (Table VII), and
// weekly/monthly time series (Figs. 1 and 8).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// PrecisionRow is one pattern's row of paper Table V.
type PrecisionRow struct {
	// Pattern is the row label (KRP/SBS/MBS or "overall").
	Pattern string
	// N is the number of detections, TP/FP the verified split.
	N, TP, FP int
}

// Precision returns TP/(TP+FP) in percent, or 0 for empty rows.
func (r PrecisionRow) Precision() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.TP) / float64(r.N) * 100
}

// String renders the row.
func (r PrecisionRow) String() string {
	return fmt.Sprintf("%-8s N=%-4d TP=%-4d FP=%-4d P=%.1f%%", r.Pattern, r.N, r.TP, r.FP, r.Precision())
}

// PrecisionTable is paper Table V.
type PrecisionTable struct {
	Rows    []PrecisionRow
	Overall PrecisionRow
}

// String renders the table.
func (t PrecisionTable) String() string {
	var b strings.Builder
	for _, r := range t.Rows {
		fmt.Fprintln(&b, r)
	}
	fmt.Fprintln(&b, t.Overall)
	return b.String()
}

// AppRow is one row of paper Table VI.
type AppRow struct {
	App       string
	Attacks   int
	Attackers int
	Contracts int
	Assets    int
}

// String renders the row.
func (r AppRow) String() string {
	return fmt.Sprintf("%-12s attacks=%-3d attackers=%-2d contracts=%-3d assets=%d",
		r.App, r.Attacks, r.Attackers, r.Contracts, r.Assets)
}

// TopApps aggregates attack metadata into Table VI rows sorted by attack
// count descending (ties by name for determinism).
func TopApps(attacks []AttackMeta) []AppRow {
	type agg struct {
		attacks   int
		attackers map[string]bool
		contracts map[string]bool
		assets    map[string]bool
	}
	byApp := make(map[string]*agg)
	for _, a := range attacks {
		g := byApp[a.App]
		if g == nil {
			g = &agg{
				attackers: make(map[string]bool),
				contracts: make(map[string]bool),
				assets:    make(map[string]bool),
			}
			byApp[a.App] = g
		}
		g.attacks++
		g.attackers[a.Attacker] = true
		g.contracts[a.Contract] = true
		g.assets[a.Asset] = true
	}
	rows := make([]AppRow, 0, len(byApp))
	for app, g := range byApp {
		rows = append(rows, AppRow{
			App: app, Attacks: g.attacks,
			Attackers: len(g.attackers), Contracts: len(g.contracts), Assets: len(g.assets),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Attacks != rows[j].Attacks {
			return rows[i].Attacks > rows[j].Attacks
		}
		return rows[i].App < rows[j].App
	})
	return rows
}

// AttackMeta is the per-attack metadata Table VI aggregates.
type AttackMeta struct {
	App      string
	Attacker string
	Contract string
	Asset    string
}

// ProfitSummary is paper Table VII.
type ProfitSummary struct {
	Mean, Min, Max       float64
	Top10Avg, Top20Avg   float64
	Total                float64
	MeanYield, MaxYield  float64
	MinYield             float64
	Top10Yield, Top20Yld float64
}

// Summarize computes Table VII from per-attack profits and yield rates
// (parallel slices).
func Summarize(profitsUSD, yieldPcts []float64) ProfitSummary {
	var s ProfitSummary
	if len(profitsUSD) == 0 {
		return s
	}
	sorted := append([]float64(nil), profitsUSD...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, p := range profitsUSD {
		s.Total += p
		s.Min = math.Min(s.Min, p)
		s.Max = math.Max(s.Max, p)
	}
	s.Mean = s.Total / float64(len(profitsUSD))
	s.Top10Avg = avg(sorted[:max(1, len(sorted)/10)])
	s.Top20Avg = avg(sorted[:max(1, len(sorted)/5)])

	if len(yieldPcts) > 0 {
		ys := append([]float64(nil), yieldPcts...)
		sort.Sort(sort.Reverse(sort.Float64Slice(ys)))
		s.MinYield, s.MaxYield = math.Inf(1), math.Inf(-1)
		var tot float64
		for _, y := range yieldPcts {
			tot += y
			s.MinYield = math.Min(s.MinYield, y)
			s.MaxYield = math.Max(s.MaxYield, y)
		}
		s.MeanYield = tot / float64(len(yieldPcts))
		s.Top10Yield = avg(ys[:max(1, len(ys)/10)])
		s.Top20Yld = avg(ys[:max(1, len(ys)/5)])
	}
	return s
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// MonthKey buckets a time into "2006-01" form.
func MonthKey(t time.Time) string { return t.UTC().Format("2006-01") }

// WeekKey buckets a time into ISO year-week form.
func WeekKey(t time.Time) string {
	y, w := t.UTC().ISOWeek()
	return fmt.Sprintf("%04d-W%02d", y, w)
}

// Series is an ordered bucket -> count mapping.
type Series struct {
	Keys   []string
	Counts map[string]int
}

// Bucket counts times into ordered buckets using the key function.
func Bucket(times []time.Time, key func(time.Time) string) Series {
	counts := make(map[string]int)
	for _, t := range times {
		counts[key(t)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return Series{Keys: keys, Counts: counts}
}

// String renders the series one bucket per line.
func (s Series) String() string {
	var b strings.Builder
	for _, k := range s.Keys {
		fmt.Fprintf(&b, "%s %d\n", k, s.Counts[k])
	}
	return b.String()
}

// MultiSeries is a keyed family of series sharing buckets (Fig. 1's three
// providers).
type MultiSeries struct {
	Keys   []string
	Names  []string
	Counts map[string]map[string]int // name -> bucket -> count
}

// BucketBy counts (time, name) samples into an ordered multi-series.
func BucketBy(samples []TimedName, key func(time.Time) string) MultiSeries {
	counts := make(map[string]map[string]int)
	bucketSet := make(map[string]bool)
	nameSet := make(map[string]bool)
	for _, s := range samples {
		k := key(s.Time)
		bucketSet[k] = true
		nameSet[s.Name] = true
		m := counts[s.Name]
		if m == nil {
			m = make(map[string]int)
			counts[s.Name] = m
		}
		m[k]++
	}
	keys := make([]string, 0, len(bucketSet))
	for k := range bucketSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	return MultiSeries{Keys: keys, Names: names, Counts: counts}
}

// TimedName is one (time, name) sample.
type TimedName struct {
	Time time.Time
	Name string
}

// String renders the multi-series as a table.
func (m MultiSeries) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "bucket")
	for _, n := range m.Names {
		fmt.Fprintf(&b, " %10s", n)
	}
	fmt.Fprintln(&b)
	for _, k := range m.Keys {
		fmt.Fprintf(&b, "%-10s", k)
		for _, n := range m.Names {
			fmt.Fprintf(&b, " %10d", m.Counts[n][k])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sparkLevels are the eight block glyphs sparklines draw with.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders counts (in key order) as a one-line unicode chart —
// enough to eyeball Figs. 1 and 8 in a terminal.
func (s Series) Sparkline() string {
	max := 0
	for _, k := range s.Keys {
		if c := s.Counts[k]; c > max {
			max = c
		}
	}
	if max == 0 {
		return ""
	}
	out := make([]rune, 0, len(s.Keys))
	for _, k := range s.Keys {
		idx := s.Counts[k] * (len(sparkLevels) - 1) / max
		out = append(out, sparkLevels[idx])
	}
	return string(out)
}

// Sparkline renders one named series of a multi-series.
func (m MultiSeries) Sparkline(name string) string {
	sub := Series{Keys: m.Keys, Counts: m.Counts[name]}
	if sub.Counts == nil {
		return ""
	}
	return sub.Sparkline()
}
