package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPrecisionRow(t *testing.T) {
	r := PrecisionRow{Pattern: "SBS", N: 79, TP: 68, FP: 11}
	if p := r.Precision(); math.Abs(p-86.07) > 0.1 {
		t.Errorf("precision = %f", p)
	}
	if (PrecisionRow{}).Precision() != 0 {
		t.Error("empty row precision")
	}
	if !strings.Contains(r.String(), "86.1%") {
		t.Errorf("render = %s", r)
	}
	tab := PrecisionTable{
		Rows:    []PrecisionRow{r},
		Overall: PrecisionRow{Pattern: "overall", N: 180, TP: 142, FP: 38},
	}
	if !strings.Contains(tab.String(), "overall") {
		t.Error("table render")
	}
}

func TestTopApps(t *testing.T) {
	var metas []AttackMeta
	add := func(app, attacker, contract, asset string, n int) {
		for i := 0; i < n; i++ {
			metas = append(metas, AttackMeta{App: app, Attacker: attacker, Contract: contract, Asset: asset})
		}
	}
	add("Balancer", "a1", "c1", "t1", 3)
	add("Balancer", "a2", "c2", "t2", 2)
	add("Yearn", "a3", "c3", "t3", 4)
	add("Uniswap", "a4", "c4", "t4", 4)

	rows := TopApps(metas)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// Balancer first (5 attacks), then ties Uniswap/Yearn sorted by name.
	if rows[0].App != "Balancer" || rows[0].Attacks != 5 || rows[0].Attackers != 2 || rows[0].Contracts != 2 || rows[0].Assets != 2 {
		t.Errorf("row0 = %+v", rows[0])
	}
	if rows[1].App != "Uniswap" || rows[2].App != "Yearn" {
		t.Errorf("tie order: %v, %v", rows[1].App, rows[2].App)
	}
	if !strings.Contains(rows[0].String(), "attacks=5") {
		t.Errorf("render = %s", rows[0])
	}
}

func TestSummarize(t *testing.T) {
	profits := []float64{23, 100, 1000, 5000, 50_000, 200_000, 800_000, 2_000_000, 4_000_000, 6_100_000}
	yields := []float64{0.003, 0.1, 0.3, 1, 5, 20, 100, 1000, 10_000, 220_000}
	s := Summarize(profits, yields)
	if s.Min != 23 || s.Max != 6_100_000 {
		t.Errorf("min/max = %f/%f", s.Min, s.Max)
	}
	var total float64
	for _, p := range profits {
		total += p
	}
	if math.Abs(s.Total-total) > 1 {
		t.Errorf("total = %f", s.Total)
	}
	if math.Abs(s.Mean-total/10) > 1 {
		t.Errorf("mean = %f", s.Mean)
	}
	// Top 10% = the single largest.
	if s.Top10Avg != 6_100_000 {
		t.Errorf("top10 = %f", s.Top10Avg)
	}
	// Top 20% = average of the two largest.
	if math.Abs(s.Top20Avg-(6_100_000+4_000_000)/2) > 1 {
		t.Errorf("top20 = %f", s.Top20Avg)
	}
	if s.MaxYield != 220_000 || s.MinYield != 0.003 {
		t.Errorf("yields = %f/%f", s.MinYield, s.MaxYield)
	}
	// Empty input.
	if z := Summarize(nil, nil); z.Total != 0 {
		t.Errorf("empty = %+v", z)
	}
}

func TestBucketing(t *testing.T) {
	times := []time.Time{
		time.Date(2020, 6, 3, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 6, 25, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC),
	}
	s := Bucket(times, MonthKey)
	if s.Counts["2020-06"] != 2 || s.Counts["2020-07"] != 1 {
		t.Errorf("counts = %v", s.Counts)
	}
	if len(s.Keys) != 2 || s.Keys[0] != "2020-06" {
		t.Errorf("keys = %v", s.Keys)
	}
	if !strings.Contains(s.String(), "2020-06 2") {
		t.Errorf("render = %s", s)
	}
	// Weekly keys are ISO weeks.
	w := Bucket(times, WeekKey)
	if len(w.Keys) == 0 || !strings.HasPrefix(w.Keys[0], "2020-W") {
		t.Errorf("week keys = %v", w.Keys)
	}
}

func TestBucketBy(t *testing.T) {
	samples := []TimedName{
		{Time: time.Date(2020, 6, 3, 0, 0, 0, 0, time.UTC), Name: "AAVE"},
		{Time: time.Date(2020, 6, 4, 0, 0, 0, 0, time.UTC), Name: "Uniswap"},
		{Time: time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC), Name: "Uniswap"},
	}
	m := BucketBy(samples, MonthKey)
	if m.Counts["Uniswap"]["2020-06"] != 1 || m.Counts["Uniswap"]["2020-07"] != 1 {
		t.Errorf("counts = %v", m.Counts)
	}
	if len(m.Names) != 2 || m.Names[0] != "AAVE" {
		t.Errorf("names = %v", m.Names)
	}
	out := m.String()
	if !strings.Contains(out, "AAVE") || !strings.Contains(out, "2020-07") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Series{
		Keys:   []string{"a", "b", "c", "d"},
		Counts: map[string]int{"a": 0, "b": 4, "c": 8, "d": 2},
	}
	got := s.Sparkline()
	if len([]rune(got)) != 4 {
		t.Fatalf("sparkline = %q", got)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("sparkline = %q", got)
	}
	if (Series{}).Sparkline() != "" {
		t.Error("empty series should render empty")
	}
	m := MultiSeries{
		Keys:   []string{"a", "b"},
		Names:  []string{"x"},
		Counts: map[string]map[string]int{"x": {"a": 1, "b": 2}},
	}
	if len([]rune(m.Sparkline("x"))) != 2 {
		t.Errorf("multi sparkline = %q", m.Sparkline("x"))
	}
	if m.Sparkline("nope") != "" {
		t.Error("unknown series should render empty")
	}
}
