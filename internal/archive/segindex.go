// Sidecar segment indexes: the O(touched) open path.
//
// When a segment is sealed — at rotation, or at a clean Close for the
// active tail — the archive writes a `seg-%08d.idx` sidecar next to the
// log file holding everything Open otherwise learns by replaying the
// segment: per-frame metadata (kind, block, flags, tx hash / digest,
// framed size), plus a permutation of the report entries sorted by tx
// hash so point lookups binary-search instead of building a map. A
// CRC32C trailer covers the whole sidecar, and two pairing checks bind
// it to its log file: the exact byte size the entries must sum to, and
// a CRC over the log's tail window. A sidecar that is missing, corrupt,
// or stale (the log grew or shrank since it was written) is simply
// ignored — Open falls back to the full replay it always did, then
// rewrites the sidecar — so sidecars are a cache, never an authority:
// no byte of them is trusted without validation, the property
// FuzzSidecarDecode pins down.
//
// Sidecar layout (all integers big-endian):
//
//	magic   "LSIX" (4)
//	version uint16 (1)
//	segSize uint64   bytes of log the entries cover (must equal the sum
//	                 of the entry sizes and the log file's size)
//	tailCRC uint32   CRC32C of the log's final min(segSize, 4096) bytes
//	count   uint32   number of entries
//	reports uint32   number of KindReport entries
//	entries count × 46: kind(1) flags(1) block(8) size(4) hash|digest(32)
//	perm    reports × uint32: report-entry positions sorted by (hash, pos)
//	crc     uint32   CRC32C of every byte above
//
// Frame offsets are not stored: frames are contiguous from 0, so the
// decoder reconstructs them by accumulating sizes. Fences (min/max
// block, verdict-flag union) and the tx-hash bloom filter are likewise
// recomputed from the entries at load time — cheaper than validating a
// stored copy, and it keeps the encoding canonical: every field is
// either stored and round-tripped or derived and re-derivable.
package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"leishen/internal/types"
	"leishen/internal/vfs"
)

const (
	// sidecarSuffix names the index files beside the .log segments.
	sidecarSuffix = ".idx"
	// sidecarMagic opens every sidecar file.
	sidecarMagic = "LSIX"
	// sidecarVersion is bumped on any layout change; a mismatch is a
	// stale sidecar, not an error.
	sidecarVersion = 1
	// sidecarHeaderSize is the fixed prefix before the entries.
	sidecarHeaderSize = 4 + 2 + 8 + 4 + 4 + 4
	// sidecarEntrySize is one fixed-width frame descriptor.
	sidecarEntrySize = 1 + 1 + 8 + 4 + 32
	// sidecarTailWindow is how many trailing log bytes tailCRC covers —
	// enough to catch a mismatched or tampered log without an O(segment)
	// read at open time.
	sidecarTailWindow = 4096
	// minReportFrame / checkpointFrame bound the framed sizes a sidecar
	// entry may claim; anything outside is a rejected sidecar.
	minReportFrame  = frameHeaderSize + 1 + reportHeaderSize
	checkpointFrame = frameHeaderSize + 1 + checkpointSize
)

// errBadSidecar marks every sidecar validation failure; callers treat
// any of them as "no sidecar" and fall back to replay.
var errBadSidecar = errors.New("bad sidecar")

// sidecar is one decoded index file. Entries are materialized directly
// as frameRefs — the in-memory index representation — so a sidecar load
// is one bulk append into Archive.frames instead of a per-entry
// conversion; the decoder fills offsets by accumulation and leaves seg
// for the loader. A report entry's hash lands in txHash, a checkpoint's
// in digest.
type sidecar struct {
	segSize int64
	tailCRC uint32
	entries []frameRef
	perm    []uint32 // report-entry positions sorted by (hash, position)
}

// entryHash selects the stored hash field: tx hash for reports, block
// digest for checkpoints.
func entryHash(f *frameRef) *types.Hash {
	if f.kind == KindReport {
		return &f.txHash
	}
	return &f.digest
}

// encodeSidecar serializes sc in the canonical layout.
func encodeSidecar(sc *sidecar) []byte {
	out := make([]byte, 0, sidecarHeaderSize+len(sc.entries)*sidecarEntrySize+len(sc.perm)*4+4)
	out = append(out, sidecarMagic...)
	out = binary.BigEndian.AppendUint16(out, sidecarVersion)
	out = binary.BigEndian.AppendUint64(out, uint64(sc.segSize))
	out = binary.BigEndian.AppendUint32(out, sc.tailCRC)
	out = binary.BigEndian.AppendUint32(out, uint32(len(sc.entries)))
	out = binary.BigEndian.AppendUint32(out, uint32(len(sc.perm)))
	for i := range sc.entries {
		e := &sc.entries[i]
		out = append(out, byte(e.kind), e.flags)
		out = binary.BigEndian.AppendUint64(out, e.block)
		out = binary.BigEndian.AppendUint32(out, uint32(e.size))
		out = append(out, entryHash(e)[:]...)
	}
	for _, p := range sc.perm {
		out = binary.BigEndian.AppendUint32(out, p)
	}
	return binary.BigEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// decodeSidecar parses and fully validates a sidecar. Every violation
// returns an error wrapping errBadSidecar; a nil error guarantees the
// decoded index is internally consistent (sizes sum to segSize, blocks
// non-decreasing, perm a valid hash-sorted permutation of the report
// entries) and that re-encoding reproduces the input byte for byte.
func decodeSidecar(data []byte) (*sidecar, error) {
	sc, _, err := decodeSidecarInto(data, nil, 1)
	return sc, err
}

// decodeSidecarInto is decodeSidecar writing its entries straight into
// dst — the open path appends each segment's entries to Archive.frames
// without an intermediate slice or bulk copy. growSegs estimates how
// many same-sized segments are still to load (this one included), so
// one targeted grow usually serves the whole open. Returns the sidecar
// (entries aliasing the appended region) and the extended dst; on error
// dst's contents past its original length are unspecified and the
// caller must keep its original slice header.
func decodeSidecarInto(data []byte, dst []frameRef, growSegs int) (*sidecar, []frameRef, error) {
	if len(data) < sidecarHeaderSize+4 {
		return nil, dst, fmt.Errorf("%w: %d bytes is shorter than a header", errBadSidecar, len(data))
	}
	if string(data[0:4]) != sidecarMagic {
		return nil, dst, fmt.Errorf("%w: bad magic %q", errBadSidecar, data[0:4])
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != sidecarVersion {
		return nil, dst, fmt.Errorf("%w: version %d, want %d", errBadSidecar, v, sidecarVersion)
	}
	sc := &sidecar{
		segSize: int64(binary.BigEndian.Uint64(data[6:14])),
		tailCRC: binary.BigEndian.Uint32(data[14:18]),
	}
	count := int(binary.BigEndian.Uint32(data[18:22]))
	reports := int(binary.BigEndian.Uint32(data[22:26]))
	want := sidecarHeaderSize + count*sidecarEntrySize + reports*4 + 4
	if sc.segSize < 0 || reports > count || len(data) != want {
		return nil, dst, fmt.Errorf("%w: %d bytes for %d entries / %d reports, want %d", errBadSidecar, len(data), count, reports, want)
	}
	body, stored := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != stored {
		return nil, dst, fmt.Errorf("%w: CRC32C mismatch (stored %08x, computed %08x)", errBadSidecar, stored, got)
	}

	base := len(dst)
	if cap(dst)-base < count {
		if growSegs < 1 {
			growSegs = 1
		}
		grown := make([]frameRef, base, base+count*growSegs)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+count]
	sc.entries = dst[base:]
	off := sidecarHeaderSize
	var sum int64
	var lastBlock uint64
	gotReports := 0
	for i := range sc.entries {
		e := &sc.entries[i]
		e.kind = Kind(data[off])
		e.flags = data[off+1]
		e.block = binary.BigEndian.Uint64(data[off+2 : off+10])
		e.size = int64(binary.BigEndian.Uint32(data[off+10 : off+14]))
		e.off = sum
		e.seg = 0
		copy(entryHash(e)[:], data[off+14:off+46])
		// Reused capacity may hold stale bytes: the hash field the copy
		// above did not fill must read back zero.
		if e.kind == KindReport {
			e.digest = types.Hash{}
		} else {
			e.txHash = types.Hash{}
		}
		off += sidecarEntrySize
		switch e.kind {
		case KindReport:
			if e.size < minReportFrame || e.size > frameHeaderSize+maxPayloadSize {
				return nil, dst, fmt.Errorf("%w: report frame size %d out of range", errBadSidecar, e.size)
			}
			gotReports++
		case KindCheckpoint:
			if e.size != checkpointFrame {
				return nil, dst, fmt.Errorf("%w: checkpoint frame size %d, want %d", errBadSidecar, e.size, checkpointFrame)
			}
			if e.flags != 0 {
				return nil, dst, fmt.Errorf("%w: checkpoint entry carries flags %08b", errBadSidecar, e.flags)
			}
		default:
			return nil, dst, fmt.Errorf("%w: unknown entry kind %d", errBadSidecar, e.kind)
		}
		if e.block < lastBlock {
			return nil, dst, fmt.Errorf("%w: block %d after %d breaks append order", errBadSidecar, e.block, lastBlock)
		}
		lastBlock = e.block
		sum += e.size
	}
	if gotReports != reports {
		return nil, dst, fmt.Errorf("%w: header claims %d reports, entries hold %d", errBadSidecar, reports, gotReports)
	}
	if sum != sc.segSize {
		return nil, dst, fmt.Errorf("%w: entry sizes sum to %d, header claims %d", errBadSidecar, sum, sc.segSize)
	}

	// perm must be the report positions sorted by (hash, position) —
	// strict ordering makes duplicates and out-of-range values impossible
	// to smuggle in, so a valid perm can never misdirect a lookup.
	sc.perm = make([]uint32, reports)
	for i := range sc.perm {
		p := binary.BigEndian.Uint32(data[off : off+4])
		off += 4
		if int(p) >= count || sc.entries[p].kind != KindReport {
			return nil, dst, fmt.Errorf("%w: perm[%d]=%d is not a report entry", errBadSidecar, i, p)
		}
		if i > 0 {
			prev := sc.perm[i-1]
			c := bytes.Compare(sc.entries[prev].txHash[:], sc.entries[p].txHash[:])
			if c > 0 || (c == 0 && prev >= p) {
				return nil, dst, fmt.Errorf("%w: perm not strictly (hash, position)-sorted at %d", errBadSidecar, i)
			}
		}
		sc.perm[i] = p
	}
	return sc, dst, nil
}

// logTailCRC computes the CRC32C over the final min(size, window) bytes
// of the log file — the cheap pairing check binding a sidecar to its
// segment.
func logTailCRC(fsys vfs.FS, path string, size int64) (uint32, error) {
	if size == 0 {
		return 0, nil
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	win := size
	if win > sidecarTailWindow {
		win = sidecarTailWindow
	}
	buf := make([]byte, win)
	if _, err := f.ReadAt(buf, size-win); err != nil {
		return 0, err
	}
	return crc32.Checksum(buf, castagnoli), nil
}

// buildPerm returns the report positions in frames sorted by
// (tx hash, position) — binary-searchable, with ties broken so the last
// append wins, matching the map semantics it replaces.
func buildPerm(frames []frameRef) []uint32 {
	perm := make([]uint32, 0, len(frames))
	for i := range frames {
		if frames[i].kind == KindReport {
			perm = append(perm, uint32(i))
		}
	}
	sort.Slice(perm, func(x, y int) bool {
		hx, hy := &frames[perm[x]].txHash, &frames[perm[y]].txHash
		if c := bytes.Compare(hx[:], hy[:]); c != 0 {
			return c < 0
		}
		return perm[x] < perm[y]
	})
	return perm
}

// buildSidecar assembles the sidecar describing one segment's frames.
// The frames slice is referenced, not copied — encodeSidecar reads only
// the persisted fields.
func buildSidecar(frames []frameRef, segSize int64, tailCRC uint32, perm []uint32) *sidecar {
	return &sidecar{segSize: segSize, tailCRC: tailCRC, entries: frames, perm: perm}
}

// bloom is a fixed-shape bloom filter over 32-byte tx hashes. Hashes
// are already uniform, so the probe positions come straight from the
// hash bytes — no extra hashing. ~10 bits and 7 probes per key give a
// <1% false-positive rate.
type bloom struct {
	bits []uint64
	mask uint64 // len(bits)*64 - 1; bit count is a power of two
}

// bloomProbes is the number of bits set/tested per key.
const bloomProbes = 7

// newBloom sizes a filter for n keys. n == 0 yields the empty filter,
// whose mayContain is always false.
func newBloom(n int) bloom {
	if n <= 0 {
		return bloom{}
	}
	m := 64
	for m < n*10 {
		m <<= 1
	}
	return bloom{bits: make([]uint64, m/64), mask: uint64(m - 1)}
}

func bloomHashes(h types.Hash) (h1, h2 uint64) {
	h1 = binary.BigEndian.Uint64(h[0:8])
	h2 = binary.BigEndian.Uint64(h[8:16]) | 1 // odd stride hits every slot
	return
}

func (b *bloom) add(h types.Hash) {
	if b.bits == nil {
		return
	}
	h1, h2 := bloomHashes(h)
	for i := 0; i < bloomProbes; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) mayContain(h types.Hash) bool {
	if b.bits == nil {
		return false
	}
	h1, h2 := bloomHashes(h)
	for i := 0; i < bloomProbes; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
