package archive

import (
	"strings"
	"testing"

	"leishen/internal/metrics"
)

// TestRegisterMetrics pins the single-source-of-truth property: the
// counters a registered scrape renders are the very numbers Stats()
// reports, for the write path (appends, bytes, rotations, syncs), the
// open path (sidecar loads vs replays), and the read path (cache,
// pruning, run coalescing).
func TestRegisterMetrics(t *testing.T) {
	dir := t.TempDir()
	a := buildArchive(t, dir, 40, Options{SegmentBytes: 512})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen so sidecar loads, then exercise reads.
	b, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	reg := metrics.NewRegistry()
	b.RegisterMetrics(reg)

	h := sampleRecord(3).TxHash
	for i := 0; i < 3; i++ {
		if _, ok, err := b.GetRaw(h); err != nil || !ok {
			t.Fatalf("GetRaw: ok=%v err=%v", ok, err)
		}
	}
	if _, _, err := b.SelectRaw(Query{FromBlock: 5, ToBlock: 8}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendReport(sampleRecord(40)); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}

	st := b.Stats()
	if st.Appends == 0 || st.AppendedBytes == 0 {
		t.Fatalf("write-path counters empty: %+v", st)
	}
	if st.Rotations == 0 {
		t.Errorf("Rotations = 0, want >0 with 512-byte segments")
	}
	if st.Syncs == 0 {
		t.Errorf("Syncs = 0, want >0 after Sync")
	}
	if st.OpenSidecarLoads == 0 {
		t.Errorf("OpenSidecarLoads = 0, want >0 after a sealed reopen")
	}
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	if st.ReadRuns == 0 || st.ReadFrames < st.ReadRuns {
		t.Errorf("read runs/frames = %d/%d, want coalesced reads", st.ReadRuns, st.ReadFrames)
	}

	// The scrape must agree series by series with the snapshot.
	out := string(reg.AppendText(nil))
	for series, want := range map[string]uint64{
		"leishen_archive_appends_total":                 st.Appends,
		"leishen_archive_appended_bytes_total":          st.AppendedBytes,
		"leishen_archive_segment_rotations_total":       st.Rotations,
		"leishen_archive_fsyncs_total":                  st.Syncs,
		"leishen_archive_open_sidecar_loads_total":      uint64(st.OpenSidecarLoads),
		"leishen_archive_open_replays_total":            uint64(st.OpenReplays),
		"leishen_archive_cache_hits_total":              st.CacheHits,
		"leishen_archive_cache_misses_total":            st.CacheMisses,
		"leishen_archive_read_runs_total":               st.ReadRuns,
		"leishen_archive_read_frames_total":             st.ReadFrames,
		"leishen_archive_select_segments_scanned_total": st.SelectSegmentsScanned,
		"leishen_archive_select_segments_pruned_total":  st.SelectSegmentsPruned,
		"leishen_archive_records":                       uint64(st.Records),
		"leishen_archive_segments":                      uint64(st.Segments),
		"leishen_archive_sealed_segments":               uint64(st.SealedSegments),
		"leishen_archive_cache_records":                 uint64(st.CacheRecords),
	} {
		if !scrapeHas(out, series, want) {
			t.Errorf("exposition: want %s %d, scrape:\n%s", series, want, grepFamily(out, series))
		}
	}
}

// scrapeHas reports whether the exposition contains `name value` as an
// exact sample line.
func scrapeHas(out, name string, value uint64) bool {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name && fields[1] == formatUint(value) {
			return true
		}
	}
	return false
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// grepFamily returns the exposition lines mentioning name, for error
// messages.
func grepFamily(out, name string) string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, name) {
			lines = append(lines, line)
		}
	}
	return strings.Join(lines, "\n")
}
