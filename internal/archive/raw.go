// The zero-decode read path: queries that return the stored report JSON
// bytes exactly as framed on disk, without rebuilding Record structs.
//
// The archive already stores each report as canonical JSON (the bytes
// the follower marshalled once at ingest), so a serving layer that only
// wants to forward those bytes should never pay decode-then-re-encode
// tax. SelectRaw and GetRaw return RawRecord values whose Report field
// aliases a freshly read buffer (or the shared record cache), and the
// read itself is coalesced: consecutive matching frames of one segment
// are fetched with a single ReadAt through a cached per-segment file
// handle instead of an open/read/close triple per record.
//
// Get and Select remain the decoded API; both are now thin wrappers
// over the raw path, so the two are byte-identical by construction —
// a property the tests still pin on randomized archives rather than
// trusting the construction.
package archive

import (
	"fmt"
	"os"
	"sort"

	"leishen/internal/types"
	"leishen/internal/vfs"
)

// RawRecord is the zero-decode view of one archived report: the frame
// metadata plus the stored report JSON, returned without rebuilding a
// Record. Report may alias the archive's internal record cache — treat
// it as read-only.
type RawRecord struct {
	TxHash types.Hash
	Block  uint64
	Flags  uint8
	// Report is the stored report document, byte-identical to the JSON
	// that was appended (canonical encoding, no re-marshalling).
	Report []byte
}

// decodeRawRecord validates one report frame at the head of b exactly
// like decodeRecord — length cap, CRC32C, structural bounds — but
// returns the report bytes as a subslice of b instead of copying them.
// Only KindReport frames have a raw form; anything else is an error.
func decodeRawRecord(b []byte) (RawRecord, int, error) {
	rec, n, err := decodeRecordAliased(b)
	if err != nil {
		return RawRecord{}, 0, err
	}
	if rec.Kind != KindReport {
		return RawRecord{}, 0, fmt.Errorf("%w: raw decode of non-report kind %d", errBadFrame, rec.Kind)
	}
	return RawRecord{TxHash: rec.TxHash, Block: rec.Block, Flags: rec.Flags, Report: rec.Report}, n, nil
}

// readRunCoalescing bounds the raw read path's frame coalescing: runs
// of matching frames whose gaps (non-matching frames between them, e.g.
// interleaved checkpoints) stay under maxReadGapBytes are fetched with
// one ReadAt, up to maxReadRunBytes per read. A sparse flag-filtered
// match set degrades gracefully to per-frame reads.
const (
	maxReadRunBytes = 1 << 20
	maxReadGapBytes = 4 << 10
)

// GetRaw reads the archived report for a transaction without decoding
// it, through the same record cache Get uses — a hit costs no disk read
// and no copy. The returned Report bytes may alias the cache: read-only.
func (a *Archive) GetRaw(h types.Hash) (RawRecord, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.getRawLocked(h)
}

// getRawLocked is the shared point-lookup core of Get and GetRaw:
// cache, then bloom-guarded index lookup, then a single frame read that
// populates the cache.
func (a *Archive) getRawLocked(h types.Hash) (RawRecord, bool, error) {
	if raw, ok := a.cache.get(h); ok {
		a.met.cacheHits.Inc()
		return raw, true, nil
	}
	i, ok := a.lookupTxLocked(h)
	if !ok {
		return RawRecord{}, false, nil
	}
	a.met.cacheMisses.Inc()
	raw, err := a.readRawFrameLocked(a.frames[i])
	if err != nil {
		return RawRecord{}, false, err
	}
	a.cache.put(h, raw)
	return raw, true, nil
}

// SelectRaw is Select without the decode: matching reports in append
// (block) order as RawRecords, plus the same more-matches pagination
// signal. Pruning (segment fences, binary-searched range starts) and
// cursor semantics are identical to Select — both run on one core.
func (a *Archive) SelectRaw(q Query) ([]RawRecord, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.selectRawLocked(&q)
}

// selectRawLocked gathers the indexes of every matching frame (bounded
// by the query limit), then reads them with run coalescing. Gathering
// first is what lets consecutive matches become one disk read.
func (a *Archive) selectRawLocked(q *Query) ([]RawRecord, bool, error) {
	minIdx := 0
	if !q.After.IsZero() {
		i, ok := a.lookupTxLocked(q.After)
		if !ok {
			return nil, false, fmt.Errorf("archive: unknown pagination cursor %s", q.After)
		}
		minIdx = i + 1
	}
	var matched []int
	var more bool
	if a.opts.NoPrune {
		matched, more = a.gatherLinearLocked(q, minIdx)
	} else {
		matched, more = a.gatherPrunedLocked(q, minIdx)
	}
	if len(matched) == 0 {
		return nil, more, nil
	}
	out, err := a.readRawFramesLocked(matched)
	if err != nil {
		return nil, false, err
	}
	return out, more, nil
}

// gatherPrunedLocked walks the segments fence-first, collecting the
// frame indexes a query matches. The returned bool is the pagination
// more flag: true only when a further match exists past the limit.
func (a *Archive) gatherPrunedLocked(q *Query, minIdx int) ([]int, bool) {
	var matched []int
	for s := range a.segs {
		seg := &a.segs[s]
		end := a.segEndLocked(s)
		if end <= minIdx {
			continue
		}
		if seg.fence.reports > 0 && q.ToBlock != 0 && seg.fence.minBlock > q.ToBlock {
			// Blocks only grow with the segment number: everything from
			// here on is past the range.
			a.met.selectPruned.Add(uint64(len(a.segs) - s))
			break
		}
		if !seg.fence.overlaps(q) {
			a.met.selectPruned.Inc()
			continue
		}
		a.met.selectScanned.Inc()
		// Frames are block-ordered within the segment: binary-search the
		// range start instead of walking to it.
		segFrames := a.frames[seg.firstFrame:end]
		start := seg.firstFrame + sort.Search(len(segFrames), func(i int) bool {
			return segFrames[i].block >= q.FromBlock
		})
		if start < minIdx {
			start = minIdx
		}
		for i := start; i < end; i++ {
			f := &a.frames[i]
			if q.ToBlock != 0 && f.block > q.ToBlock {
				return matched, false
			}
			if f.kind != KindReport || f.flags&q.Flags != q.Flags {
				continue
			}
			if q.Limit > 0 && len(matched) == q.Limit {
				return matched, true
			}
			matched = append(matched, i)
		}
	}
	return matched, false
}

// gatherLinearLocked is the NoPrune reference gather: one binary search
// for the range start, then a linear walk over every frame.
func (a *Archive) gatherLinearLocked(q *Query, minIdx int) ([]int, bool) {
	start := sort.Search(len(a.frames), func(i int) bool {
		return a.frames[i].block >= q.FromBlock
	})
	if start < minIdx {
		start = minIdx
	}
	var matched []int
	for i := start; i < len(a.frames); i++ {
		f := &a.frames[i]
		if q.ToBlock != 0 && f.block > q.ToBlock {
			break
		}
		if f.kind != KindReport || f.flags&q.Flags != q.Flags {
			continue
		}
		if q.Limit > 0 && len(matched) == q.Limit {
			return matched, true
		}
		matched = append(matched, i)
	}
	return matched, false
}

// readRawFramesLocked reads the frames at the given indexes (ascending)
// into RawRecords. Frames still sitting in the pending write buffer are
// copied out individually; disk frames are grouped into runs — same
// segment, bounded gaps, bounded total span — and each run costs one
// ReadAt on the segment's cached read handle.
func (a *Archive) readRawFramesLocked(idxs []int) ([]RawRecord, error) {
	out := make([]RawRecord, 0, len(idxs))
	for i := 0; i < len(idxs); {
		first := a.frames[idxs[i]]
		if a.frameBufferedLocked(first) {
			raw, err := a.readRawFrameLocked(first)
			if err != nil {
				return nil, err
			}
			out = append(out, raw)
			i++
			continue
		}
		j := i + 1
		for j < len(idxs) {
			prev, next := a.frames[idxs[j-1]], a.frames[idxs[j]]
			if next.seg != prev.seg || a.frameBufferedLocked(next) {
				break
			}
			if next.off-(prev.off+prev.size) > maxReadGapBytes {
				break
			}
			if next.off+next.size-first.off > maxReadRunBytes {
				break
			}
			j++
		}
		last := a.frames[idxs[j-1]]
		buf := make([]byte, last.off+last.size-first.off)
		f, err := a.readerLocked(first.seg)
		if err != nil {
			return nil, err
		}
		if _, err := f.ReadAt(buf, first.off); err != nil {
			return nil, fmt.Errorf("archive: read frame run: %w", err)
		}
		a.met.readRuns.Inc()
		a.met.readFrames.Add(uint64(j - i))
		for k := i; k < j; k++ {
			ref := a.frames[idxs[k]]
			raw, _, err := decodeRawRecord(buf[ref.off-first.off : ref.off-first.off+ref.size])
			if err != nil {
				return nil, fmt.Errorf("archive: stored frame invalid: %w", err)
			}
			out = append(out, raw)
		}
		i = j
	}
	return out, nil
}

// readRawFrameLocked reads and raw-decodes one report frame into a
// fresh buffer.
func (a *Archive) readRawFrameLocked(ref frameRef) (RawRecord, error) {
	buf, err := a.frameBytesLocked(ref)
	if err != nil {
		return RawRecord{}, err
	}
	raw, _, err := decodeRawRecord(buf)
	if err != nil {
		return RawRecord{}, fmt.Errorf("archive: stored frame invalid: %w", err)
	}
	return raw, nil
}

// frameBufferedLocked reports whether ref's bytes are still in the
// pending write buffer rather than the segment file. Frames never
// straddle wbase: the buffer starts at a frame boundary and is always
// written out whole.
func (a *Archive) frameBufferedLocked(ref frameRef) bool {
	return ref.seg == len(a.segs)-1 && ref.off >= a.wbase
}

// frameBytesLocked returns one frame's bytes in a fresh buffer — copied
// out of the pending write buffer when not yet flushed, read from disk
// through the segment's cached handle otherwise.
func (a *Archive) frameBytesLocked(ref frameRef) ([]byte, error) {
	if a.frameBufferedLocked(ref) {
		i := ref.off - a.wbase
		return append([]byte(nil), a.wbuf[i:i+ref.size]...), nil
	}
	f, err := a.readerLocked(ref.seg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, ref.size)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("archive: read frame: %w", err)
	}
	a.met.readRuns.Inc()
	a.met.readFrames.Inc()
	return buf, nil
}

// readerLocked returns a cached read-only handle on segment seg's file,
// opening it on first use. Handles are keyed by segment number and
// survive rotation (the file does not change); Close and RollbackAbove
// drop them all.
func (a *Archive) readerLocked(seg int) (vfs.File, error) {
	num := a.segs[seg].number
	if f, ok := a.readers[num]; ok {
		return f, nil
	}
	f, err := a.fs.OpenFile(a.segmentPath(num), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	a.readers[num] = f
	return f, nil
}

// closeReadersLocked closes every cached read handle (in segment order,
// for deterministic error attribution) and returns the first failure.
func (a *Archive) closeReadersLocked() error {
	nums := make([]int, 0, len(a.readers))
	for num := range a.readers {
		nums = append(nums, num)
	}
	sort.Ints(nums)
	var first error
	for _, num := range nums {
		if err := a.readers[num].Close(); err != nil && first == nil {
			first = fmt.Errorf("archive: close reader: %w", err)
		}
		delete(a.readers, num)
	}
	return first
}
