// A small read-through cache in front of Get's disk reads. Segments are
// immutable once written (rollback is the one exception, and it clears
// the cache wholesale), so a plain LRU over decoded records is safe:
// there is no invalidation protocol beyond "rollback empties it".
package archive

import (
	"container/list"

	"leishen/internal/types"
)

// DefaultCacheRecords bounds the Get read-through record cache when
// Options.CacheRecords is zero.
const DefaultCacheRecords = 1024

// recordCache is a bounded LRU of decoded records keyed by tx hash.
// All methods assume the archive mutex is held.
type recordCache struct {
	cap   int
	order *list.List // front = most recently used
	items map[types.Hash]*list.Element
}

type cacheSlot struct {
	key types.Hash
	rec Record
}

func newRecordCache(cap int) recordCache {
	if cap <= 0 {
		return recordCache{}
	}
	return recordCache{cap: cap, order: list.New(), items: make(map[types.Hash]*list.Element, cap)}
}

func (c *recordCache) get(h types.Hash) (Record, bool) {
	if c.items == nil {
		return Record{}, false
	}
	el, ok := c.items[h]
	if !ok {
		return Record{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot).rec, true
}

// put stores rec, which the cache takes ownership of — callers hand in
// a freshly decoded record and serve clones outward.
func (c *recordCache) put(h types.Hash, rec Record) {
	if c.items == nil {
		return
	}
	if el, ok := c.items[h]; ok {
		el.Value.(*cacheSlot).rec = rec
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheSlot).key)
	}
	c.items[h] = c.order.PushFront(&cacheSlot{key: h, rec: rec})
}

// clear drops every entry — the rollback invalidation.
func (c *recordCache) clear() {
	if c.items == nil {
		return
	}
	c.order.Init()
	clear(c.items)
}

func (c *recordCache) len() int {
	if c.order == nil {
		return 0
	}
	return c.order.Len()
}
