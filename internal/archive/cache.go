// A small read-through cache in front of the point-lookup disk reads.
// Segments are immutable once written (rollback is the one exception,
// and it clears the cache wholesale), so a plain LRU is safe: there is
// no invalidation protocol beyond "rollback empties it".
//
// The cache stores RAW report frames (RawRecord: metadata + stored JSON
// bytes), not decoded Records, so the decoded path (Get) and the
// zero-decode path (GetRaw) share one cache: a record warmed by either
// is a hit for both. Get clones the bytes on the way out; GetRaw serves
// the cached slice directly under a read-only contract.
package archive

import (
	"container/list"

	"leishen/internal/types"
)

// DefaultCacheRecords bounds the read-through record cache when
// Options.CacheRecords is zero.
const DefaultCacheRecords = 1024

// recordCache is a bounded LRU of raw report frames keyed by tx hash.
// All methods assume the archive mutex is held.
type recordCache struct {
	cap   int
	order *list.List // front = most recently used
	items map[types.Hash]*list.Element
}

type cacheSlot struct {
	key types.Hash
	raw RawRecord
}

func newRecordCache(cap int) recordCache {
	if cap <= 0 {
		return recordCache{}
	}
	return recordCache{cap: cap, order: list.New(), items: make(map[types.Hash]*list.Element, cap)}
}

func (c *recordCache) get(h types.Hash) (RawRecord, bool) {
	if c.items == nil {
		return RawRecord{}, false
	}
	el, ok := c.items[h]
	if !ok {
		return RawRecord{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot).raw, true
}

// put stores raw, which the cache takes ownership of — callers hand in
// a freshly read frame and must never mutate its bytes afterwards.
func (c *recordCache) put(h types.Hash, raw RawRecord) {
	if c.items == nil {
		return
	}
	if el, ok := c.items[h]; ok {
		el.Value.(*cacheSlot).raw = raw
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheSlot).key)
	}
	c.items[h] = c.order.PushFront(&cacheSlot{key: h, raw: raw})
}

// clear drops every entry — the rollback invalidation.
func (c *recordCache) clear() {
	if c.items == nil {
		return
	}
	c.order.Init()
	clear(c.items)
}

func (c *recordCache) len() int {
	if c.order == nil {
		return 0
	}
	return c.order.Len()
}
