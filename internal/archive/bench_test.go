package archive

import (
	"testing"

	"leishen/internal/types"
)

// benchArchive appends n sample records (no checkpoints — the read
// benches don't care) into a fresh archive and returns it still open.
func benchArchive(b *testing.B, n int, opts Options) *Archive {
	b.Helper()
	a, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := a.AppendReport(sampleRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := a.Sync(); err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAppend measures the unsynced append path (framing + write);
// cmd/benchjson records the fsync-per-block figure end to end.
func BenchmarkAppend(b *testing.B) {
	a, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	rec := sampleRecord(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Block = uint64(i + 1)
		if err := a.AppendReport(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetHit measures Get served from the read-through record
// cache: one clone, no disk.
func BenchmarkGetHit(b *testing.B) {
	a := benchArchive(b, 4096, Options{SegmentBytes: 1 << 20})
	defer a.Close()
	hashes := make([]types.Hash, 256)
	for i := range hashes {
		hashes[i] = sampleRecord(i).TxHash
	}
	// Warm the cache so every timed Get hits.
	for _, h := range hashes {
		if _, ok, err := a.Get(h); !ok || err != nil {
			b.Fatalf("warm get: ok=%v err=%v", ok, err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := a.Get(hashes[i%len(hashes)]); !ok || err != nil {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkGetMiss measures the uncached path — bloom probe, binary
// search, disk read, CRC verify, decode — by disabling the cache.
func BenchmarkGetMiss(b *testing.B) {
	a := benchArchive(b, 4096, Options{SegmentBytes: 1 << 20, CacheRecords: -1})
	defer a.Close()
	hashes := make([]types.Hash, 256)
	for i := range hashes {
		hashes[i] = sampleRecord(i).TxHash
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := a.Get(hashes[i%len(hashes)]); !ok || err != nil {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}

// reopenDir builds a closed archive directory for the reopen benches.
func reopenDir(b *testing.B, n int) string {
	b.Helper()
	dir := b.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := a.AppendReport(sampleRecord(i)); err != nil {
			b.Fatal(err)
		}
		if (i+1)%512 == 0 {
			if err := a.AppendCheckpoint(sampleCheckpoint(sampleRecord(i).Block)); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := a.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkReopenIndexed measures Open when every segment loads from
// its sidecar — the clean-restart path.
func BenchmarkReopenIndexed(b *testing.B) {
	dir := reopenDir(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if a.Count() != 100_000 {
			b.Fatal("bad count")
		}
		b.StopTimer()
		a.Close()
		b.StartTimer()
	}
}

// BenchmarkReopenReplay measures the same open forced down the full
// replay path — the pre-sidecar baseline and the crash fallback.
func BenchmarkReopenReplay(b *testing.B) {
	dir := reopenDir(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := Open(dir, Options{NoSidecars: true})
		if err != nil {
			b.Fatal(err)
		}
		if a.Count() != 100_000 {
			b.Fatal("bad count")
		}
		b.StopTimer()
		a.Close()
		b.StartTimer()
	}
}
