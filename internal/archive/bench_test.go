package archive

import (
	"testing"
)

// BenchmarkAppend measures the unsynced append path (framing + write);
// cmd/benchjson records the fsync-per-block figure end to end.
func BenchmarkAppend(b *testing.B) {
	a, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	rec := sampleRecord(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Block = uint64(i + 1)
		if err := a.AppendReport(rec); err != nil {
			b.Fatal(err)
		}
	}
}
