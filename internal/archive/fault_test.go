// Fault-injection tests: the archive on a FaultFS-wrapped MemFS. These
// pin two robustness contracts:
//
//   - handle hygiene: every vfs.File the archive opens is closed
//     exactly once, across rotation, cached readers, rollback and Close;
//   - transient-fault retryability: injected torn writes, short writes,
//     ENOSPC and fsync failures leave the archive in a state where
//     retrying the failed operation converges to the exact bytes an
//     unfaulted run produces.
package archive

import (
	"bytes"
	"strings"
	"testing"

	"leishen/internal/vfs"
)

// runWorkload appends n sample records with a checkpoint per block,
// calling retry around every fallible operation. Checkpoints go through
// the deferred-append + Sync protocol the follower uses: unlike the
// combined AppendCheckpoint, each step is idempotent under retry (a
// failed append leaves nothing buffered, a failed sync promotes
// nothing). retry is the test's policy knob: the unfaulted baseline
// passes a run-once.
func runWorkload(t *testing.T, a *Archive, n int, retry func(op func() error) error) {
	t.Helper()
	lastBlock := uint64(0)
	for i := 0; i < n; i++ {
		rec := sampleRecord(i)
		if rec.Block != lastBlock && lastBlock != 0 {
			cp := sampleCheckpoint(lastBlock)
			if err := retry(func() error { return a.AppendCheckpointDeferred(cp) }); err != nil {
				t.Fatalf("checkpoint %d: %v", lastBlock, err)
			}
			if err := retry(a.Sync); err != nil {
				t.Fatalf("sync at block %d: %v", lastBlock, err)
			}
		}
		lastBlock = rec.Block
		if err := retry(func() error { return a.AppendReport(rec) }); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := retry(a.Sync); err != nil {
		t.Fatalf("final sync: %v", err)
	}
}

func runOnce(op func() error) error { return op() }

// retryTransient retries op while its error classifies as transient,
// bounded so a mis-classified fatal error fails the test instead of
// spinning.
func retryTransient(t *testing.T) func(op func() error) error {
	return func(op func() error) error {
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			if err = op(); err == nil {
				return nil
			}
			if !vfs.IsTransient(err) {
				t.Fatalf("non-transient error under injected faults: %v", err)
			}
		}
		return err
	}
}

// archiveFiles extracts the archive's on-disk image (segment logs and
// sidecars) from a snapshot view.
func archiveFiles(view map[string][]byte) map[string][]byte {
	out := make(map[string][]byte)
	for name, data := range view {
		if strings.HasSuffix(name, segSuffix) || strings.HasSuffix(name, sidecarSuffix) {
			out[name] = data
		}
	}
	return out
}

// buildBaseline runs the workload with no faults and returns the final
// on-disk image after Close.
func buildBaseline(t *testing.T, n int, opts Options) map[string][]byte {
	t.Helper()
	mem := vfs.NewMemFS()
	a, err := OpenFS(mem, "arc", opts)
	if err != nil {
		t.Fatalf("baseline open: %v", err)
	}
	runWorkload(t, a, n, runOnce)
	if err := a.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	return archiveFiles(mem.Snapshot().Durable)
}

func requireSameImage(t *testing.T, want, got map[string][]byte, ctx string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: file set differs: want %d files, got %d", ctx, len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: missing %s", ctx, name)
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("%s: %s differs: want %d bytes, got %d", ctx, name, len(w), len(g))
		}
	}
}

// TestArchiveHandleBalance drives open/append/rotate/read/rollback/
// close on a handle-tracking FaultFS and requires every opened file to
// be closed exactly once.
func TestArchiveHandleBalance(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
	opts := Options{SegmentBytes: 256} // force many rotations
	a, err := OpenFS(ffs, "arc", opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	runWorkload(t, a, 40, runOnce)
	if a.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", a.Segments())
	}

	// Open cached read handles on several sealed segments.
	if _, _, err := a.Select(Query{Limit: 0}); err != nil {
		t.Fatalf("select: %v", err)
	}
	for i := 0; i < 40; i += 7 {
		if _, ok, err := a.Get(sampleRecord(i).TxHash); err != nil || !ok {
			t.Fatalf("get %d: %v %v", i, ok, err)
		}
	}

	// Rollback drops segments (and must drop their cached readers).
	if _, err := a.RollbackAbove(5); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if _, _, err := a.Select(Query{Limit: 0}); err != nil {
		t.Fatalf("select after rollback: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen/close once more: sidecar-assisted load must balance too.
	a2, err := OpenFS(ffs, "arc", opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := a2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}

	st := ffs.Stats()
	if open, names := ffs.OpenHandles(); open != 0 {
		t.Fatalf("leaked handles: %v (stats %+v)", names, st)
	}
	if st.DoubleCloses != 0 {
		t.Fatalf("double closes: %+v", st)
	}
	if st.Opens != st.Closes {
		t.Fatalf("opens %d != closes %d", st.Opens, st.Closes)
	}
}

// TestArchiveRetryTornWrites injects torn and short writes (including
// across rotations and sidecar writes) and checks that retrying each
// failed operation converges to the unfaulted run's exact bytes.
func TestArchiveRetryTornWrites(t *testing.T) {
	opts := Options{SegmentBytes: 512}
	want := buildBaseline(t, 60, opts)

	ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
	a, err := OpenFS(ffs, "arc", opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Write faults only: sync faults during rotation would kill the
	// archive after the old segment is closed, which is the documented
	// fatal path — exercised by the follower tests, not retried here.
	ffs.SetPlan(vfs.FaultPlan{WriteErrEvery: 5, ShortWriteEvery: 7})
	runWorkload(t, a, 60, retryTransient(t))
	ffs.Disarm()
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st := ffs.Stats()
	if st.InjectedWriteErrs == 0 || st.InjectedShortWrites == 0 {
		t.Fatalf("faults never fired: %+v", st)
	}

	got := archiveFiles(snapshotOf(ffs).Durable)
	requireSameImage(t, want, got, "torn-write retry")
}

// TestArchiveRetryENOSPC drains a byte budget mid-run; every ENOSPC is
// answered by freeing space and retrying, and the final image matches
// the unfaulted run.
func TestArchiveRetryENOSPC(t *testing.T) {
	opts := Options{SegmentBytes: 512}
	want := buildBaseline(t, 60, opts)

	ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
	a, err := OpenFS(ffs, "arc", opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ffs.SetPlan(vfs.FaultPlan{WriteBudget: 700})
	retry := func(op func() error) error {
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			if err = op(); err == nil {
				return nil
			}
			if !vfs.IsTransient(err) {
				t.Fatalf("non-transient error under ENOSPC: %v", err)
			}
			ffs.AddWriteBudget(700) // operator frees space
		}
		return err
	}
	runWorkload(t, a, 60, retry)
	ffs.Disarm()
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if st := ffs.Stats(); st.InjectedENOSPC == 0 {
		t.Fatalf("ENOSPC never fired: %+v", st)
	}
	requireSameImage(t, want, archiveFiles(snapshotOf(ffs).Durable), "enospc retry")
}

// TestArchiveSyncFaultDefersCheckpoint: a failed fsync must leave
// deferred checkpoints unpromoted — the group-commit contract the
// follower's acknowledgement tracking depends on — and a retried Sync
// promotes them.
func TestArchiveSyncFaultDefersCheckpoint(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
	a, err := OpenFS(ffs, "arc", Options{}) // large segments: no rotation
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := a.AppendReport(sampleRecord(0)); err != nil {
		t.Fatalf("append: %v", err)
	}
	cp := sampleCheckpoint(1)
	if err := a.AppendCheckpointDeferred(cp); err != nil {
		t.Fatalf("deferred checkpoint: %v", err)
	}
	ffs.SetPlan(vfs.FaultPlan{SyncErrEvery: 1})
	err = a.Sync()
	if err == nil || !vfs.IsTransient(err) {
		t.Fatalf("faulted sync = %v, want transient", err)
	}
	if got, ok := a.Checkpoint(); ok {
		t.Fatalf("checkpoint %v promoted by a FAILED sync", got)
	}
	ffs.Disarm()
	if err := a.Sync(); err != nil {
		t.Fatalf("retried sync: %v", err)
	}
	got, ok := a.Checkpoint()
	if !ok || got != cp {
		t.Fatalf("checkpoint after retried sync = %v %v, want %v", got, ok, cp)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// snapshotOf reaches through a FaultFS to its MemFS snapshot.
func snapshotOf(ffs *vfs.FaultFS) vfs.Snapshot {
	return ffs.Inner().(*vfs.MemFS).Snapshot()
}
