// Package torture is the archive's crash-consistency harness. It runs
// a deterministic append workload on an in-memory filesystem that
// models durability (vfs.MemFS behind a vfs.FaultFS), captures a
// snapshot of both durability views after EVERY mutating filesystem
// operation — each such point is one simulated crash — and then, for
// each crash point, materializes several plausible post-crash disks and
// checks the archive's recovery invariants on each:
//
//  1. reopen succeeds — a crash never produces an unopenable archive;
//  2. the recovered log is a byte prefix of the uninterrupted run's
//     final log (concatenating segments in order), so recovery never
//     invents or reorders bytes;
//  3. the recovered checkpoint is at least the newest checkpoint whose
//     Sync had returned before the crash — an acknowledged group
//     commit is never lost;
//  4. resuming from the recovered checkpoint (RollbackAbove + replay
//     of every operation above it) converges to an archive
//     byte-identical to the uninterrupted run's;
//  5. recovery and resume leak no file handles and close nothing
//     twice.
//
// Three disks are derived per crash point: the durable view only (a
// conservative power cut), the full volatile view (every cached page
// made it out), and a torn view (each file keeps its durable prefix
// plus half of its unsynced tail — torn frames and torn sidecars that
// validation must reject).
package torture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"leishen/internal/archive"
	"leishen/internal/types"
	"leishen/internal/vfs"
)

// Config selects one torture schedule.
type Config struct {
	// Schedule is the workload name; see Schedules.
	Schedule string
	// Blocks is how many blocks the workload appends (two reports per
	// block, one checkpoint per block).
	Blocks int
	// SegmentBytes is the archive rotation threshold.
	SegmentBytes int64
	// SyncEveryBlocks is the group-commit cadence: checkpoints are
	// appended deferred and promoted by a Sync every N blocks.
	SyncEveryBlocks int
	// NoSidecars disables sidecar writing, forcing replay recovery.
	NoSidecars bool
}

// Schedules returns the standard schedule set: every archive write
// path — plain appends, rotation, sidecar install, group-committed
// checkpoints — gets its crash points enumerated.
func Schedules() []Config {
	return []Config{
		// Plain appends into one segment; crashes land between record
		// writes and fsyncs.
		{Schedule: "append", Blocks: 16, SegmentBytes: 1 << 20, SyncEveryBlocks: 1},
		// Tiny segments: crashes land inside the rotate sequence (seal,
		// sidecar write, rename, create, dir sync).
		{Schedule: "rotate", Blocks: 16, SegmentBytes: 512, SyncEveryBlocks: 1},
		// Rotation without sidecars: recovery is always full replay.
		{Schedule: "replay", Blocks: 16, SegmentBytes: 512, SyncEveryBlocks: 1, NoSidecars: true},
		// Deferred checkpoints promoted every other block: crashes land
		// with acknowledged and unacknowledged checkpoints in flight.
		{Schedule: "checkpoint", Blocks: 16, SegmentBytes: 768, SyncEveryBlocks: 2},
	}
}

// Violation is one invariant breach at one crash point.
type Violation struct {
	Schedule   string `json:"schedule"`
	CrashPoint int    `json:"crash_point"`
	Op         string `json:"op"`
	Variant    string `json:"variant"`
	Detail     string `json:"detail"`
}

// Result summarizes one schedule's run.
type Result struct {
	Schedule    string      `json:"schedule"`
	CrashPoints int         `json:"crash_points"`
	Variants    int         `json:"variants"`
	Recoveries  int         `json:"recoveries"`
	Violations  []Violation `json:"violations,omitempty"`
}

const arcDir = "arc"

// op is one step of the logical workload, replayable against any
// archive.
type op struct {
	rec  *archive.Record    // report append, or
	cp   archive.Checkpoint // deferred checkpoint append, or
	sync bool               // group-commit Sync
}

// block returns the op's block height; syncs have none.
func (o op) block() (uint64, bool) {
	switch {
	case o.rec != nil:
		return o.rec.Block, true
	case o.cp.Block != 0:
		return o.cp.Block, true
	}
	return 0, false
}

// buildOps expands cfg into the deterministic op list: per block, two
// reports and a deferred checkpoint; a Sync every SyncEveryBlocks; a
// final Sync so the uninterrupted run ends clean.
func buildOps(cfg Config) []op {
	var ops []op
	for b := 1; b <= cfg.Blocks; b++ {
		block := uint64(b)
		for r := 0; r < 2; r++ {
			ops = append(ops, op{rec: sampleRecord(block, r)})
		}
		ops = append(ops, op{cp: sampleCheckpoint(block)})
		if cfg.SyncEveryBlocks <= 1 || b%cfg.SyncEveryBlocks == 0 {
			ops = append(ops, op{sync: true})
		}
	}
	ops = append(ops, op{sync: true})
	return ops
}

// sampleRecord builds the r-th report of a block, deterministically.
func sampleRecord(block uint64, r int) *archive.Record {
	var seed [9]byte
	binary.BigEndian.PutUint64(seed[:8], block)
	seed[8] = byte(r)
	flags := archive.FlagFlashLoan
	if r == 0 {
		flags |= archive.FlagAttack
	}
	return &archive.Record{
		Kind:   archive.KindReport,
		TxHash: types.HashFromData([]byte("torture-tx"), seed[:]),
		Block:  block,
		Flags:  flags,
		Report: []byte(fmt.Sprintf(`{"txHash":"0x%016x%02x","isAttack":%v}`, block, r, r == 0)),
	}
}

func sampleCheckpoint(block uint64) archive.Checkpoint {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], block)
	return archive.Checkpoint{Block: block, Digest: types.HashFromData([]byte("torture-blk"), seed[:])}
}

// apply replays one op against an archive, skipping record and
// checkpoint appends at or below the resume floor.
func apply(a *archive.Archive, o op, above uint64) error {
	if b, ok := o.block(); ok && b <= above {
		return nil
	}
	switch {
	case o.rec != nil:
		return a.AppendReport(o.rec)
	case o.cp.Block != 0:
		return a.AppendCheckpointDeferred(o.cp)
	default:
		return a.Sync()
	}
}

// crashPoint is one captured crash: the filesystem as it stood right
// after a mutating operation, plus the newest checkpoint whose Sync had
// returned by then.
type crashPoint struct {
	op    string
	snap  vfs.Snapshot
	acked uint64
}

// Run executes one schedule: the full instrumented run, then recovery
// checking at every captured crash point.
func Run(cfg Config) (Result, error) {
	opts := archive.Options{SegmentBytes: cfg.SegmentBytes, NoSidecars: cfg.NoSidecars}
	ops := buildOps(cfg)

	// Phase 1: the uninterrupted run, snapshotting at every mutating op.
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, vfs.FaultPlan{})
	var points []crashPoint
	var acked uint64 // read by OnOp on the same goroutine as the workload
	ffs.OnOp(func(opName string) {
		points = append(points, crashPoint{op: opName, snap: mem.Snapshot(), acked: acked})
	})
	full, err := archive.OpenFS(ffs, arcDir, opts)
	if err != nil {
		return Result{}, fmt.Errorf("torture: open: %w", err)
	}
	var pendingCP uint64
	for _, o := range ops {
		if err := apply(full, o, 0); err != nil {
			return Result{}, fmt.Errorf("torture: workload: %w", err)
		}
		switch {
		case o.cp.Block != 0:
			pendingCP = o.cp.Block
		case o.sync:
			acked = pendingCP // the Sync returned: the group commit is acknowledged
		}
	}
	if err := full.Close(); err != nil {
		return Result{}, fmt.Errorf("torture: close: %w", err)
	}
	if n, names := ffs.OpenHandles(); n != 0 {
		return Result{}, fmt.Errorf("torture: full run leaked handles: %v", names)
	}
	final := mem.Snapshot()
	refImage := archiveImage(final.Volatile)
	refLog := concatLog(refImage)

	// Phase 2: recover at every crash point, three disks per point.
	res := Result{Schedule: cfg.Schedule, CrashPoints: len(points), Variants: 3}
	for i, pt := range points {
		for _, v := range []struct {
			name  string
			files map[string][]byte
		}{
			{"durable", pt.snap.Durable},
			{"volatile", pt.snap.Volatile},
			{"torn", tornView(pt.snap)},
		} {
			res.Recoveries++
			if d := checkRecovery(cfg, opts, ops, pt, v.files, refImage, refLog); d != "" {
				res.Violations = append(res.Violations, Violation{
					Schedule: cfg.Schedule, CrashPoint: i, Op: pt.op, Variant: v.name, Detail: d,
				})
			}
		}
	}
	return res, nil
}

// RunAll runs every standard schedule.
func RunAll() ([]Result, error) {
	var out []Result
	for _, cfg := range Schedules() {
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// checkRecovery opens one post-crash disk and checks every invariant,
// returning a description of the first breach ("" if none).
func checkRecovery(cfg Config, opts archive.Options, ops []op, pt crashPoint, files map[string][]byte, refImage map[string][]byte, refLog []byte) string {
	disk := vfs.NewMemFSFromFiles(pt.snap.Dirs, files)
	ffs := vfs.NewFaultFS(disk, vfs.FaultPlan{})
	a, err := archive.OpenFS(ffs, arcDir, opts)
	if err != nil {
		return fmt.Sprintf("reopen failed: %v", err)
	}

	// Invariant 2: the recovered log is a prefix of the full run's.
	recovered := concatLog(archiveImage(snapshotVolatile(disk)))
	if !bytes.HasPrefix(refLog, recovered) {
		closeQuiet(a)
		return fmt.Sprintf("recovered log (%d bytes) is not a prefix of the reference log (%d bytes)", len(recovered), len(refLog))
	}

	// Invariant 3: an acknowledged checkpoint survives.
	cp, ok := a.Checkpoint()
	if pt.acked > 0 && (!ok || cp.Block < pt.acked) {
		closeQuiet(a)
		return fmt.Sprintf("recovered checkpoint %d < acknowledged %d", cp.Block, pt.acked)
	}

	// Invariant 4: resume from the recovered checkpoint converges to
	// the reference archive, byte for byte.
	if _, err := a.RollbackAbove(cp.Block); err != nil {
		closeQuiet(a)
		return fmt.Sprintf("rollback above %d failed: %v", cp.Block, err)
	}
	for _, o := range ops {
		if err := apply(a, o, cp.Block); err != nil {
			closeQuiet(a)
			return fmt.Sprintf("resume replay failed: %v", err)
		}
	}
	if err := a.Close(); err != nil {
		return fmt.Sprintf("close after resume failed: %v", err)
	}

	// Invariant 5: recovery and resume leaked nothing.
	st := ffs.Stats()
	if n, names := ffs.OpenHandles(); n != 0 {
		return fmt.Sprintf("leaked %d handles: %s", n, strings.Join(names, ", "))
	}
	if st.DoubleCloses != 0 {
		return fmt.Sprintf("%d double closes", st.DoubleCloses)
	}

	got := archiveImage(snapshotVolatile(disk))
	return diffImages(refImage, got)
}

// tornView builds the torn-tail disk: every file keeps its durable
// prefix plus half of the bytes written since its last sync. Files
// never synced keep half their content; sidecars rewritten in place
// keep their old durable image's length worth of new bytes plus half
// the rest, which in practice yields exactly the kind of mixed-content
// file fsync-less crashes produce.
func tornView(s vfs.Snapshot) map[string][]byte {
	out := make(map[string][]byte, len(s.Volatile))
	for name, vol := range s.Volatile {
		dur := s.Durable[name]
		keep := len(dur)
		if keep > len(vol) {
			keep = len(vol) // durable longer than volatile: a truncate since the sync
		}
		tail := vol[keep:]
		out[name] = append(append([]byte(nil), vol[:keep]...), tail[:len(tail)/2]...)
	}
	return out
}

// archiveImage filters a snapshot view down to the archive's meaningful
// files — segment logs and sidecars. Leftover atomic-install temp files
// are junk a real recovery ignores, so the harness does too.
func archiveImage(view map[string][]byte) map[string][]byte {
	out := make(map[string][]byte)
	for name, data := range view {
		if strings.HasSuffix(name, ".log") || strings.HasSuffix(name, ".idx") {
			out[name] = data
		}
	}
	return out
}

// concatLog concatenates the segment logs in segment order (the names
// are zero-padded, so lexical order is numeric order).
func concatLog(image map[string][]byte) []byte {
	var names []string
	for name := range image {
		if strings.HasSuffix(name, ".log") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []byte
	for _, name := range names {
		out = append(out, image[name]...)
	}
	return out
}

// diffImages compares two archive images, returning "" when identical.
// Names are walked in sorted order so the first reported difference is
// deterministic.
func diffImages(want, got map[string][]byte) string {
	for _, name := range sortedNames(want) {
		g, ok := got[name]
		if !ok {
			return fmt.Sprintf("resumed archive is missing %s", name)
		}
		if !bytes.Equal(want[name], g) {
			return fmt.Sprintf("resumed %s differs: want %d bytes, got %d", name, len(want[name]), len(g))
		}
	}
	for _, name := range sortedNames(got) {
		if _, ok := want[name]; !ok {
			return fmt.Sprintf("resumed archive has extra file %s", name)
		}
	}
	return ""
}

func sortedNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func snapshotVolatile(m *vfs.MemFS) map[string][]byte { return m.Snapshot().Volatile }

func closeQuiet(a *archive.Archive) {
	//lint:allow errflow recovery-path cleanup; the violation is already being reported
	_ = a.Close()
}
