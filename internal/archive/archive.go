// Package archive is the durable verdict store underneath the detection
// pipeline: an embedded, append-only, crash-safe log of detection
// reports plus the follower's progress checkpoints.
//
// On disk the archive is a directory of numbered segment files
// (seg-00000001.log, seg-00000002.log, ...), each a concatenation of
// CRC32C-framed records (see record.go). Appends go to the highest
// numbered segment and rotate to a fresh one past a size threshold, so
// no file grows without bound and reorg rollback can drop whole
// segments. Durability is explicit: Append buffers nothing but only
// Sync guarantees the bytes — callers batch appends and sync once per
// block, the classic write-ahead-log cadence.
//
// Open rebuilds the entire in-memory index (tx hash → frame, block →
// frame range) by re-scanning the segments, and performs torn-tail
// recovery: a partial final record — the signature of a kill -9 mid
// append — is truncated away, after which every fully synced record is
// recovered byte for byte. Corruption anywhere other than the tail of
// the final segment is damage fsync promised could not happen, and
// Open reports it as an error instead of silently dropping data.
package archive

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"leishen/internal/types"
)

// DefaultSegmentBytes is the rotation threshold: an active segment at or
// past this size is sealed and a fresh one started.
const DefaultSegmentBytes = 8 << 20

// segPrefix and segSuffix shape the segment file names.
const (
	segPrefix = "seg-"
	segSuffix = ".log"
)

// Options configures an archive.
type Options struct {
	// SegmentBytes is the rotation threshold; <= 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Checkpoint is the follower's durable progress mark: every block up to
// and including Block is fully archived, and Digest identifies that
// block so a restart can detect a reorg beneath the checkpoint.
type Checkpoint struct {
	Block  uint64     `json:"block"`
	Digest types.Hash `json:"digest"`
}

// frameRef locates one record inside the segment files.
type frameRef struct {
	kind   Kind
	block  uint64
	flags  uint8
	txHash types.Hash
	digest types.Hash // checkpoints only
	seg    int        // index into Archive.segs
	off    int64      // frame start within the segment
	size   int64      // framed size (header + payload)
}

// segment is one on-disk log file.
type segment struct {
	number int   // from the file name, ascending
	size   int64 // valid bytes (after any torn-tail truncation)
}

// Archive is the store. All methods are safe for concurrent use.
type Archive struct {
	mu   sync.Mutex
	dir  string
	opts Options

	segs   []segment
	active *os.File // open handle on the last segment

	frames  []frameRef
	txIndex map[types.Hash]int // tx hash -> frames index
	reports int
	lastCP  int // frames index of the latest checkpoint, -1 if none

	buf []byte // encode scratch
}

// Open opens (creating if necessary) the archive in dir, re-scanning
// every segment to rebuild the index and truncating a torn final record.
func Open(dir string, opts Options) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	a := &Archive{
		dir:     dir,
		opts:    opts,
		txIndex: make(map[types.Hash]int),
		lastCP:  -1,
	}
	numbers, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(numbers) == 0 {
		numbers = []int{1}
		if err := a.createSegment(1); err != nil {
			return nil, err
		}
	}
	for i, n := range numbers {
		if err := a.loadSegment(i, n, i == len(numbers)-1); err != nil {
			return nil, err
		}
	}
	last := a.segs[len(a.segs)-1]
	f, err := os.OpenFile(a.segmentPath(last.number), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if _, err := f.Seek(last.size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: %w", err)
	}
	a.active = f
	return a, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var numbers []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("archive: alien segment file %q", name)
		}
		numbers = append(numbers, n)
	}
	sort.Ints(numbers)
	return numbers, nil
}

func (a *Archive) segmentPath(number int) string {
	return filepath.Join(a.dir, fmt.Sprintf("%s%08d%s", segPrefix, number, segSuffix))
}

// createSegment makes an empty segment file and syncs the directory so
// the file name itself survives a crash.
func (a *Archive) createSegment(number int) error {
	f, err := os.OpenFile(a.segmentPath(number), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return syncDir(a.dir)
}

// loadSegment scans one segment into the index. Only the final segment
// may carry a torn tail; there the partial record is truncated away.
func (a *Archive) loadSegment(idx, number int, final bool) error {
	path := a.segmentPath(number)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	valid, scanErr := a.indexRecords(idx, data)
	if scanErr != nil {
		if !final {
			return fmt.Errorf("archive: segment %s corrupt at offset %d (not the active tail): %w", path, valid, scanErr)
		}
		if err := truncateFile(path, valid); err != nil {
			return err
		}
	}
	a.segs = append(a.segs, segment{number: number, size: valid})
	return nil
}

// indexRecords walks the framed records in data, indexing each, and
// returns the number of bytes consumed by whole valid records. A
// trailing invalid frame is reported as an error wrapping errBadFrame.
func (a *Archive) indexRecords(seg int, data []byte) (int64, error) {
	var off int64
	for int(off) < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return off, err
		}
		a.indexFrame(rec, frameRef{seg: seg, off: off, size: int64(n)})
		off += int64(n)
	}
	return off, nil
}

// indexFrame appends one decoded record to the in-memory index.
func (a *Archive) indexFrame(rec Record, ref frameRef) {
	ref.kind = rec.Kind
	ref.block = rec.Block
	ref.flags = rec.Flags
	ref.txHash = rec.TxHash
	ref.digest = rec.Digest
	a.frames = append(a.frames, ref)
	switch rec.Kind {
	case KindReport:
		a.txIndex[rec.TxHash] = len(a.frames) - 1
		a.reports++
	case KindCheckpoint:
		a.lastCP = len(a.frames) - 1
	}
}

// truncateFile cuts a file to size and syncs it, making the recovery
// itself durable.
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("archive: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("archive: sync truncated segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, pinning renames/creates/removes.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("archive: sync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// AppendReport appends one detection report record. Blocks must be
// appended in non-decreasing order — the invariant range queries,
// checkpointing and reorg rollback all lean on. The bytes are durable
// only after the next Sync.
func (a *Archive) AppendReport(rec *Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rec.Kind != KindReport {
		return fmt.Errorf("archive: AppendReport got kind %d", rec.Kind)
	}
	if last, ok := a.lastBlockLocked(); ok && rec.Block < last {
		return fmt.Errorf("archive: block %d after block %d breaks append order", rec.Block, last)
	}
	return a.appendLocked(rec)
}

// AppendCheckpoint appends a progress checkpoint and syncs, making every
// record appended so far durable — the one fsync per block.
func (a *Archive) AppendCheckpoint(cp Checkpoint) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if last, ok := a.lastBlockLocked(); ok && cp.Block < last {
		return fmt.Errorf("archive: checkpoint %d after block %d breaks append order", cp.Block, last)
	}
	if err := a.appendLocked(&Record{Kind: KindCheckpoint, Block: cp.Block, Digest: cp.Digest}); err != nil {
		return err
	}
	return a.active.Sync()
}

// lastBlockLocked returns the block of the newest frame.
func (a *Archive) lastBlockLocked() (uint64, bool) {
	if len(a.frames) == 0 {
		return 0, false
	}
	return a.frames[len(a.frames)-1].block, true
}

// appendLocked encodes, rotates if due, writes and indexes one record.
func (a *Archive) appendLocked(rec *Record) error {
	if a.active == nil {
		return errors.New("archive: closed")
	}
	buf, err := appendRecord(a.buf[:0], rec)
	if err != nil {
		return err
	}
	a.buf = buf
	seg := &a.segs[len(a.segs)-1]
	if seg.size > 0 && seg.size+int64(len(buf)) > a.opts.segmentBytes() {
		if err := a.rotateLocked(); err != nil {
			return err
		}
		seg = &a.segs[len(a.segs)-1]
	}
	n, err := a.active.Write(buf)
	if err != nil {
		// A partial frame on disk is exactly what reopen recovery handles,
		// but try to take it back now so the live handle stays consistent.
		if n > 0 {
			_ = a.active.Truncate(seg.size)
			_, _ = a.active.Seek(seg.size, 0)
		}
		return fmt.Errorf("archive: append: %w", err)
	}
	off := seg.size
	seg.size += int64(len(buf))
	a.indexFrame(*rec, frameRef{seg: len(a.segs) - 1, off: off, size: int64(len(buf))})
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (a *Archive) rotateLocked() error {
	if err := a.active.Sync(); err != nil {
		return fmt.Errorf("archive: sync before rotate: %w", err)
	}
	if err := a.active.Close(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	next := a.segs[len(a.segs)-1].number + 1
	if err := a.createSegment(next); err != nil {
		return err
	}
	f, err := os.OpenFile(a.segmentPath(next), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	a.active = f
	a.segs = append(a.segs, segment{number: next})
	return nil
}

// Sync flushes the active segment to stable storage.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active == nil {
		return errors.New("archive: closed")
	}
	return a.active.Sync()
}

// Close syncs and closes the archive.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active == nil {
		return nil
	}
	syncErr := a.active.Sync()
	closeErr := a.active.Close()
	a.active = nil
	if syncErr != nil {
		return fmt.Errorf("archive: close sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("archive: %w", closeErr)
	}
	return nil
}

// Count returns the number of archived report records.
func (a *Archive) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reports
}

// Segments returns the number of on-disk segment files.
func (a *Archive) Segments() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.segs)
}

// Checkpoint returns the latest durable checkpoint.
func (a *Archive) Checkpoint() (Checkpoint, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastCP < 0 {
		return Checkpoint{}, false
	}
	f := a.frames[a.lastCP]
	return Checkpoint{Block: f.block, Digest: f.digest}, true
}

// Checkpoints returns every archived checkpoint, ascending by block —
// the trail the follower walks backwards to find a reorg's fork point.
func (a *Archive) Checkpoints() []Checkpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Checkpoint
	for _, f := range a.frames {
		if f.kind == KindCheckpoint {
			out = append(out, Checkpoint{Block: f.block, Digest: f.digest})
		}
	}
	return out
}

// Get reads the archived report for a transaction, re-verifying its
// checksum on the way in.
func (a *Archive) Get(h types.Hash) (Record, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	i, ok := a.txIndex[h]
	if !ok {
		return Record{}, false, nil
	}
	rec, err := a.readFrameLocked(a.frames[i])
	if err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// readFrameLocked reads and decodes one frame from disk.
func (a *Archive) readFrameLocked(ref frameRef) (Record, error) {
	f, err := os.Open(a.segmentPath(a.segs[ref.seg].number))
	if err != nil {
		return Record{}, fmt.Errorf("archive: %w", err)
	}
	defer f.Close()
	buf := make([]byte, ref.size)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return Record{}, fmt.Errorf("archive: read frame: %w", err)
	}
	rec, _, err := decodeRecord(buf)
	if err != nil {
		return Record{}, fmt.Errorf("archive: stored frame invalid: %w", err)
	}
	return rec, nil
}

// Query selects archived reports. The zero value selects everything.
type Query struct {
	// FromBlock / ToBlock bound the block range inclusively; ToBlock 0
	// means "latest".
	FromBlock, ToBlock uint64
	// Flags, when non-zero, selects records carrying all of these verdict
	// flags (e.g. FlagAttack).
	Flags uint8
	// After resumes a paginated scan after this transaction (exclusive);
	// the zero hash starts from the beginning.
	After types.Hash
	// Limit caps the result count; <= 0 means no cap.
	Limit int
}

// Select returns matching reports in append (block) order, plus whether
// more matches remain past the limit — the pagination signal.
func (a *Archive) Select(q Query) ([]Record, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Frames are block-ordered, so binary search finds the range start.
	start := sort.Search(len(a.frames), func(i int) bool {
		return a.frames[i].block >= q.FromBlock
	})
	if !q.After.IsZero() {
		i, ok := a.txIndex[q.After]
		if !ok {
			return nil, false, fmt.Errorf("archive: unknown pagination cursor %s", q.After)
		}
		if i+1 > start {
			start = i + 1
		}
	}
	var out []Record
	for i := start; i < len(a.frames); i++ {
		f := a.frames[i]
		if q.ToBlock != 0 && f.block > q.ToBlock {
			break
		}
		if f.kind != KindReport || f.flags&q.Flags != q.Flags {
			continue
		}
		if q.Limit > 0 && len(out) == q.Limit {
			return out, true, nil
		}
		rec, err := a.readFrameLocked(f)
		if err != nil {
			return nil, false, err
		}
		out = append(out, rec)
	}
	return out, false, nil
}

// RollbackAbove removes every record with a block strictly above the
// fork point — the follower's reorg and partial-block repair primitive.
// Later segments are deleted outright and the cut segment truncated, so
// the on-disk log after rollback is byte-identical to one that never saw
// the removed records.
func (a *Archive) RollbackAbove(fork uint64) (removed int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active == nil {
		return 0, errors.New("archive: closed")
	}
	cut := sort.Search(len(a.frames), func(i int) bool {
		return a.frames[i].block > fork
	})
	if cut == len(a.frames) {
		return 0, nil
	}
	cutSeg, cutOff := a.frames[cut].seg, a.frames[cut].off

	if err := a.active.Sync(); err != nil {
		return 0, fmt.Errorf("archive: sync before rollback: %w", err)
	}
	if err := a.active.Close(); err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	a.active = nil
	for _, s := range a.segs[cutSeg+1:] {
		if err := os.Remove(a.segmentPath(s.number)); err != nil {
			return 0, fmt.Errorf("archive: rollback remove: %w", err)
		}
	}
	if err := syncDir(a.dir); err != nil {
		return 0, err
	}
	path := a.segmentPath(a.segs[cutSeg].number)
	if err := truncateFile(path, cutOff); err != nil {
		return 0, err
	}

	// Drop the removed frames from the index.
	removed = len(a.frames) - cut
	for _, f := range a.frames[cut:] {
		switch f.kind {
		case KindReport:
			if a.txIndex[f.txHash] >= cut {
				delete(a.txIndex, f.txHash)
			}
			a.reports--
		}
	}
	a.frames = a.frames[:cut]
	a.lastCP = -1
	for i := len(a.frames) - 1; i >= 0; i-- {
		if a.frames[i].kind == KindCheckpoint {
			a.lastCP = i
			break
		}
	}
	a.segs = a.segs[:cutSeg+1]
	a.segs[cutSeg].size = cutOff

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	if _, err := f.Seek(cutOff, 0); err != nil {
		f.Close()
		return 0, fmt.Errorf("archive: %w", err)
	}
	a.active = f
	return removed, nil
}
