// Package archive is the durable verdict store underneath the detection
// pipeline: an embedded, append-only, crash-safe log of detection
// reports plus the follower's progress checkpoints.
//
// On disk the archive is a directory of numbered segment files
// (seg-00000001.log, seg-00000002.log, ...), each a concatenation of
// CRC32C-framed records (see record.go). Appends go to the highest
// numbered segment and rotate to a fresh one past a size threshold, so
// no file grows without bound and reorg rollback can drop whole
// segments. Durability is explicit: Append buffers nothing but only
// Sync guarantees the bytes — callers batch appends and sync once per
// block (or once per group-commit batch via AppendCheckpointDeferred),
// the classic write-ahead-log cadence.
//
// The open cost is proportional to what actually needs replaying, not
// to what is stored. Sealed segments carry a CRC-protected `.idx`
// sidecar (see segindex.go) written at rotation — and for the active
// tail at a clean Close — from which Open loads the index without
// touching the log bytes; only a segment whose sidecar is missing,
// corrupt or stale (the signature of a crash) is replayed, after which
// its sidecar is rewritten. Replay performs torn-tail recovery: a
// partial final record — the signature of a kill -9 mid append — is
// truncated away, after which every fully synced record is recovered
// byte for byte. Corruption anywhere other than the tail of the final
// segment is damage fsync promised could not happen, and Open reports
// it as an error instead of silently dropping data. (With sidecars the
// payload CRCs of sealed segments are re-verified lazily, on first
// read, rather than at open.)
//
// Each segment also carries a fence — min/max block and the union of
// its records' verdict flags — plus a tx-hash bloom filter, so Select
// skips whole segments outside a query's block range or flag mask and
// Get probes a bloom before binary-searching a segment's hash index.
package archive

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"leishen/internal/metrics"
	"leishen/internal/types"
	"leishen/internal/vfs"
)

// DefaultSegmentBytes is the rotation threshold: an active segment at or
// past this size is sealed and a fresh one started.
const DefaultSegmentBytes = 8 << 20

// segPrefix and segSuffix shape the segment file names.
const (
	segPrefix = "seg-"
	segSuffix = ".log"
)

// Options configures an archive.
type Options struct {
	// SegmentBytes is the rotation threshold; <= 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// CacheRecords bounds the Get read-through record cache; 0 means
	// DefaultCacheRecords, < 0 disables the cache.
	CacheRecords int
	// NoSidecars disables segment-index sidecars: Open replays every
	// segment and neither rotation nor Close writes .idx files. A
	// benchmark and repair knob — the resulting in-memory index is
	// identical to a sidecar-assisted open's.
	NoSidecars bool
	// NoPrune disables segment fence/bloom pruning in Select and Get —
	// the linear reference path regression tests and benchmarks compare
	// the pruned path against.
	NoPrune bool
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

func (o Options) cacheRecords() int {
	switch {
	case o.CacheRecords < 0:
		return 0
	case o.CacheRecords == 0:
		return DefaultCacheRecords
	default:
		return o.CacheRecords
	}
}

// Checkpoint is the follower's durable progress mark: every block up to
// and including Block is fully archived, and Digest identifies that
// block so a restart can detect a reorg beneath the checkpoint.
type Checkpoint struct {
	Block  uint64     `json:"block"`
	Digest types.Hash `json:"digest"`
}

// frameRef locates one record inside the segment files.
type frameRef struct {
	kind   Kind
	block  uint64
	flags  uint8
	txHash types.Hash
	digest types.Hash // checkpoints only
	seg    int        // index into Archive.segs
	off    int64      // frame start within the segment
	size   int64      // framed size (header + payload)
}

// fence summarizes one segment's report records for query pruning: the
// block span they cover and the union of their verdict-flag bits. A
// query whose range misses the span, or whose flag mask asks for a bit
// no record in the segment carries, skips the segment entirely.
type fence struct {
	minBlock  uint64
	maxBlock  uint64
	flagUnion uint8
	reports   int
}

// observe folds one report record into the fence. Blocks arrive
// non-decreasing, so maxBlock is just the latest.
func (f *fence) observe(block uint64, flags uint8) {
	if f.reports == 0 {
		f.minBlock = block
	}
	f.maxBlock = block
	f.flagUnion |= flags
	f.reports++
}

// overlaps reports whether any record in the fence could match q.
func (f *fence) overlaps(q *Query) bool {
	if f.reports == 0 {
		return false
	}
	if f.maxBlock < q.FromBlock {
		return false
	}
	if q.ToBlock != 0 && f.minBlock > q.ToBlock {
		return false
	}
	return f.flagUnion&q.Flags == q.Flags
}

// sealedSeg is the query index of a sealed (immutable) segment: its
// report frames sorted by tx hash for binary-search lookup, guarded by
// a bloom filter so most negative probes cost a few bit tests.
type sealedSeg struct {
	perm []uint32 // report positions within the segment, (hash, pos)-sorted
	// bloom is built eagerly when a segment seals in memory, but lazily
	// (on the first point lookup probing the segment) after a sidecar
	// load — an open should not pay for lookups that never come.
	bloom      bloom
	bloomBuilt bool
}

// segment is one on-disk log file plus its in-memory query state.
type segment struct {
	number     int   // from the file name, ascending
	size       int64 // valid bytes (after any torn-tail truncation)
	firstFrame int   // index into Archive.frames of this segment's first record
	fence      fence
	sealed     *sealedSeg // nil while the segment is active
}

// Stats is a point-in-time snapshot of the archive's shape and the
// effectiveness of its index layers, for /healthz and diagnostics. It
// is rendered from the same atomic counters /metrics exposes (see
// RegisterMetrics), so the two views can never disagree.
type Stats struct {
	// Records and Segments describe the store itself.
	Records  int `json:"records"`
	Segments int `json:"segments"`
	// SealedSegments counts segments carrying a sealed in-memory index.
	SealedSegments int `json:"sealedSegments"`
	// OpenSidecarLoads / OpenReplays break down how the last Open built
	// the index: segments loaded from their .idx sidecar vs. replayed.
	OpenSidecarLoads int `json:"openSidecarLoads"`
	OpenReplays      int `json:"openReplays"`
	// SelectSegmentsScanned / SelectSegmentsPruned count, across every
	// Select so far, segments walked vs. skipped by fence pruning.
	SelectSegmentsScanned uint64 `json:"selectSegmentsScanned"`
	SelectSegmentsPruned  uint64 `json:"selectSegmentsPruned"`
	// CacheHits / CacheMisses / CacheRecords describe the shared
	// raw-bytes read-through record cache behind Get and GetRaw.
	CacheHits    uint64 `json:"cacheHits"`
	CacheMisses  uint64 `json:"cacheMisses"`
	CacheRecords int    `json:"cacheRecords"`
	// ReadRuns / ReadFrames count the coalesced disk reads issued by the
	// read path: frames fetched per ReadAt is ReadFrames/ReadRuns, the
	// run-coalescing amortization factor.
	ReadRuns   uint64 `json:"readRuns"`
	ReadFrames uint64 `json:"readFrames"`
	// Appends / AppendedBytes / Rotations / Syncs describe the write
	// path: frames accepted (reports and checkpoints), their framed
	// size on disk, segment rotations, and fsyncs issued.
	Appends       uint64 `json:"appends"`
	AppendedBytes uint64 `json:"appendedBytes"`
	Rotations     uint64 `json:"rotations"`
	Syncs         uint64 `json:"syncs"`
}

// counters is the archive's always-on telemetry. The fields are
// zero-value-ready atomics updated at the same sites the old Stats
// fields were bumped under the mutex, so Stats() and a registered
// /metrics scrape read one source of truth. Keeping them as struct
// fields (rather than registry-created series) means an archive works
// bare and a daemon attaches names with RegisterMetrics.
type counters struct {
	sidecarLoads  metrics.Counter
	replays       metrics.Counter
	selectScanned metrics.Counter
	selectPruned  metrics.Counter
	cacheHits     metrics.Counter
	cacheMisses   metrics.Counter
	readRuns      metrics.Counter
	readFrames    metrics.Counter
	appends       metrics.Counter
	appendBytes   metrics.Counter
	rotations     metrics.Counter
	syncs         metrics.Counter
}

// Archive is the store. All methods are safe for concurrent use.
type Archive struct {
	mu   sync.Mutex
	fs   vfs.FS
	dir  string
	opts Options

	segs   []segment
	active vfs.File // open handle on the last segment

	frames   []frameRef
	activeTx map[types.Hash]int // tx hash -> frames index, active segment only
	reports  int
	lastCP   int // frames index of the latest DURABLE checkpoint, -1 if none
	newestCP int // frames index of the latest checkpoint incl. unsynced, -1 if none

	buf     []byte           // encode scratch
	wbuf    []byte           // framed records appended but not yet written to the file
	wbase   int64            // file size on disk; wbuf logically starts at this offset
	readers map[int]vfs.File // cached read handles, keyed by segment number
	cache   recordCache
	met     counters
}

// writeBufFlushBytes bounds the write buffer: once this many framed
// bytes are pending, the next append writes them out in one syscall.
// Durability is unchanged — records are only promised stable after a
// Sync, which always flushes first — but batching the write() calls is
// what makes group-commit ingest cheap.
const writeBufFlushBytes = 256 << 10

// Open opens (creating if necessary) the archive in dir. Sealed
// segments load from their sidecar indexes; segments without a valid
// sidecar — always including a crash-torn tail — are replayed, torn
// final records truncated away, and their sidecars rewritten.
func Open(dir string, opts Options) (*Archive, error) {
	return OpenFS(vfs.OS, dir, opts)
}

// OpenFS is Open on an explicit filesystem — how the fault-injection
// and crash-consistency harnesses run an archive on vfs.MemFS or
// vfs.FaultFS. Open(dir, opts) is OpenFS(vfs.OS, dir, opts).
func OpenFS(fsys vfs.FS, dir string, opts Options) (*Archive, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	a := &Archive{
		fs:       fsys,
		dir:      dir,
		opts:     opts,
		activeTx: make(map[types.Hash]int),
		lastCP:   -1,
		newestCP: -1,
		readers:  make(map[int]vfs.File),
		cache:    newRecordCache(opts.cacheRecords()),
	}
	numbers, err := listSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(numbers) == 0 {
		numbers = []int{1}
		if err := a.createSegment(1); err != nil {
			return nil, err
		}
	}
	for i, n := range numbers {
		if err := a.loadSegment(i, n, len(numbers)); err != nil {
			return nil, err
		}
	}
	// Everything recovered from disk is durable, checkpoints included.
	a.lastCP = a.newestCP
	last := a.segs[len(a.segs)-1]
	f, err := a.fs.OpenFile(a.segmentPath(last.number), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if _, err := f.Seek(last.size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: %w", err)
	}
	a.active = f
	a.wbase = last.size
	return a, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(fsys vfs.FS, dir string) ([]int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var numbers []int
	for _, name := range names {
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("archive: alien segment file %q", name)
		}
		numbers = append(numbers, n)
	}
	sort.Ints(numbers)
	return numbers, nil
}

func (a *Archive) segmentPath(number int) string {
	return filepath.Join(a.dir, fmt.Sprintf("%s%08d%s", segPrefix, number, segSuffix))
}

func (a *Archive) sidecarPath(number int) string {
	return filepath.Join(a.dir, fmt.Sprintf("%s%08d%s", segPrefix, number, sidecarSuffix))
}

// createSegment makes an empty segment file and syncs the directory so
// the file name itself survives a crash.
func (a *Archive) createSegment(number int) error {
	f, err := a.fs.OpenFile(a.segmentPath(number), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := a.fs.SyncDir(a.dir); err != nil {
		return fmt.Errorf("archive: sync dir: %w", err)
	}
	return nil
}

// loadSegment brings one segment into the index: from its sidecar when
// a valid one exists, otherwise by replaying the log. Only the final
// segment may carry a torn tail; there the partial record is truncated
// away.
func (a *Archive) loadSegment(idx, number, total int) error {
	final := idx == total-1
	if !a.opts.NoSidecars && a.loadFromSidecar(idx, number, total) {
		a.met.sidecarLoads.Inc()
		return nil
	}

	path := a.segmentPath(number)
	data, err := a.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	a.segs = append(a.segs, segment{number: number, firstFrame: len(a.frames)})
	valid, scanErr := a.indexRecords(idx, data)
	if scanErr != nil {
		if !final {
			return fmt.Errorf("archive: segment %s corrupt at offset %d (not the active tail): %w", path, valid, scanErr)
		}
		if err := a.truncateFile(path, valid); err != nil {
			return err
		}
	}
	a.segs[idx].size = valid
	a.met.replays.Inc()
	if !final {
		a.sealLastSegmentLocked()
		if !a.opts.NoSidecars {
			if err := a.writeSidecarLocked(idx, a.segs[idx].sealed.perm); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadFromSidecar loads one segment's index from its .idx sidecar,
// returning false (fall back to replay) on any validation failure: a
// missing or corrupt sidecar, or one that no longer describes the log
// file byte for byte (size or tail-CRC mismatch — the stale case).
func (a *Archive) loadFromSidecar(idx, number, total int) bool {
	raw, err := a.fs.ReadFile(a.sidecarPath(number))
	if err != nil {
		return false
	}
	// Decode straight into the frames slice; on failure keep the original
	// slice header (the extension holds partially-decoded garbage).
	sc, frames, err := decodeSidecarInto(raw, a.frames, total-idx)
	if err != nil {
		return false
	}
	path := a.segmentPath(number)
	size, statErr := a.fs.Size(path)
	if statErr != nil || size != sc.segSize {
		return false
	}
	if crc, err := logTailCRC(a.fs, path, sc.segSize); err != nil || crc != sc.tailCRC {
		return false
	}

	a.segs = append(a.segs, segment{number: number, size: sc.segSize, firstFrame: len(a.frames)})
	seg := &a.segs[idx]
	final := idx == total-1
	base := len(a.frames)
	a.frames = frames
	for i := base; i < len(a.frames); i++ {
		f := &a.frames[i]
		f.seg = idx
		switch f.kind {
		case KindReport:
			a.reports++
			seg.fence.observe(f.block, f.flags)
			if final {
				a.activeTx[f.txHash] = i
			}
		case KindCheckpoint:
			a.newestCP = i
		}
	}
	if !final {
		// The bloom filter is built lazily on the first point lookup that
		// probes this segment — most opens never pay for it.
		seg.sealed = &sealedSeg{perm: sc.perm}
	}
	return true
}

// indexRecords walks the framed records in data, indexing each, and
// returns the number of bytes consumed by whole valid records. A
// trailing invalid frame is reported as an error wrapping errBadFrame.
func (a *Archive) indexRecords(seg int, data []byte) (int64, error) {
	var off int64
	for int(off) < len(data) {
		rec, n, err := decodeRecord(data[off:])
		if err != nil {
			return off, err
		}
		a.indexFrame(rec, frameRef{seg: seg, off: off, size: int64(n)})
		off += int64(n)
	}
	return off, nil
}

// indexFrame appends one decoded record to the in-memory index of the
// last (active) segment. Checkpoints only advance newestCP here; they
// become observable (lastCP) when a Sync makes them durable.
func (a *Archive) indexFrame(rec Record, ref frameRef) {
	ref.kind = rec.Kind
	ref.block = rec.Block
	ref.flags = rec.Flags
	ref.txHash = rec.TxHash
	ref.digest = rec.Digest
	a.frames = append(a.frames, ref)
	switch rec.Kind {
	case KindReport:
		a.activeTx[rec.TxHash] = len(a.frames) - 1
		a.reports++
		a.segs[len(a.segs)-1].fence.observe(rec.Block, rec.Flags)
	case KindCheckpoint:
		a.newestCP = len(a.frames) - 1
	}
}

// sealLastSegmentLocked converts the newest segment's index to its
// immutable sealed form: a (hash, position)-sorted permutation of its
// report frames plus a bloom filter, with the segment's hashes dropped
// from the active map.
func (a *Archive) sealLastSegmentLocked() {
	idx := len(a.segs) - 1
	seg := &a.segs[idx]
	frames := a.frames[seg.firstFrame:]
	perm := buildPerm(frames)
	bl := newBloom(len(perm))
	for _, p := range perm {
		bl.add(frames[p].txHash)
	}
	for i := range frames {
		if frames[i].kind != KindReport {
			continue
		}
		if j, ok := a.activeTx[frames[i].txHash]; ok && j == seg.firstFrame+i {
			delete(a.activeTx, frames[i].txHash)
		}
	}
	seg.sealed = &sealedSeg{perm: perm, bloom: bl, bloomBuilt: true}
}

// writeSidecarLocked writes (atomically, via rename) the sidecar for
// segment idx from its in-memory frames. perm is the segment's sorted
// report permutation — the sealed index's, or one built on the fly when
// sealing the active tail at Close.
func (a *Archive) writeSidecarLocked(idx int, perm []uint32) error {
	seg := &a.segs[idx]
	end := len(a.frames)
	if idx+1 < len(a.segs) {
		end = a.segs[idx+1].firstFrame
	}
	crc, err := logTailCRC(a.fs, a.segmentPath(seg.number), seg.size)
	if err != nil {
		return fmt.Errorf("archive: sidecar tail crc: %w", err)
	}
	sc := buildSidecar(a.frames[seg.firstFrame:end], seg.size, crc, perm)
	path := a.sidecarPath(seg.number)
	tmp := path + ".tmp"
	if err := a.fs.WriteFile(tmp, encodeSidecar(sc), 0o644); err != nil {
		return fmt.Errorf("archive: write sidecar: %w", err)
	}
	if err := a.fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("archive: install sidecar: %w", err)
	}
	return nil
}

// removeSidecar deletes a segment's sidecar if one exists.
func (a *Archive) removeSidecar(number int) error {
	err := a.fs.Remove(a.sidecarPath(number))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("archive: remove sidecar: %w", err)
	}
	return nil
}

// truncateFile cuts a file to size and syncs it, making the recovery
// itself durable.
func (a *Archive) truncateFile(path string, size int64) error {
	f, err := a.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("archive: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("archive: sync truncated segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	return nil
}

// AppendReport appends one detection report record. Blocks must be
// appended in non-decreasing order — the invariant range queries,
// checkpointing and reorg rollback all lean on. The bytes are durable
// only after the next Sync.
func (a *Archive) AppendReport(rec *Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rec.Kind != KindReport {
		return fmt.Errorf("archive: AppendReport got kind %d", rec.Kind)
	}
	if last, ok := a.lastBlockLocked(); ok && rec.Block < last {
		return fmt.Errorf("archive: block %d after block %d breaks append order", rec.Block, last)
	}
	return a.appendLocked(rec)
}

// AppendCheckpoint appends a progress checkpoint and syncs, making every
// record appended so far durable — the one fsync per block.
func (a *Archive) AppendCheckpoint(cp Checkpoint) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.appendCheckpointLocked(cp); err != nil {
		return err
	}
	return a.syncLocked()
}

// AppendCheckpointDeferred appends a progress checkpoint WITHOUT
// syncing — the group-commit building block. The record is framed into
// the log immediately, but the checkpoint stays invisible to
// Checkpoint and Checkpoints until the next successful Sync, so a
// reader can never observe a checkpoint whose records might still be
// lost to a crash. Callers batch appends and issue one Sync per batch.
func (a *Archive) AppendCheckpointDeferred(cp Checkpoint) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.appendCheckpointLocked(cp)
}

func (a *Archive) appendCheckpointLocked(cp Checkpoint) error {
	if last, ok := a.lastBlockLocked(); ok && cp.Block < last {
		return fmt.Errorf("archive: checkpoint %d after block %d breaks append order", cp.Block, last)
	}
	return a.appendLocked(&Record{Kind: KindCheckpoint, Block: cp.Block, Digest: cp.Digest})
}

// lastBlockLocked returns the block of the newest frame.
func (a *Archive) lastBlockLocked() (uint64, bool) {
	if len(a.frames) == 0 {
		return 0, false
	}
	return a.frames[len(a.frames)-1].block, true
}

// appendLocked encodes, rotates if due, writes and indexes one record.
func (a *Archive) appendLocked(rec *Record) error {
	if a.active == nil {
		return errors.New("archive: closed")
	}
	buf, err := appendRecord(a.buf[:0], rec)
	if err != nil {
		return err
	}
	a.buf = buf
	seg := &a.segs[len(a.segs)-1]
	if seg.size > 0 && seg.size+int64(len(buf)) > a.opts.segmentBytes() {
		if err := a.rotateLocked(); err != nil {
			return err
		}
		seg = &a.segs[len(a.segs)-1]
	}
	// Flush BEFORE buffering, so a failed append leaves the new record
	// neither indexed nor pending — same contract as an unbuffered write.
	if len(a.wbuf) >= writeBufFlushBytes {
		if err := a.flushLocked(); err != nil {
			return err
		}
	}
	off := seg.size
	a.wbuf = append(a.wbuf, buf...)
	seg.size += int64(len(buf))
	a.indexFrame(*rec, frameRef{seg: len(a.segs) - 1, off: off, size: int64(len(buf))})
	a.met.appends.Inc()
	a.met.appendBytes.Add(uint64(len(buf)))
	return nil
}

// flushLocked writes the pending buffer to the active segment file in
// one write(). On a short write it truncates the file back to the last
// whole-buffer boundary, so the file never holds a frame prefix the
// buffer also holds — the flush stays retryable and reopen-safe.
func (a *Archive) flushLocked() error {
	if len(a.wbuf) == 0 {
		return nil
	}
	if n, err := a.active.Write(a.wbuf); err != nil {
		if n > 0 {
			//lint:allow errflow best-effort rewind; the Write error below already fails the flush
			_ = a.active.Truncate(a.wbase)
			//lint:allow errflow best-effort rewind; the Write error below already fails the flush
			_, _ = a.active.Seek(a.wbase, 0)
		}
		return fmt.Errorf("archive: append: %w", err)
	}
	a.wbase += int64(len(a.wbuf))
	a.wbuf = a.wbuf[:0]
	return nil
}

// rotateLocked seals the active segment — sync, in-memory seal, sidecar
// — and starts the next one.
func (a *Archive) rotateLocked() error {
	if err := a.syncLocked(); err != nil {
		return fmt.Errorf("archive: sync before rotate: %w", err)
	}
	a.sealLastSegmentLocked()
	if !a.opts.NoSidecars {
		if err := a.writeSidecarLocked(len(a.segs)-1, a.segs[len(a.segs)-1].sealed.perm); err != nil {
			return err
		}
	}
	if err := a.active.Close(); err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	// The old handle is gone; until the next segment is open the archive
	// has no active file. Leaving the closed handle in place would make a
	// failed rotation double-close it later (in Close or RollbackAbove).
	a.active = nil
	next := a.segs[len(a.segs)-1].number + 1
	if err := a.createSegment(next); err != nil {
		return err
	}
	f, err := a.fs.OpenFile(a.segmentPath(next), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	a.active = f
	a.wbase = 0 // syncLocked above drained wbuf; the new file is empty
	a.segs = append(a.segs, segment{number: next, firstFrame: len(a.frames)})
	a.met.rotations.Inc()
	return nil
}

// syncLocked flushes the active segment and promotes deferred
// checkpoints to observable — the bytes they cover are now stable.
func (a *Archive) syncLocked() error {
	if a.active == nil {
		return errors.New("archive: closed")
	}
	if err := a.flushLocked(); err != nil {
		return err
	}
	if err := a.active.Sync(); err != nil {
		return err
	}
	a.met.syncs.Inc()
	a.lastCP = a.newestCP
	return nil
}

// Sync flushes the active segment to stable storage and makes any
// checkpoints appended with AppendCheckpointDeferred observable.
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.syncLocked()
}

// Close syncs, seals the active tail's sidecar so the next Open is
// index-loaded end to end, and closes the archive.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active == nil {
		return nil
	}
	syncErr := a.syncLocked()
	if syncErr == nil && !a.opts.NoSidecars {
		idx := len(a.segs) - 1
		syncErr = a.writeSidecarLocked(idx, buildPerm(a.frames[a.segs[idx].firstFrame:]))
	}
	closeErr := a.active.Close()
	a.active = nil
	readerErr := a.closeReadersLocked()
	if syncErr != nil {
		return fmt.Errorf("archive: close sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("archive: %w", closeErr)
	}
	return readerErr
}

// Count returns the number of archived report records.
func (a *Archive) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reports
}

// Segments returns the number of on-disk segment files.
func (a *Archive) Segments() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.segs)
}

// Stats snapshots the archive's shape and index-layer counters.
func (a *Archive) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Stats{
		Records:               a.reports,
		Segments:              len(a.segs),
		CacheRecords:          a.cache.len(),
		OpenSidecarLoads:      int(a.met.sidecarLoads.Value()),
		OpenReplays:           int(a.met.replays.Value()),
		SelectSegmentsScanned: a.met.selectScanned.Value(),
		SelectSegmentsPruned:  a.met.selectPruned.Value(),
		CacheHits:             a.met.cacheHits.Value(),
		CacheMisses:           a.met.cacheMisses.Value(),
		ReadRuns:              a.met.readRuns.Value(),
		ReadFrames:            a.met.readFrames.Value(),
		Appends:               a.met.appends.Value(),
		AppendedBytes:         a.met.appendBytes.Value(),
		Rotations:             a.met.rotations.Value(),
		Syncs:                 a.met.syncs.Value(),
	}
	for i := range a.segs {
		if a.segs[i].sealed != nil {
			st.SealedSegments++
		}
	}
	return st
}

// RegisterMetrics publishes the archive's counters on r under the
// leishen_archive_* family, plus scrape-time gauges for the store's
// shape. The counters are the same atomics Stats() renders — attaching
// a registry adds names, not a second set of numbers.
func (a *Archive) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounter("leishen_archive_open_sidecar_loads_total", "Segments whose index loaded from a .idx sidecar at Open.", &a.met.sidecarLoads)
	r.RegisterCounter("leishen_archive_open_replays_total", "Segments whose index was rebuilt by replaying the log at Open.", &a.met.replays)
	r.RegisterCounter("leishen_archive_select_segments_scanned_total", "Segments walked by Select queries.", &a.met.selectScanned)
	r.RegisterCounter("leishen_archive_select_segments_pruned_total", "Segments skipped by Select fence pruning.", &a.met.selectPruned)
	r.RegisterCounter("leishen_archive_cache_hits_total", "Record cache hits on the point-lookup path.", &a.met.cacheHits)
	r.RegisterCounter("leishen_archive_cache_misses_total", "Record cache misses on the point-lookup path.", &a.met.cacheMisses)
	r.RegisterCounter("leishen_archive_read_runs_total", "Coalesced ReadAt calls issued by the raw read path.", &a.met.readRuns)
	r.RegisterCounter("leishen_archive_read_frames_total", "Frames fetched by the raw read path (frames/runs is the coalescing factor).", &a.met.readFrames)
	r.RegisterCounter("leishen_archive_appends_total", "Frames appended (reports and checkpoints).", &a.met.appends)
	r.RegisterCounter("leishen_archive_appended_bytes_total", "Framed bytes appended to segment logs.", &a.met.appendBytes)
	r.RegisterCounter("leishen_archive_segment_rotations_total", "Active-segment rotations (seal, sidecar, new file).", &a.met.rotations)
	r.RegisterCounter("leishen_archive_fsyncs_total", "Fsyncs issued against the active segment.", &a.met.syncs)
	r.GaugeFunc("leishen_archive_records", "Archived report records.", func() float64 { return float64(a.Count()) })
	r.GaugeFunc("leishen_archive_segments", "On-disk segment files.", func() float64 { return float64(a.Segments()) })
	r.GaugeFunc("leishen_archive_sealed_segments", "Segments carrying a sealed in-memory index.", func() float64 { return float64(a.Stats().SealedSegments) })
	r.GaugeFunc("leishen_archive_cache_records", "Records held by the read-through record cache.", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.cache.len())
	})
}

// Checkpoint returns the latest durable checkpoint.
func (a *Archive) Checkpoint() (Checkpoint, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastCP < 0 {
		return Checkpoint{}, false
	}
	f := a.frames[a.lastCP]
	return Checkpoint{Block: f.block, Digest: f.digest}, true
}

// Checkpoints returns every durable checkpoint, ascending by block —
// the trail the follower walks backwards to find a reorg's fork point.
// Checkpoints appended with AppendCheckpointDeferred and not yet synced
// are excluded.
func (a *Archive) Checkpoints() []Checkpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Checkpoint
	for i := 0; i <= a.lastCP && i < len(a.frames); i++ {
		if a.frames[i].kind == KindCheckpoint {
			out = append(out, Checkpoint{Block: a.frames[i].block, Digest: a.frames[i].digest})
		}
	}
	return out
}

// Get reads the archived report for a transaction — through the shared
// raw-bytes record cache when it can, re-verifying the stored checksum
// on a miss. The active segment answers from its hash map; sealed
// segments are probed newest first, bloom filter before binary search,
// so a missing hash usually costs a few bit tests per segment. The
// returned record owns its Report bytes; GetRaw is the copy-free
// variant.
func (a *Archive) Get(h types.Hash) (Record, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	raw, ok, err := a.getRawLocked(h)
	if err != nil || !ok {
		return Record{}, ok, err
	}
	return rawToRecord(raw, true), true, nil
}

// rawToRecord rebuilds the decoded Record view of a raw report frame.
// With clone set the report bytes are copied, so callers can never
// mutate cached memory through the returned slice.
func rawToRecord(raw RawRecord, clone bool) Record {
	rec := Record{Kind: KindReport, TxHash: raw.TxHash, Block: raw.Block, Flags: raw.Flags, Report: raw.Report}
	if clone && rec.Report != nil {
		rec.Report = append([]byte(nil), rec.Report...)
	}
	return rec
}

// lookupTxLocked resolves a tx hash to its frame index: active map
// first, then sealed segments newest to oldest — so when the same hash
// was archived more than once the latest copy wins, matching the
// single-map semantics this replaced.
func (a *Archive) lookupTxLocked(h types.Hash) (int, bool) {
	if i, ok := a.activeTx[h]; ok {
		return i, true
	}
	for s := len(a.segs) - 1; s >= 0; s-- {
		seg := &a.segs[s]
		if seg.sealed == nil {
			continue
		}
		if !a.opts.NoPrune {
			if !seg.sealed.bloomBuilt {
				a.buildBloomLocked(s)
			}
			if !seg.sealed.bloom.mayContain(h) {
				continue
			}
		}
		if i, ok := a.sealedLookupLocked(s, h); ok {
			return i, true
		}
	}
	return 0, false
}

// buildBloomLocked materializes a sidecar-loaded segment's bloom filter
// from its permutation.
func (a *Archive) buildBloomLocked(s int) {
	seg := &a.segs[s]
	bl := newBloom(len(seg.sealed.perm))
	for _, p := range seg.sealed.perm {
		bl.add(a.frames[seg.firstFrame+int(p)].txHash)
	}
	seg.sealed.bloom = bl
	seg.sealed.bloomBuilt = true
}

// sealedLookupLocked binary-searches one sealed segment's permutation
// for the LAST frame carrying hash h.
func (a *Archive) sealedLookupLocked(s int, h types.Hash) (int, bool) {
	seg := &a.segs[s]
	frames := a.frames[seg.firstFrame:]
	perm := seg.sealed.perm
	lo := sort.Search(len(perm), func(k int) bool {
		return bytes.Compare(frames[perm[k]].txHash[:], h[:]) > 0
	})
	if lo == 0 {
		return 0, false
	}
	cand := perm[lo-1]
	if frames[cand].txHash != h {
		return 0, false
	}
	return seg.firstFrame + int(cand), true
}

// Query selects archived reports. The zero value selects everything.
type Query struct {
	// FromBlock / ToBlock bound the block range inclusively; ToBlock 0
	// means "latest".
	FromBlock, ToBlock uint64
	// Flags, when non-zero, selects records carrying all of these verdict
	// flags (e.g. FlagAttack).
	Flags uint8
	// After resumes a paginated scan after this transaction (exclusive);
	// the zero hash starts from the beginning.
	After types.Hash
	// Limit caps the result count; <= 0 means no cap.
	Limit int
}

// Select returns matching reports in append (block) order, plus whether
// more matches remain past the limit — the pagination signal. Whole
// segments whose fence (block span, verdict-flag union) cannot match
// the query are skipped without touching their frames. Select is the
// decoded wrapper over SelectRaw's machinery; the two return
// byte-identical report documents.
func (a *Archive) Select(q Query) ([]Record, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	raws, more, err := a.selectRawLocked(&q)
	if err != nil {
		return nil, false, err
	}
	if len(raws) == 0 {
		return nil, more, nil
	}
	out := make([]Record, len(raws))
	for i := range raws {
		// No clone: select reads land in per-call buffers, never the cache.
		out[i] = rawToRecord(raws[i], false)
	}
	return out, more, nil
}

// segEndLocked returns the frames index one past segment s's last frame.
func (a *Archive) segEndLocked(s int) int {
	if s+1 < len(a.segs) {
		return a.segs[s+1].firstFrame
	}
	return len(a.frames)
}

// RollbackAbove removes every record with a block strictly above the
// fork point — the follower's reorg and partial-block repair primitive.
// Later segments are deleted outright (sidecars included) and the cut
// segment truncated, so the on-disk log after rollback is byte-identical
// to one that never saw the removed records. The cut segment becomes the
// active segment again; its stale sidecar is removed and the record
// cache cleared.
func (a *Archive) RollbackAbove(fork uint64) (removed int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active == nil {
		return 0, errors.New("archive: closed")
	}
	cut := sort.Search(len(a.frames), func(i int) bool {
		return a.frames[i].block > fork
	})
	if cut == len(a.frames) {
		return 0, nil
	}
	cutSeg, cutOff := a.frames[cut].seg, a.frames[cut].off

	if err := a.syncLocked(); err != nil {
		return 0, fmt.Errorf("archive: sync before rollback: %w", err)
	}
	if err := a.active.Close(); err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	a.active = nil
	// Cached read handles may point at files about to be removed or
	// truncated; drop them all before touching the log.
	if err := a.closeReadersLocked(); err != nil {
		return 0, err
	}
	for _, s := range a.segs[cutSeg+1:] {
		if err := a.fs.Remove(a.segmentPath(s.number)); err != nil {
			return 0, fmt.Errorf("archive: rollback remove: %w", err)
		}
		if err := a.removeSidecar(s.number); err != nil {
			return 0, err
		}
	}
	if err := a.fs.SyncDir(a.dir); err != nil {
		return 0, fmt.Errorf("archive: sync dir: %w", err)
	}
	path := a.segmentPath(a.segs[cutSeg].number)
	if err := a.truncateFile(path, cutOff); err != nil {
		return 0, err
	}
	if err := a.removeSidecar(a.segs[cutSeg].number); err != nil {
		return 0, err
	}

	// Drop the removed frames from the index. Reports in removed sealed
	// segments only live in those segments' (discarded) permutations;
	// active-map entries all point at or above the cut.
	removed = len(a.frames) - cut
	for _, f := range a.frames[cut:] {
		switch f.kind {
		case KindReport:
			if j, ok := a.activeTx[f.txHash]; ok && j >= cut {
				delete(a.activeTx, f.txHash)
			}
			a.reports--
		}
	}
	a.frames = a.frames[:cut]
	a.lastCP = -1
	for i := len(a.frames) - 1; i >= 0; i-- {
		if a.frames[i].kind == KindCheckpoint {
			a.lastCP = i
			break
		}
	}
	// Rollback synced first, so every surviving checkpoint is durable.
	a.newestCP = a.lastCP
	a.segs = a.segs[:cutSeg+1]

	// The cut segment is the active one again: rebuild its hash map and
	// fence from the surviving frames and drop any sealed-form index.
	seg := &a.segs[cutSeg]
	seg.size = cutOff
	seg.sealed = nil
	seg.fence = fence{}
	for i := seg.firstFrame; i < cut; i++ {
		f := &a.frames[i]
		if f.kind == KindReport {
			a.activeTx[f.txHash] = i
			seg.fence.observe(f.block, f.flags)
		}
	}
	a.cache.clear()

	f, err := a.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("archive: %w", err)
	}
	if _, err := f.Seek(cutOff, 0); err != nil {
		f.Close()
		return 0, fmt.Errorf("archive: %w", err)
	}
	a.active = f
	a.wbase = cutOff // wbuf was drained by the pre-rollback sync
	return removed, nil
}
