package archive

import (
	"bytes"
	"errors"
	"testing"

	"leishen/internal/types"
)

// FuzzSegmentDecode throws arbitrary bytes at the record decoder — the
// code every reopen trusts with whatever a crash left on disk — and
// pins down three properties:
//
//  1. the decoder never panics or over-reads, whatever the input;
//  2. frame sizes strictly advance, so a segment scan always terminates;
//  3. any frame that decodes re-encodes byte-identically (the canonical
//     encoding reopen recovery relies on when it promises synced records
//     back byte for byte).
func FuzzSegmentDecode(f *testing.F) {
	// Seed with well-formed segments, truncations and mutations.
	report, err := appendRecord(nil, &Record{
		Kind:   KindReport,
		TxHash: types.HashFromData([]byte("fuzz")),
		Block:  7,
		Flags:  FlagFlashLoan | FlagAttack,
		Report: []byte(`{"txHash":"0x00","isAttack":true}`),
	})
	if err != nil {
		f.Fatal(err)
	}
	cp, err := appendRecord(report, &Record{
		Kind:   KindCheckpoint,
		Block:  7,
		Digest: types.HashFromData([]byte("blk")),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cp)
	f.Add(cp[:len(cp)-5])
	f.Add(cp[3:])
	mutated := append([]byte(nil), cp...)
	mutated[len(mutated)/2] ^= 0x40
	f.Add(mutated)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				if !errors.Is(err, errBadFrame) {
					t.Fatalf("decode error outside errBadFrame: %v", err)
				}
				return
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("frame size %d escapes the %d-byte input at offset %d", n, len(data), off)
			}
			enc, err := appendRecord(nil, &rec)
			if err != nil {
				t.Fatalf("re-encode of a decoded record failed: %v", err)
			}
			if !bytes.Equal(enc, data[off:off+n]) {
				t.Fatalf("decode/encode not canonical at offset %d:\n in  %x\n out %x", off, data[off:off+n], enc)
			}
			off += n
		}
	})
}
