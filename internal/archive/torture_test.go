// The crash-consistency torture suite. Package archive_test so it can
// exercise the archive strictly through its public API, the way the
// torture harness (and the follower) do.
package archive_test

import (
	"testing"

	"leishen/internal/archive/torture"
)

// TestCrashConsistencyTorture enumerates a simulated crash after every
// mutating filesystem operation across all standard schedules — plain
// appends, rotation, replay-only recovery, group-committed checkpoints
// — materializes three post-crash disks per point (durable-only, full
// volatile, torn tails) and requires every recovery invariant to hold:
// reopen succeeds, the recovered log is a byte prefix of the
// uninterrupted run's, acknowledged checkpoints survive, resume
// converges byte-identically, and no handle is leaked or double-closed.
func TestCrashConsistencyTorture(t *testing.T) {
	results, err := torture.RunAll()
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	totalPoints, totalRecoveries := 0, 0
	for _, r := range results {
		totalPoints += r.CrashPoints
		totalRecoveries += r.Recoveries
		for _, v := range r.Violations {
			t.Errorf("%s: crash point %d (after %s), %s disk: %s",
				v.Schedule, v.CrashPoint, v.Op, v.Variant, v.Detail)
		}
		t.Logf("%s: %d crash points, %d recoveries, %d violations",
			r.Schedule, r.CrashPoints, r.Recoveries, len(r.Violations))
	}
	// The acceptance floor: the schedules must enumerate enough distinct
	// crash points to mean something.
	if totalPoints < 200 {
		t.Fatalf("only %d crash points enumerated across schedules, want >= 200", totalPoints)
	}
	if totalRecoveries != 3*totalPoints {
		t.Fatalf("recoveries %d != 3 x crash points %d", totalRecoveries, totalPoints)
	}
}
