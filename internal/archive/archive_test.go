package archive

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"leishen/internal/core"
	"leishen/internal/types"
)

// sampleRecord builds a deterministic report record; the report body is
// small so torn-tail tests stay fast while still crossing many byte
// boundaries.
func sampleRecord(i int) *Record {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	flags := FlagFlashLoan
	if i%2 == 0 {
		flags |= FlagAttack
	}
	return &Record{
		Kind:   KindReport,
		TxHash: types.HashFromData([]byte("tx"), seed[:]),
		Block:  uint64(1 + i/2), // two records per block
		Flags:  flags,
		Report: []byte(fmt.Sprintf(`{"txHash":"0x%02x","isAttack":%v}`, i, i%2 == 0)),
	}
}

func sampleCheckpoint(block uint64) Checkpoint {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], block)
	return Checkpoint{Block: block, Digest: types.HashFromData([]byte("blk"), seed[:])}
}

// buildArchive appends n sample records (two per block, with a
// checkpoint after each block) and returns the still-open archive.
func buildArchive(t *testing.T, dir string, n int, opts Options) *Archive {
	t.Helper()
	a, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	lastBlock := uint64(0)
	for i := 0; i < n; i++ {
		rec := sampleRecord(i)
		if rec.Block != lastBlock {
			if lastBlock != 0 {
				if err := a.AppendCheckpoint(sampleCheckpoint(lastBlock)); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
			lastBlock = rec.Block
		}
		if err := a.AppendReport(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if lastBlock != 0 {
		if err := a.AppendCheckpoint(sampleCheckpoint(lastBlock)); err != nil {
			t.Fatalf("final checkpoint: %v", err)
		}
	}
	return a
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 40
	// Tiny segments so the corpus spans several files.
	a := buildArchive(t, dir, n, Options{SegmentBytes: 512})
	if a.Segments() < 3 {
		t.Fatalf("want rotation across >= 3 segments, got %d", a.Segments())
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	b, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer b.Close()
	if got := b.Count(); got != n {
		t.Fatalf("reopened count = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		want := sampleRecord(i)
		got, ok, err := b.Get(want.TxHash)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if got.Block != want.Block || got.Flags != want.Flags || !bytes.Equal(got.Report, want.Report) {
			t.Fatalf("record %d mutated across reopen:\n got %+v\nwant %+v", i, got, want)
		}
	}
	cp, ok := b.Checkpoint()
	if !ok || cp != sampleCheckpoint(sampleRecord(n-1).Block) {
		t.Fatalf("checkpoint after reopen = %+v ok=%v", cp, ok)
	}
}

// TestTornTailEveryByte is the crash-safety property test: an archive
// whose active segment is cut at EVERY possible byte offset must reopen
// without error, recover exactly the records whose frames lie wholly
// before the cut — byte for byte — and truncate the rest away.
func TestTornTailEveryByte(t *testing.T) {
	master := t.TempDir()
	const n = 6
	a := buildArchive(t, master, n, Options{})
	if a.Segments() != 1 {
		t.Fatalf("want a single segment, got %d", a.Segments())
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segName := fmt.Sprintf("%s%08d%s", segPrefix, 1, segSuffix)
	data, err := os.ReadFile(filepath.Join(master, segName))
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct the frame boundaries so each cut has an exact
	// expectation.
	type frame struct {
		rec Record
		end int64
	}
	var frames []frame
	var off int64
	for int(off) < len(data) {
		rec, sz, err := decodeRecord(data[off:])
		if err != nil {
			t.Fatalf("master segment invalid at %d: %v", off, err)
		}
		off += int64(sz)
		frames = append(frames, frame{rec: rec, end: off})
	}

	for cut := int64(0); cut <= int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}

		var wantReports int
		var wantCP *Checkpoint
		for _, f := range frames {
			if f.end > cut {
				break
			}
			switch f.rec.Kind {
			case KindReport:
				wantReports++
				got, ok, err := b.Get(f.rec.TxHash)
				if err != nil || !ok {
					t.Fatalf("cut %d: lost record %s: ok=%v err=%v", cut, f.rec.TxHash.Short(), ok, err)
				}
				if !bytes.Equal(got.Report, f.rec.Report) || got.Block != f.rec.Block || got.Flags != f.rec.Flags {
					t.Fatalf("cut %d: record %s not byte-identical", cut, f.rec.TxHash.Short())
				}
			case KindCheckpoint:
				cp := Checkpoint{Block: f.rec.Block, Digest: f.rec.Digest}
				wantCP = &cp
			}
		}
		if got := b.Count(); got != wantReports {
			t.Fatalf("cut %d: recovered %d reports, want %d", cut, got, wantReports)
		}
		cp, ok := b.Checkpoint()
		if (wantCP != nil) != ok || (wantCP != nil && cp != *wantCP) {
			t.Fatalf("cut %d: checkpoint %+v ok=%v, want %v", cut, cp, ok, wantCP)
		}
		// The torn tail must be gone from disk so a later append starts at
		// the recovered boundary.
		var wantSize int64
		for _, f := range frames {
			if f.end > cut {
				break
			}
			wantSize = f.end
		}
		if fi, err := os.Stat(filepath.Join(dir, segName)); err != nil {
			t.Fatal(err)
		} else if fi.Size() != wantSize {
			t.Fatalf("cut %d: segment is %d bytes after recovery, want %d", cut, fi.Size(), wantSize)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestAppendAfterRecovery checks the archive stays writable after a torn
// tail was truncated mid-frame.
func TestAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	a := buildArchive(t, dir, 4, Options{})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, 1, segSuffix))
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer b.Close()
	rec := sampleRecord(99)
	rec.Block = 100
	if err := b.AppendReport(rec); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get(rec.TxHash)
	if err != nil || !ok || !bytes.Equal(got.Report, rec.Report) {
		t.Fatalf("post-recovery append unreadable: ok=%v err=%v", ok, err)
	}
}

// TestCorruptionBeforeTailFails: damage anywhere other than the active
// tail is not a torn write and must refuse to open silently.
func TestCorruptionBeforeTailFails(t *testing.T) {
	dir := t.TempDir()
	a := buildArchive(t, dir, 30, Options{SegmentBytes: 512})
	if a.Segments() < 2 {
		t.Fatalf("want >= 2 segments, got %d", a.Segments())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST segment.
	segPath := filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, 1, segSuffix))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 512}); err == nil {
		t.Fatal("open accepted a corrupt non-final segment")
	}
}

func TestAppendOrderEnforced(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	rec := sampleRecord(0)
	rec.Block = 5
	if err := a.AppendReport(rec); err != nil {
		t.Fatal(err)
	}
	back := sampleRecord(1)
	back.Block = 4
	if err := a.AppendReport(back); err == nil {
		t.Fatal("append accepted a block going backwards")
	}
	if err := a.AppendCheckpoint(Checkpoint{Block: 4}); err == nil {
		t.Fatal("checkpoint accepted a block going backwards")
	}
}

func TestSelect(t *testing.T) {
	dir := t.TempDir()
	const n = 20 // blocks 1..10, two records per block, attacks at even i
	a := buildArchive(t, dir, n, Options{})
	defer a.Close()

	all, more, err := a.Select(Query{})
	if err != nil || more || len(all) != n {
		t.Fatalf("select all = %d records, more=%v, err=%v", len(all), more, err)
	}
	for i, rec := range all {
		if want := sampleRecord(i); rec.TxHash != want.TxHash {
			t.Fatalf("select order broken at %d", i)
		}
	}

	attacks, _, err := a.Select(Query{Flags: FlagAttack})
	if err != nil || len(attacks) != n/2 {
		t.Fatalf("attack filter = %d, want %d (err=%v)", len(attacks), n/2, err)
	}

	ranged, _, err := a.Select(Query{FromBlock: 3, ToBlock: 4})
	if err != nil || len(ranged) != 4 {
		t.Fatalf("block range = %d records, want 4 (err=%v)", len(ranged), err)
	}
	for _, rec := range ranged {
		if rec.Block < 3 || rec.Block > 4 {
			t.Fatalf("record block %d escaped range [3,4]", rec.Block)
		}
	}

	// Pagination: walk the full set 7 at a time.
	var walked []Record
	var after types.Hash
	for {
		page, more, err := a.Select(Query{After: after, Limit: 7})
		if err != nil {
			t.Fatal(err)
		}
		walked = append(walked, page...)
		if !more {
			break
		}
		after = page[len(page)-1].TxHash
	}
	if len(walked) != n {
		t.Fatalf("pagination walked %d records, want %d", len(walked), n)
	}
	for i := range walked {
		if walked[i].TxHash != all[i].TxHash {
			t.Fatalf("pagination order broken at %d", i)
		}
	}
}

// TestRollbackAbove verifies reorg rollback leaves the on-disk log
// byte-identical to an archive that never saw the removed records.
func TestRollbackAbove(t *testing.T) {
	dirA := t.TempDir()
	const n = 30
	opts := Options{SegmentBytes: 512}
	a := buildArchive(t, dirA, n, opts)

	removed, err := a.RollbackAbove(7)
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if removed == 0 {
		t.Fatal("rollback removed nothing")
	}
	for i := 0; i < n; i++ {
		want := sampleRecord(i)
		_, ok, err := a.Get(want.TxHash)
		if err != nil {
			t.Fatal(err)
		}
		if keep := want.Block <= 7; ok != keep {
			t.Fatalf("record %d (block %d): present=%v want %v", i, want.Block, ok, keep)
		}
	}
	if cp, ok := a.Checkpoint(); !ok || cp.Block != 7 {
		t.Fatalf("checkpoint after rollback = %+v ok=%v, want block 7", cp, ok)
	}
	// Appends continue from the fork.
	rec := sampleRecord(98)
	rec.Block = 8
	if err := a.AppendReport(rec); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if _, err := a.RollbackAbove(7); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: an archive that only ever saw blocks <= 7.
	dirB := t.TempDir()
	b, err := Open(dirB, opts)
	if err != nil {
		t.Fatal(err)
	}
	lastBlock := uint64(0)
	for i := 0; i < n; i++ {
		rec := sampleRecord(i)
		if rec.Block > 7 {
			break
		}
		if rec.Block != lastBlock {
			if lastBlock != 0 {
				if err := b.AppendCheckpoint(sampleCheckpoint(lastBlock)); err != nil {
					t.Fatal(err)
				}
			}
			lastBlock = rec.Block
		}
		if err := b.AppendReport(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AppendCheckpoint(sampleCheckpoint(lastBlock)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, dirA, dirB)
}

// compareDirs asserts two archive directories hold identical files.
func compareDirs(t *testing.T, dirA, dirB string) {
	t.Helper()
	listA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	listB, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(listA) != len(listB) {
		t.Fatalf("directory shapes differ: %d vs %d files", len(listA), len(listB))
	}
	for i := range listA {
		if listA[i].Name() != listB[i].Name() {
			t.Fatalf("file %d: %s vs %s", i, listA[i].Name(), listB[i].Name())
		}
		a, err := os.ReadFile(filepath.Join(dirA, listA[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, listB[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between the archives (%d vs %d bytes)", listA[i].Name(), len(a), len(b))
		}
	}
}

// TestReportCodecRoundTrip stores a real wire-form report and reads it
// back through the core codec.
func TestReportCodecRoundTrip(t *testing.T) {
	want := core.ReportJSON{
		TxHash:        types.HashFromData([]byte("rt")).String(),
		Block:         42,
		Time:          time.Date(2020, 2, 15, 1, 38, 57, 0, time.UTC),
		IsFlashLoanTx: true,
		IsAttack:      true,
		BorrowerTags:  []string{"app:bZx"},
		Matches: []core.MatchJSON{{
			Pattern: "SBS", Target: "WBTC", Counterparty: "Compound",
			Rounds: 1, Trades: 3, VolatilityPct: 132.65,
		}},
	}
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	h := types.HashFromData([]byte("rt"))
	if err := a.AppendReport(&Record{Kind: KindReport, TxHash: h, Block: 42, Flags: FlagFlashLoan | FlagAttack, Report: raw}); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := a.Get(h)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	got, err := core.DecodeReportJSON(rec.Report)
	if err != nil {
		t.Fatalf("decode stored report: %v", err)
	}
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("report mutated through the archive:\n got %+v\nwant %+v", *got, want)
	}
}
