// Record framing for the archive's segment files.
//
// Every record is one frame:
//
//	[4 bytes big-endian payload length][4 bytes CRC32C of payload][payload]
//
// and every payload opens with a one-byte kind:
//
//	KindReport     [32 bytes tx hash][8 bytes block][1 byte flags][report JSON]
//	KindCheckpoint [8 bytes block][32 bytes block digest]
//
// The length prefix bounds the read, the CRC (Castagnoli — the
// hardware-accelerated polynomial storage systems use) detects torn or
// bit-rotted payloads, and the kind byte lets checkpoints ride in the
// same log as reports so one fsync covers both. Decoding never trusts
// the input: lengths are capped, payload structure is re-validated, and
// any violation surfaces as an error rather than a panic — the property
// FuzzSegmentDecode pins down.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"leishen/internal/types"
)

// Kind discriminates the record payloads sharing the log.
type Kind uint8

const (
	// KindReport is one archived detection report.
	KindReport Kind = 1
	// KindCheckpoint marks every block up to and including Block as fully
	// archived; Digest identifies that block for reorg detection.
	KindCheckpoint Kind = 2
)

// Report verdict flags, so range queries filter without parsing JSON.
const (
	// FlagFlashLoan marks a receipt with at least one identified loan.
	FlagFlashLoan uint8 = 1 << 0
	// FlagAttack marks an flpAttack verdict.
	FlagAttack uint8 = 1 << 1
	// FlagSuppressed marks a verdict discarded by the yield-aggregator
	// heuristic.
	FlagSuppressed uint8 = 1 << 2
)

const (
	// frameHeaderSize is the length + CRC prefix.
	frameHeaderSize = 8
	// maxPayloadSize caps one record; a length prefix beyond it is
	// corruption, not a record to allocate.
	maxPayloadSize = 16 << 20
	// reportHeaderSize is the fixed part of a KindReport payload after the
	// kind byte.
	reportHeaderSize = 32 + 8 + 1
	// checkpointSize is a KindCheckpoint payload after the kind byte.
	checkpointSize = 8 + 32
)

// castagnoli is the CRC32C table, shared by encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame distinguishes "this is not (yet) a whole valid record" —
// the torn-tail condition recovery truncates at — from I/O errors.
var errBadFrame = errors.New("bad frame")

// Record is one decoded log entry.
type Record struct {
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind

	// TxHash, Block, Flags and Report are the KindReport fields; Report
	// is the detection report's wire JSON (core.ReportJSON).
	TxHash types.Hash
	Block  uint64
	Flags  uint8
	Report []byte

	// Checkpoint is the KindCheckpoint field (Block doubles as its
	// height).
	Digest types.Hash
}

// appendFrame frames a payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendRecord encodes r as a framed payload onto dst.
func appendRecord(dst []byte, r *Record) ([]byte, error) {
	var payload []byte
	switch r.Kind {
	case KindReport:
		payload = make([]byte, 1+reportHeaderSize, 1+reportHeaderSize+len(r.Report))
		payload[0] = byte(KindReport)
		copy(payload[1:33], r.TxHash[:])
		binary.BigEndian.PutUint64(payload[33:41], r.Block)
		payload[41] = r.Flags
		payload = append(payload, r.Report...)
	case KindCheckpoint:
		payload = make([]byte, 1+checkpointSize)
		payload[0] = byte(KindCheckpoint)
		binary.BigEndian.PutUint64(payload[1:9], r.Block)
		copy(payload[9:41], r.Digest[:])
	default:
		return dst, fmt.Errorf("archive: encode unknown record kind %d", r.Kind)
	}
	if len(payload) > maxPayloadSize {
		return dst, fmt.Errorf("archive: record payload %d bytes exceeds the %d cap", len(payload), maxPayloadSize)
	}
	return appendFrame(dst, payload), nil
}

// decodeRecord parses one frame from the head of b, returning the record
// and the frame's total size. A short, oversized, checksum-failing or
// structurally invalid frame returns an error wrapping errBadFrame; the
// caller decides whether that is a torn tail (truncate) or corruption
// (fail). The record's Report bytes are an independent copy of b's.
func decodeRecord(b []byte) (Record, int, error) {
	rec, n, err := decodeRecordAliased(b)
	if err != nil {
		return Record{}, 0, err
	}
	if rec.Report != nil {
		rec.Report = append([]byte(nil), rec.Report...)
	}
	return rec, n, nil
}

// decodeRecordAliased is decodeRecord without the payload copy: the
// returned Report subslices b. The zero-decode read path uses it to
// serve stored bytes straight out of one read buffer; anything that
// outlives b must copy.
func decodeRecordAliased(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: %d-byte tail is shorter than a frame header", errBadFrame, len(b))
	}
	size := int(binary.BigEndian.Uint32(b[0:4]))
	if size > maxPayloadSize {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds the %d cap", errBadFrame, size, maxPayloadSize)
	}
	if len(b) < frameHeaderSize+size {
		return Record{}, 0, fmt.Errorf("%w: frame wants %d payload bytes, %d available", errBadFrame, size, len(b)-frameHeaderSize)
	}
	payload := b[frameHeaderSize : frameHeaderSize+size]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: CRC32C mismatch (stored %08x, computed %08x)", errBadFrame, want, got)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderSize + size, nil
}

// decodePayload parses a CRC-verified payload.
func decodePayload(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", errBadFrame)
	}
	var rec Record
	rec.Kind = Kind(payload[0])
	body := payload[1:]
	switch rec.Kind {
	case KindReport:
		if len(body) < reportHeaderSize {
			return Record{}, fmt.Errorf("%w: report payload %d bytes, want >= %d", errBadFrame, len(body), reportHeaderSize)
		}
		copy(rec.TxHash[:], body[0:32])
		rec.Block = binary.BigEndian.Uint64(body[32:40])
		rec.Flags = body[40]
		rec.Report = body[reportHeaderSize:]
	case KindCheckpoint:
		if len(body) != checkpointSize {
			return Record{}, fmt.Errorf("%w: checkpoint payload %d bytes, want %d", errBadFrame, len(body), checkpointSize)
		}
		rec.Block = binary.BigEndian.Uint64(body[0:8])
		copy(rec.Digest[:], body[8:40])
	default:
		return Record{}, fmt.Errorf("%w: unknown record kind %d", errBadFrame, rec.Kind)
	}
	return rec, nil
}
