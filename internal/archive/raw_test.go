package archive

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"leishen/internal/types"
)

// TestSelectRawMatchesSelect pins the zero-decode path's contract on
// randomized archives: for any query, SelectRaw returns exactly the
// frames Select decodes — same order, same more flag, and Report bytes
// identical to the stored JSON — on both the pruned and the NoPrune
// path, including a full pagination walk.
func TestSelectRawMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		dir := t.TempDir()
		a, err := Open(dir, Options{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		block := uint64(1)
		n := 40 + rng.Intn(80)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				block += uint64(rng.Intn(4))
			}
			var flags uint8
			switch rng.Intn(4) {
			case 0:
				flags = FlagFlashLoan
			case 1:
				flags = FlagFlashLoan | FlagAttack
			case 2:
				flags = FlagFlashLoan | FlagAttack | FlagSuppressed
			}
			rec := &Record{
				Kind:   KindReport,
				TxHash: types.HashFromData([]byte("raw"), []byte{byte(trial), byte(i), byte(i >> 8)}),
				Block:  block,
				Flags:  flags,
				Report: []byte(fmt.Sprintf(`{"i":%d,"trial":%d}`, i, trial)),
			}
			if err := a.AppendReport(rec); err != nil {
				t.Fatal(err)
			}
			// Interleaved checkpoints give the run coalescer gaps to skip.
			if rng.Intn(8) == 0 {
				if err := a.AppendCheckpoint(Checkpoint{Block: block, Digest: types.HashFromData([]byte{byte(i)})}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}

		for _, noPrune := range []bool{false, true} {
			arc, err := Open(dir, Options{SegmentBytes: 256, NoPrune: noPrune})
			if err != nil {
				t.Fatal(err)
			}
			queries := []Query{
				{},
				{Flags: FlagAttack},
				{Flags: FlagAttack | FlagSuppressed},
				{FromBlock: block / 2},
				{ToBlock: block / 2},
				{FromBlock: block + 10},
				{After: types.HashFromData([]byte("no-such-record"))},
			}
			for q := 0; q < 12; q++ {
				queries = append(queries, Query{
					FromBlock: uint64(rng.Intn(int(block) + 2)),
					ToBlock:   uint64(rng.Intn(int(block) + 2)),
					Flags:     uint8(rng.Intn(2)) * FlagAttack,
					Limit:     rng.Intn(9),
				})
			}
			for qi, q := range queries {
				requireRawMatchesSelect(t, arc, q, fmt.Sprintf("trial %d noPrune %v query %d", trial, noPrune, qi))
			}

			// Pagination walk with a small limit: the raw cursor chain must
			// visit the exact pages the decoded cursor chain visits.
			walk := Query{Flags: FlagFlashLoan, Limit: 3}
			for page := 0; page < 100; page++ {
				raws := requireRawMatchesSelect(t, arc, walk, fmt.Sprintf("trial %d noPrune %v page %d", trial, noPrune, page))
				if len(raws) == 0 {
					break
				}
				walk.After = raws[len(raws)-1].TxHash
			}
			arc.Close()
		}
	}
}

// requireRawMatchesSelect runs q through both read paths and fails the
// test on any divergence, returning the raw page for cursor walks.
func requireRawMatchesSelect(t *testing.T, a *Archive, q Query, ctx string) []RawRecord {
	t.Helper()
	raws, moreR, errR := a.SelectRaw(q)
	recs, moreD, errD := a.Select(q)
	if (errR == nil) != (errD == nil) {
		t.Fatalf("%s: error mismatch: raw %v, decoded %v", ctx, errR, errD)
	}
	if errR != nil {
		return nil
	}
	if moreR != moreD || len(raws) != len(recs) {
		t.Fatalf("%s: raw (%d recs, more=%v) != decoded (%d recs, more=%v)",
			ctx, len(raws), moreR, len(recs), moreD)
	}
	for i := range raws {
		if raws[i].TxHash != recs[i].TxHash || raws[i].Block != recs[i].Block || raws[i].Flags != recs[i].Flags {
			t.Fatalf("%s record %d: metadata mismatch: raw %+v vs decoded %+v", ctx, i, raws[i], recs[i])
		}
		if !bytes.Equal(raws[i].Report, recs[i].Report) {
			t.Fatalf("%s record %d: report bytes differ:\nraw     %q\ndecoded %q", ctx, i, raws[i].Report, recs[i].Report)
		}
	}
	return raws
}

// TestGetRawSharesCacheWithGet pins that the point lookups run on one
// shared raw-bytes cache: a Get primes GetRaw's hit and vice versa, and
// the raw hit serves the stored bytes without a disk read.
func TestGetRawSharesCacheWithGet(t *testing.T) {
	dir := t.TempDir()
	a := buildArchive(t, dir, 30, Options{SegmentBytes: 512, CacheRecords: 8})
	defer a.Close()

	// Miss via Get primes the cache; GetRaw must hit it.
	h := sampleRecord(3).TxHash
	rec, ok, err := a.Get(h)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	raw, ok, err := a.GetRaw(h)
	if err != nil || !ok {
		t.Fatalf("getraw: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(raw.Report, rec.Report) {
		t.Fatalf("raw report %q != decoded report %q", raw.Report, rec.Report)
	}
	if raw.TxHash != rec.TxHash || raw.Block != rec.Block || raw.Flags != rec.Flags {
		t.Fatalf("raw metadata %+v != decoded record %+v", raw, rec)
	}
	st := a.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("want 1 hit / 1 miss across Get+GetRaw, got %d / %d", st.CacheHits, st.CacheMisses)
	}

	// And the symmetric order: GetRaw primes, Get hits.
	h2 := sampleRecord(7).TxHash
	if _, ok, err := a.GetRaw(h2); err != nil || !ok {
		t.Fatalf("getraw miss: ok=%v err=%v", ok, err)
	}
	if _, ok, err := a.Get(h2); err != nil || !ok {
		t.Fatalf("get hit: ok=%v err=%v", ok, err)
	}
	if st := a.Stats(); st.CacheHits != 2 || st.CacheMisses != 2 {
		t.Errorf("want 2 hits / 2 misses, got %d / %d", st.CacheHits, st.CacheMisses)
	}

	// Absent hash: clean miss on both paths.
	if _, ok, _ := a.GetRaw(types.HashFromData([]byte("absent"))); ok {
		t.Error("GetRaw found a record for an absent hash")
	}
}

// TestRawReadRunCoalescing checks that a dense Select issues far fewer
// disk reads than frames fetched — the ReadFrames/ReadRuns ratio is the
// coalescer's whole point — and that a fresh archive reads sealed
// segments through cached handles without error after rollback.
func TestRawReadRunCoalescing(t *testing.T) {
	dir := t.TempDir()
	a := buildArchive(t, dir, 200, Options{SegmentBytes: 2048})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen so every record lives on disk, not in the write buffer.
	a, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	recs, _, err := a.SelectRaw(Query{Flags: FlagFlashLoan})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("select matched nothing")
	}
	st := a.Stats()
	if st.ReadFrames < uint64(len(recs)) {
		t.Fatalf("ReadFrames %d < %d records returned", st.ReadFrames, len(recs))
	}
	if st.ReadRuns == 0 || st.ReadRuns*4 > st.ReadFrames {
		t.Errorf("coalescing ineffective: %d runs for %d frames (want >= 4 frames per run on a dense scan)",
			st.ReadRuns, st.ReadFrames)
	}

	// Rollback truncates history and must drop the cached read handles
	// with it; the next reads reopen them against the rewritten files.
	if _, err := a.RollbackAbove(20); err != nil {
		t.Fatal(err)
	}
	again, _, err := a.SelectRaw(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again {
		if r.Block > 20 {
			t.Fatalf("record from block %d survived RollbackAbove(20)", r.Block)
		}
	}
	if _, _, err := a.GetRaw(sampleRecord(3).TxHash); err != nil {
		t.Fatalf("GetRaw after rollback: %v", err)
	}
}

// TestSelectRawLimitAndCursor pins the pagination contract details the
// serving layer depends on: more is true only when an actual further
// match exists, an exhausted cursor yields an empty page, and an
// unknown cursor is an error on both paths.
func TestSelectRawLimitAndCursor(t *testing.T) {
	dir := t.TempDir()
	a := buildArchive(t, dir, 20, Options{SegmentBytes: 512})
	defer a.Close()

	all, more, err := a.SelectRaw(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if more {
		t.Error("unlimited select reported more=true")
	}
	if len(all) != 20 {
		t.Fatalf("got %d records, want 20", len(all))
	}

	// Exact-limit page: everything returned, nothing more.
	page, more, err := a.SelectRaw(Query{Limit: 20})
	if err != nil || len(page) != 20 || more {
		t.Fatalf("limit=20: %d recs, more=%v, err=%v (want 20, false, nil)", len(page), more, err)
	}
	// After the final record: empty page, more=false — the serving
	// layer's "walked off the end" case.
	tail, more, err := a.SelectRaw(Query{After: all[len(all)-1].TxHash})
	if err != nil || len(tail) != 0 || more {
		t.Fatalf("after last: %d recs, more=%v, err=%v (want 0, false, nil)", len(tail), more, err)
	}
	// Unknown cursor errors identically on both paths.
	bogus := Query{After: types.HashFromData([]byte("never archived"))}
	if _, _, err := a.SelectRaw(bogus); err == nil {
		t.Error("SelectRaw accepted an unknown pagination cursor")
	}
	if _, _, err := a.Select(bogus); err == nil {
		t.Error("Select accepted an unknown pagination cursor")
	}
}
