package archive

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"leishen/internal/types"
	"leishen/internal/vfs"
)

// indexSnapshot captures everything Open builds in memory, so tests can
// assert a sidecar-loaded archive is byte-identical to a replay-built
// one. Stats are deliberately excluded — the two paths differ there by
// construction.
type indexSnapshot struct {
	frames      []frameRef
	segs        []segment // sealed pointer normalized below
	perms       [][]uint32
	bloomBits   [][]uint64
	activeTx    map[types.Hash]int
	reports     int
	lastCP      int
	newestCP    int
	checkpoints []Checkpoint
}

func snapshot(a *Archive) indexSnapshot {
	s := indexSnapshot{
		frames:   append([]frameRef(nil), a.frames...),
		activeTx: make(map[types.Hash]int, len(a.activeTx)),
		reports:  a.reports,
		lastCP:   a.lastCP,
		newestCP: a.newestCP,
	}
	for i := 0; i <= a.lastCP && i < len(a.frames); i++ {
		if a.frames[i].kind == KindCheckpoint {
			s.checkpoints = append(s.checkpoints, Checkpoint{Block: a.frames[i].block, Digest: a.frames[i].digest})
		}
	}
	for h, i := range a.activeTx {
		s.activeTx[h] = i
	}
	for i := range a.segs {
		seg := a.segs[i]
		if seg.sealed != nil {
			// Sidecar loads defer the bloom build to the first lookup;
			// materialize it here so the comparison still proves the
			// sidecar-derived filter equals the replay-built one.
			if !seg.sealed.bloomBuilt {
				a.buildBloomLocked(i)
			}
			s.perms = append(s.perms, append([]uint32(nil), seg.sealed.perm...))
			s.bloomBits = append(s.bloomBits, append([]uint64(nil), seg.sealed.bloom.bits...))
			seg.sealed = nil // normalized: presence captured via perms/bloomBits
		} else {
			s.perms = append(s.perms, nil)
			s.bloomBits = append(s.bloomBits, nil)
		}
		s.segs = append(s.segs, seg)
	}
	return s
}

// openSnapshot opens dir with opts, snapshots the in-memory index, and
// closes again — on a copy when mutate would matter, per the caller.
func openSnapshot(t *testing.T, dir string, opts Options) indexSnapshot {
	t.Helper()
	a, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	a.mu.Lock()
	snap := snapshot(a)
	a.mu.Unlock()
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return snap
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func diffSnapshots(t *testing.T, label string, indexed, replayed indexSnapshot) {
	t.Helper()
	if !reflect.DeepEqual(indexed.frames, replayed.frames) {
		t.Errorf("%s: frameRefs diverge (sidecar %d frames, replay %d)", label, len(indexed.frames), len(replayed.frames))
	}
	if !reflect.DeepEqual(indexed.segs, replayed.segs) {
		t.Errorf("%s: segment metadata diverges:\n sidecar %+v\n replay  %+v", label, indexed.segs, replayed.segs)
	}
	if !reflect.DeepEqual(indexed.perms, replayed.perms) {
		t.Errorf("%s: sealed permutations diverge", label)
	}
	if !reflect.DeepEqual(indexed.bloomBits, replayed.bloomBits) {
		t.Errorf("%s: bloom filters diverge", label)
	}
	if !reflect.DeepEqual(indexed.activeTx, replayed.activeTx) {
		t.Errorf("%s: active tx index diverges (%d vs %d entries)", label, len(indexed.activeTx), len(replayed.activeTx))
	}
	if indexed.reports != replayed.reports {
		t.Errorf("%s: report counts diverge: %d vs %d", label, indexed.reports, replayed.reports)
	}
	if indexed.lastCP != replayed.lastCP || indexed.newestCP != replayed.newestCP {
		t.Errorf("%s: checkpoint cursors diverge: (%d,%d) vs (%d,%d)", label, indexed.lastCP, indexed.newestCP, replayed.lastCP, replayed.newestCP)
	}
	if !reflect.DeepEqual(indexed.checkpoints, replayed.checkpoints) {
		t.Errorf("%s: Checkpoints() diverges", label)
	}
}

// TestSidecarIndexMatchesReplay is the byte-identity proof: for every
// recovery scenario, an Open that loads sealed segments from sidecars
// must build exactly the index a full replay builds — same frameRefs,
// same tx index, same checkpoints, same fences, perms and bloom bits.
func TestSidecarIndexMatchesReplay(t *testing.T) {
	const n = 60
	opts := Options{SegmentBytes: 512}
	build := func(t *testing.T) string {
		dir := t.TempDir()
		a := buildArchive(t, dir, n, opts)
		if a.Segments() < 4 {
			t.Fatalf("want >= 4 segments, got %d", a.Segments())
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	compare := func(t *testing.T, dir string) {
		t.Helper()
		indexed := openSnapshot(t, copyDir(t, dir), opts)
		replayed := openSnapshot(t, copyDir(t, dir), Options{SegmentBytes: opts.SegmentBytes, NoSidecars: true})
		diffSnapshots(t, t.Name(), indexed, replayed)
	}

	t.Run("clean_close", func(t *testing.T) {
		dir := build(t)
		// Every segment — active tail included, thanks to Close — must
		// load from its sidecar.
		a, err := Open(copyDir(t, dir), opts)
		if err != nil {
			t.Fatal(err)
		}
		st := a.Stats()
		if st.OpenReplays != 0 || st.OpenSidecarLoads != st.Segments {
			t.Errorf("clean reopen replayed %d of %d segments (want 0)", st.OpenReplays, st.Segments)
		}
		a.Close()
		compare(t, dir)
	})

	t.Run("torn_tail", func(t *testing.T) {
		dir := build(t)
		// A crash mid-append leaves a partial frame and a stale sidecar
		// on the final segment; both open paths must truncate it away.
		nums, err := listSegments(vfs.OS, dir)
		if err != nil {
			t.Fatal(err)
		}
		last := filepath.Join(dir, fmt.Sprintf("seg-%08d.log", nums[len(nums)-1]))
		torn, err := appendRecord(nil, sampleRecord(n))
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(torn[:len(torn)-3]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		compare(t, dir)
	})

	t.Run("stale_active_sidecar", func(t *testing.T) {
		dir := build(t)
		// Reopen, append more, crash without Close: the tail's sidecar
		// describes the shorter log and must be rejected as stale.
		a, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := n; i < n+6; i++ {
			if err := a.AppendReport(sampleRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Sync(); err != nil {
			t.Fatal(err)
		}
		crashed := copyDir(t, dir) // dir as a crash would leave it
		a.Close()
		ar, err := Open(copyDir(t, crashed), opts)
		if err != nil {
			t.Fatal(err)
		}
		if st := ar.Stats(); st.OpenReplays != 1 {
			t.Errorf("stale tail: want exactly 1 replayed segment, got %d", st.OpenReplays)
		}
		ar.Close()
		indexed := openSnapshot(t, copyDir(t, crashed), opts)
		replayed := openSnapshot(t, copyDir(t, crashed), Options{SegmentBytes: opts.SegmentBytes, NoSidecars: true})
		diffSnapshots(t, t.Name(), indexed, replayed)
	})

	t.Run("corrupt_sidecar", func(t *testing.T) {
		dir := build(t)
		nums, err := listSegments(vfs.OS, dir)
		if err != nil {
			t.Fatal(err)
		}
		idx := filepath.Join(dir, fmt.Sprintf("seg-%08d.idx", nums[0]))
		data, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(idx, data, 0o644); err != nil {
			t.Fatal(err)
		}
		work := copyDir(t, dir)
		a, err := Open(work, opts)
		if err != nil {
			t.Fatal(err)
		}
		if st := a.Stats(); st.OpenReplays != 1 {
			t.Errorf("corrupt sidecar: want 1 replayed segment, got %d", st.OpenReplays)
		}
		a.Close()
		// The fallback replay must also have rewritten a valid sidecar.
		fixed, err := os.ReadFile(filepath.Join(work, fmt.Sprintf("seg-%08d.idx", nums[0])))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeSidecar(fixed); err != nil {
			t.Errorf("rewritten sidecar does not decode: %v", err)
		}
		compare(t, dir)
	})

	t.Run("rollback", func(t *testing.T) {
		dir := build(t)
		a, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.RollbackAbove(uint64(n / 4)); err != nil {
			t.Fatal(err)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		compare(t, dir)
	})
}

// TestSelectPrunedMatchesLinear holds the fence/bloom-pruned Select to
// the linear reference path on randomized archives: every query —
// including full pagination walks via After — must return identical
// records and identical more flags.
func TestSelectPrunedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4; trial++ {
		dir := t.TempDir()
		a, err := Open(dir, Options{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		block := uint64(1)
		n := 40 + rng.Intn(80)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				block += uint64(rng.Intn(4))
			}
			var flags uint8
			switch rng.Intn(4) {
			case 0:
				flags = FlagFlashLoan
			case 1:
				flags = FlagFlashLoan | FlagAttack
			case 2:
				flags = FlagFlashLoan | FlagAttack | FlagSuppressed
			}
			rec := &Record{
				Kind:   KindReport,
				TxHash: types.HashFromData([]byte("sel"), []byte{byte(trial), byte(i), byte(i >> 8)}),
				Block:  block,
				Flags:  flags,
				Report: []byte(fmt.Sprintf(`{"i":%d}`, i)),
			}
			if err := a.AppendReport(rec); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(8) == 0 {
				if err := a.AppendCheckpoint(Checkpoint{Block: block, Digest: types.HashFromData([]byte{byte(i)})}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}

		pruned, err := Open(copyDir(t, dir), Options{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		linear, err := Open(copyDir(t, dir), Options{SegmentBytes: 256, NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}

		queries := []Query{
			{},
			{Flags: FlagAttack},
			{Flags: FlagAttack | FlagSuppressed},
			{FromBlock: block / 2},
			{ToBlock: block / 2},
			{FromBlock: block + 10},
		}
		for q := 0; q < 12; q++ {
			queries = append(queries, Query{
				FromBlock: uint64(rng.Intn(int(block) + 2)),
				ToBlock:   uint64(rng.Intn(int(block) + 2)),
				Flags:     uint8(rng.Intn(2)) * FlagAttack,
				Limit:     rng.Intn(9),
			})
		}
		for qi, q := range queries {
			gotP, moreP, errP := pruned.Select(q)
			gotL, moreL, errL := linear.Select(q)
			if (errP == nil) != (errL == nil) {
				t.Fatalf("trial %d query %d: error mismatch: pruned %v, linear %v", trial, qi, errP, errL)
			}
			if moreP != moreL || !reflect.DeepEqual(gotP, gotL) {
				t.Fatalf("trial %d query %d %+v: pruned (%d recs, more=%v) != linear (%d recs, more=%v)",
					trial, qi, q, len(gotP), moreP, len(gotL), moreL)
			}
		}

		// Pagination walk: page through everything with a small limit and
		// check the two paths visit identical pages.
		walk := Query{Flags: FlagFlashLoan, Limit: 3}
		for page := 0; page < 100; page++ {
			gotP, moreP, errP := pruned.Select(walk)
			gotL, moreL, errL := linear.Select(walk)
			if errP != nil || errL != nil {
				t.Fatalf("trial %d page %d: pruned err %v, linear err %v", trial, page, errP, errL)
			}
			if moreP != moreL || !reflect.DeepEqual(gotP, gotL) {
				t.Fatalf("trial %d page %d: pagination diverges", trial, page)
			}
			if !moreP {
				break
			}
			walk.After = gotP[len(gotP)-1].TxHash
		}
		if st := pruned.Stats(); st.SelectSegmentsPruned == 0 {
			t.Errorf("trial %d: pruned path never skipped a segment across %d queries", trial, len(queries))
		}
		pruned.Close()
		linear.Close()
	}
}

// TestGetRecordCache pins the read-through cache's contract: hits are
// counted and served without disk reads, returned records never alias
// cache memory, rollback invalidates wholesale, and the cache respects
// its bound.
func TestGetRecordCache(t *testing.T) {
	dir := t.TempDir()
	a := buildArchive(t, dir, 30, Options{SegmentBytes: 512, CacheRecords: 4})
	defer a.Close()

	h := sampleRecord(3).TxHash
	rec1, ok, err := a.Get(h)
	if err != nil || !ok {
		t.Fatalf("get miss: ok=%v err=%v", ok, err)
	}
	rec2, ok, err := a.Get(h)
	if err != nil || !ok {
		t.Fatalf("get hit: ok=%v err=%v", ok, err)
	}
	st := a.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("want 1 hit / 1 miss, got %d / %d", st.CacheHits, st.CacheMisses)
	}

	// Mutating a returned record must not poison the cache.
	for i := range rec2.Report {
		rec2.Report[i] = 'X'
	}
	rec3, _, err := a.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec3.Report, rec1.Report) {
		t.Errorf("cache returned mutated bytes: %q", rec3.Report)
	}

	// The bound holds however many distinct hashes flow through.
	for i := 0; i < 20; i++ {
		if _, _, err := a.Get(sampleRecord(i).TxHash); err != nil {
			t.Fatal(err)
		}
	}
	if st := a.Stats(); st.CacheRecords > 4 {
		t.Errorf("cache holds %d records, bound is 4", st.CacheRecords)
	}

	// Rollback rewrites history: the cache must empty.
	if _, err := a.RollbackAbove(5); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.CacheRecords != 0 {
		t.Errorf("cache holds %d records after rollback, want 0", st.CacheRecords)
	}
}

// TestGetLatestDuplicateWins archives the same tx hash in two different
// segments and checks lookups — which now probe sealed segments newest
// first — still return the latest copy, matching the old single-map
// semantics.
func TestGetLatestDuplicateWins(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	h := types.HashFromData([]byte("dup"))
	for i := 0; i < 12; i++ {
		rec := sampleRecord(i)
		if i == 1 || i == 11 {
			rec.TxHash = h
			rec.Report = []byte(fmt.Sprintf(`{"copy":%d}`, i))
		}
		if err := a.AppendReport(rec); err != nil {
			t.Fatal(err)
		}
	}
	if a.Segments() < 2 {
		t.Fatalf("want rotation, got %d segments", a.Segments())
	}
	rec, ok, err := a.Get(h)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if string(rec.Report) != `{"copy":11}` {
		t.Errorf("want the latest duplicate, got %s", rec.Report)
	}
}

// TestDeferredCheckpointObservability pins the group-commit durability
// contract at the archive layer: a checkpoint appended deferred is
// invisible to Checkpoint/Checkpoints until a Sync promotes it.
func TestDeferredCheckpointObservability(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.AppendReport(sampleRecord(0)); err != nil {
		t.Fatal(err)
	}
	cp := sampleCheckpoint(1)
	if err := a.AppendCheckpointDeferred(cp); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Checkpoint(); ok {
		t.Fatalf("deferred checkpoint observable before sync: %+v", got)
	}
	if cps := a.Checkpoints(); len(cps) != 0 {
		t.Fatalf("Checkpoints() returned %d before sync", len(cps))
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Checkpoint()
	if !ok || got != cp {
		t.Fatalf("after sync: got %+v ok=%v, want %+v", got, ok, cp)
	}
	if cps := a.Checkpoints(); len(cps) != 1 || cps[0] != cp {
		t.Fatalf("Checkpoints() after sync: %+v", cps)
	}
}

// FuzzSidecarDecode throws arbitrary bytes at the sidecar decoder — the
// code Open trusts to shortcut replay — and pins down the property that
// makes sidecars safe as a cache: every input either fails validation
// with errBadSidecar or decodes to an index whose re-encoding
// reproduces the input byte for byte. There is no third outcome in
// which corrupt bytes yield a plausible-but-wrong index.
func FuzzSidecarDecode(f *testing.F) {
	frames := []frameRef{
		{kind: KindReport, block: 3, flags: FlagFlashLoan, txHash: types.HashFromData([]byte("a")), size: 60},
		{kind: KindReport, block: 3, flags: FlagFlashLoan | FlagAttack, txHash: types.HashFromData([]byte("b")), size: 61},
		{kind: KindCheckpoint, block: 3, digest: types.HashFromData([]byte("blk")), size: checkpointFrame},
		{kind: KindReport, block: 5, flags: FlagFlashLoan, txHash: types.HashFromData([]byte("a")), size: 62},
	}
	var segSize int64
	for i := range frames {
		segSize += frames[i].size
	}
	valid := encodeSidecar(buildSidecar(frames, segSize, 0xdeadbeef, buildPerm(frames)))
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add(valid[2:])
	mutated := append([]byte(nil), valid...)
	mutated[sidecarHeaderSize+3] ^= 0x80
	f.Add(mutated)
	empty := encodeSidecar(buildSidecar(nil, 0, 0, nil))
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("LSIX"))
	f.Add(bytes.Repeat([]byte{0x00}, sidecarHeaderSize+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := decodeSidecar(data)
		if err != nil {
			if !errors.Is(err, errBadSidecar) {
				t.Fatalf("decode error outside errBadSidecar: %v", err)
			}
			return
		}
		enc := encodeSidecar(sc)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, enc)
		}
		// The decoder promised internal consistency: spot-check the two
		// invariants lookups rely on.
		var sum int64
		for i := range sc.entries {
			sum += sc.entries[i].size
		}
		if sum != sc.segSize {
			t.Fatalf("accepted sidecar whose sizes sum to %d, not %d", sum, sc.segSize)
		}
		for i := 1; i < len(sc.perm); i++ {
			a, b := sc.perm[i-1], sc.perm[i]
			if bytes.Compare(sc.entries[a].txHash[:], sc.entries[b].txHash[:]) > 0 {
				t.Fatal("accepted sidecar with unsorted perm")
			}
		}
	})
}
