// Package dex implements the decentralized-exchange substrate: Uniswap
// V2-style constant-product pairs with flash swaps, a pair factory and
// router, Balancer-style weighted pools, Curve-style stableswap pools, and
// a fee-taking trade aggregator.
//
// These are the venues the 22 real-world flpAttacks manipulated, and the
// venues the wild-corpus simulator populates. Pool pricing is exact
// integer math on uint256 values so attack profits and the paper's
// volatility numbers are reproducible bit-for-bit.
package dex

import (
	"fmt"

	"leishen/internal/uint256"
)

// FeeBps is the default swap fee of a constant-product pair, 0.3%.
const FeeBps = 30

const bpsDenom = 10_000

// GetAmountOut computes the constant-product swap output for a given
// input, reserves and fee in basis points:
//
//	out = (in * (1-fee) * reserveOut) / (reserveIn + in * (1-fee))
func GetAmountOut(amountIn, reserveIn, reserveOut uint256.Int, feeBps uint64) (uint256.Int, error) {
	if amountIn.IsZero() {
		return uint256.Int{}, fmt.Errorf("dex: zero input amount")
	}
	if reserveIn.IsZero() || reserveOut.IsZero() {
		return uint256.Int{}, fmt.Errorf("dex: empty reserves")
	}
	inWithFee, err := amountIn.MulUint64(bpsDenom - feeBps)
	if err != nil {
		return uint256.Int{}, fmt.Errorf("dex: amount in: %w", err)
	}
	denom, err := reserveIn.MulUint64(bpsDenom)
	if err != nil {
		return uint256.Int{}, fmt.Errorf("dex: reserve in: %w", err)
	}
	denom, err = denom.Add(inWithFee)
	if err != nil {
		return uint256.Int{}, fmt.Errorf("dex: denom: %w", err)
	}
	return inWithFee.MulDiv(reserveOut, denom)
}

// GetAmountIn computes the input required to receive amountOut from a
// constant-product pool (inverse of GetAmountOut, rounded up).
func GetAmountIn(amountOut, reserveIn, reserveOut uint256.Int, feeBps uint64) (uint256.Int, error) {
	if amountOut.IsZero() {
		return uint256.Int{}, fmt.Errorf("dex: zero output amount")
	}
	if amountOut.Gte(reserveOut) {
		return uint256.Int{}, fmt.Errorf("dex: output %s exceeds reserve %s", amountOut, reserveOut)
	}
	num, err := reserveIn.Mul(amountOut)
	if err != nil {
		return uint256.Int{}, fmt.Errorf("dex: numerator: %w", err)
	}
	num, err = num.MulUint64(bpsDenom)
	if err != nil {
		return uint256.Int{}, fmt.Errorf("dex: numerator: %w", err)
	}
	den := reserveOut.MustSub(amountOut)
	den, err = den.MulUint64(bpsDenom - feeBps)
	if err != nil {
		return uint256.Int{}, fmt.Errorf("dex: denominator: %w", err)
	}
	q := num.MustDiv(den)
	return q.MustAdd(uint256.One()), nil
}

// Quote returns the proportional amount of token B matching amountA at the
// current reserve ratio (used when adding liquidity).
func Quote(amountA, reserveA, reserveB uint256.Int) (uint256.Int, error) {
	if reserveA.IsZero() {
		return uint256.Int{}, fmt.Errorf("dex: empty reserve")
	}
	return amountA.MulDiv(reserveB, reserveA)
}

// fixed-point base for weighted-pool math: 18 decimals.
var fpOne = uint256.MustExp10(18)

// fpMul multiplies two 18-decimal fixed-point numbers.
func fpMul(a, b uint256.Int) (uint256.Int, error) { return a.MulDiv(b, fpOne) }

// fpDiv divides two 18-decimal fixed-point numbers.
func fpDiv(a, b uint256.Int) (uint256.Int, error) { return a.MulDiv(fpOne, b) }

// fpPowFrac raises an 18-decimal fixed-point base in [0, 1] to the
// rational power p/q (p, q small positive integers): base^(p/q).
func fpPowFrac(base uint256.Int, p, q uint64) (uint256.Int, error) {
	if q == 0 {
		return uint256.Int{}, fmt.Errorf("dex: zero root")
	}
	if base.Gt(fpOne) {
		return uint256.Int{}, fmt.Errorf("dex: fpPowFrac base %s > 1", base)
	}
	// base^p, staying in fixed point.
	num := fpOne
	for i := uint64(0); i < p; i++ {
		var err error
		num, err = fpMul(num, base)
		if err != nil {
			return uint256.Int{}, err
		}
	}
	if q == 1 {
		return num, nil
	}
	// q-th root in fixed point: y = root_q(num * one^(q-1)).
	scaled := num
	for i := uint64(1); i < q; i++ {
		var err error
		scaled, err = scaled.Mul(fpOne)
		if err != nil {
			return uint256.Int{}, fmt.Errorf("dex: root scale overflow (q=%d): %w", q, err)
		}
	}
	return nthRoot(scaled, q), nil
}

// nthRoot returns floor(x^(1/n)) by Newton iteration.
func nthRoot(x uint256.Int, n uint64) uint256.Int {
	if n == 1 || x.IsZero() {
		return x
	}
	if n == 2 {
		return x.Sqrt()
	}
	// Initial guess from bit length: 2^ceil(bits/n) >= x^(1/n).
	bitsGuess := (uint(x.BitLen()) + uint(n) - 1) / uint(n)
	y := uint256.One().Lsh(bitsGuess)
	for iter := 0; iter < 512; iter++ {
		// y' = ((n-1)*y + x / y^(n-1)) / n
		pw := uint256.One()
		overflow := false
		for i := uint64(1); i < n; i++ {
			var err error
			pw, err = pw.Mul(y)
			if err != nil {
				overflow = true
				break
			}
		}
		var t uint256.Int
		if !overflow {
			t = x.MustDiv(pw)
		}
		yn := y.MustMul(uint256.FromUint64(n - 1)).MustAdd(t).MustDiv(uint256.FromUint64(n))
		if yn.Gte(y) {
			break
		}
		y = yn
	}
	// Newton can land within one of the true floor; correct exactly.
	pow := func(v uint256.Int) (uint256.Int, bool) {
		pw := uint256.One()
		for i := uint64(0); i < n; i++ {
			var err error
			pw, err = pw.Mul(v)
			if err != nil {
				return uint256.Int{}, false
			}
		}
		return pw, true
	}
	for {
		pw, ok := pow(y)
		if ok && pw.Lte(x) {
			break
		}
		y = y.MustSub(uint256.One())
	}
	for {
		next := y.MustAdd(uint256.One())
		pw, ok := pow(next)
		if !ok || pw.Gt(x) {
			return y
		}
		y = next
	}
}
