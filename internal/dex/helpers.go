package dex

import (
	"fmt"

	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// DeployPair creates a standalone pair (no factory), registers its LP
// token, and returns the pair address. label tags the pair's application.
func DeployPair(ch *evm.Chain, reg *token.Registry, deployer types.Address, a, b types.Token, label string) (types.Address, error) {
	t0, t1 := SortTokens(a, b)
	addr, err := ch.Deploy(deployer, &Pair{Token0: t0, Token1: t1, EmitTradeEvents: true}, label)
	if err != nil {
		return types.Address{}, err
	}
	if err := registerLPToken(ch, reg, addr, "lpToken"); err != nil {
		return types.Address{}, err
	}
	return addr, nil
}

// registerLPToken resolves a pool's LP token address via the given view
// method and registers its metadata.
func registerLPToken(ch *evm.Chain, reg *token.Registry, pool types.Address, method string) error {
	lpAddr, err := evm.Ret0[types.Address](ch.View(pool, method))
	if err != nil {
		return fmt.Errorf("resolve LP token: %w", err)
	}
	// LP tokens are deployed with 18 decimals; symbol is embedded in the
	// contract object, which we cannot reach from outside, so synthesize.
	reg.Register(types.Token{Address: lpAddr, Symbol: "LP-" + pool.Short(), Decimals: 18})
	return nil
}

// RegisterLPTokenAs registers a pool's LP token under an explicit symbol
// (e.g. "BPT", "3Crv", "fUSDC").
func RegisterLPTokenAs(ch *evm.Chain, reg *token.Registry, pool types.Address, method, symbol string) (types.Token, error) {
	lpAddr, err := evm.Ret0[types.Address](ch.View(pool, method))
	if err != nil {
		return types.Token{}, fmt.Errorf("resolve LP token: %w", err)
	}
	t := types.Token{Address: lpAddr, Symbol: symbol, Decimals: 18}
	reg.Register(t)
	return t, nil
}

// AddLiquidity seeds a pair directly: transfers both amounts from the
// funder (who must hold them) and mints LP to the funder.
func AddLiquidity(ch *evm.Chain, pair types.Address, funder types.Address, a types.Token, amtA uint256.Int, b types.Token, amtB uint256.Int) error {
	if r := ch.Send(funder, a.Address, "transfer", pair, amtA); !r.Success {
		return fmt.Errorf("transfer %s: %s", a.Symbol, r.Err)
	}
	if r := ch.Send(funder, b.Address, "transfer", pair, amtB); !r.Success {
		return fmt.Errorf("transfer %s: %s", b.Symbol, r.Err)
	}
	if r := ch.Send(funder, pair, "mint", funder); !r.Success {
		return fmt.Errorf("mint LP: %s", r.Err)
	}
	return nil
}

// MustAddLiquidity is AddLiquidity, panicking on failure.
func MustAddLiquidity(ch *evm.Chain, pair types.Address, funder types.Address, a types.Token, amtA uint256.Int, b types.Token, amtB uint256.Int) {
	if err := AddLiquidity(ch, pair, funder, a, amtA, b, amtB); err != nil {
		panic(err)
	}
}

// Reserves reads a pair's reserves oriented as (reserve of tok, reserve of
// the other token).
func Reserves(ch *evm.Chain, pair types.Address, tok, other types.Token) (uint256.Int, uint256.Int, error) {
	ret, err := ch.View(pair, "getReserves")
	if err != nil {
		return uint256.Int{}, uint256.Int{}, err
	}
	r0 := ret[0].(uint256.Int)
	r1 := ret[1].(uint256.Int)
	t0, _ := SortTokens(tok, other)
	if tok.Address == t0.Address {
		return r0, r1, nil
	}
	return r1, r0, nil
}

// SwapExactIn performs a taker swap directly against a pair from an EOA or
// contract that already holds tokenIn: transfer in, then swap out.
func SwapExactIn(ch *evm.Chain, pair types.Address, trader types.Address, tokenIn, tokenOut types.Token, amountIn uint256.Int) (uint256.Int, error) {
	reserveIn, reserveOut, err := Reserves(ch, pair, tokenIn, tokenOut)
	if err != nil {
		return uint256.Int{}, err
	}
	out, err := GetAmountOut(amountIn, reserveIn, reserveOut, FeeBps)
	if err != nil {
		return uint256.Int{}, err
	}
	if r := ch.Send(trader, tokenIn.Address, "transfer", pair, amountIn); !r.Success {
		return uint256.Int{}, fmt.Errorf("transfer in: %s", r.Err)
	}
	t0, _ := SortTokens(tokenIn, tokenOut)
	out0, out1 := out, uint256.Zero()
	if tokenIn.Address == t0.Address {
		out0, out1 = uint256.Zero(), out
	}
	if r := ch.Send(trader, pair, "swap", out0, out1, trader, ""); !r.Success {
		return uint256.Int{}, fmt.Errorf("swap: %s", r.Err)
	}
	return out, nil
}
