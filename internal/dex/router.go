package dex

import (
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Router is the user-facing entry point over a Factory's pairs, mirroring
// Uniswap's periphery router: it pulls input tokens from the caller,
// routes them through one or more pairs, and enforces slippage bounds.
type Router struct {
	// Factory is the pair index this router serves.
	Factory types.Address
}

var _ evm.Contract = (*Router)(nil)

// Call dispatches router methods.
func (r *Router) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "swapExactTokensForTokens":
		return r.swapExact(env, args)
	case "addLiquidity":
		return r.addLiquidity(env, args)
	case "removeLiquidity":
		return r.removeLiquidity(env, args)
	default:
		return nil, evm.Revertf("router: unknown method %q", method)
	}
}

func (r *Router) pairFor(env *evm.Env, a, b types.Token) (types.Address, error) {
	addr, err := evm.Ret0[types.Address](env.Call(r.Factory, "getPair", uint256.Zero(), a.Address, b.Address))
	if err != nil {
		return types.Address{}, err
	}
	if addr.IsZero() {
		return types.Address{}, evm.Revertf("router: no pair for %s/%s", a.Symbol, b.Symbol)
	}
	return addr, nil
}

// swapExact implements swapExactTokensForTokens(amountIn, amountOutMin,
// path []types.Token, to).
func (r *Router) swapExact(env *evm.Env, args []any) ([]any, error) {
	amountIn, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	amountOutMin, err := evm.AmountArg(args, 1)
	if err != nil {
		return nil, err
	}
	path, err := evm.Arg[[]types.Token](args, 2)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 3)
	if err != nil {
		return nil, err
	}
	if len(path) < 2 {
		return nil, evm.Revertf("router: path too short")
	}
	// Pull the input into the first pair.
	firstPair, err := r.pairFor(env, path[0], path[1])
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(path[0].Address, "transferFrom", uint256.Zero(), env.Caller(), firstPair, amountIn); err != nil {
		return nil, err
	}
	amt := amountIn
	for i := 0; i+1 < len(path); i++ {
		in, out := path[i], path[i+1]
		pair, err := r.pairFor(env, in, out)
		if err != nil {
			return nil, err
		}
		t0, _ := SortTokens(in, out)
		ret, err := env.Call(pair, "getReserves", uint256.Zero())
		if err != nil {
			return nil, err
		}
		r0, r1 := ret[0].(uint256.Int), ret[1].(uint256.Int)
		reserveIn, reserveOut := r0, r1
		if in.Address != t0.Address {
			reserveIn, reserveOut = r1, r0
		}
		feeBps := uint64(FeeBps)
		amountOut, err := GetAmountOut(amt, reserveIn, reserveOut, feeBps)
		if err != nil {
			return nil, evm.Revertf("router: %v", err)
		}
		out0, out1 := amountOut, uint256.Zero()
		if in.Address == t0.Address {
			out0, out1 = uint256.Zero(), amountOut
		}
		// Route intermediate hops directly into the next pair.
		recipient := to
		if i+2 < len(path) {
			recipient, err = r.pairFor(env, path[i+1], path[i+2])
			if err != nil {
				return nil, err
			}
		}
		if _, err := env.Call(pair, "swap", uint256.Zero(), out0, out1, recipient, ""); err != nil {
			return nil, err
		}
		amt = amountOut
	}
	if amt.Lt(amountOutMin) {
		return nil, evm.Revertf("router: insufficient output %s < %s", amt, amountOutMin)
	}
	return []any{amt}, nil
}

// addLiquidity implements addLiquidity(tokenA, tokenB, amountA, amountB, to).
// Amounts are deposited as given; the first deposit fixes the price.
func (r *Router) addLiquidity(env *evm.Env, args []any) ([]any, error) {
	ta, err := evm.Arg[types.Token](args, 0)
	if err != nil {
		return nil, err
	}
	tb, err := evm.Arg[types.Token](args, 1)
	if err != nil {
		return nil, err
	}
	amtA, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	amtB, err := evm.AmountArg(args, 3)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 4)
	if err != nil {
		return nil, err
	}
	pair, err := r.pairFor(env, ta, tb)
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(ta.Address, "transferFrom", uint256.Zero(), env.Caller(), pair, amtA); err != nil {
		return nil, err
	}
	if _, err := env.Call(tb.Address, "transferFrom", uint256.Zero(), env.Caller(), pair, amtB); err != nil {
		return nil, err
	}
	liq, err := evm.Ret0[uint256.Int](env.Call(pair, "mint", uint256.Zero(), to))
	if err != nil {
		return nil, err
	}
	return []any{liq}, nil
}

// removeLiquidity implements removeLiquidity(tokenA, tokenB, liquidity, to).
func (r *Router) removeLiquidity(env *evm.Env, args []any) ([]any, error) {
	ta, err := evm.Arg[types.Token](args, 0)
	if err != nil {
		return nil, err
	}
	tb, err := evm.Arg[types.Token](args, 1)
	if err != nil {
		return nil, err
	}
	liquidity, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 3)
	if err != nil {
		return nil, err
	}
	pair, err := r.pairFor(env, ta, tb)
	if err != nil {
		return nil, err
	}
	lp, err := evm.Ret0[types.Address](env.Call(pair, "lpToken", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(lp, "transferFrom", uint256.Zero(), env.Caller(), pair, liquidity); err != nil {
		return nil, err
	}
	ret, err := env.Call(pair, "burn", uint256.Zero(), to)
	if err != nil {
		return nil, err
	}
	return ret, nil
}
