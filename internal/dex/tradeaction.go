package dex

import (
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// TradeActionEvent is the normalized trade event some venues emit,
// modeling the "transaction action" rows explorers like Etherscan derive
// from well-known event signatures. The Explorer+LeiShen baseline of paper
// Table IV consumes only these events — which is exactly why it misses
// attacks routed through venues that emit none.
//
// Schema: Addrs = [buyer, tokenSell, tokenBuy] (zero address denotes
// native ETH), Amounts = [amountSell, amountBuy].
const TradeActionEvent = "TradeAction"

// EmitTradeAction emits a normalized trade action log from the executing
// contract.
func EmitTradeAction(env *evm.Env, buyer types.Address, tokenSell types.Address, amountSell uint256.Int, tokenBuy types.Address, amountBuy uint256.Int) {
	env.EmitLog(TradeActionEvent,
		[]types.Address{buyer, tokenSell, tokenBuy},
		[]uint256.Int{amountSell, amountBuy})
}
