package dex

import (
	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// StableSwapPool is a Curve-style pool for assets that should trade near
// parity. It implements the StableSwap invariant
//
//	A·n^n·ΣX_i + D = A·D·n^n + D^(n+1) / (n^n·∏X_i)
//
// with Newton iteration for D and for the post-trade balance y. The
// near-flat curve is why attacks against stable pools show tiny price
// volatility (0.5% in Harvest Finance), which the paper highlights as the
// reason volatility-threshold detectors miss them.
type StableSwapPool struct {
	// Tokens are the pooled assets (2 or 3 supported).
	Tokens []types.Token
	// Amp is the amplification coefficient A (e.g. 100).
	Amp uint64
	// FeeBps is the swap fee in basis points.
	FeeBps uint64
	// EmitTradeEvents controls TokenExchange event emission.
	EmitTradeEvents bool
	// LPSymbol names the pool's LP token (e.g. "3Crv").
	LPSymbol string
}

var _ evm.Contract = (*StableSwapPool)(nil)
var _ evm.Initializer = (*StableSwapPool)(nil)

const keySSLP = "sslp"

// Init validates configuration and deploys the LP token.
func (s *StableSwapPool) Init(env *evm.Env) error {
	if len(s.Tokens) < 2 || len(s.Tokens) > 3 {
		return evm.Revertf("stableswap: want 2 or 3 tokens")
	}
	if s.Amp == 0 {
		return evm.Revertf("stableswap: zero amplification")
	}
	sym := s.LPSymbol
	if sym == "" {
		sym = "crvLP"
	}
	lp, err := env.Create(&token.ERC20{Meta: types.Token{Symbol: sym, Decimals: 18}}, "")
	if err != nil {
		return err
	}
	env.SSetAddr(keySSLP, lp)
	return nil
}

func (s *StableSwapPool) indexOf(addr types.Address) int {
	for i, t := range s.Tokens {
		if t.Address == addr {
			return i
		}
	}
	return -1
}

// norm scales a raw balance to 18-decimal precision so mixed-decimal pools
// (USDC 6 / DAI 18) share one invariant.
func (s *StableSwapPool) norm(i int, v uint256.Int) uint256.Int {
	return v.MustMul(uint256.MustExp10(18 - uint(s.Tokens[i].Decimals)))
}

// denorm converts an 18-decimal value back to token i's base units.
func (s *StableSwapPool) denorm(i int, v uint256.Int) uint256.Int {
	return v.MustDiv(uint256.MustExp10(18 - uint(s.Tokens[i].Decimals)))
}

func (s *StableSwapPool) balances(env *evm.Env) []uint256.Int {
	out := make([]uint256.Int, len(s.Tokens))
	for i := range s.Tokens {
		out[i] = env.SGet(balanceKey(i))
	}
	return out
}

func (s *StableSwapPool) normBalances(env *evm.Env) []uint256.Int {
	out := s.balances(env)
	for i := range out {
		out[i] = s.norm(i, out[i])
	}
	return out
}

// Call dispatches stableswap methods.
func (s *StableSwapPool) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "lpToken":
		return []any{env.SGetAddr(keySSLP)}, nil
	case "getBalance":
		addr, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		i := s.indexOf(addr)
		if i < 0 {
			return nil, evm.Revertf("stableswap: unknown token")
		}
		return []any{env.SGet(balanceKey(i))}, nil
	case "getVirtualPrice":
		return s.virtualPrice(env)
	case "addLiquidity":
		return s.addLiquidity(env, args)
	case "removeLiquidity":
		return s.removeLiquidity(env, args)
	case "exchange":
		return s.exchange(env, args)
	case "getDy":
		return s.getDy(env, args)
	default:
		return nil, evm.Revertf("stableswap: unknown method %q", method)
	}
}

// computeD solves the StableSwap invariant for D by Newton iteration.
func computeD(xs []uint256.Int, amp uint64) (uint256.Int, error) {
	n := uint64(len(xs))
	sum := uint256.Zero()
	for _, x := range xs {
		var err error
		sum, err = sum.Add(x)
		if err != nil {
			return uint256.Int{}, err
		}
	}
	if sum.IsZero() {
		return uint256.Zero(), nil
	}
	d := sum
	ann := amp
	for i := uint64(0); i < n; i++ {
		ann *= n
	}
	for iter := 0; iter < 255; iter++ {
		// dP = D^(n+1) / (n^n * prod(x))
		dp := d
		for _, x := range xs {
			den, err := x.MulUint64(n)
			if err != nil {
				return uint256.Int{}, err
			}
			if den.IsZero() {
				return uint256.Int{}, evm.Revertf("stableswap: empty balance")
			}
			dp, err = dp.MulDiv(d, den)
			if err != nil {
				return uint256.Int{}, err
			}
		}
		prev := d
		// d = (ann*sum + dp*n) * d / ((ann-1)*d + (n+1)*dp)
		num1, err := sum.MulUint64(ann)
		if err != nil {
			return uint256.Int{}, err
		}
		num2, err := dp.MulUint64(n)
		if err != nil {
			return uint256.Int{}, err
		}
		num, err := num1.Add(num2)
		if err != nil {
			return uint256.Int{}, err
		}
		den1, err := d.MulUint64(ann - 1)
		if err != nil {
			return uint256.Int{}, err
		}
		den2, err := dp.MulUint64(n + 1)
		if err != nil {
			return uint256.Int{}, err
		}
		den, err := den1.Add(den2)
		if err != nil {
			return uint256.Int{}, err
		}
		d, err = num.MulDiv(d, den)
		if err != nil {
			return uint256.Int{}, err
		}
		if d.AbsDiff(prev).Lte(uint256.One()) {
			return d, nil
		}
	}
	return d, nil
}

// computeY solves for the post-trade balance of token j given the new
// balance of token i, holding D constant.
func computeY(xs []uint256.Int, i, j int, newXi uint256.Int, amp uint64) (uint256.Int, error) {
	n := uint64(len(xs))
	d, err := computeD(xs, amp)
	if err != nil {
		return uint256.Int{}, err
	}
	ann := amp
	for k := uint64(0); k < n; k++ {
		ann *= n
	}
	// c = D^(n+1) / (n^n * prod(x'_k, k != j) * ann), built incrementally.
	c := d
	sum := uint256.Zero()
	for k := range xs {
		if k == j {
			continue
		}
		xk := xs[k]
		if k == i {
			xk = newXi
		}
		sum, err = sum.Add(xk)
		if err != nil {
			return uint256.Int{}, err
		}
		den, err := xk.MulUint64(n)
		if err != nil {
			return uint256.Int{}, err
		}
		if den.IsZero() {
			return uint256.Int{}, evm.Revertf("stableswap: empty balance")
		}
		c, err = c.MulDiv(d, den)
		if err != nil {
			return uint256.Int{}, err
		}
	}
	c, err = c.MulDiv(d, uint256.FromUint64(ann*n))
	if err != nil {
		return uint256.Int{}, err
	}
	// b = sum + D/ann (the -D term folds into the iteration below).
	b, err := sum.Add(d.MustDiv(uint256.FromUint64(ann)))
	if err != nil {
		return uint256.Int{}, err
	}
	y := d
	for iter := 0; iter < 255; iter++ {
		prev := y
		ysq, err := y.Mul(y)
		if err != nil {
			return uint256.Int{}, err
		}
		num, err := ysq.Add(c)
		if err != nil {
			return uint256.Int{}, err
		}
		den, err := y.MulUint64(2)
		if err != nil {
			return uint256.Int{}, err
		}
		den, err = den.Add(b)
		if err != nil {
			return uint256.Int{}, err
		}
		den = den.SaturatingSub(d)
		if den.IsZero() {
			return uint256.Int{}, evm.Revertf("stableswap: degenerate y iteration")
		}
		y = num.MustDiv(den)
		if y.AbsDiff(prev).Lte(uint256.One()) {
			return y, nil
		}
	}
	return y, nil
}

// getDy quotes exchange output: getDy(tokenIn, tokenOut, dx).
func (s *StableSwapPool) getDy(env *evm.Env, args []any) ([]any, error) {
	tokenIn, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	tokenOut, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	dx, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	i, j := s.indexOf(tokenIn), s.indexOf(tokenOut)
	if i < 0 || j < 0 || i == j {
		return nil, evm.Revertf("getDy: bad pair")
	}
	dy, err := s.quote(env, i, j, dx)
	if err != nil {
		return nil, err
	}
	return []any{dy}, nil
}

func (s *StableSwapPool) quote(env *evm.Env, i, j int, dx uint256.Int) (uint256.Int, error) {
	xs := s.normBalances(env)
	newXi, err := xs[i].Add(s.norm(i, dx))
	if err != nil {
		return uint256.Int{}, err
	}
	y, err := computeY(xs, i, j, newXi, s.Amp)
	if err != nil {
		return uint256.Int{}, err
	}
	dyNorm := xs[j].SaturatingSub(y)
	// Round down one unit for iteration error, then charge the fee.
	dyNorm = dyNorm.SaturatingSub(uint256.One())
	fee := dyNorm.MustMul(uint256.FromUint64(s.FeeBps)).MustDiv(uint256.FromUint64(bpsDenom))
	return s.denorm(j, dyNorm.MustSub(fee)), nil
}

// exchange implements exchange(tokenIn, tokenOut, dx, minDy, to).
func (s *StableSwapPool) exchange(env *evm.Env, args []any) ([]any, error) {
	tokenIn, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	tokenOut, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	dx, err := evm.AmountArg(args, 2)
	if err != nil {
		return nil, err
	}
	minDy, err := evm.AmountArg(args, 3)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 4)
	if err != nil {
		return nil, err
	}
	i, j := s.indexOf(tokenIn), s.indexOf(tokenOut)
	if i < 0 || j < 0 || i == j {
		return nil, evm.Revertf("exchange: bad pair")
	}
	dy, err := s.quote(env, i, j, dx)
	if err != nil {
		return nil, err
	}
	if dy.Lt(minDy) {
		return nil, evm.Revertf("exchange: output %s below min %s", dy, minDy)
	}
	if _, err := env.Call(tokenIn, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), dx); err != nil {
		return nil, err
	}
	if _, err := env.Call(tokenOut, "transfer", uint256.Zero(), to, dy); err != nil {
		return nil, err
	}
	env.SSet(balanceKey(i), env.SGet(balanceKey(i)).MustAdd(dx))
	env.SSet(balanceKey(j), env.SGet(balanceKey(j)).MustSub(dy))
	if s.EmitTradeEvents {
		env.EmitLog("TokenExchange", []types.Address{env.Caller(), tokenIn, tokenOut}, []uint256.Int{dx, dy})
		EmitTradeAction(env, to, tokenIn, dx, tokenOut, dy)
	}
	return []any{dy}, nil
}

// addLiquidity implements addLiquidity(amounts []uint256.Int, to): LP
// minted proportionally to the D increase.
func (s *StableSwapPool) addLiquidity(env *evm.Env, args []any) ([]any, error) {
	amounts, err := evm.Arg[[]uint256.Int](args, 0)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	if len(amounts) != len(s.Tokens) {
		return nil, evm.Revertf("addLiquidity: want %d amounts", len(s.Tokens))
	}
	xs := s.normBalances(env)
	d0 := uint256.Zero()
	if !allZero(xs) {
		if d0, err = computeD(xs, s.Amp); err != nil {
			return nil, err
		}
	}
	for i, t := range s.Tokens {
		if amounts[i].IsZero() {
			continue
		}
		if _, err := env.Call(t.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amounts[i]); err != nil {
			return nil, err
		}
		env.SSet(balanceKey(i), env.SGet(balanceKey(i)).MustAdd(amounts[i]))
	}
	d1, err := computeD(s.normBalances(env), s.Amp)
	if err != nil {
		return nil, err
	}
	lp := env.SGetAddr(keySSLP)
	supply, err := evm.Ret0[uint256.Int](env.Call(lp, "totalSupply", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	var minted uint256.Int
	if supply.IsZero() {
		minted = d1
	} else {
		if d0.IsZero() {
			return nil, evm.Revertf("addLiquidity: zero D with live supply")
		}
		minted, err = supply.MulDiv(d1.MustSub(d0), d0)
		if err != nil {
			return nil, err
		}
	}
	if _, err := env.Call(lp, "mint", uint256.Zero(), to, minted); err != nil {
		return nil, err
	}
	return []any{minted}, nil
}

// removeLiquidity implements removeLiquidity(shares, to): proportional
// withdrawal of all pool tokens.
func (s *StableSwapPool) removeLiquidity(env *evm.Env, args []any) ([]any, error) {
	shares, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	lp := env.SGetAddr(keySSLP)
	supply, err := evm.Ret0[uint256.Int](env.Call(lp, "totalSupply", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	if supply.IsZero() || shares.Gt(supply) {
		return nil, evm.Revertf("removeLiquidity: bad share amount")
	}
	if _, err := env.Call(lp, "burn", uint256.Zero(), env.Caller(), shares); err != nil {
		return nil, err
	}
	outs := make([]uint256.Int, len(s.Tokens))
	for i, t := range s.Tokens {
		bal := env.SGet(balanceKey(i))
		out, err := shares.MulDiv(bal, supply)
		if err != nil {
			return nil, err
		}
		outs[i] = out
		if out.IsZero() {
			continue
		}
		env.SSet(balanceKey(i), bal.MustSub(out))
		if _, err := env.Call(t.Address, "transfer", uint256.Zero(), to, out); err != nil {
			return nil, err
		}
	}
	return []any{outs}, nil
}

// virtualPrice returns D / totalSupply in 18-decimal fixed point, the
// oracle many vault protocols price LP tokens with.
func (s *StableSwapPool) virtualPrice(env *evm.Env) ([]any, error) {
	d, err := computeD(s.normBalances(env), s.Amp)
	if err != nil {
		return nil, err
	}
	lp := env.SGetAddr(keySSLP)
	supply, err := evm.Ret0[uint256.Int](env.Call(lp, "totalSupply", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	if supply.IsZero() {
		return []any{uint256.Zero()}, nil
	}
	vp, err := d.MulDiv(fpOne, supply)
	if err != nil {
		return nil, err
	}
	return []any{vp}, nil
}

func allZero(xs []uint256.Int) bool {
	for _, x := range xs {
		if !x.IsZero() {
			return false
		}
	}
	return true
}
