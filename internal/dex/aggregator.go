package dex

import (
	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Aggregator is a Kyber/1inch-style trade aggregator: it forwards the
// user's input token to the venue with the best rate and routes the output
// back, charging a small forwarding fee. Both legs move the *same* token
// and amount (minus <0.1% fee) through an intermediary, which is exactly
// the shape the paper's "merge inter-app transfers" simplification rule
// collapses to reveal the true counterparties.
type Aggregator struct {
	// FeeBps is the forwarding fee in basis points; must stay below 10
	// (0.1%) or merged-transfer detection would legitimately fail.
	FeeBps uint64
}

var _ evm.Contract = (*Aggregator)(nil)

// Call dispatches aggregator methods.
func (a *Aggregator) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "swapViaPair":
		return a.swapViaPair(env, args)
	case "sellTargetViaDesk":
		return a.sellTargetViaDesk(env, args)
	default:
		return nil, evm.Revertf("aggregator: unknown method %q", method)
	}
}

// sellTargetViaDesk implements sellTargetViaDesk(desk, target, base,
// amount): pulls the target token from the caller, sells it to an
// OracleDesk-style venue, and forwards the base proceeds back — inserting
// the aggregator as the account-level counterparty on both legs.
func (a *Aggregator) sellTargetViaDesk(env *evm.Env, args []any) ([]any, error) {
	desk, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	target, err := evm.Arg[types.Token](args, 1)
	if err != nil {
		return nil, err
	}
	base, err := evm.Arg[types.Token](args, 2)
	if err != nil {
		return nil, err
	}
	amountIn, err := evm.AmountArg(args, 3)
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(target.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amountIn); err != nil {
		return nil, err
	}
	fee := amountIn.MustMul(uint256.FromUint64(a.FeeBps)).MustDiv(uint256.FromUint64(bpsDenom))
	fwd := amountIn.MustSub(fee)
	if _, err := env.Call(target.Address, "approve", uint256.Zero(), desk, fwd); err != nil {
		return nil, err
	}
	out, err := evm.Ret0[uint256.Int](env.Call(desk, "sellTarget", uint256.Zero(), fwd))
	if err != nil {
		return nil, err
	}
	if _, err := env.Call(base.Address, "transfer", uint256.Zero(), env.Caller(), out); err != nil {
		return nil, err
	}
	return []any{out}, nil
}

// swapViaPair implements swapViaPair(pair, tokenIn, tokenOut, amountIn,
// minOut): pulls amountIn of tokenIn from the caller, forwards it (minus
// fee) to the chosen constant-product pair, swaps, and forwards the
// output back to the caller.
func (a *Aggregator) swapViaPair(env *evm.Env, args []any) ([]any, error) {
	pair, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	tokenIn, err := evm.Arg[types.Token](args, 1)
	if err != nil {
		return nil, err
	}
	tokenOut, err := evm.Arg[types.Token](args, 2)
	if err != nil {
		return nil, err
	}
	amountIn, err := evm.AmountArg(args, 3)
	if err != nil {
		return nil, err
	}
	minOut, err := evm.AmountArg(args, 4)
	if err != nil {
		return nil, err
	}

	// Leg 1: caller -> aggregator (full amount).
	if _, err := env.Call(tokenIn.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amountIn); err != nil {
		return nil, err
	}
	// Forward amount minus the aggregator fee.
	fee := amountIn.MustMul(uint256.FromUint64(a.FeeBps)).MustDiv(uint256.FromUint64(bpsDenom))
	fwd := amountIn.MustSub(fee)

	// Leg 2: aggregator -> pair (same token, ~same amount).
	if _, err := env.Call(tokenIn.Address, "transfer", uint256.Zero(), pair, fwd); err != nil {
		return nil, err
	}
	// Compute and execute the swap with output to the aggregator.
	ret, err := env.Call(pair, "getReserves", uint256.Zero())
	if err != nil {
		return nil, err
	}
	r0, r1 := ret[0].(uint256.Int), ret[1].(uint256.Int)
	t0, _ := SortTokens(tokenIn, tokenOut)
	reserveIn, reserveOut := r0, r1
	if tokenIn.Address != t0.Address {
		reserveIn, reserveOut = r1, r0
	}
	// The pair already received fwd; reserves are pre-transfer values.
	out, err := GetAmountOut(fwd, reserveIn, reserveOut, FeeBps)
	if err != nil {
		return nil, evm.Revertf("aggregator: %v", err)
	}
	out0, out1 := out, uint256.Zero()
	if tokenIn.Address == t0.Address {
		out0, out1 = uint256.Zero(), out
	}
	if _, err := env.Call(pair, "swap", uint256.Zero(), out0, out1, env.Self(), ""); err != nil {
		return nil, err
	}

	// Leg 3: aggregator -> caller (same output token and amount).
	if out.Lt(minOut) {
		return nil, evm.Revertf("aggregator: output %s below min %s", out, minOut)
	}
	if _, err := env.Call(tokenOut.Address, "transfer", uint256.Zero(), env.Caller(), out); err != nil {
		return nil, err
	}
	return []any{out}, nil
}
