package dex

import (
	"bytes"

	"leishen/internal/evm"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// SortTokens orders two tokens by address, V2's canonical pair order.
func SortTokens(a, b types.Token) (types.Token, types.Token) {
	if bytes.Compare(a.Address[:], b.Address[:]) < 0 {
		return a, b
	}
	return b, a
}

func pairKey(a, b types.Address) string {
	if bytes.Compare(a[:], b[:]) > 0 {
		a, b = b, a
	}
	return "pair:" + a.String() + ":" + b.String()
}

// Factory creates and indexes constant-product pairs. Pairs are created as
// child contracts, so the tagging layer attributes every pool to the
// factory's application — the paper's "Uniswap: Factory Contract created
// 427 liquidity pools" observation.
type Factory struct {
	// EmitTradeEvents is inherited by created pairs.
	EmitTradeEvents bool
	// FeeBps is inherited by created pairs (0 means the 0.3% default).
	FeeBps uint64
}

var _ evm.Contract = (*Factory)(nil)

// Call dispatches factory methods.
func (f *Factory) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "createPair":
		ta, err := evm.Arg[types.Token](args, 0)
		if err != nil {
			return nil, err
		}
		tb, err := evm.Arg[types.Token](args, 1)
		if err != nil {
			return nil, err
		}
		if ta.Address == tb.Address {
			return nil, evm.Revertf("createPair: identical tokens")
		}
		if !env.SGetAddr(pairKey(ta.Address, tb.Address)).IsZero() {
			return nil, evm.Revertf("createPair: pair exists")
		}
		t0, t1 := SortTokens(ta, tb)
		pair, err := env.Create(&Pair{
			Token0:          t0,
			Token1:          t1,
			FeeBps:          f.FeeBps,
			EmitTradeEvents: f.EmitTradeEvents,
		}, "")
		if err != nil {
			return nil, err
		}
		env.SSetAddr(pairKey(ta.Address, tb.Address), pair)
		n := env.SGet("pairCount").MustAdd(uint256.One())
		env.SSet("pairCount", n)
		env.EmitLog("PairCreated", []types.Address{t0.Address, t1.Address, pair}, nil)
		return []any{pair}, nil
	case "getPair":
		ta, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		tb, err := evm.AddrArg(args, 1)
		if err != nil {
			return nil, err
		}
		return []any{env.SGetAddr(pairKey(ta, tb))}, nil
	case "pairCount":
		return []any{env.SGet("pairCount")}, nil
	default:
		return nil, evm.Revertf("factory: unknown method %q", method)
	}
}
