package dex

import (
	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// WeightedPool is a Balancer-style multi-token pool whose spot prices
// follow the weighted constant product invariant V = ∏ B_i^{w_i}.
//
// Swap output uses Balancer's closed form
//
//	out = B_out * (1 - (B_in / (B_in + in*(1-fee)))^(w_in/w_out))
//
// computed in 18-decimal fixed point. Weight ratios must reduce to small
// rationals (p, q <= 8), which covers the canonical 50/50, 80/20 and
// 75/25 deployments the attacks in the paper exploited.
type WeightedPool struct {
	// Tokens are the pooled assets.
	Tokens []types.Token
	// Weights are the integer pool weights, parallel to Tokens.
	Weights []uint64
	// SwapFeeBps is the swap fee in basis points.
	SwapFeeBps uint64
	// EmitTradeEvents controls Swap/Join/Exit event emission.
	EmitTradeEvents bool
	// BPTSymbol names the pool share token (Balancer Pool Token).
	BPTSymbol string
}

var _ evm.Contract = (*WeightedPool)(nil)
var _ evm.Initializer = (*WeightedPool)(nil)

const keyBPT = "bpt"

// Init validates configuration and deploys the pool share token.
func (w *WeightedPool) Init(env *evm.Env) error {
	if len(w.Tokens) < 2 || len(w.Tokens) != len(w.Weights) {
		return evm.Revertf("weighted pool: bad token/weight config")
	}
	sym := w.BPTSymbol
	if sym == "" {
		sym = "BPT"
	}
	bpt, err := env.Create(&token.ERC20{Meta: types.Token{Symbol: sym, Decimals: 18}}, "")
	if err != nil {
		return err
	}
	env.SSetAddr(keyBPT, bpt)
	return nil
}

func (w *WeightedPool) indexOf(addr types.Address) int {
	for i, t := range w.Tokens {
		if t.Address == addr {
			return i
		}
	}
	return -1
}

func balanceKey(i int) string { return "poolBal:" + w3itoa(i) }

func w3itoa(i int) string {
	// Tiny positive-int formatter avoiding fmt on the hot path.
	if i == 0 {
		return "0"
	}
	var buf [4]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// Call dispatches weighted-pool methods.
func (w *WeightedPool) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "bpt":
		return []any{env.SGetAddr(keyBPT)}, nil
	case "getBalance":
		addr, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		i := w.indexOf(addr)
		if i < 0 {
			return nil, evm.Revertf("weighted pool: unknown token")
		}
		return []any{env.SGet(balanceKey(i))}, nil
	case "joinPool":
		return w.join(env, args)
	case "exitPool":
		return w.exit(env, args)
	case "swapExactAmountIn":
		return w.swapIn(env, args)
	case "getSpotPrice":
		return w.spotPrice(env, args)
	default:
		return nil, evm.Revertf("weighted pool: unknown method %q", method)
	}
}

// join implements joinPool(amounts []uint256.Int, to): deposits amounts of
// every pool token (pulled from caller) and mints shares proportional to
// the first token's deposit (initial join mints 100e18 shares).
func (w *WeightedPool) join(env *evm.Env, args []any) ([]any, error) {
	amounts, err := evm.Arg[[]uint256.Int](args, 0)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	if len(amounts) != len(w.Tokens) {
		return nil, evm.Revertf("joinPool: want %d amounts", len(w.Tokens))
	}
	bpt := env.SGetAddr(keyBPT)
	supply, err := evm.Ret0[uint256.Int](env.Call(bpt, "totalSupply", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	var shares uint256.Int
	if supply.IsZero() {
		shares = uint256.MustFromUnits("100", 18)
	} else {
		// Proportional join priced off token 0.
		b0 := env.SGet(balanceKey(0))
		if b0.IsZero() {
			return nil, evm.Revertf("joinPool: empty pool balance")
		}
		shares, err = amounts[0].MulDiv(supply, b0)
		if err != nil {
			return nil, evm.Revertf("joinPool: %v", err)
		}
	}
	for i, t := range w.Tokens {
		if amounts[i].IsZero() {
			continue
		}
		if _, err := env.Call(t.Address, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amounts[i]); err != nil {
			return nil, err
		}
		env.SSet(balanceKey(i), env.SGet(balanceKey(i)).MustAdd(amounts[i]))
	}
	if _, err := env.Call(bpt, "mint", uint256.Zero(), to, shares); err != nil {
		return nil, err
	}
	if w.EmitTradeEvents {
		env.EmitLog("Join", []types.Address{env.Caller(), to}, append(append([]uint256.Int{}, amounts...), shares))
	}
	return []any{shares}, nil
}

// exit implements exitPool(shares, to): burns the caller's shares and pays
// out the proportional amount of every pool token.
func (w *WeightedPool) exit(env *evm.Env, args []any) ([]any, error) {
	shares, err := evm.AmountArg(args, 0)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	bpt := env.SGetAddr(keyBPT)
	supply, err := evm.Ret0[uint256.Int](env.Call(bpt, "totalSupply", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	if supply.IsZero() || shares.Gt(supply) {
		return nil, evm.Revertf("exitPool: bad share amount")
	}
	if _, err := env.Call(bpt, "burn", uint256.Zero(), env.Caller(), shares); err != nil {
		return nil, err
	}
	outs := make([]uint256.Int, len(w.Tokens))
	for i, t := range w.Tokens {
		bal := env.SGet(balanceKey(i))
		out, err := shares.MulDiv(bal, supply)
		if err != nil {
			return nil, evm.Revertf("exitPool: %v", err)
		}
		outs[i] = out
		if out.IsZero() {
			continue
		}
		env.SSet(balanceKey(i), bal.MustSub(out))
		if _, err := env.Call(t.Address, "transfer", uint256.Zero(), to, out); err != nil {
			return nil, err
		}
	}
	if w.EmitTradeEvents {
		env.EmitLog("Exit", []types.Address{env.Caller(), to}, append(append([]uint256.Int{}, outs...), shares))
	}
	return []any{outs}, nil
}

// swapIn implements swapExactAmountIn(tokenIn, amountIn, tokenOut,
// minOut, to) with Balancer's out-given-in formula.
func (w *WeightedPool) swapIn(env *evm.Env, args []any) ([]any, error) {
	tokenIn, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	amountIn, err := evm.AmountArg(args, 1)
	if err != nil {
		return nil, err
	}
	tokenOut, err := evm.AddrArg(args, 2)
	if err != nil {
		return nil, err
	}
	minOut, err := evm.AmountArg(args, 3)
	if err != nil {
		return nil, err
	}
	to, err := evm.AddrArg(args, 4)
	if err != nil {
		return nil, err
	}
	i, o := w.indexOf(tokenIn), w.indexOf(tokenOut)
	if i < 0 || o < 0 || i == o {
		return nil, evm.Revertf("swap: bad token pair")
	}
	bIn, bOut := env.SGet(balanceKey(i)), env.SGet(balanceKey(o))
	out, err := WeightedOutGivenIn(bIn, w.Weights[i], bOut, w.Weights[o], amountIn, w.SwapFeeBps)
	if err != nil {
		return nil, evm.Revertf("swap: %v", err)
	}
	if out.Lt(minOut) {
		return nil, evm.Revertf("swap: output %s below min %s", out, minOut)
	}
	if _, err := env.Call(tokenIn, "transferFrom", uint256.Zero(), env.Caller(), env.Self(), amountIn); err != nil {
		return nil, err
	}
	if _, err := env.Call(tokenOut, "transfer", uint256.Zero(), to, out); err != nil {
		return nil, err
	}
	env.SSet(balanceKey(i), bIn.MustAdd(amountIn))
	env.SSet(balanceKey(o), bOut.MustSub(out))
	if w.EmitTradeEvents {
		env.EmitLog("Swap", []types.Address{env.Caller(), tokenIn, tokenOut}, []uint256.Int{amountIn, out})
		EmitTradeAction(env, to, tokenIn, amountIn, tokenOut, out)
	}
	return []any{out}, nil
}

// spotPrice implements getSpotPrice(tokenIn, tokenOut): the marginal price
// (B_in / w_in) / (B_out / w_out) in 18-decimal fixed point. Lending
// platforms use this as their price oracle.
func (w *WeightedPool) spotPrice(env *evm.Env, args []any) ([]any, error) {
	tokenIn, err := evm.AddrArg(args, 0)
	if err != nil {
		return nil, err
	}
	tokenOut, err := evm.AddrArg(args, 1)
	if err != nil {
		return nil, err
	}
	i, o := w.indexOf(tokenIn), w.indexOf(tokenOut)
	if i < 0 || o < 0 {
		return nil, evm.Revertf("spotPrice: unknown token")
	}
	bIn, bOut := env.SGet(balanceKey(i)), env.SGet(balanceKey(o))
	if bOut.IsZero() {
		return nil, evm.Revertf("spotPrice: empty out balance")
	}
	numer, err := bIn.MulDiv(fpOne, uint256.FromUint64(w.Weights[i]))
	if err != nil {
		return nil, evm.Revertf("spotPrice: %v", err)
	}
	denom := bOut.MustDiv(uint256.FromUint64(w.Weights[o]))
	if denom.IsZero() {
		return nil, evm.Revertf("spotPrice: degenerate denom")
	}
	price := numer.MustDiv(denom)
	return []any{price}, nil
}

// WeightedOutGivenIn is Balancer's closed-form swap output.
func WeightedOutGivenIn(balIn uint256.Int, wIn uint64, balOut uint256.Int, wOut uint64, amountIn uint256.Int, feeBps uint64) (uint256.Int, error) {
	if balIn.IsZero() || balOut.IsZero() {
		return uint256.Int{}, evm.Revertf("empty pool balances")
	}
	inAfterFee, err := amountIn.MulUint64(bpsDenom - feeBps)
	if err != nil {
		return uint256.Int{}, err
	}
	inAfterFee = inAfterFee.MustDiv(uint256.FromUint64(bpsDenom))
	newIn, err := balIn.Add(inAfterFee)
	if err != nil {
		return uint256.Int{}, err
	}
	// ratio = balIn / newIn, in [0, 1] fixed point.
	ratio, err := fpDiv(balIn, newIn)
	if err != nil {
		return uint256.Int{}, err
	}
	p, q := reduceRatio(wIn, wOut)
	if p > 8 || q > 8 {
		return uint256.Int{}, evm.Revertf("unsupported weight ratio %d/%d", p, q)
	}
	powed, err := fpPowFrac(ratio, p, q)
	if err != nil {
		return uint256.Int{}, err
	}
	frac := fpOne.SaturatingSub(powed)
	return balOut.MulDiv(frac, fpOne)
}

func reduceRatio(a, b uint64) (uint64, uint64) {
	g := gcd(a, b)
	return a / g, b / g
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
