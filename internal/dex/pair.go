package dex

import (
	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

// Pair storage keys.
const (
	keyReserve0 = "reserve0"
	keyReserve1 = "reserve1"
	keyLPToken  = "lpToken"
	// Cumulative-price accumulators for TWAP oracles (V2's
	// price{0,1}CumulativeLast) and the last update timestamp.
	keyCum0   = "priceCum0"
	keyCum1   = "priceCum1"
	keyLastTs = "lastTs"
)

// Pair is a Uniswap V2-style constant-product liquidity pool for two
// tokens. It follows V2's low-level protocol exactly:
//
//   - mint/burn operate on tokens already transferred to the pair;
//   - swap optimistically transfers outputs, optionally invokes the
//     recipient's uniswapV2Call callback (the flash swap / flash loan
//     mechanism of paper Table II), then enforces the fee-adjusted
//     constant-product invariant on the resulting balances.
type Pair struct {
	// Token0 and Token1 are the pooled assets, sorted by address.
	Token0, Token1 types.Token
	// FeeBps is the swap fee in basis points (30 = 0.3%).
	FeeBps uint64
	// EmitTradeEvents controls whether Swap/Mint/Burn event logs are
	// emitted. Real V2 pairs emit them; the Explorer baseline consumes
	// them (apps that emit none are invisible to it).
	EmitTradeEvents bool
	// LPSymbol names the liquidity-provider token.
	LPSymbol string
}

var _ evm.Contract = (*Pair)(nil)
var _ evm.Initializer = (*Pair)(nil)

// Init deploys the pair's LP token as a child contract, so the creation
// forest ties the LP token to the pair's application.
func (p *Pair) Init(env *evm.Env) error {
	sym := p.LPSymbol
	if sym == "" {
		sym = p.Token0.Symbol + "-" + p.Token1.Symbol + "-LP"
	}
	lp, err := env.Create(&token.ERC20{Meta: types.Token{Symbol: sym, Decimals: 18}}, "")
	if err != nil {
		return err
	}
	env.SSetAddr(keyLPToken, lp)
	return nil
}

// LPToken returns the pair's LP token address from chain state.
func (p *Pair) lpToken(env *evm.Env) types.Address { return env.SGetAddr(keyLPToken) }

func (p *Pair) reserves(env *evm.Env) (uint256.Int, uint256.Int) {
	return env.SGet(keyReserve0), env.SGet(keyReserve1)
}

func (p *Pair) balanceOf(env *evm.Env, tok types.Token) (uint256.Int, error) {
	return evm.Ret0[uint256.Int](env.Call(tok.Address, "balanceOf", uint256.Zero(), env.Self()))
}

func (p *Pair) update(env *evm.Env, b0, b1 uint256.Int) {
	// Accrue the cumulative prices over the elapsed wall time before the
	// reserves change — the mechanism TWAP oracles read. Within one block
	// (and thus within one transaction) no time elapses, which is exactly
	// why a TWAP cannot be moved by a flash loan.
	now := uint64(env.Block().Time.Unix())
	last := env.SGet(keyLastTs).Uint64()
	r0, r1 := env.SGet(keyReserve0), env.SGet(keyReserve1)
	if last != 0 && now > last && !r0.IsZero() && !r1.IsZero() {
		elapsed := uint256.FromUint64(now - last)
		fp := uint256.MustExp10(18)
		// price0 = r1/r0 (token0 priced in token1), accumulated * seconds.
		p0 := r1.MustMulDiv(fp, r0).MustMul(elapsed)
		p1 := r0.MustMulDiv(fp, r1).MustMul(elapsed)
		env.SSet(keyCum0, env.SGet(keyCum0).WrappingAdd(p0))
		env.SSet(keyCum1, env.SGet(keyCum1).WrappingAdd(p1))
	}
	env.SSet(keyLastTs, uint256.FromUint64(now))
	env.SSet(keyReserve0, b0)
	env.SSet(keyReserve1, b1)
}

// Call dispatches pair methods.
func (p *Pair) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "getReserves":
		r0, r1 := p.reserves(env)
		return []any{r0, r1}, nil
	case "observe":
		// observe() -> (priceCum0, priceCum1, lastTimestamp): the reading
		// a TWAP consumer snapshots.
		return []any{env.SGet(keyCum0), env.SGet(keyCum1), env.SGet(keyLastTs)}, nil
	case "lpToken":
		return []any{p.lpToken(env)}, nil
	case "mint":
		to, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		return p.mint(env, to)
	case "burn":
		to, err := evm.AddrArg(args, 0)
		if err != nil {
			return nil, err
		}
		return p.burn(env, to)
	case "swap":
		amount0Out, err := evm.AmountArg(args, 0)
		if err != nil {
			return nil, err
		}
		amount1Out, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		to, err := evm.AddrArg(args, 2)
		if err != nil {
			return nil, err
		}
		data := ""
		if len(args) > 3 {
			if data, err = evm.Arg[string](args, 3); err != nil {
				return nil, err
			}
		}
		return nil, p.swap(env, amount0Out, amount1Out, to, data)
	case "sync":
		b0, err := p.balanceOf(env, p.Token0)
		if err != nil {
			return nil, err
		}
		b1, err := p.balanceOf(env, p.Token1)
		if err != nil {
			return nil, err
		}
		p.update(env, b0, b1)
		return nil, nil
	default:
		return nil, evm.Revertf("pair: unknown method %q", method)
	}
}

// mint issues LP tokens for the assets transferred to the pair since the
// last reserve update.
func (p *Pair) mint(env *evm.Env, to types.Address) ([]any, error) {
	r0, r1 := p.reserves(env)
	b0, err := p.balanceOf(env, p.Token0)
	if err != nil {
		return nil, err
	}
	b1, err := p.balanceOf(env, p.Token1)
	if err != nil {
		return nil, err
	}
	a0, err := b0.Sub(r0)
	if err != nil {
		return nil, evm.Revertf("mint: reserve0 exceeds balance")
	}
	a1, err := b1.Sub(r1)
	if err != nil {
		return nil, evm.Revertf("mint: reserve1 exceeds balance")
	}
	lp := p.lpToken(env)
	supply, err := evm.Ret0[uint256.Int](env.Call(lp, "totalSupply", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	var liquidity uint256.Int
	if supply.IsZero() {
		prod, err := a0.Mul(a1)
		if err != nil {
			return nil, evm.Revertf("mint: %v", err)
		}
		liquidity = prod.Sqrt()
	} else {
		l0, err := a0.MulDiv(supply, r0)
		if err != nil {
			return nil, evm.Revertf("mint: %v", err)
		}
		l1, err := a1.MulDiv(supply, r1)
		if err != nil {
			return nil, evm.Revertf("mint: %v", err)
		}
		liquidity = l0
		if l1.Lt(l0) {
			liquidity = l1
		}
	}
	if liquidity.IsZero() {
		return nil, evm.Revertf("mint: insufficient liquidity minted")
	}
	if _, err := env.Call(lp, "mint", uint256.Zero(), to, liquidity); err != nil {
		return nil, err
	}
	p.update(env, b0, b1)
	if p.EmitTradeEvents {
		env.EmitLog("Mint", []types.Address{env.Caller(), to}, []uint256.Int{a0, a1, liquidity})
	}
	return []any{liquidity}, nil
}

// burn redeems LP tokens previously transferred to the pair for the
// proportional share of both reserves.
func (p *Pair) burn(env *evm.Env, to types.Address) ([]any, error) {
	lp := p.lpToken(env)
	liquidity, err := evm.Ret0[uint256.Int](env.Call(lp, "balanceOf", uint256.Zero(), env.Self()))
	if err != nil {
		return nil, err
	}
	if liquidity.IsZero() {
		return nil, evm.Revertf("burn: no liquidity sent")
	}
	supply, err := evm.Ret0[uint256.Int](env.Call(lp, "totalSupply", uint256.Zero()))
	if err != nil {
		return nil, err
	}
	b0, err := p.balanceOf(env, p.Token0)
	if err != nil {
		return nil, err
	}
	b1, err := p.balanceOf(env, p.Token1)
	if err != nil {
		return nil, err
	}
	a0, err := liquidity.MulDiv(b0, supply)
	if err != nil {
		return nil, evm.Revertf("burn: %v", err)
	}
	a1, err := liquidity.MulDiv(b1, supply)
	if err != nil {
		return nil, evm.Revertf("burn: %v", err)
	}
	if a0.IsZero() && a1.IsZero() {
		return nil, evm.Revertf("burn: insufficient liquidity burned")
	}
	if _, err := env.Call(lp, "burn", uint256.Zero(), env.Self(), liquidity); err != nil {
		return nil, err
	}
	if _, err := env.Call(p.Token0.Address, "transfer", uint256.Zero(), to, a0); err != nil {
		return nil, err
	}
	if _, err := env.Call(p.Token1.Address, "transfer", uint256.Zero(), to, a1); err != nil {
		return nil, err
	}
	nb0, err := p.balanceOf(env, p.Token0)
	if err != nil {
		return nil, err
	}
	nb1, err := p.balanceOf(env, p.Token1)
	if err != nil {
		return nil, err
	}
	p.update(env, nb0, nb1)
	if p.EmitTradeEvents {
		env.EmitLog("Burn", []types.Address{env.Caller(), to}, []uint256.Int{a0, a1, liquidity})
	}
	return []any{a0, a1}, nil
}

// swap is V2's low-level swap: optimistic transfer out, optional flash
// callback, then the fee-adjusted K invariant check on actual balances.
func (p *Pair) swap(env *evm.Env, amount0Out, amount1Out uint256.Int, to types.Address, data string) error {
	if amount0Out.IsZero() && amount1Out.IsZero() {
		return evm.Revertf("swap: zero output")
	}
	r0, r1 := p.reserves(env)
	if amount0Out.Gte(r0) || amount1Out.Gte(r1) {
		return evm.Revertf("swap: insufficient liquidity")
	}
	if !amount0Out.IsZero() {
		if _, err := env.Call(p.Token0.Address, "transfer", uint256.Zero(), to, amount0Out); err != nil {
			return err
		}
	}
	if !amount1Out.IsZero() {
		if _, err := env.Call(p.Token1.Address, "transfer", uint256.Zero(), to, amount1Out); err != nil {
			return err
		}
	}
	if data != "" {
		// Flash swap: hand control to the recipient, which must return
		// the inputs (plus fee) before this call completes.
		if _, err := env.Call(to, "uniswapV2Call", uint256.Zero(), env.Caller(), amount0Out, amount1Out, data); err != nil {
			return err
		}
	}
	b0, err := p.balanceOf(env, p.Token0)
	if err != nil {
		return err
	}
	b1, err := p.balanceOf(env, p.Token1)
	if err != nil {
		return err
	}
	in0 := b0.SaturatingSub(r0.MustSub(amount0Out))
	in1 := b1.SaturatingSub(r1.MustSub(amount1Out))
	if in0.IsZero() && in1.IsZero() {
		return evm.Revertf("swap: insufficient input")
	}
	// (b0*1e4 - in0*fee) * (b1*1e4 - in1*fee) >= r0 * r1 * 1e8
	adj0, err := b0.MulUint64(bpsDenom)
	if err != nil {
		return evm.Revertf("swap: %v", err)
	}
	adj0 = adj0.MustSub(in0.MustMul(uint256.FromUint64(p.feeBps())))
	adj1, err := b1.MulUint64(bpsDenom)
	if err != nil {
		return evm.Revertf("swap: %v", err)
	}
	adj1 = adj1.MustSub(in1.MustMul(uint256.FromUint64(p.feeBps())))
	left, err := adj0.Mul(adj1)
	if err != nil {
		return evm.Revertf("swap: K overflow: %v", err)
	}
	right, err := r0.Mul(r1)
	if err != nil {
		return evm.Revertf("swap: K overflow: %v", err)
	}
	right, err = right.MulUint64(bpsDenom * bpsDenom)
	if err != nil {
		return evm.Revertf("swap: K overflow: %v", err)
	}
	if left.Lt(right) {
		return evm.Revertf("swap: K invariant violated (insufficient input paid back)")
	}
	p.update(env, b0, b1)
	if p.EmitTradeEvents {
		env.EmitLog("Swap", []types.Address{env.Caller(), to}, []uint256.Int{in0, in1, amount0Out, amount1Out})
		// Normalized explorer action — only for plain swaps; flash swaps
		// (data != "") are loans, not trades.
		if data == "" {
			tokenSell, amountSell := p.Token0.Address, in0
			tokenBuy, amountBuy := p.Token1.Address, amount1Out
			if in1.Gt(in0) {
				tokenSell, amountSell = p.Token1.Address, in1
				tokenBuy, amountBuy = p.Token0.Address, amount0Out
			}
			EmitTradeAction(env, to, tokenSell, amountSell, tokenBuy, amountBuy)
		}
	}
	return nil
}

func (p *Pair) feeBps() uint64 {
	if p.FeeBps == 0 {
		return FeeBps
	}
	return p.FeeBps
}
