package dex

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"leishen/internal/evm"
	"leishen/internal/token"
	"leishen/internal/types"
	"leishen/internal/uint256"
)

type fixture struct {
	ch       *evm.Chain
	reg      *token.Registry
	deployer types.Address
	weth     types.Token
	usdc     types.Token
	wbtc     types.Token
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ch := evm.NewChain(time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC))
	reg := token.NewRegistry()
	deployer := ch.NewEOA("deployer")
	f := &fixture{ch: ch, reg: reg, deployer: deployer}
	f.weth = token.MustDeploy(ch, reg, deployer, "WETH", 18, "")
	f.usdc = token.MustDeploy(ch, reg, deployer, "USDC", 6, "")
	f.wbtc = token.MustDeploy(ch, reg, deployer, "WBTC", 8, "")
	return f
}

func (f *fixture) fund(t *testing.T, who types.Address, tok types.Token, human string) {
	t.Helper()
	token.MustMint(f.ch, tok, f.deployer, who, tok.Units(human))
}

func (f *fixture) pair(t *testing.T, a, b types.Token, amtA, amtB string) types.Address {
	t.Helper()
	pairAddr, err := DeployPair(f.ch, f.reg, f.deployer, a, b, "TestDEX")
	if err != nil {
		t.Fatal(err)
	}
	f.fund(t, f.deployer, a, amtA)
	f.fund(t, f.deployer, b, amtB)
	MustAddLiquidity(f.ch, pairAddr, f.deployer, a, a.Units(amtA), b, b.Units(amtB))
	return pairAddr
}

func TestGetAmountOutKnown(t *testing.T) {
	// 1 ETH into a 100 ETH / 200000 USDC pool at 0.3% fee.
	in := uint256.MustFromUnits("1", 18)
	rIn := uint256.MustFromUnits("100", 18)
	rOut := uint256.MustFromUnits("200000", 6)
	out, err := GetAmountOut(in, rIn, rOut, FeeBps)
	if err != nil {
		t.Fatal(err)
	}
	// Expected ~ 200000 * 0.997 / 100.997 ≈ 1974.31 USDC.
	got := out.Rat(uint256.MustExp10(6))
	if got < 1973 || got > 1975 {
		t.Errorf("out = %.2f USDC, want ~1974", got)
	}
}

func TestGetAmountInInvertsOut(t *testing.T) {
	f := func(inRaw, r1Raw, r2Raw uint32) bool {
		in := uint256.FromUint64(uint64(inRaw)%1_000_000 + 1)
		rIn := uint256.FromUint64(uint64(r1Raw)%100_000_000 + 1_000_000)
		rOut := uint256.FromUint64(uint64(r2Raw)%100_000_000 + 1_000_000)
		out, err := GetAmountOut(in, rIn, rOut, FeeBps)
		if err != nil || out.IsZero() {
			return true // degenerate, skip
		}
		// The input needed for this output never exceeds the original
		// input (+1 rounding), and producing `out` with it succeeds.
		need, err := GetAmountIn(out, rIn, rOut, FeeBps)
		if err != nil {
			return false
		}
		return need.Lte(in.MustAdd(uint256.One()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGetAmountOutErrors(t *testing.T) {
	one := uint256.One()
	if _, err := GetAmountOut(uint256.Zero(), one, one, FeeBps); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := GetAmountOut(one, uint256.Zero(), one, FeeBps); err == nil {
		t.Error("empty reserves accepted")
	}
	if _, err := GetAmountIn(one, one, one, FeeBps); err == nil {
		t.Error("output >= reserve accepted")
	}
}

func TestPairMintSwapBurn(t *testing.T) {
	f := newFixture(t)
	pairAddr := f.pair(t, f.weth, f.usdc, "100", "200000")

	trader := f.ch.NewEOA("")
	f.fund(t, trader, f.weth, "1")

	out, err := SwapExactIn(f.ch, pairAddr, trader, f.weth, f.usdc, f.weth.Units("1"))
	if err != nil {
		t.Fatal(err)
	}
	if got := token.MustBalanceOf(f.ch, f.usdc, trader); !got.Eq(out) {
		t.Errorf("trader USDC = %s, want %s", got, out)
	}
	// Price of ETH in USDC fell for the next trader (more ETH in pool).
	rIn, rOut, err := Reserves(f.ch, pairAddr, f.weth, f.usdc)
	if err != nil {
		t.Fatal(err)
	}
	if rIn.ToUnits(18) != "101" {
		t.Errorf("ETH reserve = %s", rIn.ToUnits(18))
	}
	wantOut := uint256.MustFromUnits("200000", 6).MustSub(out)
	if !rOut.Eq(wantOut) {
		t.Errorf("USDC reserve = %s, want %s", rOut, wantOut)
	}
}

func TestPairKInvariantNeverDecreases(t *testing.T) {
	f := newFixture(t)
	pairAddr := f.pair(t, f.weth, f.usdc, "50", "100000")
	trader := f.ch.NewEOA("")
	f.fund(t, trader, f.weth, "1000")
	f.fund(t, trader, f.usdc, "1000000")

	kOf := func() uint256.Int {
		r0, r1, err := Reserves(f.ch, pairAddr, f.weth, f.usdc)
		if err != nil {
			t.Fatal(err)
		}
		return r0.MustMul(r1)
	}
	k := kOf()
	fquick := func(dirIn bool, amtRaw uint16) bool {
		var err error
		if dirIn {
			_, err = SwapExactIn(f.ch, pairAddr, trader, f.weth, f.usdc, uint256.FromUint64(uint64(amtRaw)+1).MustMul(uint256.MustExp10(15)))
		} else {
			_, err = SwapExactIn(f.ch, pairAddr, trader, f.usdc, f.weth, uint256.FromUint64(uint64(amtRaw)+1).MustMul(uint256.MustExp10(3)))
		}
		if err != nil {
			return true // ran out of funds; invariant not at stake
		}
		nk := kOf()
		ok := nk.Gte(k)
		k = nk
		return ok
	}
	if err := quick.Check(fquick, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPairBurnReturnsShare(t *testing.T) {
	f := newFixture(t)
	pairAddr := f.pair(t, f.weth, f.usdc, "100", "200000")
	lpTok, err := RegisterLPTokenAs(f.ch, f.reg, pairAddr, "lpToken", "UNI-LP")
	if err != nil {
		t.Fatal(err)
	}
	lpBal := token.MustBalanceOf(f.ch, lpTok, f.deployer)
	if lpBal.IsZero() {
		t.Fatal("no LP minted")
	}
	// Burn half the LP: should return ~half of each reserve.
	half := lpBal.MustDiv(uint256.FromUint64(2))
	if r := f.ch.Send(f.deployer, lpTok.Address, "transfer", pairAddr, half); !r.Success {
		t.Fatal(r.Err)
	}
	if r := f.ch.Send(f.deployer, pairAddr, "burn", f.deployer); !r.Success {
		t.Fatal(r.Err)
	}
	gotW := token.MustBalanceOf(f.ch, f.weth, f.deployer)
	gotU := token.MustBalanceOf(f.ch, f.usdc, f.deployer)
	if w := gotW.Rat(uint256.MustExp10(18)); w < 49.9 || w > 50.1 {
		t.Errorf("WETH returned = %.3f, want ~50", w)
	}
	if u := gotU.Rat(uint256.MustExp10(6)); u < 99800 || u > 100200 {
		t.Errorf("USDC returned = %.1f, want ~100000", u)
	}
}

// flashBorrower exercises the pair's uniswapV2Call flash swap: it borrows
// token amounts and repays (or not) inside the callback.
type flashBorrower struct {
	Pair   types.Address
	Token0 types.Token
	Token1 types.Token
	Repay  bool
}

func (b *flashBorrower) Call(env *evm.Env, method string, args []any) ([]any, error) {
	switch method {
	case "go":
		amt, err := evm.AmountArg(args, 0)
		if err != nil {
			return nil, err
		}
		// Borrow amt of token0 via flash swap.
		_, err = env.Call(b.Pair, "swap", uint256.Zero(), amt, uint256.Zero(), env.Self(), "flash")
		return nil, err
	case "uniswapV2Call":
		if !b.Repay {
			return nil, nil // keep the money: the pair must revert us
		}
		amt, err := evm.AmountArg(args, 1)
		if err != nil {
			return nil, err
		}
		// Repay amount plus 0.5% to clear the 0.3% fee check.
		fee := amt.MustMul(uint256.FromUint64(50)).MustDiv(uint256.FromUint64(10000))
		repay := amt.MustAdd(fee)
		_, err = env.Call(b.Token0.Address, "transfer", uint256.Zero(), b.Pair, repay)
		return nil, err
	default:
		return nil, evm.Revertf("flashBorrower: unknown method %q", method)
	}
}

func TestFlashSwapRepaid(t *testing.T) {
	f := newFixture(t)
	pairAddr := f.pair(t, f.weth, f.usdc, "100", "200000")
	t0, _ := SortTokens(f.weth, f.usdc)
	t1 := f.usdc
	if t0.Address == f.usdc.Address {
		t1 = f.weth
	}

	user := f.ch.NewEOA("")
	borrower := f.ch.MustDeploy(user, &flashBorrower{Pair: pairAddr, Token0: t0, Token1: t1, Repay: true}, "")
	// Pre-fund the borrower so it can cover the flash fee.
	token.MustMint(f.ch, t0, f.deployer, borrower, t0.Units("10"))

	r := f.ch.Send(user, borrower, "go", t0.Units("5"))
	if !r.Success {
		t.Fatalf("flash swap failed: %s", r.Err)
	}
	// The callback appears in the trace: this is the Table II Uniswap
	// flash loan signature (swap followed by uniswapV2Call).
	var sawSwap, sawCallback bool
	for _, it := range r.InternalTxs {
		switch it.Method {
		case "swap":
			sawSwap = true
		case "uniswapV2Call":
			sawCallback = true
		}
	}
	if !sawSwap || !sawCallback {
		t.Errorf("trace lacks flash loan signature: swap=%v callback=%v", sawSwap, sawCallback)
	}
}

func TestFlashSwapDefaultReverts(t *testing.T) {
	f := newFixture(t)
	pairAddr := f.pair(t, f.weth, f.usdc, "100", "200000")
	t0, _ := SortTokens(f.weth, f.usdc)
	t1 := f.usdc
	if t0.Address == f.usdc.Address {
		t1 = f.weth
	}
	user := f.ch.NewEOA("")
	borrower := f.ch.MustDeploy(user, &flashBorrower{Pair: pairAddr, Token0: t0, Token1: t1, Repay: false}, "")

	r := f.ch.Send(user, borrower, "go", t0.Units("5"))
	if r.Success {
		t.Fatal("unrepaid flash swap must revert")
	}
	if !strings.Contains(r.Err, "K invariant") && !strings.Contains(r.Err, "insufficient input") {
		t.Errorf("err = %s", r.Err)
	}
	// Atomicity: the borrower kept nothing.
	if got := token.MustBalanceOf(f.ch, t0, borrower); !got.IsZero() {
		t.Errorf("borrower kept %s after revert", got)
	}
	r0, _, _ := Reserves(f.ch, pairAddr, t0, t1)
	if r0.IsZero() {
		t.Error("reserves drained")
	}
}

func TestFactoryAndRouterMultiHop(t *testing.T) {
	f := newFixture(t)
	factory := f.ch.MustDeploy(f.deployer, &Factory{EmitTradeEvents: true}, "Uniswap: Factory")
	router := f.ch.MustDeploy(f.deployer, &Router{Factory: factory}, "Uniswap: Router")

	mk := func(a, b types.Token) types.Address {
		r := f.ch.Send(f.deployer, factory, "createPair", a, b)
		if !r.Success {
			t.Fatalf("createPair: %s", r.Err)
		}
		return r.Return[0].(types.Address)
	}
	p1 := mk(f.weth, f.usdc)
	p2 := mk(f.usdc, f.wbtc)

	// Duplicate creation rejected.
	if r := f.ch.Send(f.deployer, factory, "createPair", f.weth, f.usdc); r.Success {
		t.Error("duplicate pair created")
	}

	f.fund(t, f.deployer, f.weth, "1000")
	f.fund(t, f.deployer, f.usdc, "4000000")
	f.fund(t, f.deployer, f.wbtc, "100")
	MustAddLiquidity(f.ch, p1, f.deployer, f.weth, f.weth.Units("1000"), f.usdc, f.usdc.Units("2000000"))
	MustAddLiquidity(f.ch, p2, f.deployer, f.usdc, f.usdc.Units("2000000"), f.wbtc, f.wbtc.Units("100"))

	trader := f.ch.NewEOA("")
	f.fund(t, trader, f.weth, "10")
	if err := token.Approve(f.ch, f.weth, trader, router, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	path := []types.Token{f.weth, f.usdc, f.wbtc}
	r := f.ch.Send(trader, router, "swapExactTokensForTokens", f.weth.Units("10"), uint256.Zero(), path, trader)
	if !r.Success {
		t.Fatalf("multi-hop swap: %s", r.Err)
	}
	got := token.MustBalanceOf(f.ch, f.wbtc, trader)
	// 10 ETH ≈ 20000 USDC ≈ 1 WBTC (minus fees and slippage).
	btc := got.Rat(uint256.MustExp10(8))
	if btc < 0.90 || btc > 1.0 {
		t.Errorf("WBTC out = %.4f, want ~0.97", btc)
	}
	// Slippage guard trips.
	f.fund(t, trader, f.weth, "1")
	r = f.ch.Send(trader, router, "swapExactTokensForTokens", f.weth.Units("1"), f.wbtc.Units("1"), path, trader)
	if r.Success {
		t.Error("slippage guard did not trip")
	}
}

func TestRouterAddRemoveLiquidity(t *testing.T) {
	f := newFixture(t)
	factory := f.ch.MustDeploy(f.deployer, &Factory{}, "DEX: Factory")
	router := f.ch.MustDeploy(f.deployer, &Router{Factory: factory}, "DEX: Router")
	r := f.ch.Send(f.deployer, factory, "createPair", f.weth, f.usdc)
	if !r.Success {
		t.Fatal(r.Err)
	}
	pairAddr := r.Return[0].(types.Address)
	lpTok, err := RegisterLPTokenAs(f.ch, f.reg, pairAddr, "lpToken", "LP")
	if err != nil {
		t.Fatal(err)
	}

	lpUser := f.ch.NewEOA("")
	f.fund(t, lpUser, f.weth, "10")
	f.fund(t, lpUser, f.usdc, "20000")
	if err := token.Approve(f.ch, f.weth, lpUser, router, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	if err := token.Approve(f.ch, f.usdc, lpUser, router, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	r = f.ch.Send(lpUser, router, "addLiquidity", f.weth, f.usdc, f.weth.Units("10"), f.usdc.Units("20000"), lpUser)
	if !r.Success {
		t.Fatalf("addLiquidity: %s", r.Err)
	}
	liq := token.MustBalanceOf(f.ch, lpTok, lpUser)
	if liq.IsZero() {
		t.Fatal("no LP received")
	}
	if err := token.Approve(f.ch, lpTok, lpUser, router, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	r = f.ch.Send(lpUser, router, "removeLiquidity", f.weth, f.usdc, liq, lpUser)
	if !r.Success {
		t.Fatalf("removeLiquidity: %s", r.Err)
	}
	// Full round trip returns everything (single LP, no trades between).
	if got := token.MustBalanceOf(f.ch, f.weth, lpUser).ToUnits(18); got != "10" {
		t.Errorf("WETH back = %s", got)
	}
	if got := token.MustBalanceOf(f.ch, f.usdc, lpUser).ToUnits(6); got != "20000" {
		t.Errorf("USDC back = %s", got)
	}
}

func TestAggregatorLegs(t *testing.T) {
	f := newFixture(t)
	pairAddr := f.pair(t, f.weth, f.usdc, "100", "200000")
	agg := f.ch.MustDeploy(f.deployer, &Aggregator{FeeBps: 5}, "Kyber: Proxy")

	trader := f.ch.NewEOA("")
	f.fund(t, trader, f.weth, "2")
	if err := token.Approve(f.ch, f.weth, trader, agg, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	r := f.ch.Send(trader, agg, "swapViaPair", pairAddr, f.weth, f.usdc, f.weth.Units("2"), uint256.Zero())
	if !r.Success {
		t.Fatalf("aggregated swap: %s", r.Err)
	}
	out := token.MustBalanceOf(f.ch, f.usdc, trader)
	if out.IsZero() {
		t.Fatal("no output")
	}
	// The trace shows 4 WETH/USDC transfer logs: trader->agg, agg->pair,
	// pair->agg, agg->trader — the merge-rule shape.
	var wethLegs, usdcLegs int
	for _, lg := range r.Logs {
		if lg.Event != "Transfer" {
			continue
		}
		switch lg.Address {
		case f.weth.Address:
			wethLegs++
		case f.usdc.Address:
			usdcLegs++
		}
	}
	if wethLegs != 2 || usdcLegs != 2 {
		t.Errorf("legs = %d WETH, %d USDC; want 2 and 2", wethLegs, usdcLegs)
	}
}

func TestWeightedPoolJoinSwapExit(t *testing.T) {
	f := newFixture(t)
	pool := f.ch.MustDeploy(f.deployer, &WeightedPool{
		Tokens:     []types.Token{f.weth, f.usdc},
		Weights:    []uint64{80, 20},
		SwapFeeBps: 30,
		BPTSymbol:  "B-80WETH-20USDC",
	}, "Balancer: Pool")
	bpt, err := RegisterLPTokenAs(f.ch, f.reg, pool, "bpt", "BPT")
	if err != nil {
		t.Fatal(err)
	}

	f.fund(t, f.deployer, f.weth, "400")
	f.fund(t, f.deployer, f.usdc, "200000")
	if err := token.Approve(f.ch, f.weth, f.deployer, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	if err := token.Approve(f.ch, f.usdc, f.deployer, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	amounts := []uint256.Int{f.weth.Units("400"), f.usdc.Units("200000")}
	r := f.ch.Send(f.deployer, pool, "joinPool", amounts, f.deployer)
	if !r.Success {
		t.Fatalf("join: %s", r.Err)
	}
	if got := token.MustBalanceOf(f.ch, bpt, f.deployer).ToUnits(18); got != "100" {
		t.Errorf("initial shares = %s", got)
	}

	// 80/20 pool with 400 WETH / 200000 USDC: spot price of WETH in USDC
	// = (200000/20)/(400/80) = 10000/5 = 2000 USDC per WETH.
	ret, err := f.ch.View(pool, "getSpotPrice", f.usdc.Address, f.weth.Address)
	if err != nil {
		t.Fatal(err)
	}
	// Careful with decimals: price is in base units (USDC 6 dec per WETH
	// 18 dec), fixed point 1e18.
	spot := ret[0].(uint256.Int).Rat(uint256.MustExp10(18)) // USDC-base-units per WETH-base-unit
	wantSpot := 2000.0 * 1e6 / 1e18
	if spot < wantSpot*0.99 || spot > wantSpot*1.01 {
		t.Errorf("spot = %g, want ~%g", spot, wantSpot)
	}

	trader := f.ch.NewEOA("")
	f.fund(t, trader, f.usdc, "2000")
	if err := token.Approve(f.ch, f.usdc, trader, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	r = f.ch.Send(trader, pool, "swapExactAmountIn", f.usdc.Address, f.usdc.Units("2000"), f.weth.Address, uint256.Zero(), trader)
	if !r.Success {
		t.Fatalf("swap: %s", r.Err)
	}
	gotW := token.MustBalanceOf(f.ch, f.weth, trader).Rat(uint256.MustExp10(18))
	// 2000 USDC at ~2000 USDC/WETH should yield slightly under 1 WETH
	// (slippage is amplified 4x by the 20-weight input side: ~4%).
	if gotW < 0.90 || gotW > 1.0 {
		t.Errorf("WETH out = %.4f, want just under 1", gotW)
	}

	// Exit returns proportional balances.
	shares := token.MustBalanceOf(f.ch, bpt, f.deployer)
	r = f.ch.Send(f.deployer, pool, "exitPool", shares, f.deployer)
	if !r.Success {
		t.Fatalf("exit: %s", r.Err)
	}
	if got := token.MustBalanceOf(f.ch, bpt, f.deployer); !got.IsZero() {
		t.Errorf("BPT left = %s", got)
	}
	if got := token.MustBalanceOf(f.ch, f.weth, f.deployer); got.IsZero() {
		t.Error("no WETH back from exit")
	}
}

func TestWeightedOutGivenInEqualWeightsMatchesConstantProduct(t *testing.T) {
	// With equal weights and zero fee, out-given-in must match x*y=k.
	balIn := uint256.MustFromUnits("100", 18)
	balOut := uint256.MustFromUnits("200000", 6)
	in := uint256.MustFromUnits("1", 18)
	got, err := WeightedOutGivenIn(balIn, 50, balOut, 50, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GetAmountOut(in, balIn, balOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff := got.AbsDiff(want)
	// Fixed-point rounding tolerance: a few parts per million.
	if diff.Gt(want.MustDiv(uint256.FromUint64(100_000))) {
		t.Errorf("weighted 50/50 = %s, constant product = %s", got, want)
	}
}

func TestStableSwapNearParity(t *testing.T) {
	f := newFixture(t)
	dai := token.MustDeploy(f.ch, f.reg, f.deployer, "DAI", 18, "")
	pool := f.ch.MustDeploy(f.deployer, &StableSwapPool{
		Tokens:   []types.Token{f.usdc, dai},
		Amp:      100,
		FeeBps:   4,
		LPSymbol: "2Crv",
	}, "Curve: 2pool")
	if _, err := RegisterLPTokenAs(f.ch, f.reg, pool, "lpToken", "2Crv"); err != nil {
		t.Fatal(err)
	}
	f.fund(t, f.deployer, f.usdc, "1000000")
	token.MustMint(f.ch, dai, f.deployer, f.deployer, dai.Units("1000000"))
	for _, tok := range []types.Token{f.usdc, dai} {
		if err := token.Approve(f.ch, tok, f.deployer, pool, uint256.Max()); err != nil {
			t.Fatal(err)
		}
	}
	r := f.ch.Send(f.deployer, pool, "addLiquidity", []uint256.Int{f.usdc.Units("1000000"), dai.Units("1000000")}, f.deployer)
	if !r.Success {
		t.Fatalf("addLiquidity: %s", r.Err)
	}

	// A balanced stable pool trades 10k USDC -> ~10k DAI (within 0.1%).
	trader := f.ch.NewEOA("")
	f.fund(t, trader, f.usdc, "10000")
	if err := token.Approve(f.ch, f.usdc, trader, pool, uint256.Max()); err != nil {
		t.Fatal(err)
	}
	r = f.ch.Send(trader, pool, "exchange", f.usdc.Address, dai.Address, f.usdc.Units("10000"), uint256.Zero(), trader)
	if !r.Success {
		t.Fatalf("exchange: %s", r.Err)
	}
	got := token.MustBalanceOf(f.ch, dai, trader).Rat(uint256.MustExp10(18))
	if got < 9985 || got > 10000 {
		t.Errorf("DAI out = %.2f, want ~9995", got)
	}

	// Compare with the constant-product output for the same trade: the
	// stable curve must be much flatter.
	cpOut, err := GetAmountOut(f.usdc.Units("10000"), f.usdc.Units("1000000"), dai.Units("1000000"), 4)
	if err != nil {
		t.Fatal(err)
	}
	cp := cpOut.Rat(uint256.MustExp10(18))
	if got <= cp {
		t.Errorf("stable output %.2f not better than constant product %.2f", got, cp)
	}
}

func TestStableSwapVirtualPriceStartsAtOne(t *testing.T) {
	f := newFixture(t)
	dai := token.MustDeploy(f.ch, f.reg, f.deployer, "DAI", 18, "")
	pool := f.ch.MustDeploy(f.deployer, &StableSwapPool{
		Tokens: []types.Token{f.usdc, dai},
		Amp:    100,
		FeeBps: 4,
	}, "Curve: 2pool")
	f.fund(t, f.deployer, f.usdc, "500000")
	token.MustMint(f.ch, dai, f.deployer, f.deployer, dai.Units("500000"))
	for _, tok := range []types.Token{f.usdc, dai} {
		if err := token.Approve(f.ch, tok, f.deployer, pool, uint256.Max()); err != nil {
			t.Fatal(err)
		}
	}
	r := f.ch.Send(f.deployer, pool, "addLiquidity", []uint256.Int{f.usdc.Units("500000"), dai.Units("500000")}, f.deployer)
	if !r.Success {
		t.Fatal(r.Err)
	}
	ret, err := f.ch.View(pool, "getVirtualPrice")
	if err != nil {
		t.Fatal(err)
	}
	vp := ret[0].(uint256.Int).Rat(uint256.MustExp10(18))
	if vp < 0.9999 || vp > 1.0001 {
		t.Errorf("virtual price = %.6f, want 1.0", vp)
	}
}

func TestStableSwapRemoveLiquidityProportional(t *testing.T) {
	f := newFixture(t)
	dai := token.MustDeploy(f.ch, f.reg, f.deployer, "DAI", 18, "")
	pool := f.ch.MustDeploy(f.deployer, &StableSwapPool{
		Tokens: []types.Token{f.usdc, dai},
		Amp:    100,
	}, "Curve: 2pool")
	lp, err := RegisterLPTokenAs(f.ch, f.reg, pool, "lpToken", "2Crv")
	if err != nil {
		t.Fatal(err)
	}
	f.fund(t, f.deployer, f.usdc, "100000")
	token.MustMint(f.ch, dai, f.deployer, f.deployer, dai.Units("100000"))
	for _, tok := range []types.Token{f.usdc, dai} {
		if err := token.Approve(f.ch, tok, f.deployer, pool, uint256.Max()); err != nil {
			t.Fatal(err)
		}
	}
	r := f.ch.Send(f.deployer, pool, "addLiquidity", []uint256.Int{f.usdc.Units("100000"), dai.Units("100000")}, f.deployer)
	if !r.Success {
		t.Fatal(r.Err)
	}
	shares := token.MustBalanceOf(f.ch, lp, f.deployer)
	r = f.ch.Send(f.deployer, pool, "removeLiquidity", shares, f.deployer)
	if !r.Success {
		t.Fatalf("removeLiquidity: %s", r.Err)
	}
	if got := token.MustBalanceOf(f.ch, f.usdc, f.deployer).ToUnits(6); got != "100000" {
		t.Errorf("USDC back = %s", got)
	}
	if got := token.MustBalanceOf(f.ch, dai, f.deployer).ToUnits(18); got != "100000" {
		t.Errorf("DAI back = %s", got)
	}
}

func TestNthRootExact(t *testing.T) {
	cases := []struct {
		x    uint64
		n    uint64
		want uint64
	}{
		{8, 3, 2}, {27, 3, 3}, {26, 3, 2}, {0, 3, 0}, {1, 5, 1},
		{1024, 5, 4}, {1000000, 3, 100}, {16, 4, 2}, {81, 4, 3},
	}
	for _, tc := range cases {
		got := nthRoot(uint256.FromUint64(tc.x), tc.n)
		if got.Uint64() != tc.want {
			t.Errorf("nthRoot(%d, %d) = %s, want %d", tc.x, tc.n, got, tc.want)
		}
	}
}

func TestQuickNthRootInvariant(t *testing.T) {
	f := func(raw uint64, nRaw uint8) bool {
		n := uint64(nRaw)%6 + 2
		x := uint256.FromUint64(raw)
		y := nthRoot(x, n)
		// y^n <= x < (y+1)^n
		pw := uint256.One()
		for i := uint64(0); i < n; i++ {
			pw = pw.MustMul(y)
		}
		if pw.Gt(x) {
			return false
		}
		y1 := y.MustAdd(uint256.One())
		pw1 := uint256.One()
		for i := uint64(0); i < n; i++ {
			var err error
			pw1, err = pw1.Mul(y1)
			if err != nil {
				return true
			}
		}
		return pw1.Gt(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFpPowFrac(t *testing.T) {
	half := uint256.MustFromUnits("0.5", 18)
	// 0.5^1 = 0.5
	got, err := fpPowFrac(half, 1, 1)
	if err != nil || got.ToUnits(18) != "0.5" {
		t.Errorf("0.5^1 = %s err=%v", got.ToUnits(18), err)
	}
	// 0.25^(1/2) = 0.5
	quarter := uint256.MustFromUnits("0.25", 18)
	got, err = fpPowFrac(quarter, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Rat(uint256.MustExp10(18)); v < 0.4999 || v > 0.5001 {
		t.Errorf("0.25^0.5 = %g", v)
	}
	// 0.5^(3/2) ≈ 0.35355
	got, err = fpPowFrac(half, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Rat(uint256.MustExp10(18)); v < 0.3534 || v > 0.3537 {
		t.Errorf("0.5^1.5 = %g", v)
	}
	// base > 1 rejected
	if _, err := fpPowFrac(uint256.MustFromUnits("1.5", 18), 1, 2); err == nil {
		t.Error("base > 1 accepted")
	}
}
