package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LeakCheck flags goroutines with no reachable cancellation or join
// path — the follower/scan/serve bug class where a worker outlives its
// owner and leaks (or deadlocks a Close). Two flow-based rules, both
// deliberately conservative:
//
//   - A goroutine whose CFG contains a closed cycle — a loop no edge
//     ever leaves (no break, no return) — must block on a receive,
//     select, or channel range inside that cycle. `for { work() }` with
//     no way to hear a quit signal is unstoppable; `for { select {
//     case <-ctx.Done(): return ... } }` exits through the select's
//     edge. A goroutine that signals a WaitGroup (wg.Done) is joined
//     and exempt.
//   - A straight-line goroutine that sends on an unbuffered channel
//     local to the launching function is checked against the launcher:
//     if the launcher never receives from that channel (and never lets
//     it escape to someone who could), the send blocks forever and the
//     goroutine leaks.
//
// `go f(...)` launches of functions declared in the same package are
// analyzed through their bodies; foreign callees get the benefit of
// the doubt (their package's own lint run owns them). Function-summary
// knowledge (does the callee take a context/quit channel/WaitGroup?)
// covers launches whose body is visible but trivially delegating.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "flags goroutines with no reachable cancellation or join path",
	Run:  runLeakCheck,
}

func runLeakCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(name string, body *ast.BlockStmt) {
			leakCheckFunc(pass, body)
		})
	}
}

// leakCheckFunc inspects one function body's go statements. Nested
// function literals are skipped — they get their own eachFuncBody
// visit — except the literal launched by the go statement itself.
func leakCheckFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		checkGoStmt(pass, body, g)
		// The launched literal's own inner go statements belong to its
		// eachFuncBody visit.
		return false
	})
}

// checkGoStmt applies both rules to one go statement.
func checkGoStmt(pass *Pass, enclosing *ast.BlockStmt, g *ast.GoStmt) {
	pkg := pass.Pkg
	goBody := launchedBody(pkg, g)
	if goBody == nil {
		return // foreign or opaque callee: assume it manages itself
	}

	if joinsWaitGroup(pkg, goBody) {
		return // joined goroutines are the launcher's problem to wait on
	}

	c := buildCFG(goBody)
	_, closed := c.cycleBlocks()
	if len(closed) > 0 && !cycleHasCancelPoint(pkg, closed) {
		pass.Reportf(g.Pos(), "goroutine loops forever with no reachable cancellation point (no receive, select, or channel range in the loop)")
		return
	}

	// Rule two: straight-line senders on a channel nobody receives.
	for _, send := range unreceivedSends(pkg, enclosing, g, goBody) {
		pass.Reportf(g.Pos(), "goroutine sends on %s but the launching function never receives from it (send blocks forever once the launcher returns)", send)
	}
}

// launchedBody resolves the go statement's target to an analyzable
// body: a function literal, or a function/method declared in this
// package.
func launchedBody(pkg *Package, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(pkg, g.Call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != pkg.Types {
		return nil
	}
	if decl := pkg.funcBodyOf(fn); decl != nil {
		return decl.Body
	}
	return nil
}

// joinsWaitGroup reports whether the body signals a sync.WaitGroup —
// a join path: the launcher (or whoever holds the group) can wait for
// this goroutine deterministically.
func joinsWaitGroup(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Name() != "Done" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				found = true
			}
		}
		return !found
	})
	return found
}

// cycleHasCancelPoint reports whether any node in the closed-cycle
// blocks can block on (or observe) an external signal: a channel
// receive, a select, or a range over a channel.
func cycleHasCancelPoint(pkg *Package, closed map[*cfgBlock]bool) bool {
	blocks := make([]*cfgBlock, 0, len(closed))
	for b := range closed {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].index < blocks[j].index })
	for _, b := range blocks {
		for _, n := range b.nodes {
			if nodeIsCancelPoint(pkg, n) {
				return true
			}
		}
	}
	return false
}

func nodeIsCancelPoint(pkg *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch node := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[node.X]; ok && isChan(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// unreceivedSends finds sends in an acyclic goroutine body on channels
// that (a) are unbuffered locals of the launching function and (b) the
// launching function neither receives from nor leaks. Returns the
// channel names, deduplicated in first-send order.
func unreceivedSends(pkg *Package, enclosing *ast.BlockStmt, g *ast.GoStmt, goBody *ast.BlockStmt) []string {
	var names []string
	seen := make(map[types.Object]bool)
	ast.Inspect(goBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != goBody.Pos() {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		obj := identObj(pkg, send.Chan)
		if obj == nil || seen[obj] {
			return true
		}
		if !isUnbufferedLocalChan(pkg, enclosing, obj) {
			return true
		}
		if launcherConsumes(pkg, enclosing, g, obj) {
			return true
		}
		seen[obj] = true
		names = append(names, obj.Name())
		return true
	})
	return names
}

// isUnbufferedLocalChan reports whether obj is a channel declared in
// the enclosing body via make() with no (or zero) capacity.
func isUnbufferedLocalChan(pkg *Package, enclosing *ast.BlockStmt, obj types.Object) bool {
	if !isChan(obj.Type()) {
		return false
	}
	buffered := false
	declaredHere := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || s.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || pkg.Info.Defs[id] != obj {
				continue
			}
			declaredHere = true
			if len(s.Rhs) != len(s.Lhs) {
				continue
			}
			call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fun.Name == "make" {
				if b, isB := pkg.Info.Uses[fun].(*types.Builtin); isB && b.Name() == "make" {
					// A capacity argument: only a constant 0 stays
					// blocking; anything else (or unknown) is buffered
					// enough to let the sender finish.
					tv, ok := pkg.Info.Types[call.Args[1]]
					if !ok || tv.Value == nil || tv.Value.String() != "0" {
						buffered = true
					}
				}
			}
		}
		return true
	})
	return declaredHere && !buffered
}

// launcherConsumes reports whether the launching function gives the
// channel a receiver the goroutine's send could pair with — a receive
// expression, a channel range, or any escape (argument, assignment
// source, composite literal, return) that hands the channel to code we
// cannot see.
func launcherConsumes(pkg *Package, enclosing *ast.BlockStmt, g *ast.GoStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		// Skip the goroutine whose sends we are judging; its own body
		// receiving from the channel it sends on would be a self-pair.
		if n == g {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && identObj(pkg, node.X) == obj {
				found = true
			}
		case *ast.RangeStmt:
			if identObj(pkg, node.X) == obj {
				found = true
			}
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if b, isB := pkg.Info.Uses[fun].(*types.Builtin); isB && b.Name() == "close" {
					return true // close() is not a receive; keep looking
				}
			}
			for _, arg := range node.Args {
				if identObj(pkg, arg) == obj {
					found = true // handed to a callee: receiver unknown
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range node.Rhs {
				// Aliased or stored: a receiver may exist elsewhere.
				if identObj(pkg, rhs) == obj {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if identObj(pkg, res) == obj {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if identObj(pkg, e) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
