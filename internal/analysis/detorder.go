package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder flags `range` statements over maps whose iteration order can
// leak into program output — verdicts, JSON reports, trade ordering, or
// generated corpora. Go randomizes map iteration, so any such leak makes
// detection runs unreproducible.
//
// A map range is accepted only when its body is provably
// order-insensitive under a conservative structural whitelist:
//
//   - increments/decrements and numeric compound assignments (sums and
//     counters commute);
//   - declarations of loop-local variables;
//   - writes to map entries keyed by the iteration variables (each
//     iteration touches its own key);
//   - appends to a slice that the enclosing function later passes to a
//     sort call (the collect-keys-then-sort idiom);
//   - `continue`, and `return` statements whose results do not depend on
//     the iteration variables (existence checks);
//   - if/switch/for/block statements composed of the above.
//
// Anything else — appending without a sort, assigning iteration-derived
// values to outer variables (max-tracking with nondeterministic
// tie-breaks), early `break`, calls executed for effect — is reported.
// Sort the keys first and range over the sorted slice instead.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "flags map iteration whose nondeterministic order can leak into output",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(name string, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				if n == nil {
					return true
				}
				// Stay within this function: literals get their own visit.
				if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
					return false
				}
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[rs.X]
				if !ok || !isMap(tv.Type) {
					return true
				}
				if verdict := mapRangeVerdict(pass.Pkg, rs, body); verdict != "" {
					pass.Reportf(rs.For, "map iteration order may leak into output: %s (sort the keys and range over the slice)", verdict)
				}
				return true
			})
			_ = name
		})
	}
}

// mapRangeVerdict checks every statement of a map-range body against the
// order-insensitivity whitelist. It returns "" when the body is safe, or
// a short description of the first order-sensitive statement.
func mapRangeVerdict(pkg *Package, rs *ast.RangeStmt, funcBody *ast.BlockStmt) string {
	iterVars := rangeIterObjects(pkg, rs)
	locals := loopLocalObjects(pkg, rs.Body)
	for obj := range iterVars {
		locals[obj] = true
	}
	c := &detorderChecker{pkg: pkg, rs: rs, funcBody: funcBody, iterVars: iterVars, locals: locals}
	for _, stmt := range rs.Body.List {
		if verdict := c.check(stmt); verdict != "" {
			return verdict
		}
	}
	return ""
}

type detorderChecker struct {
	pkg      *Package
	rs       *ast.RangeStmt
	funcBody *ast.BlockStmt
	// iterVars are the range's key/value objects.
	iterVars map[types.Object]bool
	// locals are objects declared inside the loop body plus the
	// iteration variables; state confined to one iteration.
	locals map[types.Object]bool
}

// check returns "" if stmt is order-insensitive, else a description.
func (c *detorderChecker) check(stmt ast.Stmt) string {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return "" // counters commute
	case *ast.DeclStmt:
		return ""
	case *ast.AssignStmt:
		return c.checkAssign(s)
	case *ast.IfStmt:
		if s.Init != nil {
			if v := c.check(s.Init); v != "" {
				return v
			}
		}
		if v := c.checkBlock(s.Body); v != "" {
			return v
		}
		if s.Else != nil {
			return c.check(s.Else)
		}
		return ""
	case *ast.BlockStmt:
		return c.checkBlock(s)
	case *ast.SwitchStmt:
		return c.checkCaseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		return c.checkCaseBodies(s.Body)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return "loop exit depends on which element comes first"
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if mentions(c.pkg, res, c.iterVars) || mentions(c.pkg, res, c.locals) {
				return "returns a value derived from the iteration element"
			}
		}
		return "" // pure existence check: same result for any order
	case *ast.ForStmt:
		if s.Init != nil {
			if v := c.check(s.Init); v != "" {
				return v
			}
		}
		if s.Post != nil {
			if v := c.check(s.Post); v != "" {
				return v
			}
		}
		return c.checkBlock(s.Body)
	case *ast.RangeStmt:
		// Nested ranges over maps are reported on their own visit; here
		// only the body's effects matter.
		return c.checkBlock(s.Body)
	default:
		return "statement with side effects inside map iteration"
	}
}

func (c *detorderChecker) checkBlock(b *ast.BlockStmt) string {
	if b == nil {
		return ""
	}
	for _, stmt := range b.List {
		if v := c.check(stmt); v != "" {
			return v
		}
	}
	return ""
}

func (c *detorderChecker) checkCaseBodies(b *ast.BlockStmt) string {
	for _, clause := range b.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, stmt := range cc.Body {
			if v := c.check(stmt); v != "" {
				return v
			}
		}
	}
	return ""
}

// checkAssign vets an assignment inside the loop body.
func (c *detorderChecker) checkAssign(s *ast.AssignStmt) string {
	switch s.Tok {
	case token.DEFINE:
		return "" // declares loop-locals
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if v := c.checkAssignTarget(lhs, s, i); v != "" {
				return v
			}
		}
		return ""
	default:
		// Compound assignment: commutative only for numeric accumulation.
		if len(s.Lhs) == 1 {
			if tv, ok := c.pkg.Info.Types[s.Lhs[0]]; ok && isNumeric(tv.Type) &&
				(s.Tok == token.ADD_ASSIGN || s.Tok == token.OR_ASSIGN ||
					s.Tok == token.AND_ASSIGN || s.Tok == token.XOR_ASSIGN) {
				return ""
			}
			if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok {
				if obj := identObj(c.pkg, id); obj != nil && c.locals[obj] {
					return "" // compound update of a loop-local
				}
			}
		}
		return "non-commutative compound assignment to outer state"
	}
}

// checkAssignTarget vets one plain-assignment destination.
func (c *detorderChecker) checkAssignTarget(lhs ast.Expr, s *ast.AssignStmt, i int) string {
	lhs = ast.Unparen(lhs)
	switch t := lhs.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return ""
		}
		obj := identObj(c.pkg, t)
		if obj != nil && c.locals[obj] {
			return "" // loop-local state
		}
		// append-then-sort idiom: x = append(x, ...) with a later sort.
		if len(s.Rhs) == len(s.Lhs) && isSelfAppend(c.pkg, obj, s.Rhs[i]) {
			if sortedInFunc(c.pkg, obj, c.funcBody) {
				return ""
			}
			return "appends map elements without sorting the result"
		}
		return "assigns iteration-dependent value to outer variable"
	case *ast.IndexExpr:
		base, ok := c.pkg.Info.Types[t.X]
		if ok && isMap(base.Type) &&
			(mentions(c.pkg, t.Index, c.iterVars) || mentions(c.pkg, t.Index, c.locals)) {
			return "" // each iteration writes its own key
		}
		return "writes a map/slice entry not keyed by the iteration variable"
	case *ast.SelectorExpr:
		if obj := identObj(c.pkg, t.X); obj != nil && c.locals[obj] {
			return "" // field of a loop-local
		}
		return "assigns to outer state; last iteration wins nondeterministically"
	default:
		return "assigns to outer state; last iteration wins nondeterministically"
	}
}

// isSelfAppend reports whether rhs is append(x, ...) growing the same
// variable x that obj names.
func isSelfAppend(pkg *Package, obj types.Object, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return false
	}
	if b, ok := pkg.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return obj != nil && identObj(pkg, call.Args[0]) == obj
}

// sortedInFunc reports whether the enclosing function passes obj to a
// sort or slices ordering call anywhere — the collect-then-sort idiom.
func sortedInFunc(pkg *Package, obj types.Object, funcBody *ast.BlockStmt) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil {
			return true
		}
		switch funcPkgPath(fn) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentions(pkg, arg, map[types.Object]bool{obj: true}) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rangeIterObjects returns the objects of the range's key and value
// variables.
func rangeIterObjects(pkg *Package, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, expr := range []ast.Expr{rs.Key, rs.Value} {
		if expr == nil {
			continue
		}
		if id, ok := ast.Unparen(expr).(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// loopLocalObjects collects every object declared inside the loop body:
// := definitions, var declarations, and nested range/type-switch
// bindings. State that exists only within one iteration cannot carry
// order effects across iterations.
func loopLocalObjects(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}
