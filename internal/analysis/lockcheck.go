package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// LockCheck flags mutex misuse in the concurrent surfaces of the
// pipeline (the HTTP server, the chain, the token registry):
//
//   - copying a value whose type holds a sync.Mutex or sync.RWMutex by
//     value — via parameters, results, receivers, assignments from
//     addressable expressions, return statements, or call arguments: a
//     copied lock guards nothing;
//   - `defer mu.Lock()` — the classic typo that acquires the lock at
//     function exit and deadlocks the next caller;
//   - Lock/RLock calls in a function body with no matching
//     Unlock/RUnlock on the same receiver expression (deferred unlocks
//     count).
//
// The balance check is per function and textual on the receiver
// expression; helpers that intentionally return while holding a lock
// should be waived with a //lint:allow lockcheck directive.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags by-value copies of lock-bearing types and lock/unlock imbalance",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		lockCopies(pass, file)
		lockBalance(pass, file)
	}
}

// lockCopies reports every construct that copies a lock-bearing value.
func lockCopies(pass *Pass, file *ast.File) {
	pkg := pass.Pkg
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncDecl:
			if node.Recv != nil {
				checkFieldList(pass, node.Recv, "method receiver")
			}
			checkFuncType(pass, node.Type)
		case *ast.FuncLit:
			checkFuncType(pass, node.Type)
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for _, rhs := range node.Rhs {
				if copiesLockValue(pkg, rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies a value containing a sync lock; use a pointer")
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if copiesLockValue(pkg, res) {
					pass.Reportf(res.Pos(), "return copies a value containing a sync lock; return a pointer")
				}
			}
		case *ast.CallExpr:
			for _, arg := range node.Args {
				if copiesLockValue(pkg, arg) {
					pass.Reportf(arg.Pos(), "call passes a value containing a sync lock by value; pass a pointer")
				}
			}
		case *ast.RangeStmt:
			if node.Value != nil {
				if tv, ok := pkg.Info.Types[node.Value]; ok && containsLock(tv.Type) {
					pass.Reportf(node.Value.Pos(), "range copies lock-bearing elements by value; range over indices or pointers")
				}
			}
		}
		return true
	})
}

// checkFuncType vets parameter and result lists.
func checkFuncType(pass *Pass, ft *ast.FuncType) {
	checkFieldList(pass, ft.Params, "parameter")
	if ft.Results != nil {
		checkFieldList(pass, ft.Results, "result")
	}
}

func checkFieldList(pass *Pass, fields *ast.FieldList, what string) {
	for _, f := range fields.List {
		tv, ok := pass.Pkg.Info.Types[f.Type]
		if !ok {
			continue
		}
		if containsLock(tv.Type) {
			pass.Reportf(f.Type.Pos(), "%s passes a type containing a sync lock by value; use a pointer", what)
		}
	}
}

// copiesLockValue reports whether evaluating expr copies an existing
// lock-bearing value: the expression's type holds a lock by value AND
// the expression reads existing storage (identifier, field, index,
// dereference). Fresh composite literals and call results are newly
// created values, not copies of a shared lock.
func copiesLockValue(pkg *Package, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	// Reading through an identifier that names a type or package is not
	// a value copy.
	if obj := identObj(pkg, e); obj != nil {
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
	}
	return containsLock(tv.Type)
}

// lockBalance checks each function body for unbalanced Lock/Unlock and
// RLock/RUnlock pairs on the same receiver expression, and for deferred
// lock acquisitions.
func lockBalance(pass *Pass, file *ast.File) {
	pkg := pass.Pkg
	eachFuncBody(file, func(name string, body *ast.BlockStmt) {
		switch name {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			return // lock-wrapper methods are imbalanced by design
		}
		type tally struct {
			locks, unlocks   int
			rlocks, runlocks int
			firstLock        ast.Node
			firstRLock       ast.Node
		}
		tallies := make(map[string]*tally)
		get := func(recv string) *tally {
			t := tallies[recv]
			if t == nil {
				t = &tally{}
				tallies[recv] = t
			}
			return t
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
				return false // separate scope, visited on its own
			}
			deferred := false
			var call *ast.CallExpr
			switch node := n.(type) {
			case *ast.DeferStmt:
				deferred = true
				call = node.Call
			case *ast.ExprStmt:
				call, _ = node.X.(*ast.CallExpr)
			}
			if call == nil {
				return true
			}
			recv, method, ok := syncLockCall(pkg, call)
			if !ok {
				return true
			}
			switch method {
			case "Lock":
				if deferred {
					pass.Reportf(call.Pos(), "defer %s.Lock() acquires the lock at function exit (did you mean defer Unlock?)", recv)
					return true
				}
				t := get(recv)
				t.locks++
				if t.firstLock == nil {
					t.firstLock = call
				}
			case "Unlock":
				get(recv).unlocks++
			case "RLock":
				if deferred {
					pass.Reportf(call.Pos(), "defer %s.RLock() acquires the lock at function exit (did you mean defer RUnlock?)", recv)
					return true
				}
				t := get(recv)
				t.rlocks++
				if t.firstRLock == nil {
					t.firstRLock = call
				}
			case "RUnlock":
				get(recv).runlocks++
			}
			return true
		})
		recvs := make([]string, 0, len(tallies))
		for recv := range tallies {
			recvs = append(recvs, recv)
		}
		sort.Strings(recvs)
		for _, recv := range recvs {
			t := tallies[recv]
			if t.locks > t.unlocks && t.firstLock != nil {
				pass.Reportf(t.firstLock.Pos(), "%s.Lock() without a matching Unlock in this function", recv)
			}
			if t.rlocks > t.runlocks && t.firstRLock != nil {
				pass.Reportf(t.firstRLock.Pos(), "%s.RLock() without a matching RUnlock in this function", recv)
			}
		}
	})
}

// syncLockCall matches calls to the sync.Mutex/RWMutex lock surface
// (including promoted methods of embedded locks) and returns the printed
// receiver expression and method name.
func syncLockCall(pkg *Package, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}
