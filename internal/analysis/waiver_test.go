package analysis

import (
	"strings"
	"testing"
)

// loadWaiversFixture loads the waiver-machinery fixture package.
func loadWaiversFixture(t *testing.T) *Package {
	t.Helper()
	l := fixtureLoader(t)
	pkg, err := l.LoadDir("testdata/src/waivers", "leishen/internal/analysis/testdata/src/waivers")
	if err != nil {
		t.Fatalf("load waivers fixture: %v", err)
	}
	return pkg
}

// messagesOf collects the messages of one analyzer's findings.
func messagesOf(diags []Diagnostic, analyzer string) []string {
	var out []string
	for _, d := range diags {
		if d.Analyzer == analyzer {
			out = append(out, d.Message)
		}
	}
	return out
}

// TestWaiverScope pins which fixture discards survive: same-line and
// line-above directives suppress, a directive two lines above does
// not, a wrong analyzer name does not, one directive covers both its
// own line and the next, and a block-comment directive is inert.
func TestWaiverScope(t *testing.T) {
	pkg := loadWaiversFixture(t)
	diags := Run([]*Package{pkg}, []*Analyzer{ErrFlow})

	// Survivors: TwoAbove, WrongName, BlockComment, Unknown.
	if got := len(diags); got != 4 {
		t.Fatalf("errflow findings = %d, want 4 survivors:\n%s", got, renderAll(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "discarded to _") {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestWaiverHitTracking pins the unused-waiver findings under
// CheckWaivers: the out-of-range directive, the wrong-name directive,
// the line-above directive shadowed by a same-line one, and the
// unknown analyzer name.
func TestWaiverHitTracking(t *testing.T) {
	pkg := loadWaiversFixture(t)
	diags := RunWith([]*Package{pkg}, Suite(), RunConfig{CheckWaivers: true})

	waivers := messagesOf(diags, "waiver")
	if len(waivers) != 4 {
		t.Fatalf("waiver findings = %d, want 4:\n%s", len(waivers), renderAll(diags))
	}
	wantSubstrings := []string{
		`unknown analyzer "nosuch"`,               // Unknown
		"//lint:allow errflow suppresses nothing", // TwoAbove
		"//lint:allow errflow suppresses nothing", // Precedence line-above
		"//lint:allow purity suppresses nothing",  // WrongName
	}
	for _, want := range wantSubstrings {
		found := 0
		for _, msg := range waivers {
			if strings.Contains(msg, want) {
				found++
			}
		}
		if found == 0 {
			t.Errorf("no waiver finding containing %q in %q", want, waivers)
		}
	}
	stale := 0
	for _, msg := range waivers {
		if strings.Contains(msg, "errflow suppresses nothing") {
			stale++
		}
	}
	if stale != 2 {
		t.Errorf("stale errflow waivers = %d, want 2 (TwoAbove and the shadowed Precedence directive)", stale)
	}
}

// TestWaiverScopedToRanAnalyzers: a run restricted to one analyzer must
// not flag other analyzers' waivers as unused — only directives naming
// no analyzer at all are always judged.
func TestWaiverScopedToRanAnalyzers(t *testing.T) {
	pkg := loadWaiversFixture(t)
	diags := RunWith([]*Package{pkg}, []*Analyzer{DetOrder}, RunConfig{CheckWaivers: true})

	waivers := messagesOf(diags, "waiver")
	if len(waivers) != 1 || !strings.Contains(waivers[0], `unknown analyzer "nosuch"`) {
		t.Fatalf("waiver findings under -only detorder = %q, want only the unknown-name one", waivers)
	}
}

// TestStrictWaivers flags the single reason-less directive on top of
// the hygiene findings.
func TestStrictWaivers(t *testing.T) {
	pkg := loadWaiversFixture(t)
	diags := RunWith([]*Package{pkg}, Suite(), RunConfig{CheckWaivers: true, StrictWaivers: true})

	reasonless := 0
	for _, msg := range messagesOf(diags, "waiver") {
		if strings.Contains(msg, "carries no reason") {
			reasonless++
		}
	}
	if reasonless != 1 {
		t.Fatalf("reason-less waiver findings = %d, want exactly 1 (ReasonLess)", reasonless)
	}
}

// TestWaiverNotInSuite pins that "waiver" is a reserved pseudo-analyzer:
// it is not part of the suite, so it cannot be selected or waived.
func TestWaiverNotInSuite(t *testing.T) {
	for _, a := range Suite() {
		if a.Name == "waiver" {
			t.Fatal("the waiver pseudo-analyzer must not be in Suite()")
		}
	}
	if _, err := ByName("waiver"); err == nil {
		t.Fatal("ByName(waiver) should fail: hygiene findings are not selectable")
	}
}

func renderAll(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
