package analysis

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support: a .lintbaseline file accepts the current findings so
// a new analyzer can land before every legacy finding is fixed. Each
// line is one diagnostic in its canonical rendered form with
// module-root-relative paths:
//
//	internal/foo/foo.go:12:3: message text [analyzer]
//
// Blank lines and lines starting with '#' are ignored. Applying a
// baseline splits a run's findings three ways: new findings (not in the
// baseline — these fail the run), baselined findings (suppressed), and
// stale entries (baseline lines no diagnostic matched — the underlying
// code was fixed, so the entry must be deleted or it will mask a future
// regression at the same site).

// A Baseline is a parsed accept-list of findings.
type Baseline struct {
	// entries maps the canonical rendered form to its line number in
	// the baseline file (for stale reporting).
	entries map[string]int
}

// ParseBaseline reads a baseline from r.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, dup := b.entries[line]; dup {
			return nil, fmt.Errorf("baseline line %d: duplicate entry %q", lineNo, line)
		}
		b.entries[line] = lineNo
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Len returns the number of entries.
func (b *Baseline) Len() int { return len(b.entries) }

// Apply splits diags into the findings not covered by the baseline and
// the baseline entries nothing matched (stale), in file order.
func (b *Baseline) Apply(diags []Diagnostic) (fresh []Diagnostic, stale []string) {
	matched := make(map[string]bool, len(b.entries))
	for _, d := range diags {
		key := d.String()
		if _, ok := b.entries[key]; ok {
			matched[key] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for key := range b.entries {
		if !matched[key] {
			stale = append(stale, key)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		return b.entries[stale[i]] < b.entries[stale[j]]
	})
	return fresh, stale
}

// WriteBaseline renders diags as baseline file content, one canonical
// line per finding, preceded by a format comment.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	if _, err := fmt.Fprintln(w, "# leishenlint baseline: accepted findings, one per line."); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# Regenerate with: go run ./cmd/leishenlint -write-baseline ./..."); err != nil {
		return err
	}
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// Relativize rewrites each diagnostic's filename relative to root, so
// output (and baselines) are stable across checkouts. Filenames outside
// root are left absolute.
func Relativize(root string, diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		out[i] = d
	}
	return out
}
