// Package detflowbad exercises the detflow analyzer: values whose
// order derives from map iteration reaching a sink without passing a
// sort barrier. SortedThenPolluted is the case the syntactic detorder
// analyzer cannot see — a sort followed by a second tainting append.
package detflowbad

import (
	"fmt"
	"sort"
)

// PrintKeys prints accumulated keys in map order.
func PrintKeys(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Println(keys) // want "reaches output without a sort barrier"
}

// Keys returns map keys unsorted.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want "returns a value ordered by map iteration"
}

// SortedThenPolluted sorts the first map's keys, then appends a second
// map's keys after the barrier: the result is order-polluted again.
func SortedThenPolluted(a, b map[string]int) {
	var keys []string
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for k := range b {
		keys = append(keys, k)
	}
	fmt.Println(keys) // want "reaches output without a sort barrier"
}

// Stream sends each key in map order.
func Stream(m map[string]int, out chan string) {
	for k := range m {
		out <- k // want "sends a value ordered by map iteration"
	}
}

// Join concatenates values in map order; string += is not commutative.
func Join(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s // want "returns a value ordered by map iteration"
}
