// Package syncbad exercises the synccheck analyzer's failure cases:
// file writes that reach no checked Sync or Close.
package syncbad

import "os"

// store keeps a long-lived segment handle, like the archive does.
type store struct {
	active *os.File
	backup *os.File
}

// appendUnsynced writes through a field that no function in this
// package ever syncs with a consumed error.
func (s *store) appendUnsynced(buf []byte) error {
	_, err := s.active.Write(buf) // want "field active is written without any checked Sync or Close"
	return err
}

// flushIgnored discards the Sync error, so the field stays unsynced.
func (s *store) flushIgnored() {
	s.active.Sync()
}

// closeBlank discards the Close error explicitly; still not a check.
func (s *store) closeBlank() {
	_ = s.active.Close()
}

// truncateBackup shrinks the other handle, which nothing in this
// package ever flushes.
func (s *store) truncateBackup(n int64) error {
	return s.backup.Truncate(n) // want "field backup is written without any checked Sync or Close"
}

// writeTemp writes a local file and leaks it without any flush.
func writeTemp(path string, buf []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(buf) // want "f is written without a checked Sync or Close in this function"
	return err
}

// writeDeferClose writes a local file whose only release is a deferred
// Close with the error thrown away — a torn write would go unnoticed.
func writeDeferClose(path string, buf []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(string(buf)) // want "f is written without a checked Sync or Close in this function"
	return err
}

// vfsFile mirrors the shape of internal/vfs.File: the analyzer matches
// it structurally (Write + Sync in the method set), so the same
// discipline applies through the fault-injectable handle abstraction.
type vfsFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Truncate(n int64) error
}

// faultStore keeps a long-lived vfs handle, like the ported archive.
type faultStore struct {
	seg vfsFile
}

// appendVfsUnsynced writes through a vfs field that no function in this
// package ever syncs with a consumed error.
func (s *faultStore) appendVfsUnsynced(buf []byte) error {
	_, err := s.seg.Write(buf) // want "field seg is written without any checked Sync or Close"
	return err
}

// vfsFlushIgnored discards the Sync error, so the field stays unsynced.
func (s *faultStore) vfsFlushIgnored() {
	s.seg.Sync()
}

// writeVfsUnsynced writes a vfs handle and returns without any flush.
func writeVfsUnsynced(f vfsFile, buf []byte) error {
	_, err := f.Write(buf) // want "f is written without a checked Sync or Close in this function"
	return err
}

// wal mimics the archive's group-commit surface: checkpoints may be
// appended deferred (framed but not durable until a Sync).
type wal struct{}

func (*wal) AppendCheckpointDeferred(block uint64) error { return nil }
func (*wal) AppendCheckpoint(block uint64) error         { return nil }
func (*wal) Sync() error                                 { return nil }
func (*wal) Close() error                                { return nil }

// journal keeps a long-lived wal handle, like the follower keeps its
// archive.
type journal struct {
	arc *wal
}

// checkpointNeverSynced defers a checkpoint through a field that no
// function in this package ever syncs with a consumed error — the
// checkpoint would stay unobservable forever.
func (j *journal) checkpointNeverSynced(block uint64) error {
	return j.arc.AppendCheckpointDeferred(block) // want "field arc takes deferred checkpoints without any checked Sync in this package"
}

// syncDiscarded drops the Sync error, so the field stays unpromoted.
func (j *journal) syncDiscarded() {
	j.arc.Sync()
}

// localDeferredNoSync defers on a local wal and never syncs it.
func localDeferredNoSync(block uint64) error {
	w := &wal{}
	return w.AppendCheckpointDeferred(block) // want "w takes a deferred checkpoint without a checked Sync in this function"
}
