// Package errflowgood holds error-handling shapes errflow must accept:
// checked reassignments, wrap-and-replace, closure-owned errors, and
// hand-offs to callees that really read the error.
package errflowgood

import (
	"errors"
	"fmt"
)

func mayFail() error { return errors.New("boom") }

// logIt reads its error parameter, so passing an error to it counts as
// a check (the function summary proves the read).
func logIt(err error) {
	if err != nil {
		println(err.Error())
	}
}

// Checked reassigns only after the first error is inspected.
func Checked() error {
	err := mayFail()
	if err != nil {
		return err
	}
	err = mayFail()
	return err
}

// Wrapped reads the old error on the right-hand side of the
// reassignment that replaces it.
func Wrapped() error {
	err := mayFail()
	err = fmt.Errorf("wrap: %w", err)
	return err
}

// HandedOff checks through a same-package callee.
func HandedOff() error {
	err := mayFail()
	logIt(err)
	err = mayFail()
	return err
}

// Captured errors belong to the closure; reassignment is not a loss.
func Captured() (func() error, error) {
	var err error
	get := func() error { return err }
	err = mayFail()
	err = mayFail()
	return get, err
}

// NamedResult: named error results are deliberately untracked — a
// deferred recover can write them on paths flow analysis cannot see.
func NamedResult() (err error) {
	err = mayFail()
	err = mayFail()
	return
}

// ExplicitDrop reads a value the function already owns; only call
// results count as discards.
func ExplicitDrop() {
	err := mayFail()
	_ = err
}
