// Package leakgood holds goroutine shapes leakcheck must accept: every
// loop can hear a stop signal, every send has a receiver or a buffer,
// and joined workers are the launcher's to wait on.
package leakgood

import (
	"context"
	"sync"
)

func use(int) {}

func compute() int { return 7 }

// CtxWorker exits through the select when ctx is canceled.
func CtxWorker(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				use(j)
			}
		}
	}()
}

// QuitChan blocks on the quit channel each turn of the loop; closing
// it releases the goroutine.
func QuitChan(quit chan struct{}) {
	go func() {
		for {
			<-quit
			return
		}
	}()
}

// Drainer ranges the channel; close(in) ends the loop.
func Drainer(in chan int) {
	go func() {
		for v := range in {
			use(v)
		}
	}()
}

// Joined signals a WaitGroup, so the launcher can wait for it.
func Joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			use(i)
		}
	}()
	wg.Wait()
}

// BufferedSend completes even after the launcher moves on: the channel
// has capacity for the result.
func BufferedSend() {
	done := make(chan int, 1)
	go func() {
		done <- compute()
	}()
}

// ReceivedSend pairs the goroutine's send with the launcher's receive.
func ReceivedSend() int {
	res := make(chan int)
	go func() {
		res <- compute()
	}()
	return <-res
}

// Escaped hands the channel to the caller, who owns finding a receiver.
func Escaped() chan int {
	out := make(chan int)
	go func() {
		out <- compute()
	}()
	return out
}
