// Package waivers exercises the //lint:allow machinery itself rather
// than any single analyzer: directive scope (own line plus the next),
// lookup precedence, hit-tracking for unused-waiver detection, and the
// pin that block comments are not directives.
package waivers

import "errors"

func mayFail() error { return errors.New("x") }

// SameLine is suppressed by a trailing directive.
func SameLine() {
	_ = mayFail() //lint:allow errflow fixture: same-line waiver
}

// LineAbove is suppressed from the line above.
func LineAbove() {
	//lint:allow errflow fixture: line-above waiver
	_ = mayFail()
}

// TwoAbove leaves a blank line in between: the directive covers its
// own line and the next only, so the finding survives and the
// directive is unused.
func TwoAbove() {
	//lint:allow errflow fixture: too far away to suppress

	_ = mayFail()
}

// WrongName names a different analyzer, so the errflow finding
// survives and the purity directive is unused.
func WrongName() {
	_ = mayFail() //lint:allow purity fixture: wrong analyzer name
}

// OneDirectiveTwoLines: a single directive covers its own line and the
// next, so both discards are suppressed by it.
func OneDirectiveTwoLines() {
	_ = mayFail() //lint:allow errflow fixture: covers this line and the next
	_ = mayFail()
}

// Precedence: two directives cover the discard line; the same-line one
// wins the lookup, leaving the line-above directive unused.
func Precedence() {
	//lint:allow errflow fixture: shadowed by the same-line directive
	_ = mayFail() //lint:allow errflow fixture: same-line wins
}

// BlockComment pins that directives inside block comments are inert:
// the finding below survives.
func BlockComment() {
	/*lint:allow errflow fixture: block comments are unsupported*/
	_ = mayFail()
}

// Unknown names an analyzer outside the suite; it can never suppress
// anything and the finding survives.
func Unknown() {
	_ = mayFail() //lint:allow nosuch fixture: unknown analyzer
}

// ReasonLess suppresses its finding but fails strict-waiver review.
func ReasonLess() {
	_ = mayFail() //lint:allow errflow
}
