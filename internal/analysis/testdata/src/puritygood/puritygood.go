// Package puritygood stays pure under the purity analyzer: ambient
// state is injected rather than read.
//
// leishen:pure
package puritygood

import (
	"math/rand"
	"time"
)

// Clock defaults to the real clock but is injectable: storing the
// time.Now function value is allowed; calling it in the pipeline is not.
var Clock = time.Now

// Roll draws from an explicitly seeded source; methods on a *rand.Rand
// are deterministic given the seed.
func Roll(rng *rand.Rand) int {
	return rng.Intn(6)
}

// NewRNG builds the seeded source callers thread through.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
