// Package detordergood shows map iterations the detorder analyzer
// accepts: accumulation, collect-then-sort, keyed writes, existence
// checks, and explicitly waived loops.
package detordergood

import "sort"

// Count sums values; addition commutes.
func Count(m map[string]int) int {
	total := 0
	for _, n := range m {
		total += n
	}
	return total
}

// SortedKeys collects then sorts — the canonical deterministic listing.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Union writes entries keyed by the iteration variable; each iteration
// touches its own key.
func Union(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

// Has is a pure existence check: the same answer for any order.
func Has(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// Waived demonstrates the directive escape hatch for a loop the
// analyzer cannot prove safe.
func Waived(m map[string]int) {
	//lint:allow detorder fixture demonstrates waiving a finding
	for k := range m {
		println(k)
	}
}
