// Package errflowbad exercises the errflow analyzer's lost-error
// cases: overwrites before a check, blank discards, and shadowing.
package errflowbad

import "errors"

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

// ignore takes an error and never looks at it, so passing an error to
// it is not a check.
func ignore(err error) {}

// Overwrite drops the first failure on the floor.
func Overwrite() error {
	err := mayFail()
	err = mayFail() // want "overwritten before the error assigned at line"
	return err
}

// BranchOverwrite loses the error assigned on one path at the merge.
func BranchOverwrite(flag bool) error {
	var err error
	if flag {
		err = mayFail()
	}
	err = mayFail() // want "overwritten before the error assigned at line"
	return err
}

// NilReset erases the failure instead of handling it.
func NilReset() error {
	err := mayFail()
	err = nil // want "overwritten before the error assigned at line"
	return err
}

// ParamOverwrite destroys the error the caller handed in.
func ParamOverwrite(err error) error {
	err = mayFail() // want "overwritten before the error assigned at line"
	return err
}

// Discards bind error results to the blank identifier.
func Discards() int {
	_ = mayFail()   // want "error result discarded to _"
	v, _ := value() // want "error result discarded to _"
	return v
}

// Shadow is the classic if-init typo: the inner err hides the outer
// one, which is never checked.
func Shadow() error {
	err := mayFail()
	if err := mayFail(); err != nil { // want "declaration shadows err"
		return err
	}
	return err
}

// FalseHandOff passes the error to a callee whose summary proves it
// never reads the parameter, so the error is still unchecked when the
// reassignment kills it.
func FalseHandOff() error {
	err := mayFail()
	ignore(err)
	err = mayFail() // want "overwritten before the error assigned at line"
	return err
}
