// Package detorderbad exercises the detorder analyzer's order-leak
// cases: map iteration whose nondeterministic order escapes the loop.
package detorderbad

import "fmt"

// PrintAll prints entries in map order.
func PrintAll(m map[string]int) {
	for k, v := range m { // want "statement with side effects inside map iteration"
		fmt.Println(k, v)
	}
}

// Keys collects keys without sorting them.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends map elements without sorting"
		out = append(out, k)
	}
	return out
}

// Max tracks a maximum with a nondeterministic tie-break.
func Max(m map[string]int) string {
	best, bestN := "", -1
	for k, n := range m { // want "assigns iteration-dependent value to outer variable"
		if n > bestN {
			best, bestN = k, n
		}
	}
	return best
}

// TakeOne exits after an arbitrary element.
func TakeOne(m map[string]int) {
	for range m { // want "loop exit depends on which element comes first"
		break
	}
}

// Any returns whichever key the runtime yields first.
func Any(m map[string]int) string {
	for k := range m { // want "returns a value derived from the iteration element"
		return k
	}
	return ""
}
