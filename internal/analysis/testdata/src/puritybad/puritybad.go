// Package puritybad exercises the purity analyzer's ambient-state
// reads. It opts into enforcement with the marker below.
//
// leishen:pure
package puritybad

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Age derives a duration from the wall clock.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

// Roll draws from the global, unseeded rand source.
func Roll() int {
	return rand.Intn(6) // want "draws from the global rand source"
}

// Home reads the environment.
func Home() string {
	return os.Getenv("HOME") // want "os.Getenv reads the environment"
}
