// Package leakbad exercises the leakcheck analyzer: goroutines with no
// reachable cancellation or join path.
package leakbad

func work() {}

// Spinner launches a loop that nothing can ever stop.
func Spinner() {
	go func() { // want "no reachable cancellation point"
		for {
			work()
		}
	}()
}

// spin is the named-launch variant; its body is resolved through the
// package and analyzed the same way.
func spin() {
	for {
		work()
	}
}

// LaunchNamed leaks through a named same-package function.
func LaunchNamed() {
	go spin() // want "no reachable cancellation point"
}

// SendNoReceiver hands its result to a channel the launcher abandons:
// the send blocks forever once SendNoReceiver returns.
func SendNoReceiver() {
	done := make(chan int)
	go func() { // want "never receives from it"
		done <- 42
	}()
}

// TickerLoop polls with only straight-line work in the loop — sleeping
// is not a cancellation point.
func TickerLoop() {
	go func() { // want "no reachable cancellation point"
		for {
			work()
			work()
		}
	}()
}
