// Package lockbad exercises the lockcheck analyzer's misuse cases:
// by-value lock copies, deferred acquisition, and imbalance.
package lockbad

import "sync"

// Guarded holds locks by value; copying it copies them.
type Guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// ByValue copies its receiver's locks.
func (g Guarded) ByValue() int { // want "method receiver passes a type containing a sync lock by value"
	return g.n
}

// Param takes the lock-bearing struct by value.
func Param(g Guarded) {} // want "parameter passes a type containing a sync lock by value"

// Snapshot returns a lock-bearing copy.
func Snapshot(g *Guarded) Guarded { // want "result passes a type containing a sync lock by value"
	return *g // want "return copies a value containing a sync lock"
}

// Assign copies a lock via assignment.
func Assign(g *Guarded) int {
	c := *g // want "assignment copies a value containing a sync lock"
	return c.n
}

// DeferLock is the classic typo that deadlocks the next caller.
func DeferLock(g *Guarded) {
	defer g.mu.Lock() // want "acquires the lock at function exit"
	g.n++
}

// Leak locks without unlocking.
func Leak(g *Guarded) {
	g.mu.Lock() // want "without a matching Unlock"
	g.n++
}

// ReadLeak read-locks without releasing.
func ReadLeak(g *Guarded) int {
	g.rw.RLock() // want "without a matching RUnlock"
	return g.n
}
