// Package syncgood exercises the synccheck analyzer's accepted
// patterns: checked syncs, package-wide field flushing, and escaping
// handles. No diagnostics are expected in this package.
package syncgood

import "os"

// store batches appends on a long-lived handle and syncs per
// checkpoint — the archive's cadence. The checked Sync in flush
// satisfies every write through the same field, package-wide.
type store struct {
	active *os.File
}

func (s *store) append(buf []byte) error {
	_, err := s.active.Write(buf)
	return err
}

func (s *store) flush() error {
	return s.active.Sync()
}

// writeAndSync checks the local file's Sync error in-function.
func writeAndSync(path string, buf []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// truncateAndClose releases via a checked Close, which implies a flush
// on every mainstream filesystem.
func truncateAndClose(path string, n int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openSegment writes a header and hands the file to the caller, who
// owns the flush: escaping handles are not flagged.
func openSegment(path string, header []byte) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// registerSegment stores the written handle in a struct; the store's
// flush discipline takes over from there.
func registerSegment(s *store, f *os.File, header []byte) error {
	if _, err := f.Write(header); err != nil {
		return err
	}
	s.active = f
	return nil
}

// waived documents an intentional fire-and-forget write.
func waived(f *os.File) {
	//lint:allow synccheck best-effort trace output, loss is acceptable
	f.WriteString("trace\n")
}

// vfsFile mirrors the shape of internal/vfs.File; the analyzer holds
// it to the *os.File discipline by structure.
type vfsFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Truncate(n int64) error
}

// faultStore batches appends on a long-lived vfs handle and syncs per
// checkpoint; the checked Sync satisfies the writes package-wide.
type faultStore struct {
	seg vfsFile
}

func (s *faultStore) append(buf []byte) error {
	_, err := s.seg.Write(buf)
	return err
}

func (s *faultStore) flush() error {
	return s.seg.Sync()
}

// truncateVfsAndClose releases a vfs handle via a checked Close.
func truncateVfsAndClose(f vfsFile, n int64) error {
	if err := f.Truncate(n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// wal mimics the archive's group-commit surface.
type wal struct{}

func (*wal) AppendCheckpointDeferred(block uint64) error { return nil }
func (*wal) AppendCheckpoint(block uint64) error         { return nil }
func (*wal) Sync() error                                 { return nil }
func (*wal) Close() error                                { return nil }

// journal batches deferred checkpoints through a field and promotes
// them with one checked Sync per batch — the group-commit cadence. The
// checked Sync in commit satisfies the deferred appends package-wide.
type journal struct {
	arc *wal
}

func (j *journal) stage(block uint64) error {
	return j.arc.AppendCheckpointDeferred(block)
}

func (j *journal) commit() error {
	return j.arc.Sync()
}

// deferredThenSynced defers on a local wal and checks the Sync error in
// the same function.
func deferredThenSynced(block uint64) error {
	w := &wal{}
	if err := w.AppendCheckpointDeferred(block); err != nil {
		return err
	}
	return w.Sync()
}

// deferredThenSyncingAppend promotes a deferred checkpoint with a later
// syncing append, which flushes everything before it.
func deferredThenSyncingAppend(block uint64) error {
	w := &wal{}
	if err := w.AppendCheckpointDeferred(block); err != nil {
		return err
	}
	return w.AppendCheckpoint(block + 1)
}
