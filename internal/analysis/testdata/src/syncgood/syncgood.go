// Package syncgood exercises the synccheck analyzer's accepted
// patterns: checked syncs, package-wide field flushing, and escaping
// handles. No diagnostics are expected in this package.
package syncgood

import "os"

// store batches appends on a long-lived handle and syncs per
// checkpoint — the archive's cadence. The checked Sync in flush
// satisfies every write through the same field, package-wide.
type store struct {
	active *os.File
}

func (s *store) append(buf []byte) error {
	_, err := s.active.Write(buf)
	return err
}

func (s *store) flush() error {
	return s.active.Sync()
}

// writeAndSync checks the local file's Sync error in-function.
func writeAndSync(path string, buf []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// truncateAndClose releases via a checked Close, which implies a flush
// on every mainstream filesystem.
func truncateAndClose(path string, n int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openSegment writes a header and hands the file to the caller, who
// owns the flush: escaping handles are not flagged.
func openSegment(path string, header []byte) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// registerSegment stores the written handle in a struct; the store's
// flush discipline takes over from there.
func registerSegment(s *store, f *os.File, header []byte) error {
	if _, err := f.Write(header); err != nil {
		return err
	}
	s.active = f
	return nil
}

// waived documents an intentional fire-and-forget write.
func waived(f *os.File) {
	//lint:allow synccheck best-effort trace output, loss is acceptable
	f.WriteString("trace\n")
}
