// Package lockgood shows lock usage the lockcheck analyzer accepts:
// pointer receivers, deferred unlocks, and balanced sequences.
package lockgood

import "sync"

// Guarded holds locks behind pointer receivers only.
type Guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Inc locks with the canonical deferred unlock.
func (g *Guarded) Inc() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// Get read-locks with a deferred release.
func (g *Guarded) Get() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.n
}

// Twice balances two explicit lock/unlock pairs.
func (g *Guarded) Twice() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Use passes the guarded value by pointer: no copy, no finding.
func Use(g *Guarded) int {
	g.Inc()
	return g.Get()
}
