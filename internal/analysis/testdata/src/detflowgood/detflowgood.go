// Package detflowgood holds map-iteration shapes detflow must accept:
// sorted output, commutative accumulation, and order-free reads.
package detflowgood

import (
	"fmt"
	"sort"
)

// SortedKeys passes the sort barrier before returning.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedPrint sorts, then prints.
func SortedPrint(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(keys)
}

// Sum accumulates a commutative numeric total; order cannot matter.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Counting reads only the map's size, never its order.
func Counting(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Membership reduces iteration to a boolean; any order gives the same
// answer because the comparison result is order-free.
func Membership(m map[string]int, want int) bool {
	found := false
	for _, v := range m {
		if v == want {
			found = true
		}
	}
	return found
}
