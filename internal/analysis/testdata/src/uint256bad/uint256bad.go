// Package uint256bad exercises the uint256check analyzer's bad cases:
// discarded overflow errors and math/big amounts in internal packages.
package uint256bad

import (
	"math/big" // want "math/big imported in an internal package"

	"leishen/internal/uint256"
)

// Price uses the banned arbitrary-precision type for an amount.
func Price() *big.Int { return big.NewInt(1) }

// Ignored drops the result of checked arithmetic entirely.
func Ignored(x, y uint256.Int) {
	x.Add(y) // want "result of checked uint256 arithmetic ignored"
}

// Discarded blanks the overflow error.
func Discarded(x, y uint256.Int) uint256.Int {
	sum, _ := x.Add(y) // want "overflow error discarded"
	return sum
}
