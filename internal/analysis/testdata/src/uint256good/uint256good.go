// Package uint256good shows the accepted ways to use checked uint256
// arithmetic: propagate the error, handle it, or pick an explicit
// Must/Wrapping/Saturating variant.
package uint256good

import "leishen/internal/uint256"

// Sum propagates the overflow error.
func Sum(x, y uint256.Int) (uint256.Int, error) {
	return x.Add(y)
}

// Handled checks the error at the call site.
func Handled(x, y uint256.Int) uint256.Int {
	sum, err := x.Add(y)
	if err != nil {
		return uint256.Max()
	}
	return sum
}

// Clamped opts into explicit saturation semantics.
func Clamped(x, y uint256.Int) uint256.Int {
	return x.SaturatingSub(y)
}

// Asserted uses the panicking variant where overflow is a bug.
func Asserted(x, y uint256.Int) uint256.Int {
	return x.MustAdd(y)
}
