// Package analysis is a stdlib-only static-analysis framework for the
// LeiShen codebase, in the spirit of golang.org/x/tools/go/analysis but
// built purely on go/parser, go/ast and go/types so the module keeps its
// zero-dependency footprint.
//
// The detection pipeline's verdicts must be deterministic and
// overflow-safe: the paper's pattern predicates (KRP/SBS/MBS) compare
// exact 256-bit token amounts, and any nondeterminism in report or trade
// ordering would make paper experiments unreproducible, and the report
// archive's crash-safety contract is void without fsync discipline. The
// suite in this package encodes those domain invariants as eight
// analyzers (see Suite): five syntactic ones, plus three flow-sensitive
// ones (errflow, leakcheck, detflow) built on a per-function CFG
// (cfg.go), a forward dataflow engine (dataflow.go) and per-function
// callee summaries (summary.go). cmd/leishenlint runs them over every
// package in the module, in parallel, with byte-identical output to a
// serial run.
//
// Findings can be waived for a single statement with a directive comment
// on the same line or the line above:
//
//	//lint:allow detorder iteration feeds an order-insensitive set union
//
// A directive must name the analyzer it waives and should carry a reason.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// An Analyzer is one static check. Run inspects the pass's package and
// reports findings through the pass.
type Analyzer struct {
	// Name is the short identifier used in output and directives.
	Name string
	// Doc is a one-paragraph description of the bug class prevented.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// A Pass is one (analyzer, package) execution. It carries the loaded
// syntax and type information and collects diagnostics.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
	// hits records which waiver directives suppressed a finding during
	// this run — the raw material of unused-waiver detection.
	hits map[directiveRef]bool
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the finding.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a //lint:allow directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if ref, ok := p.Pkg.allowed(p.Analyzer.Name, position); ok {
		if p.hits != nil {
			p.hits[ref] = true
		}
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// sortDiags imposes the canonical total order: position, analyzer,
// message. The message tiebreak makes parallel runs byte-identical to
// serial ones even when one line carries several findings from the
// same analyzer.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Run executes every analyzer over every package and returns the
// findings sorted by position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWith(pkgs, analyzers, RunConfig{})
}

// RunConfig tunes a suite execution.
type RunConfig struct {
	// Parallel is the maximum number of packages analyzed
	// concurrently; <= 1 runs serially. Output is identical either
	// way: packages are independent and the result is canonically
	// sorted.
	Parallel int
	// CheckWaivers adds findings for //lint:allow directives that
	// suppressed nothing (analyzer "waiver") — rot detection for the
	// waiver inventory. Only directives naming an analyzer that
	// actually ran are judged; directives naming no known analyzer are
	// always flagged.
	CheckWaivers bool
	// StrictWaivers additionally flags directives that carry no reason
	// text. Implies nothing about suppression: a reason-less directive
	// that waives a real finding still works, it just fails the gate.
	StrictWaivers bool
}

// RunWith executes every analyzer over every package under cfg and
// returns the findings in canonical order.
func RunWith(pkgs []*Package, analyzers []*Analyzer, cfg RunConfig) []Diagnostic {
	perPkg := make([][]Diagnostic, len(pkgs))
	if cfg.Parallel > 1 && len(pkgs) > 1 {
		// One worker owns one package at a time: all per-package lazy
		// state (directive index, summaries) stays single-threaded.
		var wg sync.WaitGroup
		sem := make(chan struct{}, cfg.Parallel)
		for i := range pkgs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				perPkg[i] = runPackage(pkgs[i], analyzers, cfg)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range pkgs {
			perPkg[i] = runPackage(pkgs[i], analyzers, cfg)
		}
	}
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sortDiags(diags)
	return diags
}

// runPackage executes the analyzers over one package and, when asked,
// appends the waiver-hygiene findings.
func runPackage(pkg *Package, analyzers []*Analyzer, cfg RunConfig) []Diagnostic {
	// Directive and summary indexes are built lazily on first use;
	// force them here so a package's entire run shares one build.
	pkg.directives()
	pkg.summaries()
	hits := make(map[directiveRef]bool)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, hits: hits}
		a.Run(pass)
	}
	if cfg.CheckWaivers {
		diags = append(diags, waiverDiags(pkg, analyzers, hits, cfg.StrictWaivers)...)
	}
	return diags
}

// Suite returns the full LeiShen analyzer suite: the five syntactic
// analyzers, then the three flow-sensitive ones built on the CFG and
// dataflow layers.
func Suite() []*Analyzer {
	return []*Analyzer{
		Uint256Check,
		DetOrder,
		LockCheck,
		Purity,
		SyncCheck,
		ErrFlow,
		LeakCheck,
		DetFlow,
	}
}

// ByName returns the suite analyzers selected by a comma-separated name
// list ("" selects all). Duplicate names are an error: running an
// analyzer twice would double-report every finding.
func ByName(names string) ([]*Analyzer, error) {
	all := Suite()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	seen := make(map[string]bool)
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("duplicate analyzer %q", n)
		}
		seen[n] = true
		out = append(out, a)
	}
	return out, nil
}

// directivePrefix introduces a waiver comment. Only line comments
// qualify: a //lint:allow inside a /* */ block never matches the
// prefix, so block-comment directives are (deliberately) inert.
const directivePrefix = "//lint:allow "

// A directiveRef identifies one waiver directive by source location and
// the analyzer it names — the key for suppression hit-tracking.
type directiveRef struct {
	file string
	line int
	name string
}

// A directive is one parsed //lint:allow comment.
type directive struct {
	// name is the analyzer the directive waives.
	name string
	// hasReason records whether any text follows the analyzer name.
	hasReason bool
	// ref locates the directive (for hit-tracking and reporting).
	ref directiveRef
	// pos is the comment's position for diagnostics.
	pos token.Pos
}

// allowed reports whether a //lint:allow directive for the analyzer
// covers the line at position (directives cover their own line and the
// next one, so they can sit above or trail the flagged statement), and
// if so which directive did the waiving.
func (p *Package) allowed(analyzer string, pos token.Position) (directiveRef, bool) {
	lines := p.directives()[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[l] {
			if d.name == analyzer {
				return d.ref, true
			}
		}
	}
	return directiveRef{}, false
}

// directives lazily scans the package's comments for waiver directives,
// returning filename -> line -> directives on that line.
func (p *Package) directives() map[string]map[int][]directive {
	if p.directiveIndex != nil {
		return p.directiveIndex
	}
	idx := make(map[string]map[int][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				position := p.Fset.Position(c.Pos())
				byLine := idx[position.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					idx[position.Filename] = byLine
				}
				byLine[position.Line] = append(byLine[position.Line], directive{
					name:      fields[0],
					hasReason: len(fields) > 1,
					ref: directiveRef{
						file: position.Filename,
						line: position.Line,
						name: fields[0],
					},
					pos: c.Pos(),
				})
			}
		}
	}
	p.directiveIndex = idx
	return idx
}

// waiverDiags audits the package's directives after a run: a directive
// that suppressed nothing is dead weight that silently blesses future
// bugs, and (under strict) a directive without a reason fails review.
// Unused-ness is only judged for analyzers that actually ran — waiving
// synccheck is not "unused" during a -only detorder run — but a
// directive naming no analyzer in the suite can never fire and is
// always flagged.
func waiverDiags(pkg *Package, ran []*Analyzer, hits map[directiveRef]bool, strict bool) []Diagnostic {
	ranNames := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranNames[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Suite() {
		known[a.Name] = true
	}

	// Collect every directive, then order deterministically; the index
	// maps are iterated only to fill the slice.
	var all []directive
	for _, byLine := range pkg.directives() {
		for _, ds := range byLine {
			all = append(all, ds...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ref.file != b.ref.file {
			return a.ref.file < b.ref.file
		}
		if a.ref.line != b.ref.line {
			return a.ref.line < b.ref.line
		}
		return a.ref.name < b.ref.name
	})

	var out []Diagnostic
	report := func(d directive, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: "waiver",
			Pos:      pkg.Fset.Position(d.pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range all {
		switch {
		case !known[d.name]:
			report(d, "//lint:allow names unknown analyzer %q (it can never suppress anything)", d.name)
		case ranNames[d.name] && !hits[d.ref]:
			report(d, "//lint:allow %s suppresses nothing on this line or the next (stale waiver — remove it)", d.name)
		}
		if strict && !d.hasReason {
			report(d, "//lint:allow %s carries no reason (strict waivers require one)", d.name)
		}
	}
	return out
}
