// Package analysis is a stdlib-only static-analysis framework for the
// LeiShen codebase, in the spirit of golang.org/x/tools/go/analysis but
// built purely on go/parser, go/ast and go/types so the module keeps its
// zero-dependency footprint.
//
// The detection pipeline's verdicts must be deterministic and
// overflow-safe: the paper's pattern predicates (KRP/SBS/MBS) compare
// exact 256-bit token amounts, and any nondeterminism in report or trade
// ordering would make paper experiments unreproducible, and the report
// archive's crash-safety contract is void without fsync discipline. The
// suite in this package encodes those domain invariants as five
// analyzers (see Suite) that cmd/leishenlint runs over every package in
// the module.
//
// Findings can be waived for a single statement with a directive comment
// on the same line or the line above:
//
//	//lint:allow detorder iteration feeds an order-insensitive set union
//
// A directive must name the analyzer it waives and should carry a reason.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects the pass's package and
// reports findings through the pass.
type Analyzer struct {
	// Name is the short identifier used in output and directives.
	Name string
	// Doc is a one-paragraph description of the bug class prevented.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// A Pass is one (analyzer, package) execution. It carries the loaded
// syntax and type information and collects diagnostics.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the finding.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a //lint:allow directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over every package and returns the
// findings sorted by position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Suite returns the full LeiShen analyzer suite.
func Suite() []*Analyzer {
	return []*Analyzer{
		Uint256Check,
		DetOrder,
		LockCheck,
		Purity,
		SyncCheck,
	}
}

// ByName returns the suite analyzers selected by a comma-separated name
// list ("" selects all).
func ByName(names string) ([]*Analyzer, error) {
	all := Suite()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// directivePrefix introduces a waiver comment.
const directivePrefix = "//lint:allow "

// allowed reports whether a //lint:allow directive for the analyzer
// covers the line at position (directives cover their own line and the
// next one, so they can sit above or trail the flagged statement).
func (p *Package) allowed(analyzer string, pos token.Position) bool {
	lines := p.directives()[pos.Filename]
	for _, d := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[d] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// directives lazily scans the package's comments for waiver directives,
// returning filename -> line -> waived analyzer names.
func (p *Package) directives() map[string]map[int][]string {
	if p.directiveIndex != nil {
		return p.directiveIndex
	}
	idx := make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				position := p.Fset.Position(c.Pos())
				byLine := idx[position.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx[position.Filename] = byLine
				}
				byLine[position.Line] = append(byLine[position.Line], fields[0])
			}
		}
	}
	p.directiveIndex = idx
	return idx
}
