package analysis

import "testing"

// TestRepoIsClean is the gate `go run ./cmd/leishenlint ./...` enforces:
// the full suite over every package of the module reports nothing.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck in -short mode")
	}
	l := fixtureLoader(t)
	pkgs, err := l.Match([]string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, Suite()) {
		t.Errorf("%s", d)
	}
}

// TestModuleMatchSkipsFixtures ensures ./... never sweeps the testdata
// fixtures into the gate (they contain deliberate findings).
func TestModuleMatchSkipsFixtures(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.Match([]string{"./internal/..."})
	if err != nil {
		t.Fatalf("load internal: %v", err)
	}
	for _, p := range pkgs {
		if p.Path == "leishen/internal/analysis/testdata/src/detorderbad" {
			t.Fatalf("testdata fixture leaked into module patterns")
		}
	}
}

// TestDriverFlagsFixtures guards against the suite silently passing
// everything: pointing it at a bad fixture must produce findings, which
// is what makes cmd/leishenlint exit nonzero there.
func TestDriverFlagsFixtures(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.Match([]string{"./internal/analysis/testdata/src/detorderbad"})
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if len(Run(pkgs, Suite())) == 0 {
		t.Fatal("expected findings in the detorderbad fixture")
	}
}
