package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source for CFG tests — no type
// checking needed, the CFG is purely syntactic.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGStraightLine(t *testing.T) {
	c := buildCFG(parseBody(t, "x := 1\ny := 2\n_ = x\n_ = y"))
	if len(c.entry.nodes) != 4 {
		t.Fatalf("entry block has %d nodes, want 4", len(c.entry.nodes))
	}
	if len(c.entry.succs) != 1 || c.entry.succs[0] != c.exit {
		t.Fatal("straight-line body must flow entry -> exit")
	}
	onCycle, closed := c.cycleBlocks()
	if len(onCycle) != 0 || len(closed) != 0 {
		t.Fatal("straight-line body has no cycles")
	}
}

func TestCFGIfJoins(t *testing.T) {
	c := buildCFG(parseBody(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x"))
	preds := c.preds()
	// The join block (holding `_ = x`) must have both branch blocks as
	// predecessors.
	var join *cfgBlock
	for _, b := range c.blocks {
		for _, n := range b.nodes {
			if a, ok := n.(*ast.AssignStmt); ok {
				if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					join = b
				}
			}
		}
	}
	if join == nil {
		t.Fatal("no join block found")
	}
	if len(preds[join]) != 2 {
		t.Fatalf("join block has %d preds, want 2 (then and else)", len(preds[join]))
	}
}

func TestCFGInfiniteLoopIsClosedCycle(t *testing.T) {
	c := buildCFG(parseBody(t, "for {\nx := 1\n_ = x\n}"))
	onCycle, closed := c.cycleBlocks()
	if len(onCycle) == 0 {
		t.Fatal("for{} must form a cycle")
	}
	if len(closed) == 0 {
		t.Fatal("for{} with no break/return must be a closed cycle")
	}
}

func TestCFGBreakOpensCycle(t *testing.T) {
	c := buildCFG(parseBody(t, "for {\nif true {\nbreak\n}\n}"))
	onCycle, closed := c.cycleBlocks()
	if len(onCycle) == 0 {
		t.Fatal("the loop blocks still sit on a cycle")
	}
	if len(closed) != 0 {
		t.Fatal("a loop with a break has an escaping edge: not closed")
	}
}

func TestCFGConditionalLoopNotClosed(t *testing.T) {
	c := buildCFG(parseBody(t, "for i := 0; i < 10; i++ {\n_ = i\n}"))
	_, closed := c.cycleBlocks()
	if len(closed) != 0 {
		t.Fatal("a conditioned for loop exits through its header: not closed")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	c := buildCFG(parseBody(t, "return\nx := 1\n_ = x"))
	// The statements after return live in an unreachable block.
	preds := c.preds()
	unreachable := 0
	for _, b := range c.blocks {
		if b != c.entry && b != c.exit && len(preds[b]) == 0 && len(b.nodes) > 0 {
			unreachable++
		}
	}
	if unreachable != 1 {
		t.Fatalf("dead code after return must land in one predecessor-less block, got %d", unreachable)
	}
}

func TestCFGSelectLoopEscapes(t *testing.T) {
	// The leakgood shape: an infinite for whose select has a return —
	// the cycle exists but is not closed.
	c := buildCFG(parseBody(t, "ch := make(chan int)\nfor {\nselect {\ncase <-ch:\nreturn\ndefault:\n}\n}"))
	onCycle, closed := c.cycleBlocks()
	if len(onCycle) == 0 {
		t.Fatal("for/select must form a cycle")
	}
	if len(closed) != 0 {
		t.Fatal("the return inside select escapes the loop: not closed")
	}
}

func TestCFGReversePostorderCoversAllBlocks(t *testing.T) {
	c := buildCFG(parseBody(t, "x := 1\nfor x > 0 {\nif x == 2 {\ncontinue\n}\nx--\n}\nreturn"))
	order := c.reversePostorder()
	if len(order) != len(c.blocks) {
		t.Fatalf("reverse postorder visits %d blocks, cfg has %d", len(order), len(c.blocks))
	}
	seen := make(map[*cfgBlock]bool, len(order))
	for _, b := range order {
		if seen[b] {
			t.Fatal("reverse postorder repeats a block")
		}
		seen[b] = true
	}
	if order[0] != c.entry {
		t.Fatal("reverse postorder must start at the entry block")
	}
}
