package analysis

import (
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The loader is shared across tests: the expensive part is type-checking
// the standard library from source, which the cache amortizes.
var (
	loaderOnce sync.Once
	sharedLdr  *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLdr, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return sharedLdr
}

// wantRe matches the fixture expectation comments: // want "substring".
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// runFixture analyzes one testdata package and matches the diagnostics
// against its // want comments in both directions: every want must be
// matched by a diagnostic on its line, and every diagnostic must be
// covered by a want.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	l := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", fixture)
	path := "leishen/internal/analysis/testdata/src/" + fixture
	pkg, err := l.LoadDir(dir, path)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := make(map[key]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[key{pos.Filename, pos.Line}] = m[1]
			}
		}
	}

	matched := make(map[key]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		want, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !strings.Contains(d.Message, want) {
			t.Errorf("%s:%d: got %q, want a message containing %q", k.file, k.line, d.Message, want)
		}
		matched[k] = true
	}
	missing := make([]key, 0, len(wants))
	for k := range wants {
		if !matched[k] {
			missing = append(missing, k)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].line < missing[j].line })
	for _, k := range missing {
		t.Errorf("%s:%d: missing diagnostic containing %q", k.file, k.line, wants[k])
	}
}

func TestUint256CheckFixtures(t *testing.T) {
	runFixture(t, Uint256Check, "uint256bad")
	runFixture(t, Uint256Check, "uint256good")
}

func TestDetOrderFixtures(t *testing.T) {
	runFixture(t, DetOrder, "detorderbad")
	runFixture(t, DetOrder, "detordergood")
}

func TestLockCheckFixtures(t *testing.T) {
	runFixture(t, LockCheck, "lockbad")
	runFixture(t, LockCheck, "lockgood")
}

func TestPurityFixtures(t *testing.T) {
	runFixture(t, Purity, "puritybad")
	runFixture(t, Purity, "puritygood")
}

func TestSyncCheckFixtures(t *testing.T) {
	runFixture(t, SyncCheck, "syncbad")
	runFixture(t, SyncCheck, "syncgood")
}

func TestErrFlowFixtures(t *testing.T) {
	runFixture(t, ErrFlow, "errflowbad")
	runFixture(t, ErrFlow, "errflowgood")
}

func TestLeakCheckFixtures(t *testing.T) {
	runFixture(t, LeakCheck, "leakbad")
	runFixture(t, LeakCheck, "leakgood")
}

func TestDetFlowFixtures(t *testing.T) {
	runFixture(t, DetFlow, "detflowbad")
	runFixture(t, DetFlow, "detflowgood")
}

// TestByName covers the driver's analyzer selection.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Suite()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := ByName("detorder, purity")
	if err != nil || len(two) != 2 || two[0].Name != "detorder" || two[1].Name != "purity" {
		t.Fatalf("ByName(detorder,purity) = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
	if _, err := ByName("detorder,detorder"); err == nil {
		t.Fatal("ByName(detorder,detorder) should reject the duplicate")
	}
	if _, err := ByName("detorder, purity ,detorder"); err == nil {
		t.Fatal("duplicate detection must survive whitespace")
	}
}
