package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package bundles one loaded, type-checked package.
type Package struct {
	// Path is the import path ("leishen/internal/core").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files (shared across the whole load).
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's resolution maps.
	Info *types.Info

	directiveIndex map[string]map[int][]directive
	summaryIndex   map[*types.Func]*funcSummary
}

// A Loader loads and type-checks packages of one module, resolving
// standard-library imports from source (no export data, no external
// tooling). Loaded packages are cached, so a whole-module load
// type-checks each dependency once.
type Loader struct {
	// ModRoot is the module root directory (where go.mod lives).
	ModRoot string
	// ModPath is the module path from go.mod.
	ModPath string

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
	stack map[string]bool
}

// NewLoader creates a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer unavailable")
	}
	return &Loader{
		ModRoot: root,
		ModPath: path,
		fset:    fset,
		std:     std,
		cache:   make(map[string]*Package),
		stack:   make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for cur := abs; ; {
		data, err := os.ReadFile(filepath.Join(cur, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return cur, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", cur)
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		cur = parent
	}
}

// Import resolves an import path: module-internal packages load from
// the module tree, everything else (the standard library) through the
// source importer. Import implements types.Importer so the loader can
// hand itself to the type checker.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg.Types, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModRoot, 0)
}

// load loads one module-internal package by import path.
func (l *Loader) load(path string) (*Package, error) {
	dir := filepath.Join(l.ModRoot, strings.TrimPrefix(path, l.ModPath))
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Test files are excluded: the suite gates production
// code, and fixture directories under testdata type-check as ordinary
// packages this way.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.stack[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.stack[path] = true
	defer delete(l.stack, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// Match expands package patterns relative to the module root and loads
// every matching package. Supported forms mirror the go tool: "./..."
// (whole module), "./dir/..." (subtree), "./dir" (single package).
// Directories named testdata, hidden directories, and directories
// without non-test Go files are skipped.
func (l *Loader) Match(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "./" || pat == "" {
			pat = "."
		}
		base := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirSet[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirSet[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
